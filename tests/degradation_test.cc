// The pipeline's degradation ladder: full tree-cover linking degrades to
// per-canopy prior-only disambiguation on deadline expiry, bound-retry
// exhaustion, or a faulted cover solver — an answer, not an error.
#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "core/link_context.h"
#include "core/pipeline.h"
#include "figure_one_world.h"

namespace tenet {
namespace core {
namespace {

using testing_support::BuildFigureOneWorld;
using testing_support::FigureOneWorld;

constexpr const char* kFigureOneText =
    "Michael Jordan studies artificial intelligence and machine learning. "
    "He was awarded as the Fellow of the AAAS. "
    "He visited Brooklyn in April 2019.";

const LinkedConcept* FindLink(const LinkingResult& result,
                              const std::string& surface) {
  for (const LinkedConcept& link : result.links) {
    if (link.surface == surface) return &link;
  }
  return nullptr;
}

TEST(DegradationTest, FullRunReportsFullMode) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->degradation.mode, DegradationInfo::Mode::kFull);
  EXPECT_FALSE(result->degradation.degraded());
  EXPECT_EQ(result->degradation.stages_degraded, 0);
  EXPECT_TRUE(result->degradation.reason.empty());
}

TEST(DegradationTest, ExpiredDeadlineStillReturnsPriorOnlyLinks) {
  // Graceful degradation is an answer, not an error: under an already-
  // expired deadline the document is still served, from priors.
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result =
      tenet.LinkDocument(kFigureOneText,
                         LinkContext::WithDeadline(Deadline::Expired()));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->degradation.mode, DegradationInfo::Mode::kPriorOnly);
  EXPECT_TRUE(result->degradation.degraded());
  EXPECT_EQ(result->degradation.stages_degraded, 3);
  EXPECT_FALSE(result->degradation.reason.empty());
  EXPECT_FALSE(result->links.empty());

  // Prior-only picks the popular sense: the basketball player (prior 0.7)
  // wins over the professor — exactly the baseline-quality trade-off.
  const LinkedConcept* mj = FindLink(*result, "Michael Jordan");
  ASSERT_NE(mj, nullptr);
  EXPECT_EQ(mj->concept_ref.id, world.player);

  // Unambiguous mentions still link correctly from priors alone.
  const LinkedConcept* brooklyn = FindLink(*result, "Brooklyn");
  ASSERT_NE(brooklyn, nullptr);
  EXPECT_EQ(brooklyn->concept_ref.id, world.brooklyn);

  // Fresh phrases are still reported isolated.
  bool april_isolated = false;
  for (int m : result->isolated_mentions) {
    if (result->mentions.mention(m).surface == "April 2019") {
      april_isolated = true;
    }
  }
  EXPECT_TRUE(april_isolated);
}

TEST(DegradationTest, ExpiredDeadlineViaOptionsBehavesTheSame) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetOptions options;
  options.deadline_ms = 0.0;  // every call starts already out of budget
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer,
                      options);
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->degradation.mode, DegradationInfo::Mode::kPriorOnly);
  EXPECT_FALSE(result->links.empty());
}

TEST(DegradationTest, DegradationDisabledTurnsDeadlineIntoError) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetOptions options;
  options.degrade_to_prior = false;
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer,
                      options);
  Result<LinkingResult> result =
      tenet.LinkDocument(kFigureOneText,
                         LinkContext::WithDeadline(Deadline::Expired()));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

TEST(DegradationTest, FaultedCoverSolverDegradesToPriorOnly) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  FaultInjector faults(17);
  faults.Arm("core/cover_solve", 1.0);
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->degradation.mode, DegradationInfo::Mode::kPriorOnly);
  // The graph stage completed; only cover + disambiguation degraded.
  EXPECT_EQ(result->degradation.stages_degraded, 2);
  EXPECT_NE(result->degradation.reason.find("injected fault"),
            std::string::npos);
  EXPECT_FALSE(result->links.empty());
  EXPECT_GT(faults.FireCount("core/cover_solve"), 0);
}

TEST(DegradationTest, FaultedCoverSolverWithoutDegradationFailsTheCall) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetOptions options;
  options.degrade_to_prior = false;
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer,
                      options);
  FaultInjector faults(18);
  faults.Arm("core/cover_solve", 1.0);
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(DegradationTest, PriorOnlyKeepsCanopyConsistency) {
  // The degraded path must still respect canopies: one consistent
  // segmentation per group, so "Fellow of the AAAS" (prior 1.0 as a long
  // variant) wins over its fragments.
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result =
      tenet.LinkDocument(kFigureOneText,
                         LinkContext::WithDeadline(Deadline::Expired()));
  ASSERT_TRUE(result.ok()) << result.status();
  const LinkedConcept* fellow = FindLink(*result, "Fellow of the AAAS");
  ASSERT_NE(fellow, nullptr);
  EXPECT_EQ(fellow->concept_ref.id, world.aaas_fellow);
  EXPECT_EQ(FindLink(*result, "Fellow"), nullptr);
  EXPECT_EQ(FindLink(*result, "AAAS"), nullptr);

  // Every selected mention is either linked or isolated, never both.
  for (int m : result->selected_mentions) {
    bool linked = FindLink(*result, result->mentions.mention(m).surface) !=
                  nullptr;
    bool isolated = false;
    for (int iso : result->isolated_mentions) isolated |= iso == m;
    EXPECT_NE(linked, isolated) << "mention " << m;
  }
}

TEST(DegradationTest, DeadlineExceededStatusReportsTheStage) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetOptions options;
  options.degrade_to_prior = false;
  options.deadline_ms = 0.0;
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer,
                      options);
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("coherence stage"),
            std::string::npos);
}

TEST(DegradationTest, ModeNamesAreStable) {
  EXPECT_EQ(DegradationModeToString(DegradationInfo::Mode::kFull), "full");
  EXPECT_EQ(DegradationModeToString(DegradationInfo::Mode::kPriorOnly),
            "prior_only");
}

TEST(DegradationTest, EmptyDocumentIsFullModeEvenWhenExpired) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result =
      tenet.LinkDocument("", LinkContext::WithDeadline(Deadline::Expired()));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->links.empty());
  EXPECT_FALSE(result->degradation.degraded());
}

}  // namespace
}  // namespace core
}  // namespace tenet
