// Chaos/soak harness for the batch serving layer: multiple driver threads
// hammer a BatchLinkingService while deterministic fault schedules degrade
// its dependencies at realistic (5-20%) rates.  The suite asserts the
// serving contract end to end:
//
//   - the service never crashes and never loses a request: every submission
//     resolves to exactly one of full / degraded / shed;
//   - under sustained faults each per-dependency breaker opens within its
//     observation window, routing traffic to the prior-only tier;
//   - once the fault source clears, breakers re-close via half-open probes
//     and full-pipeline answers resume — including after a mixed storm that
//     opens several breakers with staggered cooldowns (the probe-return
//     path).
//
// Registered under the `soak` ctest label and intended to also run under
// -DTENET_SANITIZE=thread (see CMakePresets.json).
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/tenet_linker.h"
#include "common/fault_injection.h"
#include "datasets/adversarial.h"
#include "datasets/corpus_generator.h"
#include "datasets/session_generator.h"
#include "datasets/world.h"
#include "kb/delta.h"
#include "kb/types.h"
#include "obs/metrics.h"
#include "serving/batch_service.h"
#include "serving/kb_generation.h"
#include "serving/session.h"

namespace tenet {
namespace serving {
namespace {

constexpr int kDriverThreads = 3;
constexpr int kDocsPerRound = 12;

// Accumulated outcome classification across every request driven so far.
struct Tally {
  std::atomic<int64_t> submitted{0};
  std::atomic<int64_t> full{0};
  std::atomic<int64_t> degraded{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> failed{0};

  int64_t resolved() const {
    return full.load() + degraded.load() + shed.load() + failed.load();
  }
};

class ChaosSoakTest : public ::testing::Test {
 protected:
  ChaosSoakTest()
      : world_(datasets::BuildWorld()),
        linker_(baselines::BaselineSubstrate{
            &world_.kb(), &world_.embeddings, &world_.gazetteer(), {}, {}}) {
    datasets::CorpusGenerator generator(&world_.kb_world);
    Rng rng(4242);
    datasets::DatasetSpec spec = datasets::TRex42Spec();
    spec.num_docs = kDocsPerRound;
    for (const datasets::Document& doc :
         generator.Generate(spec, rng).documents) {
      texts_.push_back(doc.text);
    }

    ServingOptions options;
    // A per-fixture registry windows the counters to this soak run; the
    // breaker-transition assertions below need exact counts.
    options.metrics = &registry_;
    options.num_threads = 4;
    options.queue_capacity = 16;
    options.overflow = QueueOverflowPolicy::kReject;
    // Aggressive breaker so 5-20% fault rates trip it within one window.
    options.breaker.window_size = 32;
    options.breaker.min_samples = 8;
    options.breaker.failure_threshold = 0.04;
    options.breaker.open_cooldown_ms = 10.0;
    options.breaker.half_open_probes = 8;
    options.breaker.half_open_successes = 2;
    service_ = std::make_unique<BatchLinkingService>(&linker_, options);
  }

  // One soak round: kDriverThreads threads each push the whole corpus
  // through LinkBatch concurrently, and every result is classified.  The
  // classification is total by construction — an unexpected state fails
  // the test instead of slipping through.
  void DriveRound() {
    std::vector<std::thread> drivers;
    for (int t = 0; t < kDriverThreads; ++t) {
      drivers.emplace_back([this] {
        std::vector<ServedResult> served = service_->LinkBatch(texts_);
        tally_.submitted.fetch_add(static_cast<int64_t>(served.size()));
        for (const ServedResult& r : served) {
          if (r.shed) {
            EXPECT_EQ(r.result.status().code(),
                      StatusCode::kResourceExhausted);
            tally_.shed.fetch_add(1);
          } else if (!r.result.ok()) {
            tally_.failed.fetch_add(1);
          } else if (r.result->degradation.degraded()) {
            tally_.degraded.fetch_add(1);
          } else {
            tally_.full.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& driver : drivers) driver.join();
  }

  // Drives rounds until `done` holds, up to `max_rounds`.
  bool DriveUntil(int max_rounds, const std::function<bool()>& done) {
    for (int round = 0; round < max_rounds; ++round) {
      if (done()) return true;
      DriveRound();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return done();
  }

  bool AllBreakersClosed() const {
    ServiceStats stats = service_->Stats();
    return stats.kb_alias_breaker == BreakerState::kClosed &&
           stats.embedding_breaker == BreakerState::kClosed &&
           stats.cover_breaker == BreakerState::kClosed;
  }

  // The ledger must balance after every quiescent point: nothing lost,
  // nothing double-counted.
  void ExpectAccountingBalances() {
    ServiceStats stats = service_->Stats();
    EXPECT_EQ(stats.submitted, tally_.submitted.load());
    EXPECT_EQ(stats.submitted, stats.shed + stats.completed);
    EXPECT_EQ(stats.completed, stats.full + stats.degraded + stats.failed);
    EXPECT_EQ(tally_.resolved(), tally_.submitted.load())
        << "a request vanished without resolving";
    EXPECT_EQ(stats.shed, tally_.shed.load());
    EXPECT_EQ(stats.failed, tally_.failed.load());
  }

  // The breaker's own trip/close ledger and its published transition
  // counters must tell one story, and the state gauge must match the
  // breaker's actual state.
  void ExpectBreakerTransitionCountersConsistent(const char* dependency) {
    SCOPED_TRACE(dependency);
    const CircuitBreaker::Stats stats =
        service_->breaker(dependency)->stats();
    const std::string label = obs::LabelPair("dependency", dependency);
    auto transitions = [&](const char* to) {
      return registry_
          .GetCounter("tenet_breaker_transitions_total", "",
                      label + "," + obs::LabelPair("to", to))
          ->Value();
    };
    EXPECT_EQ(transitions("open"), stats.trips);
    EXPECT_EQ(transitions("closed"), stats.closes);
    // Every close is reached through half-open probing.
    EXPECT_GE(transitions("half_open"), transitions("closed"));
    EXPECT_EQ(registry_.GetGauge("tenet_breaker_state", "", label)->Value(),
              static_cast<double>(service_->breaker(dependency)->state()));
  }

  datasets::SyntheticWorld world_;
  baselines::TenetLinker linker_;
  std::vector<std::string> texts_;
  obs::MetricsRegistry registry_;  // declared before the service it feeds
  std::unique_ptr<BatchLinkingService> service_;
  Tally tally_;
};

TEST_F(ChaosSoakTest, SurvivesFaultStormsAndRecovers) {
  // ---- Healthy warmup: full answers flow, the ledger balances ----------
  DriveRound();
  ExpectAccountingBalances();
  EXPECT_EQ(tally_.failed.load(), 0);
  EXPECT_GT(tally_.full.load(), 0);
  ASSERT_TRUE(AllBreakersClosed());

  // ---- One open/recover cycle per dependency, at 5-20% fault rates -----
  struct FaultCase {
    const char* dependency;
    double rate;
  };
  const FaultCase kCases[] = {
      {kKbAliasDependency, 0.12},
      {kEmbeddingDependency, 0.08},
      {kCoverSolveDependency, 0.20},
  };
  for (const FaultCase& fault_case : kCases) {
    SCOPED_TRACE(fault_case.dependency);
    {
      FaultInjector faults(20210614);
      faults.Arm(fault_case.dependency, fault_case.rate);
      ASSERT_TRUE(DriveUntil(/*max_rounds=*/60, [&] {
        return service_->breaker(fault_case.dependency)->state() ==
               BreakerState::kOpen;
      })) << "breaker never opened under a sustained "
          << fault_case.rate * 100.0 << "% fault rate";
      EXPECT_GT(faults.FireCount(fault_case.dependency), 0);
    }
    // Fault source cleared: half-open probes must re-close the breaker.
    EXPECT_TRUE(DriveUntil(/*max_rounds=*/100, [&] {
      return service_->breaker(fault_case.dependency)->state() ==
             BreakerState::kClosed;
    })) << "breaker never re-closed after the faults were disarmed";
    ExpectAccountingBalances();
    EXPECT_EQ(tally_.failed.load(), 0);
  }

  // ---- Mixed storm: all three dependencies degrade at once -------------
  {
    FaultInjector faults(987654321);
    faults.Arm(kKbAliasDependency, 0.12);
    faults.Arm(kEmbeddingDependency, 0.08);
    faults.Arm(kCoverSolveDependency, 0.20);
    for (int round = 0; round < 10; ++round) DriveRound();
    ServiceStats storm = service_->Stats();
    // Load kept flowing through the storm: requests were answered (full or
    // degraded), not just shed, and nothing crashed or failed outright.
    EXPECT_GT(storm.completed, 0);
    EXPECT_LT(storm.shed, storm.submitted);
    EXPECT_EQ(tally_.failed.load(), 0);
  }

  // ---- Recovery from the mixed storm: every breaker re-closes ----------
  // Several breakers may be open with staggered cooldowns here, which is
  // exactly the situation where unused half-open probes must be returned
  // (otherwise recovery wedges).
  EXPECT_TRUE(DriveUntil(/*max_rounds=*/150, [this] {
    return AllBreakersClosed();
  })) << "breakers never all re-closed after the mixed storm";

  // Full-pipeline answers are flowing again.
  int64_t full_before = tally_.full.load();
  DriveRound();
  EXPECT_GT(tally_.full.load(), full_before);

  ExpectAccountingBalances();
  EXPECT_EQ(tally_.failed.load(), 0);
  ServiceStats final_stats = service_->Stats();
  EXPECT_GT(final_stats.submitted, 0);
  // Shedding stayed bounded: the service answered most of the traffic.
  EXPECT_LT(final_stats.shed, final_stats.submitted / 2);

  // The soak degraded documents, and the pipeline's rung counters saw
  // them.  (Pipeline instrumentation publishes to the default registry —
  // cumulative across the process, so only non-zero is asserted.)
  EXPECT_GT(tally_.degraded.load(), 0);
  int64_t degraded_total = 0;
  for (const char* rung : {"1", "2", "3"}) {
    degraded_total +=
        obs::MetricsRegistry::Default()
            ->GetCounter("tenet_degraded_documents_total", "",
                         obs::LabelPair("rung", rung))
            ->Value();
  }
  EXPECT_GT(degraded_total, 0);

  // Transition counters agree with each breaker's own trip/close ledger.
  for (const char* dependency :
       {kKbAliasDependency, kEmbeddingDependency, kCoverSolveDependency}) {
    ExpectBreakerTransitionCountersConsistent(dependency);
  }
}

// The live-update storm (`kbupdate` tier, DESIGN.md §12): driver threads
// hammer the service while a swapper performs 120 generation swap
// attempts, each appending a one-entity delta, with "serving/kb_swap"
// faults injected at 10%.  The acceptance contract: the service survives,
// failed swaps roll back (the old generation keeps serving), in-flight
// requests all resolve, the ledger balances, and afterwards the serving
// generation is exactly base + one entity per *successful* swap.
class SwapStormTest : public ::testing::Test {
 protected:
  SwapStormTest() {
    datasets::SyntheticWorld world = datasets::BuildWorld();
    datasets::CorpusGenerator generator(&world.kb_world);
    Rng rng(4242);
    datasets::DatasetSpec spec = datasets::TRex42Spec();
    spec.num_docs = kDocsPerRound;
    for (const datasets::Document& doc :
         generator.Generate(spec, rng).documents) {
      texts_.push_back(doc.text);
    }
    // The corpus is generated; the world's substrate can now move into
    // generation 1, which owns it for the rest of the storm.
    generation_ = KbGeneration::FromSubstrate(std::move(world.kb_world.kb),
                                              std::move(world.embeddings),
                                              /*id=*/1);
    base_entities_ = generation_->kb().num_entities();

    ServingOptions options;
    options.metrics = &registry_;
    options.num_threads = 4;
    options.queue_capacity = 16;
    options.overflow = QueueOverflowPolicy::kReject;
    service_ = std::make_unique<BatchLinkingService>(generation_, options);
  }

  std::vector<std::string> texts_;
  std::shared_ptr<const KbGeneration> generation_;
  int32_t base_entities_ = 0;
  obs::MetricsRegistry registry_;  // declared before the service it feeds
  std::unique_ptr<BatchLinkingService> service_;
  Tally tally_;
};

TEST_F(SwapStormTest, SurvivesAHundredFaultySwapsUnderConcurrentLoad) {
  constexpr int kSwapAttempts = 120;  // acceptance floor is 100
  FaultInjector faults(424242);
  faults.Arm("serving/kb_swap", 0.10);

  std::atomic<bool> stop{false};
  std::vector<std::thread> drivers;
  for (int t = 0; t < kDriverThreads; ++t) {
    drivers.emplace_back([this, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<ServedResult> served = service_->LinkBatch(texts_);
        tally_.submitted.fetch_add(static_cast<int64_t>(served.size()));
        for (const ServedResult& r : served) {
          if (r.shed) {
            EXPECT_EQ(r.result.status().code(),
                      StatusCode::kResourceExhausted);
            tally_.shed.fetch_add(1);
          } else if (!r.result.ok()) {
            tally_.failed.fetch_add(1);
          } else if (r.result->degradation.degraded()) {
            tally_.degraded.fetch_add(1);
          } else {
            tally_.full.fetch_add(1);
          }
        }
      }
    });
  }

  // The swapper: each attempt stacks a one-entity delta on the last
  // *successfully serving* generation.  A rolled-back candidate is
  // discarded — exactly what an updater would do after a failed swap.
  std::shared_ptr<const KbGeneration> current = generation_;
  uint64_t expected_id = 1;
  int64_t swaps_ok = 0;
  int64_t swaps_rolled_back = 0;
  for (int attempt = 0; attempt < kSwapAttempts; ++attempt) {
    kb::DeltaBuilder builder(current->kb());
    builder.AddEntity("storm entity " + std::to_string(attempt),
                      kb::EntityType::kPerson);
    std::vector<kb::DeltaSegment> segments{builder.Build()};
    Result<std::shared_ptr<const KbGeneration>> next =
        current->WithDeltas(segments, expected_id + 1);
    ASSERT_TRUE(next.ok()) << next.status();
    Status swapped = service_->SwapGeneration(*next);
    if (swapped.ok()) {
      current = *next;
      ++expected_id;
      ++swaps_ok;
    } else {
      // Injected mid-swap fault, or every RCU slot pinned under load —
      // both roll back to the old generation.
      EXPECT_TRUE(swapped.code() == StatusCode::kDataLoss ||
                  swapped.code() == StatusCode::kResourceExhausted)
          << swapped;
      ++swaps_rolled_back;
    }
    if ((attempt & 7) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& driver : drivers) driver.join();

  // Both outcomes occurred, and the service's ledger matches ours.
  EXPECT_GT(swaps_ok, 0);
  EXPECT_GT(swaps_rolled_back, 0);
  EXPECT_EQ(swaps_ok + swaps_rolled_back, kSwapAttempts);
  EXPECT_GT(faults.FireCount("serving/kb_swap"), 0);
  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.swaps_ok, swaps_ok);
  EXPECT_EQ(stats.swaps_rolled_back, swaps_rolled_back);
  EXPECT_EQ(stats.generation, static_cast<int64_t>(expected_id));
  EXPECT_EQ(service_->generation_id(), expected_id);
  EXPECT_EQ(registry_.GetGauge("tenet_kb_generation", "")->Value(),
            static_cast<double>(expected_id));
  EXPECT_EQ(registry_.GetHistogram("tenet_kb_swap_latency_ms", "")->Count(),
            swaps_ok);

  // The serving KB is exactly base + one entity per successful swap: no
  // rolled-back delta leaked in, none that landed was lost.
  ASSERT_NE(service_->generation(), nullptr);
  EXPECT_EQ(service_->generation()->kb().num_entities(),
            base_entities_ + static_cast<int32_t>(swaps_ok));
  EXPECT_EQ(service_->generation()->delta_stats().added_entities, swaps_ok);

  // Nothing was lost or double-counted under the storm, and real traffic
  // flowed throughout.
  EXPECT_EQ(stats.submitted, tally_.submitted.load());
  EXPECT_EQ(stats.submitted, stats.shed + stats.completed);
  EXPECT_EQ(stats.completed, stats.full + stats.degraded + stats.failed);
  EXPECT_EQ(tally_.resolved(), tally_.submitted.load())
      << "a request vanished during a swap";
  EXPECT_EQ(tally_.failed.load(), 0);
  EXPECT_GT(tally_.full.load(), 0);
  EXPECT_GT(stats.completed, 0);
}

// The hostile-input storm (`adversarial` tier, DESIGN.md §13): driver
// threads push clean and adversarially mutated corpora through the service
// while other threads replay multi-turn sessions (each owning its
// SessionContext) and low-rate faults hit the text front door.  The
// contract: nothing crashes, the ledger balances, the only failed requests
// are the injected text faults, and each one is accounted for in
// tenet_input_rejected_total.
class HostileStormTest : public ::testing::Test {
 protected:
  HostileStormTest()
      : world_(datasets::BuildWorld()),
        linker_(baselines::BaselineSubstrate{
            &world_.kb(), &world_.embeddings, &world_.gazetteer(), {}, {}}) {
    datasets::CorpusGenerator generator(&world_.kb_world);
    Rng rng(4242);
    datasets::DatasetSpec spec = datasets::TRex42Spec();
    spec.num_docs = kDocsPerRound;
    datasets::Dataset clean = generator.Generate(spec, rng);
    datasets::AdversarialSpec adv;
    adv.seed = 20260809;
    datasets::Dataset hostile = datasets::AdversarialMutator(adv).Mutate(clean);
    for (const datasets::Document& doc : clean.documents) {
      texts_.push_back(doc.text);
    }
    for (const datasets::Document& doc : hostile.documents) {
      texts_.push_back(doc.text);
    }

    datasets::SessionGenerator session_generator(&world_.kb_world);
    datasets::SessionSpec session_spec;
    session_spec.num_sessions = kDriverThreads;
    sessions_ = session_generator.Generate(session_spec, rng);

    ServingOptions options;
    options.metrics = &registry_;
    options.num_threads = 4;
    options.queue_capacity = 64;
    options.overflow = QueueOverflowPolicy::kReject;
    service_ = std::make_unique<BatchLinkingService>(&linker_, options);
  }

  void Classify(const std::vector<ServedResult>& served, Tally* tally) {
    tally->submitted.fetch_add(static_cast<int64_t>(served.size()));
    for (const ServedResult& r : served) {
      if (r.shed) {
        EXPECT_EQ(r.result.status().code(), StatusCode::kResourceExhausted);
        tally->shed.fetch_add(1);
      } else if (!r.result.ok()) {
        tally->failed.fetch_add(1);
      } else if (r.result->degradation.degraded()) {
        tally->degraded.fetch_add(1);
      } else {
        tally->full.fetch_add(1);
      }
    }
  }

  datasets::SyntheticWorld world_;
  baselines::TenetLinker linker_;
  std::vector<std::string> texts_;
  datasets::SessionDataset sessions_;
  obs::MetricsRegistry registry_;  // declared before the service it feeds
  std::unique_ptr<BatchLinkingService> service_;
  Tally tally_;
};

TEST_F(HostileStormTest, SurvivesHostileInputsAndConcurrentSessions) {
  auto rejected_total = [] {
    int64_t total = 0;
    for (const char* reason : {"tokenize_fault", "extract_fault"}) {
      total += obs::MetricsRegistry::Default()
                   ->GetCounter("tenet_input_rejected_total", "",
                                obs::LabelPair("reason", reason))
                   ->Value();
    }
    return total;
  };
  const int64_t rejected_before = rejected_total();

  FaultInjector faults(20260809);
  faults.Arm("text/tokenize", 0.05);
  faults.Arm("text/extract", 0.05);

  std::vector<std::thread> drivers;
  // Hostile-batch drivers: clean + mutated corpora, repeatedly.
  for (int t = 0; t < kDriverThreads; ++t) {
    drivers.emplace_back([this] {
      for (int round = 0; round < 6; ++round) {
        Classify(service_->LinkBatch(texts_), &tally_);
      }
    });
  }
  // Session drivers: each thread replays one conversation in turn order
  // through its own SessionContext (sessions are sequential internally,
  // concurrent across threads).
  std::atomic<int64_t> session_interventions{0};
  for (const datasets::Session& session : sessions_.sessions) {
    drivers.emplace_back([this, &session, &session_interventions] {
      SessionContext context;
      for (const datasets::Document& turn : session.turns) {
        std::vector<ServedResult> served =
            service_->LinkBatch({turn.text});
        Classify(served, &tally_);
        if (served.size() == 1 && !served[0].shed && served[0].result.ok()) {
          core::LinkingResult result = *served[0].result;
          SessionTurnStats stats =
              context.ApplySessionCoherence(world_.kb(), &result);
          session_interventions.fetch_add(stats.relinked_to_memory +
                                          stats.isolated_resolved);
          context.ObserveTurn(result);
        }
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();

  // Nothing vanished, nothing double-counted.
  ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.submitted, tally_.submitted.load());
  EXPECT_EQ(stats.submitted, stats.shed + stats.completed);
  EXPECT_EQ(stats.completed, stats.full + stats.degraded + stats.failed);
  EXPECT_EQ(tally_.resolved(), tally_.submitted.load())
      << "a request vanished during the hostile storm";

  // Hostile inputs alone never fail a document: every injected text fault
  // was counted at the front door, and the only requests that *surfaced*
  // as failures are the ones whose budgeted retries also drew faults (the
  // rest were retried to success — kInternal is retryable).
  const int64_t injected = faults.FireCount("text/tokenize") +
                           faults.FireCount("text/extract");
  EXPECT_GT(injected, 0);
  EXPECT_EQ(rejected_total() - rejected_before, injected);
  EXPECT_LE(tally_.failed.load(), injected);
  // Attempts ledger: a fire fails exactly one attempt, and a failed
  // attempt is followed by exactly one of {retry granted, request surfaces
  // as failed}.  Text faults are the only failure source in this storm, so
  // the three counts tie out exactly.
  EXPECT_EQ(injected, stats.retries + tally_.failed.load());

  // Real traffic flowed, including full-pipeline answers.
  EXPECT_GT(tally_.full.load(), 0);
  EXPECT_LT(stats.shed, stats.submitted);
}

}  // namespace
}  // namespace serving
}  // namespace tenet
