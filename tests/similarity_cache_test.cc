// SimilarityCache: LRU semantics, sharded capacity, the
// tenet_similarity_cache_ops_total counters, and concurrent use (the
// concurrency tests are TSan targets via the `kernel` ctest label).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "embedding/similarity_cache.h"
#include "kb/types.h"
#include "obs/metrics.h"

namespace tenet {
namespace embedding {
namespace {

kb::ConceptRef E(int id) { return kb::ConceptRef::Entity(id); }
kb::ConceptRef P(int id) { return kb::ConceptRef::Predicate(id); }

TEST(SimilarityCacheTest, MissThenHit) {
  SimilarityCache cache;
  EXPECT_FALSE(cache.Lookup(E(1), E(2)).has_value());
  cache.Insert(E(1), E(2), 0.5);
  std::optional<double> hit = cache.Lookup(E(1), E(2));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0.5);
  SimilarityCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SimilarityCacheTest, PairKeyIsUnordered) {
  SimilarityCache cache;
  cache.Insert(E(3), E(7), 0.25);
  std::optional<double> hit = cache.Lookup(E(7), E(3));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0.25);
}

TEST(SimilarityCacheTest, EntityAndPredicateWithSameIdAreDistinct) {
  SimilarityCache cache;
  cache.Insert(E(1), E(4), 0.1);
  EXPECT_FALSE(cache.Lookup(P(1), E(4)).has_value());
  EXPECT_FALSE(cache.Lookup(E(1), P(4)).has_value());
}

TEST(SimilarityCacheTest, GetOrComputeComputesOnceThenHits) {
  SimilarityCache cache;
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return 0.75;
  };
  EXPECT_EQ(cache.GetOrCompute(E(1), E(2), compute), 0.75);
  EXPECT_EQ(cache.GetOrCompute(E(2), E(1), compute), 0.75);
  EXPECT_EQ(computes, 1);
}

TEST(SimilarityCacheTest, EvictsLeastRecentlyUsedWithinBudget) {
  SimilarityCacheOptions options;
  options.max_entries = 8;
  options.num_shards = 1;  // one LRU list: eviction order is observable
  SimilarityCache cache(options);
  EXPECT_EQ(cache.max_entries(), 8u);
  for (int i = 0; i < 8; ++i) cache.Insert(E(0), E(100 + i), i);
  // Refresh the oldest entry, then overflow by one: the second-oldest goes.
  ASSERT_TRUE(cache.Lookup(E(0), E(100)).has_value());
  cache.Insert(E(0), E(200), 99.0);
  SimilarityCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 8u);
  EXPECT_TRUE(cache.Lookup(E(0), E(100)).has_value()) << "refreshed survives";
  EXPECT_FALSE(cache.Lookup(E(0), E(101)).has_value()) << "LRU evicted";
}

TEST(SimilarityCacheTest, ByteBudgetBoundsEntries) {
  SimilarityCacheOptions options;
  options.capacity_bytes = 16 << 10;  // 16 KiB ~= 170 entries at 96 B each
  SimilarityCache cache(options);
  EXPECT_GT(cache.max_entries(), 0u);
  EXPECT_LE(cache.max_entries(), (16u << 10) / 96 + 8);
  for (int i = 0; i < 1000; ++i) cache.Insert(E(i), E(i + 1), i);
  EXPECT_LE(cache.GetStats().entries, cache.max_entries());
  EXPECT_GT(cache.GetStats().evictions, 0);
}

TEST(SimilarityCacheTest, PublishesOpsCounters) {
  obs::MetricsRegistry registry;
  SimilarityCacheOptions options;
  options.max_entries = 2;
  options.num_shards = 1;
  options.metrics = &registry;
  SimilarityCache cache(options);
  cache.GetOrCompute(E(1), E(2), [] { return 0.5; });  // miss
  cache.GetOrCompute(E(1), E(2), [] { return 0.5; });  // hit
  cache.Insert(E(3), E(4), 0.1);
  cache.Insert(E(5), E(6), 0.2);  // evicts {1,2}
  auto value = [&](const char* op) {
    return registry
        .GetCounter("tenet_similarity_cache_ops_total", "",
                    obs::LabelPair("op", op))
        ->Value();
  };
  EXPECT_EQ(value("hit"), 1);
  EXPECT_EQ(value("miss"), 1);
  EXPECT_EQ(value("evict"), 1);
}

TEST(SimilarityCacheTest, HitRate) {
  SimilarityCache::Stats stats;
  EXPECT_EQ(stats.HitRate(), 0.0);
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_EQ(stats.HitRate(), 0.75);
}

// The TSan target: concurrent GetOrCompute over a deliberately overlapping
// key range, with evictions.  Values are deterministic functions of the
// key (the production contract), so whatever interleaving TSan explores,
// every returned value must be exact.
TEST(SimilarityCacheConcurrencyTest, ParallelGetOrComputeIsExact) {
  SimilarityCacheOptions options;
  options.max_entries = 64;  // small: force concurrent evictions
  options.num_shards = 4;
  SimilarityCache cache(options);
  constexpr int kThreads = 4;
  constexpr int kIds = 40;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < kIds; ++i) {
          int j = (i + t + round) % kIds;
          if (i == j) continue;
          double expected = static_cast<double>(std::min(i, j)) * 1000 +
                            std::max(i, j);
          double got = cache.GetOrCompute(E(i), E(j),
                                          [expected] { return expected; });
          if (got != expected) errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  SimilarityCache::Stats stats = cache.GetStats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.misses, 0);
  EXPECT_LE(stats.entries, cache.max_entries());
}

// Epoch semantics (KB generation swaps, DESIGN.md §12): entries are
// tagged with the generation that computed them; a lookup from a newer
// generation must never be served a value computed against an older KB.
TEST(SimilarityCacheEpochTest, NewerEpochLookupEvictsTheStaleEntry) {
  SimilarityCache cache;
  cache.Insert(E(1), E(2), 0.9, /*epoch=*/1);
  // Same generation: hit.
  ASSERT_TRUE(cache.Lookup(E(1), E(2), 1).has_value());
  // Post-swap lookup: the stale entry must miss AND be lazily erased.
  EXPECT_FALSE(cache.Lookup(E(1), E(2), 2).has_value());
  EXPECT_EQ(cache.GetStats().entries, 0u);
  // Nothing left even for the old epoch.
  EXPECT_FALSE(cache.Lookup(E(1), E(2), 1).has_value());
}

TEST(SimilarityCacheEpochTest, PinnedOldGenerationMissesButKeepsNewEntries) {
  SimilarityCache cache;
  cache.Insert(E(1), E(2), 0.4, /*epoch=*/5);
  // A request still pinned to generation 3 must not consume the newer
  // value — but it must not evict it either (the newer generation is the
  // one that will be asking from now on).
  EXPECT_FALSE(cache.Lookup(E(1), E(2), 3).has_value());
  std::optional<double> hit = cache.Lookup(E(1), E(2), 5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0.4);
}

TEST(SimilarityCacheEpochTest, InsertNeverRegressesANewerEntry) {
  SimilarityCache cache;
  cache.Insert(E(1), E(2), 0.7, /*epoch=*/4);
  // A straggler pinned to generation 2 computed against the old KB; its
  // insert must not clobber the generation-4 value.
  cache.Insert(E(1), E(2), 0.1, /*epoch=*/2);
  std::optional<double> hit = cache.Lookup(E(1), E(2), 4);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0.7);
}

TEST(SimilarityCacheEpochTest, GetOrComputeRecomputesAcrossASwap) {
  SimilarityCache cache;
  int computes = 0;
  EXPECT_EQ(cache.GetOrCompute(
                E(1), E(2),
                [&] {
                  ++computes;
                  return 0.9;
                },
                /*epoch=*/1),
            0.9);
  // Same pair after the swap: the value changed with the KB, and the
  // cache must recompute rather than serve the stale 0.9.
  EXPECT_EQ(cache.GetOrCompute(
                E(1), E(2),
                [&] {
                  ++computes;
                  return -0.3;
                },
                /*epoch=*/2),
            -0.3);
  EXPECT_EQ(computes, 2);
  // And the recomputed value is sticky for the new generation.
  EXPECT_EQ(cache.GetOrCompute(
                E(1), E(2), [&] { return 99.0; }, /*epoch=*/2),
            -0.3);
}

TEST(SimilarityCacheEpochTest, EpochZeroIsTheSingleSubstrateWorld) {
  // Default-epoch callers (no generations anywhere) behave exactly like
  // the pre-epoch cache: insert once, hit forever.
  SimilarityCache cache;
  cache.Insert(E(1), E(2), 0.5);
  ASSERT_TRUE(cache.Lookup(E(1), E(2)).has_value());
  ASSERT_TRUE(cache.Lookup(E(1), E(2), 0).has_value());
}

}  // namespace
}  // namespace embedding
}  // namespace tenet
