#include "core/pipeline.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "figure_one_world.h"

namespace tenet {
namespace core {
namespace {

using testing_support::BuildFigureOneWorld;
using testing_support::FigureOneWorld;

constexpr const char* kFigureOneText =
    "Michael Jordan studies artificial intelligence and machine learning. "
    "He was awarded as the Fellow of the AAAS. "
    "He visited Brooklyn in April 2019.";

const LinkedConcept* FindLink(const LinkingResult& result,
                              const std::string& surface) {
  for (const LinkedConcept& link : result.links) {
    if (link.surface == surface) return &link;
  }
  return nullptr;
}

TEST(PipelineTest, FigureOneHeadlineBehavior) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText);
  ASSERT_TRUE(result.ok()) << result.status();

  // The headline disambiguation: coherence overrides popularity, linking
  // Michael Jordan to the professor although the player has prior 0.7.
  const LinkedConcept* mj = FindLink(*result, "Michael Jordan");
  ASSERT_NE(mj, nullptr);
  EXPECT_TRUE(mj->concept_ref.is_entity());
  EXPECT_EQ(mj->concept_ref.id, world.professor);

  // Topics link to themselves.
  const LinkedConcept* ai = FindLink(*result, "artificial intelligence");
  ASSERT_NE(ai, nullptr);
  EXPECT_EQ(ai->concept_ref.id, world.ai);

  // Brooklyn links even though it is isolated from the academic cluster
  // (sparse coherence: no dense connection forced).
  const LinkedConcept* brooklyn = FindLink(*result, "Brooklyn");
  ASSERT_NE(brooklyn, nullptr);
  EXPECT_EQ(brooklyn->concept_ref.id, world.brooklyn);

  // "Fellow of the AAAS" is selected as one long mention (canopy machinery)
  // and linked; its short variants are not linked.
  const LinkedConcept* fellow = FindLink(*result, "Fellow of the AAAS");
  ASSERT_NE(fellow, nullptr);
  EXPECT_EQ(fellow->concept_ref.id, world.aaas_fellow);
  EXPECT_EQ(FindLink(*result, "Fellow"), nullptr);
  EXPECT_EQ(FindLink(*result, "AAAS"), nullptr);

  // Relation linking: "studies" -> field of study (coherence with the
  // academic cluster beats the tie), "visited" -> the visit predicate.
  const LinkedConcept* study = FindLink(*result, "study");
  ASSERT_NE(study, nullptr);
  EXPECT_TRUE(study->concept_ref.is_predicate());
  EXPECT_EQ(study->concept_ref.id, world.field_of_study);
  const LinkedConcept* visit = FindLink(*result, "visit");
  ASSERT_NE(visit, nullptr);
  EXPECT_EQ(visit->concept_ref.id, world.residence);

  // "April 2019" is a fresh phrase: reported isolated, not linked.
  bool april_isolated = false;
  for (int m : result->isolated_mentions) {
    if (result->mentions.mention(m).surface == "April 2019") {
      april_isolated = true;
    }
  }
  EXPECT_TRUE(april_isolated);
  EXPECT_EQ(FindLink(*result, "April 2019"), nullptr);
}

TEST(PipelineTest, TypeConstraintHolds) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText);
  ASSERT_TRUE(result.ok());
  for (const LinkedConcept& link : result->links) {
    if (link.kind == Mention::Kind::kNoun) {
      EXPECT_TRUE(link.concept_ref.is_entity());
    } else {
      EXPECT_TRUE(link.concept_ref.is_predicate());
    }
  }
}

TEST(PipelineTest, OneConceptPerMentionAndOneCanopyPerGroup) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText);
  ASSERT_TRUE(result.ok());

  std::set<int> linked_mentions;
  for (const LinkedConcept& link : result->links) {
    EXPECT_TRUE(linked_mentions.insert(link.mention_id).second)
        << "mention linked twice";
  }

  // For each group, the linked mentions must lie within a single canopy.
  const MentionSet& mentions = result->mentions;
  for (const MentionGroup& group : mentions.groups) {
    std::set<int> linked_members;
    for (int member : group.members) {
      if (linked_mentions.count(member)) linked_members.insert(member);
    }
    if (linked_members.empty()) continue;
    bool some_canopy_contains_all = false;
    for (const Canopy& canopy : group.canopies) {
      std::set<int> canopy_set(canopy.mentions.begin(),
                               canopy.mentions.end());
      bool all = std::all_of(
          linked_members.begin(), linked_members.end(),
          [&canopy_set](int m) { return canopy_set.count(m) > 0; });
      if (all) some_canopy_contains_all = true;
    }
    EXPECT_TRUE(some_canopy_contains_all);
  }
}

TEST(PipelineTest, DeterministicAcrossRuns) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> a = tenet.LinkDocument(kFigureOneText);
  Result<LinkingResult> b = tenet.LinkDocument(kFigureOneText);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->links.size(), b->links.size());
  for (size_t i = 0; i < a->links.size(); ++i) {
    EXPECT_EQ(a->links[i].mention_id, b->links[i].mention_id);
    EXPECT_EQ(a->links[i].concept_ref, b->links[i].concept_ref);
  }
  EXPECT_EQ(a->isolated_mentions, b->isolated_mentions);
}

TEST(PipelineTest, EmptyDocument) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result = tenet.LinkDocument("");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->links.empty());
  EXPECT_TRUE(result->isolated_mentions.empty());
  EXPECT_EQ(result->mentions.num_mentions(), 0);
}

TEST(PipelineTest, DocumentWithOnlyUnknownPhrases) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result =
      tenet.LinkDocument("Zanthor Quibble admired Vexalia Prune.");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->links.empty());
  // Two fresh noun phrases plus the non-linkable relational phrase
  // "admire" are all reported as isolated.
  EXPECT_EQ(result->isolated_mentions.size(), 3u);
}

TEST(PipelineTest, MentionDetectionOutputsSelectedUnion) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText);
  ASSERT_TRUE(result.ok());
  std::set<int> expected;
  for (const LinkedConcept& link : result->links) {
    expected.insert(link.mention_id);
  }
  for (int m : result->isolated_mentions) expected.insert(m);
  std::set<int> actual(result->selected_mentions.begin(),
                       result->selected_mentions.end());
  EXPECT_EQ(actual, expected);
}

TEST(PipelineTest, CandidateCountOptionRespected) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetOptions options;
  options.graph.max_candidates_per_mention = 1;
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer,
                      options);
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText);
  ASSERT_TRUE(result.ok());
  // With k=1 only the popular player candidate exists, so coherence cannot
  // rescue the professor: Michael Jordan links to the player.
  const LinkedConcept* mj = FindLink(*result, "Michael Jordan");
  ASSERT_NE(mj, nullptr);
  EXPECT_EQ(mj->concept_ref.id, world.player);
}

TEST(PipelineTest, TimingsArePopulated) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->timings.extract_ms, 0.0);
  EXPECT_GE(result->timings.TotalMs(), result->timings.extract_ms);
  EXPECT_GT(result->used_bound, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace tenet
