// BatchLinkingService: admission control, shedding, deterministic batch
// merging, per-dependency breaker routing to the degraded tier, and the
// shared retry budget.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/tenet_linker.h"
#include "common/fault_injection.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "obs/metrics.h"
#include "serving/admission_controller.h"
#include "serving/batch_service.h"

namespace tenet {
namespace serving {
namespace {

const datasets::SyntheticWorld& World() {
  static const datasets::SyntheticWorld* world =
      new datasets::SyntheticWorld(datasets::BuildWorld());
  return *world;
}

datasets::Dataset TinyDataset(uint64_t seed, int num_docs = 8) {
  datasets::CorpusGenerator gen(&World().kb_world);
  Rng rng(seed);
  datasets::DatasetSpec spec = datasets::TRex42Spec();
  spec.num_docs = num_docs;
  return gen.Generate(spec, rng);
}

baselines::BaselineSubstrate Substrate() {
  return baselines::BaselineSubstrate{
      &World().kb(), &World().embeddings, &World().gazetteer(), {}, {}};
}

std::vector<std::string> Texts(const datasets::Dataset& ds) {
  std::vector<std::string> texts;
  for (const datasets::Document& doc : ds.documents) {
    texts.push_back(doc.text);
  }
  return texts;
}

TEST(AdmissionControllerTest, ShedsAtThePendingBudget) {
  AdmissionOptions options;
  options.max_pending = 2;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.Admit(Deadline::Infinite()).ok());
  EXPECT_TRUE(admission.Admit(Deadline::Infinite()).ok());
  Status shed = admission.Admit(Deadline::Infinite());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  admission.Complete();
  EXPECT_TRUE(admission.Admit(Deadline::Infinite()).ok());
  AdmissionController::Stats stats = admission.stats();
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.shed_capacity, 1);
  EXPECT_EQ(stats.pending, 2);
}

TEST(AdmissionControllerTest, ShedsRequestsWithoutDeadlineSlack) {
  AdmissionOptions options;
  options.max_pending = 8;
  options.min_deadline_slack_ms = 5.0;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.Admit(Deadline::Infinite()).ok());
  EXPECT_TRUE(admission.Admit(Deadline::AfterMillis(10000.0)).ok());
  Status expired = admission.Admit(Deadline::Expired());
  EXPECT_EQ(expired.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.stats().shed_deadline, 1);
}

TEST(BatchServiceTest, BatchMatchesSerialInInputOrder) {
  datasets::Dataset ds = TinyDataset(81);
  baselines::TenetLinker tenet(Substrate());

  // Serial reference.
  std::vector<size_t> reference_links;
  for (const datasets::Document& doc : ds.documents) {
    Result<core::LinkingResult> r = tenet.LinkDocument(doc.text);
    ASSERT_TRUE(r.ok());
    reference_links.push_back(r->links.size());
  }

  // A per-test registry windows the (process-cumulative) counters to this
  // service instance, so the ledger assertions below are exact.
  obs::MetricsRegistry registry;
  ServingOptions options;
  options.metrics = &registry;
  options.num_threads = 4;
  options.queue_capacity = ds.documents.size();
  options.overflow = QueueOverflowPolicy::kBlock;
  BatchLinkingService service(&tenet, options);
  std::vector<ServedResult> served = service.LinkBatch(Texts(ds));

  ASSERT_EQ(served.size(), ds.documents.size());
  for (size_t i = 0; i < served.size(); ++i) {
    ASSERT_TRUE(served[i].result.ok()) << "document " << i;
    EXPECT_FALSE(served[i].shed);
    EXPECT_EQ(served[i].result->links.size(), reference_links[i])
        << "document " << i << " diverged or was merged out of order";
    EXPECT_GE(served[i].latency_ms, 0.0);
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(ds.documents.size()));
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.completed, static_cast<int64_t>(ds.documents.size()));
  EXPECT_EQ(stats.full, stats.completed);
  EXPECT_EQ(stats.failed, 0);
}

TEST(BatchServiceTest, EveryRequestResolvesToFullDegradedOrShed) {
  datasets::Dataset ds = TinyDataset(82, /*num_docs=*/12);
  baselines::TenetLinker tenet(Substrate());

  // A tiny rejecting queue and a single worker: some requests must shed.
  obs::MetricsRegistry registry;
  ServingOptions options;
  options.metrics = &registry;
  options.num_threads = 1;
  options.queue_capacity = 2;
  options.overflow = QueueOverflowPolicy::kReject;
  BatchLinkingService service(&tenet, options);
  std::vector<ServedResult> served = service.LinkBatch(Texts(ds));

  int shed = 0;
  int answered = 0;
  for (const ServedResult& r : served) {
    if (r.shed) {
      ++shed;
      EXPECT_EQ(r.result.status().code(), StatusCode::kResourceExhausted);
    } else {
      ASSERT_TRUE(r.result.ok());
      ++answered;
    }
  }
  EXPECT_EQ(shed + answered, static_cast<int>(ds.documents.size()));
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.completed, answered);
  EXPECT_EQ(stats.full + stats.degraded + stats.failed, stats.completed);
}

TEST(BatchServiceTest, ShedRequestsAreCountedButNeverTimed) {
  datasets::Dataset ds = TinyDataset(87, /*num_docs=*/12);
  baselines::TenetLinker tenet(Substrate());

  obs::MetricsRegistry registry;
  ServingOptions options;
  options.metrics = &registry;
  options.num_threads = 1;
  options.queue_capacity = 2;
  options.overflow = QueueOverflowPolicy::kReject;
  BatchLinkingService service(&tenet, options);
  std::vector<ServedResult> served = service.LinkBatch(Texts(ds));

  int shed = 0;
  int answered = 0;
  for (const ServedResult& r : served) {
    (r.shed ? shed : answered)++;
  }
  ASSERT_GT(shed, 0) << "test needs overload; widen the corpus";

  // Every shed request shows up in the rejection counters (split by
  // reason), and none of them leaves a sample in the latency histogram —
  // shedding must not flatter the tail.
  obs::Counter* rejected_capacity = registry.GetCounter(
      "tenet_admission_rejected_total", "", obs::LabelPair("reason", "capacity"));
  obs::Counter* rejected_deadline = registry.GetCounter(
      "tenet_admission_rejected_total", "", obs::LabelPair("reason", "deadline"));
  obs::Counter* rejected_queue_full = registry.GetCounter(
      "tenet_admission_rejected_total", "",
      obs::LabelPair("reason", "queue_full"));
  EXPECT_EQ(rejected_capacity->Value() + rejected_deadline->Value() +
                rejected_queue_full->Value(),
            shed);
  obs::Histogram* latency =
      registry.GetHistogram("tenet_request_latency_ms", "");
  EXPECT_EQ(latency->Count(), answered);
  EXPECT_EQ(latency->Count(), service.Stats().completed);
}

TEST(BatchServiceTest, OpenBreakerRoutesToDegradedTier) {
  datasets::Dataset ds = TinyDataset(83);
  baselines::TenetLinker tenet(Substrate());

  obs::MetricsRegistry registry;
  ServingOptions options;
  options.metrics = &registry;
  options.num_threads = 2;
  options.queue_capacity = 32;
  options.overflow = QueueOverflowPolicy::kBlock;
  options.breaker.window_size = 16;
  options.breaker.min_samples = 8;
  options.breaker.failure_threshold = 0.4;
  options.breaker.open_cooldown_ms = 60000.0;  // stays open for the test
  BatchLinkingService service(&tenet, options);

  {
    FaultInjector faults(91);
    faults.Arm("core/cover_solve", 1.0);
    // Every cover solve fails; the pipeline degrades internally and the
    // cover breaker's window fills with failures.
    (void)service.LinkBatch(Texts(ds));
  }
  EXPECT_EQ(service.breaker(kCoverSolveDependency)->state(),
            BreakerState::kOpen);

  // Faults disarmed, but the breaker is still open: requests are now routed
  // straight to the prior-only rung without touching the solver.
  const CircuitBreaker::Stats before =
      service.breaker(kCoverSolveDependency)->stats();
  std::vector<ServedResult> served = service.LinkBatch(Texts(ds));
  for (const ServedResult& r : served) {
    ASSERT_TRUE(r.result.ok());
    EXPECT_TRUE(r.result->degradation.degraded());
  }
  const CircuitBreaker::Stats after =
      service.breaker(kCoverSolveDependency)->stats();
  EXPECT_EQ(after.outcomes, before.outcomes);  // solver untouched
  ServiceStats stats = service.Stats();
  EXPECT_GE(stats.breaker_degraded,
            static_cast<int64_t>(ds.documents.size()));
}

TEST(BatchServiceTest, BreakerRecoversAfterFaultsClear) {
  datasets::Dataset ds = TinyDataset(84);
  baselines::TenetLinker tenet(Substrate());

  obs::MetricsRegistry registry;
  ServingOptions options;
  options.metrics = &registry;
  options.num_threads = 2;
  options.queue_capacity = 32;
  options.overflow = QueueOverflowPolicy::kBlock;
  options.breaker.window_size = 16;
  options.breaker.min_samples = 8;
  options.breaker.failure_threshold = 0.4;
  options.breaker.open_cooldown_ms = 5.0;
  options.breaker.half_open_probes = 4;
  options.breaker.half_open_successes = 2;
  BatchLinkingService service(&tenet, options);

  {
    FaultInjector faults(92);
    faults.Arm("core/cover_solve", 1.0);
    (void)service.LinkBatch(Texts(ds));
  }
  ASSERT_EQ(service.breaker(kCoverSolveDependency)->state(),
            BreakerState::kOpen);

  // Fault source gone; after the cooldown, half-open probes see a healthy
  // solver and close the breaker again.
  std::vector<std::string> texts = Texts(ds);
  bool closed = false;
  for (int round = 0; round < 50 && !closed; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    (void)service.LinkBatch(texts);
    closed = service.breaker(kCoverSolveDependency)->state() ==
             BreakerState::kClosed;
  }
  EXPECT_TRUE(closed) << "breaker never re-closed after recovery";
}

TEST(BatchServiceTest, RetryBudgetBoundsRetriesDuringAnOutage) {
  datasets::Dataset ds = TinyDataset(85, /*num_docs=*/10);
  // Degradation off: a faulted solver makes documents fail outright, which
  // is what request-level retries act on.
  core::TenetOptions tenet_options;
  tenet_options.degrade_to_prior = false;
  baselines::TenetLinker tenet(Substrate(), tenet_options);

  obs::MetricsRegistry registry;
  ServingOptions options;
  options.metrics = &registry;
  options.num_threads = 1;
  options.queue_capacity = 32;
  options.overflow = QueueOverflowPolicy::kBlock;
  options.retry.max_retries = 3;
  options.retry_budget.max_tokens = 4.0;
  options.retry_budget.deposit_per_success = 0.0;
  options.retry_budget.cost_per_retry = 1.0;
  // Keep the breaker from masking the retry path.
  options.breaker.min_samples = 1000000;
  BatchLinkingService service(&tenet, options);

  FaultInjector faults(93);
  faults.Arm("core/cover_solve", 1.0);
  std::vector<ServedResult> served = service.LinkBatch(Texts(ds));
  for (const ServedResult& r : served) {
    EXPECT_FALSE(r.result.ok());
  }
  // Without the shared budget this outage would cost up to 10 * 3 retries;
  // the bucket caps the whole fleet at 4.
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.retries, 4);
  EXPECT_EQ(stats.failed, static_cast<int64_t>(ds.documents.size()));
}

TEST(BatchServiceTest, AsyncSubmitInvokesCallbackExactlyOnce) {
  datasets::Dataset ds = TinyDataset(86, /*num_docs=*/4);
  baselines::TenetLinker tenet(Substrate());
  obs::MetricsRegistry registry;  // outlives the scoped service below
  ServingOptions options;
  options.metrics = &registry;
  options.num_threads = 2;
  options.queue_capacity = 8;
  options.overflow = QueueOverflowPolicy::kBlock;

  std::atomic<int> callbacks{0};
  {
    BatchLinkingService service(&tenet, options);
    for (const datasets::Document& doc : ds.documents) {
      ASSERT_TRUE(service
                      .Submit(doc.text,
                              [&callbacks](ServedResult served) {
                                EXPECT_TRUE(served.result.ok());
                                callbacks.fetch_add(1);
                              })
                      .ok());
    }
    // Destructor drains the queue and joins the workers.
  }
  EXPECT_EQ(callbacks.load(), static_cast<int>(ds.documents.size()));
}

}  // namespace
}  // namespace serving
}  // namespace tenet
