#include "embedding/embedding_store.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "embedding/trainer.h"
#include "kb/synthetic_kb.h"

namespace tenet {
namespace embedding {
namespace {

using kb::ConceptRef;

TEST(EmbeddingStoreTest, VectorRoundTrip) {
  EmbeddingStore store(4, 2, 1);
  std::span<float> v = store.MutableVector(ConceptRef::Entity(1));
  v[0] = 1.0f;
  v[3] = -2.0f;
  store.Finalize();
  std::span<const float> read = store.Vector(ConceptRef::Entity(1));
  EXPECT_FLOAT_EQ(read[0], 1.0f);
  EXPECT_FLOAT_EQ(read[1], 0.0f);
  EXPECT_FLOAT_EQ(read[3], -2.0f);
}

TEST(EmbeddingStoreTest, CosineBasics) {
  EmbeddingStore store(3, 3, 0);
  auto a = store.MutableVector(ConceptRef::Entity(0));
  a[0] = 1.0f;
  auto b = store.MutableVector(ConceptRef::Entity(1));
  b[0] = 2.0f;  // same direction
  auto c = store.MutableVector(ConceptRef::Entity(2));
  c[1] = 5.0f;  // orthogonal
  store.Finalize();

  EXPECT_NEAR(store.Cosine(ConceptRef::Entity(0), ConceptRef::Entity(1)),
              1.0, 1e-6);
  EXPECT_NEAR(store.Cosine(ConceptRef::Entity(0), ConceptRef::Entity(2)),
              0.0, 1e-6);
  EXPECT_NEAR(
      store.CosineDistance(ConceptRef::Entity(0), ConceptRef::Entity(2)),
      1.0, 1e-6);
}

TEST(EmbeddingStoreTest, ZeroVectorHasZeroCosine) {
  EmbeddingStore store(3, 2, 0);
  auto a = store.MutableVector(ConceptRef::Entity(0));
  a[0] = 1.0f;
  store.Finalize();
  EXPECT_DOUBLE_EQ(store.Cosine(ConceptRef::Entity(0), ConceptRef::Entity(1)),
                   0.0);
}

TEST(EmbeddingStoreTest, EntityAndPredicateSpacesAreDistinct) {
  EmbeddingStore store(2, 1, 1);
  auto e = store.MutableVector(ConceptRef::Entity(0));
  e[0] = 1.0f;
  auto p = store.MutableVector(ConceptRef::Predicate(0));
  p[1] = 1.0f;
  store.Finalize();
  EXPECT_NEAR(store.Cosine(ConceptRef::Entity(0), ConceptRef::Predicate(0)),
              0.0, 1e-6);
}

class TrainerTest : public ::testing::Test {
 protected:
  static kb::SyntheticKb BuildWorld(uint64_t seed) {
    kb::SyntheticKbOptions options;
    options.num_domains = 4;
    options.entities_per_domain = 25;
    options.num_predicates = 12;
    Rng rng(seed);
    return kb::SyntheticKbGenerator(options).Generate(rng);
  }
};

TEST_F(TrainerTest, IntraDomainSimilarityExceedsCrossDomain) {
  kb::SyntheticKb world = BuildWorld(5);
  Rng rng(42);
  EmbeddingStore store = StructuralEmbeddingTrainer().Train(world.kb, rng);

  double intra_sum = 0.0;
  int intra_count = 0;
  double cross_sum = 0.0;
  int cross_count = 0;
  Rng pair_rng(7);
  for (int i = 0; i < 4000; ++i) {
    kb::EntityId a =
        static_cast<kb::EntityId>(pair_rng.NextUint64(world.kb.num_entities()));
    kb::EntityId b =
        static_cast<kb::EntityId>(pair_rng.NextUint64(world.kb.num_entities()));
    if (a == b) continue;
    double cosine =
        store.Cosine(ConceptRef::Entity(a), ConceptRef::Entity(b));
    if (world.kb.entity(a).domain == world.kb.entity(b).domain) {
      intra_sum += cosine;
      ++intra_count;
    } else {
      cross_sum += cosine;
      ++cross_count;
    }
  }
  ASSERT_GT(intra_count, 0);
  ASSERT_GT(cross_count, 0);
  double intra_mean = intra_sum / intra_count;
  double cross_mean = cross_sum / cross_count;
  EXPECT_GT(intra_mean, cross_mean + 0.3)
      << "intra=" << intra_mean << " cross=" << cross_mean;
}

TEST_F(TrainerTest, PredicatesAlignWithTheirDomainEntities) {
  kb::SyntheticKb world = BuildWorld(6);
  Rng rng(43);
  EmbeddingStore store = StructuralEmbeddingTrainer().Train(world.kb, rng);

  double same = 0.0;
  double other = 0.0;
  int count = 0;
  for (kb::PredicateId p = 0; p < world.kb.num_predicates(); ++p) {
    int32_t d = world.kb.predicate(p).domain;
    int32_t d_other = (d + 1) % static_cast<int32_t>(
                                    world.entities_by_domain.size());
    if (world.entities_by_domain[d].empty() ||
        world.entities_by_domain[d_other].empty()) {
      continue;
    }
    same += store.Cosine(ConceptRef::Predicate(p),
                         ConceptRef::Entity(world.entities_by_domain[d][0]));
    other += store.Cosine(
        ConceptRef::Predicate(p),
        ConceptRef::Entity(world.entities_by_domain[d_other][0]));
    ++count;
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(same / count, other / count);
}

TEST_F(TrainerTest, DeterministicGivenSeed) {
  kb::SyntheticKb world = BuildWorld(8);
  Rng rng1(11);
  Rng rng2(11);
  EmbeddingStore s1 = StructuralEmbeddingTrainer().Train(world.kb, rng1);
  EmbeddingStore s2 = StructuralEmbeddingTrainer().Train(world.kb, rng2);
  for (kb::EntityId e = 0; e < world.kb.num_entities(); e += 7) {
    auto v1 = s1.Vector(ConceptRef::Entity(e));
    auto v2 = s2.Vector(ConceptRef::Entity(e));
    for (int d = 0; d < s1.dimension(); ++d) {
      EXPECT_FLOAT_EQ(v1[d], v2[d]);
    }
  }
}

}  // namespace
}  // namespace embedding
}  // namespace tenet
