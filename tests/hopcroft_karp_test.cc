#include "graph/hopcroft_karp.h"

#include <algorithm>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tenet {
namespace graph {
namespace {

TEST(HopcroftKarpTest, EmptyGraph) {
  HopcroftKarp hk(0, 0);
  EXPECT_EQ(hk.MaxMatching(), 0);
}

TEST(HopcroftKarpTest, NoEdges) {
  HopcroftKarp hk(3, 3);
  EXPECT_EQ(hk.MaxMatching(), 0);
  EXPECT_EQ(hk.MatchOfLeft(0), -1);
  EXPECT_EQ(hk.MatchOfRight(2), -1);
}

TEST(HopcroftKarpTest, PerfectMatchingOnIdentity) {
  HopcroftKarp hk(4, 4);
  for (int i = 0; i < 4; ++i) hk.AddEdge(i, i);
  EXPECT_EQ(hk.MaxMatching(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(hk.MatchOfLeft(i), i);
    EXPECT_EQ(hk.MatchOfRight(i), i);
  }
}

TEST(HopcroftKarpTest, RequiresAugmentingPath) {
  // l0-{r0,r1}, l1-{r0}: greedy could match l0-r0 and strand l1; maximum
  // matching must find size 2.
  HopcroftKarp hk(2, 2);
  hk.AddEdge(0, 0);
  hk.AddEdge(0, 1);
  hk.AddEdge(1, 0);
  EXPECT_EQ(hk.MaxMatching(), 2);
  EXPECT_EQ(hk.MatchOfLeft(1), 0);
  EXPECT_EQ(hk.MatchOfLeft(0), 1);
}

TEST(HopcroftKarpTest, BottleneckRightVertex) {
  // Three lefts all competing for one right.
  HopcroftKarp hk(3, 1);
  for (int l = 0; l < 3; ++l) hk.AddEdge(l, 0);
  EXPECT_EQ(hk.MaxMatching(), 1);
}

TEST(HopcroftKarpTest, IdempotentAfterSolve) {
  HopcroftKarp hk(2, 2);
  hk.AddEdge(0, 0);
  hk.AddEdge(1, 1);
  EXPECT_EQ(hk.MaxMatching(), 2);
  EXPECT_EQ(hk.MaxMatching(), 2);
  hk.AddEdge(0, 1);  // invalidates the solution, must recompute fine
  EXPECT_EQ(hk.MaxMatching(), 2);
}

// Brute force maximum matching by recursion over left vertices.
int BruteForceMatching(int num_left, int num_right,
                       const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::vector<int>> adj(num_left);
  for (auto [l, r] : edges) adj[l].push_back(r);
  std::vector<bool> used(num_right, false);
  int best = 0;
  // Depth-first over lefts, choosing to match or skip each.
  std::function<void(int, int)> rec = [&](int l, int matched) {
    if (l == num_left) {
      best = std::max(best, matched);
      return;
    }
    // Prune: even matching everything remaining cannot beat best.
    if (matched + (num_left - l) <= best) return;
    rec(l + 1, matched);  // skip l
    for (int r : adj[l]) {
      if (!used[r]) {
        used[r] = true;
        rec(l + 1, matched + 1);
        used[r] = false;
      }
    }
  };
  rec(0, 0);
  return best;
}

// Property: Hopcroft-Karp size equals brute force on random graphs, and the
// reported matching is consistent (mutual and uses real edges).
class HopcroftKarpPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HopcroftKarpPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const int num_left = 1 + static_cast<int>(rng.NextUint64(9));
  const int num_right = 1 + static_cast<int>(rng.NextUint64(9));
  std::vector<std::pair<int, int>> edges;
  HopcroftKarp hk(num_left, num_right);
  std::set<std::pair<int, int>> edge_set;
  for (int l = 0; l < num_left; ++l) {
    for (int r = 0; r < num_right; ++r) {
      if (rng.NextBool(0.35)) {
        edges.emplace_back(l, r);
        edge_set.insert({l, r});
        hk.AddEdge(l, r);
      }
    }
  }
  int size = hk.MaxMatching();
  EXPECT_EQ(size, BruteForceMatching(num_left, num_right, edges));

  // Consistency of the assignment.
  int counted = 0;
  for (int l = 0; l < num_left; ++l) {
    int r = hk.MatchOfLeft(l);
    if (r >= 0) {
      ++counted;
      EXPECT_EQ(hk.MatchOfRight(r), l);
      EXPECT_TRUE(edge_set.count({l, r})) << "matched a non-edge";
    }
  }
  EXPECT_EQ(counted, size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HopcroftKarpPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace graph
}  // namespace tenet
