// Guardrail edge cases (DESIGN.md §13): every limit of text::TextLimits is
// exercised exactly at, below, and beyond its boundary, the UTF-8 validator
// is pinned to RFC 3629, and the degenerate documents (empty, whitespace,
// punctuation soup) go through all five baselines plus TENET without
// incident.  Clean inputs must come out of the guarded path byte-identical
// to the unguarded one.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/earl_like.h"
#include "baselines/falcon_like.h"
#include "baselines/kbpearl_like.h"
#include "baselines/mintree_like.h"
#include "baselines/qkbfly_like.h"
#include "baselines/tenet_linker.h"
#include "common/fault_injection.h"
#include "common/utf8.h"
#include "figure_one_world.h"
#include "obs/metrics.h"
#include "text/extraction.h"
#include "text/limits.h"
#include "text/tokenizer.h"

namespace tenet {
namespace text {
namespace {

int64_t RejectedCount(const char* reason) {
  return obs::MetricsRegistry::Default()
      ->GetCounter("tenet_input_rejected_total", "",
                   obs::LabelPair("reason", reason))
      ->Value();
}

int64_t TruncatedCount(const char* reason) {
  return obs::MetricsRegistry::Default()
      ->GetCounter("tenet_input_truncated_total", "",
                   obs::LabelPair("reason", reason))
      ->Value();
}

// ---- UTF-8 validator --------------------------------------------------

TEST(Utf8Test, AcceptsWellFormedSequences) {
  EXPECT_TRUE(IsValidUtf8(""));
  EXPECT_TRUE(IsValidUtf8("plain ascii"));
  EXPECT_TRUE(IsValidUtf8("caf\xC3\xA9"));              // U+00E9
  EXPECT_TRUE(IsValidUtf8("\xE2\x82\xAC"));             // U+20AC euro
  EXPECT_TRUE(IsValidUtf8("\xF0\x9F\x99\x82"));         // U+1F642
  EXPECT_TRUE(IsValidUtf8("\xEF\xBF\xBD"));             // U+FFFD itself
  EXPECT_TRUE(IsValidUtf8("\xF4\x8F\xBF\xBF"));         // U+10FFFF (max)
}

TEST(Utf8Test, RejectsMalformedSequences) {
  EXPECT_FALSE(IsValidUtf8("\x80"));          // bare continuation
  EXPECT_FALSE(IsValidUtf8("\xFF"));          // not a lead byte
  EXPECT_FALSE(IsValidUtf8("\xC3"));          // truncated 2-byte
  EXPECT_FALSE(IsValidUtf8("\xE2\x82"));      // truncated 3-byte
  EXPECT_FALSE(IsValidUtf8("\xC0\x80"));      // overlong NUL
  EXPECT_FALSE(IsValidUtf8("\xC1\xAF"));      // overlong
  EXPECT_FALSE(IsValidUtf8("\xE0\x80\xA0"));  // overlong 3-byte
  EXPECT_FALSE(IsValidUtf8("\xF0\x80\x80\xA0"));  // overlong 4-byte
  EXPECT_FALSE(IsValidUtf8("\xED\xA0\x80"));  // surrogate U+D800
  EXPECT_FALSE(IsValidUtf8("\xF4\x90\x80\x80"));  // > U+10FFFF
  EXPECT_FALSE(IsValidUtf8("\xF5\x80\x80\x80"));  // lead > F4
  EXPECT_FALSE(IsValidUtf8("\xC3\x28"));      // bad continuation
}

TEST(Utf8Test, ValidationReportsFirstInvalidByte) {
  Utf8Validation v = ValidateUtf8("ok\x80\x80ok\xFF");
  EXPECT_FALSE(v.valid);
  EXPECT_EQ(v.first_invalid, 2u);
  EXPECT_EQ(v.invalid_bytes, 3u);
}

TEST(Utf8Test, SanitizePreservesOffsetsAndValidBytes) {
  const std::string dirty = "a\x80" "b\xC3\xA9" "c\xFF";
  const std::string clean = SanitizeUtf8(dirty);
  ASSERT_EQ(clean.size(), dirty.size());  // offset-preserving
  EXPECT_EQ(clean, "a b\xC3\xA9" "c ");
  EXPECT_TRUE(IsValidUtf8(clean));
  // Sanitizing valid text is the identity.
  EXPECT_EQ(SanitizeUtf8(clean), clean);
}

// ---- Tokenizer limits -------------------------------------------------

TEST(TokenizerLimitsTest, CleanPathMatchesUnguardedTokenizer) {
  const std::string doc =
      "Michael Jordan visited Brooklyn. The well-known professor's "
      "lecture, held in 2021, covered machine learning!";
  TokenizedDocument plain = Tokenize(doc);
  TextGuardReport report;
  TokenizedDocument guarded = Tokenize(doc, TextLimits{}, &report);
  ASSERT_EQ(plain.tokens.size(), guarded.tokens.size());
  for (size_t i = 0; i < plain.tokens.size(); ++i) {
    EXPECT_EQ(plain.tokens[i].t, guarded.tokens[i].t);
    EXPECT_EQ(plain.tokens[i].is_punct, guarded.tokens[i].is_punct);
  }
  EXPECT_EQ(plain.sentence_begin, guarded.sentence_begin);
  EXPECT_FALSE(report.truncated());
}

TEST(TokenizerLimitsTest, TokenExactlyAtLimitIsKept) {
  TextLimits limits;
  limits.max_token_bytes = 8;
  TextGuardReport report;
  TokenizedDocument doc =
      Tokenize("exactly8 fits.", limits, &report);
  ASSERT_EQ(doc.tokens.size(), 3u);
  EXPECT_EQ(doc.tokens[0].t, "exactly8");
  EXPECT_EQ(report.truncated_tokens, 0);
}

TEST(TokenizerLimitsTest, TokenOneByteOverLimitIsClippedNotDropped) {
  TextLimits limits;
  limits.max_token_bytes = 8;
  TextGuardReport report;
  // 9-byte word: the head is kept (degrade), the overflow is discarded.
  TokenizedDocument doc = Tokenize("overlong9 after.", limits, &report);
  ASSERT_GE(doc.tokens.size(), 2u);
  EXPECT_EQ(doc.tokens[0].t, "overlong");
  EXPECT_EQ(doc.tokens[1].t, "after");
  EXPECT_EQ(report.truncated_tokens, 1);
}

TEST(TokenizerLimitsTest, OversizedTokenClipsAtUtf8Boundary) {
  TextLimits limits;
  limits.max_token_bytes = 4;
  TextGuardReport report;
  // "aaa" + U+00E9 (2 bytes) = 5 bytes: the clip must not split the
  // 2-byte sequence, so only "aaa" survives.
  TokenizedDocument doc = Tokenize("aaa\xC3\xA9 x.", limits, &report);
  ASSERT_GE(doc.tokens.size(), 1u);
  EXPECT_EQ(doc.tokens[0].t, "aaa");
  EXPECT_TRUE(IsValidUtf8(doc.tokens[0].t));
  EXPECT_EQ(report.truncated_tokens, 1);
}

TEST(TokenizerLimitsTest, TokenCapCutsDocument) {
  TextLimits limits;
  limits.max_tokens = 4;
  TextGuardReport report;
  TokenizedDocument doc =
      Tokenize("one two three four five six.", limits, &report);
  EXPECT_EQ(doc.tokens.size(), 4u);
  EXPECT_TRUE(report.token_cap_hit);
  // Exactly at the cap: no truncation flag.
  TextGuardReport exact_report;
  TokenizedDocument exact = Tokenize("one two three four", limits,
                                     &exact_report);
  EXPECT_EQ(exact.tokens.size(), 4u);
  EXPECT_FALSE(exact_report.token_cap_hit);
}

// ---- Guarded extraction -----------------------------------------------

class GuardedExtractionTest : public ::testing::Test {
 protected:
  GuardedExtractionTest()
      : world_(testing_support::BuildFigureOneWorld()),
        extractor_(&world_.gazetteer) {}

  testing_support::FigureOneWorld world_;
  Extractor extractor_;
};

TEST_F(GuardedExtractionTest, CleanDocumentByteIdenticalToUnguardedPath) {
  const std::string doc =
      "Michael Jordan studies machine learning. He lives in Brooklyn.";
  ExtractionResult plain = extractor_.ExtractFromText(doc);
  TextGuardReport report;
  Result<ExtractionResult> guarded =
      extractor_.ExtractFromText(doc, TextLimits{}, &report);
  ASSERT_TRUE(guarded.ok());
  EXPECT_FALSE(report.truncated());
  ASSERT_EQ(plain.mentions.size(), guarded->mentions.size());
  for (size_t i = 0; i < plain.mentions.size(); ++i) {
    EXPECT_EQ(plain.mentions[i].surface, guarded->mentions[i].surface);
    EXPECT_EQ(plain.mentions[i].token_begin, guarded->mentions[i].token_begin);
    EXPECT_EQ(plain.mentions[i].token_end, guarded->mentions[i].token_end);
  }
  ASSERT_EQ(plain.relations.size(), guarded->relations.size());
  for (size_t i = 0; i < plain.relations.size(); ++i) {
    EXPECT_EQ(plain.relations[i].lemma, guarded->relations[i].lemma);
  }
  ASSERT_EQ(plain.link_after.size(), guarded->link_after.size());
  for (size_t i = 0; i < plain.link_after.size(); ++i) {
    ASSERT_EQ(plain.link_after[i].has_value(),
              guarded->link_after[i].has_value());
    if (plain.link_after[i].has_value()) {
      EXPECT_EQ(plain.link_after[i]->kind, guarded->link_after[i]->kind);
      EXPECT_EQ(plain.link_after[i]->joining_text,
                guarded->link_after[i]->joining_text);
    }
  }
}

TEST_F(GuardedExtractionTest, DocumentExactlyAtByteLimitIsAccepted) {
  TextLimits limits;
  limits.max_document_bytes = 64;
  std::string doc = "Michael Jordan lives in Brooklyn";
  doc.resize(64, 'x');
  const int64_t before = RejectedCount("document_bytes");
  Result<ExtractionResult> result =
      extractor_.ExtractFromText(doc, limits, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(RejectedCount("document_bytes"), before);
}

TEST_F(GuardedExtractionTest, DocumentOneByteOverLimitIsRejected) {
  TextLimits limits;
  limits.max_document_bytes = 64;
  std::string doc(65, 'x');
  const int64_t before = RejectedCount("document_bytes");
  Result<ExtractionResult> result =
      extractor_.ExtractFromText(doc, limits, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(RejectedCount("document_bytes"), before + 1);
}

TEST_F(GuardedExtractionTest, InvalidUtf8IsSanitizedAndCounted) {
  TextLimits limits;
  const int64_t before = TruncatedCount("invalid_utf8");
  TextGuardReport report;
  Result<ExtractionResult> result = extractor_.ExtractFromText(
      "Michael\x80\xFF Jordan lives in Brooklyn.", limits, &report);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(report.invalid_utf8_bytes, 2u);
  EXPECT_EQ(TruncatedCount("invalid_utf8"), before + 2);
  // The sanitizer split "Michael<junk><junk> Jordan": "Jordan" survives as
  // a mention-bearing token.
  bool found_jordan = false;
  for (const ShortMention& m : result->mentions) {
    if (m.surface.find("Jordan") != std::string::npos) found_jordan = true;
  }
  EXPECT_TRUE(found_jordan);
}

TEST_F(GuardedExtractionTest, InvalidUtf8RejectsWhenSanitizerDisabled) {
  TextLimits limits;
  limits.sanitize_invalid_utf8 = false;
  const int64_t before = RejectedCount("invalid_utf8");
  Result<ExtractionResult> result =
      extractor_.ExtractFromText("bad \xC0\x80 byte", limits, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(RejectedCount("invalid_utf8"), before + 1);
}

TEST_F(GuardedExtractionTest, MentionStormTruncatesAndAnnotates) {
  TextLimits limits;
  limits.max_mentions = 3;
  std::string doc;
  for (int i = 0; i < 8; ++i) doc += "Michael Jordan visited Brooklyn. ";
  const int64_t before = TruncatedCount("mentions");
  TextGuardReport report;
  Result<ExtractionResult> result =
      extractor_.ExtractFromText(doc, limits, &report);
  ASSERT_TRUE(result.ok());  // degrade, not drop
  EXPECT_EQ(static_cast<int>(result->mentions.size()), 3);
  EXPECT_GT(report.dropped_mentions, 0);
  EXPECT_EQ(TruncatedCount("mentions"), before + report.dropped_mentions);
  // The trailing feature link must not dangle past the kept prefix.
  ASSERT_EQ(result->link_after.size(), result->mentions.size());
  EXPECT_FALSE(result->link_after.back().has_value());
}

TEST_F(GuardedExtractionTest, InjectedTextFaultsRejectWithAccounting) {
  FaultInjector faults(11);
  faults.Arm("text/tokenize", 1.0);
  const int64_t before = RejectedCount("tokenize_fault");
  Result<ExtractionResult> result =
      extractor_.ExtractFromText("Brooklyn.", TextLimits{}, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(RejectedCount("tokenize_fault"), before + 1);
  faults.Disarm("text/tokenize");
  faults.Arm("text/extract", 1.0);
  const int64_t extract_before = RejectedCount("extract_fault");
  result = extractor_.ExtractFromText("Brooklyn.", TextLimits{}, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(RejectedCount("extract_fault"), extract_before + 1);
}

// ---- Candidate cap: degrade, not drop ---------------------------------

TEST_F(GuardedExtractionTest, CandidateOverflowDegradesNotDrops) {
  // "Michael Jordan" has two KB candidates; an effective cap of 1 must
  // still link the mention (to the popular player) and count the overflow.
  core::TenetOptions options;
  options.graph.max_candidates_per_mention = 4;
  options.limits.max_candidates_per_mention = 1;
  core::TenetPipeline pipeline(&world_.kb, &world_.embeddings,
                               &world_.gazetteer, options);
  const int64_t before = TruncatedCount("candidates");
  Result<core::LinkingResult> result =
      pipeline.LinkDocument("Michael Jordan visited Brooklyn.");
  ASSERT_TRUE(result.ok());
  bool linked_jordan = false;
  for (const core::LinkedConcept& link : result->links) {
    if (link.surface == "Michael Jordan") linked_jordan = true;
  }
  EXPECT_TRUE(linked_jordan);  // degraded to top-1, not dropped
  EXPECT_GT(TruncatedCount("candidates"), before);
}

TEST_F(GuardedExtractionTest, DefaultLimitsNeverClampTheCleanGraphCap) {
  // The defaults must leave the effective top-k exactly the graph option:
  // the clean path's candidate sets (and so its scores) are untouched.
  core::TenetOptions options;
  EXPECT_LT(options.graph.max_candidates_per_mention,
            options.limits.max_candidates_per_mention);
}

// ---- Degenerate documents through every system ------------------------

TEST(DegenerateDocumentsTest, AllSystemsHandleEmptyAndWhitespace) {
  static testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  baselines::BaselineSubstrate substrate{&world.kb, &world.embeddings,
                                         &world.gazetteer, {}};
  std::vector<std::unique_ptr<baselines::Linker>> linkers;
  linkers.push_back(std::make_unique<baselines::FalconLike>(substrate));
  linkers.push_back(std::make_unique<baselines::QkbflyLike>(substrate));
  linkers.push_back(std::make_unique<baselines::KbPearlLike>(substrate));
  linkers.push_back(std::make_unique<baselines::EarlLike>(substrate));
  linkers.push_back(std::make_unique<baselines::MintreeLike>(substrate));
  linkers.push_back(std::make_unique<baselines::TenetLinker>(substrate));
  for (const auto& linker : linkers) {
    for (const char* doc :
         {"", " ", "   \t\n\r  ", ".", "...", "\n\n\n", "\t.\t.\t."}) {
      Result<core::LinkingResult> result = linker->LinkDocument(doc);
      ASSERT_TRUE(result.ok())
          << linker->name() << " failed on " << ::testing::PrintToString(doc);
      EXPECT_TRUE(result->links.empty());
    }
  }
}

}  // namespace
}  // namespace text
}  // namespace tenet
