#include "common/string_util.h"

#include <ios>

#include <gtest/gtest.h>

namespace tenet {
namespace {

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("Michael Jordan"), "michael jordan");
  EXPECT_EQ(AsciiToLower("AAAS"), "aaas");
  EXPECT_EQ(AsciiToLower(""), "");
  EXPECT_EQ(AsciiToLower("a1-B2"), "a1-b2");
}

TEST(StringUtilTest, AsciiFoldLeavesHighBitBytesAlone) {
  // Regression for the locale-tolower bug: bytes >= 0x80 sit in the middle
  // of UTF-8 sequences, and a Latin-1 locale's tolower would rewrite them
  // (0xC9 'É' -> 0xE9 'é'), silently corrupting alias-index keys.  The
  // explicit ASCII fold must pass every high-bit byte through unchanged.
  for (int b = 0x80; b <= 0xFF; ++b) {
    char c = static_cast<char>(static_cast<unsigned char>(b));
    EXPECT_EQ(AsciiFoldChar(c), c) << "byte 0x" << std::hex << b;
  }
  // "Café" in UTF-8: only the ASCII 'C' folds, the C3 A9 pair survives.
  EXPECT_EQ(AsciiToLower("Caf\xC3\xA9"), "caf\xC3\xA9");
  // Uppercase 'É' (C3 89) is NOT folded to 'é' (C3 A9) — ASCII-only fold.
  EXPECT_EQ(AsciiToLower("\xC3\x89"), "\xC3\x89");
}

TEST(StringUtilTest, ParseInt64AcceptsOnlyWholeDecimalIntegers) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("0").value(), 0);
  // The atoi trap: "4x" must be an error, never silently 4.
  EXPECT_TRUE(ParseInt64("4x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64(" 4").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("4 ").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("0x10").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("99999999999999999999").status()
                  .IsInvalidArgument());  // overflow
}

TEST(StringUtilTest, ParseFloat64AcceptsOnlyWholeNumbers) {
  EXPECT_DOUBLE_EQ(ParseFloat64("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseFloat64("1e3").value(), 1000.0);
  EXPECT_DOUBLE_EQ(ParseFloat64("-0.25").value(), -0.25);
  EXPECT_TRUE(ParseFloat64("10ms").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFloat64("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFloat64("1.5.2").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFloat64(" 1").status().IsInvalidArgument());
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Brooklyn", "brooklyn"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("Brooklyn", "Brookly"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ','), std::vector<std::string>{});
  EXPECT_EQ(SplitString(",,", ','), std::vector<std::string>{});
  EXPECT_EQ(SplitString("single", ','),
            std::vector<std::string>{"single"});
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"only"}, "-"), "only");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::string original = "the storm on the sea";
  EXPECT_EQ(JoinStrings(SplitString(original, ' '), " "), original);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t x\n"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("no-op"), "no-op");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "file.cc"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, IsAsciiNumber) {
  EXPECT_TRUE(IsAsciiNumber("11"));
  EXPECT_TRUE(IsAsciiNumber("0"));
  EXPECT_FALSE(IsAsciiNumber(""));
  EXPECT_FALSE(IsAsciiNumber("1a"));
  EXPECT_FALSE(IsAsciiNumber("-1"));
}

TEST(StringUtilTest, IsCapitalized) {
  EXPECT_TRUE(IsCapitalized("Galilee"));
  EXPECT_FALSE(IsCapitalized("galilee"));
  EXPECT_FALSE(IsCapitalized(""));
  EXPECT_FALSE(IsCapitalized("1st"));
}

// The high-bit boundary contract, exhaustively over all 256 byte values:
// the fold touches exactly [A-Z], and no classifier ever claims a byte
// >= 0x80 (the middle of a UTF-8 sequence) as space / digit / alpha.
// This is the agreement the tokenizer and the alias index both build on —
// a locale-leaking reimplementation (std::tolower, std::isalnum) breaks
// it for 0xC0-0xFF under Latin-1 and is UB for negative char.
TEST(StringUtilTest, FoldAndClassesAgreeOnEveryByte) {
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    SCOPED_TRACE(b);
    if (b >= 'A' && b <= 'Z') {
      EXPECT_EQ(AsciiFoldChar(c), static_cast<char>(b + ('a' - 'A')));
    } else {
      EXPECT_EQ(AsciiFoldChar(c), c) << "fold changed a non-[A-Z] byte";
    }
    // Folding never changes a byte's character class: the tokenizer's
    // word boundaries are identical before and after AsciiToLower.
    const char folded = AsciiFoldChar(c);
    EXPECT_EQ(IsAsciiSpaceChar(folded), IsAsciiSpaceChar(c));
    EXPECT_EQ(IsAsciiDigitChar(folded), IsAsciiDigitChar(c));
    EXPECT_EQ(IsAsciiAlphaChar(folded), IsAsciiAlphaChar(c));
    EXPECT_EQ(IsAsciiAlnumChar(folded), IsAsciiAlnumChar(c));
    if (b >= 0x80) {
      EXPECT_FALSE(IsAsciiSpaceChar(c));
      EXPECT_FALSE(IsAsciiDigitChar(c));
      EXPECT_FALSE(IsAsciiAlphaChar(c));
      EXPECT_FALSE(IsAsciiAlnumChar(c));
      EXPECT_FALSE(IsAsciiUpperChar(c));
      EXPECT_FALSE(IsCapitalized(std::string(1, c)));
    }
  }
}

TEST(StringUtilTest, AsciiToLowerPreservesHighBitBytes) {
  // Multi-byte UTF-8 ("é", "€", a Cyrillic homoglyph) and bare invalid
  // bytes pass through the fold untouched; only the ASCII letters fold.
  const std::string mixed = "Caf\xC3\xA9 \xD0\x90pple \xE2\x82\xAC5 \x80\xFF";
  EXPECT_EQ(AsciiToLower(mixed), "caf\xC3\xA9 \xD0\x90pple \xE2\x82\xAC5 \x80\xFF");
  EXPECT_TRUE(EqualsIgnoreCase("\xC3\xA9X", "\xC3\xA9x"));
  // 0xC3 vs 0xE3 differ by the case bit but are not ASCII letters: they
  // must NOT compare equal (the classic tolower-on-high-bit bug).
  EXPECT_FALSE(EqualsIgnoreCase("\xC3", "\xE3"));
}

}  // namespace
}  // namespace tenet
