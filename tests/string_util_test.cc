#include "common/string_util.h"

#include <ios>

#include <gtest/gtest.h>

namespace tenet {
namespace {

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("Michael Jordan"), "michael jordan");
  EXPECT_EQ(AsciiToLower("AAAS"), "aaas");
  EXPECT_EQ(AsciiToLower(""), "");
  EXPECT_EQ(AsciiToLower("a1-B2"), "a1-b2");
}

TEST(StringUtilTest, AsciiFoldLeavesHighBitBytesAlone) {
  // Regression for the locale-tolower bug: bytes >= 0x80 sit in the middle
  // of UTF-8 sequences, and a Latin-1 locale's tolower would rewrite them
  // (0xC9 'É' -> 0xE9 'é'), silently corrupting alias-index keys.  The
  // explicit ASCII fold must pass every high-bit byte through unchanged.
  for (int b = 0x80; b <= 0xFF; ++b) {
    char c = static_cast<char>(static_cast<unsigned char>(b));
    EXPECT_EQ(AsciiFoldChar(c), c) << "byte 0x" << std::hex << b;
  }
  // "Café" in UTF-8: only the ASCII 'C' folds, the C3 A9 pair survives.
  EXPECT_EQ(AsciiToLower("Caf\xC3\xA9"), "caf\xC3\xA9");
  // Uppercase 'É' (C3 89) is NOT folded to 'é' (C3 A9) — ASCII-only fold.
  EXPECT_EQ(AsciiToLower("\xC3\x89"), "\xC3\x89");
}

TEST(StringUtilTest, ParseInt64AcceptsOnlyWholeDecimalIntegers) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("0").value(), 0);
  // The atoi trap: "4x" must be an error, never silently 4.
  EXPECT_TRUE(ParseInt64("4x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64(" 4").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("4 ").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("0x10").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("99999999999999999999").status()
                  .IsInvalidArgument());  // overflow
}

TEST(StringUtilTest, ParseFloat64AcceptsOnlyWholeNumbers) {
  EXPECT_DOUBLE_EQ(ParseFloat64("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseFloat64("1e3").value(), 1000.0);
  EXPECT_DOUBLE_EQ(ParseFloat64("-0.25").value(), -0.25);
  EXPECT_TRUE(ParseFloat64("10ms").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFloat64("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFloat64("1.5.2").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFloat64(" 1").status().IsInvalidArgument());
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Brooklyn", "brooklyn"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("Brooklyn", "Brookly"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ','), std::vector<std::string>{});
  EXPECT_EQ(SplitString(",,", ','), std::vector<std::string>{});
  EXPECT_EQ(SplitString("single", ','),
            std::vector<std::string>{"single"});
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"only"}, "-"), "only");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::string original = "the storm on the sea";
  EXPECT_EQ(JoinStrings(SplitString(original, ' '), " "), original);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t x\n"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("no-op"), "no-op");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "file.cc"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, IsAsciiNumber) {
  EXPECT_TRUE(IsAsciiNumber("11"));
  EXPECT_TRUE(IsAsciiNumber("0"));
  EXPECT_FALSE(IsAsciiNumber(""));
  EXPECT_FALSE(IsAsciiNumber("1a"));
  EXPECT_FALSE(IsAsciiNumber("-1"));
}

TEST(StringUtilTest, IsCapitalized) {
  EXPECT_TRUE(IsCapitalized("Galilee"));
  EXPECT_FALSE(IsCapitalized("galilee"));
  EXPECT_FALSE(IsCapitalized(""));
  EXPECT_FALSE(IsCapitalized("1st"));
}

}  // namespace
}  // namespace tenet
