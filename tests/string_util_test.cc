#include "common/string_util.h"

#include <gtest/gtest.h>

namespace tenet {
namespace {

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("Michael Jordan"), "michael jordan");
  EXPECT_EQ(AsciiToLower("AAAS"), "aaas");
  EXPECT_EQ(AsciiToLower(""), "");
  EXPECT_EQ(AsciiToLower("a1-B2"), "a1-b2");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Brooklyn", "brooklyn"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("Brooklyn", "Brookly"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ','), std::vector<std::string>{});
  EXPECT_EQ(SplitString(",,", ','), std::vector<std::string>{});
  EXPECT_EQ(SplitString("single", ','),
            std::vector<std::string>{"single"});
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"only"}, "-"), "only");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  std::string original = "the storm on the sea";
  EXPECT_EQ(JoinStrings(SplitString(original, ' '), " "), original);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t x\n"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("no-op"), "no-op");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "file.cc"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, IsAsciiNumber) {
  EXPECT_TRUE(IsAsciiNumber("11"));
  EXPECT_TRUE(IsAsciiNumber("0"));
  EXPECT_FALSE(IsAsciiNumber(""));
  EXPECT_FALSE(IsAsciiNumber("1a"));
  EXPECT_FALSE(IsAsciiNumber("-1"));
}

TEST(StringUtilTest, IsCapitalized) {
  EXPECT_TRUE(IsCapitalized("Galilee"));
  EXPECT_FALSE(IsCapitalized("galilee"));
  EXPECT_FALSE(IsCapitalized(""));
  EXPECT_FALSE(IsCapitalized("1st"));
}

}  // namespace
}  // namespace tenet
