#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace tenet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryFunctionsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::BoundTooSmall("x").code(), StatusCode::kBoundTooSmall);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, MessageIsPreserved) {
  Status s = Status::NotFound("no such entity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "no such entity");
  EXPECT_EQ(s.ToString(), "not_found: no such entity");
}

TEST(StatusTest, BoundTooSmallPredicate) {
  EXPECT_TRUE(Status::BoundTooSmall("B < B*").IsBoundTooSmall());
  EXPECT_FALSE(Status::Internal("x").IsBoundTooSmall());
  EXPECT_FALSE(Status().IsBoundTooSmall());
}

TEST(StatusTest, DeadlineExceededPredicate) {
  EXPECT_TRUE(Status::DeadlineExceeded("late").IsDeadlineExceeded());
  EXPECT_FALSE(Status::Internal("x").IsDeadlineExceeded());
  EXPECT_FALSE(Status().IsDeadlineExceeded());
}

TEST(StatusTest, ResourceExhaustedPredicate) {
  EXPECT_TRUE(Status::ResourceExhausted("shed").IsResourceExhausted());
  EXPECT_FALSE(Status::Internal("x").IsResourceExhausted());
  EXPECT_FALSE(Status().IsResourceExhausted());
}

TEST(StatusTest, DataLossPredicate) {
  EXPECT_TRUE(Status::DataLoss("torn write").IsDataLoss());
  EXPECT_FALSE(Status::InvalidArgument("x").IsDataLoss());
  EXPECT_FALSE(Status().IsDataLoss());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::OutOfRange("idx");
  EXPECT_EQ(os.str(), "out_of_range: idx");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    TENET_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);

  auto succeeds = [] { return Status::Ok(); };
  auto wrapper_ok = [&]() -> Status {
    TENET_RETURN_IF_ERROR(succeeds());
    return Status::NotFound("after");
  };
  EXPECT_EQ(wrapper_ok().code(), StatusCode::kNotFound);
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kBoundTooSmall),
            "bound_too_small");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDataLoss), "data_loss");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "resource_exhausted");
}

}  // namespace
}  // namespace tenet
