#include "graph/mst.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/union_find.h"

namespace tenet {
namespace graph {
namespace {

TEST(KruskalTest, SimpleTriangle) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(0, 2, 3.0);
  SpanningForest mst = KruskalMst(g);
  EXPECT_TRUE(mst.spans_all);
  EXPECT_EQ(mst.edge_indices.size(), 2u);
  EXPECT_DOUBLE_EQ(mst.total_weight, 3.0);
}

TEST(KruskalTest, DisconnectedGraphReportsNotSpanning) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(2, 3, 1.0);
  SpanningForest forest = KruskalMst(g);
  EXPECT_FALSE(forest.spans_all);
  EXPECT_EQ(forest.edge_indices.size(), 2u);
}

TEST(KruskalTest, SingleNodeSpansTrivially) {
  WeightedGraph g(1);
  SpanningForest mst = KruskalMst(g);
  EXPECT_TRUE(mst.spans_all);
  EXPECT_TRUE(mst.edge_indices.empty());
}

TEST(PrimTest, MatchesKruskalOnTriangle) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(0, 2, 3.0);
  SpanningForest prim = PrimMst(g, 0);
  EXPECT_TRUE(prim.spans_all);
  EXPECT_DOUBLE_EQ(prim.total_weight, 3.0);
}

TEST(PrimTest, CoversOnlyRootComponent) {
  WeightedGraph g(5);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(3, 4, 1.0);
  SpanningForest prim = PrimMst(g, 0);
  EXPECT_FALSE(prim.spans_all);
  EXPECT_EQ(prim.edge_indices.size(), 1u);
}

WeightedGraph RandomConnectedGraph(Rng& rng, int n, double extra_edge_prob) {
  WeightedGraph g(n);
  // Random spanning path first to guarantee connectivity.
  for (int i = 1; i < n; ++i) {
    g.AddEdge(i - 1, i, rng.NextDouble(0.01, 1.0));
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 2; v < n; ++v) {
      if (rng.NextBool(extra_edge_prob)) {
        g.AddEdge(u, v, rng.NextDouble(0.01, 1.0));
      }
    }
  }
  return g;
}

// Property test: Kruskal and Prim agree on total MST weight, the MST is
// acyclic and spanning, and removing any MST edge disconnects the MST
// (tree property) on random connected graphs.
class MstPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MstPropertyTest, KruskalEqualsPrimAndIsTree) {
  Rng rng(GetParam());
  const int n = 3 + static_cast<int>(rng.NextUint64(30));
  WeightedGraph g = RandomConnectedGraph(rng, n, 0.3);

  SpanningForest kruskal = KruskalMst(g);
  SpanningForest prim = PrimMst(g, 0);
  ASSERT_TRUE(kruskal.spans_all);
  ASSERT_TRUE(prim.spans_all);
  EXPECT_EQ(kruskal.edge_indices.size(), static_cast<size_t>(n - 1));
  EXPECT_EQ(prim.edge_indices.size(), static_cast<size_t>(n - 1));
  EXPECT_NEAR(kruskal.total_weight, prim.total_weight, 1e-9);

  // MST edges form a spanning tree: n-1 edges, no cycles.
  UnionFind uf(n);
  for (int edge_index : kruskal.edge_indices) {
    const Edge& e = g.edges()[edge_index];
    EXPECT_TRUE(uf.Union(e.u, e.v)) << "cycle in MST";
  }
  EXPECT_EQ(uf.num_sets(), 1);
}

// Cut property spot-check: the globally lightest edge is always in the MST
// when it is unique.
TEST_P(MstPropertyTest, LightestEdgeBelongsToMst) {
  Rng rng(GetParam() + 1000);
  const int n = 4 + static_cast<int>(rng.NextUint64(20));
  WeightedGraph g = RandomConnectedGraph(rng, n, 0.4);
  int lightest = 0;
  bool unique = true;
  for (int i = 1; i < g.num_edges(); ++i) {
    if (g.edges()[i].weight < g.edges()[lightest].weight) {
      lightest = i;
      unique = true;
    } else if (g.edges()[i].weight == g.edges()[lightest].weight) {
      unique = false;
    }
  }
  if (!unique) return;  // property only guaranteed for a unique minimum
  SpanningForest mst = KruskalMst(g);
  bool found = false;
  for (int edge_index : mst.edge_indices) {
    if (edge_index == lightest) found = true;
  }
  EXPECT_TRUE(found);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace graph
}  // namespace tenet
