// Scale guards: documents and KBs well beyond the evaluation sizes must
// still link correctly and within sane time budgets (the scalability claim
// of Sec. 6.2).
#include <gtest/gtest.h>

#include "common/timer.h"
#include "core/pipeline.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "tenet.h"  // umbrella header must stay self-contained

namespace tenet {
namespace {

TEST(StressTest, VeryLongDocumentLinksWithinBudget) {
  datasets::SyntheticWorld world = datasets::BuildWorld();
  datasets::CorpusGenerator gen(&world.kb_world);
  Rng rng(91);
  datasets::DatasetSpec spec = datasets::Msnbc19Spec();
  spec.mentions_per_doc = 120;
  spec.words_per_doc = 2600;
  spec.conjunction_pairs_per_doc = 6;
  spec.composites_per_doc = 5;
  datasets::Document doc = gen.GenerateDocument(spec, "stress", false, rng);
  ASSERT_GT(doc.num_words, 1500);

  core::TenetPipeline tenet(&world.kb(), &world.embeddings,
                            &world.gazetteer());
  WallTimer timer;
  Result<core::LinkingResult> result = tenet.LinkDocument(doc.text);
  double ms = timer.ElapsedMillis();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->links.size(), 40u);
  // Generous single-core budget; the bench measures ~6 ms at 60 mentions.
  EXPECT_LT(ms, 2000.0) << "pathological slowdown";

  // All invariants still hold at scale (spot checks).
  std::set<int> linked;
  for (const core::LinkedConcept& link : result->links) {
    EXPECT_TRUE(linked.insert(link.mention_id).second);
  }
  Result<core::LinkingResult> again = tenet.LinkDocument(doc.text);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->links.size(), result->links.size());
}

TEST(StressTest, LargeKnowledgeBase) {
  datasets::WorldOptions options;
  options.kb.num_domains = 30;
  options.kb.entities_per_domain = 120;
  options.kb.num_predicates = 56;
  options.seed = 92;
  WallTimer timer;
  datasets::SyntheticWorld world = datasets::BuildWorld(options);
  double build_ms = timer.ElapsedMillis();
  EXPECT_GT(world.kb().num_entities(), 3500);
  EXPECT_LT(build_ms, 30000.0);

  datasets::CorpusGenerator gen(&world.kb_world);
  Rng rng(93);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 4;
  datasets::Dataset ds = gen.Generate(spec, rng);
  core::TenetPipeline tenet(&world.kb(), &world.embeddings,
                            &world.gazetteer());
  for (const datasets::Document& doc : ds.documents) {
    Result<core::LinkingResult> result = tenet.LinkDocument(doc.text);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->links.empty());
  }
}

}  // namespace
}  // namespace tenet
