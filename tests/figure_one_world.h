// Shared test fixture: a hand-crafted micro-world reproducing the paper's
// Figure 1 scenario (Michael Jordan the professor vs. the basketball
// player), with embeddings arranged so that global coherence must override
// the local popularity prior.
#ifndef TENET_TESTS_FIGURE_ONE_WORLD_H_
#define TENET_TESTS_FIGURE_ONE_WORLD_H_

#include <span>

#include "embedding/embedding_store.h"
#include "kb/knowledge_base.h"
#include "text/gazetteer.h"

namespace tenet {
namespace testing_support {

struct FigureOneWorld {
  kb::KnowledgeBase kb;
  embedding::EmbeddingStore embeddings{8, 0, 0};
  text::Gazetteer gazetteer;

  // Entity ids.
  kb::EntityId professor = -1;
  kb::EntityId player = -1;
  kb::EntityId ai = -1;
  kb::EntityId ml = -1;
  kb::EntityId aaas_fellow = -1;
  kb::EntityId brooklyn = -1;
  // Predicate ids.
  kb::PredicateId field_of_study = -1;
  kb::PredicateId educated_at = -1;
  kb::PredicateId award_received = -1;
  kb::PredicateId residence = -1;
};

inline void SetVector(embedding::EmbeddingStore& store, kb::ConceptRef ref,
                      std::initializer_list<float> values) {
  std::span<float> v = store.MutableVector(ref);
  int i = 0;
  for (float x : values) v[i++] = x;
}

// Builds the world.  The academic cluster (professor, AI, ML, AAAS
// fellowship, field-of-study) shares one embedding direction; the sports
// cluster (player) another; Brooklyn a third.  The player is more popular
// (prior 0.7 vs 0.3 for the surface "Michael Jordan").
inline FigureOneWorld BuildFigureOneWorld() {
  FigureOneWorld w;
  w.professor = w.kb.AddEntity("M. Jordan (professor)",
                               kb::EntityType::kPerson, 0, 3.0);
  w.player = w.kb.AddEntity("M. Jordan (basketball player)",
                            kb::EntityType::kPerson, 1, 7.0);
  w.kb.AddEntityAlias(w.professor, "Michael Jordan", 3.0);
  w.kb.AddEntityAlias(w.player, "Michael Jordan", 7.0);
  w.ai = w.kb.AddEntity("artificial intelligence", kb::EntityType::kTopic,
                        0, 2.0);
  w.ml = w.kb.AddEntity("machine learning", kb::EntityType::kTopic, 0, 2.0);
  w.aaas_fellow = w.kb.AddEntity("Fellow of the AAAS",
                                 kb::EntityType::kOther, 0, 1.0);
  // Short alias so that the extractor's "Fellow" / "AAAS" variants find
  // competing candidates.
  w.kb.AddEntityAlias(w.aaas_fellow, "AAAS", 0.5);
  w.brooklyn = w.kb.AddEntity("Brooklyn", kb::EntityType::kLocation, 2, 4.0);

  w.field_of_study = w.kb.AddPredicate("field of study", 0, 2.0);
  w.kb.AddPredicateAlias(w.field_of_study, "study", 2.0);
  w.educated_at = w.kb.AddPredicate("educated at", 0, 1.0);
  w.kb.AddPredicateAlias(w.educated_at, "study", 1.0);
  w.award_received = w.kb.AddPredicate("award", 0, 1.0);
  w.residence = w.kb.AddPredicate("visit", 2, 1.0);

  TENET_CHECK(w.kb.AddFact(w.professor, w.field_of_study, w.ai).ok());
  TENET_CHECK(w.kb.AddFact(w.professor, w.field_of_study, w.ml).ok());
  TENET_CHECK(w.kb.AddFact(w.professor, w.award_received, w.aaas_fellow).ok());
  w.kb.Finalize();

  w.embeddings =
      embedding::EmbeddingStore(8, w.kb.num_entities(), w.kb.num_predicates());
  using kb::ConceptRef;
  // Academic direction e0 (with small per-concept jitter on other axes).
  SetVector(w.embeddings, ConceptRef::Entity(w.professor),
            {1.0f, 0.1f, 0.0f, 0.05f});
  SetVector(w.embeddings, ConceptRef::Entity(w.ai),
            {0.95f, 0.05f, 0.0f, -0.05f});
  SetVector(w.embeddings, ConceptRef::Entity(w.ml),
            {0.9f, 0.0f, 0.05f, 0.05f});
  SetVector(w.embeddings, ConceptRef::Entity(w.aaas_fellow),
            {0.85f, 0.0f, -0.05f, 0.1f});
  SetVector(w.embeddings, ConceptRef::Predicate(w.field_of_study),
            {0.9f, 0.1f, 0.0f, 0.0f});
  SetVector(w.embeddings, ConceptRef::Predicate(w.award_received),
            {0.8f, 0.05f, 0.1f, 0.0f});
  // Sports direction e1.
  SetVector(w.embeddings, ConceptRef::Entity(w.player),
            {0.1f, 1.0f, 0.0f, 0.0f});
  SetVector(w.embeddings, ConceptRef::Predicate(w.educated_at),
            {0.3f, 0.6f, 0.2f, 0.0f});
  // Location direction e2.
  SetVector(w.embeddings, ConceptRef::Entity(w.brooklyn),
            {0.0f, 0.1f, 1.0f, 0.0f});
  SetVector(w.embeddings, ConceptRef::Predicate(w.residence),
            {0.05f, 0.05f, 0.9f, 0.1f});
  w.embeddings.Finalize();

  for (kb::EntityId id = 0; id < w.kb.num_entities(); ++id) {
    const kb::EntityRecord& rec = w.kb.entity(id);
    w.gazetteer.AddSurface(rec.label, rec.type,
                           rec.type == kb::EntityType::kTopic);
  }
  w.gazetteer.AddSurface("Michael Jordan", kb::EntityType::kPerson);
  w.gazetteer.AddSurface("AAAS", kb::EntityType::kOther);
  w.gazetteer.AddSurface("Fellow", kb::EntityType::kOther);
  return w;
}

}  // namespace testing_support
}  // namespace tenet

#endif  // TENET_TESTS_FIGURE_ONE_WORLD_H_
