// Streaming sessions (DESIGN.md §13): the multi-turn generator's
// determinism and gold hygiene, the SessionContext's entity memory
// (re-ranking, short-form resolution, ambiguity poisoning), and the
// end-to-end claim — replaying sessions through the context scores at
// least as well as linking every turn in isolation.
#include <string>
#include <unordered_set>

#include <gtest/gtest.h>

#include "baselines/tenet_linker.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "datasets/session_generator.h"
#include "datasets/world.h"
#include "eval/harness.h"
#include "figure_one_world.h"
#include "serving/session.h"

namespace tenet {
namespace serving {
namespace {

const datasets::SyntheticWorld& World() {
  static const datasets::SyntheticWorld* world =
      new datasets::SyntheticWorld(datasets::BuildWorld());
  return *world;
}

datasets::SessionDataset GenerateSessions(uint64_t seed = 4242) {
  datasets::SessionGenerator generator(&World().kb_world);
  datasets::SessionSpec spec;
  spec.seed = seed;
  Rng rng(77);
  return generator.Generate(spec, rng);
}

TEST(SessionGeneratorTest, DeterministicFromSeed) {
  datasets::SessionDataset a = GenerateSessions();
  datasets::SessionDataset b = GenerateSessions();
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (size_t s = 0; s < a.sessions.size(); ++s) {
    ASSERT_EQ(a.sessions[s].turns.size(), b.sessions[s].turns.size());
    for (size_t t = 0; t < a.sessions[s].turns.size(); ++t) {
      EXPECT_EQ(a.sessions[s].turns[t].text, b.sessions[s].turns[t].text);
      EXPECT_EQ(a.sessions[s].turns[t].id, b.sessions[s].turns[t].id);
    }
  }
  datasets::SessionDataset other = GenerateSessions(4243);
  bool any_diff = false;
  for (size_t s = 0; s < a.sessions.size(); ++s) {
    for (size_t t = 0; t < a.sessions[s].turns.size(); ++t) {
      if (a.sessions[s].turns[t].text != other.sessions[s].turns[t].text) {
        any_diff = true;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SessionGeneratorTest, ShapeAndGoldHygiene) {
  datasets::SessionDataset sessions = GenerateSessions();
  datasets::SessionSpec spec;
  EXPECT_EQ(static_cast<int>(sessions.sessions.size()), spec.num_sessions);
  for (const datasets::Session& session : sessions.sessions) {
    EXPECT_EQ(static_cast<int>(session.turns.size()),
              spec.turns_per_session);
    for (const datasets::Document& turn : session.turns) {
      EXPECT_FALSE(turn.text.empty()) << turn.id;
      EXPECT_FALSE(turn.gold_entities.empty()) << turn.id;
      // Per-surface gold must be unambiguous within a turn (the scorer
      // keys by lowered surface).
      std::unordered_set<std::string> surfaces;
      for (const datasets::GoldEntityLink& gold : turn.gold_entities) {
        EXPECT_TRUE(surfaces.insert(AsciiToLower(gold.surface)).second)
            << turn.id << ": duplicate gold surface " << gold.surface;
      }
    }
  }
}

TEST(SessionGeneratorTest, FlattenPreservesOrderAndCount) {
  datasets::SessionDataset sessions = GenerateSessions();
  datasets::Dataset flat = sessions.Flatten();
  EXPECT_EQ(static_cast<int>(flat.documents.size()), sessions.TotalTurns());
  EXPECT_FALSE(flat.has_relation_gold);
  size_t i = 0;
  for (const datasets::Session& session : sessions.sessions) {
    for (const datasets::Document& turn : session.turns) {
      ASSERT_LT(i, flat.documents.size());
      EXPECT_EQ(flat.documents[i].id, turn.id);
      ++i;
    }
  }
}

// ---- SessionContext memory --------------------------------------------

TEST(SessionContextTest, FirstTurnIsUntouched) {
  testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  SessionContext context;
  core::LinkingResult result;
  SessionTurnStats stats = context.ApplySessionCoherence(world.kb, &result);
  EXPECT_EQ(stats.relinked_to_memory, 0);
  EXPECT_EQ(stats.isolated_resolved, 0);
}

TEST(SessionContextTest, RemembersEntitiesAndRelinksAmbiguousAlias) {
  // Turn 1 resolves the *professor* Michael Jordan; a later turn's
  // context-free link of the shared alias goes to the popular player —
  // session memory must flip it back.
  testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  SessionContext context;

  core::LinkingResult turn1;
  core::Mention m1;
  m1.surface = "Michael Jordan";
  m1.kind = core::Mention::Kind::kNoun;
  turn1.mentions.mentions.push_back(m1);
  core::LinkedConcept link1;
  link1.mention_id = 0;
  link1.surface = "Michael Jordan";
  link1.kind = core::Mention::Kind::kNoun;
  link1.concept_ref = kb::ConceptRef::Entity(world.professor);
  link1.prior = 0.3;
  turn1.links.push_back(link1);
  context.ObserveTurn(turn1);

  core::LinkingResult turn2;
  core::Mention m2;
  m2.surface = "Michael Jordan";
  m2.kind = core::Mention::Kind::kNoun;
  turn2.mentions.mentions.push_back(m2);
  core::LinkedConcept link2 = link1;
  link2.concept_ref = kb::ConceptRef::Entity(world.player);  // prior wins
  link2.prior = 0.7;
  turn2.links.push_back(link2);

  SessionTurnStats stats = context.ApplySessionCoherence(world.kb, &turn2);
  EXPECT_EQ(stats.relinked_to_memory, 1);
  ASSERT_EQ(turn2.links.size(), 1u);
  EXPECT_EQ(turn2.links[0].concept_ref.id, world.professor);
}

TEST(SessionContextTest, ResolvesIsolatedShortFormFromMemory) {
  testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  SessionContext context;

  core::LinkingResult turn1;
  core::Mention m1;
  m1.surface = "Michael Jordan";
  m1.kind = core::Mention::Kind::kNoun;
  turn1.mentions.mentions.push_back(m1);
  core::LinkedConcept link1;
  link1.mention_id = 0;
  link1.surface = "Michael Jordan";
  link1.kind = core::Mention::Kind::kNoun;
  link1.concept_ref = kb::ConceptRef::Entity(world.professor);
  link1.prior = 0.3;
  turn1.links.push_back(link1);
  context.ObserveTurn(turn1);

  // Turn 2 mentions bare "Jordan" — not a KB alias, so it arrives
  // isolated; the session short-form memory must resolve it.
  core::LinkingResult turn2;
  core::Mention m2;
  m2.surface = "Jordan";
  m2.kind = core::Mention::Kind::kNoun;
  turn2.mentions.mentions.push_back(m2);
  turn2.isolated_mentions.push_back(0);

  SessionTurnStats stats = context.ApplySessionCoherence(world.kb, &turn2);
  EXPECT_EQ(stats.isolated_resolved, 1);
  EXPECT_TRUE(turn2.isolated_mentions.empty());
  ASSERT_EQ(turn2.links.size(), 1u);
  EXPECT_EQ(turn2.links[0].concept_ref.id, world.professor);
}

TEST(SessionContextTest, AmbiguousMemoryIsPoisonedNotGuessed) {
  // The same surface observed with two entities in one conversation must
  // never be applied from memory.
  testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  SessionContext context;

  for (kb::EntityId entity : {world.professor, world.player}) {
    core::LinkingResult turn;
    core::Mention m;
    m.surface = "Michael Jordan";
    m.kind = core::Mention::Kind::kNoun;
    turn.mentions.mentions.push_back(m);
    core::LinkedConcept link;
    link.mention_id = 0;
    link.surface = "Michael Jordan";
    link.kind = core::Mention::Kind::kNoun;
    link.concept_ref = kb::ConceptRef::Entity(entity);
    link.prior = 0.5;
    turn.links.push_back(link);
    context.ObserveTurn(turn);
  }

  core::LinkingResult probe;
  core::Mention m;
  m.surface = "Jordan";
  m.kind = core::Mention::Kind::kNoun;
  probe.mentions.mentions.push_back(m);
  probe.isolated_mentions.push_back(0);
  SessionTurnStats stats = context.ApplySessionCoherence(world.kb, &probe);
  EXPECT_EQ(stats.isolated_resolved, 0);
  EXPECT_EQ(probe.isolated_mentions.size(), 1u);  // stays isolated
}

TEST(SessionContextTest, MemoryOffIsANoOp) {
  testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  SessionOptions options;
  options.apply_entity_memory = false;
  SessionContext context(options);

  core::LinkingResult turn1;
  core::Mention m1;
  m1.surface = "Michael Jordan";
  m1.kind = core::Mention::Kind::kNoun;
  turn1.mentions.mentions.push_back(m1);
  core::LinkedConcept link1;
  link1.mention_id = 0;
  link1.surface = "Michael Jordan";
  link1.kind = core::Mention::Kind::kNoun;
  link1.concept_ref = kb::ConceptRef::Entity(world.professor);
  turn1.links.push_back(link1);
  context.ObserveTurn(turn1);

  core::LinkingResult turn2;
  core::Mention m2;
  m2.surface = "Jordan";
  m2.kind = core::Mention::Kind::kNoun;
  turn2.mentions.mentions.push_back(m2);
  turn2.isolated_mentions.push_back(0);
  SessionTurnStats stats = context.ApplySessionCoherence(world.kb, &turn2);
  EXPECT_EQ(stats.isolated_resolved, 0);
  EXPECT_EQ(turn2.isolated_mentions.size(), 1u);
}

TEST(SessionContextTest, MakeLinkContextCarriesCacheAndEpoch) {
  SessionContext context;
  core::LinkContext link_context = context.MakeLinkContext(7);
  EXPECT_EQ(link_context.similarity_cache, context.similarity_cache());
  EXPECT_NE(link_context.similarity_cache, nullptr);
  EXPECT_EQ(link_context.similarity_epoch, 7u);

  SessionOptions no_cache;
  no_cache.similarity_cache_bytes = 0;
  SessionContext uncached(no_cache);
  EXPECT_EQ(uncached.MakeLinkContext().similarity_cache, nullptr);
}

// ---- End-to-end replay ------------------------------------------------

TEST(SessionReplayTest, SessionStateImprovesOverIsolation) {
  baselines::TenetLinker tenet(
      baselines::BaselineSubstrate{&World().kb(), &World().embeddings,
                                   &World().gazetteer(), {}, {}});
  datasets::SessionDataset sessions = GenerateSessions();

  eval::SessionEvalOptions with_context;
  eval::SystemScores contextual =
      eval::EvaluateSessions(tenet, World().kb(), sessions, with_context);
  eval::SessionEvalOptions isolated;
  isolated.use_session_context = false;
  eval::SystemScores baseline =
      eval::EvaluateSessions(tenet, World().kb(), sessions, isolated);

  EXPECT_EQ(contextual.CrashedDocuments(), 0);
  EXPECT_EQ(baseline.CrashedDocuments(), 0);
  // The session layer must actually intervene, and never score worse than
  // linking each turn blind.
  EXPECT_GT(contextual.session_relinked + contextual.session_isolated_resolved,
            0);
  EXPECT_GE(contextual.entity_linking.F1(), baseline.entity_linking.F1());
}

TEST(SessionReplayTest, ReplayIsDeterministic) {
  baselines::TenetLinker tenet(
      baselines::BaselineSubstrate{&World().kb(), &World().embeddings,
                                   &World().gazetteer(), {}, {}});
  datasets::SessionDataset sessions = GenerateSessions();
  eval::SystemScores a =
      eval::EvaluateSessions(tenet, World().kb(), sessions);
  eval::SystemScores b =
      eval::EvaluateSessions(tenet, World().kb(), sessions);
  EXPECT_EQ(a.entity_linking.F1(), b.entity_linking.F1());
  EXPECT_EQ(a.session_relinked, b.session_relinked);
  EXPECT_EQ(a.session_isolated_resolved, b.session_isolated_resolved);
}

}  // namespace
}  // namespace serving
}  // namespace tenet
