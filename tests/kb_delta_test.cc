// TENETDELTA1 suite: segment round-trip, the loader's corruption matrix,
// crash-safe (torn-write) behavior, and the ApplyDeltas semantics — dense
// append-only ids, composed alias weights with bit-exact untouched
// surfaces, tombstones, and near-tie prior flips.  Registered under the
// `kbupdate` ctest label.
#include "kb/delta.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "embedding/embedding_store.h"
#include "kb/knowledge_base.h"
#include "kb/types.h"

namespace tenet {
namespace kb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

// The shared base substrate: two entities in a near-tie on the surface
// "paris" (0.51 / 0.49), one unrelated entity + predicate, one fact.
struct Base {
  KnowledgeBase kb;
  embedding::EmbeddingStore embeddings{/*dimension=*/4, /*num_entities=*/3,
                                       /*num_predicates=*/1};
  EntityId paris_city;
  EntityId paris_person;
  EntityId berlin;
  PredicateId located_in;
};

Base MakeBase() {
  Base base;
  base.paris_city =
      base.kb.AddEntity("Paris", EntityType::kLocation, 0, /*popularity=*/0.51);
  base.paris_person = base.kb.AddEntity("Paris Hilton", EntityType::kPerson, 0,
                                        /*popularity=*/1.0);
  // The person's "paris" weight is 0.49: a near tie the city wins.
  base.kb.AddEntityAlias(base.paris_person, "Paris", 0.49);
  base.berlin =
      base.kb.AddEntity("Berlin", EntityType::kLocation, 0, /*popularity=*/1.0);
  base.located_in = base.kb.AddPredicate("located in");
  EXPECT_TRUE(
      base.kb.AddFact(base.paris_city, base.located_in, base.berlin).ok());
  base.kb.Finalize();
  for (int32_t e = 0; e < 3; ++e) {
    std::span<float> row =
        base.embeddings.MutableVector(ConceptRef::Entity(e));
    for (int d = 0; d < 4; ++d) row[d] = static_cast<float>(e + 1);
  }
  base.embeddings.Finalize();
  return base;
}

DeltaSegment OneOfEveryOp(const Base& base) {
  DeltaBuilder builder(base.kb);
  EntityId nova = builder.AddEntity("Nova", EntityType::kOrganization,
                                    /*domain=*/2, /*popularity=*/0.75);
  PredicateId founded = builder.AddPredicate("founded by", 0, 1.0);
  builder.AddEntityAlias(nova, "the nova org", 0.6);
  builder.AddPredicateAlias(founded, "established by", 0.4);
  builder.AdjustEntityAliasPrior(base.paris_person, "Paris", 0.8);
  builder.AdjustPredicateAliasPrior(base.located_in, "located in", 2.0);
  builder.TombstoneEntity(base.berlin);
  builder.AddFact(nova, founded, base.paris_person);
  builder.AddLiteralFact(nova, founded, "2026");
  builder.SetEmbedding(ConceptRef::Entity(nova),
                       std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  return builder.Build();
}

TEST(DeltaSegmentTest, RoundTripsEveryOpThroughDisk) {
  Base base = MakeBase();
  DeltaSegment segment = OneOfEveryOp(base);
  std::string path = TempPath("delta_roundtrip.tenetdelta");
  ASSERT_TRUE(WriteDeltaSegment(segment, path).ok());

  Result<DeltaSegment> loaded = LoadDeltaSegment(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->records.size(), segment.records.size());
  for (size_t i = 0; i < segment.records.size(); ++i) {
    SCOPED_TRACE(i);
    const DeltaRecord& a = segment.records[i];
    const DeltaRecord& b = loaded->records[i];
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.domain, b.domain);
    EXPECT_EQ(a.weight, b.weight);  // bit-exact: doubles are memcpy'd
    EXPECT_EQ(a.subject, b.subject);
    EXPECT_EQ(a.predicate, b.predicate);
    EXPECT_EQ(a.object, b.object);
    EXPECT_EQ(a.ref_kind, b.ref_kind);
    EXPECT_EQ(a.embedding, b.embedding);
  }
}

TEST(DeltaSegmentTest, LoaderRejectsTheCorruptionMatrix) {
  Base base = MakeBase();
  DeltaSegment segment = OneOfEveryOp(base);
  std::string path = TempPath("delta_corrupt.tenetdelta");
  ASSERT_TRUE(WriteDeltaSegment(segment, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 60u);

  struct Corruption {
    const char* what;
    size_t offset;
  };
  const Corruption kMatrix[] = {
      {"magic", 0},
      {"endian tag", 12},
      {"record count", 16},
      {"header checksum", 32},
      {"first record op", 40},
      {"record payload", bytes.size() - 1},
  };
  for (const Corruption& corruption : kMatrix) {
    SCOPED_TRACE(corruption.what);
    std::string mutated = bytes;
    mutated[corruption.offset] ^= 0x5a;
    std::string bad = TempPath("delta_corrupt_case.tenetdelta");
    { std::ofstream(bad, std::ios::binary) << mutated; }
    Result<DeltaSegment> loaded = LoadDeltaSegment(bad);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
  // Truncation (a short read, not a flipped byte) is also refused.
  {
    std::string bad = TempPath("delta_truncated.tenetdelta");
    std::ofstream(bad, std::ios::binary)
        << bytes.substr(0, bytes.size() / 2);
    Result<DeltaSegment> loaded = LoadDeltaSegment(bad);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
  // The pristine file still loads: the matrix never mutated it in place.
  EXPECT_TRUE(LoadDeltaSegment(path).ok());
}

TEST(DeltaSegmentTest, InjectedTornWriteNeverPublishesASegment) {
  Base base = MakeBase();
  DeltaSegment segment = OneOfEveryOp(base);
  std::string path = TempPath("delta_torn.tenetdelta");
  std::remove(path.c_str());
  {
    FaultInjector faults(7);
    faults.Arm("kb/io/write_delta", 1.0);
    Status written = WriteDeltaSegment(segment, path);
    ASSERT_FALSE(written.ok());
    EXPECT_EQ(written.code(), StatusCode::kDataLoss);
    EXPECT_EQ(faults.FireCount("kb/io/write_delta"), 1);
  }
  // The crash left temp-file debris, never a readable target.
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(FileExists(path + ".tmp"));
  EXPECT_EQ(LoadDeltaSegment(path).status().code(), StatusCode::kNotFound);
  std::remove((path + ".tmp").c_str());
}

TEST(ApplyDeltasTest, AddedConceptsBecomeCandidatesWithEmbeddings) {
  Base base = MakeBase();
  DeltaBuilder builder(base.kb);
  EntityId nova = builder.AddEntity("Nova", EntityType::kOrganization, 2, 0.75);
  builder.AddEntityAlias(nova, "the nova org", 0.6);
  builder.SetEmbedding(ConceptRef::Entity(nova),
                       std::vector<float>{1.0f, 0.0f, 0.0f, 0.0f});
  std::vector<DeltaSegment> segments{builder.Build()};

  Result<AppliedDelta> applied =
      ApplyDeltas(base.kb, base.embeddings, segments);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(applied->stats.added_entities, 1);
  EXPECT_EQ(applied->stats.added_aliases, 2);  // label alias + explicit one
  ASSERT_EQ(applied->kb.num_entities(), base.kb.num_entities() + 1);
  EXPECT_EQ(applied->kb.entity(nova).label, "Nova");
  EXPECT_EQ(applied->kb.entity(nova).domain, 2);

  std::vector<EntityCandidate> by_label =
      applied->kb.CandidateEntities("Nova", std::nullopt, 4);
  ASSERT_EQ(by_label.size(), 1u);
  EXPECT_EQ(by_label[0].entity, nova);
  std::vector<EntityCandidate> by_alias =
      applied->kb.CandidateEntities("the nova org", std::nullopt, 4);
  ASSERT_EQ(by_alias.size(), 1u);
  EXPECT_EQ(by_alias[0].entity, nova);

  ASSERT_EQ(applied->embeddings.num_entities(), base.kb.num_entities() + 1);
  std::span<const float> row =
      applied->embeddings.Vector(ConceptRef::Entity(nova));
  EXPECT_EQ(row[0], 1.0f);
  EXPECT_EQ(row[1], 0.0f);
  // The base rows rode through bit-exact.
  std::span<const float> berlin_row =
      applied->embeddings.Vector(ConceptRef::Entity(base.berlin));
  EXPECT_EQ(berlin_row[0], 3.0f);
}

TEST(ApplyDeltasTest, UntouchedSurfacesKeepBitExactPriors) {
  Base base = MakeBase();
  DeltaBuilder builder(base.kb);
  builder.AddEntity("Nova", EntityType::kOrganization);
  std::vector<DeltaSegment> segments{builder.Build()};
  Result<AppliedDelta> applied =
      ApplyDeltas(base.kb, base.embeddings, segments);
  ASSERT_TRUE(applied.ok()) << applied.status();

  for (const char* surface : {"Paris", "Paris Hilton", "Berlin"}) {
    SCOPED_TRACE(surface);
    std::vector<EntityCandidate> before =
        base.kb.CandidateEntities(surface, std::nullopt, 4);
    std::vector<EntityCandidate> after =
        applied->kb.CandidateEntities(surface, std::nullopt, 4);
    ASSERT_EQ(before.size(), after.size());
    for (size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before[i].entity, after[i].entity);
      // EQ, not NEAR: the kRestorePriors contract is bit-exact.
      EXPECT_EQ(before[i].prior, after[i].prior);
    }
  }
}

TEST(ApplyDeltasTest, PriorAdjustmentFlipsANearTie) {
  Base base = MakeBase();
  // Sanity: the city wins "paris" 0.51 to 0.49 in the base.
  std::vector<EntityCandidate> before =
      base.kb.CandidateEntities("Paris", std::nullopt, 4);
  ASSERT_EQ(before.size(), 2u);
  ASSERT_EQ(before[0].entity, base.paris_city);

  DeltaBuilder builder(base.kb);
  builder.AdjustEntityAliasPrior(base.paris_person, "Paris", 0.8);
  std::vector<DeltaSegment> segments{builder.Build()};
  Result<AppliedDelta> applied =
      ApplyDeltas(base.kb, base.embeddings, segments);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(applied->stats.adjusted_priors, 1);
  EXPECT_EQ(applied->stats.touched_surfaces, 1);

  std::vector<EntityCandidate> after =
      applied->kb.CandidateEntities("Paris", std::nullopt, 4);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].entity, base.paris_person) << "the tie did not flip";
  EXPECT_NEAR(after[0].prior, 0.8 / (0.8 + 0.51), 1e-12);
  EXPECT_NEAR(after[1].prior, 0.51 / (0.8 + 0.51), 1e-12);
}

TEST(ApplyDeltasTest, TombstoneStripsCandidatesAndDropsFacts) {
  Base base = MakeBase();
  DeltaBuilder builder(base.kb);
  builder.TombstoneEntity(base.berlin);
  std::vector<DeltaSegment> segments{builder.Build()};
  Result<AppliedDelta> applied =
      ApplyDeltas(base.kb, base.embeddings, segments);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(applied->stats.tombstones, 1);
  EXPECT_EQ(applied->stats.dropped_facts, 1);  // Paris -located in-> Berlin

  // Ids stay dense — the record survives — but the entity is unreachable.
  ASSERT_EQ(applied->kb.num_entities(), base.kb.num_entities());
  EXPECT_TRUE(
      applied->kb.CandidateEntities("Berlin", std::nullopt, 4).empty());
  EXPECT_EQ(applied->kb.num_facts(), 0);
}

TEST(ApplyDeltasTest, LaterSegmentsSeeEarlierSegmentsIds) {
  Base base = MakeBase();
  DeltaBuilder first(base.kb);
  EntityId nova = first.AddEntity("Nova", EntityType::kOrganization);
  DeltaBuilder second(first.num_entities(), first.num_predicates());
  EntityId halo = second.AddEntity("Halo", EntityType::kOrganization);
  second.AddFact(halo, base.located_in, nova);
  std::vector<DeltaSegment> segments{first.Build(), second.Build()};

  Result<AppliedDelta> applied =
      ApplyDeltas(base.kb, base.embeddings, segments);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(applied->stats.added_entities, 2);
  EXPECT_EQ(applied->stats.added_facts, 1);
  ASSERT_EQ(applied->kb.num_entities(), base.kb.num_entities() + 2);
  const Triple& fact = applied->kb.facts().back();
  EXPECT_EQ(fact.subject, halo);
  EXPECT_EQ(fact.object_entity, nova);
}

TEST(ApplyDeltasTest, RejectsSegmentsBuiltAgainstADifferentBase) {
  Base base = MakeBase();
  // Built as if the base had 10 entities: its first add claims id 10.
  DeltaBuilder builder(/*base_entities=*/10, /*base_predicates=*/1);
  builder.AddEntity("Nova", EntityType::kOrganization);
  std::vector<DeltaSegment> segments{builder.Build()};
  Result<AppliedDelta> applied =
      ApplyDeltas(base.kb, base.embeddings, segments);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApplyDeltasTest, RejectsAdjustmentsOfMissingPostings) {
  Base base = MakeBase();
  DeltaBuilder builder(base.kb);
  builder.AdjustEntityAliasPrior(base.berlin, "no such surface", 0.9);
  std::vector<DeltaSegment> segments{builder.Build()};
  Result<AppliedDelta> applied =
      ApplyDeltas(base.kb, base.embeddings, segments);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApplyDeltasTest, RejectsEmbeddingDimensionMismatch) {
  Base base = MakeBase();
  DeltaBuilder builder(base.kb);
  builder.SetEmbedding(ConceptRef::Entity(base.berlin),
                       std::vector<float>{1.0f, 2.0f});  // dim 2, store is 4
  std::vector<DeltaSegment> segments{builder.Build()};
  Result<AppliedDelta> applied =
      ApplyDeltas(base.kb, base.embeddings, segments);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kb
}  // namespace tenet
