// Tests for the NLP substrate: tokenizer, lemmatizer, features, gazetteer.
#include <gtest/gtest.h>

#include "common/string_util.h"
#include "text/features.h"
#include "text/gazetteer.h"
#include "text/lemmatizer.h"
#include "text/tokenizer.h"
#include "text/wordlists.h"

namespace tenet {
namespace text {
namespace {

// ---- Tokenizer ------------------------------------------------------------

TEST(TokenizerTest, SplitsWordsAndPunctuation) {
  TokenizedDocument doc = Tokenize("Rembrandt painted The Storm.");
  ASSERT_EQ(doc.tokens.size(), 5u);
  EXPECT_EQ(doc.tokens[0].t, "Rembrandt");
  EXPECT_EQ(doc.tokens[3].t, "Storm");
  EXPECT_EQ(doc.tokens[4].t, ".");
  EXPECT_TRUE(doc.tokens[4].is_punct);
  EXPECT_EQ(doc.num_sentences(), 1);
}

TEST(TokenizerTest, SentenceBoundaries) {
  TokenizedDocument doc = Tokenize("He left. She stayed! Done?");
  EXPECT_EQ(doc.num_sentences(), 3);
  EXPECT_EQ(doc.sentence_begin[0], 0);
  EXPECT_EQ(doc.tokens[doc.sentence_begin[1]].t, "She");
  EXPECT_EQ(doc.tokens[doc.sentence_begin[2]].t, "Done");
  // Every token's sentence field is consistent with boundaries.
  for (int s = 0; s < doc.num_sentences(); ++s) {
    for (int i = doc.sentence_begin[s]; i < doc.SentenceEnd(s); ++i) {
      EXPECT_EQ(doc.tokens[i].sentence, s);
    }
  }
}

TEST(TokenizerTest, ColonIsPunctuationButNotSentenceEnd) {
  TokenizedDocument doc = Tokenize("Winter Crown: Harvest Elegy is good.");
  EXPECT_EQ(doc.num_sentences(), 1);
  EXPECT_EQ(doc.tokens[2].t, ":");
  EXPECT_TRUE(doc.tokens[2].is_punct);
}

TEST(TokenizerTest, IntraWordHyphenKept) {
  TokenizedDocument doc = Tokenize("A co-author spoke - loudly.");
  bool found = false;
  for (const Token& t : doc.tokens) {
    if (t.t == "co-author") found = true;
  }
  EXPECT_TRUE(found);
  // Free-standing hyphen is punctuation.
  int hyphens = 0;
  for (const Token& t : doc.tokens) {
    if (t.t == "-" && t.is_punct) ++hyphens;
  }
  EXPECT_EQ(hyphens, 1);
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").tokens.empty());
  EXPECT_TRUE(Tokenize("   \n\t ").tokens.empty());
  EXPECT_EQ(Tokenize("").num_sentences(), 0);
}

TEST(TokenizerTest, NumbersAreTokens) {
  TokenizedDocument doc = Tokenize("Apollo 11 mission");
  ASSERT_EQ(doc.tokens.size(), 3u);
  EXPECT_EQ(doc.tokens[1].t, "11");
  EXPECT_FALSE(doc.tokens[1].is_punct);
}

TEST(TokenizerTest, HighBitBytesAgreeWithAsciiCaseFold) {
  // The gazetteer folds surfaces with the ASCII-only AsciiToLower, so the
  // tokenizer must place identical token boundaries before and after the
  // fold — including through multi-byte UTF-8 (high-bit bytes are
  // word-continuation, never boundaries) and around stray invalid bytes
  // (skipped outside word runs).  A locale-leaking isalnum/tolower breaks
  // exactly this agreement.
  const char* kDocs[] = {
      "Caf\xC3\xA9 MAN visited Z\xC3\xBCrich.",   // é, ü mid-word
      "\xD0\x90pple met \xD0\x90PPLE",            // Cyrillic А lead byte
      "Smile \xF0\x9F\x99\x82 now!",              // 4-byte emoji island
      "A\x80Z mixed \xFFQ end",                   // stray invalid bytes
  };
  for (const char* raw : kDocs) {
    SCOPED_TRACE(raw);
    const std::string text = raw;
    TokenizedDocument upper = Tokenize(text);
    TokenizedDocument lower = Tokenize(AsciiToLower(text));
    ASSERT_EQ(upper.tokens.size(), lower.tokens.size());
    for (size_t i = 0; i < upper.tokens.size(); ++i) {
      EXPECT_EQ(AsciiToLower(upper.tokens[i].t), lower.tokens[i].t);
      EXPECT_EQ(upper.tokens[i].sentence, lower.tokens[i].sentence);
      EXPECT_EQ(upper.tokens[i].is_punct, lower.tokens[i].is_punct);
    }
    EXPECT_EQ(upper.num_sentences(), lower.num_sentences());
  }
}

// ---- Lemmatizer -----------------------------------------------------------

TEST(LemmatizerTest, IrregularVerbsFromTable) {
  EXPECT_EQ(LemmatizeVerb("wrote"), "write");
  EXPECT_EQ(LemmatizeVerb("taught"), "teach");
  EXPECT_EQ(LemmatizeVerb("won"), "win");
  EXPECT_EQ(LemmatizeVerb("led"), "lead");
  EXPECT_EQ(LemmatizeVerb("bought"), "buy");
}

TEST(LemmatizerTest, RegularInflections) {
  EXPECT_EQ(LemmatizeVerb("visited"), "visit");
  EXPECT_EQ(LemmatizeVerb("studies"), "study");
  EXPECT_EQ(LemmatizeVerb("studied"), "study");
  EXPECT_EQ(LemmatizeVerb("paints"), "paint");
  EXPECT_EQ(LemmatizeVerb("painting"), "paint");
  EXPECT_EQ(LemmatizeVerb("starred"), "star");
}

TEST(LemmatizerTest, CaseInsensitive) {
  EXPECT_EQ(LemmatizeVerb("Visited"), "visit");
  EXPECT_EQ(LemmatizeVerb("WROTE"), "write");
}

TEST(LemmatizerTest, LemmaIsFixpoint) {
  for (const VerbForms& v : Verbs()) {
    EXPECT_EQ(LemmatizeVerb(v.lemma), v.lemma);
    EXPECT_EQ(LemmatizeVerb(v.past), v.lemma);
    EXPECT_EQ(LemmatizeVerb(v.third), v.lemma);
    EXPECT_EQ(LemmatizeVerb(v.gerund), v.lemma);
  }
}

TEST(LemmatizerTest, RelationalPhraseKeepsParticle) {
  EXPECT_EQ(LemmatizeRelationalPhrase("worked at"), "work at");
  EXPECT_EQ(LemmatizeRelationalPhrase("lives in"), "live in");
  EXPECT_EQ(LemmatizeRelationalPhrase("visited"), "visit");
  EXPECT_EQ(LemmatizeRelationalPhrase(""), "");
}

TEST(LemmatizerTest, KnownVerbForms) {
  EXPECT_TRUE(IsKnownVerbForm("painted"));
  EXPECT_TRUE(IsKnownVerbForm("Paints"));
  EXPECT_FALSE(IsKnownVerbForm("Rembrandt"));
  EXPECT_FALSE(IsKnownVerbForm("the"));
}

// ---- Connector features (Sec. 5.1) ----------------------------------------

TEST(FeaturesTest, ConjunctionConnector) {
  auto c = ClassifyConnector({"and"});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->kind, ConnectorKind::kConjunction);
  EXPECT_EQ(c->joining_text, "and");
}

TEST(FeaturesTest, PrepositionConnectors) {
  auto c1 = ClassifyConnector({"of"});
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->kind, ConnectorKind::kPreposition);

  auto c2 = ClassifyConnector({"on", "the"});
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->kind, ConnectorKind::kPreposition);
  EXPECT_EQ(c2->joining_text, "on the");

  auto c3 = ClassifyConnector({"Of", "The"});
  ASSERT_TRUE(c3.has_value());
  EXPECT_EQ(c3->joining_text, "of the");
}

TEST(FeaturesTest, NumberConnector) {
  auto c = ClassifyConnector({"11"});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->kind, ConnectorKind::kNumber);
  EXPECT_EQ(c->joining_text, "11");
}

TEST(FeaturesTest, PunctuationConnector) {
  auto c = ClassifyConnector({":"});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->kind, ConnectorKind::kPunctuation);
}

TEST(FeaturesTest, NonConnectors) {
  EXPECT_FALSE(ClassifyConnector({}).has_value());
  EXPECT_FALSE(ClassifyConnector({"painted"}).has_value());
  EXPECT_FALSE(ClassifyConnector({"quickly"}).has_value());
  EXPECT_FALSE(ClassifyConnector({"of", "quickly"}).has_value());
  EXPECT_FALSE(ClassifyConnector({"the", "of"}).has_value());
  EXPECT_FALSE(ClassifyConnector({"of", "the", "new"}).has_value());
  EXPECT_FALSE(ClassifyConnector({","}).has_value());
}

// ---- Gazetteer --------------------------------------------------------------

TEST(GazetteerTest, TypeLookupCaseInsensitive) {
  Gazetteer g;
  g.AddSurface("Brooklyn", kb::EntityType::kLocation);
  EXPECT_EQ(g.LookupType("brooklyn"), kb::EntityType::kLocation);
  EXPECT_EQ(g.LookupType("BROOKLYN"), kb::EntityType::kLocation);
  EXPECT_FALSE(g.LookupType("Queens").has_value());
  EXPECT_TRUE(g.Contains("Brooklyn"));
  EXPECT_FALSE(g.Contains("Queens"));
}

TEST(GazetteerTest, LowercaseMentionFlag) {
  Gazetteer g;
  g.AddSurface("machine learning", kb::EntityType::kTopic,
               /*lowercase_mention=*/true);
  g.AddSurface("Brooklyn", kb::EntityType::kLocation);
  EXPECT_TRUE(g.IsLowercaseMention("machine learning"));
  EXPECT_FALSE(g.IsLowercaseMention("Brooklyn"));
  EXPECT_EQ(g.max_lowercase_tokens(), 2);
}

TEST(GazetteerTest, FirstTypeWinsButLowercaseFlagAccumulates) {
  Gazetteer g;
  g.AddSurface("jordan", kb::EntityType::kPerson);
  g.AddSurface("jordan", kb::EntityType::kLocation, true);
  EXPECT_EQ(g.LookupType("jordan"), kb::EntityType::kPerson);
  EXPECT_TRUE(g.IsLowercaseMention("jordan"));
}

// The predicate verb pool and non-KB verb pool must be disjoint and both
// subsets of the lemmatizer table — the corpus generator relies on it.
TEST(WordlistsTest, VerbPoolsAreConsistent) {
  for (std::string_view lemma : PredicateVerbLemmas()) {
    EXPECT_NE(FindVerbByLemma(lemma), nullptr) << lemma;
  }
  for (std::string_view lemma : NonKbVerbLemmas()) {
    EXPECT_NE(FindVerbByLemma(lemma), nullptr) << lemma;
    for (std::string_view kb_lemma : PredicateVerbLemmas()) {
      EXPECT_NE(lemma, kb_lemma);
    }
  }
}

}  // namespace
}  // namespace text
}  // namespace tenet
