// Property tests of the full pipeline over randomly generated documents:
// the structural postconditions of Problem 3 / Algorithm 5 and the
// Lemma 4.2 bound must hold on every input, not just the curated ones.
#include <set>

#include <gtest/gtest.h>

#include "baselines/tenet_linker.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"

namespace tenet {
namespace core {
namespace {

const datasets::SyntheticWorld& World() {
  static const datasets::SyntheticWorld* world =
      new datasets::SyntheticWorld(datasets::BuildWorld());
  return *world;
}

class PipelinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelinePropertyTest, StructuralInvariantsOnRandomDocuments) {
  datasets::CorpusGenerator gen(&World().kb_world);
  Rng rng(GetParam());
  datasets::DatasetSpec spec = datasets::NewsSpec();
  datasets::Document doc =
      gen.GenerateDocument(spec, "prop", GetParam() % 2 == 0, rng);

  baselines::BaselineSubstrate substrate{
      &World().kb(), &World().embeddings, &World().gazetteer(), {}, {}};
  baselines::TenetLinker tenet(substrate);
  Result<LinkingResult> result = tenet.LinkDocument(doc.text);
  ASSERT_TRUE(result.ok()) << result.status();

  const MentionSet& mentions = result->mentions;

  // (1) At most one concept per mention; type constraint holds.
  std::set<int> linked;
  for (const LinkedConcept& link : result->links) {
    EXPECT_TRUE(linked.insert(link.mention_id).second);
    const Mention& mention = mentions.mention(link.mention_id);
    EXPECT_EQ(mention.is_noun(), link.concept_ref.is_entity());
    EXPECT_EQ(mention.surface, link.surface);
    EXPECT_GE(link.prior, 0.0);
    EXPECT_LE(link.prior, 1.0 + 1e-12);
  }

  // (2) Isolated and linked are disjoint; both are "selected".
  std::set<int> isolated(result->isolated_mentions.begin(),
                         result->isolated_mentions.end());
  for (int m : isolated) {
    EXPECT_EQ(linked.count(m), 0u);
  }
  std::set<int> selected(result->selected_mentions.begin(),
                         result->selected_mentions.end());
  for (int m : linked) EXPECT_EQ(selected.count(m), 1u);
  for (int m : isolated) EXPECT_EQ(selected.count(m), 1u);
  EXPECT_EQ(selected.size(), linked.size() + isolated.size());

  // (3) Isolated mentions have no KB candidates of the right kind.
  for (int m : isolated) {
    const Mention& mention = mentions.mention(m);
    if (mention.is_noun()) {
      EXPECT_TRUE(World()
                      .kb()
                      .CandidateEntities(mention.surface, mention.type, 4)
                      .empty())
          << mention.surface;
    } else {
      EXPECT_TRUE(
          World().kb().CandidatePredicates(mention.surface, 4).empty())
          << mention.surface;
    }
  }

  // (4) Per group, all linked members lie within one canopy.
  for (const MentionGroup& group : mentions.groups) {
    std::set<int> linked_members;
    for (int member : group.members) {
      if (linked.count(member)) linked_members.insert(member);
    }
    if (linked_members.empty()) continue;
    bool contained = false;
    for (const Canopy& canopy : group.canopies) {
      std::set<int> canopy_set(canopy.mentions.begin(),
                               canopy.mentions.end());
      bool all = true;
      for (int m : linked_members) {
        if (canopy_set.count(m) == 0) all = false;
      }
      if (all) contained = true;
    }
    EXPECT_TRUE(contained);
  }

  // (5) The used bound produced a cover within the Lemma 4.2 guarantee:
  // re-solve at that bound and check the cost directly.
  text::Extractor extractor(&World().gazetteer());
  MentionSet fresh = BuildMentionSet(extractor.ExtractFromText(doc.text),
                                     &World().gazetteer());
  CoherenceGraphBuilder builder(&World().kb(), &World().embeddings);
  CoherenceGraph cg = builder.Build(std::move(fresh));
  Result<TreeCover> cover =
      TreeCoverSolver().Solve(cg, result->used_bound);
  ASSERT_TRUE(cover.ok());
  EXPECT_LE(cover->Cost(), 4.0 * result->used_bound + 1e-9);

  // (6) Determinism.
  Result<LinkingResult> again = tenet.LinkDocument(doc.text);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->links.size(), result->links.size());
  for (size_t i = 0; i < again->links.size(); ++i) {
    EXPECT_EQ(again->links[i].mention_id, result->links[i].mention_id);
    EXPECT_EQ(again->links[i].concept_ref, result->links[i].concept_ref);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Range<uint64_t>(100, 124));

}  // namespace
}  // namespace core
}  // namespace tenet
