// Live-KB-update suite over the serving layer (DESIGN.md §12): generation
// hot swaps under a running BatchLinkingService.  Covers the acceptance
// contract — requests pinned before a swap finish on their generation
// with byte-identical results, requests after see the delta, failed swaps
// roll back and are counted, background merges compact + swap, and the
// shared similarity cache never serves a stale cosine across generations.
// Registered under the `kbupdate` ctest label (ASan + TSan in CI).
#include <cstdio>
#include <latch>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "figure_one_world.h"
#include "kb/delta.h"
#include "kb/types.h"
#include "obs/metrics.h"
#include "serving/batch_service.h"
#include "serving/kb_generation.h"

namespace tenet {
namespace serving {
namespace {

using testing_support::BuildFigureOneWorld;
using testing_support::FigureOneWorld;

constexpr char kAcademicDoc[] =
    "Michael Jordan studied machine learning and artificial intelligence .";
constexpr char kTravelDoc[] = "Michael Jordan will visit Tokyo .";

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// The ids of BuildFigureOneWorld, which survive the move of its substrate
// into a generation (deltas only append, so they stay valid there too).
struct WorldIds {
  kb::EntityId professor;
  kb::EntityId player;
  kb::EntityId brooklyn;
};

std::shared_ptr<const KbGeneration> FigureOneGeneration(
    uint64_t id, WorldIds* ids = nullptr,
    const KbGenerationOptions& options = {}) {
  FigureOneWorld world = BuildFigureOneWorld();
  if (ids != nullptr) {
    ids->professor = world.professor;
    ids->player = world.player;
    ids->brooklyn = world.brooklyn;
  }
  return KbGeneration::FromSubstrate(std::move(world.kb),
                                     std::move(world.embeddings), id,
                                     options);
}

ServingOptions UpdateTestOptions(obs::MetricsRegistry* registry,
                                 int num_threads = 2) {
  ServingOptions options;
  options.metrics = registry;
  options.num_threads = num_threads;
  options.queue_capacity = 64;
  options.overflow = QueueOverflowPolicy::kBlock;
  return options;
}

// Synchronous round trip through the asynchronous front door.
ServedResult LinkOne(BatchLinkingService& service, const std::string& text) {
  ServedResult out;
  std::latch done(1);
  Status submitted = service.Submit(text, [&out, &done](ServedResult r) {
    out = std::move(r);
    done.count_down();
  });
  EXPECT_TRUE(submitted.ok()) << submitted;
  if (!submitted.ok()) return out;
  done.wait();
  return out;
}

bool LinksEntity(const core::LinkingResult& result, kb::EntityId id) {
  for (const core::LinkedConcept& link : result.links) {
    if (link.kind == core::Mention::Kind::kNoun &&
        link.concept_ref.is_entity() && link.concept_ref.id == id) {
      return true;
    }
  }
  return false;
}

void ExpectByteIdenticalLinks(const core::LinkingResult& a,
                              const core::LinkingResult& b) {
  ASSERT_EQ(a.links.size(), b.links.size());
  for (size_t i = 0; i < a.links.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.links[i].mention_id, b.links[i].mention_id);
    EXPECT_EQ(a.links[i].surface, b.links[i].surface);
    EXPECT_EQ(a.links[i].kind, b.links[i].kind);
    EXPECT_EQ(a.links[i].concept_ref.kind, b.links[i].concept_ref.kind);
    EXPECT_EQ(a.links[i].concept_ref.id, b.links[i].concept_ref.id);
    // EQ, not NEAR: a pinned generation must reproduce its answers
    // bit-for-bit, whatever was swapped in meanwhile.
    EXPECT_EQ(a.links[i].prior, b.links[i].prior);
  }
  EXPECT_EQ(a.isolated_mentions, b.isolated_mentions);
}

// A delta that adds "Tokyo" — a surface no base document resolves — with
// an embedding on the location axis.
std::vector<kb::DeltaSegment> TokyoDelta(const KbGeneration& base,
                                         kb::EntityId* tokyo_out = nullptr) {
  kb::DeltaBuilder builder(base.kb());
  kb::EntityId tokyo =
      builder.AddEntity("Tokyo", kb::EntityType::kLocation, 2, 5.0);
  builder.SetEmbedding(
      kb::ConceptRef::Entity(tokyo),
      std::vector<float>{0.0f, 0.1f, 1.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f});
  if (tokyo_out != nullptr) *tokyo_out = tokyo;
  std::vector<kb::DeltaSegment> segments;
  segments.push_back(builder.Build());
  return segments;
}

TEST(KbUpdateTest, PostSwapRequestsSeeTheDeltaAndMetricsPublish) {
  obs::MetricsRegistry registry;
  WorldIds ids;
  std::shared_ptr<const KbGeneration> gen1 = FigureOneGeneration(1, &ids);
  BatchLinkingService service(gen1, UpdateTestOptions(&registry));
  EXPECT_EQ(service.generation_id(), 1u);

  kb::EntityId tokyo = -1;
  Result<std::shared_ptr<const KbGeneration>> gen2 =
      gen1->WithDeltas(TokyoDelta(*gen1, &tokyo), /*id=*/2);
  ASSERT_TRUE(gen2.ok()) << gen2.status();
  EXPECT_EQ((*gen2)->delta_stats().added_entities, 1);

  ServedResult before = LinkOne(service, kTravelDoc);
  ASSERT_TRUE(before.result.ok()) << before.result.status();
  EXPECT_FALSE(LinksEntity(*before.result, tokyo))
      << "generation 1 must not know Tokyo";

  ASSERT_TRUE(service.SwapGeneration(*gen2).ok());
  EXPECT_EQ(service.generation_id(), 2u);

  ServedResult after = LinkOne(service, kTravelDoc);
  ASSERT_TRUE(after.result.ok()) << after.result.status();
  EXPECT_TRUE(LinksEntity(*after.result, tokyo))
      << "a post-swap request must see the delta";

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.generation, 2);
  EXPECT_EQ(stats.swaps_ok, 1);
  EXPECT_EQ(stats.swaps_rolled_back, 0);
  EXPECT_EQ(registry.GetGauge("tenet_kb_generation", "")->Value(), 2.0);
  EXPECT_EQ(registry.GetHistogram("tenet_kb_swap_latency_ms", "")->Count(),
            1);
}

TEST(KbUpdateTest, RequestsPinnedBeforeASwapFinishOnTheirGeneration) {
  obs::MetricsRegistry registry;
  WorldIds ids;
  std::shared_ptr<const KbGeneration> gen1 = FigureOneGeneration(1, &ids);
  // One worker: a blocked callback deterministically holds later requests
  // in the queue across the swap.
  BatchLinkingService service(gen1,
                              UpdateTestOptions(&registry, /*threads=*/1));

  kb::EntityId tokyo = -1;
  Result<std::shared_ptr<const KbGeneration>> gen2 =
      gen1->WithDeltas(TokyoDelta(*gen1, &tokyo), /*id=*/2);
  ASSERT_TRUE(gen2.ok()) << gen2.status();

  // Reference answer, fully served on generation 1.
  ServedResult reference = LinkOne(service, kTravelDoc);
  ASSERT_TRUE(reference.result.ok()) << reference.result.status();

  // Block the only worker, then queue the probe: it pins generation 1 at
  // the front door and will be *processed* only after the swap below.
  std::latch gate(1);
  std::latch blocker_done(1);
  ASSERT_TRUE(service
                  .Submit(kAcademicDoc,
                          [&gate, &blocker_done](ServedResult) {
                            gate.wait();
                            blocker_done.count_down();
                          })
                  .ok());
  ServedResult pinned;
  std::latch pinned_done(1);
  ASSERT_TRUE(service
                  .Submit(kTravelDoc,
                          [&pinned, &pinned_done](ServedResult r) {
                            pinned = std::move(r);
                            pinned_done.count_down();
                          })
                  .ok());

  // The swap lands while the probe is still queued (RCU: the pinned old
  // generation parks in its slot; the publish takes a free one).
  ASSERT_TRUE(service.SwapGeneration(*gen2).ok());
  EXPECT_EQ(service.generation_id(), 2u);

  // A request submitted after the swap sees the new generation...
  ServedResult fresh;
  std::latch fresh_done(1);
  ASSERT_TRUE(service
                  .Submit(kTravelDoc,
                          [&fresh, &fresh_done](ServedResult r) {
                            fresh = std::move(r);
                            fresh_done.count_down();
                          })
                  .ok());

  gate.count_down();
  blocker_done.wait();
  pinned_done.wait();
  fresh_done.wait();

  // ...while the queued probe finished on generation 1, byte-identical to
  // the pre-swap reference.
  ASSERT_TRUE(pinned.result.ok()) << pinned.result.status();
  ExpectByteIdenticalLinks(*reference.result, *pinned.result);
  EXPECT_FALSE(LinksEntity(*pinned.result, tokyo));
  ASSERT_TRUE(fresh.result.ok()) << fresh.result.status();
  EXPECT_TRUE(LinksEntity(*fresh.result, tokyo));
}

TEST(KbUpdateTest, FailedSwapsRollBackToTheServingGeneration) {
  obs::MetricsRegistry registry;
  std::shared_ptr<const KbGeneration> gen1 = FigureOneGeneration(1);
  BatchLinkingService service(gen1, UpdateTestOptions(&registry));

  Result<std::shared_ptr<const KbGeneration>> gen2 =
      gen1->WithDeltas(TokyoDelta(*gen1), /*id=*/2);
  ASSERT_TRUE(gen2.ok()) << gen2.status();

  // Injected mid-swap fault: the old generation keeps serving.
  {
    FaultInjector faults(11);
    faults.Arm("serving/kb_swap", 1.0);
    Status swapped = service.SwapGeneration(*gen2);
    ASSERT_FALSE(swapped.ok());
    EXPECT_EQ(swapped.code(), StatusCode::kDataLoss);
    EXPECT_EQ(faults.FireCount("serving/kb_swap"), 1);
  }
  EXPECT_EQ(service.generation_id(), 1u);
  EXPECT_EQ(service.Stats().swaps_rolled_back, 1);
  EXPECT_EQ(registry.GetGauge("tenet_kb_generation", "")->Value(), 1.0);

  // Id regression is refused the same way.
  Status regressed = service.SwapGeneration(gen1);
  ASSERT_FALSE(regressed.ok());
  EXPECT_EQ(regressed.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Stats().swaps_rolled_back, 2);

  // The service still answers, and the clean retry lands.
  ServedResult served = LinkOne(service, kTravelDoc);
  EXPECT_TRUE(served.result.ok());
  ASSERT_TRUE(service.SwapGeneration(*gen2).ok());
  EXPECT_EQ(service.generation_id(), 2u);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.swaps_ok, 1);
  EXPECT_EQ(stats.swaps_rolled_back, 2);
}

TEST(KbUpdateTest, BackgroundMergeCompactsDeltasIntoAFreshSnapshot) {
  obs::MetricsRegistry registry;
  WorldIds ids;
  std::shared_ptr<const KbGeneration> gen1 = FigureOneGeneration(1, &ids);
  BatchLinkingService service(gen1, UpdateTestOptions(&registry));

  kb::EntityId tokyo = -1;
  Result<std::shared_ptr<const KbGeneration>> gen2 =
      gen1->WithDeltas(TokyoDelta(*gen1, &tokyo), /*id=*/2);
  ASSERT_TRUE(gen2.ok()) << gen2.status();
  ASSERT_TRUE(service.SwapGeneration(*gen2).ok());

  std::string kb_path = TempPath("merge_out.tenetkb");
  std::string emb_path = TempPath("merge_out.tenetemb");
  Status merge_status = Status::Internal("callback never ran");
  std::latch merged(1);
  ASSERT_TRUE(service
                  .ScheduleMerge(kb_path, emb_path, /*next_id=*/3,
                                 [&merge_status, &merged](Status s) {
                                   merge_status = std::move(s);
                                   merged.count_down();
                                 })
                  .ok());
  merged.wait();
  ASSERT_TRUE(merge_status.ok()) << merge_status;
  EXPECT_EQ(service.generation_id(), 3u);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.merges_ok, 1);
  EXPECT_EQ(stats.merges_failed, 0);
  EXPECT_EQ(stats.swaps_ok, 2);  // the delta swap + the merge's swap

  // The merged snapshot retains the delta (Tokyo resolves), and the
  // compacted pair reloads on its own: delta-free, same substrate.
  ServedResult served = LinkOne(service, kTravelDoc);
  ASSERT_TRUE(served.result.ok()) << served.result.status();
  EXPECT_TRUE(LinksEntity(*served.result, tokyo));
  Result<std::shared_ptr<const KbGeneration>> reloaded =
      KbGeneration::Load(kb_path, emb_path, {}, /*id=*/9);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ((*reloaded)->kb().num_entities(), (*gen2)->kb().num_entities());
  EXPECT_EQ((*reloaded)->delta_stats().added_entities, 0);
}

TEST(KbUpdateTest, MergeFailureRollsBackAndCounts) {
  obs::MetricsRegistry registry;
  std::shared_ptr<const KbGeneration> gen1 = FigureOneGeneration(1);
  BatchLinkingService service(gen1, UpdateTestOptions(&registry));

  std::string kb_path = TempPath("merge_fail.tenetkb");
  std::string emb_path = TempPath("merge_fail.tenetemb");
  std::remove(kb_path.c_str());
  FaultInjector faults(13);
  faults.Arm("kb/io/write_truncation", 1.0);
  Status merge_status = Status::Ok();
  std::latch merged(1);
  ASSERT_TRUE(service
                  .ScheduleMerge(kb_path, emb_path, /*next_id=*/2,
                                 [&merge_status, &merged](Status s) {
                                   merge_status = std::move(s);
                                   merged.count_down();
                                 })
                  .ok());
  merged.wait();
  ASSERT_FALSE(merge_status.ok());
  EXPECT_EQ(service.generation_id(), 1u) << "a failed merge must not swap";
  EXPECT_EQ(service.Stats().merges_failed, 1);
  EXPECT_EQ(service.Stats().merges_ok, 0);
}

// The similarity-cache staleness regression (coherence near-tie): in
// generation 1 the academic context drags "Michael Jordan" to the
// professor despite the player's higher prior, and the service cache is
// warm with (professor, ml/ai) cosines.  Generation 2's delta re-points
// the professor's embedding away from the academic cluster — same pair
// keys, different values.  Without epoch tagging, the warm cache would
// keep serving the stale high cosines and the link would stay flipped to
// the professor; with it, the post-swap request recomputes and the prior
// wins.
TEST(KbUpdateTest, SharedCacheNeverServesStaleCosinesAcrossSwaps) {
  obs::MetricsRegistry registry;
  WorldIds ids;
  std::shared_ptr<const KbGeneration> gen1 = FigureOneGeneration(1, &ids);
  ServingOptions options = UpdateTestOptions(&registry);
  options.similarity_cache_bytes = 1u << 20;
  BatchLinkingService service(gen1, options);

  ServedResult before = LinkOne(service, kAcademicDoc);
  ASSERT_TRUE(before.result.ok()) << before.result.status();
  ASSERT_TRUE(LinksEntity(*before.result, ids.professor))
      << "figure-one coherence must pick the professor in generation 1";
  // Run it again: the second pass hits the warm cache and must agree.
  ServedResult warm = LinkOne(service, kAcademicDoc);
  ASSERT_TRUE(warm.result.ok()) << warm.result.status();
  ExpectByteIdenticalLinks(*before.result, *warm.result);
  EXPECT_GT(service.similarity_cache()->GetStats().hits, 0);

  kb::DeltaBuilder builder(gen1->kb());
  builder.SetEmbedding(
      kb::ConceptRef::Entity(ids.professor),
      std::vector<float>{0.0f, 0.0f, 1.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f});
  std::vector<kb::DeltaSegment> segments{builder.Build()};
  Result<std::shared_ptr<const KbGeneration>> gen2 =
      gen1->WithDeltas(segments, /*id=*/2);
  ASSERT_TRUE(gen2.ok()) << gen2.status();
  ASSERT_TRUE(service.SwapGeneration(*gen2).ok());

  ServedResult after = LinkOne(service, kAcademicDoc);
  ASSERT_TRUE(after.result.ok()) << after.result.status();
  EXPECT_FALSE(LinksEntity(*after.result, ids.professor))
      << "a stale cached cosine kept the professor linked across the swap";
  EXPECT_TRUE(LinksEntity(*after.result, ids.player));
}

}  // namespace
}  // namespace serving
}  // namespace tenet
