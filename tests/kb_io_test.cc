#include "kb/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pipeline.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "kb/synthetic_kb.h"

namespace tenet {
namespace kb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(KbIoTest, KnowledgeBaseRoundTrip) {
  Rng rng(61);
  SyntheticKbOptions options;
  options.num_domains = 4;
  options.entities_per_domain = 20;
  options.num_predicates = 10;
  SyntheticKb world = SyntheticKbGenerator(options).Generate(rng);

  std::string path = TempPath("kb_roundtrip.tenetkb");
  ASSERT_TRUE(SaveKnowledgeBase(world.kb, path).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  const KnowledgeBase& a = world.kb;
  const KnowledgeBase& b = loaded.value();
  ASSERT_EQ(a.num_entities(), b.num_entities());
  ASSERT_EQ(a.num_predicates(), b.num_predicates());
  ASSERT_EQ(a.num_facts(), b.num_facts());
  for (EntityId id = 0; id < a.num_entities(); ++id) {
    EXPECT_EQ(a.entity(id).label, b.entity(id).label);
    EXPECT_EQ(a.entity(id).type, b.entity(id).type);
    EXPECT_EQ(a.entity(id).domain, b.entity(id).domain);
    EXPECT_DOUBLE_EQ(a.entity(id).popularity, b.entity(id).popularity);
  }
  for (int32_t i = 0; i < a.num_facts(); ++i) {
    EXPECT_EQ(a.facts()[i].subject, b.facts()[i].subject);
    EXPECT_EQ(a.facts()[i].predicate, b.facts()[i].predicate);
    EXPECT_EQ(a.facts()[i].object_is_entity, b.facts()[i].object_is_entity);
  }

  // Candidate distributions round-trip exactly (priors are re-normalized
  // idempotently).
  for (EntityId id = 0; id < a.num_entities(); ++id) {
    const std::string& label = a.entity(id).label;
    std::vector<EntityCandidate> ca =
        a.CandidateEntities(label, std::nullopt, 10);
    std::vector<EntityCandidate> cb =
        b.CandidateEntities(label, std::nullopt, 10);
    ASSERT_EQ(ca.size(), cb.size()) << label;
    for (size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i].entity, cb[i].entity) << label;
      EXPECT_NEAR(ca[i].prior, cb[i].prior, 1e-9) << label;
    }
  }
}

TEST(KbIoTest, LiteralFactsRoundTrip) {
  KnowledgeBase kb;
  EntityId e = kb.AddEntity("Brooklyn", EntityType::kLocation);
  PredicateId p = kb.AddPredicate("founded in");
  ASSERT_TRUE(kb.AddLiteralFact(e, p, "1898").ok());
  kb.Finalize();

  std::string path = TempPath("kb_literal.tenetkb");
  ASSERT_TRUE(SaveKnowledgeBase(kb, path).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_facts(), 1);
  EXPECT_FALSE(loaded->facts()[0].object_is_entity);
  EXPECT_EQ(loaded->facts()[0].object_literal, "1898");
}

TEST(KbIoTest, LoadRejectsGarbage) {
  std::string path = TempPath("kb_garbage.tenetkb");
  {
    std::ofstream out(path);
    out << "definitely not a kb\n";
  }
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST(KbIoTest, LoadRejectsTruncatedFile) {
  // Save a valid KB, then truncate it mid-section.
  KnowledgeBase kb;
  kb.AddEntity("A", EntityType::kOther);
  kb.AddEntity("B", EntityType::kOther);
  kb.Finalize();
  std::string path = TempPath("kb_truncated.tenetkb");
  ASSERT_TRUE(SaveKnowledgeBase(kb, path).ok());
  std::ifstream in(path);
  std::string head;
  std::string line;
  for (int i = 0; i < 3 && std::getline(in, line); ++i) head += line + "\n";
  in.close();
  {
    std::ofstream out(path, std::ios::trunc);
    out << head;
  }
  EXPECT_FALSE(LoadKnowledgeBase(path).ok());
}

TEST(KbIoTest, LoadRejectsMissingFile) {
  Result<KnowledgeBase> loaded =
      LoadKnowledgeBase(TempPath("does_not_exist.tenetkb"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

TEST(KbIoTest, SaveRejectsUnfinalizedKb) {
  KnowledgeBase kb;
  kb.AddEntity("A", EntityType::kOther);
  EXPECT_EQ(SaveKnowledgeBase(kb, TempPath("nope.tenetkb")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(KbIoTest, EmbeddingsRoundTripBitExact) {
  datasets::SyntheticWorld world = datasets::BuildWorld({
      .kb = {.num_domains = 3, .entities_per_domain = 15,
             .num_predicates = 8},
      .embeddings = {},
      .seed = 99,
  });
  std::string path = TempPath("embeddings.tenetemb");
  ASSERT_TRUE(SaveEmbeddings(world.embeddings, path).ok());
  Result<embedding::EmbeddingStore> loaded = LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->dimension(), world.embeddings.dimension());
  ASSERT_EQ(loaded->num_entities(), world.embeddings.num_entities());
  ASSERT_EQ(loaded->num_predicates(), world.embeddings.num_predicates());
  for (EntityId e = 0; e < loaded->num_entities(); ++e) {
    std::span<const float> va =
        world.embeddings.Vector(ConceptRef::Entity(e));
    std::span<const float> vb = loaded->Vector(ConceptRef::Entity(e));
    for (int d = 0; d < loaded->dimension(); ++d) {
      EXPECT_EQ(va[d], vb[d]);  // bit-exact
    }
  }
  // Cosines agree exactly as well.
  EXPECT_DOUBLE_EQ(
      world.embeddings.Cosine(ConceptRef::Entity(0), ConceptRef::Entity(1)),
      loaded->Cosine(ConceptRef::Entity(0), ConceptRef::Entity(1)));
}

TEST(KbIoTest, EmbeddingsLoadRejectsTruncation) {
  datasets::SyntheticWorld world = datasets::BuildWorld({
      .kb = {.num_domains = 2, .entities_per_domain = 5,
             .num_predicates = 3},
      .embeddings = {},
      .seed = 100,
  });
  std::string path = TempPath("embeddings_trunc.tenetemb");
  ASSERT_TRUE(SaveEmbeddings(world.embeddings, path).ok());
  // Truncate the file to half.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_FALSE(LoadEmbeddings(path).ok());
}

TEST(KbIoTest, DeriveGazetteerCoversAliasSurfaces) {
  Rng rng(62);
  SyntheticKbOptions options;
  options.num_domains = 3;
  options.entities_per_domain = 15;
  options.num_predicates = 8;
  SyntheticKb world = SyntheticKbGenerator(options).Generate(rng);

  text::Gazetteer derived = DeriveGazetteer(world.kb);
  for (EntityId id = 0; id < world.kb.num_entities(); ++id) {
    for (const std::string& surface : world.entity_surfaces[id]) {
      EXPECT_TRUE(derived.Contains(surface)) << surface;
    }
    // Topic labels (lowercase) stay spottable in lowercase text.
    if (world.kb.entity(id).type == EntityType::kTopic) {
      EXPECT_TRUE(derived.IsLowercaseMention(world.kb.entity(id).label));
    }
  }
}

TEST(KbIoTest, ReloadedWorldLinksIdentically) {
  // Full persistence round trip through the pipeline: save + load the KB
  // and embeddings, derive the gazetteer, and verify identical linking.
  datasets::SyntheticWorld world = datasets::BuildWorld();
  std::string kb_path = TempPath("roundtrip_world.tenetkb");
  std::string emb_path = TempPath("roundtrip_world.tenetemb");
  ASSERT_TRUE(SaveKnowledgeBase(world.kb(), kb_path).ok());
  ASSERT_TRUE(SaveEmbeddings(world.embeddings, emb_path).ok());
  Result<KnowledgeBase> kb2 = LoadKnowledgeBase(kb_path);
  Result<embedding::EmbeddingStore> emb2 = LoadEmbeddings(emb_path);
  ASSERT_TRUE(kb2.ok());
  ASSERT_TRUE(emb2.ok());
  text::Gazetteer gazetteer2 = DeriveGazetteer(*kb2);

  core::TenetPipeline original(&world.kb(), &world.embeddings,
                               &world.gazetteer());
  core::TenetPipeline reloaded(&kb2.value(), &emb2.value(), &gazetteer2);

  datasets::CorpusGenerator gen(&world.kb_world);
  Rng rng(63);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 4;
  datasets::Dataset ds = gen.Generate(spec, rng);
  for (const datasets::Document& doc : ds.documents) {
    Result<core::LinkingResult> a = original.LinkDocument(doc.text);
    Result<core::LinkingResult> b = reloaded.LinkDocument(doc.text);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->links.size(), b->links.size());
    for (size_t i = 0; i < a->links.size(); ++i) {
      EXPECT_EQ(a->links[i].surface, b->links[i].surface);
      EXPECT_EQ(a->links[i].concept_ref, b->links[i].concept_ref);
    }
  }
}

}  // namespace
}  // namespace kb
}  // namespace tenet
