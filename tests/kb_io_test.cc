#include "kb/io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <tuple>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "kb/synthetic_kb.h"

namespace tenet {
namespace kb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(KbIoTest, KnowledgeBaseRoundTrip) {
  Rng rng(61);
  SyntheticKbOptions options;
  options.num_domains = 4;
  options.entities_per_domain = 20;
  options.num_predicates = 10;
  SyntheticKb world = SyntheticKbGenerator(options).Generate(rng);

  std::string path = TempPath("kb_roundtrip.tenetkb");
  ASSERT_TRUE(SaveKnowledgeBase(world.kb, path).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  const KnowledgeBase& a = world.kb;
  const KnowledgeBase& b = loaded.value();
  ASSERT_EQ(a.num_entities(), b.num_entities());
  ASSERT_EQ(a.num_predicates(), b.num_predicates());
  ASSERT_EQ(a.num_facts(), b.num_facts());
  for (EntityId id = 0; id < a.num_entities(); ++id) {
    EXPECT_EQ(a.entity(id).label, b.entity(id).label);
    EXPECT_EQ(a.entity(id).type, b.entity(id).type);
    EXPECT_EQ(a.entity(id).domain, b.entity(id).domain);
    EXPECT_DOUBLE_EQ(a.entity(id).popularity, b.entity(id).popularity);
  }
  for (int32_t i = 0; i < a.num_facts(); ++i) {
    EXPECT_EQ(a.facts()[i].subject, b.facts()[i].subject);
    EXPECT_EQ(a.facts()[i].predicate, b.facts()[i].predicate);
    EXPECT_EQ(a.facts()[i].object_is_entity, b.facts()[i].object_is_entity);
  }

  // Candidate distributions round-trip exactly (priors are re-normalized
  // idempotently).
  for (EntityId id = 0; id < a.num_entities(); ++id) {
    const std::string& label = a.entity(id).label;
    std::vector<EntityCandidate> ca =
        a.CandidateEntities(label, std::nullopt, 10);
    std::vector<EntityCandidate> cb =
        b.CandidateEntities(label, std::nullopt, 10);
    ASSERT_EQ(ca.size(), cb.size()) << label;
    for (size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i].entity, cb[i].entity) << label;
      EXPECT_NEAR(ca[i].prior, cb[i].prior, 1e-9) << label;
    }
  }
}

TEST(KbIoTest, LiteralFactsRoundTrip) {
  KnowledgeBase kb;
  EntityId e = kb.AddEntity("Brooklyn", EntityType::kLocation);
  PredicateId p = kb.AddPredicate("founded in");
  ASSERT_TRUE(kb.AddLiteralFact(e, p, "1898").ok());
  kb.Finalize();

  std::string path = TempPath("kb_literal.tenetkb");
  ASSERT_TRUE(SaveKnowledgeBase(kb, path).ok());
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_facts(), 1);
  EXPECT_FALSE(loaded->facts()[0].object_is_entity);
  EXPECT_EQ(loaded->facts()[0].object_literal, "1898");
}

TEST(KbIoTest, LoadRejectsGarbage) {
  std::string path = TempPath("kb_garbage.tenetkb");
  {
    std::ofstream out(path);
    out << "definitely not a kb\n";
  }
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST(KbIoTest, LoadRejectsTruncatedFile) {
  // Save a valid KB, then truncate it mid-section.
  KnowledgeBase kb;
  kb.AddEntity("A", EntityType::kOther);
  kb.AddEntity("B", EntityType::kOther);
  kb.Finalize();
  std::string path = TempPath("kb_truncated.tenetkb");
  ASSERT_TRUE(SaveKnowledgeBase(kb, path).ok());
  std::ifstream in(path);
  std::string head;
  std::string line;
  for (int i = 0; i < 3 && std::getline(in, line); ++i) head += line + "\n";
  in.close();
  {
    std::ofstream out(path, std::ios::trunc);
    out << head;
  }
  EXPECT_FALSE(LoadKnowledgeBase(path).ok());
}

TEST(KbIoTest, LoadRejectsMissingFile) {
  Result<KnowledgeBase> loaded =
      LoadKnowledgeBase(TempPath("does_not_exist.tenetkb"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

TEST(KbIoTest, SaveRejectsUnfinalizedKb) {
  KnowledgeBase kb;
  kb.AddEntity("A", EntityType::kOther);
  EXPECT_EQ(SaveKnowledgeBase(kb, TempPath("nope.tenetkb")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(KbIoTest, EmbeddingsRoundTripBitExact) {
  datasets::SyntheticWorld world = datasets::BuildWorld({
      .kb = {.num_domains = 3, .entities_per_domain = 15,
             .num_predicates = 8},
      .embeddings = {},
      .seed = 99,
  });
  std::string path = TempPath("embeddings.tenetemb");
  ASSERT_TRUE(SaveEmbeddings(world.embeddings, path).ok());
  Result<embedding::EmbeddingStore> loaded = LoadEmbeddings(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->dimension(), world.embeddings.dimension());
  ASSERT_EQ(loaded->num_entities(), world.embeddings.num_entities());
  ASSERT_EQ(loaded->num_predicates(), world.embeddings.num_predicates());
  for (EntityId e = 0; e < loaded->num_entities(); ++e) {
    std::span<const float> va =
        world.embeddings.Vector(ConceptRef::Entity(e));
    std::span<const float> vb = loaded->Vector(ConceptRef::Entity(e));
    for (int d = 0; d < loaded->dimension(); ++d) {
      EXPECT_EQ(va[d], vb[d]);  // bit-exact
    }
  }
  // Cosines agree exactly as well.
  EXPECT_DOUBLE_EQ(
      world.embeddings.Cosine(ConceptRef::Entity(0), ConceptRef::Entity(1)),
      loaded->Cosine(ConceptRef::Entity(0), ConceptRef::Entity(1)));
}

TEST(KbIoTest, EmbeddingsLoadRejectsTruncation) {
  datasets::SyntheticWorld world = datasets::BuildWorld({
      .kb = {.num_domains = 2, .entities_per_domain = 5,
             .num_predicates = 3},
      .embeddings = {},
      .seed = 100,
  });
  std::string path = TempPath("embeddings_trunc.tenetemb");
  ASSERT_TRUE(SaveEmbeddings(world.embeddings, path).ok());
  // Truncate the file to half.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_FALSE(LoadEmbeddings(path).ok());
}

TEST(KbIoTest, DeriveGazetteerCoversAliasSurfaces) {
  Rng rng(62);
  SyntheticKbOptions options;
  options.num_domains = 3;
  options.entities_per_domain = 15;
  options.num_predicates = 8;
  SyntheticKb world = SyntheticKbGenerator(options).Generate(rng);

  text::Gazetteer derived = DeriveGazetteer(world.kb);
  for (EntityId id = 0; id < world.kb.num_entities(); ++id) {
    for (const std::string& surface : world.entity_surfaces[id]) {
      EXPECT_TRUE(derived.Contains(surface)) << surface;
    }
    // Topic labels (lowercase) stay spottable in lowercase text.
    if (world.kb.entity(id).type == EntityType::kTopic) {
      EXPECT_TRUE(derived.IsLowercaseMention(world.kb.entity(id).label));
    }
  }
}

TEST(KbIoTest, ReloadedWorldLinksIdentically) {
  // Full persistence round trip through the pipeline: save + load the KB
  // and embeddings, derive the gazetteer, and verify identical linking.
  datasets::SyntheticWorld world = datasets::BuildWorld();
  std::string kb_path = TempPath("roundtrip_world.tenetkb");
  std::string emb_path = TempPath("roundtrip_world.tenetemb");
  ASSERT_TRUE(SaveKnowledgeBase(world.kb(), kb_path).ok());
  ASSERT_TRUE(SaveEmbeddings(world.embeddings, emb_path).ok());
  Result<KnowledgeBase> kb2 = LoadKnowledgeBase(kb_path);
  Result<embedding::EmbeddingStore> emb2 = LoadEmbeddings(emb_path);
  ASSERT_TRUE(kb2.ok());
  ASSERT_TRUE(emb2.ok());
  text::Gazetteer gazetteer2 = DeriveGazetteer(*kb2);

  core::TenetPipeline original(&world.kb(), &world.embeddings,
                               &world.gazetteer());
  core::TenetPipeline reloaded(&kb2.value(), &emb2.value(), &gazetteer2);

  datasets::CorpusGenerator gen(&world.kb_world);
  Rng rng(63);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 4;
  datasets::Dataset ds = gen.Generate(spec, rng);
  for (const datasets::Document& doc : ds.documents) {
    Result<core::LinkingResult> a = original.LinkDocument(doc.text);
    Result<core::LinkingResult> b = reloaded.LinkDocument(doc.text);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->links.size(), b->links.size());
    for (size_t i = 0; i < a->links.size(); ++i) {
      EXPECT_EQ(a->links[i].surface, b->links[i].surface);
      EXPECT_EQ(a->links[i].concept_ref, b->links[i].concept_ref);
    }
  }
}

// --- Corruption robustness -------------------------------------------------
// Every malformed input below must come back as a clean InvalidArgument or
// DataLoss — never a crash, never a partially-finalized substrate.

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  ASSERT_TRUE(out.is_open());
  out << content;
}

KnowledgeBase TinyKb() {
  KnowledgeBase kb;
  kb.AddEntity("Brooklyn", EntityType::kLocation, /*domain=*/0,
               /*popularity=*/1.0);
  kb.AddPredicate("visited", /*domain=*/0, /*popularity=*/1.0);
  kb.Finalize();
  return kb;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// One (surface, kind, concept, prior) row per posting, in visit order.
using PostingRows =
    std::vector<std::tuple<std::string, ConceptRef::Kind, int32_t, double>>;

PostingRows AllPostings(const KnowledgeBase& kb) {
  PostingRows rows;
  kb.alias_index().VisitPostings(
      [&rows](std::string_view surface, const AliasPosting& posting) {
        rows.emplace_back(std::string(surface), posting.concept_ref.kind,
                          posting.concept_ref.id, posting.prior);
      });
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(KbIoTest, PriorsRoundTripBitExactInBothFormats) {
  // Alias priors are probabilities computed once at build time; each load
  // must restore them bit-exactly (max_digits10 text, raw doubles binary).
  // Renormalizing on load would drift near-tie disambiguations by an ulp
  // per save/load generation.
  Rng rng(64);
  SyntheticKbOptions options;
  options.num_domains = 5;
  options.entities_per_domain = 30;
  SyntheticKb world = SyntheticKbGenerator(options).Generate(rng);
  PostingRows original = AllPostings(world.kb);
  ASSERT_FALSE(original.empty());

  for (KbFormat format : {KbFormat::kTextV1, KbFormat::kBinaryV2}) {
    SCOPED_TRACE(format == KbFormat::kTextV1 ? "text" : "binary");
    std::string path = TempPath("prior_exact.tenetkb");
    ASSERT_TRUE(SaveKnowledgeBase(world.kb, path, format).ok());
    Result<KnowledgeBase> gen1 = LoadKnowledgeBase(path);
    ASSERT_TRUE(gen1.ok()) << gen1.status();
    EXPECT_EQ(AllPostings(*gen1), original);

    // Second generation: save the loaded KB and load again — still exact.
    ASSERT_TRUE(SaveKnowledgeBase(*gen1, path, format).ok());
    Result<KnowledgeBase> gen2 = LoadKnowledgeBase(path);
    ASSERT_TRUE(gen2.ok()) << gen2.status();
    EXPECT_EQ(AllPostings(*gen2), original);
  }
}

TEST(KbIoCorruptionTest, TextLoadRejectsTrailingGarbage) {
  std::string path = TempPath("trailing.tenetkb");
  ASSERT_TRUE(SaveKnowledgeBase(TinyKb(), path, KbFormat::kTextV1).ok());
  std::string content = ReadFileBytes(path);
  WriteFile(path, content + "one more line\n");
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// --- TENETKB2 corruption matrix --------------------------------------------
// Layout recap (mirrors io.cc): 32-byte header, then section_count 32-byte
// table entries {u32 id, u32 pad, u64 offset, u64 size, u64 count}, then
// the section payloads.  The header checksum covers the table.

struct BinarySection {
  uint32_t id;
  uint64_t offset;
  uint64_t size;
  uint64_t count;
};

std::vector<BinarySection> ReadSectionTable(const std::string& bytes) {
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 12, sizeof(section_count));
  std::vector<BinarySection> sections;
  for (uint32_t i = 0; i < section_count; ++i) {
    const char* entry = bytes.data() + 32 + i * 32;
    BinarySection s;
    std::memcpy(&s.id, entry, sizeof(s.id));
    std::memcpy(&s.offset, entry + 8, sizeof(s.offset));
    std::memcpy(&s.size, entry + 16, sizeof(s.size));
    std::memcpy(&s.count, entry + 24, sizeof(s.count));
    sections.push_back(s);
  }
  return sections;
}

std::string SavedBinaryKb(const std::string& name) {
  Rng rng(65);
  SyntheticKbOptions options;
  options.num_domains = 2;
  options.entities_per_domain = 8;
  SyntheticKb world = SyntheticKbGenerator(options).Generate(rng);
  std::string path = TempPath(name);
  EXPECT_TRUE(SaveKnowledgeBase(world.kb, path, KbFormat::kBinaryV2).ok());
  return path;
}

TEST(KbIoCorruptionTest, BinaryTruncationAtEverySectionBoundaryIsRejected) {
  std::string path = SavedBinaryKb("matrix_boundary.tenetkb");
  std::string content = ReadFileBytes(path);
  std::vector<BinarySection> sections = ReadSectionTable(content);
  ASSERT_EQ(sections.size(), 5u);
  // Cut exactly at each section's start, one byte into it, and one byte
  // before its end — plus the header/table edges.
  std::vector<size_t> cuts = {0, 1, 31, 32, 33, 32 + 5 * 32 - 1, 32 + 5 * 32};
  for (const BinarySection& s : sections) {
    cuts.push_back(s.offset);
    cuts.push_back(s.offset + 1);
    if (s.size > 0) cuts.push_back(s.offset + s.size - 1);
  }
  for (size_t cut : cuts) {
    ASSERT_LT(cut, content.size());
    std::string truncated_path = TempPath("matrix_truncated.tenetkb");
    WriteFile(truncated_path, content.substr(0, cut));
    Result<KnowledgeBase> loaded = LoadKnowledgeBase(truncated_path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << "prefix of " << cut << " bytes";
  }
}

TEST(KbIoCorruptionTest, BinaryChecksumMismatchIsRejected) {
  std::string path = SavedBinaryKb("matrix_checksum.tenetkb");
  std::string content = ReadFileBytes(path);
  // Flip one byte inside the section table; the header checksum covers
  // exactly these bytes, so the load must fail before touching payloads.
  content[40] = static_cast<char>(content[40] ^ 0x01);
  WriteFile(path, content);
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST(KbIoCorruptionTest, BinaryNonMonotonicStringTableIsRejected) {
  std::string path = SavedBinaryKb("matrix_strings.tenetkb");
  std::string content = ReadFileBytes(path);
  std::vector<BinarySection> sections = ReadSectionTable(content);
  ASSERT_GE(sections[0].count, 2u);  // string table is section id 1, first
  ASSERT_EQ(sections[0].id, 1u);
  // The section begins with count uint64 end-offsets; make them decrease.
  uint64_t huge = ~uint64_t{0};
  std::memcpy(content.data() + sections[0].offset, &huge, sizeof(huge));
  WriteFile(path, content);
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(KbIoCorruptionTest, BinaryAliasWithOutOfRangeEntityIdIsRejected) {
  std::string path = SavedBinaryKb("matrix_alias.tenetkb");
  std::string content = ReadFileBytes(path);
  std::vector<BinarySection> sections = ReadSectionTable(content);
  ASSERT_EQ(sections[3].id, 4u);  // aliases
  ASSERT_GE(sections[3].count, 1u);
  // Records are {u32 surface_ref, i32 concept_id, i32 kind, i32 pad, f64
  // prior}; point the first concept id far out of range.
  int32_t bogus = INT32_MAX;
  std::memcpy(content.data() + sections[3].offset + 4, &bogus, sizeof(bogus));
  WriteFile(path, content);
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(KbIoCorruptionTest, WrongMagicIsRejected) {
  std::string path = TempPath("wrong_magic.tenetkb");
  WriteFile(path, "NOTAKB v1\nE\t0\nP\t0\nA\t0\nF\t0\n");
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(KbIoCorruptionTest, WrongVersionLineIsRejected) {
  // A future (or corrupted) version stamp must not be parsed as v1.
  std::string path = TempPath("wrong_version.tenetkb");
  WriteFile(path, "TENETKB v9\nE\t0\nP\t0\nA\t0\nF\t0\n");
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(KbIoCorruptionTest, TruncatedKbFileIsRejected) {
  std::string full_path = TempPath("truncate_source.tenetkb");
  ASSERT_TRUE(SaveKnowledgeBase(TinyKb(), full_path).ok());
  std::ifstream in(full_path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  // Chop at every prefix length: none of them may crash, and any prefix
  // short of the full file must be rejected.
  for (size_t cut = 0; cut + 1 < content.size(); cut += 7) {
    std::string path = TempPath("truncated.tenetkb");
    WriteFile(path, content.substr(0, cut));
    Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(KbIoCorruptionTest, AliasWithOutOfRangeEntityIdIsRejected) {
  std::string path = TempPath("bad_alias_id.tenetkb");
  WriteFile(path,
            "TENETKB v1\n"
            "E\t1\n0\t0\t1\tBrooklyn\n"
            "P\t0\n"
            "A\t1\nE\t7\t1\tKings County\n"  // entity 7 does not exist
            "F\t0\n");
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("unknown entity"),
            std::string::npos);
}

TEST(KbIoCorruptionTest, FactWithOutOfRangeConceptIdsIsRejected) {
  std::string path = TempPath("bad_fact_id.tenetkb");
  WriteFile(path,
            "TENETKB v1\n"
            "E\t1\n0\t0\t1\tBrooklyn\n"
            "P\t1\n0\t1\tvisited\n"
            "A\t0\n"
            "F\t1\n0\t0\tE\t42\n");  // object entity 42 does not exist
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(KbIoCorruptionTest, NaNEmbeddingPayloadIsDataLoss) {
  // Header says 1 entity, dim 2 — payload carries a NaN, which would
  // silently poison every cosine if it reached Finalize.
  std::string path = TempPath("nan_payload.tenetemb");
  std::string content = "TENETEMB1";
  int32_t header[3] = {2, 1, 0};
  content.append(reinterpret_cast<const char*>(header), sizeof(header));
  float payload[2] = {1.0f, std::numeric_limits<float>::quiet_NaN()};
  content.append(reinterpret_cast<const char*>(payload), sizeof(payload));
  WriteFile(path, content);
  Result<embedding::EmbeddingStore> loaded = LoadEmbeddings(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsDataLoss());
}

TEST(KbIoCorruptionTest, TruncatedEmbeddingPayloadIsRejected) {
  std::string path = TempPath("short_payload.tenetemb");
  std::string content = "TENETEMB1";
  int32_t header[3] = {4, 2, 0};  // promises 2 vectors of dim 4
  content.append(reinterpret_cast<const char*>(header), sizeof(header));
  float payload[3] = {0.1f, 0.2f, 0.3f};  // delivers less than one
  content.append(reinterpret_cast<const char*>(payload), sizeof(payload));
  WriteFile(path, content);
  Result<embedding::EmbeddingStore> loaded = LoadEmbeddings(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(KbIoCorruptionTest, InjectedWriteTruncationNeverPublishesATornFile) {
  // The fault point simulates a crash / full disk mid-write.  Snapshots go
  // through AtomicWriteFile, so the crash leaves half-written debris at
  // `<path>.tmp` — never a torn `path`: the target simply does not exist.
  std::string path = TempPath("torn_write.tenetkb");
  std::remove(path.c_str());
  {
    FaultInjector faults(41);
    faults.Arm("kb/io/write_truncation", 1.0);
    Status save = SaveKnowledgeBase(TinyKb(), path);
    ASSERT_FALSE(save.ok());
    EXPECT_TRUE(save.IsDataLoss());
    EXPECT_EQ(faults.FireCount("kb/io/write_truncation"), 1);
  }
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  // The realistic crash residue is there, and loaders never look at it.
  std::ifstream debris(path + ".tmp", std::ios::binary);
  EXPECT_TRUE(debris.good());
}

TEST(KbIoCorruptionTest, KillMidWriteLeavesThePreviousSnapshotIntact) {
  // The live-update story depends on this: a crash while re-snapshotting
  // (e.g. the background merge) must leave the previous generation's file
  // loadable, or a reboot after the crash has no KB at all.
  std::string path = TempPath("overwritten.tenetkb");
  ASSERT_TRUE(SaveKnowledgeBase(TinyKb(), path).ok());

  KnowledgeBase bigger;
  EntityId a = bigger.AddEntity("Alpha", EntityType::kPerson, 0, 2.0);
  EntityId b = bigger.AddEntity("Beta", EntityType::kLocation, 0, 1.0);
  PredicateId p = bigger.AddPredicate("linked to", 0, 1.0);
  ASSERT_TRUE(bigger.AddFact(a, p, b).ok());
  bigger.Finalize();
  {
    FaultInjector faults(44);
    faults.Arm("kb/io/write_truncation", 1.0);
    Status save = SaveKnowledgeBase(bigger, path);
    ASSERT_FALSE(save.ok());
    EXPECT_TRUE(save.IsDataLoss());
  }

  // The old snapshot survives, byte-for-byte loadable.
  Result<KnowledgeBase> loaded = LoadKnowledgeBase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_entities(), TinyKb().num_entities());
}

TEST(KbIoCorruptionTest, InjectedEmbeddingTruncationNeverPublishesATornFile) {
  datasets::SyntheticWorld world = datasets::BuildWorld();
  std::string path = TempPath("torn_write.tenetemb");
  std::remove(path.c_str());
  {
    FaultInjector faults(42);
    faults.Arm("kb/io/write_truncation", 1.0);
    Status save = SaveEmbeddings(world.embeddings, path);
    ASSERT_FALSE(save.ok());
    EXPECT_TRUE(save.IsDataLoss());
  }
  Result<embedding::EmbeddingStore> loaded = LoadEmbeddings(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(KbIoCorruptionTest, LoaderFaultPointsSurfaceAsDataLoss) {
  std::string kb_path = TempPath("loader_fault.tenetkb");
  ASSERT_TRUE(SaveKnowledgeBase(TinyKb(), kb_path).ok());
  FaultInjector faults(43);
  faults.Arm("kb/io/load_kb", 1.0);
  faults.Arm("kb/io/load_embeddings", 1.0);
  EXPECT_TRUE(LoadKnowledgeBase(kb_path).status().IsDataLoss());
  EXPECT_TRUE(LoadEmbeddings("unused.tenetemb").status().IsDataLoss());
}

}  // namespace
}  // namespace kb
}  // namespace tenet
