#include "text/extraction.h"

#include <gtest/gtest.h>

namespace tenet {
namespace text {
namespace {

Gazetteer BuildGazetteer() {
  Gazetteer g;
  g.AddSurface("Michael Jordan", kb::EntityType::kPerson);
  g.AddSurface("Brooklyn", kb::EntityType::kLocation);
  g.AddSurface("AAAS", kb::EntityType::kOrganization);
  g.AddSurface("Fellow", kb::EntityType::kOther);
  g.AddSurface("Fellow of the AAAS", kb::EntityType::kOther);
  g.AddSurface("artificial intelligence", kb::EntityType::kTopic, true);
  g.AddSurface("machine learning", kb::EntityType::kTopic, true);
  g.AddSurface("Rembrandt", kb::EntityType::kPerson);
  g.AddSurface("The Storm", kb::EntityType::kWork);
  g.AddSurface("Sea", kb::EntityType::kLocation);
  g.AddSurface("Galilee", kb::EntityType::kLocation);
  return g;
}

std::vector<std::string> Surfaces(const ExtractionResult& r) {
  std::vector<std::string> out;
  for (const ShortMention& m : r.mentions) out.push_back(m.surface);
  return out;
}

TEST(ExtractionTest, PaperFigureOneDocument) {
  Gazetteer g = BuildGazetteer();
  Extractor extractor(&g);
  ExtractionResult r = extractor.ExtractFromText(
      "Michael Jordan studies artificial intelligence and machine learning. "
      "He was awarded as the Fellow of the AAAS. "
      "He visited Brooklyn in April 2019.");

  std::vector<std::string> surfaces = Surfaces(r);
  // Short mentions: Michael Jordan, the two topics, Fellow, AAAS, Brooklyn,
  // April (fresh capitalized token).
  EXPECT_NE(std::find(surfaces.begin(), surfaces.end(), "Michael Jordan"),
            surfaces.end());
  EXPECT_NE(std::find(surfaces.begin(), surfaces.end(),
                      "artificial intelligence"),
            surfaces.end());
  EXPECT_NE(std::find(surfaces.begin(), surfaces.end(), "machine learning"),
            surfaces.end());
  EXPECT_NE(std::find(surfaces.begin(), surfaces.end(), "Fellow"),
            surfaces.end());
  EXPECT_NE(std::find(surfaces.begin(), surfaces.end(), "AAAS"),
            surfaces.end());
  EXPECT_NE(std::find(surfaces.begin(), surfaces.end(), "Brooklyn"),
            surfaces.end());
  // Pronouns are not mentions.
  EXPECT_EQ(std::find(surfaces.begin(), surfaces.end(), "He"),
            surfaces.end());

  // Relational phrases: "studies" and "visited" (lemmatized).
  ASSERT_GE(r.relations.size(), 2u);
  bool found_study = false;
  bool found_visit = false;
  for (const ExtractedRelation& rel : r.relations) {
    if (rel.lemma == "study") found_study = true;
    if (rel.lemma == "visit") found_visit = true;
  }
  EXPECT_TRUE(found_study);
  EXPECT_TRUE(found_visit);
}

TEST(ExtractionTest, FeatureLinksJoinFellowOfTheAaas) {
  Gazetteer g = BuildGazetteer();
  Extractor extractor(&g);
  ExtractionResult r = extractor.ExtractFromText(
      "He was awarded as the Fellow of the AAAS.");
  // Expect mentions Fellow and AAAS with a preposition link between them.
  ASSERT_EQ(r.mentions.size(), 2u);
  EXPECT_EQ(r.mentions[0].surface, "Fellow");
  EXPECT_EQ(r.mentions[1].surface, "AAAS");
  ASSERT_TRUE(r.link_after[0].has_value());
  EXPECT_EQ(r.link_after[0]->kind, ConnectorKind::kPreposition);
  EXPECT_EQ(r.link_after[0]->joining_text, "of the");
}

TEST(ExtractionTest, RembrandtStormExample) {
  Gazetteer g = BuildGazetteer();
  Extractor extractor(&g);
  ExtractionResult r = extractor.ExtractFromText(
      "Rembrandt painted The Storm on the Sea of Galilee.");
  std::vector<std::string> surfaces = Surfaces(r);
  ASSERT_EQ(surfaces.size(), 4u);
  EXPECT_EQ(surfaces[0], "Rembrandt");
  EXPECT_EQ(surfaces[1], "The Storm");
  EXPECT_EQ(surfaces[2], "Sea");
  EXPECT_EQ(surfaces[3], "Galilee");
  // Rembrandt -> The Storm gap is the verb "painted": no link.
  EXPECT_FALSE(r.link_after[0].has_value());
  // The Storm -(on the)- Sea -(of)- Galilee.
  ASSERT_TRUE(r.link_after[1].has_value());
  EXPECT_EQ(r.link_after[1]->joining_text, "on the");
  ASSERT_TRUE(r.link_after[2].has_value());
  EXPECT_EQ(r.link_after[2]->joining_text, "of");
  // "painted" links two noun phrases -> relational phrase "paint".
  ASSERT_EQ(r.relations.size(), 1u);
  EXPECT_EQ(r.relations[0].lemma, "paint");
  EXPECT_EQ(r.relations[0].raw, "painted");
}

TEST(ExtractionTest, FreshCapitalizedPhraseHasNoType) {
  Gazetteer g = BuildGazetteer();
  Extractor extractor(&g);
  ExtractionResult r =
      extractor.ExtractFromText("Brooklyn admired Zanthor Quibble.");
  ASSERT_EQ(r.mentions.size(), 2u);
  EXPECT_EQ(r.mentions[1].surface, "Zanthor Quibble");
  EXPECT_FALSE(r.mentions[1].type.has_value());
  EXPECT_TRUE(r.mentions[0].type.has_value());
}

TEST(ExtractionTest, VerbWithParticle) {
  Gazetteer g = BuildGazetteer();
  g.AddSurface("Meridian Institute", kb::EntityType::kOrganization);
  Extractor extractor(&g);
  ExtractionResult r = extractor.ExtractFromText(
      "Michael Jordan worked at Meridian Institute.");
  ASSERT_EQ(r.relations.size(), 1u);
  EXPECT_EQ(r.relations[0].raw, "worked at");
  EXPECT_EQ(r.relations[0].lemma, "work at");
}

TEST(ExtractionTest, RelationRequiresBothAnchors) {
  Gazetteer g = BuildGazetteer();
  Extractor extractor(&g);
  // Verb with no right-hand noun phrase: dropped.
  ExtractionResult r1 = extractor.ExtractFromText("Michael Jordan studies.");
  EXPECT_TRUE(r1.relations.empty());
  // Verb with no left-hand anchor (unbound pronoun subject): dropped.
  ExtractionResult r2 =
      extractor.ExtractFromText("They kept visiting Brooklyn.");
  EXPECT_TRUE(r2.relations.empty());
}

TEST(ExtractionTest, PronounResolvesAsLeftAnchor) {
  Gazetteer g = BuildGazetteer();
  Extractor extractor(&g);
  ExtractionResult r = extractor.ExtractFromText(
      "Michael Jordan lives here. He visited Brooklyn.");
  bool found_visit = false;
  for (const ExtractedRelation& rel : r.relations) {
    if (rel.lemma == "visit") found_visit = true;
  }
  EXPECT_TRUE(found_visit);
}

TEST(ExtractionTest, SentenceBoundaryBreaksLinks) {
  Gazetteer g = BuildGazetteer();
  Extractor extractor(&g);
  ExtractionResult r =
      extractor.ExtractFromText("He saw Brooklyn. And Galilee stayed.");
  // "Brooklyn" and "Galilee" are in different sentences: no link, even
  // though the gap tokens contain a conjunction.
  ASSERT_GE(r.mentions.size(), 2u);
  for (size_t i = 0; i + 1 < r.mentions.size(); ++i) {
    if (r.mentions[i].surface == "Brooklyn") {
      EXPECT_FALSE(r.link_after[i].has_value());
    }
  }
}

TEST(ExtractionTest, MentionsCarrySentenceIds) {
  Gazetteer g = BuildGazetteer();
  Extractor extractor(&g);
  ExtractionResult r = extractor.ExtractFromText(
      "Rembrandt painted Galilee. Brooklyn admired Rembrandt.");
  for (const ShortMention& m : r.mentions) {
    if (m.surface == "Brooklyn") EXPECT_EQ(m.sentence, 1);
    if (m.surface == "Galilee") EXPECT_EQ(m.sentence, 0);
  }
}

TEST(ExtractionTest, EmptyDocument) {
  Gazetteer g = BuildGazetteer();
  Extractor extractor(&g);
  ExtractionResult r = extractor.ExtractFromText("");
  EXPECT_TRUE(r.mentions.empty());
  EXPECT_TRUE(r.relations.empty());
  EXPECT_TRUE(r.link_after.empty());
}

}  // namespace
}  // namespace text
}  // namespace tenet
