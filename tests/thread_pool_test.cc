// BoundedQueue and ThreadPool: overflow policies, close/drain semantics,
// backpressure, and cooperative cancellation.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bounded_queue.h"
#include "common/thread_pool.h"

namespace tenet {
namespace {

TEST(BoundedQueueTest, FifoOrderThroughOneConsumer) {
  BoundedQueue<int> queue(8, QueueOverflowPolicy::kBlock);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(i).ok());
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, RejectPolicyShedsWhenFull) {
  BoundedQueue<int> queue(2, QueueOverflowPolicy::kReject);
  EXPECT_TRUE(queue.Push(1).ok());
  EXPECT_TRUE(queue.Push(2).ok());
  Status full = queue.Push(3);
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  int out = 0;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Push(3).ok());  // space freed -> accepted again
}

TEST(BoundedQueueTest, BlockPolicyAppliesBackpressure) {
  BoundedQueue<int> queue(1, QueueOverflowPolicy::kBlock);
  ASSERT_TRUE(queue.Push(1).ok());
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.Push(2).ok());  // blocks until the consumer pops
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, CloseDrainsThenStopsConsumers) {
  BoundedQueue<std::string> queue(4, QueueOverflowPolicy::kBlock);
  ASSERT_TRUE(queue.Push("a").ok());
  ASSERT_TRUE(queue.Push("b").ok());
  queue.Close();
  EXPECT_EQ(queue.Push("c").code(), StatusCode::kFailedPrecondition);
  std::string out;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, "b");
  EXPECT_FALSE(queue.Pop(&out));  // closed and drained
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(4, QueueOverflowPolicy::kBlock);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(queue.Pop(&out));
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  queue.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueueTest, ClearDropsQueuedItems) {
  BoundedQueue<int> queue(8, QueueOverflowPolicy::kReject);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(i).ok());
  EXPECT_EQ(queue.Clear(), 5u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool::Options options;
  options.num_threads = 4;
  ThreadPool pool(options);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(pool.Submit([&sum, i] { sum.fetch_add(i); }).ok());
  }
  pool.Shutdown();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndRejectsLateWork) {
  ThreadPool::Options options;
  options.num_threads = 2;
  ThreadPool pool(options);
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(pool.Submit([] {}).code(), StatusCode::kFailedPrecondition);
}

TEST(ThreadPoolTest, RejectOverflowShedsExcessTasks) {
  ThreadPool::Options options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  options.overflow = QueueOverflowPolicy::kReject;
  ThreadPool pool(options);

  // Park the single worker so submissions pile up in the queue.
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit([&release] {
                    while (!release.load()) {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(1));
                    }
                  })
                  .ok());
  // Worker busy; capacity 2 queue accepts two and sheds the rest.
  int accepted = 0;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    Status status = pool.Submit([] {});
    if (status.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_GE(shed, 8);  // the worker may or may not have started popping
  EXPECT_LE(accepted, 2);
  release.store(true);
  pool.Shutdown();
}

TEST(ThreadPoolTest, CancelDropsQueuedTasksAndRaisesFlag) {
  ThreadPool::Options options;
  options.num_threads = 1;
  options.queue_capacity = 16;
  ThreadPool pool(options);

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> saw_cancel{false};
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] {
                    started.store(true);
                    while (!release.load()) {
                      if (pool.cancel_requested()) {
                        saw_cancel.store(true);
                        return;  // cooperative early exit
                      }
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(1));
                    }
                  })
                  .ok());
  // The worker must be inside the parked task before Cancel, or the task
  // would be dropped from the queue instead of observing the flag.
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }).ok());
  }
  EXPECT_FALSE(pool.cancel_requested());
  size_t dropped = pool.Cancel();
  EXPECT_TRUE(saw_cancel.load());  // the running task observed the flag
  EXPECT_EQ(dropped + static_cast<size_t>(ran.load()), 5u);
  EXPECT_EQ(pool.Submit([] {}).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tenet
