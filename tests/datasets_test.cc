#include "datasets/corpus_generator.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "datasets/world.h"
#include "text/extraction.h"

namespace tenet {
namespace datasets {
namespace {

class CorpusTest : public ::testing::Test {
 protected:
  static const SyntheticWorld& World() {
    static const SyntheticWorld* world = new SyntheticWorld(BuildWorld());
    return *world;
  }
};

TEST_F(CorpusTest, WorldIsDeterministic) {
  SyntheticWorld a = BuildWorld();
  SyntheticWorld b = BuildWorld();
  ASSERT_EQ(a.kb().num_entities(), b.kb().num_entities());
  EXPECT_EQ(a.kb().entity(5).label, b.kb().entity(5).label);
  EXPECT_DOUBLE_EQ(
      a.embeddings.Cosine(kb::ConceptRef::Entity(0), kb::ConceptRef::Entity(1)),
      b.embeddings.Cosine(kb::ConceptRef::Entity(0),
                          kb::ConceptRef::Entity(1)));
}

TEST_F(CorpusTest, GeneratesRequestedDocumentCount) {
  CorpusGenerator gen(&World().kb_world);
  Rng rng(1);
  Dataset news = gen.Generate(NewsSpec(), rng);
  EXPECT_EQ(news.name, "News");
  EXPECT_EQ(static_cast<int>(news.documents.size()), NewsSpec().num_docs);
  EXPECT_TRUE(news.has_relation_gold);

  Dataset kore = gen.Generate(Kore50Spec(), rng);
  EXPECT_EQ(static_cast<int>(kore.documents.size()), 50);
  EXPECT_FALSE(kore.has_relation_gold);
}

TEST_F(CorpusTest, AdvertisementDocumentsMarked) {
  CorpusGenerator gen(&World().kb_world);
  Rng rng(2);
  Dataset news = gen.Generate(NewsSpec(), rng);
  int ads = 0;
  for (const Document& d : news.documents) ads += d.advertisement ? 1 : 0;
  EXPECT_EQ(ads, 6);  // 6 of 16, Sec. 6.1
}

TEST_F(CorpusTest, StatisticsTrackTheSpec) {
  CorpusGenerator gen(&World().kb_world);
  Rng rng(3);
  Dataset news = gen.Generate(NewsSpec(), rng);
  double mentions = 0.0;
  double words = 0.0;
  int nonlinkable = 0;
  int total = 0;
  for (const Document& d : news.documents) {
    mentions += static_cast<double>(d.gold_entities.size());
    words += d.num_words;
    nonlinkable += d.NumNonLinkableEntities();
    total += static_cast<int>(d.gold_entities.size());
  }
  mentions /= news.documents.size();
  words /= news.documents.size();
  // Loose envelopes: the generator targets the published statistics.
  EXPECT_GT(mentions, 5.0);
  EXPECT_LT(mentions, 13.0);
  EXPECT_GT(words, 120.0);
  EXPECT_LT(words, 260.0);
  double nl_rate = static_cast<double>(nonlinkable) / total;
  EXPECT_GT(nl_rate, 0.10);
  EXPECT_LT(nl_rate, 0.45);
}

TEST_F(CorpusTest, KoreDocumentsAreShort) {
  CorpusGenerator gen(&World().kb_world);
  Rng rng(4);
  Dataset kore = gen.Generate(Kore50Spec(), rng);
  double words = 0.0;
  for (const Document& d : kore.documents) words += d.num_words;
  words /= kore.documents.size();
  EXPECT_LT(words, 30.0);
}

TEST_F(CorpusTest, GoldEntitiesResolveInKb) {
  CorpusGenerator gen(&World().kb_world);
  Rng rng(5);
  Dataset trex = gen.Generate(TRex42Spec(), rng);
  for (const Document& d : trex.documents) {
    for (const GoldEntityLink& g : d.gold_entities) {
      if (!g.linkable()) continue;
      // The annotated surface must resolve to the gold entity among its KB
      // candidates (the annotation is consistent with the KB).
      std::vector<kb::EntityCandidate> candidates =
          World().kb().CandidateEntities(g.surface, std::nullopt, 50);
      bool found = false;
      for (const kb::EntityCandidate& c : candidates) {
        if (c.entity == g.entity) found = true;
      }
      EXPECT_TRUE(found) << "surface '" << g.surface << "' gold " << g.entity;
    }
  }
}

TEST_F(CorpusTest, NonLinkableSurfacesAreAbsentFromKb) {
  CorpusGenerator gen(&World().kb_world);
  Rng rng(6);
  Dataset news = gen.Generate(NewsSpec(), rng);
  for (const Document& d : news.documents) {
    for (const GoldEntityLink& g : d.gold_entities) {
      if (g.linkable()) continue;
      EXPECT_TRUE(
          World().kb().CandidateEntities(g.surface, std::nullopt, 5).empty())
          << "non-linkable surface '" << g.surface << "' found in KB";
    }
  }
}

TEST_F(CorpusTest, GoldSurfacesUniquePerDocument) {
  CorpusGenerator gen(&World().kb_world);
  Rng rng(7);
  Dataset msnbc = gen.Generate(Msnbc19Spec(), rng);
  for (const Document& d : msnbc.documents) {
    std::unordered_set<std::string> seen;
    for (const GoldEntityLink& g : d.gold_entities) {
      EXPECT_TRUE(seen.insert(AsciiToLower(g.surface)).second)
          << "duplicate gold surface " << g.surface;
    }
  }
}

TEST_F(CorpusTest, GoldPredicatesResolveInKb) {
  CorpusGenerator gen(&World().kb_world);
  Rng rng(8);
  Dataset news = gen.Generate(NewsSpec(), rng);
  int linkable = 0;
  int nonlinkable = 0;
  for (const Document& d : news.documents) {
    for (const GoldPredicateLink& g : d.gold_predicates) {
      if (g.linkable()) {
        ++linkable;
        std::vector<kb::PredicateCandidate> candidates =
            World().kb().CandidatePredicates(g.lemma, 50);
        bool found = false;
        for (const kb::PredicateCandidate& c : candidates) {
          if (c.predicate == g.predicate) found = true;
        }
        EXPECT_TRUE(found);
      } else {
        ++nonlinkable;
        EXPECT_TRUE(World().kb().CandidatePredicates(g.lemma, 5).empty());
      }
    }
  }
  EXPECT_GT(linkable, 0);
  // News has ~63% non-linkable relational phrases (Table 2).
  EXPECT_GT(nonlinkable, linkable / 2);
}

TEST_F(CorpusTest, DocumentTextMentionsEveryGoldSurface) {
  CorpusGenerator gen(&World().kb_world);
  Rng rng(9);
  Dataset kore = gen.Generate(Kore50Spec(), rng);
  for (const Document& d : kore.documents) {
    std::string lower_text = AsciiToLower(d.text);
    for (const GoldEntityLink& g : d.gold_entities) {
      EXPECT_NE(lower_text.find(AsciiToLower(g.surface)), std::string::npos)
          << "gold surface '" << g.surface << "' missing from text";
    }
  }
}

TEST_F(CorpusTest, ExtractionRecoversMostGoldMentions) {
  // End-to-end substrate sanity: the extractor (which never sees the gold)
  // finds the bulk of the annotated mentions as short mentions or via
  // feature-linked runs.
  CorpusGenerator gen(&World().kb_world);
  Rng rng(10);
  Dataset trex = gen.Generate(TRex42Spec(), rng);
  text::Extractor extractor(&World().gazetteer());
  int covered = 0;
  int total = 0;
  for (const Document& d : trex.documents) {
    text::ExtractionResult r = extractor.ExtractFromText(d.text);
    std::unordered_set<std::string> pieces;
    for (const text::ShortMention& m : r.mentions) {
      pieces.insert(AsciiToLower(m.surface));
    }
    for (const GoldEntityLink& g : d.gold_entities) {
      ++total;
      std::string surface = AsciiToLower(g.surface);
      if (pieces.count(surface) > 0) {
        ++covered;
        continue;
      }
      // Long-text golds are covered when all their feature-free fragments
      // were extracted (the canopy machinery rejoins them); approximate by
      // first-token membership.
      bool fragment = false;
      for (const std::string& p : pieces) {
        if (surface.find(p) != std::string::npos) {
          fragment = true;
          break;
        }
      }
      if (fragment) ++covered;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(covered) / total, 0.9);
}

}  // namespace
}  // namespace datasets
}  // namespace tenet
