#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace tenet {
namespace eval {
namespace {

datasets::Document MakeGold() {
  datasets::Document doc;
  doc.gold_entities.push_back({"Brooklyn", 0, 7});
  doc.gold_entities.push_back({"The Storm on the Sea of Galilee", 0, 9});
  doc.gold_entities.push_back({"Zorvex Trust", 1, kb::kInvalidEntity});
  doc.gold_predicates.push_back({"paint", 0, 3});
  doc.gold_predicates.push_back({"explore", 1, kb::kInvalidPredicate});
  return doc;
}

TEST(PrfTest, Arithmetic) {
  PRF prf;
  prf.tp = 3;
  prf.fp = 1;
  prf.fn = 2;
  EXPECT_DOUBLE_EQ(prf.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(prf.Recall(), 0.6);
  EXPECT_NEAR(prf.F1(), 2 * 0.75 * 0.6 / (0.75 + 0.6), 1e-12);

  PRF zero;
  EXPECT_DOUBLE_EQ(zero.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(zero.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(zero.F1(), 0.0);

  PRF sum;
  sum.Add(prf);
  sum.Add(prf);
  EXPECT_EQ(sum.tp, 6);
  EXPECT_EQ(sum.fn, 4);
}

TEST(TokenContainmentTest, Basics) {
  EXPECT_TRUE(TokenContainment("sea", "the storm on the sea of galilee"));
  EXPECT_TRUE(TokenContainment("the storm on the sea of galilee", "sea"));
  EXPECT_TRUE(TokenContainment("Brooklyn", "brooklyn"));
  EXPECT_FALSE(TokenContainment("seattle", "the sea"));  // word-level only
  EXPECT_FALSE(TokenContainment("brooklyn", "queens"));
  EXPECT_TRUE(TokenContainment("storm on", "the storm on the sea"));
}

TEST(ScoreEntityLinkingTest, ExactCorrectAndWrong) {
  datasets::Document gold = MakeGold();
  SystemPrediction pred;
  pred.entity_links = {{"brooklyn", 7},  // correct
                       {"the storm on the sea of galilee", 1}};  // wrong id
  PRF prf = ScoreEntityLinking(gold, pred);
  EXPECT_EQ(prf.tp, 1);
  EXPECT_EQ(prf.fp, 1);
  EXPECT_EQ(prf.fn, 1);  // the composite gold was never correctly linked
}

TEST(ScoreEntityLinkingTest, WrongSegmentationIsFalsePositive) {
  datasets::Document gold = MakeGold();
  SystemPrediction pred;
  pred.entity_links = {{"sea", 12}, {"galilee", 13}, {"brooklyn", 7}};
  PRF prf = ScoreEntityLinking(gold, pred);
  EXPECT_EQ(prf.tp, 1);   // brooklyn
  EXPECT_EQ(prf.fp, 2);   // the two fragments overlap the composite gold
  EXPECT_EQ(prf.fn, 1);
}

TEST(ScoreEntityLinkingTest, LinkingNonLinkableIsFalsePositive) {
  datasets::Document gold = MakeGold();
  SystemPrediction pred;
  pred.entity_links = {{"zorvex trust", 55}};
  PRF prf = ScoreEntityLinking(gold, pred);
  EXPECT_EQ(prf.tp, 0);
  EXPECT_EQ(prf.fp, 1);
}

TEST(ScoreEntityLinkingTest, OutsideGoldIgnored) {
  datasets::Document gold = MakeGold();
  SystemPrediction pred;
  pred.entity_links = {{"completely unrelated", 99}};
  PRF prf = ScoreEntityLinking(gold, pred);
  EXPECT_EQ(prf.tp, 0);
  EXPECT_EQ(prf.fp, 0);
  EXPECT_EQ(prf.fn, 2);  // both linkable golds unmatched
}

TEST(ScoreEntityLinkingTest, DuplicatePredictionsCountOnce) {
  datasets::Document gold = MakeGold();
  SystemPrediction pred;
  pred.entity_links = {{"brooklyn", 7}, {"brooklyn", 7}};
  PRF prf = ScoreEntityLinking(gold, pred);
  EXPECT_EQ(prf.tp, 1);
  EXPECT_EQ(prf.fp, 0);
}

TEST(ScoreRelationLinkingTest, Basics) {
  datasets::Document gold = MakeGold();
  SystemPrediction pred;
  pred.predicate_links = {{"paint", 3},     // correct
                          {"explore", 8},   // linked a non-linkable lemma
                          {"fly", 1}};      // outside gold: ignored
  PRF prf = ScoreRelationLinking(gold, pred);
  EXPECT_EQ(prf.tp, 1);
  EXPECT_EQ(prf.fp, 1);
  EXPECT_EQ(prf.fn, 0);
}

TEST(ScoreMentionDetectionTest, ExactSurfaceMatching) {
  datasets::Document gold = MakeGold();
  SystemPrediction pred;
  pred.selected_noun_surfaces = {"brooklyn", "sea", "zorvex trust"};
  PRF prf = ScoreMentionDetection(gold, pred);
  EXPECT_EQ(prf.tp, 2);  // brooklyn + zorvex trust
  EXPECT_EQ(prf.fp, 1);  // sea is a wrong segmentation
  EXPECT_EQ(prf.fn, 1);  // the composite
}

TEST(ScoreIsolatedDetectionTest, PrecisionSemantics) {
  datasets::Document gold = MakeGold();
  SystemPrediction pred;
  pred.isolated_noun_surfaces = {"zorvex trust",  // true NIL
                                 "brooklyn"};     // linkable: FP
  PRF prf = ScoreIsolatedDetection(gold, pred);
  EXPECT_EQ(prf.tp, 1);
  EXPECT_EQ(prf.fp, 1);
  EXPECT_EQ(prf.fn, 0);
  EXPECT_DOUBLE_EQ(prf.Precision(), 0.5);
}

TEST(MentionSetFromGoldTest, SingletonGroups) {
  datasets::Document gold = MakeGold();
  text::Gazetteer gazetteer;
  gazetteer.AddSurface("Brooklyn", kb::EntityType::kLocation);
  core::MentionSet set = MentionSetFromGold(gold, gazetteer);
  ASSERT_EQ(set.num_mentions(), 3);
  ASSERT_EQ(set.num_groups(), 3);
  for (const core::MentionGroup& g : set.groups) {
    EXPECT_EQ(g.members.size(), 1u);
    EXPECT_EQ(g.canopies.size(), 1u);
  }
  EXPECT_EQ(set.mention(0).surface, "Brooklyn");
  EXPECT_EQ(set.mention(0).type, kb::EntityType::kLocation);
  EXPECT_FALSE(set.mention(1).type.has_value());
}

TEST(FromLinkingResultTest, SplitsByKindAndLowercases) {
  core::LinkingResult result;
  core::Mention noun;
  noun.kind = core::Mention::Kind::kNoun;
  noun.surface = "Brooklyn";
  noun.group = 0;
  result.mentions.mentions.push_back(noun);
  core::Mention isolated;
  isolated.kind = core::Mention::Kind::kNoun;
  isolated.surface = "Zorvex Trust";
  isolated.group = 1;
  result.mentions.mentions.push_back(isolated);

  core::LinkedConcept link;
  link.mention_id = 0;
  link.surface = "Brooklyn";
  link.kind = core::Mention::Kind::kNoun;
  link.concept_ref = kb::ConceptRef::Entity(7);
  result.links.push_back(link);
  core::LinkedConcept rel;
  rel.mention_id = 5;
  rel.surface = "Paint";
  rel.kind = core::Mention::Kind::kRelational;
  rel.concept_ref = kb::ConceptRef::Predicate(3);
  result.links.push_back(rel);
  result.isolated_mentions = {1};

  SystemPrediction pred = FromLinkingResult(result);
  ASSERT_EQ(pred.entity_links.size(), 1u);
  EXPECT_EQ(pred.entity_links[0].first, "brooklyn");
  ASSERT_EQ(pred.predicate_links.size(), 1u);
  EXPECT_EQ(pred.predicate_links[0].first, "paint");
  ASSERT_EQ(pred.selected_noun_surfaces.size(), 2u);
  ASSERT_EQ(pred.isolated_noun_surfaces.size(), 1u);
  EXPECT_EQ(pred.isolated_noun_surfaces[0], "zorvex trust");
}

}  // namespace
}  // namespace eval
}  // namespace tenet
