// Smoke tests of the experiment harness (eval/harness) and the sparsity
// analysis (eval/sparsity), over a miniature world.
#include <gtest/gtest.h>

#include "baselines/falcon_like.h"
#include "baselines/tenet_linker.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "eval/harness.h"
#include "eval/sparsity.h"

namespace tenet {
namespace eval {
namespace {

const datasets::SyntheticWorld& World() {
  static const datasets::SyntheticWorld* world =
      new datasets::SyntheticWorld(datasets::BuildWorld());
  return *world;
}

datasets::Dataset TinyDataset(uint64_t seed) {
  datasets::CorpusGenerator gen(&World().kb_world);
  Rng rng(seed);
  datasets::DatasetSpec spec = datasets::TRex42Spec();
  spec.num_docs = 5;
  return gen.Generate(spec, rng);
}

baselines::BaselineSubstrate Substrate() {
  return baselines::BaselineSubstrate{
      &World().kb(), &World().embeddings, &World().gazetteer(), {}, {}};
}

TEST(HarnessTest, EndToEndProducesConsistentScores) {
  datasets::Dataset ds = TinyDataset(51);
  baselines::TenetLinker tenet(Substrate());
  SystemScores scores = EvaluateEndToEnd(tenet, ds);
  EXPECT_EQ(scores.system, "TENET");
  EXPECT_EQ(scores.dataset, "T-REx42");
  EXPECT_EQ(scores.failed_documents, 0);
  EXPECT_GT(scores.entity_linking.tp, 0);
  EXPECT_GE(scores.total_ms, 0.0);
  // PRF sanity.
  EXPECT_GE(scores.entity_linking.Precision(), 0.0);
  EXPECT_LE(scores.entity_linking.Precision(), 1.0);
  EXPECT_LE(scores.entity_linking.F1(),
            std::max(scores.entity_linking.Precision(),
                     scores.entity_linking.Recall()) +
                1e-12);
}

TEST(HarnessTest, RelationScoresOnlyWhenAnnotated) {
  datasets::Dataset ds = TinyDataset(52);
  ASSERT_TRUE(ds.has_relation_gold);
  baselines::TenetLinker tenet(Substrate());
  SystemScores with_rel = EvaluateEndToEnd(tenet, ds);
  EXPECT_GT(with_rel.relation_linking.tp + with_rel.relation_linking.fn, 0);

  ds.has_relation_gold = false;
  SystemScores without_rel = EvaluateEndToEnd(tenet, ds);
  EXPECT_EQ(without_rel.relation_linking.tp, 0);
  EXPECT_EQ(without_rel.relation_linking.fn, 0);
}

TEST(HarnessTest, DisambiguationModeScoresGoldMentions) {
  datasets::Dataset ds = TinyDataset(53);
  baselines::TenetLinker tenet(Substrate());
  SystemScores scores =
      EvaluateDisambiguation(tenet, ds, World().gazetteer());
  EXPECT_EQ(scores.failed_documents, 0);
  // With gold mentions given, recall can only be bounded by
  // disambiguation errors — it must be at least end-to-end recall.
  SystemScores end_to_end = EvaluateEndToEnd(tenet, ds);
  EXPECT_GE(scores.entity_linking.Recall() + 0.05,
            end_to_end.entity_linking.Recall());
}

TEST(HarnessTest, ParallelEvaluationMatchesSerialExactly) {
  datasets::Dataset ds = TinyDataset(56);
  baselines::TenetLinker tenet(Substrate());
  SystemScores serial = EvaluateEndToEnd(tenet, ds);

  EvalOptions parallel_options;
  parallel_options.num_threads = 4;
  SystemScores parallel = EvaluateEndToEnd(tenet, ds, parallel_options);

  // A fault-free dataset must score byte-identically across thread counts:
  // same per-document results, merged in dataset order.
  auto expect_same_prf = [](const PRF& a, const PRF& b) {
    EXPECT_EQ(a.tp, b.tp);
    EXPECT_EQ(a.fp, b.fp);
    EXPECT_EQ(a.fn, b.fn);
  };
  expect_same_prf(serial.entity_linking, parallel.entity_linking);
  expect_same_prf(serial.relation_linking, parallel.relation_linking);
  expect_same_prf(serial.mention_detection, parallel.mention_detection);
  expect_same_prf(serial.isolated_detection, parallel.isolated_detection);
  EXPECT_EQ(serial.failed_documents, parallel.failed_documents);
  EXPECT_EQ(serial.full_documents, parallel.full_documents);
  EXPECT_EQ(serial.degraded_documents, parallel.degraded_documents);
  EXPECT_TRUE(parallel.failures.empty());
}

TEST(HarnessTest, ReportsBothSummedLatencyAndWallClock) {
  datasets::Dataset ds = TinyDataset(57);
  baselines::TenetLinker tenet(Substrate());
  SystemScores serial = EvaluateEndToEnd(tenet, ds);
  // total_ms sums per-document linking latencies; wall_ms is the whole
  // run.  Both populated, and a serial run's wall clock covers the sum.
  EXPECT_GT(serial.total_ms, 0.0);
  EXPECT_GT(serial.wall_ms, 0.0);
  EXPECT_GE(serial.wall_ms, serial.total_ms * 0.5);

  EvalOptions parallel_options;
  parallel_options.num_threads = 2;
  SystemScores parallel = EvaluateEndToEnd(tenet, ds, parallel_options);
  EXPECT_GT(parallel.total_ms, 0.0);
  EXPECT_GT(parallel.wall_ms, 0.0);
}

// Sums the values of every snapshot point matching (name, labels).
double SnapshotValue(const std::vector<obs::MetricPoint>& points,
                     const std::string& name, const std::string& labels) {
  double value = 0.0;
  for (const obs::MetricPoint& p : points) {
    if (p.name == name && p.labels == labels) value += p.value;
  }
  return value;
}

TEST(HarnessTest, WallClockCoversTheSlowestDocument) {
  datasets::Dataset ds = TinyDataset(60);
  baselines::TenetLinker tenet(Substrate());

  // No document can finish after the evaluation that contains it, whatever
  // the thread count: wall_ms >= max over per-document latencies.
  SystemScores serial = EvaluateEndToEnd(tenet, ds);
  EXPECT_GT(serial.max_doc_ms, 0.0);
  EXPECT_GE(serial.wall_ms, serial.max_doc_ms);
  EXPECT_GE(serial.total_ms, serial.max_doc_ms);

  EvalOptions parallel_options;
  parallel_options.num_threads = 4;
  SystemScores parallel = EvaluateEndToEnd(tenet, ds, parallel_options);
  EXPECT_GT(parallel.max_doc_ms, 0.0);
  EXPECT_GE(parallel.wall_ms, parallel.max_doc_ms);
}

TEST(HarnessTest, DegradedDocumentsLandInTheSameLatencyFamily) {
  datasets::Dataset ds = TinyDataset(61);
  // A zero budget degrades every document to the prior-only rung.  Their
  // latencies must still be published, in the same
  // tenet_document_latency_ms family as full answers (under
  // mode="prior_only") — degrading must not hide the tail.  The default
  // registry is process-cumulative, so the assertion diffs two snapshots.
  const std::vector<obs::MetricPoint> before =
      obs::MetricsRegistry::Default()->Snapshot();
  core::TenetOptions options;
  options.deadline_ms = 0.0;
  baselines::TenetLinker tenet(Substrate(), options);
  SystemScores scores = EvaluateEndToEnd(tenet, ds);
  ASSERT_EQ(scores.degraded_documents, static_cast<int>(ds.documents.size()));

  const std::string family = "tenet_document_latency_ms_count";
  const std::string prior_only = obs::LabelPair("mode", "prior_only");
  const std::string full = obs::LabelPair("mode", "full");
  EXPECT_EQ(SnapshotValue(scores.metrics, family, prior_only) -
                SnapshotValue(before, family, prior_only),
            static_cast<double>(ds.documents.size()));
  EXPECT_EQ(SnapshotValue(scores.metrics, family, full) -
                SnapshotValue(before, family, full),
            0.0);
}

TEST(HarnessTest, DisambiguationObservesDeadlineExpiryMidStage) {
  datasets::Dataset ds = TinyDataset(58);
  // A zero budget expires between mention intake and the coherence stage:
  // every document must come back prior-only degraded (never failed, never
  // crashed) and still be scored.
  core::TenetOptions options;
  options.deadline_ms = 0.0;
  baselines::TenetLinker tenet(Substrate(), options);
  SystemScores scores = EvaluateDisambiguation(tenet, ds, World().gazetteer());
  EXPECT_EQ(scores.failed_documents, 0);
  EXPECT_EQ(scores.full_documents, 0);
  EXPECT_EQ(scores.degraded_documents,
            static_cast<int>(ds.documents.size()));
  EXPECT_GT(scores.entity_linking.tp + scores.entity_linking.fn, 0);
}

TEST(HarnessTest, DisambiguationSurvivesTinyDeadlineBudgets) {
  datasets::Dataset ds = TinyDataset(59);
  // A just-barely-nonzero budget lands the expiry inside whichever stage
  // happens to be running; the accounting must stay total regardless.
  core::TenetOptions options;
  options.deadline_ms = 0.05;
  baselines::TenetLinker tenet(Substrate(), options);
  SystemScores scores = EvaluateDisambiguation(tenet, ds, World().gazetteer());
  EXPECT_EQ(scores.failed_documents, 0);
  EXPECT_EQ(scores.full_documents + scores.degraded_documents,
            static_cast<int>(ds.documents.size()));
}

TEST(HarnessTest, FormatPrf) {
  PRF prf;
  prf.tp = 1;
  prf.fp = 1;
  prf.fn = 3;
  EXPECT_EQ(FormatPRF(prf), "0.500 0.250 0.333");
}

TEST(SparsityTest, CurvesAreMonotoneAndBounded) {
  datasets::Dataset ds = TinyDataset(54);
  std::vector<SparsityPoint> entity_curve =
      EntitySparsity(ds, World().kb(), World().embeddings);
  std::vector<SparsityPoint> concept_curve =
      ConceptSparsity(ds, World().kb(), World().embeddings);
  ASSERT_EQ(entity_curve.size(), 10u);
  ASSERT_EQ(concept_curve.size(), 10u);
  for (size_t i = 0; i < entity_curve.size(); ++i) {
    EXPECT_NEAR(entity_curve[i].threshold, 0.1 * i, 1e-12);
    EXPECT_GE(entity_curve[i].density, 0.0);
    EXPECT_LE(entity_curve[i].density, 1.0);
    EXPECT_GE(entity_curve[i].avg_degree, 0.0);
    if (i > 0) {
      // Cumulative thresholds: both metrics are non-decreasing.
      EXPECT_GE(entity_curve[i].density, entity_curve[i - 1].density);
      EXPECT_GE(entity_curve[i].avg_degree,
                entity_curve[i - 1].avg_degree);
    }
  }
  // Concept curves include predicates: at least as many nodes, and the
  // same monotonicity.
  for (size_t i = 1; i < concept_curve.size(); ++i) {
    EXPECT_GE(concept_curve[i].density, concept_curve[i - 1].density);
  }
}

TEST(SparsityTest, SparseAtLowThresholds) {
  datasets::Dataset ds = TinyDataset(55);
  std::vector<SparsityPoint> curve =
      EntitySparsity(ds, World().kb(), World().embeddings);
  // The motivating observation (Figs. 4-5): documents are NOT densely
  // coherent — density far below 1 at small distance thresholds.
  EXPECT_LT(curve[2].density, 0.5);
}

TEST(SparsityTest, EmptyDatasetYieldsZeroCurves) {
  datasets::Dataset empty;
  empty.name = "empty";
  std::vector<SparsityPoint> curve =
      EntitySparsity(empty, World().kb(), World().embeddings);
  for (const SparsityPoint& p : curve) {
    EXPECT_DOUBLE_EQ(p.density, 0.0);
    EXPECT_DOUBLE_EQ(p.avg_degree, 0.0);
  }
}

}  // namespace
}  // namespace eval
}  // namespace tenet
