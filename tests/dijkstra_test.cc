#include "graph/dijkstra.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tenet {
namespace graph {
namespace {

TEST(DijkstraTest, LineGraphDistances) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 2.0);
  g.AddEdge(2, 3, 4.0);
  ShortestPaths sp = Dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 3.0);
  EXPECT_DOUBLE_EQ(sp.distance[3], 7.0);
}

TEST(DijkstraTest, PrefersCheaperIndirectPath) {
  WeightedGraph g(3);
  g.AddEdge(0, 2, 10.0);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  ShortestPaths sp = Dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 2.0);
  std::vector<int> path = sp.PathTo(g, 2);
  EXPECT_EQ(path, (std::vector<int>{0, 1, 2}));
}

TEST(DijkstraTest, UnreachableNodes) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 1.0);
  ShortestPaths sp = Dijkstra(g, 0);
  EXPECT_EQ(sp.distance[2], ShortestPaths::kUnreachable);
  EXPECT_TRUE(sp.PathTo(g, 2).empty());
}

TEST(DijkstraTest, PathToSourceIsItself) {
  WeightedGraph g(2);
  g.AddEdge(0, 1, 1.0);
  ShortestPaths sp = Dijkstra(g, 0);
  EXPECT_EQ(sp.PathTo(g, 0), std::vector<int>{0});
}

TEST(DijkstraBoundedTest, HeavyEdgesAreNotTraversed) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 5.0);
  g.AddEdge(1, 2, 1.0);
  ShortestPaths sp = DijkstraBounded(g, 0, 2.0);
  EXPECT_EQ(sp.distance[1], ShortestPaths::kUnreachable);
  EXPECT_EQ(sp.distance[2], ShortestPaths::kUnreachable);
  ShortestPaths unbounded = Dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(unbounded.distance[2], 6.0);
}

// Property: Dijkstra distances satisfy the triangle inequality over every
// edge (d[v] <= d[u] + w(u,v)) and are exact on random graphs (validated
// with Bellman-Ford-style relaxation until fixpoint).
class DijkstraPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraPropertyTest, MatchesBellmanFord) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.NextUint64(25));
  WeightedGraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.NextBool(0.25)) g.AddEdge(u, v, rng.NextDouble(0.0, 2.0));
    }
  }
  ShortestPaths sp = Dijkstra(g, 0);

  // Bellman-Ford reference.
  std::vector<double> ref(n, ShortestPaths::kUnreachable);
  ref[0] = 0.0;
  for (int iter = 0; iter < n; ++iter) {
    for (const Edge& e : g.edges()) {
      if (ref[e.u] + e.weight < ref[e.v]) ref[e.v] = ref[e.u] + e.weight;
      if (ref[e.v] + e.weight < ref[e.u]) ref[e.u] = ref[e.v] + e.weight;
    }
  }
  for (int v = 0; v < n; ++v) {
    if (ref[v] == ShortestPaths::kUnreachable) {
      EXPECT_EQ(sp.distance[v], ShortestPaths::kUnreachable);
    } else {
      EXPECT_NEAR(sp.distance[v], ref[v], 1e-9);
    }
  }

  // Edge relaxation invariant.
  for (const Edge& e : g.edges()) {
    if (sp.distance[e.u] != ShortestPaths::kUnreachable) {
      EXPECT_LE(sp.distance[e.v], sp.distance[e.u] + e.weight + 1e-9);
    }
  }

  // Reconstructed path weights match reported distances.
  for (int v = 0; v < n; ++v) {
    std::vector<int> path = sp.PathTo(g, v);
    if (sp.distance[v] == ShortestPaths::kUnreachable) {
      EXPECT_TRUE(path.empty());
      continue;
    }
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), v);
    double total = 0.0;
    for (size_t i = 1; i < path.size(); ++i) {
      total += g.EdgeWeight(path[i - 1], path[i], -1.0);
    }
    EXPECT_NEAR(total, sp.distance[v], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace graph
}  // namespace tenet
