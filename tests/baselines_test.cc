#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/earl_like.h"
#include "baselines/falcon_like.h"
#include "baselines/kbpearl_like.h"
#include "baselines/mintree_like.h"
#include "baselines/qkbfly_like.h"
#include "baselines/tenet_linker.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "eval/harness.h"
#include "figure_one_world.h"

namespace tenet {
namespace baselines {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  static const datasets::SyntheticWorld& World() {
    static const datasets::SyntheticWorld* world =
        new datasets::SyntheticWorld(datasets::BuildWorld());
    return *world;
  }
  static BaselineSubstrate Substrate() {
    return BaselineSubstrate{&World().kb(), &World().embeddings,
                             &World().gazetteer(), {}, {}};
  }
  static std::vector<std::unique_ptr<Linker>> AllLinkers() {
    std::vector<std::unique_ptr<Linker>> linkers;
    linkers.push_back(std::make_unique<FalconLike>(Substrate()));
    linkers.push_back(std::make_unique<QkbflyLike>(Substrate()));
    linkers.push_back(std::make_unique<KbPearlLike>(Substrate()));
    linkers.push_back(std::make_unique<EarlLike>(Substrate()));
    linkers.push_back(std::make_unique<MintreeLike>(Substrate()));
    linkers.push_back(std::make_unique<TenetLinker>(Substrate()));
    return linkers;
  }
};

TEST_F(BaselineTest, NamesAndCapabilities) {
  auto linkers = AllLinkers();
  EXPECT_EQ(linkers[0]->name(), "Falcon");
  EXPECT_EQ(linkers[1]->name(), "QKBfly");
  EXPECT_EQ(linkers[2]->name(), "KBPearl");
  EXPECT_EQ(linkers[3]->name(), "EARL");
  EXPECT_EQ(linkers[4]->name(), "MINTREE");
  EXPECT_EQ(linkers[5]->name(), "TENET");
  EXPECT_FALSE(linkers[1]->links_relations());  // QKBfly
  EXPECT_FALSE(linkers[4]->links_relations());  // MINTREE
  EXPECT_TRUE(linkers[2]->links_relations());
  EXPECT_FALSE(linkers[0]->has_disambiguation_stage());  // Falcon
  EXPECT_FALSE(linkers[3]->has_disambiguation_stage());  // EARL
  EXPECT_TRUE(linkers[5]->has_disambiguation_stage());
}

TEST_F(BaselineTest, AllSystemsLinkASimpleDocument) {
  // Build a document from KB labels so every system has candidates.
  const kb::KnowledgeBase& kb = World().kb();
  std::string subject;
  std::string object;
  for (kb::EntityId id = 0; id < kb.num_entities(); ++id) {
    const kb::EntityRecord& rec = kb.entity(id);
    if (rec.type != kb::EntityType::kPerson) continue;
    if (subject.empty()) {
      subject = rec.label;
    } else if (rec.label != subject) {
      object = rec.label;
      break;
    }
  }
  ASSERT_FALSE(subject.empty());
  ASSERT_FALSE(object.empty());
  std::string text = subject + " mentored " + object + ".";

  for (const auto& linker : AllLinkers()) {
    Result<core::LinkingResult> result = linker->LinkDocument(text);
    ASSERT_TRUE(result.ok()) << linker->name() << ": " << result.status();
    // Every system produces *some* noun decision on this trivial document
    // (QKBfly may abstain into isolated; the mention universe is there).
    EXPECT_GE(result->mentions.num_mentions(), 2) << linker->name();
  }
}

TEST_F(BaselineTest, FalconLinksEverythingWithCandidates) {
  FalconLike falcon(Substrate());
  Result<core::LinkingResult> r =
      falcon.LinkDocument("Zorvex Quibble admired Brooklyn.");
  ASSERT_TRUE(r.ok());
  // No abstentions ever: isolated list stays empty even for fresh phrases.
  EXPECT_TRUE(r->isolated_mentions.empty());
}

TEST_F(BaselineTest, QkbflyHasHighestPrecisionLowestRecall) {
  datasets::CorpusGenerator gen(&World().kb_world);
  Rng rng(31);
  datasets::DatasetSpec spec = datasets::TRex42Spec();
  spec.num_docs = 12;
  datasets::Dataset ds = gen.Generate(spec, rng);

  QkbflyLike qkbfly(Substrate());
  FalconLike falcon(Substrate());
  TenetLinker tenet(Substrate());
  eval::SystemScores q = eval::EvaluateEndToEnd(qkbfly, ds);
  eval::SystemScores f = eval::EvaluateEndToEnd(falcon, ds);
  eval::SystemScores t = eval::EvaluateEndToEnd(tenet, ds);

  // The paper's profile: QKBfly trades recall for precision.
  EXPECT_GT(q.entity_linking.Precision(), t.entity_linking.Precision());
  EXPECT_LT(q.entity_linking.Recall(), t.entity_linking.Recall());
  EXPECT_GT(q.entity_linking.Precision(), f.entity_linking.Precision());
}

TEST_F(BaselineTest, TenetOutperformsBaselinesOnEntityLinking) {
  datasets::CorpusGenerator gen(&World().kb_world);
  Rng rng(32);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  datasets::Dataset ds = gen.Generate(spec, rng);

  TenetLinker tenet(Substrate());
  eval::SystemScores t = eval::EvaluateEndToEnd(tenet, ds);
  for (const auto& linker : AllLinkers()) {
    if (linker->name() == "TENET") continue;
    eval::SystemScores s = eval::EvaluateEndToEnd(*linker, ds);
    EXPECT_GT(t.entity_linking.F1(), s.entity_linking.F1())
        << "TENET should beat " << linker->name() << " on News";
  }
}

TEST_F(BaselineTest, MintreeNeverAbstains) {
  MintreeLike mintree(Substrate());
  datasets::CorpusGenerator gen(&World().kb_world);
  Rng rng(33);
  datasets::Dataset ds = gen.Generate(datasets::Kore50Spec(), rng);
  for (const datasets::Document& d : ds.documents) {
    Result<core::LinkingResult> r = mintree.LinkDocument(d.text);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->isolated_mentions.empty());
    // Every noun mention with candidates is linked.
    for (int m = 0; m < r->mentions.num_mentions(); ++m) {
      if (!r->mentions.mention(m).is_noun()) continue;
    }
  }
}

TEST_F(BaselineTest, DisambiguationModeWorksForStagedSystems) {
  datasets::CorpusGenerator gen(&World().kb_world);
  Rng rng(34);
  datasets::DatasetSpec spec = datasets::Kore50Spec();
  spec.num_docs = 10;
  datasets::Dataset ds = gen.Generate(spec, rng);

  for (const auto& linker : AllLinkers()) {
    if (!linker->has_disambiguation_stage()) continue;
    eval::SystemScores s =
        eval::EvaluateDisambiguation(*linker, ds, World().gazetteer());
    EXPECT_EQ(s.failed_documents, 0) << linker->name();
    EXPECT_GT(s.entity_linking.F1(), 0.5) << linker->name();
  }
}

TEST_F(BaselineTest, DeterministicResults) {
  datasets::CorpusGenerator gen(&World().kb_world);
  Rng rng(35);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 3;
  datasets::Dataset ds = gen.Generate(spec, rng);
  for (const auto& linker : AllLinkers()) {
    eval::SystemScores a = eval::EvaluateEndToEnd(*linker, ds);
    eval::SystemScores b = eval::EvaluateEndToEnd(*linker, ds);
    EXPECT_EQ(a.entity_linking.tp, b.entity_linking.tp) << linker->name();
    EXPECT_EQ(a.entity_linking.fp, b.entity_linking.fp) << linker->name();
  }
}

// Figure-1 contrast: Falcon (no coherence) links Michael Jordan to the
// popular player; TENET recovers the professor.
TEST(BaselineFigureOneTest, CoherenceSeparatesTenetFromFalcon) {
  testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  BaselineSubstrate substrate{&world.kb, &world.embeddings, &world.gazetteer,
                              {}, {}};
  const char* text =
      "Michael Jordan studies artificial intelligence and machine learning.";
  FalconLike falcon(substrate);
  TenetLinker tenet(substrate);
  Result<core::LinkingResult> f = falcon.LinkDocument(text);
  Result<core::LinkingResult> t = tenet.LinkDocument(text);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(t.ok());
  auto find = [](const core::LinkingResult& r, const std::string& s) {
    for (const core::LinkedConcept& link : r.links) {
      if (link.surface == s) return link.concept_ref.id;
    }
    return kb::kInvalidEntity;
  };
  EXPECT_EQ(find(*f, "Michael Jordan"), world.player);     // popularity
  EXPECT_EQ(find(*t, "Michael Jordan"), world.professor);  // coherence
}

}  // namespace
}  // namespace baselines
}  // namespace tenet
