// RcuCell suite: single-threaded protocol semantics plus the TSan-targeted
// hammer (N reader threads pin/validate/unpin while writers publish) that
// backs the live-KB-swap acceptance criteria — no value freed while
// pinned, no torn reads, publishes refuse (never block) when every slot
// is pinned.  Registered under the `kbupdate` ctest label, which CI runs
// under both ASan and TSan.
#include "common/rcu.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"

namespace tenet {
namespace {

constexpr uint64_t kCanarySeed = 0xfeedfacedeadbeefull;

// A payload whose liveness is observable (the `live` counter) and whose
// integrity is checkable (the canary is a pure function of the value, so
// a reader that sees value and canary disagree caught a torn or reused
// object).
struct Tracked {
  static std::atomic<int64_t> live;

  explicit Tracked(int64_t v) : value(v), canary(kCanarySeed ^ static_cast<uint64_t>(v)) {
    live.fetch_add(1, std::memory_order_relaxed);
  }
  ~Tracked() {
    live.fetch_sub(1, std::memory_order_relaxed);
    canary = 0;  // poison: a pinned reader must never observe this
  }

  bool Intact() const {
    return canary == (kCanarySeed ^ static_cast<uint64_t>(value));
  }

  int64_t value;
  uint64_t canary;
};

std::atomic<int64_t> Tracked::live{0};

TEST(RcuCellTest, BornHoldingTheInitialValueAtEpochZero) {
  RcuCell<Tracked> cell(std::make_shared<const Tracked>(7));
  EXPECT_EQ(cell.epoch(), 0u);
  RcuCell<Tracked>::Pin pin = cell.Acquire();
  ASSERT_TRUE(pin);
  EXPECT_EQ(pin->value, 7);
  EXPECT_EQ(pin.epoch(), 0u);
  EXPECT_EQ(cell.Current()->value, 7);
}

TEST(RcuCellTest, PublishAdvancesTheEpochMonotonically) {
  RcuCell<Tracked> cell(std::make_shared<const Tracked>(0));
  uint64_t last = 0;
  for (int64_t v = 1; v <= 32; ++v) {
    Result<uint64_t> epoch = cell.Publish(std::make_shared<const Tracked>(v));
    ASSERT_TRUE(epoch.ok()) << epoch.status();
    EXPECT_GT(*epoch, last);
    last = *epoch;
    EXPECT_EQ(cell.Current()->value, v);
  }
  // Displaced values were destroyed as their slots were reclaimed: only
  // the ring itself can keep values alive.
  EXPECT_LE(Tracked::live.load(), static_cast<int64_t>(cell.num_slots()));
}

TEST(RcuCellTest, APinKeepsItsValueAliveThroughManyPublishes) {
  std::optional<RcuCell<Tracked>> cell;
  cell.emplace(std::make_shared<const Tracked>(100));
  RcuCell<Tracked>::Pin pin = cell->Acquire();
  // 4x around the ring: the pinned slot must be skipped every lap.
  for (int64_t v = 0; v < static_cast<int64_t>(4 * cell->num_slots()); ++v) {
    Result<uint64_t> epoch =
        cell->Publish(std::make_shared<const Tracked>(200 + v));
    ASSERT_TRUE(epoch.ok()) << epoch.status();
    ASSERT_TRUE(pin->Intact());
    EXPECT_EQ(pin->value, 100);
  }
  pin.Release();
  EXPECT_FALSE(pin);
  cell.reset();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(RcuCellTest, PinCopiesEachHoldTheirOwnPin) {
  RcuCell<Tracked> cell(std::make_shared<const Tracked>(5));
  RcuCell<Tracked>::Pin a = cell.Acquire();
  RcuCell<Tracked>::Pin b = a;  // copy: its own pin on the same slot
  a.Release();
  ASSERT_TRUE(b);
  EXPECT_TRUE(b->Intact());
  EXPECT_EQ(b->value, 5);
  // With b still pinned, publishing around the whole ring skips b's slot.
  for (size_t i = 0; i < 2 * cell.num_slots(); ++i) {
    ASSERT_TRUE(
        cell.Publish(std::make_shared<const Tracked>(1000 + i)).ok());
    ASSERT_TRUE(b->Intact());
  }
  b.Release();
}

TEST(RcuCellTest, PublishRefusesInsteadOfBlockingWhenEverySlotIsPinned) {
  RcuCell<Tracked> cell(std::make_shared<const Tracked>(0), /*num_slots=*/4);
  ASSERT_EQ(cell.num_slots(), 4u);
  // Pin one distinct generation per slot.
  std::vector<RcuCell<Tracked>::Pin> pins;
  pins.push_back(cell.Acquire());
  for (int64_t v = 1; v < 4; ++v) {
    ASSERT_TRUE(cell.Publish(std::make_shared<const Tracked>(v)).ok());
    pins.push_back(cell.Acquire());
  }
  Result<uint64_t> refused =
      cell.Publish(std::make_shared<const Tracked>(99));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // The old value keeps serving, every pinned value is untouched.
  EXPECT_EQ(cell.Current()->value, 3);
  for (size_t i = 0; i < pins.size(); ++i) {
    ASSERT_TRUE(pins[i]->Intact());
    EXPECT_EQ(pins[i]->value, static_cast<int64_t>(i));
  }
  // Releasing any one pin frees a slot and publishes succeed again.
  pins[1].Release();
  Result<uint64_t> accepted =
      cell.Publish(std::make_shared<const Tracked>(99));
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_EQ(cell.Current()->value, 99);
}

// The TSan target: readers continuously acquire/validate/release (with
// copied pins in the mix) while writers publish new generations as fast
// as the ring allows.  Every reader asserts its pinned value is intact on
// every dereference — a use-after-free, torn pointer, or slot reuse under
// an active pin fails here (and trips TSan/ASan in the sanitizer jobs).
TEST(RcuCellTest, HammerReadersNeverObserveAFreedOrTornValue) {
  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kReadsPerReader = 40000;
  constexpr int kPublishesPerWriter = 4000;

  std::optional<RcuCell<Tracked>> cell;
  cell.emplace(std::make_shared<const Tracked>(0), /*num_slots=*/8);
  std::atomic<int64_t> next_value{1};
  std::atomic<int64_t> publishes_ok{0};
  std::atomic<int64_t> publishes_refused{0};
  std::atomic<bool> torn{false};

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&cell, &torn] {
      uint64_t last_epoch = 0;
      for (int i = 0; i < kReadsPerReader; ++i) {
        RcuCell<Tracked>::Pin pin = cell->Acquire();
        if (!pin || !pin->Intact() || pin.epoch() < last_epoch) {
          torn.store(true);
          return;
        }
        last_epoch = pin.epoch();
        if ((i & 15) == 0) {
          // Copies must keep the value alive on their own.
          RcuCell<Tracked>::Pin copy = pin;
          pin.Release();
          if (!copy->Intact()) {
            torn.store(true);
            return;
          }
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&cell, &next_value, &publishes_ok,
                          &publishes_refused] {
      for (int i = 0; i < kPublishesPerWriter; ++i) {
        int64_t v = next_value.fetch_add(1, std::memory_order_relaxed);
        Result<uint64_t> epoch =
            cell->Publish(std::make_shared<const Tracked>(v));
        if (epoch.ok()) {
          publishes_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          // The only legal refusal is every-slot-pinned.
          ASSERT_EQ(epoch.status().code(), StatusCode::kResourceExhausted);
          publishes_refused.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(torn.load()) << "a reader observed a freed or torn value";
  EXPECT_GT(publishes_ok.load(), 0);
  // Liveness is bounded by the ring: nothing leaked past its grace period.
  EXPECT_LE(Tracked::live.load(), static_cast<int64_t>(cell->num_slots()));
  RcuCell<Tracked>::Pin last = cell->Acquire();
  EXPECT_TRUE(last->Intact());
  last.Release();
  cell.reset();
  EXPECT_EQ(Tracked::live.load(), 0);
}

}  // namespace
}  // namespace tenet
