// Direct tests of Algorithm 5 on hand-built micro-worlds: each scenario
// isolates one pruning strategy or decision rule.
#include "core/disambiguator.h"

#include <gtest/gtest.h>

#include "core/canopy.h"
#include "core/coherence_graph.h"
#include "core/tree_cover.h"
#include "embedding/embedding_store.h"
#include "kb/knowledge_base.h"

namespace tenet {
namespace core {
namespace {

// A tiny configurable world: entities laid out on explicit embedding axes
// so edge weights are fully controlled by the test.
struct MicroWorld {
  kb::KnowledgeBase kb;
  embedding::EmbeddingStore embeddings{4, 0, 0};

  // Entity pinned to an axis with the given component.
  kb::EntityId AddEntity(const std::string& label, int axis,
                         float component, double popularity = 1.0) {
    return kb.AddEntity(label, kb::EntityType::kOther, axis, popularity);
  }

  void Finish(const std::vector<std::pair<int, float>>& axes) {
    kb.Finalize();
    embeddings =
        embedding::EmbeddingStore(4, kb.num_entities(), kb.num_predicates());
    for (size_t i = 0; i < axes.size(); ++i) {
      auto v = embeddings.MutableVector(
          kb::ConceptRef::Entity(static_cast<kb::EntityId>(i)));
      v[axes[i].first] = axes[i].second;
    }
    embeddings.Finalize();
  }
};

// Builds a mention set of singleton noun mentions with the given surfaces.
MentionSet SingletonMentions(const std::vector<std::string>& surfaces) {
  MentionSet set;
  for (const std::string& surface : surfaces) {
    Mention mention;
    mention.kind = Mention::Kind::kNoun;
    mention.surface = surface;
    mention.sentences = {0};
    mention.group = set.num_groups();
    int id = set.num_mentions();
    set.mentions.push_back(std::move(mention));
    MentionGroup group;
    group.members = {id};
    group.short_mentions = {id};
    group.canopies = {Canopy{{id}}};
    set.groups.push_back(std::move(group));
  }
  return set;
}

TEST(DisambiguatorTest, PriorsDecideWithoutCoherence) {
  // One mention, two candidates, no other mention to cohere with: the
  // higher-prior candidate must win (its edge is lighter).
  MicroWorld world;
  kb::EntityId popular = world.AddEntity("Popular Sense", 0, 1.0f, 7.0);
  kb::EntityId rare = world.AddEntity("Rare Sense", 1, 1.0f, 3.0);
  world.kb.AddEntityAlias(popular, "Jordan", 7.0);
  world.kb.AddEntityAlias(rare, "Jordan", 3.0);
  world.Finish({{0, 1.0f}, {1, 1.0f}});

  CoherenceGraphBuilder builder(&world.kb, &world.embeddings);
  CoherenceGraph cg = builder.Build(SingletonMentions({"Jordan"}));
  TreeCover cover = TreeCoverSolver().Solve(cg, 10.0).value();
  DisambiguationResult gamma = Disambiguator().Run(cg, cover);

  ASSERT_TRUE(gamma.IsLinked(0));
  EXPECT_EQ(cg.concept_node(gamma.selected_node.at(0)).ref.id, popular);
}

TEST(DisambiguatorTest, CoherenceOverridesPrior) {
  // Mention "Jordan" (popular sense on axis 1, rare sense on axis 0) next
  // to an unambiguous mention whose entity also sits on axis 0: the
  // chain through the coherent rare sense must win.
  MicroWorld world;
  kb::EntityId rare = world.AddEntity("Rare Sense", 0, 1.0f, 3.0);
  kb::EntityId popular = world.AddEntity("Popular Sense", 1, 1.0f, 7.0);
  kb::EntityId anchor = world.AddEntity("Anchor", 0, 1.0f, 1.0);
  world.kb.AddEntityAlias(rare, "Jordan", 3.0);
  world.kb.AddEntityAlias(popular, "Jordan", 7.0);
  world.Finish({{0, 1.0f}, {1, 1.0f}, {0, 1.0f}});

  CoherenceGraphBuilder builder(&world.kb, &world.embeddings);
  CoherenceGraph cg = builder.Build(SingletonMentions({"Jordan", "Anchor"}));
  TreeCover cover = TreeCoverSolver().Solve(cg, 10.0).value();
  DisambiguationResult gamma = Disambiguator().Run(cg, cover);

  ASSERT_TRUE(gamma.IsLinked(0));
  ASSERT_TRUE(gamma.IsLinked(1));
  // Anchor is unambiguous (prior 1 -> edge weight 0), links first, and its
  // d=0 coherence edge to the rare sense vouches for it (strategy 2).
  EXPECT_EQ(cg.concept_node(gamma.selected_node.at(1)).ref.id, anchor);
  EXPECT_EQ(cg.concept_node(gamma.selected_node.at(0)).ref.id, rare);
}

TEST(DisambiguatorTest, OneConceptPerMention) {
  MicroWorld world;
  kb::EntityId a = world.AddEntity("Sense A", 0, 1.0f, 5.0);
  kb::EntityId b = world.AddEntity("Sense B", 0, 1.0f, 5.0);
  world.kb.AddEntityAlias(a, "Word", 5.0);
  world.kb.AddEntityAlias(b, "Word", 5.0);
  world.Finish({{0, 1.0f}, {0, 1.0f}});

  CoherenceGraphBuilder builder(&world.kb, &world.embeddings);
  CoherenceGraph cg = builder.Build(SingletonMentions({"Word"}));
  TreeCover cover = TreeCoverSolver().Solve(cg, 10.0).value();
  DisambiguationResult gamma = Disambiguator().Run(cg, cover);
  // Exactly one of the two equal candidates is selected, never both.
  EXPECT_EQ(gamma.selected_node.count(0), 1u);
}

TEST(DisambiguatorTest, CanopyExclusionSelectsOneReading) {
  // Group with two canopies: {Short1, Short2} and {Short1 x Short2
  // merged}.  All three variants have candidates; exactly one canopy's
  // mentions end up linked.
  MicroWorld world;
  kb::EntityId e1 = world.AddEntity("First", 0, 1.0f, 1.0);
  kb::EntityId e2 = world.AddEntity("Second", 0, 1.0f, 1.0);
  kb::EntityId merged = world.AddEntity("First and Second", 0, 1.0f, 1.0);
  (void)e1;
  (void)e2;
  (void)merged;
  world.Finish({{0, 1.0f}, {0, 1.0f}, {0, 1.0f}});

  MentionSet set;
  auto add_mention = [&set](const std::string& surface, int group) {
    Mention mention;
    mention.kind = Mention::Kind::kNoun;
    mention.surface = surface;
    mention.sentences = {0};
    mention.group = group;
    set.mentions.push_back(std::move(mention));
    return set.num_mentions() - 1;
  };
  int short1 = add_mention("First", 0);
  int short2 = add_mention("Second", 0);
  int longm = add_mention("First and Second", 0);
  MentionGroup group;
  group.members = {short1, short2, longm};
  group.short_mentions = {short1, short2};
  group.canopies = {Canopy{{short1, short2}}, Canopy{{longm}}};
  set.groups.push_back(group);

  CoherenceGraphBuilder builder(&world.kb, &world.embeddings);
  CoherenceGraph cg = builder.Build(std::move(set));
  TreeCover cover = TreeCoverSolver().Solve(cg, 10.0).value();
  DisambiguationResult gamma = Disambiguator().Run(cg, cover);

  ASSERT_EQ(gamma.group_resolved.size(), 1u);
  EXPECT_TRUE(gamma.group_resolved[0]);
  int winner = gamma.winning_canopy[0];
  ASSERT_TRUE(winner == 0 || winner == 1);
  if (winner == 0) {
    EXPECT_TRUE(gamma.IsLinked(short1));
    EXPECT_TRUE(gamma.IsLinked(short2));
    EXPECT_FALSE(gamma.IsLinked(longm));
  } else {
    EXPECT_TRUE(gamma.IsLinked(longm));
    EXPECT_FALSE(gamma.IsLinked(short1));
    EXPECT_FALSE(gamma.IsLinked(short2));
  }
  // The informative tie-break prefers the merged reading here (all edge
  // weights are 0).
  EXPECT_EQ(winner, 1);
}

TEST(DisambiguatorTest, NoCandidatesMeansNoLinks) {
  MicroWorld world;
  world.AddEntity("Unrelated", 0, 1.0f, 1.0);
  world.Finish({{0, 1.0f}});
  CoherenceGraphBuilder builder(&world.kb, &world.embeddings);
  CoherenceGraph cg = builder.Build(SingletonMentions({"Unknown Phrase"}));
  TreeCover cover = TreeCoverSolver().Solve(cg, 10.0).value();
  DisambiguationResult gamma = Disambiguator().Run(cg, cover);
  EXPECT_TRUE(gamma.selected_node.empty());
  EXPECT_FALSE(gamma.group_resolved[0]);
  EXPECT_EQ(gamma.winning_canopy[0], -1);
}

TEST(DisambiguatorTest, IsolatedMentionLinksItsOwnCandidate) {
  // Two far-apart mentions (orthogonal axes): sparse coherence must not
  // prevent either from linking to its own unambiguous candidate.
  MicroWorld world;
  kb::EntityId a = world.AddEntity("Alpha", 0, 1.0f, 1.0);
  kb::EntityId b = world.AddEntity("Beta", 1, 1.0f, 1.0);
  world.Finish({{0, 1.0f}, {1, 1.0f}});
  CoherenceGraphBuilder builder(&world.kb, &world.embeddings);
  CoherenceGraph cg = builder.Build(SingletonMentions({"Alpha", "Beta"}));
  TreeCover cover = TreeCoverSolver().Solve(cg, 10.0).value();
  DisambiguationResult gamma = Disambiguator().Run(cg, cover);
  ASSERT_TRUE(gamma.IsLinked(0));
  ASSERT_TRUE(gamma.IsLinked(1));
  EXPECT_EQ(cg.concept_node(gamma.selected_node.at(0)).ref.id, a);
  EXPECT_EQ(cg.concept_node(gamma.selected_node.at(1)).ref.id, b);
}

}  // namespace
}  // namespace core
}  // namespace tenet
