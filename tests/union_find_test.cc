#include "graph/union_find.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tenet {
namespace graph {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1);
  }
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3);
  EXPECT_EQ(uf.SetSize(0), 2);
  EXPECT_EQ(uf.SetSize(1), 2);
}

TEST(UnionFindTest, RepeatedUnionReturnsFalse) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_FALSE(uf.Union(0, 1));
  EXPECT_EQ(uf.num_sets(), 2);
}

TEST(UnionFindTest, TransitivityViaChain) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(2, 3));
  uf.Union(2, 3);
  EXPECT_TRUE(uf.Connected(0, 4));
  EXPECT_FALSE(uf.Connected(0, 5));
  EXPECT_EQ(uf.SetSize(4), 5);
}

TEST(UnionFindTest, ZeroElements) {
  UnionFind uf(0);
  EXPECT_EQ(uf.num_sets(), 0);
  EXPECT_EQ(uf.size(), 0);
}

// Property: num_sets + (number of successful unions) == n, and SetSize sums
// to n, for a random union sequence.
class UnionFindPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionFindPropertyTest, InvariantsHoldUnderRandomUnions) {
  Rng rng(GetParam());
  const int n = 60;
  UnionFind uf(n);
  int successful = 0;
  for (int step = 0; step < 200; ++step) {
    int a = static_cast<int>(rng.NextUint64(n));
    int b = static_cast<int>(rng.NextUint64(n));
    bool was_connected = uf.Connected(a, b);
    bool merged = uf.Union(a, b);
    // Union succeeds exactly when the two were previously disconnected.
    EXPECT_EQ(merged, !was_connected);
    if (merged) ++successful;
    EXPECT_TRUE(uf.Connected(a, b));
  }
  EXPECT_EQ(uf.num_sets(), n - successful);

  // Set sizes partition the universe: summing SetSize over one
  // representative per set gives n.
  std::vector<bool> seen_root(n, false);
  int total = 0;
  for (int i = 0; i < n; ++i) {
    int root = uf.Find(i);
    if (!seen_root[root]) {
      seen_root[root] = true;
      total += uf.SetSize(root);
    }
  }
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace graph
}  // namespace tenet
