// Thread-safety: the KB, embeddings, gazetteer and pipeline are immutable
// after construction, so concurrent LinkDocument calls on one shared
// pipeline must be safe and bit-identical to serial execution.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"

namespace tenet {
namespace core {
namespace {

struct Outcome {
  std::vector<std::pair<int, kb::ConceptRef>> links;
  std::vector<int> isolated;

  bool operator==(const Outcome& other) const {
    return links == other.links && isolated == other.isolated;
  }
};

Outcome Summarize(const LinkingResult& result) {
  Outcome out;
  for (const LinkedConcept& link : result.links) {
    out.links.emplace_back(link.mention_id, link.concept_ref);
  }
  out.isolated = result.isolated_mentions;
  return out;
}

TEST(ConcurrencyTest, ParallelLinkingMatchesSerial) {
  datasets::SyntheticWorld world = datasets::BuildWorld();
  datasets::CorpusGenerator gen(&world.kb_world);
  Rng rng(71);
  datasets::DatasetSpec spec = datasets::TRex42Spec();
  spec.num_docs = 16;
  datasets::Dataset ds = gen.Generate(spec, rng);

  TenetPipeline tenet(&world.kb(), &world.embeddings, &world.gazetteer());

  // Serial reference.
  std::vector<Outcome> reference;
  for (const datasets::Document& doc : ds.documents) {
    Result<LinkingResult> r = tenet.LinkDocument(doc.text);
    ASSERT_TRUE(r.ok());
    reference.push_back(Summarize(*r));
  }

  // 4 threads, interleaved documents, several rounds.
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::vector<Outcome> parallel(ds.documents.size());
  std::vector<bool> ok(ds.documents.size(), true);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (size_t i = t; i < ds.documents.size(); i += kThreads) {
          Result<LinkingResult> r = tenet.LinkDocument(ds.documents[i].text);
          if (!r.ok()) {
            ok[i] = false;
            continue;
          }
          parallel[i] = Summarize(*r);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (size_t i = 0; i < ds.documents.size(); ++i) {
      ASSERT_TRUE(ok[i]) << "document " << i << " failed in round " << round;
      EXPECT_TRUE(parallel[i] == reference[i])
          << "document " << i << " diverged under concurrency";
    }
  }
}

TEST(ConcurrencyTest, SharedKbSupportsConcurrentCandidateQueries) {
  datasets::SyntheticWorld world = datasets::BuildWorld();
  const kb::KnowledgeBase& kb = world.kb();
  std::vector<std::thread> workers;
  std::vector<int> totals(4, 0);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&kb, &totals, t] {
      for (kb::EntityId id = t; id < kb.num_entities(); id += 4) {
        totals[t] += static_cast<int>(
            kb.CandidateEntities(kb.entity(id).label, std::nullopt, 4)
                .size());
        totals[t] += static_cast<int>(kb.NeighborEntities(id).size());
      }
    });
  }
  for (std::thread& w : workers) w.join();
  int total = totals[0] + totals[1] + totals[2] + totals[3];
  EXPECT_GT(total, kb.num_entities());  // every label resolves at least once
}

}  // namespace
}  // namespace core
}  // namespace tenet
