// The metrics registry: exact totals under concurrent writers (the TSan
// target for the obs layer), bucket/quantile arithmetic, registry identity
// and reset semantics, and a format lint of the Prometheus text
// exposition.
#include <cmath>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tenet {
namespace obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 20000;

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIterations; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Sharded relaxed adds lose nothing: the total is exact, not approximate.
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kIterations);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(HistogramTest, ConcurrentObservationsSumExactly) {
  Histogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kIterations; ++i) {
        histogram.Observe(0.5 + 0.1 * t);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.Count(), int64_t{kThreads} * kIterations);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += (0.5 + 0.1 * t) * kIterations;
  }
  EXPECT_NEAR(histogram.Sum(), expected_sum, expected_sum * 1e-9);
}

TEST(HistogramTest, BucketIndexCoversTheExponentialLadder) {
  // Everything at or below the first bound lands in bucket 0.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kFirstBucketMs), 0);
  // An exact bound belongs to its own bucket; a hair above moves up one.
  for (int i = 1; i < Histogram::kNumFiniteBuckets; ++i) {
    double bound = Histogram::BucketUpperBoundMs(i);
    EXPECT_EQ(Histogram::BucketIndex(bound), i) << "bound " << bound;
    EXPECT_EQ(Histogram::BucketIndex(bound * 1.0001), i + 1 == Histogram::kNumFiniteBuckets
                                                          ? Histogram::kNumFiniteBuckets
                                                          : i + 1)
        << "just above bound " << bound;
  }
  // Past the last finite bound: the overflow bucket.
  double last = Histogram::BucketUpperBoundMs(Histogram::kNumFiniteBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(last * 2.0), Histogram::kNumFiniteBuckets);
}

TEST(HistogramTest, QuantilesInterpolateInsideTheCoveringBucket) {
  Histogram histogram;
  EXPECT_EQ(histogram.P50(), 0.0);  // empty
  for (int i = 0; i < 1000; ++i) histogram.Observe(1.0);
  // All mass sits in the bucket covering 1.0 ms: every quantile must land
  // inside that bucket's bounds.
  int bucket = Histogram::BucketIndex(1.0);
  double lower = Histogram::BucketUpperBoundMs(bucket - 1);
  double upper = Histogram::BucketUpperBoundMs(bucket);
  for (double q : {0.5, 0.95, 0.99}) {
    double estimate = histogram.Quantile(q);
    EXPECT_GE(estimate, lower);
    EXPECT_LE(estimate, upper);
  }
  // Quantiles are monotone in q.
  EXPECT_LE(histogram.P50(), histogram.P95());
  EXPECT_LE(histogram.P95(), histogram.P99());
}

TEST(LabelPairTest, EscapesQuotesBackslashesAndNewlines) {
  EXPECT_EQ(LabelPair("stage", "extract"), "stage=\"extract\"");
  EXPECT_EQ(LabelPair("k", "a\"b"), "k=\"a\\\"b\"");
  EXPECT_EQ(LabelPair("k", "a\\b"), "k=\"a\\\\b\"");
  EXPECT_EQ(LabelPair("k", "a\nb"), "k=\"a\\nb\"");
}

TEST(MetricsRegistryTest, HandsOutStablePerLabelInstruments) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("family_total", "help",
                                   LabelPair("which", "a"));
  Counter* b = registry.GetCounter("family_total", "help",
                                   LabelPair("which", "b"));
  EXPECT_NE(a, b);
  // Same (family, labels) -> the same instrument, whatever the help says.
  EXPECT_EQ(registry.GetCounter("family_total", "other help",
                                LabelPair("which", "a")),
            a);
  a->Increment(3);
  b->Increment(4);
  std::vector<MetricPoint> points = registry.Snapshot();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].labels, "which=\"a\"");
  EXPECT_EQ(points[0].value, 3.0);
  EXPECT_EQ(points[1].value, 4.0);
}

TEST(MetricsRegistryTest, ResetZeroesInPlaceAndKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("events_total", "help");
  Gauge* gauge = registry.GetGauge("depth", "help");
  Histogram* histogram = registry.GetHistogram("latency_ms", "help");
  counter->Increment(7);
  gauge->Set(3.5);
  histogram->Observe(1.0);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(histogram->Count(), 0);
  // The same pointers keep working after the reset.
  counter->Increment();
  EXPECT_EQ(registry.GetCounter("events_total", "help")->Value(), 1);
}

// Lints one rendered exposition: every line is a comment in the exact
// `# HELP <name> <text>` / `# TYPE <name> <type>` shape or a sample in the
// `<name>[{labels}] <value>` shape, HELP/TYPE precede their samples, and
// histogram buckets are cumulative with le="+Inf" equal to _count.
void LintPrometheusText(const std::string& text) {
  const std::regex help_re(R"(^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$)");
  const std::regex type_re(
      R"(^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$)");
  const std::regex sample_re(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9+][0-9eE+-.]*$)");
  std::istringstream lines(text);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, help_re) ||
                  std::regex_match(line, type_re))
          << "malformed comment: " << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_re))
          << "malformed sample: " << line;
      ++samples;
    }
  }
  EXPECT_GT(samples, 0);
}

TEST(MetricsRegistryTest, PrometheusTextPassesTheFormatLint) {
  MetricsRegistry registry;
  registry.GetCounter("tenet_events_total", "Events.",
                      LabelPair("kind", "a"))->Increment(2);
  registry.GetGauge("tenet_depth", "Queue depth.")->Set(-1.5);
  Histogram* histogram =
      registry.GetHistogram("tenet_latency_ms", "Latency.",
                            LabelPair("stage", "extract"));
  histogram->Observe(0.25);
  histogram->Observe(40.0);
  histogram->Observe(1e9);  // overflow bucket

  std::string text = registry.RenderPrometheusText();
  LintPrometheusText(text);

  // Spot checks: cumulative buckets end at +Inf == _count, and the
  // families appear with their TYPE lines.
  EXPECT_NE(text.find("# TYPE tenet_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tenet_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("tenet_latency_ms_bucket{stage=\"extract\",le=\"+Inf\"} 3"),
      std::string::npos);
  EXPECT_NE(text.find("tenet_latency_ms_count{stage=\"extract\"} 3"),
            std::string::npos);

  // Cumulative monotonicity over the rendered bucket series.
  const std::regex bucket_re(
      R"(tenet_latency_ms_bucket\{stage="extract",le="[^"]*"\} ([0-9]+))");
  auto begin =
      std::sregex_iterator(text.begin(), text.end(), bucket_re);
  int64_t previous = 0;
  int buckets = 0;
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    int64_t cumulative = std::stoll((*it)[1].str());
    EXPECT_GE(cumulative, previous);
    previous = cumulative;
    ++buckets;
  }
  EXPECT_EQ(buckets, Histogram::kNumFiniteBuckets + 1);
}

TEST(MetricsRegistryTest, JsonRenderHoldsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("a_total", "A.")->Increment();
  registry.GetHistogram("b_ms", "B.")->Observe(2.0);
  std::string json = registry.RenderJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\",\"count\":1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentGetAndWriteKeepTotalsExact) {
  // Threads race find-or-create against increments on the instruments the
  // other threads created: registration is mutexed, writes are sharded.
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* counter = registry.GetCounter("shared_total", "help");
      Histogram* histogram = registry.GetHistogram("shared_ms", "help");
      for (int i = 0; i < kIterations; ++i) {
        counter->Increment();
        histogram->Observe(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared_total", "help")->Value(),
            int64_t{kThreads} * kIterations);
  EXPECT_EQ(registry.GetHistogram("shared_ms", "help")->Count(),
            int64_t{kThreads} * kIterations);
}

}  // namespace
}  // namespace obs
}  // namespace tenet
