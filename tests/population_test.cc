#include "core/population.h"

#include <gtest/gtest.h>

#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "figure_one_world.h"

namespace tenet {
namespace core {
namespace {

using testing_support::BuildFigureOneWorld;
using testing_support::FigureOneWorld;

TEST(PopulationTest, HarvestsFigureOneFacts) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result = tenet.LinkDocument(
      "Michael Jordan studies artificial intelligence and machine learning. "
      "He visited Brooklyn in April 2019.");
  ASSERT_TRUE(result.ok());

  KbPopulator populator(&world.kb);
  std::vector<FactCandidate> facts = populator.HarvestFacts(*result);
  // Sentence 0: (professor, field_of_study, ai) — already in the KB.
  bool found_known = false;
  for (const FactCandidate& fact : facts) {
    if (fact.subject == world.professor &&
        fact.predicate == world.field_of_study && fact.object == world.ai) {
      found_known = true;
      EXPECT_TRUE(fact.already_known);
    }
  }
  EXPECT_TRUE(found_known);

  std::vector<EmergingEntity> emerging =
      populator.HarvestEmergingEntities(*result);
  bool found_april = false;
  for (const EmergingEntity& entity : emerging) {
    if (entity.surface == "April 2019") found_april = true;
  }
  EXPECT_TRUE(found_april);
}

TEST(PopulationTest, AccumulateCountsSupport) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  const char* text =
      "Michael Jordan studies artificial intelligence. "
      "He visited Brooklyn in April 2019.";
  Result<LinkingResult> r1 = tenet.LinkDocument(text);
  Result<LinkingResult> r2 = tenet.LinkDocument(text);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());

  KbPopulator populator(&world.kb);
  PopulationReport report;
  populator.Accumulate(*r1, &report);
  populator.Accumulate(*r2, &report);
  for (const FactCandidate& fact : report.facts) {
    EXPECT_EQ(fact.support, 2);
  }
  for (const EmergingEntity& entity : report.entities) {
    EXPECT_EQ(entity.support, 2);
  }
}

TEST(PopulationTest, ApplyToKbAddsNewKnowledge) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result = tenet.LinkDocument(
      "Michael Jordan visited Brooklyn. Zorvex Guild admired Brooklyn.");
  ASSERT_TRUE(result.ok());

  KbPopulator populator(&world.kb);
  PopulationReport report;
  populator.Accumulate(*result, &report);
  ASSERT_FALSE(report.facts.empty());
  EXPECT_GT(report.NumNewFacts(), 0);

  // Rebuild a target KB with the same concepts and apply the report.
  kb::KnowledgeBase target;
  for (kb::EntityId id = 0; id < world.kb.num_entities(); ++id) {
    const kb::EntityRecord& rec = world.kb.entity(id);
    target.AddEntity(rec.label, rec.type, rec.domain, rec.popularity);
  }
  for (kb::PredicateId id = 0; id < world.kb.num_predicates(); ++id) {
    const kb::PredicateRecord& rec = world.kb.predicate(id);
    target.AddPredicate(rec.label, rec.domain, rec.popularity);
  }
  int before = target.num_facts();
  int added = populator.ApplyToKb(report, /*min_support=*/1,
                                  kb::EntityType::kOther, &target);
  EXPECT_GT(added, 0);
  EXPECT_EQ(target.num_facts(), before + added);
  // Emerging entities were inserted.
  EXPECT_GT(target.num_entities(), world.kb.num_entities());
  target.Finalize();
  // The emerging surface is now a KB candidate.
  EXPECT_FALSE(
      target.CandidateEntities("Zorvex Guild", std::nullopt, 4).empty());
}

TEST(PopulationTest, MinSupportFilters) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);
  Result<LinkingResult> result =
      tenet.LinkDocument("Michael Jordan visited Brooklyn.");
  ASSERT_TRUE(result.ok());
  KbPopulator populator(&world.kb);
  PopulationReport report;
  populator.Accumulate(*result, &report);

  kb::KnowledgeBase target;
  for (kb::EntityId id = 0; id < world.kb.num_entities(); ++id) {
    const kb::EntityRecord& rec = world.kb.entity(id);
    target.AddEntity(rec.label, rec.type, rec.domain, rec.popularity);
  }
  for (kb::PredicateId id = 0; id < world.kb.num_predicates(); ++id) {
    const kb::PredicateRecord& rec = world.kb.predicate(id);
    target.AddPredicate(rec.label, rec.domain, rec.popularity);
  }
  // Support threshold above every candidate's count: nothing is applied.
  int added = populator.ApplyToKb(report, /*min_support=*/5,
                                  kb::EntityType::kOther, &target);
  EXPECT_EQ(added, 0);
  EXPECT_EQ(target.num_entities(), world.kb.num_entities());
}

TEST(PopulationTest, CorpusScalePopulation) {
  datasets::SyntheticWorld world = datasets::BuildWorld();
  datasets::CorpusGenerator gen(&world.kb_world);
  Rng rng(81);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 6;
  datasets::Dataset corpus = gen.Generate(spec, rng);

  TenetPipeline tenet(&world.kb(), &world.embeddings, &world.gazetteer());
  KbPopulator populator(&world.kb());
  PopulationReport report;
  for (const datasets::Document& doc : corpus.documents) {
    Result<LinkingResult> result = tenet.LinkDocument(doc.text);
    ASSERT_TRUE(result.ok());
    populator.Accumulate(*result, &report);
  }
  EXPECT_FALSE(report.facts.empty());
  EXPECT_FALSE(report.entities.empty());
  // Facts never repeat in the deduplicated report.
  for (size_t i = 0; i < report.facts.size(); ++i) {
    for (size_t j = i + 1; j < report.facts.size(); ++j) {
      EXPECT_FALSE(report.facts[i] == report.facts[j]);
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace tenet
