// Harness-level resilience: with fault injection arming alias-lookup
// failures and a 1ms per-document deadline on the synthetic corpus, the
// batch run must complete every document — degraded answers instead of
// aborts — with per-document degradation accounting and per-document
// failure isolation.
#include <gtest/gtest.h>

#include "baselines/tenet_linker.h"
#include "common/fault_injection.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "eval/harness.h"

namespace tenet {
namespace eval {
namespace {

const datasets::SyntheticWorld& World() {
  static const datasets::SyntheticWorld* world =
      new datasets::SyntheticWorld(datasets::BuildWorld());
  return *world;
}

datasets::Dataset TinyDataset(uint64_t seed, int num_docs = 5) {
  datasets::CorpusGenerator gen(&World().kb_world);
  Rng rng(seed);
  datasets::DatasetSpec spec = datasets::TRex42Spec();
  spec.num_docs = num_docs;
  return gen.Generate(spec, rng);
}

baselines::BaselineSubstrate Substrate() {
  return baselines::BaselineSubstrate{
      &World().kb(), &World().embeddings, &World().gazetteer(), {}, {}};
}

TEST(ResilienceTest, AliasFaultsAndTightDeadlineAbortNothing) {
  datasets::Dataset ds = TinyDataset(71);
  core::TenetOptions options;
  options.deadline_ms = 1.0;  // far below a typical full-pipeline run
  baselines::TenetLinker tenet(Substrate(), options);

  FaultInjector faults(2024);
  faults.Arm("kb/alias_lookup", 0.3);
  SystemScores scores = EvaluateEndToEnd(tenet, ds);

  // Zero aborted runs: every document is answered, full or degraded.
  EXPECT_EQ(scores.failed_documents, 0);
  EXPECT_TRUE(scores.failures.empty());
  EXPECT_EQ(scores.full_documents + scores.degraded_documents,
            static_cast<int>(ds.documents.size()));
  EXPECT_GT(faults.HitCount("kb/alias_lookup"), 0);
  EXPECT_GT(faults.FireCount("kb/alias_lookup"), 0);
}

TEST(ResilienceTest, FaultScheduleIsSeedReproducible) {
  datasets::Dataset ds = TinyDataset(72);
  core::TenetOptions options;
  options.deadline_ms = 1.0;

  auto run = [&ds, &options](uint64_t seed) {
    baselines::TenetLinker tenet(Substrate(), options);
    FaultInjector faults(seed);
    faults.Arm("kb/alias_lookup", 0.3);
    SystemScores scores = EvaluateEndToEnd(tenet, ds);
    return std::make_tuple(faults.HitCount("kb/alias_lookup"),
                           faults.FireCount("kb/alias_lookup"),
                           scores.failed_documents);
  };
  // Same seed -> identical schedule (hits and fires); the linking work per
  // document is deterministic, only the deadline clock is not.
  auto a = run(7);
  auto b = run(7);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), 0);
  EXPECT_EQ(std::get<2>(b), 0);
}

TEST(ResilienceTest, DegradedDocumentsAreCountedSeparately) {
  datasets::Dataset ds = TinyDataset(73);
  // An expired budget forces every document down the prior-only rung.
  core::TenetOptions options;
  options.deadline_ms = 0.0;
  baselines::TenetLinker tenet(Substrate(), options);
  SystemScores scores = EvaluateEndToEnd(tenet, ds);
  EXPECT_EQ(scores.failed_documents, 0);
  EXPECT_EQ(scores.full_documents, 0);
  EXPECT_EQ(scores.degraded_documents,
            static_cast<int>(ds.documents.size()));
  // Degraded answers still score: priors alone link something.
  EXPECT_GT(scores.entity_linking.tp + scores.entity_linking.fp, 0);
  EXPECT_EQ(FormatDegradation(scores),
            "full 0 | degraded " + std::to_string(ds.documents.size()) +
                " | failed 0");
}

TEST(ResilienceTest, WithoutFaultsEveryDocumentIsFull) {
  datasets::Dataset ds = TinyDataset(74);
  baselines::TenetLinker tenet(Substrate());
  SystemScores scores = EvaluateEndToEnd(tenet, ds);
  EXPECT_EQ(scores.failed_documents, 0);
  EXPECT_EQ(scores.degraded_documents, 0);
  EXPECT_EQ(scores.full_documents, static_cast<int>(ds.documents.size()));
}

TEST(ResilienceTest, FailingDocumentsAreRecordedAndTheRunContinues) {
  datasets::Dataset ds = TinyDataset(75);
  // Degradation off + a solver faulted on every call: each document fails,
  // but each failure is isolated and recorded with its doc id.
  core::TenetOptions options;
  options.degrade_to_prior = false;
  baselines::TenetLinker tenet(Substrate(), options);
  FaultInjector faults(31);
  faults.Arm("core/cover_solve", 1.0);
  SystemScores scores = EvaluateEndToEnd(tenet, ds);
  EXPECT_EQ(scores.failed_documents, static_cast<int>(ds.documents.size()));
  ASSERT_EQ(scores.failures.size(), ds.documents.size());
  for (size_t i = 0; i < scores.failures.size(); ++i) {
    EXPECT_EQ(scores.failures[i].doc_id, ds.documents[i].id);
    EXPECT_EQ(scores.failures[i].status.code(), StatusCode::kInternal);
  }
}

TEST(ResilienceTest, SingleFaultedDocumentDoesNotPoisonTheBatch) {
  datasets::Dataset ds = TinyDataset(76);
  ASSERT_GE(ds.documents.size(), 2u);
  core::TenetOptions options;
  options.degrade_to_prior = false;
  baselines::TenetLinker tenet(Substrate(), options);
  FaultInjector faults(32);
  // Fail exactly the first cover solve; all later documents run clean.
  faults.ArmNth("core/cover_solve", 1);
  SystemScores scores = EvaluateEndToEnd(tenet, ds);
  EXPECT_EQ(scores.failed_documents, 1);
  ASSERT_EQ(scores.failures.size(), 1u);
  EXPECT_EQ(scores.failures[0].doc_id, ds.documents[0].id);
  EXPECT_EQ(scores.full_documents,
            static_cast<int>(ds.documents.size()) - 1);
}

TEST(ResilienceTest, EmbeddingFetchFaultsOnlyDegradeQuality) {
  datasets::Dataset ds = TinyDataset(77);
  baselines::TenetLinker tenet(Substrate());
  FaultInjector faults(33);
  faults.Arm("embedding/fetch", 0.5);
  SystemScores scores = EvaluateEndToEnd(tenet, ds);
  // Missing vectors skew coherence weights but never abort a document.
  EXPECT_EQ(scores.failed_documents, 0);
  EXPECT_GT(faults.HitCount("embedding/fetch"), 0);
}

}  // namespace
}  // namespace eval
}  // namespace tenet
