// Robustness tests: the text pipeline must behave sanely on arbitrary
// byte soup, degenerate inputs, and adversarial token patterns — never
// crash, never emit inconsistent spans.
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/extraction.h"
#include "text/tokenizer.h"

namespace tenet {
namespace text {
namespace {

Gazetteer SmallGazetteer() {
  Gazetteer g;
  g.AddSurface("Brooklyn", kb::EntityType::kLocation);
  g.AddSurface("machine learning", kb::EntityType::kTopic, true);
  return g;
}

void CheckConsistency(const TokenizedDocument& doc,
                      const ExtractionResult& r) {
  const int num_tokens = static_cast<int>(doc.tokens.size());
  ASSERT_EQ(r.link_after.size(), r.mentions.size());
  for (size_t i = 0; i < r.mentions.size(); ++i) {
    const ShortMention& m = r.mentions[i];
    EXPECT_GE(m.token_begin, 0);
    EXPECT_LT(m.token_begin, m.token_end);
    EXPECT_LE(m.token_end, num_tokens);
    EXPECT_GE(m.sentence, 0);
    EXPECT_LT(m.sentence, std::max(1, doc.num_sentences()));
    EXPECT_FALSE(m.surface.empty());
    if (i + 1 < r.mentions.size()) {
      EXPECT_LE(m.token_end, r.mentions[i + 1].token_begin + 0)
          << "overlapping mentions";
      EXPECT_LE(m.token_begin, r.mentions[i + 1].token_begin);
    }
  }
  for (const ExtractedRelation& rel : r.relations) {
    EXPECT_GE(rel.token_begin, 0);
    EXPECT_LT(rel.token_begin, rel.token_end);
    EXPECT_LE(rel.token_end, num_tokens);
    EXPECT_FALSE(rel.lemma.empty());
  }
}

TEST(ExtractionFuzzTest, DegenerateInputs) {
  Gazetteer g = SmallGazetteer();
  Extractor extractor(&g);
  for (const char* text :
       {"", ".", "...", "???!!!", "and and and", "of of of", "11 22 33",
        ": : :", "a", "A", "A.", "The.", "He she it they.",
        "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA",
        "visited visited visited.", "- - - -", "(((((", "\"\"\"",
        "Brooklyn Brooklyn Brooklyn Brooklyn."}) {
    TokenizedDocument doc = Tokenize(text);
    ExtractionResult r = extractor.Extract(doc);
    CheckConsistency(doc, r);
  }
}

class ExtractionFuzzCase : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtractionFuzzCase, RandomByteSoupNeverCrashes) {
  Rng rng(GetParam());
  Gazetteer g = SmallGazetteer();
  Extractor extractor(&g);
  std::string text;
  const int length = 40 + static_cast<int>(rng.NextUint64(400));
  for (int i = 0; i < length; ++i) {
    text.push_back(static_cast<char>(rng.NextUint64(127 - 32) + 32));
  }
  TokenizedDocument doc = Tokenize(text);
  ExtractionResult r = extractor.Extract(doc);
  CheckConsistency(doc, r);
}

TEST_P(ExtractionFuzzCase, RandomWordSoupNeverCrashes) {
  Rng rng(GetParam() + 5000);
  Gazetteer g = SmallGazetteer();
  Extractor extractor(&g);
  // Random mixture of names, verbs, connectors, numbers, punctuation.
  const char* pool[] = {"Brooklyn", "visited", "and",     "of",  "the",
                        "machine",  "learning", "11",      ".",   ",",
                        "He",       "Zorvex",   "painted", ":",   "-",
                        "quantum",  "a",        "The",     "Sea", "?"};
  std::string text;
  const int words = 10 + static_cast<int>(rng.NextUint64(120));
  for (int i = 0; i < words; ++i) {
    if (i > 0) text += ' ';
    text += pool[rng.NextUint64(std::size(pool))];
  }
  TokenizedDocument doc = Tokenize(text);
  ExtractionResult r = extractor.Extract(doc);
  CheckConsistency(doc, r);

  // Tokenization itself is also consistent.
  for (int s = 0; s < doc.num_sentences(); ++s) {
    EXPECT_LE(doc.sentence_begin[s], doc.SentenceEnd(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractionFuzzCase,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace text
}  // namespace tenet
