#include "core/canopy.h"

#include <set>

#include <gtest/gtest.h>

#include "text/extraction.h"

namespace tenet {
namespace core {
namespace {

text::Gazetteer RembrandtGazetteer() {
  text::Gazetteer g;
  g.AddSurface("Rembrandt", kb::EntityType::kPerson);
  g.AddSurface("The Storm", kb::EntityType::kWork);
  g.AddSurface("Sea", kb::EntityType::kLocation);
  g.AddSurface("Galilee", kb::EntityType::kLocation);
  g.AddSurface("The Storm on the Sea of Galilee", kb::EntityType::kWork);
  return g;
}

text::ExtractionResult RembrandtExtraction() {
  text::ExtractionResult r;
  auto add_mention = [&r](const std::string& surface, int begin, int end) {
    text::ShortMention m;
    m.surface = surface;
    m.sentence = 0;
    m.token_begin = begin;
    m.token_end = end;
    r.mentions.push_back(m);
  };
  add_mention("Rembrandt", 0, 1);
  add_mention("The Storm", 2, 4);
  add_mention("Sea", 6, 7);
  add_mention("Galilee", 8, 9);
  r.link_after.assign(4, std::nullopt);
  r.link_after[1] =
      text::Connector{text::ConnectorKind::kPreposition, "on the"};
  r.link_after[2] = text::Connector{text::ConnectorKind::kPreposition, "of"};
  text::ExtractedRelation rel;
  rel.lemma = "paint";
  rel.raw = "painted";
  rel.sentence = 0;
  r.relations.push_back(rel);
  return r;
}

TEST(CanopyTest, SegmentationCount) {
  EXPECT_EQ(NumContiguousSegmentations(0), 1);
  EXPECT_EQ(NumContiguousSegmentations(1), 1);
  EXPECT_EQ(NumContiguousSegmentations(2), 2);
  EXPECT_EQ(NumContiguousSegmentations(3), 4);  // Table 1: 4 canopies
  EXPECT_EQ(NumContiguousSegmentations(5), 16);
}

TEST(CanopyTest, RembrandtTableOneScenario) {
  text::Gazetteer g = RembrandtGazetteer();
  MentionSet set = BuildMentionSet(RembrandtExtraction(), &g);

  // Groups: {Rembrandt}, {The Storm, Sea, Galilee}, {paint}.
  ASSERT_EQ(set.num_groups(), 3);
  EXPECT_EQ(set.groups[0].members.size(), 1u);
  EXPECT_EQ(set.groups[0].canopies.size(), 1u);

  const MentionGroup& storm = set.groups[1];
  EXPECT_EQ(storm.short_mentions.size(), 3u);
  // 2^(3-1) = 4 canopies (Table 1).
  ASSERT_EQ(storm.canopies.size(), 4u);

  // Collect all variant surfaces of the group.
  std::set<std::string> surfaces;
  for (int id : storm.members) surfaces.insert(set.mention(id).surface);
  EXPECT_TRUE(surfaces.count("The Storm"));
  EXPECT_TRUE(surfaces.count("Sea"));
  EXPECT_TRUE(surfaces.count("Galilee"));
  EXPECT_TRUE(surfaces.count("The Storm on the Sea"));
  EXPECT_TRUE(surfaces.count("Sea of Galilee"));
  EXPECT_TRUE(surfaces.count("The Storm on the Sea of Galilee"));
  EXPECT_EQ(surfaces.size(), 6u);

  // Canopy block counts follow the segmentations of 3 shorts: 3, 2, 2, 1.
  std::multiset<size_t> block_counts;
  for (const Canopy& canopy : storm.canopies) {
    block_counts.insert(canopy.mentions.size());
  }
  EXPECT_EQ(block_counts, (std::multiset<size_t>{1, 2, 2, 3}));

  // The fully merged canopy exists and is a single mention typed as a work
  // (gazetteer knows the full label).
  bool found_full = false;
  for (const Canopy& canopy : storm.canopies) {
    if (canopy.mentions.size() == 1 &&
        set.mention(canopy.mentions[0]).surface ==
            "The Storm on the Sea of Galilee") {
      found_full = true;
      EXPECT_EQ(set.mention(canopy.mentions[0]).type, kb::EntityType::kWork);
    }
  }
  EXPECT_TRUE(found_full);
}

TEST(CanopyTest, RelationalMentionIsSingletonGroup) {
  text::Gazetteer g = RembrandtGazetteer();
  MentionSet set = BuildMentionSet(RembrandtExtraction(), &g);
  bool found = false;
  for (int m = 0; m < set.num_mentions(); ++m) {
    if (set.mention(m).is_relational()) {
      found = true;
      EXPECT_EQ(set.mention(m).surface, "paint");
      const MentionGroup& group = set.groups[set.mention(m).group];
      EXPECT_EQ(group.members.size(), 1u);
      EXPECT_EQ(group.canopies.size(), 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CanopyTest, RepeatedSingletonSurfacesMerge) {
  text::Gazetteer g = RembrandtGazetteer();
  text::ExtractionResult r;
  for (int s = 0; s < 3; ++s) {
    text::ShortMention m;
    m.surface = "Rembrandt";
    m.sentence = s;
    m.token_begin = s * 10;
    m.token_end = s * 10 + 1;
    r.mentions.push_back(m);
  }
  r.link_after.assign(3, std::nullopt);
  MentionSet set = BuildMentionSet(r, &g);
  ASSERT_EQ(set.num_mentions(), 1);
  EXPECT_EQ(set.mention(0).sentences, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(set.num_groups(), 1);
}

TEST(CanopyTest, RepeatedRelationalLemmasMerge) {
  text::Gazetteer g = RembrandtGazetteer();
  text::ExtractionResult r;
  for (int s = 0; s < 2; ++s) {
    text::ExtractedRelation rel;
    rel.lemma = "visit";
    rel.raw = s == 0 ? "visited" : "visits";
    rel.sentence = s;
    r.relations.push_back(rel);
  }
  MentionSet set = BuildMentionSet(r, &g);
  ASSERT_EQ(set.num_mentions(), 1);
  EXPECT_TRUE(set.mention(0).is_relational());
  EXPECT_EQ(set.mention(0).sentences, (std::vector<int>{0, 1}));
}

TEST(CanopyTest, LargeGroupFallsBackToTwoCanopies) {
  text::Gazetteer g = RembrandtGazetteer();
  text::ExtractionResult r;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    text::ShortMention m;
    m.surface = "Part" + std::to_string(i);
    m.sentence = 0;
    m.token_begin = 2 * i;
    m.token_end = 2 * i + 1;
    r.mentions.push_back(m);
  }
  r.link_after.assign(n, std::nullopt);
  for (int i = 0; i + 1 < n; ++i) {
    r.link_after[i] =
        text::Connector{text::ConnectorKind::kConjunction, "and"};
  }
  CanopyOptions options;
  options.max_group_size_for_full_enumeration = 8;
  MentionSet set = BuildMentionSet(r, &g, options);
  ASSERT_EQ(set.num_groups(), 1);
  EXPECT_EQ(set.groups[0].canopies.size(), 2u);  // all-short + all-merged
  EXPECT_EQ(set.groups[0].canopies[0].mentions.size(),
            static_cast<size_t>(n));
  EXPECT_EQ(set.groups[0].canopies[1].mentions.size(), 1u);
}

TEST(CanopyTest, SentencesSharedCheck) {
  Mention a;
  a.sentences = {0, 2};
  Mention b;
  b.sentences = {2, 3};
  Mention c;
  c.sentences = {1};
  EXPECT_TRUE(a.SharesSentence(b));
  EXPECT_FALSE(a.SharesSentence(c));
  EXPECT_TRUE(a.InSentence(2));
  EXPECT_FALSE(a.InSentence(1));
}

}  // namespace
}  // namespace core
}  // namespace tenet
