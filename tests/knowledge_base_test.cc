#include "kb/knowledge_base.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace tenet {
namespace kb {
namespace {

// Builds the paper's Figure 1 micro-KB: two Michael Jordans, AI topic, the
// AAAS fellowship, Brooklyn, and a few predicates.
KnowledgeBase BuildFigureOneKb() {
  KnowledgeBase kb;
  // Popularities make the basketball player the default sense.
  EntityId prof = kb.AddEntity("M. Jordan (professor)", EntityType::kPerson,
                               /*domain=*/0, /*popularity=*/3.0);
  EntityId player = kb.AddEntity("M. Jordan (basketball player)",
                                 EntityType::kPerson, 1, 7.0);
  kb.AddEntityAlias(prof, "Michael Jordan");
  kb.AddEntityAlias(player, "Michael Jordan");
  EntityId ai = kb.AddEntity("artificial intelligence", EntityType::kTopic,
                             0, 2.0);
  EntityId ml =
      kb.AddEntity("machine learning", EntityType::kTopic, 0, 2.0);
  EntityId aaas = kb.AddEntity("Fellow of the AAAS", EntityType::kOther, 0,
                               1.0);
  EntityId brooklyn =
      kb.AddEntity("Brooklyn", EntityType::kLocation, 2, 4.0);
  PredicateId field = kb.AddPredicate("field of study", 0);
  kb.AddPredicateAlias(field, "studies");
  PredicateId educated = kb.AddPredicate("educated at", 0);
  kb.AddPredicateAlias(educated, "studies", 0.5);
  PredicateId award = kb.AddPredicate("award received", 0);
  (void)award;
  EXPECT_TRUE(kb.AddFact(prof, field, ai).ok());
  EXPECT_TRUE(kb.AddFact(prof, field, ml).ok());
  EXPECT_TRUE(kb.AddFact(prof, award, aaas).ok());
  EXPECT_TRUE(kb.AddLiteralFact(brooklyn, educated, "1898").ok());
  kb.Finalize();
  return kb;
}

TEST(KnowledgeBaseTest, CountsAndRecords) {
  KnowledgeBase kb = BuildFigureOneKb();
  EXPECT_EQ(kb.num_entities(), 6);
  EXPECT_EQ(kb.num_predicates(), 3);
  EXPECT_EQ(kb.num_facts(), 4);
  EXPECT_EQ(kb.entity(0).label, "M. Jordan (professor)");
  EXPECT_EQ(kb.entity(0).type, EntityType::kPerson);
  EXPECT_EQ(kb.predicate(0).label, "field of study");
}

TEST(KnowledgeBaseTest, CandidateEntitiesOrderedByPrior) {
  KnowledgeBase kb = BuildFigureOneKb();
  std::vector<EntityCandidate> candidates =
      kb.CandidateEntities("Michael Jordan", std::nullopt, 10);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].entity, 1);  // basketball player: 7.0 vs 3.0
  EXPECT_NEAR(candidates[0].prior, 0.7, 1e-9);
  EXPECT_NEAR(candidates[1].prior, 0.3, 1e-9);
}

TEST(KnowledgeBaseTest, CandidateEntitiesRespectTypeFilter) {
  KnowledgeBase kb = BuildFigureOneKb();
  std::vector<EntityCandidate> persons =
      kb.CandidateEntities("Michael Jordan", EntityType::kPerson, 10);
  EXPECT_EQ(persons.size(), 2u);
  std::vector<EntityCandidate> locations =
      kb.CandidateEntities("Michael Jordan", EntityType::kLocation, 10);
  EXPECT_TRUE(locations.empty());
  std::vector<EntityCandidate> brooklyn =
      kb.CandidateEntities("brooklyn", EntityType::kLocation, 10);
  ASSERT_EQ(brooklyn.size(), 1u);
  EXPECT_NEAR(brooklyn[0].prior, 1.0, 1e-9);
}

TEST(KnowledgeBaseTest, TruncationRenormalizes) {
  KnowledgeBase kb = BuildFigureOneKb();
  std::vector<EntityCandidate> top1 =
      kb.CandidateEntities("Michael Jordan", std::nullopt, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_NEAR(top1[0].prior, 1.0, 1e-9);
}

TEST(KnowledgeBaseTest, CandidatePredicates) {
  KnowledgeBase kb = BuildFigureOneKb();
  std::vector<PredicateCandidate> candidates =
      kb.CandidatePredicates("studies", 10);
  ASSERT_EQ(candidates.size(), 2u);
  // "field of study" weighted 1.0 vs "educated at" 0.5 for this alias.
  EXPECT_EQ(candidates[0].predicate, 0);
  EXPECT_NEAR(candidates[0].prior, 2.0 / 3.0, 1e-9);
  EXPECT_TRUE(kb.CandidatePredicates("visited", 10).empty());
}

TEST(KnowledgeBaseTest, FactsAdjacency) {
  KnowledgeBase kb = BuildFigureOneKb();
  // prof (id 0) participates in 3 facts.
  EXPECT_EQ(kb.FactsOfEntity(0).size(), 3u);
  // ai (id 2) in 1 fact as object.
  EXPECT_EQ(kb.FactsOfEntity(2).size(), 1u);
  EXPECT_EQ(kb.FactsOfPredicate(0).size(), 2u);

  std::vector<EntityId> neighbors = kb.NeighborEntities(0);
  std::sort(neighbors.begin(), neighbors.end());
  EXPECT_EQ(neighbors, (std::vector<EntityId>{2, 3, 4}));
  // Literal facts produce no entity neighbors.
  EXPECT_TRUE(kb.NeighborEntities(5).empty());
}

TEST(KnowledgeBaseTest, AddFactValidatesIds) {
  KnowledgeBase kb;
  EntityId e = kb.AddEntity("A", EntityType::kOther);
  PredicateId p = kb.AddPredicate("rel");
  EXPECT_TRUE(kb.AddFact(e, p, e).ok());  // self-fact allowed at API level
  EXPECT_FALSE(kb.AddFact(e, p, 99).ok());
  EXPECT_FALSE(kb.AddFact(99, p, e).ok());
  EXPECT_FALSE(kb.AddFact(e, 99, e).ok());
  EXPECT_FALSE(kb.AddLiteralFact(99, p, "x").ok());
}

TEST(KnowledgeBaseTest, MaxCandidatesZeroYieldsEmpty) {
  KnowledgeBase kb = BuildFigureOneKb();
  EXPECT_TRUE(kb.CandidateEntities("Michael Jordan", std::nullopt, 0).empty());
}

}  // namespace
}  // namespace kb
}  // namespace tenet
