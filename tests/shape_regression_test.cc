// Regression guard for the paper's headline shapes (EXPERIMENTS.md):
// these orderings define the reproduction — any refactor that flips one
// must fail loudly here rather than silently in a bench.
//
// Uses reduced corpora (fewer documents) so the suite stays fast; the
// margins asserted are conservative.
#include <memory>

#include <gtest/gtest.h>

#include "baselines/earl_like.h"
#include "baselines/falcon_like.h"
#include "baselines/kbpearl_like.h"
#include "baselines/mintree_like.h"
#include "baselines/qkbfly_like.h"
#include "baselines/tenet_linker.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "eval/harness.h"

namespace tenet {
namespace {

class ShapeRegressionTest : public ::testing::Test {
 protected:
  static const datasets::SyntheticWorld& World() {
    static const datasets::SyntheticWorld* world =
        new datasets::SyntheticWorld(datasets::BuildWorld());
    return *world;
  }

  static baselines::BaselineSubstrate Substrate() {
    return baselines::BaselineSubstrate{
        &World().kb(), &World().embeddings, &World().gazetteer(), {}, {}};
  }

  // The evaluation corpora at full size, cached.
  static const std::vector<datasets::Dataset>& Corpora() {
    static const std::vector<datasets::Dataset>* corpora = [] {
      auto* out = new std::vector<datasets::Dataset>();
      datasets::CorpusGenerator gen(&World().kb_world);
      Rng rng(77);  // the bench seed: the regression pins bench behaviour
      out->push_back(gen.Generate(datasets::NewsSpec(), rng));
      out->push_back(gen.Generate(datasets::TRex42Spec(), rng));
      out->push_back(gen.Generate(datasets::Kore50Spec(), rng));
      out->push_back(gen.Generate(datasets::Msnbc19Spec(), rng));
      return out;
    }();
    return *corpora;
  }
};

// Table 3: TENET attains the best entity-linking F1 on every dataset.
TEST_F(ShapeRegressionTest, TenetBestEntityLinkingEverywhere) {
  baselines::TenetLinker tenet(Substrate());
  std::vector<std::unique_ptr<baselines::Linker>> baselines_list;
  baselines_list.push_back(
      std::make_unique<baselines::FalconLike>(Substrate()));
  baselines_list.push_back(
      std::make_unique<baselines::QkbflyLike>(Substrate()));
  baselines_list.push_back(
      std::make_unique<baselines::KbPearlLike>(Substrate()));
  baselines_list.push_back(std::make_unique<baselines::EarlLike>(Substrate()));
  baselines_list.push_back(
      std::make_unique<baselines::MintreeLike>(Substrate()));

  for (const datasets::Dataset& dataset : Corpora()) {
    double tenet_f1 =
        eval::EvaluateEndToEnd(tenet, dataset).entity_linking.F1();
    for (const auto& baseline : baselines_list) {
      double baseline_f1 =
          eval::EvaluateEndToEnd(*baseline, dataset).entity_linking.F1();
      EXPECT_GT(tenet_f1, baseline_f1)
          << baseline->name() << " beats TENET on " << dataset.name;
    }
  }
}

// Table 3 column shape: QKBfly trades recall for precision everywhere.
TEST_F(ShapeRegressionTest, QkbflyPrecisionHeavyRecallLight) {
  baselines::QkbflyLike qkbfly(Substrate());
  baselines::TenetLinker tenet(Substrate());
  for (const datasets::Dataset& dataset : Corpora()) {
    eval::SystemScores q = eval::EvaluateEndToEnd(qkbfly, dataset);
    eval::SystemScores t = eval::EvaluateEndToEnd(tenet, dataset);
    EXPECT_GT(q.entity_linking.Precision(), 0.9) << dataset.name;
    EXPECT_LT(q.entity_linking.Recall(), t.entity_linking.Recall())
        << dataset.name;
  }
}

// Table 4: TENET best relation-linking F1 on both annotated datasets.
TEST_F(ShapeRegressionTest, TenetBestRelationLinking) {
  baselines::TenetLinker tenet(Substrate());
  baselines::KbPearlLike kbpearl(Substrate());
  baselines::FalconLike falcon(Substrate());
  for (const datasets::Dataset& dataset : Corpora()) {
    if (!dataset.has_relation_gold) continue;
    double t = eval::EvaluateEndToEnd(tenet, dataset).relation_linking.F1();
    double k =
        eval::EvaluateEndToEnd(kbpearl, dataset).relation_linking.F1();
    double f = eval::EvaluateEndToEnd(falcon, dataset).relation_linking.F1();
    EXPECT_GT(t, k) << dataset.name;
    EXPECT_GT(t, f) << dataset.name;
    EXPECT_GT(k, f) << dataset.name;  // KBPearl above the no-coherence line
  }
}

// Figure 6(c): isolated-concept precision TENET > KBPearl > QKBfly on the
// advertisement News articles.
TEST_F(ShapeRegressionTest, IsolatedDetectionOrdering) {
  datasets::Dataset ads;
  ads.name = "News-ads";
  ads.has_relation_gold = true;
  for (const datasets::Document& d : Corpora()[0].documents) {
    if (d.advertisement) ads.documents.push_back(d);
  }
  ASSERT_FALSE(ads.documents.empty());
  baselines::TenetLinker tenet(Substrate());
  baselines::KbPearlLike kbpearl(Substrate());
  baselines::QkbflyLike qkbfly(Substrate());
  double t = eval::EvaluateEndToEnd(tenet, ads).isolated_detection.Precision();
  double k =
      eval::EvaluateEndToEnd(kbpearl, ads).isolated_detection.Precision();
  double q =
      eval::EvaluateEndToEnd(qkbfly, ads).isolated_detection.Precision();
  EXPECT_GT(t, k);
  EXPECT_GT(k, q);
}

// Figure 6(a): TENET's mention detection leads the coarse and short-only
// spotters on long text.
TEST_F(ShapeRegressionTest, MentionDetectionOrdering) {
  baselines::TenetLinker tenet(Substrate());
  baselines::KbPearlLike kbpearl(Substrate());
  baselines::FalconLike falcon(Substrate());
  const datasets::Dataset& msnbc = Corpora()[3];
  double t = eval::EvaluateEndToEnd(tenet, msnbc).mention_detection.F1();
  double k = eval::EvaluateEndToEnd(kbpearl, msnbc).mention_detection.F1();
  double f = eval::EvaluateEndToEnd(falcon, msnbc).mention_detection.F1();
  EXPECT_GT(t, k);
  EXPECT_GT(k, f);
}

// The headline claim is not a seed artifact.  Individual corpus draws can
// flip by a hair (the paper's own News margin is 0.454 vs 0.450), so the
// guard asserts the aggregate: across fresh News + T-REx draws, TENET wins
// the majority of corpora and the mean F1.
TEST_F(ShapeRegressionTest, HeadlineHoldsAcrossCorpusSeeds) {
  baselines::TenetLinker tenet(Substrate());
  baselines::KbPearlLike kbpearl(Substrate());
  datasets::CorpusGenerator gen(&World().kb_world);
  double tenet_sum = 0.0;
  double kbpearl_sum = 0.0;
  int wins = 0;
  int draws = 0;
  for (uint64_t seed : {177u, 277u, 377u}) {
    Rng rng(seed);
    for (const datasets::DatasetSpec& spec :
         {datasets::NewsSpec(), datasets::TRex42Spec()}) {
      datasets::Dataset ds = gen.Generate(spec, rng);
      double t = eval::EvaluateEndToEnd(tenet, ds).entity_linking.F1();
      double k = eval::EvaluateEndToEnd(kbpearl, ds).entity_linking.F1();
      tenet_sum += t;
      kbpearl_sum += k;
      wins += t > k ? 1 : 0;
      ++draws;
    }
  }
  EXPECT_GT(tenet_sum / draws, kbpearl_sum / draws);
  EXPECT_GT(wins * 2, draws);  // majority of corpora
}

}  // namespace
}  // namespace tenet
