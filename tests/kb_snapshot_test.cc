// Golden snapshot equivalence: a world saved to disk and reloaded — legacy
// text, TENETKB2 streamed, or TENETKB2 zero-copy (with and without a
// thread pool) — must drive the full evaluation to scores byte-identical
// to the in-memory original, including the full/degraded accounting.  This
// is the round-trip contract the persistence layer exists to keep: a
// restart may never change what the system links.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/tenet_linker.h"
#include "common/thread_pool.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "eval/harness.h"
#include "kb/io.h"

namespace tenet {
namespace eval {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectSamePRF(const PRF& a, const PRF& b, const char* what) {
  EXPECT_EQ(a.tp, b.tp) << what;
  EXPECT_EQ(a.fp, b.fp) << what;
  EXPECT_EQ(a.fn, b.fn) << what;
}

SystemScores ScoreWorld(const kb::KnowledgeBase& kb,
                        const embedding::EmbeddingStore& embeddings,
                        const text::Gazetteer& gazetteer,
                        const datasets::Dataset& dataset) {
  baselines::TenetLinker linker(
      baselines::BaselineSubstrate{&kb, &embeddings, &gazetteer, {}, {}});
  return EvaluateEndToEnd(linker, dataset);
}

TEST(KbSnapshotTest, EveryLoadPathScoresIdenticallyToMemory) {
  datasets::SyntheticWorld world = datasets::BuildWorld();
  datasets::CorpusGenerator gen(&world.kb_world);
  Rng rng(71);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 6;
  datasets::Dataset dataset = gen.Generate(spec, rng);

  SystemScores golden =
      ScoreWorld(world.kb(), world.embeddings, world.gazetteer(), dataset);
  ASSERT_EQ(golden.failed_documents, 0);
  ASSERT_GT(golden.entity_linking.tp, 0);

  std::string text_path = TempPath("snapshot_world.text.tenetkb");
  std::string bin_path = TempPath("snapshot_world.tenetkb");
  std::string emb_path = TempPath("snapshot_world.tenetemb");
  ASSERT_TRUE(
      kb::SaveKnowledgeBase(world.kb(), text_path, kb::KbFormat::kTextV1)
          .ok());
  ASSERT_TRUE(
      kb::SaveKnowledgeBase(world.kb(), bin_path, kb::KbFormat::kBinaryV2)
          .ok());
  ASSERT_TRUE(kb::SaveEmbeddings(world.embeddings, emb_path).ok());

  ThreadPool pool(ThreadPool::Options{});
  struct LoadPath {
    const char* name;
    const std::string* kb_path;
    kb::KbLoadOptions options;
  };
  const LoadPath paths[] = {
      {"text", &text_path, {}},
      {"binary_stream", &bin_path, {/*prefer_mmap=*/false, nullptr}},
      {"binary_mmap", &bin_path, {/*prefer_mmap=*/true, nullptr}},
      {"binary_mmap_pool", &bin_path, {/*prefer_mmap=*/true, &pool}},
  };
  for (const LoadPath& path : paths) {
    SCOPED_TRACE(path.name);
    Result<kb::KnowledgeBase> kb2 =
        kb::LoadKnowledgeBase(*path.kb_path, path.options);
    ASSERT_TRUE(kb2.ok()) << kb2.status();
    kb::KbLoadOptions emb_options;
    emb_options.prefer_mmap = path.options.prefer_mmap;
    Result<embedding::EmbeddingStore> emb2 =
        kb::LoadEmbeddings(emb_path, emb_options);
    ASSERT_TRUE(emb2.ok()) << emb2.status();
    text::Gazetteer gazetteer2 = kb::DeriveGazetteer(*kb2);

    SystemScores scores = ScoreWorld(*kb2, *emb2, gazetteer2, dataset);
    ExpectSamePRF(golden.entity_linking, scores.entity_linking,
                  "entity_linking");
    ExpectSamePRF(golden.relation_linking, scores.relation_linking,
                  "relation_linking");
    ExpectSamePRF(golden.mention_detection, scores.mention_detection,
                  "mention_detection");
    ExpectSamePRF(golden.isolated_detection, scores.isolated_detection,
                  "isolated_detection");
    EXPECT_EQ(golden.failed_documents, scores.failed_documents);
    EXPECT_EQ(golden.full_documents, scores.full_documents);
    EXPECT_EQ(golden.degraded_documents, scores.degraded_documents);
  }
}

}  // namespace
}  // namespace eval
}  // namespace tenet
