#include "core/tree_split.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/tree.h"

namespace tenet {
namespace core {
namespace {

using graph::RootedTree;
using graph::TreeEdge;

RootedTree TreeFromOriented(int root, std::vector<TreeEdge> edges) {
  Result<RootedTree> t = RootedTree::FromOrientedEdges(root, edges);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

TEST(TreeSplitTest, LightTreeReturnsUnsplit) {
  RootedTree tree = TreeFromOriented(
      0, {TreeEdge{0, 1, 0.4}, TreeEdge{1, 2, 0.3}});
  Result<SplitResult> split = SplitTree(tree, 1.0);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(split->subtrees.empty());
  EXPECT_EQ(split->leftover.num_edges(), 2);
  EXPECT_EQ(split->leftover.root(), 0);
}

TEST(TreeSplitTest, SingletonTree) {
  RootedTree tree = RootedTree::Singleton(5);
  Result<SplitResult> split = SplitTree(tree, 1.0);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(split->subtrees.empty());
  EXPECT_EQ(split->leftover.root(), 5);
  EXPECT_EQ(split->leftover.num_nodes(), 1);
}

TEST(TreeSplitTest, HeavyPathIsCarved) {
  // Path 0-1-2-3-4 with unit-ish weights, bound 1.0.
  RootedTree tree = TreeFromOriented(0, {TreeEdge{0, 1, 0.9},
                                         TreeEdge{1, 2, 0.9},
                                         TreeEdge{2, 3, 0.9},
                                         TreeEdge{3, 4, 0.9}});
  Result<SplitResult> split = SplitTree(tree, 1.0);
  ASSERT_TRUE(split.ok());
  EXPECT_LE(split->leftover.TotalWeight(), 1.0);
  EXPECT_TRUE(split->leftover.Contains(0));
  ASSERT_FALSE(split->subtrees.empty());
  for (const RootedTree& s : split->subtrees) {
    EXPECT_GT(s.TotalWeight(), 1.0);
    EXPECT_LE(s.TotalWeight(), 2.0);
  }
}

TEST(TreeSplitTest, RejectsEdgeHeavierThanBound) {
  RootedTree tree = TreeFromOriented(0, {TreeEdge{0, 1, 2.5}});
  Result<SplitResult> split = SplitTree(tree, 1.0);
  EXPECT_FALSE(split.ok());
  EXPECT_TRUE(split.status().IsInvalidArgument());
}

TEST(TreeSplitTest, RejectsNonPositiveBound) {
  RootedTree tree = RootedTree::Singleton(0);
  EXPECT_FALSE(SplitTree(tree, 0.0).ok());
  EXPECT_FALSE(SplitTree(tree, -1.0).ok());
}

TEST(TreeSplitTest, StarOfHeavyLeaves) {
  // Root with 6 children, each edge 0.8; bound 1.0.  Children must be
  // bundled into subtrees of weight 1.6 (two edges each).
  std::vector<TreeEdge> edges;
  for (int c = 1; c <= 6; ++c) edges.push_back(TreeEdge{0, c, 0.8});
  RootedTree tree = TreeFromOriented(0, edges);
  Result<SplitResult> split = SplitTree(tree, 1.0);
  ASSERT_TRUE(split.ok());
  EXPECT_LE(split->leftover.TotalWeight(), 1.0);
  double total = split->leftover.TotalWeight();
  for (const RootedTree& s : split->subtrees) {
    EXPECT_GT(s.TotalWeight(), 1.0);
    EXPECT_LE(s.TotalWeight(), 2.0);
    total += s.TotalWeight();
  }
  EXPECT_NEAR(total, 6 * 0.8, 1e-9);
}

// ---- Property tests ---------------------------------------------------------

RootedTree RandomTree(Rng& rng, int n, double max_edge_weight) {
  std::vector<TreeEdge> edges;
  for (int i = 1; i < n; ++i) {
    int parent = static_cast<int>(rng.NextUint64(i));
    edges.push_back(
        TreeEdge{parent, i, rng.NextDouble(0.01, max_edge_weight)});
  }
  Result<RootedTree> t = RootedTree::FromOrientedEdges(0, edges);
  TENET_CHECK(t.ok());
  return std::move(t).value();
}

struct SplitParam {
  uint64_t seed;
  double bound;
};

class TreeSplitPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(TreeSplitPropertyTest, InvariantsOnRandomTrees) {
  auto [seed, bound] = GetParam();
  Rng rng(seed);
  const int n = 2 + static_cast<int>(rng.NextUint64(60));
  RootedTree tree = RandomTree(rng, n, bound);  // edges <= bound

  Result<SplitResult> split = SplitTree(tree, bound);
  ASSERT_TRUE(split.ok()) << split.status();

  // Leftover invariant: contains root, weight <= bound.
  EXPECT_TRUE(split->leftover.Contains(0));
  EXPECT_EQ(split->leftover.root(), 0);
  EXPECT_LE(split->leftover.TotalWeight(), bound + 1e-9);

  // Subtree invariant: weight in (bound, 2*bound]; root never inside.
  for (const RootedTree& s : split->subtrees) {
    EXPECT_GT(s.TotalWeight(), bound - 1e-9);
    EXPECT_LE(s.TotalWeight(), 2.0 * bound + 1e-9);
    for (const TreeEdge& e : s.edges()) {
      EXPECT_NE(e.child, 0) << "root carved away from leftover";
    }
  }

  // Edge partition: every original edge appears exactly once across the
  // leftover and all subtrees (keyed by child, unique in a rooted tree).
  std::unordered_set<int> children_seen;
  auto record = [&children_seen](const RootedTree& t) {
    for (const TreeEdge& e : t.edges()) {
      EXPECT_TRUE(children_seen.insert(e.child).second)
          << "edge to child " << e.child << " duplicated";
    }
  };
  record(split->leftover);
  for (const RootedTree& s : split->subtrees) record(s);
  EXPECT_EQ(children_seen.size(), static_cast<size_t>(tree.num_edges()));

  // Weight conservation.
  double total = split->leftover.TotalWeight();
  for (const RootedTree& s : split->subtrees) total += s.TotalWeight();
  EXPECT_NEAR(total, tree.TotalWeight(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBounds, TreeSplitPropertyTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 16),
                       ::testing::Values(0.5, 1.0, 3.0)));

}  // namespace
}  // namespace core
}  // namespace tenet
