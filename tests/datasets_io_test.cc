#include "datasets/io.h"

#include <fstream>

#include <gtest/gtest.h>

#include "datasets/corpus_generator.h"
#include "datasets/world.h"

namespace tenet {
namespace datasets {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Dataset MakeDataset() {
  SyntheticWorld world = BuildWorld({.kb = {.num_domains = 3,
                                            .entities_per_domain = 15,
                                            .num_predicates = 8},
                                     .embeddings = {},
                                     .seed = 111});
  CorpusGenerator gen(&world.kb_world);
  Rng rng(112);
  DatasetSpec spec = NewsSpec();
  spec.num_docs = 5;
  return gen.Generate(spec, rng);
}

TEST(DatasetsIoTest, RoundTripIsExact) {
  Dataset original = MakeDataset();
  std::string path = TempPath("corpus.tenetds");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  Result<Dataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->has_relation_gold, original.has_relation_gold);
  ASSERT_EQ(loaded->documents.size(), original.documents.size());
  for (size_t d = 0; d < original.documents.size(); ++d) {
    const Document& a = original.documents[d];
    const Document& b = loaded->documents[d];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.num_words, b.num_words);
    EXPECT_EQ(a.advertisement, b.advertisement);
    ASSERT_EQ(a.gold_entities.size(), b.gold_entities.size());
    for (size_t i = 0; i < a.gold_entities.size(); ++i) {
      EXPECT_EQ(a.gold_entities[i].surface, b.gold_entities[i].surface);
      EXPECT_EQ(a.gold_entities[i].sentence, b.gold_entities[i].sentence);
      EXPECT_EQ(a.gold_entities[i].entity, b.gold_entities[i].entity);
    }
    ASSERT_EQ(a.gold_predicates.size(), b.gold_predicates.size());
    for (size_t i = 0; i < a.gold_predicates.size(); ++i) {
      EXPECT_EQ(a.gold_predicates[i].lemma, b.gold_predicates[i].lemma);
      EXPECT_EQ(a.gold_predicates[i].predicate,
                b.gold_predicates[i].predicate);
    }
  }
}

TEST(DatasetsIoTest, NonLinkableGoldSurvives) {
  Dataset original = MakeDataset();
  bool has_nil = false;
  for (const Document& d : original.documents) {
    has_nil |= d.NumNonLinkableEntities() > 0;
  }
  ASSERT_TRUE(has_nil);
  std::string path = TempPath("corpus_nil.tenetds");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  Result<Dataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t d = 0; d < original.documents.size(); ++d) {
    EXPECT_EQ(loaded->documents[d].NumNonLinkableEntities(),
              original.documents[d].NumNonLinkableEntities());
    EXPECT_EQ(loaded->documents[d].NumNonLinkablePredicates(),
              original.documents[d].NumNonLinkablePredicates());
  }
}

TEST(DatasetsIoTest, EmptyDatasetRoundTrips) {
  Dataset empty;
  empty.name = "empty";
  std::string path = TempPath("empty.tenetds");
  ASSERT_TRUE(SaveDataset(empty, path).ok());
  Result<Dataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name, "empty");
  EXPECT_TRUE(loaded->documents.empty());
}

TEST(DatasetsIoTest, LoadRejectsGarbageAndTruncation) {
  std::string path = TempPath("garbage.tenetds");
  {
    std::ofstream out(path);
    out << "nope\n";
  }
  EXPECT_TRUE(LoadDataset(path).status().IsInvalidArgument());

  Dataset ds = MakeDataset();
  ASSERT_TRUE(SaveDataset(ds, path).ok());
  // Truncate to the first 4 lines.
  std::ifstream in(path);
  std::string head;
  std::string line;
  for (int i = 0; i < 4 && std::getline(in, line); ++i) head += line + "\n";
  in.close();
  {
    std::ofstream out(path, std::ios::trunc);
    out << head;
  }
  EXPECT_FALSE(LoadDataset(path).ok());
}

TEST(DatasetsIoTest, MissingFileIsNotFound) {
  EXPECT_TRUE(
      LoadDataset(TempPath("missing.tenetds")).status().IsNotFound());
}

}  // namespace
}  // namespace datasets
}  // namespace tenet
