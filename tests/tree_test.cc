#include "graph/tree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tenet {
namespace graph {
namespace {

using UndirectedEdges = std::vector<std::pair<std::pair<int, int>, double>>;

TEST(RootedTreeTest, SingletonTree) {
  RootedTree t = RootedTree::Singleton(42);
  EXPECT_EQ(t.root(), 42);
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_EQ(t.num_edges(), 0);
  EXPECT_TRUE(t.empty_of_edges());
  EXPECT_DOUBLE_EQ(t.TotalWeight(), 0.0);
  EXPECT_TRUE(t.Contains(42));
  EXPECT_FALSE(t.Contains(0));
  EXPECT_EQ(t.Parent(42), -1);
  EXPECT_EQ(t.PostOrderNodes(), std::vector<int>{42});
}

TEST(RootedTreeTest, FromUndirectedEdgesOrientsAwayFromRoot) {
  // 5 is root; edges given in arbitrary orientation.
  UndirectedEdges edges = {
      {{7, 5}, 1.0},  // root child
      {{9, 7}, 2.0},
      {{5, 3}, 0.5},
  };
  Result<RootedTree> result = RootedTree::FromEdges(5, edges);
  ASSERT_TRUE(result.ok()) << result.status();
  const RootedTree& t = result.value();
  EXPECT_EQ(t.root(), 5);
  EXPECT_EQ(t.num_nodes(), 4);
  EXPECT_EQ(t.Parent(7), 5);
  EXPECT_EQ(t.Parent(9), 7);
  EXPECT_EQ(t.Parent(3), 5);
  EXPECT_DOUBLE_EQ(t.TotalWeight(), 3.5);
}

TEST(RootedTreeTest, RejectsCycle) {
  UndirectedEdges edges = {{{0, 1}, 1.0}, {{1, 2}, 1.0}, {{2, 0}, 1.0}};
  EXPECT_FALSE(RootedTree::FromEdges(0, edges).ok());
}

TEST(RootedTreeTest, RejectsDisconnected) {
  UndirectedEdges edges = {{{0, 1}, 1.0}, {{2, 3}, 1.0}};
  EXPECT_FALSE(RootedTree::FromEdges(0, edges).ok());
}

TEST(RootedTreeTest, RejectsEdgesNotContainingRoot) {
  UndirectedEdges edges = {{{1, 2}, 1.0}};
  EXPECT_FALSE(RootedTree::FromEdges(0, edges).ok());
}

TEST(RootedTreeTest, PostOrderVisitsChildrenBeforeParents) {
  UndirectedEdges edges = {
      {{0, 1}, 1.0}, {{0, 2}, 1.0}, {{1, 3}, 1.0}, {{1, 4}, 1.0}};
  RootedTree t = RootedTree::FromEdges(0, edges).value();
  std::vector<int> order = t.PostOrderNodes();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.back(), 0);  // root last
  auto position = [&](int node) {
    return std::find(order.begin(), order.end(), node) - order.begin();
  };
  EXPECT_LT(position(3), position(1));
  EXPECT_LT(position(4), position(1));
  EXPECT_LT(position(1), position(0));
  EXPECT_LT(position(2), position(0));
}

TEST(RootedTreeTest, SubtreeWeightAndExtraction) {
  UndirectedEdges edges = {
      {{0, 1}, 1.0}, {{1, 2}, 2.0}, {{1, 3}, 3.0}, {{0, 4}, 4.0}};
  RootedTree t = RootedTree::FromEdges(0, edges).value();
  EXPECT_DOUBLE_EQ(t.SubtreeWeight(1), 5.0);
  EXPECT_DOUBLE_EQ(t.SubtreeWeight(0), 10.0);
  EXPECT_DOUBLE_EQ(t.SubtreeWeight(4), 0.0);

  RootedTree sub = t.Subtree(1);
  EXPECT_EQ(sub.root(), 1);
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_TRUE(sub.Contains(2));
  EXPECT_TRUE(sub.Contains(3));
  EXPECT_FALSE(sub.Contains(0));
  EXPECT_DOUBLE_EQ(sub.TotalWeight(), 5.0);
}

TEST(RootedTreeTest, ChildrenListsAreAccurate) {
  UndirectedEdges edges = {{{10, 20}, 1.0}, {{10, 30}, 2.0}};
  RootedTree t = RootedTree::FromEdges(10, edges).value();
  const auto& children = t.Children(10);
  ASSERT_EQ(children.size(), 2u);
  std::set<int> ids;
  for (const auto& [child, weight] : children) {
    ids.insert(child);
    EXPECT_GT(weight, 0.0);
  }
  EXPECT_EQ(ids, (std::set<int>{20, 30}));
  EXPECT_TRUE(t.Children(20).empty());
}

// Property: on random trees, nodes() has no duplicates, TotalWeight equals
// the sum of SubtreeWeight over the root, post-order is a permutation, and
// Subtree(root) reproduces the whole tree.
class TreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreePropertyTest, RandomTreeInvariants) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.NextUint64(40));
  UndirectedEdges edges;
  double expected_weight = 0.0;
  // Random recursive tree: node i attaches to a random earlier node.
  for (int i = 1; i < n; ++i) {
    int parent = static_cast<int>(rng.NextUint64(i));
    double weight = rng.NextDouble(0.1, 1.0);
    expected_weight += weight;
    edges.push_back({{parent, i}, weight});
  }
  RootedTree t = RootedTree::FromEdges(0, edges).value();
  EXPECT_EQ(t.num_nodes(), n);
  EXPECT_NEAR(t.TotalWeight(), expected_weight, 1e-9);
  EXPECT_NEAR(t.SubtreeWeight(0), expected_weight, 1e-9);

  std::vector<int> post = t.PostOrderNodes();
  std::set<int> unique(post.begin(), post.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(n));

  RootedTree clone = t.Subtree(0);
  EXPECT_EQ(clone.num_nodes(), n);
  EXPECT_NEAR(clone.TotalWeight(), expected_weight, 1e-9);

  // Parent/child relations are mutually consistent.
  for (int node : t.nodes()) {
    for (const auto& [child, weight] : t.Children(node)) {
      (void)weight;
      EXPECT_EQ(t.Parent(child), node);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace graph
}  // namespace tenet
