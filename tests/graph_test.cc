#include "graph/graph.h"

#include <gtest/gtest.h>

namespace tenet {
namespace graph {
namespace {

TEST(WeightedGraphTest, EmptyGraph) {
  WeightedGraph g(0);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.NumConnectedComponents(), 0);
}

TEST(WeightedGraphTest, AddAndQueryEdges) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 0.5);
  g.AddEdge(2, 1, 0.25);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2, -1.0), 0.25);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 3, -1.0), -1.0);
}

TEST(WeightedGraphTest, SelfLoopIgnored) {
  WeightedGraph g(2);
  EXPECT_EQ(g.AddEdge(1, 1, 0.1), -1);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(WeightedGraphTest, ParallelEdgeKeepsMinimum) {
  WeightedGraph g(3);
  int first = g.AddEdge(0, 1, 0.8);
  int second = g.AddEdge(1, 0, 0.3);
  int third = g.AddEdge(0, 1, 0.9);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1, -1.0), 0.3);
}

TEST(WeightedGraphTest, IncidentEdgesAndOtherEndpoint) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 2, 2.0);
  g.AddEdge(3, 0, 3.0);
  const std::vector<int>& incident = g.IncidentEdges(0);
  EXPECT_EQ(incident.size(), 3u);
  for (int edge_index : incident) {
    int other = g.OtherEndpoint(edge_index, 0);
    EXPECT_NE(other, 0);
  }
  EXPECT_EQ(g.IncidentEdges(1).size(), 1u);
  EXPECT_EQ(g.OtherEndpoint(g.IncidentEdges(1)[0], 1), 0);
}

TEST(WeightedGraphTest, PrunedCopyDropsHeavyEdges) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 0.2);
  g.AddEdge(1, 2, 0.6);
  g.AddEdge(2, 3, 1.5);
  WeightedGraph pruned = g.PrunedCopy(0.6);
  EXPECT_EQ(pruned.num_edges(), 2);
  EXPECT_TRUE(pruned.HasEdge(0, 1));
  EXPECT_TRUE(pruned.HasEdge(1, 2));
  EXPECT_FALSE(pruned.HasEdge(2, 3));
  // The original is untouched.
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(WeightedGraphTest, PruningBoundIsInclusive) {
  WeightedGraph g(2);
  g.AddEdge(0, 1, 0.6);
  EXPECT_EQ(g.PrunedCopy(0.6).num_edges(), 1);
  EXPECT_EQ(g.PrunedCopy(0.5999).num_edges(), 0);
}

TEST(WeightedGraphTest, ConnectedComponents) {
  WeightedGraph g(6);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(3, 4, 1.0);
  // node 5 isolated
  EXPECT_EQ(g.NumConnectedComponents(), 3);
  g.AddEdge(2, 3, 1.0);
  EXPECT_EQ(g.NumConnectedComponents(), 2);
  g.AddEdge(5, 0, 1.0);
  EXPECT_EQ(g.NumConnectedComponents(), 1);
}

}  // namespace
}  // namespace graph
}  // namespace tenet
