// Stage tracing through the pipeline: a LinkContext trace records exactly
// the four pipeline stages of a full run, bound-doubling retries as child
// spans of the cover stage, and the prior-only rung (with its annotations)
// on a degraded run.  Span durations carry the same numbers as the
// result's PipelineTimings — one measurement, every sink.
#include <string>

#include <gtest/gtest.h>

#include "core/link_context.h"
#include "core/pipeline.h"
#include "figure_one_world.h"
#include "obs/trace.h"

namespace tenet {
namespace core {
namespace {

using testing_support::BuildFigureOneWorld;
using testing_support::FigureOneWorld;

constexpr const char* kFigureOneText =
    "Michael Jordan studies artificial intelligence and machine learning. "
    "He was awarded as the Fellow of the AAAS. "
    "He visited Brooklyn in April 2019.";

std::string Annotation(const obs::Trace& trace, const std::string& key) {
  for (const auto& [k, v] : trace.annotations()) {
    if (k == key) return v;
  }
  return "";
}

TEST(TraceTest, FullRunRecordsExactlyFourStageSpans) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);

  obs::Trace trace;
  Result<LinkingResult> result =
      tenet.LinkDocument(kFigureOneText, LinkContext::WithTrace(&trace));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->degradation.degraded());

  for (const char* stage : {"extract", "graph", "cover", "disambiguate"}) {
    EXPECT_EQ(trace.CountSpans(stage), 1) << stage;
  }
  EXPECT_EQ(trace.CountSpans("cover_retry"), 0);
  EXPECT_EQ(trace.CountSpans("prior_only"), 0);
  EXPECT_EQ(trace.spans().size(), 4u);
  EXPECT_TRUE(trace.annotations().empty());

  // Stage spans are root spans, closed, and carry the exact same durations
  // as the result's PipelineTimings (the same timer fills both).
  const PipelineTimings& t = result->timings;
  const double expected[] = {t.extract_ms, t.graph_ms, t.cover_ms,
                             t.disambiguate_ms};
  const char* names[] = {"extract", "graph", "cover", "disambiguate"};
  for (int i = 0; i < 4; ++i) {
    int span = trace.FindSpan(names[i]);
    ASSERT_GE(span, 0) << names[i];
    EXPECT_EQ(trace.spans()[span].parent, -1);
    EXPECT_FALSE(trace.spans()[span].open());
    EXPECT_EQ(trace.spans()[span].duration_ms, expected[i]) << names[i];
  }
}

TEST(TraceTest, BoundDoublingRecordsRetrySpansUnderTheCoverStage) {
  FigureOneWorld world = BuildFigureOneWorld();
  // A hopeless starting bound: every attempt raises the failure warning
  // (B < B*), so the schedule runs out all its doubling retries and the
  // document degrades past the cover stage.
  TenetOptions options;
  options.bound_factor = 1e-9;
  options.bound_retry.max_retries = 3;
  options.bound_retry.multiplier = 2.0;
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer,
                      options);

  obs::Trace trace;
  Result<LinkingResult> result =
      tenet.LinkDocument(kFigureOneText, LinkContext::WithTrace(&trace));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degradation.degraded());

  // One child span per retry attempt, all parented by the cover stage.
  EXPECT_EQ(trace.CountSpans("cover_retry"),
            options.bound_retry.max_retries);
  int cover = trace.FindSpan("cover");
  ASSERT_GE(cover, 0);
  for (const obs::TraceSpan& span : trace.spans()) {
    if (span.name != "cover_retry") continue;
    EXPECT_EQ(span.parent, cover);
    EXPECT_FALSE(span.open());
  }
  // The rung taken is on the record too.
  EXPECT_EQ(trace.CountSpans("prior_only"), 1);
  EXPECT_EQ(Annotation(trace, "degraded_mode"), "prior_only");
}

TEST(TraceTest, ExpiredDeadlineTracesThePriorOnlyRung) {
  FigureOneWorld world = BuildFigureOneWorld();
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer);

  obs::Trace trace;
  LinkContext context = LinkContext::WithDeadline(Deadline::Expired());
  context.trace = &trace;
  Result<LinkingResult> result = tenet.LinkDocument(kFigureOneText, context);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->degradation.stages_degraded, 3);

  // Extraction ran (the budget is checked at the coherence stages); the
  // graph/cover/disambiguate stages were replaced by the prior-only rung.
  EXPECT_EQ(trace.CountSpans("extract"), 1);
  EXPECT_EQ(trace.CountSpans("graph"), 0);
  EXPECT_EQ(trace.CountSpans("cover"), 0);
  EXPECT_EQ(trace.CountSpans("disambiguate"), 0);
  EXPECT_EQ(trace.CountSpans("prior_only"), 1);

  EXPECT_EQ(Annotation(trace, "degraded_mode"), "prior_only");
  EXPECT_FALSE(Annotation(trace, "degraded_reason").empty());
  EXPECT_EQ(Annotation(trace, "stages_degraded"), "3");

  // The rendered tree is line-per-span with the annotations included.
  std::string rendered = trace.Render();
  EXPECT_NE(rendered.find("extract"), std::string::npos);
  EXPECT_NE(rendered.find("prior_only"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace tenet
