#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace tenet {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BoundedDrawRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(29);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    int64_t rank = rng.NextZipf(10, 1.1);
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, 10);
    ++counts[rank];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  // Every rank has some mass.
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(31);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextZipf(1, 2.0), 0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkedStreamsDecorrelate) {
  Rng parent(41);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a.NextUint64() == child_b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, PickReturnsElement) {
  Rng rng(43);
  std::vector<int> v{5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    int p = rng.Pick(v);
    EXPECT_TRUE(p == 5 || p == 6 || p == 7);
  }
}

}  // namespace
}  // namespace tenet
