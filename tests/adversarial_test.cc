// The adversarial corpus tier (DESIGN.md §13): seed-reproducibility,
// per-class toggles, and the invariants the mutator promises — gold is
// never touched, disabled classes leave documents byte-identical, and the
// mutation stream depends only on (seed, document index).
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/utf8.h"
#include "datasets/adversarial.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"

namespace tenet {
namespace datasets {
namespace {

AdversarialSpec AllOff() {
  AdversarialSpec spec;
  spec.typo_noise = false;
  spec.ocr_noise = false;
  spec.homoglyphs = false;
  spec.near_duplicates = false;
  spec.ambiguity_storm = false;
  spec.degenerate_punctuation = false;
  spec.oversized_tokens = false;
  spec.invalid_utf8 = false;
  spec.oversized_document_bytes = 0;
  return spec;
}

Dataset SmallCorpus() {
  static const datasets::SyntheticWorld* world =
      new datasets::SyntheticWorld(datasets::BuildWorld());
  CorpusGenerator generator(&world->kb_world);
  Rng rng(77);
  DatasetSpec spec = NewsSpec();
  return generator.Generate(spec, rng);
}

TEST(AdversarialTest, DeterministicFromSeed) {
  Dataset clean = SmallCorpus();
  AdversarialSpec spec;
  spec.seed = 99;
  AdversarialMutator a(spec);
  AdversarialMutator b(spec);
  Dataset first = a.Mutate(clean);
  Dataset second = b.Mutate(clean);
  ASSERT_EQ(first.documents.size(), second.documents.size());
  for (size_t i = 0; i < first.documents.size(); ++i) {
    EXPECT_EQ(first.documents[i].text, second.documents[i].text);
  }
  // A different seed produces a different corpus.
  spec.seed = 100;
  Dataset other = AdversarialMutator(spec).Mutate(clean);
  bool any_diff = false;
  for (size_t i = 0; i < first.documents.size(); ++i) {
    if (first.documents[i].text != other.documents[i].text) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AdversarialTest, MutationStreamDependsOnlyOnSeedAndIndex) {
  // Mutating document k alone gives the same bytes as mutating it as part
  // of the dataset: per-document streams, no cross-document coupling.
  Dataset clean = SmallCorpus();
  AdversarialMutator mutator(AdversarialSpec{});
  Dataset all = mutator.Mutate(clean);
  for (size_t i = 0; i < clean.documents.size(); i += 3) {
    Document solo = mutator.Mutate(clean.documents[i], i);
    EXPECT_EQ(solo.text, all.documents[i].text) << "document " << i;
  }
}

TEST(AdversarialTest, AllClassesOffIsIdentity) {
  Dataset clean = SmallCorpus();
  Dataset mutated = AdversarialMutator(AllOff()).Mutate(clean);
  ASSERT_EQ(mutated.documents.size(), clean.documents.size());
  for (size_t i = 0; i < clean.documents.size(); ++i) {
    EXPECT_EQ(mutated.documents[i].text, clean.documents[i].text);
  }
}

TEST(AdversarialTest, GoldIsNeverTouched) {
  Dataset clean = SmallCorpus();
  Dataset mutated = AdversarialMutator(AdversarialSpec{}).Mutate(clean);
  for (size_t i = 0; i < clean.documents.size(); ++i) {
    const Document& before = clean.documents[i];
    const Document& after = mutated.documents[i];
    ASSERT_EQ(before.gold_entities.size(), after.gold_entities.size());
    for (size_t g = 0; g < before.gold_entities.size(); ++g) {
      EXPECT_EQ(before.gold_entities[g].surface,
                after.gold_entities[g].surface);
      EXPECT_EQ(before.gold_entities[g].entity,
                after.gold_entities[g].entity);
    }
  }
}

TEST(AdversarialTest, EachClassTogglesIndependently) {
  Dataset clean = SmallCorpus();
  // Rates at 1.0 so a single class firing is observable on every document.
  struct Case {
    const char* name;
    void (*enable)(AdversarialSpec*);
  };
  const Case cases[] = {
      {"typo", [](AdversarialSpec* s) { s->typo_noise = true;
                                        s->typo_word_rate = 1.0; }},
      {"ocr", [](AdversarialSpec* s) { s->ocr_noise = true;
                                       s->ocr_word_rate = 1.0; }},
      {"homoglyph", [](AdversarialSpec* s) { s->homoglyphs = true;
                                             s->homoglyph_word_rate = 1.0; }},
      {"near_dup", [](AdversarialSpec* s) { s->near_duplicates = true;
                                            s->near_duplicate_doc_rate = 1.0; }},
      {"storm", [](AdversarialSpec* s) { s->ambiguity_storm = true;
                                         s->ambiguity_storm_doc_rate = 1.0; }},
      {"punct", [](AdversarialSpec* s) { s->degenerate_punctuation = true;
                                         s->punctuation_doc_rate = 1.0; }},
      {"oversized_token",
       [](AdversarialSpec* s) { s->oversized_tokens = true;
                                s->oversized_token_doc_rate = 1.0; }},
      {"invalid_utf8", [](AdversarialSpec* s) { s->invalid_utf8 = true;
                                                s->invalid_utf8_doc_rate = 1.0; }},
  };
  for (const Case& c : cases) {
    AdversarialSpec spec = AllOff();
    c.enable(&spec);
    MutationStats stats;
    Dataset mutated = AdversarialMutator(spec).Mutate(clean, &stats);
    const int fired = stats.typo_words + stats.ocr_words +
                      stats.homoglyph_words + stats.near_duplicate_docs +
                      stats.ambiguity_storm_docs + stats.punctuation_docs +
                      stats.oversized_token_docs + stats.invalid_utf8_docs;
    EXPECT_GT(fired, 0) << c.name << " never fired";
    bool changed = false;
    for (size_t i = 0; i < clean.documents.size(); ++i) {
      if (mutated.documents[i].text != clean.documents[i].text) {
        changed = true;
      }
    }
    EXPECT_TRUE(changed) << c.name << " changed nothing";
  }
}

TEST(AdversarialTest, InvalidUtf8ClassActuallyBreaksEncoding) {
  Dataset clean = SmallCorpus();
  AdversarialSpec spec = AllOff();
  spec.invalid_utf8 = true;
  spec.invalid_utf8_doc_rate = 1.0;
  Dataset mutated = AdversarialMutator(spec).Mutate(clean);
  int broken = 0;
  for (const Document& doc : mutated.documents) {
    if (!IsValidUtf8(doc.text)) ++broken;
  }
  EXPECT_EQ(broken, static_cast<int>(mutated.documents.size()));
}

TEST(AdversarialTest, HomoglyphClassStaysValidUtf8) {
  // Homoglyphs exercise the tokenizer's multi-byte path, not the
  // sanitizer: the output must remain well-formed UTF-8.
  Dataset clean = SmallCorpus();
  AdversarialSpec spec = AllOff();
  spec.homoglyphs = true;
  spec.homoglyph_word_rate = 1.0;
  Dataset mutated = AdversarialMutator(spec).Mutate(clean);
  for (const Document& doc : mutated.documents) {
    EXPECT_TRUE(IsValidUtf8(doc.text)) << doc.id;
  }
}

TEST(AdversarialTest, OversizedTokenClassEmitsGiantToken) {
  Dataset clean = SmallCorpus();
  AdversarialSpec spec = AllOff();
  spec.oversized_tokens = true;
  spec.oversized_token_doc_rate = 1.0;
  spec.oversized_token_bytes = 600;
  Dataset mutated = AdversarialMutator(spec).Mutate(clean);
  ASSERT_EQ(mutated.documents.size(), clean.documents.size());
  for (size_t i = 0; i < mutated.documents.size(); ++i) {
    // The appended sentence carries one token of >= 600 bytes.
    EXPECT_GE(mutated.documents[i].text.size(),
              clean.documents[i].text.size() + 600u);
  }
}

TEST(AdversarialTest, OversizedDocumentClassPadsPastThreshold) {
  Dataset clean = SmallCorpus();
  AdversarialSpec spec = AllOff();
  spec.oversized_document_bytes = 4096;
  spec.oversized_document_doc_rate = 1.0;
  MutationStats stats;
  Dataset mutated = AdversarialMutator(spec).Mutate(clean, &stats);
  EXPECT_EQ(stats.oversized_docs, static_cast<int>(clean.documents.size()));
  for (const Document& doc : mutated.documents) {
    EXPECT_GT(doc.text.size(), 4096u) << doc.id;
  }
}

}  // namespace
}  // namespace datasets
}  // namespace tenet
