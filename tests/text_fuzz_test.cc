// Seeded fuzz/property harness for the hostile-input surface (DESIGN.md
// §13): byte-level mutators covering the full 0-255 range and
// structure-aware mutations from datasets::AdversarialMutator drive the
// tokenizer, the guarded extractor, and the full pipeline.  Properties:
// no crash, no hang (a deadline-carrying request returns), output sizes
// bounded by the configured limits, re-tokenization is idempotent, and
// every rejected document is accounted for in tenet_input_rejected_total.
//
// The iteration budget is TENET_FUZZ_ITERS (default keeps tier-1 fast);
// sanitizer CI jobs export a larger budget for the long sweep.
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/timer.h"
#include "common/utf8.h"
#include "core/pipeline.h"
#include "datasets/adversarial.h"
#include "figure_one_world.h"
#include "obs/metrics.h"
#include "text/extraction.h"
#include "text/limits.h"
#include "text/tokenizer.h"

namespace tenet {
namespace text {
namespace {

int FuzzIters(int default_iters) {
  const char* env = std::getenv("TENET_FUZZ_ITERS");
  if (env == nullptr) return default_iters;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : default_iters;
}

// Byte-level document mutator: full 0-255 alphabet with a bias toward the
// structures the pipeline actually parses (words, punctuation, UTF-8 lead
// bytes), so the fuzz corpus reaches past the "all garbage" shallows.
std::string RandomBytes(Rng& rng) {
  static constexpr const char* kFragments[] = {
      "Michael Jordan", "Brooklyn", "machine learning", "the", "visited",
      ". ", ", ", "-", "'", "\"", "(", ")", "!", "?", " ",
      "\xC3\xA9", "\xE2\x82\xAC", "\xF0\x9F\x99\x82",  // valid UTF-8
      "\x80", "\xFF", "\xC0\x80", "\xED\xA0\x80", "\xF5\x80",  // invalid
  };
  std::string out;
  const int pieces = 1 + static_cast<int>(rng.NextUint64(40));
  for (int p = 0; p < pieces; ++p) {
    switch (rng.NextUint64(4)) {
      case 0:  // raw byte, anywhere in 0-255
        out.push_back(static_cast<char>(rng.NextUint64(256)));
        break;
      case 1: {  // a run of one raw byte
        const char b = static_cast<char>(rng.NextUint64(256));
        out.append(1 + rng.NextUint64(24), b);
        break;
      }
      default:
        out += kFragments[rng.NextUint64(std::size(kFragments))];
        break;
    }
  }
  return out;
}

int64_t TotalRejected() {
  int64_t total = 0;
  for (const char* reason :
       {"document_bytes", "invalid_utf8", "tokenize_fault", "extract_fault"}) {
    total += obs::MetricsRegistry::Default()
                 ->GetCounter("tenet_input_rejected_total", "",
                              obs::LabelPair("reason", reason))
                 ->Value();
  }
  return total;
}

std::vector<std::string> TokenTexts(const TokenizedDocument& doc) {
  std::vector<std::string> out;
  out.reserve(doc.tokens.size());
  for (const Token& t : doc.tokens) out.push_back(t.t);
  return out;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (const std::string& t : tokens) {
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out;
}

void CheckTokenizerProperties(const std::string& input,
                              const TextLimits& limits) {
  TextGuardReport report;
  TokenizedDocument doc = Tokenize(input, limits, &report);
  ASSERT_LE(static_cast<int>(doc.tokens.size()), limits.max_tokens);
  for (const Token& t : doc.tokens) {
    ASSERT_FALSE(t.t.empty());
    ASSERT_LE(t.t.size(), limits.max_token_bytes);
  }
  // Idempotence: the emitted token stream, re-joined on spaces, tokenizes
  // to itself.  (Only meaningful on sanitized text — invalid bytes are
  // dropped, not emitted, so the property trivially holds there too.)
  const std::vector<std::string> tokens = TokenTexts(doc);
  TokenizedDocument again = Tokenize(JoinTokens(tokens), limits, nullptr);
  ASSERT_EQ(TokenTexts(again), tokens) << "re-tokenization not idempotent";
}

TEST(TextFuzzTest, ByteLevelTokenizerAndExtractor) {
  testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  Extractor extractor(&world.gazetteer);
  const int iters = FuzzIters(400);
  Rng rng(0xF0221);
  TextLimits generous;
  TextLimits tight;
  tight.max_token_bytes = 12;
  tight.max_tokens = 48;
  tight.max_mentions = 4;
  tight.max_relations = 4;
  const int64_t rejected_before = TotalRejected();
  int64_t rejections_seen = 0;
  for (int i = 0; i < iters; ++i) {
    const std::string input = RandomBytes(rng);
    CheckTokenizerProperties(SanitizeUtf8(input), generous);
    CheckTokenizerProperties(SanitizeUtf8(input), tight);
    for (const TextLimits* limits : {&generous, &tight}) {
      TextGuardReport report;
      Result<ExtractionResult> result =
          extractor.ExtractFromText(input, *limits, &report);
      if (!result.ok()) {
        ++rejections_seen;
        continue;
      }
      ASSERT_LE(static_cast<int>(result->mentions.size()),
                limits->max_mentions);
      ASSERT_LE(static_cast<int>(result->relations.size()),
                limits->max_relations);
      ASSERT_EQ(result->link_after.size(), result->mentions.size());
    }
  }
  // Accounting: every rejection this loop observed (and only those) landed
  // in tenet_input_rejected_total.
  EXPECT_EQ(TotalRejected() - rejected_before, rejections_seen);
}

TEST(TextFuzzTest, ByteLevelFullPipeline) {
  testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  core::TenetOptions options;
  options.limits.max_token_bytes = 64;
  options.limits.max_tokens = 512;
  options.limits.max_mentions = 32;
  core::TenetPipeline pipeline(&world.kb, &world.embeddings,
                               &world.gazetteer, options);
  const int iters = FuzzIters(150);
  Rng rng(0xF0222);
  for (int i = 0; i < iters; ++i) {
    const std::string input = RandomBytes(rng);
    WallTimer timer;
    Result<core::LinkingResult> result = pipeline.LinkDocument(
        input, core::LinkContext::WithDeadline(Deadline::AfterMillis(250)));
    // No hang: a deadline-carrying request must return promptly even on
    // byte soup (generous bound — sanitizers are slow).
    ASSERT_LT(timer.ElapsedMillis(), 30000.0) << "pipeline hung";
    if (!result.ok()) continue;  // guardrail rejection is a valid outcome
    // Bounded output: isolated mentions come from the capped mention list.
    ASSERT_LE(result->isolated_mentions.size(), 32u);
    for (const core::LinkedConcept& link : result->links) {
      ASSERT_FALSE(link.surface.empty());
    }
  }
}

TEST(TextFuzzTest, StructureAwareAdversarialPipeline) {
  testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  core::TenetOptions options;
  core::TenetPipeline pipeline(&world.kb, &world.embeddings,
                               &world.gazetteer, options);

  datasets::AdversarialSpec spec;
  spec.seed = 0xADF0;
  spec.typo_word_rate = 0.25;
  spec.homoglyph_word_rate = 0.2;
  spec.invalid_utf8_doc_rate = 0.6;
  spec.oversized_token_doc_rate = 0.5;
  spec.punctuation_doc_rate = 0.6;
  datasets::AdversarialMutator mutator(spec);

  datasets::Document base;
  base.id = "fuzz";
  base.text =
      "Michael Jordan studies machine learning. Michael Jordan lives in "
      "Brooklyn. The professor of machine learning visited Brooklyn.";

  const int iters = FuzzIters(150);
  for (int i = 0; i < iters; ++i) {
    datasets::Document doc = mutator.Mutate(base, static_cast<uint64_t>(i));
    WallTimer timer;
    Result<core::LinkingResult> result = pipeline.LinkDocument(
        doc.text, core::LinkContext::WithDeadline(Deadline::AfterMillis(250)));
    ASSERT_LT(timer.ElapsedMillis(), 30000.0) << "pipeline hung";
    if (!result.ok()) continue;
    for (const core::LinkedConcept& link : result->links) {
      ASSERT_FALSE(link.surface.empty());
    }
  }
}

TEST(TextFuzzTest, DeterministicAcrossRuns) {
  // The harness itself must be reproducible: the same seed and iteration
  // index always produce the same fuzz input.
  Rng a(0xF0221);
  Rng b(0xF0221);
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(RandomBytes(a), RandomBytes(b)) << "iteration " << i;
  }
}

}  // namespace
}  // namespace text
}  // namespace tenet
