#include "core/tree_cover.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/canopy.h"
#include "core/pipeline.h"
#include "figure_one_world.h"
#include "text/extraction.h"

namespace tenet {
namespace core {
namespace {

constexpr const char* kFigureOneText =
    "Michael Jordan studies artificial intelligence and machine learning. "
    "He was awarded as the Fellow of the AAAS. "
    "He visited Brooklyn in April 2019.";

CoherenceGraph BuildFigureOneGraph(
    const testing_support::FigureOneWorld& world) {
  text::Extractor extractor(&world.gazetteer);
  MentionSet mentions =
      BuildMentionSet(extractor.ExtractFromText(kFigureOneText),
                      &world.gazetteer);
  CoherenceGraphBuilder builder(&world.kb, &world.embeddings);
  return builder.Build(std::move(mentions));
}

TEST(CoherenceGraphTest, FigureOneStructure) {
  testing_support::FigureOneWorld world = testing_support::BuildFigureOneWorld();
  CoherenceGraph cg = BuildFigureOneGraph(world);

  ASSERT_GT(cg.num_mentions(), 0);
  ASSERT_GT(cg.num_concept_nodes(), 0);

  // "Michael Jordan" has two candidates, ordered player-first by prior.
  int mj = -1;
  for (int m = 0; m < cg.num_mentions(); ++m) {
    if (cg.mentions().mention(m).surface == "Michael Jordan") mj = m;
  }
  ASSERT_GE(mj, 0);
  const std::vector<int>& candidates = cg.ConceptNodesOfMention(mj);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(cg.concept_node(candidates[0]).ref.id, world.player);
  EXPECT_NEAR(cg.concept_node(candidates[0]).prior, 0.7, 1e-9);
  // Mention-candidate edge weight = 1 - prior (Eq. 1).
  EXPECT_NEAR(cg.graph().EdgeWeight(mj, candidates[0], -1.0), 0.3, 1e-9);
  EXPECT_NEAR(cg.graph().EdgeWeight(mj, candidates[1], -1.0), 0.7, 1e-9);

  // No edge between two candidates of the same mention.
  EXPECT_FALSE(cg.graph().HasEdge(candidates[0], candidates[1]));

  // Every concept node belongs to its mention.
  for (int m = 0; m < cg.num_mentions(); ++m) {
    for (int node : cg.ConceptNodesOfMention(m)) {
      EXPECT_EQ(cg.MentionOfNode(node), m);
      EXPECT_FALSE(cg.IsMentionNode(node));
    }
  }
}

TEST(CoherenceGraphTest, SentenceRulesForPredicateEdges) {
  testing_support::FigureOneWorld world = testing_support::BuildFigureOneWorld();
  CoherenceGraph cg = BuildFigureOneGraph(world);

  // Locate the relational mentions "study" (sentence 0) and "visit"
  // (sentence 2).
  int study = -1;
  int visit = -1;
  for (int m = 0; m < cg.num_mentions(); ++m) {
    const Mention& mention = cg.mentions().mention(m);
    if (!mention.is_relational()) continue;
    if (mention.surface == "study") study = m;
    if (mention.surface == "visit") visit = m;
  }
  ASSERT_GE(study, 0);
  ASSERT_GE(visit, 0);

  // Predicates of different sentences are never connected (Eq. 4).
  for (int u : cg.ConceptNodesOfMention(study)) {
    for (int v : cg.ConceptNodesOfMention(visit)) {
      EXPECT_FALSE(cg.graph().HasEdge(u, v));
    }
  }

  // Entity-predicate edges require a shared sentence (Eq. 5): candidates of
  // "Brooklyn" (sentence 2) connect to "visit" but not to "study".
  int brooklyn = -1;
  for (int m = 0; m < cg.num_mentions(); ++m) {
    if (cg.mentions().mention(m).surface == "Brooklyn") brooklyn = m;
  }
  ASSERT_GE(brooklyn, 0);
  for (int u : cg.ConceptNodesOfMention(brooklyn)) {
    for (int v : cg.ConceptNodesOfMention(visit)) {
      EXPECT_TRUE(cg.graph().HasEdge(u, v));
    }
    for (int v : cg.ConceptNodesOfMention(study)) {
      EXPECT_FALSE(cg.graph().HasEdge(u, v));
    }
  }
}

TEST(TreeCoverTest, SolveSucceedsAtPaperBound) {
  testing_support::FigureOneWorld world = testing_support::BuildFigureOneWorld();
  CoherenceGraph cg = BuildFigureOneGraph(world);
  TreeCoverSolver solver;
  double bound = cg.num_mentions();  // B = |M|
  TreeCoverStats stats;
  Result<TreeCover> cover = solver.Solve(cg, bound, &stats);
  ASSERT_TRUE(cover.ok()) << cover.status();

  // One tree per mention, rooted correctly (Definition 6).
  ASSERT_EQ(static_cast<int>(cover->trees.size()), cg.num_mentions());
  for (int m = 0; m < cg.num_mentions(); ++m) {
    EXPECT_EQ(cover->trees[m].root, m);
    EXPECT_FALSE(cover->trees[m].nodes.empty());
    EXPECT_EQ(cover->trees[m].nodes.front(), m);
  }

  // Cover cost bounded by 4B (Lemma 4.2).
  EXPECT_LE(cover->Cost(), 4.0 * bound + 1e-9);

  // Every graph node appears in at least one tree (Definition 6).
  std::set<int> covered;
  for (const CoverTree& t : cover->trees) {
    covered.insert(t.nodes.begin(), t.nodes.end());
  }
  EXPECT_EQ(static_cast<int>(covered.size()), cg.num_nodes());
}

TEST(TreeCoverTest, TinyBoundYieldsFailureWarning) {
  testing_support::FigureOneWorld world = testing_support::BuildFigureOneWorld();
  CoherenceGraph cg = BuildFigureOneGraph(world);
  TreeCoverSolver solver;
  Result<TreeCover> cover = solver.Solve(cg, 1e-6);
  ASSERT_FALSE(cover.ok());
  EXPECT_TRUE(cover.status().IsBoundTooSmall());
}

TEST(TreeCoverTest, InvalidBoundRejected) {
  testing_support::FigureOneWorld world = testing_support::BuildFigureOneWorld();
  CoherenceGraph cg = BuildFigureOneGraph(world);
  TreeCoverSolver solver;
  EXPECT_TRUE(solver.Solve(cg, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(solver.Solve(cg, -1.0).status().IsInvalidArgument());
}

TEST(TreeCoverTest, IsolatedMentionsBecomeSingletons) {
  testing_support::FigureOneWorld world = testing_support::BuildFigureOneWorld();
  text::Extractor extractor(&world.gazetteer);
  // "April 2019" is a fresh phrase with no KB candidates (the extractor
  // absorbs the trailing number into the capitalized run).
  MentionSet mentions = BuildMentionSet(
      extractor.ExtractFromText("He visited Brooklyn in April 2019."),
      &world.gazetteer);
  CoherenceGraphBuilder builder(&world.kb, &world.embeddings);
  CoherenceGraph cg = builder.Build(std::move(mentions));

  int april = -1;
  for (int m = 0; m < cg.num_mentions(); ++m) {
    if (cg.mentions().mention(m).surface == "April 2019") april = m;
  }
  ASSERT_GE(april, 0);
  EXPECT_TRUE(cg.ConceptNodesOfMention(april).empty());

  TreeCoverSolver solver;
  Result<TreeCover> cover = solver.Solve(cg, cg.num_mentions());
  ASSERT_TRUE(cover.ok()) << cover.status();
  EXPECT_TRUE(cover->trees[april].edges.empty());
  EXPECT_EQ(cover->trees[april].nodes, std::vector<int>{april});
}

TEST(TreeCoverTest, MinimalBoundSearch) {
  testing_support::FigureOneWorld world = testing_support::BuildFigureOneWorld();
  CoherenceGraph cg = BuildFigureOneGraph(world);
  TreeCoverSolver solver;
  Result<std::pair<double, TreeCover>> minimal =
      SolveWithMinimalBound(solver, cg, /*initial_bound=*/1.0);
  ASSERT_TRUE(minimal.ok()) << minimal.status();
  double b_star = minimal->first;
  EXPECT_GT(b_star, 0.0);
  // Solving at the found bound succeeds; at 60% of it fails (the search
  // tolerance is 1%).
  EXPECT_TRUE(solver.Solve(cg, b_star).ok());
  Result<TreeCover> below = solver.Solve(cg, 0.6 * b_star);
  if (!below.ok()) {
    EXPECT_TRUE(below.status().IsBoundTooSmall());
  }
  // Cost at minimal bound also satisfies the 4B guarantee.
  EXPECT_LE(minimal->second.Cost(), 4.0 * b_star + 1e-9);
}

TEST(TreeCoverTest, CostMonotoneUnderGenerousBound) {
  testing_support::FigureOneWorld world = testing_support::BuildFigureOneWorld();
  CoherenceGraph cg = BuildFigureOneGraph(world);
  TreeCoverSolver solver;
  Result<TreeCover> tight = solver.Solve(cg, cg.num_mentions());
  Result<TreeCover> loose = solver.Solve(cg, 10.0 * cg.num_mentions());
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_GT(loose->TotalEdges(), 0);
}

}  // namespace
}  // namespace core
}  // namespace tenet
