#include "common/result.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tenet {
namespace {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(ParsePositive(3).value_or(42), 3);
  EXPECT_EQ(ParsePositive(-3).value_or(42), 42);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Doubled(int x) {
  TENET_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  Result<int> good = Doubled(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 8);

  Result<int> bad = Doubled(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MacrosPreserveSentinelCodes) {
  // The degradation ladder keys on exact codes after several propagation
  // hops; TENET_ASSIGN_OR_RETURN / TENET_RETURN_IF_ERROR must never
  // collapse them into a generic error.
  auto hop = [](StatusCode code) -> Result<int> {
    auto inner = [code]() -> Result<int> {
      return Status(code, "sentinel");
    };
    auto middle = [&inner]() -> Result<int> {
      TENET_ASSIGN_OR_RETURN(int v, inner());
      return v;
    };
    auto outer = [&middle]() -> Status {
      TENET_ASSIGN_OR_RETURN(int v, middle());
      (void)v;
      return Status::Ok();
    };
    Status s = outer();
    TENET_RETURN_IF_ERROR(s);
    return 0;
  };
  EXPECT_EQ(hop(StatusCode::kBoundTooSmall).status().code(),
            StatusCode::kBoundTooSmall);
  EXPECT_EQ(hop(StatusCode::kDeadlineExceeded).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(hop(StatusCode::kDataLoss).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(hop(StatusCode::kDataLoss).status().message(), "sentinel");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::Internal("nope");
  EXPECT_DEATH({ (void)r.value(); }, "Result::value on error");
}

}  // namespace
}  // namespace tenet
