// The vectorized coherence kernel's contract (DESIGN.md §10): the DotUnit
// reduction, the unit-row store, the gathered/tiled batch path and the
// similarity cache must all produce the SAME numbers — bit-identical edge
// weights, identical links, identical PRF — whatever the kernel
// configuration.  The golden equivalence tests here are what lets the
// performance work claim "numerically invisible".
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "baselines/tenet_linker.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/coherence_graph.h"
#include "core/mention.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "embedding/dot_kernel.h"
#include "embedding/embedding_store.h"
#include "embedding/similarity_cache.h"
#include "eval/harness.h"
#include "text/extraction.h"

namespace tenet {
namespace core {
namespace {

const datasets::SyntheticWorld& World() {
  static const datasets::SyntheticWorld* world =
      new datasets::SyntheticWorld(datasets::BuildWorld());
  return *world;
}

datasets::Dataset SmallNews(uint64_t seed) {
  datasets::CorpusGenerator gen(&World().kb_world);
  Rng rng(seed);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 8;
  return gen.Generate(spec, rng);
}

MentionSet MentionsOf(const std::string& text) {
  text::Extractor extractor(&World().gazetteer());
  return BuildMentionSet(extractor.ExtractFromText(text),
                         &World().gazetteer());
}

// --- The reduction itself -------------------------------------------------

TEST(DotKernelTest, MatchesDoubleReference) {
  Rng rng(7);
  for (int dim : {1, 2, 7, 8, 9, 15, 16, 17, 64, 127, 128, 129}) {
    std::vector<double> a(dim), b(dim);
    for (int d = 0; d < dim; ++d) {
      a[d] = rng.NextDouble(-1.0, 1.0);
      b[d] = rng.NextDouble(-1.0, 1.0);
    }
    double reference = 0.0;
    for (int d = 0; d < dim; ++d) reference += a[d] * b[d];
    EXPECT_NEAR(embedding::DotUnit(a.data(), b.data(), dim), reference,
                1e-12 * (1.0 + std::abs(reference)))
        << "dim " << dim;
  }
}

TEST(DotKernelTest, ClampCosineBounds) {
  EXPECT_EQ(embedding::ClampCosine(1.0000001), 1.0);
  EXPECT_EQ(embedding::ClampCosine(-1.0000001), -1.0);
  EXPECT_EQ(embedding::ClampCosine(0.25), 0.25);
}

// --- Unit rows and the gather --------------------------------------------

embedding::EmbeddingStore SmallStore() {
  embedding::EmbeddingStore store(/*dimension=*/24, /*num_entities=*/6,
                                  /*num_predicates=*/2);
  Rng rng(11);
  for (int e = 0; e < 5; ++e) {  // entity 5 stays the zero vector
    for (float& x : store.MutableVector(kb::ConceptRef::Entity(e))) {
      x = static_cast<float>(rng.NextDouble(-2.0, 2.0));
    }
  }
  for (int p = 0; p < 2; ++p) {
    for (float& x : store.MutableVector(kb::ConceptRef::Predicate(p))) {
      x = static_cast<float>(rng.NextDouble(-2.0, 2.0));
    }
  }
  store.Finalize();
  return store;
}

TEST(EmbeddingStoreKernelTest, UnitRowsHaveUnitNorm) {
  embedding::EmbeddingStore store = SmallStore();
  for (int e = 0; e < 5; ++e) {
    std::span<const double> unit =
        store.UnitVector(kb::ConceptRef::Entity(e));
    double norm = 0.0;
    for (double x : unit) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-12) << "entity " << e;
    EXPECT_NEAR(store.Cosine(kb::ConceptRef::Entity(e),
                             kb::ConceptRef::Entity(e)),
                1.0, 1e-12);
  }
}

TEST(EmbeddingStoreKernelTest, ZeroRowsStayZeroAndCosineZero) {
  embedding::EmbeddingStore store = SmallStore();
  for (double x : store.UnitVector(kb::ConceptRef::Entity(5))) {
    EXPECT_EQ(x, 0.0);
  }
  EXPECT_EQ(store.Cosine(kb::ConceptRef::Entity(5), kb::ConceptRef::Entity(0)),
            0.0);
}

TEST(EmbeddingStoreKernelTest, GatherUnitCopiesUnitRowsVerbatim) {
  embedding::EmbeddingStore store = SmallStore();
  std::vector<kb::ConceptRef> refs = {
      kb::ConceptRef::Entity(3), kb::ConceptRef::Predicate(1),
      kb::ConceptRef::Entity(5), kb::ConceptRef::Entity(0)};
  std::vector<double> rows(refs.size() * store.dimension());
  store.GatherUnit(refs, rows.data());
  for (size_t i = 0; i < refs.size(); ++i) {
    std::span<const double> unit = store.UnitVector(refs[i]);
    EXPECT_EQ(std::memcmp(rows.data() + i * store.dimension(), unit.data(),
                          store.dimension() * sizeof(double)),
              0)
        << "row " << i;
  }
}

TEST(EmbeddingStoreKernelTest, GatherIsOneDependencyOperation) {
  datasets::Dataset news = SmallNews(46);
  CoherenceGraphBuilder builder(&World().kb(), &World().embeddings);
  FaultInjector faults(/*seed=*/5);
  int builds = 0;
  for (const datasets::Document& doc : news.documents) {
    MentionSet mentions = MentionsOf(doc.text);
    if (mentions.num_mentions() == 0) continue;
    CoherenceGraph cg = builder.Build(std::move(mentions));
    if (cg.num_concept_nodes() > 0) ++builds;
  }
  ASSERT_GT(builds, 0);
  // One gather — hence one fault-point hit — per document with candidates,
  // instead of one per concept pair.
  EXPECT_EQ(faults.HitCount("embedding/fetch"), builds);
}

// --- Golden equivalence ---------------------------------------------------

TEST(CoherenceKernelGoldenTest, EdgeListsAreBitIdenticalAcrossConfigs) {
  datasets::Dataset news = SmallNews(47);

  CoherenceGraphOptions legacy_options;
  legacy_options.use_gather_kernel = false;
  CoherenceGraphBuilder legacy(&World().kb(), &World().embeddings,
                               legacy_options);
  CoherenceGraphBuilder gather_serial(&World().kb(), &World().embeddings);

  ThreadPool pool(ThreadPool::Options{.num_threads = 3});
  embedding::SimilarityCache cache;
  CoherenceGraphOptions pooled_options;
  pooled_options.pool = &pool;
  pooled_options.similarity_cache = &cache;
  CoherenceGraphBuilder pooled(&World().kb(), &World().embeddings,
                               pooled_options);

  int compared_edges = 0;
  for (int pass = 0; pass < 2; ++pass) {  // pass 2 runs with a warm cache
    for (const datasets::Document& doc : news.documents) {
      CoherenceGraph a = legacy.Build(MentionsOf(doc.text));
      CoherenceGraph b = gather_serial.Build(MentionsOf(doc.text));
      CoherenceGraph c = pooled.Build(MentionsOf(doc.text));
      ASSERT_EQ(a.graph().num_edges(), b.graph().num_edges());
      ASSERT_EQ(a.graph().num_edges(), c.graph().num_edges());
      for (int e = 0; e < a.graph().num_edges(); ++e) {
        const graph::Edge& ea = a.graph().edges()[e];
        const graph::Edge& eb = b.graph().edges()[e];
        const graph::Edge& ec = c.graph().edges()[e];
        ASSERT_EQ(ea.u, eb.u);
        ASSERT_EQ(ea.v, eb.v);
        ASSERT_EQ(ea.weight, eb.weight);  // bitwise: same reduction
        ASSERT_EQ(ea.u, ec.u);
        ASSERT_EQ(ea.v, ec.v);
        ASSERT_EQ(ea.weight, ec.weight);
        ++compared_edges;
      }
    }
  }
  EXPECT_GT(compared_edges, 100);
  embedding::SimilarityCache::Stats stats = cache.GetStats();
  EXPECT_GT(stats.hits, 0) << "the warm pass should have hit the cache";
}

TEST(CoherenceKernelGoldenTest, EndToEndPrfIsByteIdentical) {
  datasets::Dataset news = SmallNews(48);

  CoherenceGraphOptions legacy_options;
  legacy_options.use_gather_kernel = false;
  ThreadPool pool(ThreadPool::Options{.num_threads = 3});
  embedding::SimilarityCache cache;
  CoherenceGraphOptions pooled_options;
  pooled_options.pool = &pool;
  pooled_options.similarity_cache = &cache;

  baselines::TenetLinker legacy(baselines::BaselineSubstrate{
      &World().kb(), &World().embeddings, &World().gazetteer(),
      legacy_options, {}});
  baselines::TenetLinker vectorized(baselines::BaselineSubstrate{
      &World().kb(), &World().embeddings, &World().gazetteer(), {}, {}});
  baselines::TenetLinker cached(baselines::BaselineSubstrate{
      &World().kb(), &World().embeddings, &World().gazetteer(),
      pooled_options, {}});

  eval::SystemScores a = eval::EvaluateEndToEnd(legacy, news);
  eval::SystemScores b = eval::EvaluateEndToEnd(vectorized, news);
  // Two cached runs: cold cache, then warm (every pair already resident).
  eval::SystemScores c_cold = eval::EvaluateEndToEnd(cached, news);
  eval::SystemScores c_warm = eval::EvaluateEndToEnd(cached, news);

  for (const eval::SystemScores* s : {&b, &c_cold, &c_warm}) {
    EXPECT_EQ(a.entity_linking.tp, s->entity_linking.tp);
    EXPECT_EQ(a.entity_linking.fp, s->entity_linking.fp);
    EXPECT_EQ(a.entity_linking.fn, s->entity_linking.fn);
    EXPECT_EQ(a.relation_linking.tp, s->relation_linking.tp);
    EXPECT_EQ(a.relation_linking.fp, s->relation_linking.fp);
    EXPECT_EQ(a.relation_linking.fn, s->relation_linking.fn);
    EXPECT_EQ(a.mention_detection.tp, s->mention_detection.tp);
    EXPECT_EQ(a.mention_detection.fp, s->mention_detection.fp);
    EXPECT_EQ(a.mention_detection.fn, s->mention_detection.fn);
    // PRF is a pure function of the counts; == on the doubles is the
    // byte-identical claim.
    EXPECT_EQ(a.entity_linking.F1(), s->entity_linking.F1());
    EXPECT_EQ(a.relation_linking.F1(), s->relation_linking.F1());
    EXPECT_EQ(s->failed_documents, 0);
  }
  EXPECT_GT(cache.GetStats().hits, 0);
}

}  // namespace
}  // namespace core
}  // namespace tenet
