#include "kb/synthetic_kb.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tenet {
namespace kb {
namespace {

SyntheticKb Generate(uint64_t seed, SyntheticKbOptions options = {}) {
  Rng rng(seed);
  return SyntheticKbGenerator(options).Generate(rng);
}

TEST(SyntheticKbTest, SizesMatchOptions) {
  SyntheticKbOptions options;
  options.num_domains = 4;
  options.entities_per_domain = 20;
  options.composite_entities_per_domain = 3;
  options.num_predicates = 12;
  SyntheticKb world = Generate(7, options);

  EXPECT_TRUE(world.kb.finalized());
  EXPECT_GE(world.kb.num_entities(), 4 * 20);
  EXPECT_LE(world.kb.num_entities(), 4 * 23);
  EXPECT_EQ(world.kb.num_predicates(), 12);
  EXPECT_EQ(static_cast<int>(world.entities_by_domain.size()), 4);
  EXPECT_EQ(static_cast<int>(world.entity_surfaces.size()),
            world.kb.num_entities());
  EXPECT_EQ(static_cast<int>(world.predicate_surfaces.size()), 12);
  EXPECT_GT(world.kb.num_facts(), 0);
}

TEST(SyntheticKbTest, DeterministicForSameSeed) {
  SyntheticKb a = Generate(99);
  SyntheticKb b = Generate(99);
  ASSERT_EQ(a.kb.num_entities(), b.kb.num_entities());
  for (EntityId id = 0; id < a.kb.num_entities(); ++id) {
    EXPECT_EQ(a.kb.entity(id).label, b.kb.entity(id).label);
    EXPECT_EQ(a.kb.entity(id).type, b.kb.entity(id).type);
  }
  ASSERT_EQ(a.kb.num_facts(), b.kb.num_facts());
}

TEST(SyntheticKbTest, LabelsAreUnique) {
  SyntheticKb world = Generate(11);
  std::set<std::string> labels;
  for (EntityId id = 0; id < world.kb.num_entities(); ++id) {
    EXPECT_TRUE(labels.insert(world.kb.entity(id).label).second)
        << "duplicate label " << world.kb.entity(id).label;
  }
}

TEST(SyntheticKbTest, AmbiguousAliasesExist) {
  SyntheticKb world = Generate(13);
  // At least one surface must have >= 2 candidate entities (the Michael
  // Jordan scenario) given the default 35% ambiguous-alias fraction.
  int ambiguous_surfaces = 0;
  for (EntityId id = 0; id < world.kb.num_entities(); ++id) {
    std::vector<EntityCandidate> candidates = world.kb.CandidateEntities(
        world.kb.entity(id).label, std::nullopt, 10);
    if (candidates.size() >= 2) ++ambiguous_surfaces;
  }
  EXPECT_GT(ambiguous_surfaces, 10);
}

TEST(SyntheticKbTest, EverySurfaceResolvesToItsEntity) {
  SyntheticKb world = Generate(17);
  for (EntityId id = 0; id < world.kb.num_entities(); ++id) {
    for (const std::string& surface : world.entity_surfaces[id]) {
      std::vector<EntityCandidate> candidates =
          world.kb.CandidateEntities(surface, std::nullopt, 50);
      bool found = false;
      for (const EntityCandidate& c : candidates) {
        if (c.entity == id) found = true;
      }
      EXPECT_TRUE(found) << "surface '" << surface
                         << "' does not resolve to entity " << id;
    }
  }
}

TEST(SyntheticKbTest, PredicateSurfacesResolve) {
  SyntheticKb world = Generate(19);
  for (PredicateId pid = 0; pid < world.kb.num_predicates(); ++pid) {
    for (const std::string& surface : world.predicate_surfaces[pid]) {
      std::vector<PredicateCandidate> candidates =
          world.kb.CandidatePredicates(surface, 50);
      bool found = false;
      for (const PredicateCandidate& c : candidates) {
        if (c.predicate == pid) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(SyntheticKbTest, GazetteerCoversEntitySurfaces) {
  SyntheticKb world = Generate(23);
  for (EntityId id = 0; id < world.kb.num_entities(); ++id) {
    for (const std::string& surface : world.entity_surfaces[id]) {
      EXPECT_TRUE(world.gazetteer.Contains(surface));
    }
  }
  // Topics are lowercase mentions.
  bool found_topic = false;
  for (EntityId id = 0; id < world.kb.num_entities(); ++id) {
    if (world.kb.entity(id).type == EntityType::kTopic) {
      found_topic = true;
      EXPECT_TRUE(
          world.gazetteer.IsLowercaseMention(world.kb.entity(id).label));
    }
  }
  EXPECT_TRUE(found_topic);
}

TEST(SyntheticKbTest, CompositeEntitiesContainConnectors) {
  SyntheticKbOptions options;
  options.composite_entities_per_domain = 8;
  SyntheticKb world = Generate(29, options);
  int composites = 0;
  for (EntityId id = 0; id < world.kb.num_entities(); ++id) {
    const std::string& label = world.kb.entity(id).label;
    if (label.find(" of ") != std::string::npos ||
        label.find(" on the ") != std::string::npos ||
        label.find(" and ") != std::string::npos ||
        label.find(": ") != std::string::npos) {
      ++composites;
    }
  }
  EXPECT_GT(composites, 10);
}

TEST(SyntheticKbTest, FactsMostlyIntraDomain) {
  SyntheticKb world = Generate(31);
  int intra = 0;
  int total = 0;
  for (const Triple& t : world.kb.facts()) {
    if (!t.object_is_entity) continue;
    ++total;
    if (world.kb.entity(t.subject).domain ==
        world.kb.entity(t.object_entity).domain) {
      ++intra;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(intra) / total, 0.7);
}

}  // namespace
}  // namespace kb
}  // namespace tenet
