// A hand-computable walkthrough of Algorithm 1 in the spirit of the
// paper's Figure 2: a small coherence graph whose MST, decomposition,
// splitting and matching steps can be verified against manual arithmetic.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/canopy.h"
#include "core/coherence_graph.h"
#include "core/tree_cover.h"
#include "embedding/embedding_store.h"
#include "kb/knowledge_base.h"

namespace tenet {
namespace core {
namespace {

// World: two mentions.
//   m0 "Alpha":  candidates A1 (prior 0.8), A2 (prior 0.2)
//   m1 "Beta":   candidate  B1 (prior 1.0)
// Embeddings: A1 and B1 on the same axis (cos 1 -> distance 0); A2
// orthogonal to both (distance 1).
struct Walkthrough {
  kb::KnowledgeBase kb;
  embedding::EmbeddingStore embeddings{2, 0, 0};
  kb::EntityId a1, a2, b1;

  Walkthrough() {
    a1 = kb.AddEntity("Alpha One", kb::EntityType::kOther, 0, 8.0);
    a2 = kb.AddEntity("Alpha Two", kb::EntityType::kOther, 1, 2.0);
    b1 = kb.AddEntity("Beta", kb::EntityType::kOther, 0, 1.0);
    kb.AddEntityAlias(a1, "Alpha", 8.0);
    kb.AddEntityAlias(a2, "Alpha", 2.0);
    kb.Finalize();
    embeddings = embedding::EmbeddingStore(2, 3, 0);
    embeddings.MutableVector(kb::ConceptRef::Entity(a1))[0] = 1.0f;
    embeddings.MutableVector(kb::ConceptRef::Entity(a2))[1] = 1.0f;
    embeddings.MutableVector(kb::ConceptRef::Entity(b1))[0] = 1.0f;
    embeddings.Finalize();
  }

  CoherenceGraph BuildGraph() {
    MentionSet set;
    for (const char* surface : {"Alpha", "Beta"}) {
      Mention mention;
      mention.kind = Mention::Kind::kNoun;
      mention.surface = surface;
      mention.sentences = {0};
      mention.group = set.num_groups();
      int id = set.num_mentions();
      set.mentions.push_back(std::move(mention));
      MentionGroup group;
      group.members = {id};
      group.short_mentions = {id};
      group.canopies = {Canopy{{id}}};
      set.groups.push_back(std::move(group));
    }
    CoherenceGraphBuilder builder(&kb, &embeddings);
    return builder.Build(std::move(set));
  }
};

// Node ids in the coherence graph: 0 = m0, 1 = m1, then concept nodes in
// candidate order: 2 = A1 (prior .8), 3 = A2 (prior .2), 4 = B1.
TEST(TreeCoverWalkthroughTest, GraphWeightsMatchHandComputation) {
  Walkthrough w;
  CoherenceGraph cg = w.BuildGraph();
  ASSERT_EQ(cg.num_mentions(), 2);
  ASSERT_EQ(cg.num_concept_nodes(), 3);

  EXPECT_NEAR(cg.graph().EdgeWeight(0, 2, -1), 0.2, 1e-9);  // 1 - 0.8
  EXPECT_NEAR(cg.graph().EdgeWeight(0, 3, -1), 0.8, 1e-9);  // 1 - 0.2
  EXPECT_NEAR(cg.graph().EdgeWeight(1, 4, -1), 0.0, 1e-9);  // 1 - 1.0
  // Concept-concept distances: 1 - cos.
  EXPECT_NEAR(cg.graph().EdgeWeight(2, 4, -1), 0.0, 1e-9);  // same axis
  EXPECT_NEAR(cg.graph().EdgeWeight(3, 4, -1), 1.0, 1e-9);  // orthogonal
  // No edge between candidates of the same mention.
  EXPECT_FALSE(cg.graph().HasEdge(2, 3));
}

TEST(TreeCoverWalkthroughTest, MstAndDecompositionAtGenerousBound) {
  Walkthrough w;
  CoherenceGraph cg = w.BuildGraph();
  TreeCoverSolver solver;
  TreeCoverStats stats;
  Result<TreeCover> cover = solver.Solve(cg, /*bound=*/2.0, &stats);
  ASSERT_TRUE(cover.ok()) << cover.status();

  // MST over {r, A1, A2, B1}: edges r-B1 (0), B1-A1 (0), r-A1 (0.2),
  // A1... Kruskal picks the three cheapest acyclic: r-B1 (0), A1-B1 (0),
  // r-A2 contracted from m0-A2 (0.8) [A2's only light connection is via
  // its mention edge; A2-B1 costs 1.0 > 0.8].
  EXPECT_EQ(stats.mst_edges, 3);
  EXPECT_EQ(stats.pruned_edges, 0);
  EXPECT_EQ(stats.subtrees, 0);  // total weight 0.8 <= B = 2

  // Decomposition: B1's component (B1 + A1) hangs off m1 (weight-0 star
  // edge); A2 hangs off m0 (0.8).  Total cover cost = max(0.8, 0.0) = 0.8.
  EXPECT_NEAR(cover->Cost(), 0.8, 1e-9);

  // Every node covered (Definition 6).
  std::set<int> covered;
  for (const CoverTree& t : cover->trees) {
    covered.insert(t.nodes.begin(), t.nodes.end());
  }
  EXPECT_EQ(covered.size(), 5u);
}

TEST(TreeCoverWalkthroughTest, PruningDisconnectsAtTightBound) {
  Walkthrough w;
  CoherenceGraph cg = w.BuildGraph();
  TreeCoverSolver solver;
  // B = 0.5 prunes m0-A2 (0.8) and A2-B1 (1.0): A2 is disconnected from
  // the contracted root -> the paper's failure warning.
  Result<TreeCover> cover = solver.Solve(cg, 0.5);
  ASSERT_FALSE(cover.ok());
  EXPECT_TRUE(cover.status().IsBoundTooSmall());

  // B = 0.9 keeps m0-A2: success again.
  Result<TreeCover> ok = solver.Solve(cg, 0.9);
  ASSERT_TRUE(ok.ok());
  EXPECT_NEAR(ok->Cost(), 0.8, 1e-9);
}

TEST(TreeCoverWalkthroughTest, MinimalBoundIsThePrunedEdge) {
  Walkthrough w;
  CoherenceGraph cg = w.BuildGraph();
  TreeCoverSolver solver;
  Result<std::pair<double, TreeCover>> minimal =
      SolveWithMinimalBound(solver, cg, /*initial_bound=*/2.0,
                            /*tolerance=*/0.001);
  ASSERT_TRUE(minimal.ok());
  // Feasibility flips exactly at the 0.8 edge (m0-A2): B* ~ 0.8.
  EXPECT_NEAR(minimal->first, 0.8, 0.01);
}

}  // namespace
}  // namespace core
}  // namespace tenet
