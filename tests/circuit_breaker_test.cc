// CircuitBreaker state machine (closed -> open -> half-open -> closed /
// re-open) and the shared RetryBudget token bucket.
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/circuit_breaker.h"

namespace tenet {
namespace {

CircuitBreakerOptions FastOptions() {
  CircuitBreakerOptions options;
  options.window_size = 8;
  options.min_samples = 4;
  options.failure_threshold = 0.5;
  options.open_cooldown_ms = 5.0;
  options.half_open_probes = 2;
  options.half_open_successes = 2;
  return options;
}

void WaitForCooldown(const CircuitBreakerOptions& options) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      options.open_cooldown_ms + 2.0));
}

TEST(CircuitBreakerTest, StaysClosedBelowThreshold) {
  CircuitBreaker breaker("dep", FastOptions());
  for (int i = 0; i < 50; ++i) {
    breaker.RecordOutcome(/*ok=*/i % 4 != 0);  // 25% failure rate
    EXPECT_TRUE(breaker.Allow());
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().trips, 0);
}

TEST(CircuitBreakerTest, DoesNotTripBeforeMinSamples) {
  CircuitBreaker breaker("dep", FastOptions());
  breaker.RecordOutcome(false);
  breaker.RecordOutcome(false);
  breaker.RecordOutcome(false);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordOutcome(false);  // 4th sample reaches min_samples
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, OpenRefusesUntilCooldown) {
  CircuitBreakerOptions options = FastOptions();
  options.open_cooldown_ms = 60000.0;  // effectively forever for this test
  CircuitBreaker breaker("dep", options);
  for (int i = 0; i < 4; ++i) breaker.RecordOutcome(false);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.stats().rejected, 2);
}

TEST(CircuitBreakerTest, HalfOpenClosesAfterSuccessStreak) {
  CircuitBreakerOptions options = FastOptions();
  CircuitBreaker breaker("dep", options);
  for (int i = 0; i < 4; ++i) breaker.RecordOutcome(false);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  WaitForCooldown(options);
  EXPECT_TRUE(breaker.Allow());  // first probe flips open -> half-open
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.RecordOutcome(true);
  breaker.RecordOutcome(true);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().closes, 1);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopens) {
  CircuitBreakerOptions options = FastOptions();
  CircuitBreaker breaker("dep", options);
  for (int i = 0; i < 4; ++i) breaker.RecordOutcome(false);
  WaitForCooldown(options);
  EXPECT_TRUE(breaker.Allow());
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.RecordOutcome(false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 2);
  EXPECT_FALSE(breaker.Allow());  // cooldown restarted
}

TEST(CircuitBreakerTest, HalfOpenLimitsProbesAndReplenishesOnSuccess) {
  CircuitBreakerOptions options = FastOptions();
  options.half_open_probes = 1;
  options.half_open_successes = 3;
  CircuitBreaker breaker("dep", options);
  for (int i = 0; i < 4; ++i) breaker.RecordOutcome(false);
  WaitForCooldown(options);
  EXPECT_TRUE(breaker.Allow());   // the single probe
  EXPECT_FALSE(breaker.Allow());  // allowance spent
  breaker.RecordOutcome(true);    // probe came back healthy
  EXPECT_TRUE(breaker.Allow());   // allowance replenished
  breaker.RecordOutcome(true);
  breaker.RecordOutcome(true);    // streak of 3 closes
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ReturnProbeRestoresUnusedAllowance) {
  CircuitBreakerOptions options = FastOptions();
  options.half_open_probes = 1;
  CircuitBreaker breaker("dep", options);
  for (int i = 0; i < 4; ++i) breaker.RecordOutcome(false);
  WaitForCooldown(options);
  EXPECT_TRUE(breaker.Allow());   // the single probe
  EXPECT_FALSE(breaker.Allow());  // allowance spent
  breaker.ReturnProbe();          // caller never touched the dependency
  EXPECT_TRUE(breaker.Allow());   // allowance restored
  breaker.ReturnProbe();
  breaker.ReturnProbe();  // cannot exceed the configured allowance
  EXPECT_TRUE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
}

TEST(CircuitBreakerTest, ReturnProbeIsANoOpOutsideHalfOpen) {
  CircuitBreaker breaker("dep", FastOptions());
  breaker.ReturnProbe();  // closed: nothing to restore
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, TripClearsTheWindow) {
  CircuitBreakerOptions options = FastOptions();
  CircuitBreaker breaker("dep", options);
  for (int i = 0; i < 4; ++i) breaker.RecordOutcome(false);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  WaitForCooldown(options);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordOutcome(true);
  breaker.RecordOutcome(true);
  ASSERT_EQ(breaker.state(), BreakerState::kClosed);
  // The outage-era failures are gone: it takes min_samples fresh outcomes
  // (not one) to trip again.
  breaker.RecordOutcome(false);
  breaker.RecordOutcome(false);
  breaker.RecordOutcome(false);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordOutcome(false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_EQ(BreakerStateToString(BreakerState::kClosed), "closed");
  EXPECT_EQ(BreakerStateToString(BreakerState::kOpen), "open");
  EXPECT_EQ(BreakerStateToString(BreakerState::kHalfOpen), "half_open");
}

TEST(RetryBudgetTest, DrainsAndStopsRetries) {
  RetryBudget::Options options;
  options.max_tokens = 2.0;
  options.cost_per_retry = 1.0;
  options.deposit_per_success = 0.0;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.TryAcquireRetry());
  EXPECT_TRUE(budget.TryAcquireRetry());
  EXPECT_FALSE(budget.TryAcquireRetry());  // bankrupt: retries stop
}

TEST(RetryBudgetTest, SuccessesReplenishUpToTheCap) {
  RetryBudget::Options options;
  options.max_tokens = 1.0;
  options.cost_per_retry = 1.0;
  options.deposit_per_success = 0.5;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.TryAcquireRetry());
  EXPECT_FALSE(budget.TryAcquireRetry());
  budget.RecordSuccess();
  EXPECT_FALSE(budget.TryAcquireRetry());  // 0.5 < cost
  budget.RecordSuccess();
  EXPECT_TRUE(budget.TryAcquireRetry());  // two deposits cover one retry
  for (int i = 0; i < 10; ++i) budget.RecordSuccess();
  EXPECT_DOUBLE_EQ(budget.tokens(), 1.0);  // capped at max_tokens
}

}  // namespace
}  // namespace tenet
