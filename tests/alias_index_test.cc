#include "kb/alias_index.h"

#include <gtest/gtest.h>

namespace tenet {
namespace kb {
namespace {

TEST(AliasIndexTest, LookupIsCaseInsensitive) {
  AliasIndex index;
  index.Add("Michael Jordan", ConceptRef::Entity(1), 1.0);
  index.Finalize();
  EXPECT_EQ(index.LookupEntities("michael jordan").size(), 1u);
  EXPECT_EQ(index.LookupEntities("MICHAEL JORDAN").size(), 1u);
  EXPECT_EQ(index.LookupEntities("Michael Jordan").size(), 1u);
  EXPECT_TRUE(index.LookupEntities("michael").empty());
}

TEST(AliasIndexTest, PriorsNormalizeToOnePerKind) {
  AliasIndex index;
  // Basketball player 70% popular, professor 30%.
  index.Add("Michael Jordan", ConceptRef::Entity(0), 7.0);
  index.Add("Michael Jordan", ConceptRef::Entity(1), 3.0);
  // A predicate sharing the surface must not disturb entity priors.
  index.Add("Michael Jordan", ConceptRef::Predicate(0), 5.0);
  index.Finalize();

  std::vector<AliasPosting> entities = index.LookupEntities("michael jordan");
  ASSERT_EQ(entities.size(), 2u);
  EXPECT_EQ(entities[0].concept_ref.id, 0);  // most popular first
  EXPECT_NEAR(entities[0].prior, 0.7, 1e-9);
  EXPECT_NEAR(entities[1].prior, 0.3, 1e-9);

  std::vector<AliasPosting> predicates =
      index.LookupPredicates("michael jordan");
  ASSERT_EQ(predicates.size(), 1u);
  EXPECT_NEAR(predicates[0].prior, 1.0, 1e-9);
}

TEST(AliasIndexTest, DuplicatePostingAccumulates) {
  AliasIndex index;
  index.Add("jordan", ConceptRef::Entity(4), 1.0);
  index.Add("jordan", ConceptRef::Entity(4), 2.0);
  index.Add("jordan", ConceptRef::Entity(5), 3.0);
  index.Finalize();
  std::vector<AliasPosting> postings = index.LookupEntities("jordan");
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_NEAR(postings[0].prior, 0.5, 1e-9);
  EXPECT_NEAR(postings[1].prior, 0.5, 1e-9);
}

TEST(AliasIndexTest, UnknownSurfaceIsEmpty) {
  AliasIndex index;
  index.Add("known", ConceptRef::Entity(0), 1.0);
  index.Finalize();
  EXPECT_TRUE(index.LookupEntities("unknown").empty());
  EXPECT_TRUE(index.LookupPredicates("known").empty());
  EXPECT_FALSE(index.ContainsSurface("known", ConceptRef::Kind::kPredicate));
  EXPECT_TRUE(index.ContainsSurface("Known", ConceptRef::Kind::kEntity));
}

TEST(AliasIndexTest, EmptySurfaceIgnored) {
  AliasIndex index;
  index.Add("", ConceptRef::Entity(0), 1.0);
  index.Finalize();
  EXPECT_EQ(index.num_surfaces(), 0u);
}

TEST(AliasIndexDeathTest, AddAfterFinalizeAborts) {
  AliasIndex index;
  index.Finalize();
  EXPECT_DEATH(index.Add("x", ConceptRef::Entity(0), 1.0), "Finalize");
}

}  // namespace
}  // namespace kb
}  // namespace tenet
