#include "kb/alias_index.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace tenet {
namespace kb {
namespace {

// Flattens an index into (surface, posting) rows — consecutive per surface
// in finalized order, i.e. exactly the shape RestorePostings consumes.
struct FlatPosting {
  std::string surface;
  AliasPosting posting;
};

std::vector<FlatPosting> Flatten(const AliasIndex& index) {
  std::vector<FlatPosting> out;
  index.VisitPostings([&out](std::string_view surface,
                             const AliasPosting& posting) {
    out.push_back(FlatPosting{std::string(surface), posting});
  });
  return out;
}

void ExpectSameLookups(const AliasIndex& a, const AliasIndex& b,
                       const std::vector<FlatPosting>& surfaces) {
  ASSERT_EQ(a.num_surfaces(), b.num_surfaces());
  for (const FlatPosting& row : surfaces) {
    std::vector<AliasPosting> ea = a.LookupEntities(row.surface);
    std::vector<AliasPosting> eb = b.LookupEntities(row.surface);
    ASSERT_EQ(ea.size(), eb.size()) << row.surface;
    for (size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].concept_ref, eb[i].concept_ref) << row.surface;
      EXPECT_EQ(ea[i].prior, eb[i].prior) << row.surface;  // bit-exact
    }
    std::vector<AliasPosting> pa = a.LookupPredicates(row.surface);
    std::vector<AliasPosting> pb = b.LookupPredicates(row.surface);
    ASSERT_EQ(pa.size(), pb.size()) << row.surface;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].concept_ref, pb[i].concept_ref) << row.surface;
      EXPECT_EQ(pa[i].prior, pb[i].prior) << row.surface;
    }
  }
}

AliasIndex BuildSampleIndex() {
  AliasIndex index;
  for (int i = 0; i < 200; ++i) {
    std::string surface = "Surface Number " + std::to_string(i % 60);
    index.Add(surface, ConceptRef::Entity(i), 1.0 + 0.1 * (i % 7));
    if (i % 3 == 0) {
      index.Add(surface, ConceptRef::Predicate(i % 11), 0.5 + 0.01 * i);
    }
  }
  index.Add("Caf\xC3\xA9 Tacvba", ConceptRef::Entity(777), 2.0);
  index.Finalize();
  return index;
}

TEST(AliasIndexTest, LookupIsCaseInsensitive) {
  AliasIndex index;
  index.Add("Michael Jordan", ConceptRef::Entity(1), 1.0);
  index.Finalize();
  EXPECT_EQ(index.LookupEntities("michael jordan").size(), 1u);
  EXPECT_EQ(index.LookupEntities("MICHAEL JORDAN").size(), 1u);
  EXPECT_EQ(index.LookupEntities("Michael Jordan").size(), 1u);
  EXPECT_TRUE(index.LookupEntities("michael").empty());
}

TEST(AliasIndexTest, PriorsNormalizeToOnePerKind) {
  AliasIndex index;
  // Basketball player 70% popular, professor 30%.
  index.Add("Michael Jordan", ConceptRef::Entity(0), 7.0);
  index.Add("Michael Jordan", ConceptRef::Entity(1), 3.0);
  // A predicate sharing the surface must not disturb entity priors.
  index.Add("Michael Jordan", ConceptRef::Predicate(0), 5.0);
  index.Finalize();

  std::vector<AliasPosting> entities = index.LookupEntities("michael jordan");
  ASSERT_EQ(entities.size(), 2u);
  EXPECT_EQ(entities[0].concept_ref.id, 0);  // most popular first
  EXPECT_NEAR(entities[0].prior, 0.7, 1e-9);
  EXPECT_NEAR(entities[1].prior, 0.3, 1e-9);

  std::vector<AliasPosting> predicates =
      index.LookupPredicates("michael jordan");
  ASSERT_EQ(predicates.size(), 1u);
  EXPECT_NEAR(predicates[0].prior, 1.0, 1e-9);
}

TEST(AliasIndexTest, DuplicatePostingAccumulates) {
  AliasIndex index;
  index.Add("jordan", ConceptRef::Entity(4), 1.0);
  index.Add("jordan", ConceptRef::Entity(4), 2.0);
  index.Add("jordan", ConceptRef::Entity(5), 3.0);
  index.Finalize();
  std::vector<AliasPosting> postings = index.LookupEntities("jordan");
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_NEAR(postings[0].prior, 0.5, 1e-9);
  EXPECT_NEAR(postings[1].prior, 0.5, 1e-9);
}

TEST(AliasIndexTest, UnknownSurfaceIsEmpty) {
  AliasIndex index;
  index.Add("known", ConceptRef::Entity(0), 1.0);
  index.Finalize();
  EXPECT_TRUE(index.LookupEntities("unknown").empty());
  EXPECT_TRUE(index.LookupPredicates("known").empty());
  EXPECT_FALSE(index.ContainsSurface("known", ConceptRef::Kind::kPredicate));
  EXPECT_TRUE(index.ContainsSurface("Known", ConceptRef::Kind::kEntity));
}

TEST(AliasIndexTest, EmptySurfaceIgnored) {
  AliasIndex index;
  index.Add("", ConceptRef::Entity(0), 1.0);
  index.Finalize();
  EXPECT_EQ(index.num_surfaces(), 0u);
}

TEST(AliasIndexTest, HighBitSurfaceBytesSurviveFolding) {
  // Regression: a locale-based tolower corrupts bytes >= 0x80 (UTF-8
  // continuation bytes), so "Café" would stop matching itself after a
  // save/load cycle.  The ASCII fold must treat the C3 A9 pair as opaque.
  AliasIndex index;
  index.Add("Caf\xC3\xA9", ConceptRef::Entity(1), 1.0);
  index.Finalize();
  EXPECT_EQ(index.LookupEntities("Caf\xC3\xA9").size(), 1u);
  EXPECT_EQ(index.LookupEntities("caf\xC3\xA9").size(), 1u);  // ASCII folds
  // Uppercase 'É' is a *different* byte sequence (C3 89): the ASCII fold
  // must not alias it onto 'é' the way a Latin-1 tolower would.
  EXPECT_TRUE(index.LookupEntities("CAF\xC3\x89").empty());
}

TEST(AliasIndexTest, PooledFinalizeMatchesSerial) {
  AliasIndex serial = BuildSampleIndex();
  AliasIndex pooled;
  for (int i = 0; i < 200; ++i) {
    std::string surface = "Surface Number " + std::to_string(i % 60);
    pooled.Add(surface, ConceptRef::Entity(i), 1.0 + 0.1 * (i % 7));
    if (i % 3 == 0) {
      pooled.Add(surface, ConceptRef::Predicate(i % 11), 0.5 + 0.01 * i);
    }
  }
  pooled.Add("Caf\xC3\xA9 Tacvba", ConceptRef::Entity(777), 2.0);
  ThreadPool pool(ThreadPool::Options{});
  pooled.Finalize(AliasIndex::FinalizeMode::kNormalizeWeights, &pool);
  ExpectSameLookups(serial, pooled, Flatten(serial));
}

TEST(AliasIndexTest, RestorePostingsReproducesTheIndexBitExactly) {
  // The deserialization fast path: flatten a finalized index (the exact
  // shape a snapshot stores) and rebuild via bulk restore, serial and
  // pooled.  Priors must come back bit-exact — restore-mode Finalize may
  // not renormalize, because normalization is not idempotent in floating
  // point.
  AliasIndex original = BuildSampleIndex();
  std::vector<FlatPosting> rows = Flatten(original);
  std::vector<AliasIndex::RestoreEntry> entries;
  entries.reserve(rows.size());
  for (const FlatPosting& row : rows) {
    entries.push_back(AliasIndex::RestoreEntry{row.surface, row.posting});
  }

  AliasIndex restored;
  restored.RestorePostings(entries);
  restored.Finalize(AliasIndex::FinalizeMode::kRestorePriors);
  ExpectSameLookups(original, restored, rows);

  AliasIndex restored_pooled;
  ThreadPool pool(ThreadPool::Options{});
  restored_pooled.RestorePostings(entries, &pool);
  restored_pooled.Finalize(AliasIndex::FinalizeMode::kRestorePriors, &pool);
  ExpectSameLookups(original, restored_pooled, rows);
}

TEST(AliasIndexTest, RestoreModePreservesUnnormalizedPriors) {
  // Priors that do not sum to exactly 1.0 (every real snapshot, thanks to
  // rounding) must come back untouched — not pushed through another
  // normalization pass.
  AliasIndex index;
  index.Add("x", ConceptRef::Entity(0), 0.1);
  index.Add("x", ConceptRef::Entity(1), 0.7);
  index.Finalize(AliasIndex::FinalizeMode::kRestorePriors);
  std::vector<AliasPosting> postings = index.LookupEntities("x");
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0].prior, 0.1);  // bit-exact, insertion order kept
  EXPECT_EQ(postings[1].prior, 0.7);
}

TEST(AliasIndexDeathTest, AddAfterFinalizeAborts) {
  AliasIndex index;
  index.Finalize();
  EXPECT_DEATH(index.Add("x", ConceptRef::Entity(0), 1.0), "Finalize");
}

}  // namespace
}  // namespace kb
}  // namespace tenet
