// Tests of the ablation switches and pipeline options (DESIGN.md §7):
// they must change behaviour in the documented direction and never break
// the structural invariants.
#include <gtest/gtest.h>

#include "baselines/tenet_linker.h"
#include "common/thread_pool.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "eval/harness.h"
#include "figure_one_world.h"

namespace tenet {
namespace core {
namespace {

const datasets::SyntheticWorld& World() {
  static const datasets::SyntheticWorld* world =
      new datasets::SyntheticWorld(datasets::BuildWorld());
  return *world;
}

datasets::Dataset SmallNews(uint64_t seed) {
  datasets::CorpusGenerator gen(&World().kb_world);
  Rng rng(seed);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 8;
  return gen.Generate(spec, rng);
}

baselines::TenetLinker MakeTenet(TenetOptions options = {}) {
  baselines::BaselineSubstrate substrate{
      &World().kb(), &World().embeddings, &World().gazetteer(), {}, {}};
  return baselines::TenetLinker(substrate, options);
}

TEST(AblationTest, CanopyDisableRemovesLongVariants) {
  testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  TenetOptions options;
  options.canopy.enable_long_variants = false;
  TenetPipeline tenet(&world.kb, &world.embeddings, &world.gazetteer,
                      options);
  Result<LinkingResult> result = tenet.LinkDocument(
      "He was awarded as the Fellow of the AAAS.");
  ASSERT_TRUE(result.ok());
  for (const Mention& mention : result->mentions.mentions) {
    EXPECT_EQ(mention.surface.find(" of the "), std::string::npos)
        << "long variant generated despite ablation";
  }
  for (const MentionGroup& group : result->mentions.groups) {
    EXPECT_EQ(group.canopies.size(), 1u);
  }
}

TEST(AblationTest, CanopyDisableHurtsLinkingQuality) {
  datasets::Dataset news = SmallNews(41);
  TenetOptions ablated;
  ablated.canopy.enable_long_variants = false;
  eval::SystemScores on = eval::EvaluateEndToEnd(MakeTenet(), news);
  eval::SystemScores off = eval::EvaluateEndToEnd(MakeTenet(ablated), news);
  EXPECT_GT(on.entity_linking.F1(), off.entity_linking.F1());
  EXPECT_GT(on.mention_detection.F1(), off.mention_detection.F1());
}

TEST(AblationTest, PerTreeOrderHurtsLinkingQuality) {
  datasets::Dataset news = SmallNews(42);
  TenetOptions ablated;
  ablated.disambiguator.global_kruskal_order = false;
  eval::SystemScores global = eval::EvaluateEndToEnd(MakeTenet(), news);
  eval::SystemScores per_tree =
      eval::EvaluateEndToEnd(MakeTenet(ablated), news);
  EXPECT_GT(global.entity_linking.F1(), per_tree.entity_linking.F1());
}

TEST(AblationTest, EarlyTerminationIsQualityNeutral) {
  datasets::Dataset news = SmallNews(43);
  TenetOptions ablated;
  ablated.disambiguator.early_termination = false;
  eval::SystemScores on = eval::EvaluateEndToEnd(MakeTenet(), news);
  eval::SystemScores off = eval::EvaluateEndToEnd(MakeTenet(ablated), news);
  EXPECT_EQ(on.entity_linking.tp, off.entity_linking.tp);
  EXPECT_EQ(on.entity_linking.fp, off.entity_linking.fp);
  EXPECT_EQ(on.entity_linking.fn, off.entity_linking.fn);
}

TEST(AblationTest, BoundFactorRobustness) {
  // Tiny bound factors must recover through the failure-warning retry and
  // produce the same links as the default (pruning at feasible bounds is
  // inconsequential on these corpora).
  datasets::Dataset news = SmallNews(44);
  TenetOptions tiny;
  tiny.bound_factor = 0.02;
  eval::SystemScores default_scores =
      eval::EvaluateEndToEnd(MakeTenet(), news);
  eval::SystemScores tiny_scores =
      eval::EvaluateEndToEnd(MakeTenet(tiny), news);
  EXPECT_EQ(tiny_scores.failed_documents, 0);
  EXPECT_NEAR(default_scores.entity_linking.F1(),
              tiny_scores.entity_linking.F1(), 0.05);
}

TEST(AblationTest, MultiThreadedGraphBuildIsEquivalent) {
  datasets::Dataset news = SmallNews(45);
  // The pool travels on the substrate's graph options (TenetLinker adopts
  // those wholesale); num_threads stays as the task cap.
  ThreadPool pool(ThreadPool::Options{.num_threads = 4});
  CoherenceGraphOptions graph_options;
  graph_options.pool = &pool;
  graph_options.num_threads = 4;
  baselines::BaselineSubstrate threaded_substrate{
      &World().kb(), &World().embeddings, &World().gazetteer(),
      graph_options, {}};
  baselines::TenetLinker serial = MakeTenet();
  baselines::TenetLinker parallel(threaded_substrate);
  for (const datasets::Document& doc : news.documents) {
    Result<LinkingResult> a = serial.LinkDocument(doc.text);
    Result<LinkingResult> b = parallel.LinkDocument(doc.text);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->links.size(), b->links.size());
    for (size_t i = 0; i < a->links.size(); ++i) {
      EXPECT_EQ(a->links[i].mention_id, b->links[i].mention_id);
      EXPECT_EQ(a->links[i].concept_ref, b->links[i].concept_ref);
    }
  }
}

TEST(AblationTest, TieBreakProtectsLongMentions) {
  testing_support::FigureOneWorld world =
      testing_support::BuildFigureOneWorld();
  TenetOptions no_tie_break;
  no_tie_break.disambiguator.informative_tie_break = false;
  TenetPipeline published(&world.kb, &world.embeddings, &world.gazetteer);
  TenetPipeline ablated(&world.kb, &world.embeddings, &world.gazetteer,
                        no_tie_break);
  const char* text = "He was awarded as the Fellow of the AAAS.";
  Result<LinkingResult> a = published.LinkDocument(text);
  Result<LinkingResult> b = ablated.LinkDocument(text);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto links_long = [](const LinkingResult& r) {
    for (const LinkedConcept& link : r.links) {
      if (link.surface == "Fellow of the AAAS") return true;
    }
    return false;
  };
  EXPECT_TRUE(links_long(*a));
  // Without the tie-break, equal-confidence fragments may win the race;
  // the published configuration must never regress on this document.
  (void)links_long(*b);
}

}  // namespace
}  // namespace core
}  // namespace tenet
