// Golden sharding equivalence (DESIGN.md §14): the same world served flat
// and as a 1/2/4-shard TENETKBSHARDS1 layout must drive the evaluation to
// byte-identical scores — PRF, full/degraded/failed accounting — and build
// byte-identical coherence edge lists.  Scatter/gather candidate
// generation merges per-shard posting sublists back into the canonical
// global order, so sharding may never change what the system links; this
// suite pins that contract.  The fault case pins the failure model: a
// fired "kb/shard" point degrades the lookup (that shard's candidates are
// simply missing, counted in tenet_kb_shard_degraded_lookups_total) but
// the request never fails.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/tenet_linker.h"
#include "common/fault_injection.h"
#include "core/canopy.h"
#include "core/coherence_graph.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "eval/harness.h"
#include "kb/io.h"
#include "kb/sharded_kb.h"
#include "obs/metrics.h"
#include "text/extraction.h"

namespace tenet {
namespace eval {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectSamePRF(const PRF& a, const PRF& b, const char* what) {
  EXPECT_EQ(a.tp, b.tp) << what;
  EXPECT_EQ(a.fp, b.fp) << what;
  EXPECT_EQ(a.fn, b.fn) << what;
}

// Partitions the world into `num_shards`, round-trips the layout through
// Save/Load, and returns the loaded substrate.
std::shared_ptr<const kb::ShardedKb> RoundTripSharded(
    const datasets::SyntheticWorld& world, int num_shards) {
  kb::ShardedKb parted =
      kb::ShardedKb::Partition(world.kb(), world.embeddings, num_shards);
  const std::string manifest = TempPath(
      "shard_world_s" + std::to_string(num_shards) + ".tenetshards");
  Status saved = parted.Save(manifest);
  EXPECT_TRUE(saved.ok()) << saved;
  if (!saved.ok()) return nullptr;
  Result<kb::ShardedKb> loaded = kb::ShardedKb::Load(manifest);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  if (!loaded.ok()) return nullptr;
  return std::make_shared<const kb::ShardedKb>(std::move(*loaded));
}

TEST(KbShardTest, ScoresByteIdenticalAcrossShardCounts) {
  datasets::SyntheticWorld world = datasets::BuildWorld();
  datasets::CorpusGenerator gen(&world.kb_world);
  Rng rng(71);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 6;
  datasets::Dataset dataset = gen.Generate(spec, rng);

  baselines::TenetLinker flat(baselines::BaselineSubstrate{
      &world.kb(), &world.embeddings, &world.gazetteer(), {}, {}});
  SystemScores golden = EvaluateEndToEnd(flat, dataset);
  ASSERT_EQ(golden.failed_documents, 0);
  ASSERT_GT(golden.entity_linking.tp, 0);

  for (int num_shards : {1, 2, 4}) {
    SCOPED_TRACE(num_shards);
    std::shared_ptr<const kb::ShardedKb> sharded =
        RoundTripSharded(world, num_shards);
    ASSERT_NE(sharded, nullptr);
    // The gazetteer is re-derived through the view, exactly as a sharded
    // KbGeneration derives it at load time.
    text::Gazetteer gazetteer = kb::DeriveGazetteer(*sharded);

    baselines::BaselineSubstrate substrate;
    substrate.view = sharded;
    substrate.gazetteer = &gazetteer;
    baselines::TenetLinker linker(substrate);
    SystemScores scores = EvaluateEndToEnd(linker, dataset);

    ExpectSamePRF(golden.entity_linking, scores.entity_linking,
                  "entity_linking");
    ExpectSamePRF(golden.relation_linking, scores.relation_linking,
                  "relation_linking");
    ExpectSamePRF(golden.mention_detection, scores.mention_detection,
                  "mention_detection");
    ExpectSamePRF(golden.isolated_detection, scores.isolated_detection,
                  "isolated_detection");
    EXPECT_EQ(golden.failed_documents, scores.failed_documents);
    EXPECT_EQ(golden.full_documents, scores.full_documents);
    EXPECT_EQ(golden.degraded_documents, scores.degraded_documents);
  }
}

TEST(KbShardTest, CoherenceEdgeListsByteIdenticalAcrossSubstrates) {
  datasets::SyntheticWorld world = datasets::BuildWorld();
  datasets::CorpusGenerator gen(&world.kb_world);
  Rng rng(71);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 4;
  datasets::Dataset dataset = gen.Generate(spec, rng);

  core::CoherenceGraphBuilder flat_builder(&world.kb(), &world.embeddings);
  text::Extractor extractor(&world.gazetteer());

  for (int num_shards : {2, 4}) {
    SCOPED_TRACE(num_shards);
    std::shared_ptr<const kb::ShardedKb> sharded =
        RoundTripSharded(world, num_shards);
    ASSERT_NE(sharded, nullptr);
    core::CoherenceGraphBuilder sharded_builder(sharded);

    for (const datasets::Document& doc : dataset.documents) {
      SCOPED_TRACE(doc.id);
      text::ExtractionResult extraction =
          extractor.ExtractFromText(doc.text);
      core::CoherenceGraph a = flat_builder.Build(
          core::BuildMentionSet(extraction, &world.gazetteer()));
      core::CoherenceGraph b = sharded_builder.Build(
          core::BuildMentionSet(extraction, &world.gazetteer()));

      // Exact equality, doubles included: the scatter/gather merge and the
      // gather kernel must reproduce the flat substrate bit for bit.
      ASSERT_EQ(a.num_concept_nodes(), b.num_concept_nodes());
      for (int n = a.num_mentions(); n < a.num_nodes(); ++n) {
        const core::CoherenceGraph::ConceptNode& ca = a.concept_node(n);
        const core::CoherenceGraph::ConceptNode& cb = b.concept_node(n);
        EXPECT_EQ(ca.mention, cb.mention);
        EXPECT_EQ(ca.ref.kind, cb.ref.kind);
        EXPECT_EQ(ca.ref.id, cb.ref.id);
        EXPECT_EQ(ca.prior, cb.prior);
      }
      const std::vector<graph::Edge>& ea = a.graph().edges();
      const std::vector<graph::Edge>& eb = b.graph().edges();
      ASSERT_EQ(ea.size(), eb.size());
      for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].u, eb[i].u) << "edge " << i;
        EXPECT_EQ(ea[i].v, eb[i].v) << "edge " << i;
        EXPECT_EQ(ea[i].weight, eb[i].weight) << "edge " << i;
      }
    }
  }
}

TEST(KbShardTest, FiredShardDegradesLookupWithoutFailing) {
  datasets::SyntheticWorld world = datasets::BuildWorld();
  std::shared_ptr<const kb::ShardedKb> sharded =
      std::make_shared<const kb::ShardedKb>(
          kb::ShardedKb::Partition(world.kb(), world.embeddings, 4));
  text::Gazetteer gazetteer = kb::DeriveGazetteer(*sharded);

  // A surface every substrate resolves, with its fault-free candidate set
  // as the baseline.
  const std::string surface = world.kb().entity(0).label;
  std::vector<kb::EntityCandidate> clean =
      sharded->CandidateEntities(surface, std::nullopt, 8);
  ASSERT_FALSE(clean.empty());

  obs::Counter* degraded = obs::MetricsRegistry::Default()->GetCounter(
      "tenet_kb_shard_degraded_lookups_total", "");
  const int64_t degraded_before = degraded->Value();

  {
    FaultInjector faults(/*seed=*/7);
    faults.Arm("kb/shard", 1.0);
    // Every shard fires: the lookup returns nothing — degraded, exactly
    // like an alias-index miss — but it returns.
    std::vector<kb::EntityCandidate> under_fault =
        sharded->CandidateEntities(surface, std::nullopt, 8);
    EXPECT_TRUE(under_fault.empty());
    EXPECT_EQ(faults.FireCount("kb/shard"), 4);
    EXPECT_EQ(degraded->Value(), degraded_before + 4);

    // Per-request degradation end to end: a whole document links without
    // failure while every per-shard lookup is dropped.
    baselines::BaselineSubstrate substrate;
    substrate.view = sharded;
    substrate.gazetteer = &gazetteer;
    baselines::TenetLinker linker(substrate);
    Result<core::LinkingResult> result = linker.LinkDocument(
        "Michael Jordan studies artificial intelligence.");
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GT(degraded->Value(), degraded_before + 4);
  }

  // Disarmed, the same lookup is whole again.
  std::vector<kb::EntityCandidate> after =
      sharded->CandidateEntities(surface, std::nullopt, 8);
  ASSERT_EQ(after.size(), clean.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].entity, clean[i].entity);
    EXPECT_EQ(after[i].prior, clean[i].prior);
  }
}

}  // namespace
}  // namespace eval
}  // namespace tenet
