#include "common/fault_injection.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace tenet {
namespace {

TEST(FaultInjectionTest, NoInjectorMeansNoFires) {
  EXPECT_FALSE(FaultInjectionArmed());
  EXPECT_FALSE(TENET_FAULT_POINT("test/unarmed"));
}

TEST(FaultInjectionTest, InstallAndUninstallIsScoped) {
  {
    FaultInjector faults(1);
    EXPECT_TRUE(FaultInjectionArmed());
  }
  EXPECT_FALSE(FaultInjectionArmed());
}

TEST(FaultInjectionTest, UnarmedPointsCountHitsButNeverFire) {
  FaultInjector faults(2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(TENET_FAULT_POINT("test/counted"));
  }
  EXPECT_EQ(faults.HitCount("test/counted"), 10);
  EXPECT_EQ(faults.FireCount("test/counted"), 0);
  EXPECT_EQ(faults.HitCount("test/never_reached"), 0);
}

TEST(FaultInjectionTest, ProbabilityOneFiresEveryHit) {
  FaultInjector faults(3);
  faults.Arm("test/always", 1.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(TENET_FAULT_POINT("test/always"));
  }
  EXPECT_EQ(faults.FireCount("test/always"), 5);
}

TEST(FaultInjectionTest, ProbabilityZeroNeverFires) {
  FaultInjector faults(4);
  faults.Arm("test/never", 0.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(TENET_FAULT_POINT("test/never"));
  }
  EXPECT_EQ(faults.FireCount("test/never"), 0);
  EXPECT_EQ(faults.HitCount("test/never"), 5);
}

TEST(FaultInjectionTest, SameSeedReproducesTheExactSchedule) {
  std::vector<bool> first;
  {
    FaultInjector faults(99);
    faults.Arm("test/schedule", 0.3);
    for (int i = 0; i < 200; ++i) {
      first.push_back(TENET_FAULT_POINT("test/schedule"));
    }
  }
  std::vector<bool> second;
  {
    FaultInjector faults(99);
    faults.Arm("test/schedule", 0.3);
    for (int i = 0; i < 200; ++i) {
      second.push_back(TENET_FAULT_POINT("test/schedule"));
    }
  }
  EXPECT_EQ(first, second);
}

TEST(FaultInjectionTest, DifferentSeedsProduceDifferentSchedules) {
  auto schedule_of = [](uint64_t seed) {
    std::vector<bool> fires;
    FaultInjector faults(seed);
    faults.Arm("test/seeded", 0.5);
    for (int i = 0; i < 64; ++i) {
      fires.push_back(TENET_FAULT_POINT("test/seeded"));
    }
    return fires;
  };
  EXPECT_NE(schedule_of(1), schedule_of(2));
}

TEST(FaultInjectionTest, ScheduleIsIndependentOfOtherPoints) {
  // The schedule of point A must not depend on how hits of point B
  // interleave — each point draws from its own stream.
  std::vector<bool> alone;
  {
    FaultInjector faults(7);
    faults.Arm("test/a", 0.4);
    for (int i = 0; i < 50; ++i) alone.push_back(TENET_FAULT_POINT("test/a"));
  }
  std::vector<bool> interleaved;
  {
    FaultInjector faults(7);
    faults.Arm("test/a", 0.4);
    faults.Arm("test/b", 0.9);
    for (int i = 0; i < 50; ++i) {
      (void)TENET_FAULT_POINT("test/b");
      interleaved.push_back(TENET_FAULT_POINT("test/a"));
      (void)TENET_FAULT_POINT("test/b");
    }
  }
  EXPECT_EQ(alone, interleaved);
}

TEST(FaultInjectionTest, ProbabilityConvergesRoughlyToRate) {
  FaultInjector faults(11);
  faults.Arm("test/rate", 0.3);
  int fires = 0;
  const int hits = 2000;
  for (int i = 0; i < hits; ++i) {
    if (TENET_FAULT_POINT("test/rate")) ++fires;
  }
  EXPECT_EQ(fires, faults.FireCount("test/rate"));
  double rate = static_cast<double>(fires) / hits;
  EXPECT_GT(rate, 0.25);
  EXPECT_LT(rate, 0.35);
}

TEST(FaultInjectionTest, NthHitFiresExactlyOnce) {
  FaultInjector faults(5);
  faults.ArmNth("test/nth", 3);
  std::vector<bool> fires;
  for (int i = 0; i < 6; ++i) fires.push_back(TENET_FAULT_POINT("test/nth"));
  EXPECT_EQ(fires, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(faults.FireCount("test/nth"), 1);
}

TEST(FaultInjectionTest, DisarmStopsFiringButKeepsCounters) {
  FaultInjector faults(6);
  faults.Arm("test/disarm", 1.0);
  EXPECT_TRUE(TENET_FAULT_POINT("test/disarm"));
  faults.Disarm("test/disarm");
  EXPECT_FALSE(TENET_FAULT_POINT("test/disarm"));
  EXPECT_EQ(faults.HitCount("test/disarm"), 2);
  EXPECT_EQ(faults.FireCount("test/disarm"), 1);
}

TEST(FaultInjectionTest, ConcurrentHitsAreCountedExactly) {
  FaultInjector faults(8);
  faults.Arm("test/threads", 0.5);
  constexpr int kThreads = 4;
  constexpr int kHitsPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        (void)TENET_FAULT_POINT("test/threads");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(faults.HitCount("test/threads"), kThreads * kHitsPerThread);
  EXPECT_GT(faults.FireCount("test/threads"), 0);
  EXPECT_LT(faults.FireCount("test/threads"), kThreads * kHitsPerThread);
}

TEST(FaultInjectionTest, ArmAndDisarmRaceFreeAgainstConcurrentHits) {
  // Reconfiguration while traffic flows: worker threads hammer two fault
  // points while the main thread repeatedly arms, re-arms and disarms
  // them.  Counters must stay exact and consistent (and the whole dance
  // TSan-clean — this test is part of the sanitizer tiers).
  FaultInjector faults(12);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> observed_hits{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)TENET_FAULT_POINT("test/race_a");
        (void)TENET_FAULT_POINT("test/race_b");
        observed_hits.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    faults.Arm("test/race_a", 0.2);
    faults.ArmNth("test/race_b", round + 1);
    (void)faults.HitCount("test/race_a");
    (void)faults.FireCount("test/race_b");
    faults.Disarm("test/race_a");
    faults.Disarm("test/race_b");
  }
  stop.store(true);
  for (std::thread& w : workers) w.join();

  // Exactly-once accounting: the injector saw every hit the workers made.
  EXPECT_EQ(faults.HitCount("test/race_a") + faults.HitCount("test/race_b"),
            observed_hits.load());
  // Fires can never exceed hits, per point.
  EXPECT_LE(faults.FireCount("test/race_a"), faults.HitCount("test/race_a"));
  EXPECT_LE(faults.FireCount("test/race_b"), faults.HitCount("test/race_b"));
}

TEST(FaultInjectionTest, ConcurrentHitsKeepPerPointSchedulesDeterministic) {
  // Interleaving across threads must not perturb a point's per-hit
  // schedule: the number of fires in N hits depends only on (seed, N).
  constexpr int kThreads = 4;
  constexpr int kHitsPerThread = 250;
  auto fires_with_threads = [](int threads) {
    FaultInjector faults(13);
    faults.Arm("test/deterministic", 0.3);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kHitsPerThread; ++i) {
          (void)TENET_FAULT_POINT("test/deterministic");
        }
      });
    }
    for (std::thread& w : workers) w.join();
    // Same total hit count however the threads interleaved.
    EXPECT_EQ(faults.HitCount("test/deterministic"),
              threads * kHitsPerThread);
    return faults.FireCount("test/deterministic");
  };
  int concurrent = fires_with_threads(kThreads);

  // Serial reference over the same total number of hits.
  FaultInjector faults(13);
  faults.Arm("test/deterministic", 0.3);
  for (int i = 0; i < kThreads * kHitsPerThread; ++i) {
    (void)TENET_FAULT_POINT("test/deterministic");
  }
  EXPECT_EQ(concurrent, faults.FireCount("test/deterministic"));
}

}  // namespace
}  // namespace tenet
