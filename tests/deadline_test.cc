#include "common/deadline.h"

#include <limits>
#include <thread>

#include <gtest/gtest.h>

namespace tenet {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.RemainingMillis(), std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, InfiniteBudgetYieldsInfiniteDeadline) {
  Deadline d =
      Deadline::AfterMillis(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
}

TEST(DeadlineTest, ExpiredIsAlreadyPast) {
  Deadline d = Deadline::Expired();
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.RemainingMillis(), 0.0);
}

TEST(DeadlineTest, NonPositiveBudgetsAreExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0.0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5.0).expired());
}

TEST(DeadlineTest, GenerousBudgetIsNotExpiredYet) {
  Deadline d = Deadline::AfterMillis(60'000.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.RemainingMillis(), 0.0);
  EXPECT_LE(d.RemainingMillis(), 60'000.0);
}

TEST(DeadlineTest, ShortBudgetExpiresAfterSleeping) {
  Deadline d = Deadline::AfterMillis(1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.RemainingMillis(), 0.0);
}

TEST(DeadlineTest, CopiesShareTheSameEpoch) {
  Deadline a = Deadline::Expired();
  Deadline b = a;
  EXPECT_TRUE(b.expired());
}

Status GuardedStage(Deadline deadline) {
  TENET_RETURN_IF_EXPIRED(deadline, "the coherence stage");
  return Status::Ok();
}

TEST(DeadlineTest, ReturnIfExpiredMacroPropagatesDeadlineExceeded) {
  EXPECT_TRUE(GuardedStage(Deadline::Infinite()).ok());
  Status s = GuardedStage(Deadline::Expired());
  EXPECT_TRUE(s.IsDeadlineExceeded());
  EXPECT_EQ(s.ToString(),
            "deadline_exceeded: deadline expired before the coherence stage");
}

TEST(RetryScheduleTest, GrowsByMultiplierUpToMaxRetries) {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.multiplier = 2.0;
  RetrySchedule schedule(policy, 5.0);
  EXPECT_DOUBLE_EQ(schedule.value(), 5.0);
  EXPECT_EQ(schedule.attempt(), 0);
  EXPECT_FALSE(schedule.exhausted());

  ASSERT_TRUE(schedule.Next());
  EXPECT_DOUBLE_EQ(schedule.value(), 10.0);
  ASSERT_TRUE(schedule.Next());
  EXPECT_DOUBLE_EQ(schedule.value(), 20.0);
  ASSERT_TRUE(schedule.Next());
  EXPECT_DOUBLE_EQ(schedule.value(), 40.0);
  EXPECT_EQ(schedule.attempt(), 3);
  EXPECT_TRUE(schedule.exhausted());

  // Exhausted: no further growth, Next keeps returning false.
  EXPECT_FALSE(schedule.Next());
  EXPECT_DOUBLE_EQ(schedule.value(), 40.0);
  EXPECT_EQ(schedule.attempt(), 3);
}

TEST(RetryScheduleTest, ValueIsCappedAtMaxValue) {
  RetryPolicy policy;
  policy.max_retries = 10;
  policy.multiplier = 10.0;
  policy.max_value = 250.0;
  RetrySchedule schedule(policy, 1.0);
  ASSERT_TRUE(schedule.Next());
  EXPECT_DOUBLE_EQ(schedule.value(), 10.0);
  ASSERT_TRUE(schedule.Next());
  EXPECT_DOUBLE_EQ(schedule.value(), 100.0);
  ASSERT_TRUE(schedule.Next());
  EXPECT_DOUBLE_EQ(schedule.value(), 250.0);  // capped
  ASSERT_TRUE(schedule.Next());
  EXPECT_DOUBLE_EQ(schedule.value(), 250.0);  // stays capped
}

TEST(RetryScheduleTest, ZeroRetriesMeansSingleAttempt) {
  RetryPolicy policy;
  policy.max_retries = 0;
  RetrySchedule schedule(policy, 7.0);
  EXPECT_TRUE(schedule.exhausted());
  EXPECT_FALSE(schedule.Next());
  EXPECT_DOUBLE_EQ(schedule.value(), 7.0);
}

TEST(RetryScheduleTest, DefaultPolicyMatchesFormerBoundDoublingLoop) {
  // The pipeline's former ad-hoc loop: initial attempt + 6 doublings.
  RetryPolicy policy;
  RetrySchedule schedule(policy, 1.0);
  int attempts = 1;
  while (schedule.Next()) ++attempts;
  EXPECT_EQ(attempts, 7);
  EXPECT_DOUBLE_EQ(schedule.value(), 64.0);
}

}  // namespace
}  // namespace tenet
