// tenet_cli — command-line front-end of the TENET library.
//
//   tenet_cli build-world [--seed N] [--kb PATH] [--emb PATH]
//       Generates the synthetic world and persists the KB + embeddings.
//
//   tenet_cli link --kb PATH --emb PATH [--text "..."] [--candidates K]
//             [--deadline-ms MS] [--trace]
//       Links a document (from --text or stdin) against a persisted world
//       and prints the linked concepts and emerging entities.  With a
//       deadline, an over-budget document degrades to prior-only linking
//       (reported on stderr) instead of failing.  --trace prints the
//       request's span tree (stages, cover retries, degradation rungs) on
//       stderr.
//
//   tenet_cli demo [--seed N]
//       One-shot: builds the world in memory and links stdin.
//
//   tenet_cli dump-corpora [--seed N]
//       Generates the four evaluation corpora and writes them as
//       News.tenetds, T-REx42.tenetds, KORE50.tenetds, MSNBC19.tenetds.
//
//   tenet_cli eval [--seed N] [--threads N] [--deadline-ms MS]
//             [--scenario clean|adversarial|sessions]
//             [--similarity-cache-mb N] [--metrics-out FILE]
//             [--kb-update-every N]
//       Builds the synthetic world, generates the evaluation corpora and
//       scores TENET end-to-end on each.  With --threads N > 1 the batch
//       is served through the concurrent BatchLinkingService.  Exits
//       non-zero when any document *crashed* — failed for a reason other
//       than a deliberate guardrail rejection — listing each failure.
//       --scenario picks the workload (DESIGN.md §13): `clean` is the
//       paper's four corpora; `adversarial` runs the same corpora through
//       the seeded hostile mutator (typos, homoglyphs, ambiguity storms,
//       oversized tokens, invalid UTF-8) and reports what the guardrails
//       rejected/truncated; `sessions` replays multi-turn conversations
//       through a serving::SessionContext and scores the same turns with
//       and without session state.
//       --similarity-cache-mb N shares an N-MiB cross-document similarity
//       cache across the whole run (cached values are bit-identical to
//       computed ones, so scores are unchanged) and reports the cache hit
//       rate afterwards.  --metrics-out writes the run's metrics registry
//       to FILE in Prometheus text format (JSON when FILE ends in .json).
//       --kb-update-every N is the live-update drill (DESIGN.md §12): the
//       run serves through a generation-aware service and hot-swaps in a
//       fresh delta generation after every N documents while the batch is
//       in flight.  The drill's deltas only add concepts no corpus
//       mentions, so scores are unchanged; the swap/rollback accounting is
//       reported afterwards.
//
//   tenet_cli kb build [--seed N] [--kb PATH] [--emb PATH]
//             [--format text|binary] [--shards N]
//       Like build-world, with an explicit snapshot format: binary writes
//       the TENETKB2 snapshot (the default everywhere), text the legacy
//       TENETKB v1 container (for diffing/debugging).  With --shards N the
//       world is hash-partitioned into N shards and --kb names the
//       TENETKBSHARDS1 manifest of the layout (one snapshot + embedding
//       pair per shard lands next to it); --emb and --format do not apply.
//
//   tenet_cli kb inspect [--kb PATH] [--emb PATH]
//       Prints the format, logical counts and (for binary snapshots) the
//       section table of a KB file without materializing it, plus the
//       embedding header when --emb is given.  Validates the same
//       header/section invariants as the loader.  On a TENETKBSHARDS1
//       manifest, prints the global counts plus one row per shard; on a
//       single shard snapshot, its position in the layout.
//
//   tenet_cli kb delta --kb PATH --emb PATH --out PATH [--seed N]
//             [--add-entities N]
//       Builds a synthetic TENETDELTA1 segment against the given snapshot
//       pair: N fresh entities, each with an extra alias and an embedding
//       row.  Only the snapshot headers are read (the delta needs the
//       concept counts and the embedding dimension, not the data).  The
//       segment is written atomically; apply it with `kb merge` or serve
//       it live via KbGeneration.
//
//   tenet_cli kb merge --kb PATH --emb PATH --delta PATH [--delta PATH...]
//             --out-kb PATH --out-emb PATH
//       Compaction: loads the snapshot pair, applies the delta segments in
//       order, and persists the merged substrate as a fresh
//       TENETKB2/TENETEMB1 pair (both writes atomic).  Prints what the
//       apply did.
//
// All numeric flags are parsed strictly: "--threads 4x" is an error (exit
// code 2 + usage), not silently 4.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baselines/tenet_linker.h"
#include "core/link_context.h"
#include "embedding/similarity_cache.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "datasets/world.h"
#include "datasets/adversarial.h"
#include "datasets/corpus_generator.h"
#include "datasets/io.h"
#include "datasets/session_generator.h"
#include "common/string_util.h"
#include "eval/harness.h"
#include "kb/delta.h"
#include "kb/io.h"
#include "kb/sharded_kb.h"
#include "kb/types.h"
#include "serving/batch_service.h"
#include "serving/kb_generation.h"

using namespace tenet;

namespace {

struct Args {
  std::string command;
  std::string subcommand;  // of "kb": build, inspect, delta or merge
  uint64_t seed = 2021;
  std::string kb_path = "world.tenetkb";
  std::string emb_path = "world.tenetemb";
  bool emb_path_set = false;
  kb::KbFormat format = kb::KbFormat::kBinaryV2;
  std::optional<std::string> document_text;
  int candidates = 4;
  double deadline_ms = std::numeric_limits<double>::infinity();
  int threads = 1;
  int similarity_cache_mb = 0;
  std::optional<std::string> metrics_out;
  bool trace = false;
  // kb delta / kb merge / eval --kb-update-every.
  std::string out_path = "update.tenetdelta";
  std::vector<std::string> delta_paths;
  std::string out_kb_path = "merged.tenetkb";
  std::string out_emb_path = "merged.tenetemb";
  int add_entities = 8;
  int kb_update_every = 0;
  std::string scenario = "clean";
  int shards = 0;  // kb build: 0 = flat snapshot, N > 0 = sharded layout
};

// Strict integer flag: the whole value must parse (no "4x", no empty), and
// it must lie in [min, max].  Anything else fails the parse -> exit 2.
bool ParseIntFlag(const char* flag, const char* value, int64_t min,
                  int64_t max, int64_t* out) {
  Result<int64_t> parsed = ParseInt64(value);
  if (!parsed.ok() || *parsed < min || *parsed > max) {
    std::fprintf(stderr, "%s expects an integer in [%lld, %lld], got: %s\n",
                 flag, static_cast<long long>(min),
                 static_cast<long long>(max), value);
    return false;
  }
  *out = *parsed;
  return true;
}

std::optional<Args> Parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  int first_flag = 2;
  if (args.command == "kb") {
    if (argc < 3) return std::nullopt;
    args.subcommand = argv[2];
    if (args.subcommand != "build" && args.subcommand != "inspect" &&
        args.subcommand != "delta" && args.subcommand != "merge") {
      std::fprintf(stderr, "unknown kb subcommand: %s\n",
                   args.subcommand.c_str());
      return std::nullopt;
    }
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      int64_t seed = 0;
      if (!ParseIntFlag("--seed", v, 0,
                        std::numeric_limits<int64_t>::max(), &seed)) {
        return std::nullopt;
      }
      args.seed = static_cast<uint64_t>(seed);
    } else if (flag == "--kb") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.kb_path = v;
    } else if (flag == "--emb") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.emb_path = v;
      args.emb_path_set = true;
    } else if (flag == "--format") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      if (std::string_view(v) == "text") {
        args.format = kb::KbFormat::kTextV1;
      } else if (std::string_view(v) == "binary") {
        args.format = kb::KbFormat::kBinaryV2;
      } else {
        std::fprintf(stderr, "--format expects text or binary, got: %s\n", v);
        return std::nullopt;
      }
    } else if (flag == "--text") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.document_text = std::string(v);
    } else if (flag == "--candidates") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      int64_t candidates = 0;
      if (!ParseIntFlag("--candidates", v, 1,
                        std::numeric_limits<int>::max(), &candidates)) {
        return std::nullopt;
      }
      args.candidates = static_cast<int>(candidates);
    } else if (flag == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      Result<double> deadline = ParseFloat64(v);
      if (!deadline.ok() || *deadline < 0.0) {
        std::fprintf(stderr,
                     "--deadline-ms expects a non-negative number, got: %s\n",
                     v);
        return std::nullopt;
      }
      args.deadline_ms = *deadline;
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      int64_t threads = 0;
      if (!ParseIntFlag("--threads", v, 1, 4096, &threads)) {
        return std::nullopt;
      }
      args.threads = static_cast<int>(threads);
    } else if (flag == "--similarity-cache-mb") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      int64_t mb = 0;
      if (!ParseIntFlag("--similarity-cache-mb", v, 0, 1 << 20, &mb)) {
        return std::nullopt;
      }
      args.similarity_cache_mb = static_cast<int>(mb);
    } else if (flag == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.metrics_out = std::string(v);
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.out_path = v;
    } else if (flag == "--delta") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.delta_paths.push_back(v);
    } else if (flag == "--out-kb") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.out_kb_path = v;
    } else if (flag == "--out-emb") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.out_emb_path = v;
    } else if (flag == "--add-entities") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      int64_t n = 0;
      if (!ParseIntFlag("--add-entities", v, 1, 1 << 20, &n)) {
        return std::nullopt;
      }
      args.add_entities = static_cast<int>(n);
    } else if (flag == "--shards") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      int64_t n = 0;
      if (!ParseIntFlag("--shards", v, 1, 4096, &n)) {
        return std::nullopt;
      }
      args.shards = static_cast<int>(n);
    } else if (flag == "--kb-update-every") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      int64_t n = 0;
      if (!ParseIntFlag("--kb-update-every", v, 1,
                        std::numeric_limits<int>::max(), &n)) {
        return std::nullopt;
      }
      args.kb_update_every = static_cast<int>(n);
    } else if (flag == "--scenario") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.scenario = v;
      if (args.scenario != "clean" && args.scenario != "adversarial" &&
          args.scenario != "sessions") {
        std::fprintf(stderr,
                     "--scenario expects clean, adversarial or sessions, "
                     "got: %s\n",
                     v);
        return std::nullopt;
      }
    } else if (flag == "--trace") {
      args.trace = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return std::nullopt;
    }
  }
  return args;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tenet_cli build-world [--seed N] [--kb PATH] [--emb PATH]\n"
      "  tenet_cli link --kb PATH --emb PATH [--text \"...\"] "
      "[--candidates K] [--deadline-ms MS] [--trace]\n"
      "  tenet_cli demo [--seed N]\n"
      "  tenet_cli dump-corpora [--seed N]\n"
      "  tenet_cli eval [--seed N] [--threads N] [--deadline-ms MS] "
      "[--scenario clean|adversarial|sessions] "
      "[--similarity-cache-mb N] [--metrics-out FILE] "
      "[--kb-update-every N]\n"
      "  tenet_cli kb build [--seed N] [--kb PATH] [--emb PATH] "
      "[--format text|binary] [--shards N]\n"
      "  tenet_cli kb inspect [--kb PATH] [--emb PATH]\n"
      "  tenet_cli kb delta --kb PATH --emb PATH --out PATH [--seed N] "
      "[--add-entities N]\n"
      "  tenet_cli kb merge --kb PATH --emb PATH --delta PATH "
      "[--delta PATH...] --out-kb PATH --out-emb PATH\n");
}

std::string ReadStdin() {
  std::string text;
  std::string line;
  while (std::getline(std::cin, line)) {
    text += line;
    text += ' ';
  }
  return text;
}

int LinkAndPrint(const kb::KnowledgeBase& knowledge_base,
                 const embedding::EmbeddingStore& embeddings,
                 const text::Gazetteer& gazetteer, const Args& args) {
  core::TenetOptions options;
  options.graph.max_candidates_per_mention = args.candidates;
  options.deadline_ms = args.deadline_ms;
  core::TenetPipeline tenet(&knowledge_base, &embeddings, &gazetteer,
                            options);
  std::string document =
      args.document_text.has_value() ? *args.document_text : ReadStdin();
  obs::Trace trace;
  core::LinkContext context;
  if (args.trace) context.trace = &trace;
  Result<core::LinkingResult> result = tenet.LinkDocument(document, context);
  if (args.trace) {
    std::fprintf(stderr, "%s", trace.Render().c_str());
  }
  if (!result.ok()) {
    std::fprintf(stderr, "linking failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  for (const core::LinkedConcept& link : result->links) {
    if (link.kind == core::Mention::Kind::kNoun) {
      std::printf("entity\t%s\t%s\t%.3f\n", link.surface.c_str(),
                  knowledge_base.entity(link.concept_ref.id).label.c_str(),
                  link.prior);
    } else {
      std::printf(
          "predicate\t%s\t%s\t%.3f\n", link.surface.c_str(),
          knowledge_base.predicate(link.concept_ref.id).label.c_str(),
          link.prior);
    }
  }
  for (int m : result->isolated_mentions) {
    std::printf("emerging\t%s\t-\t-\n",
                result->mentions.mention(m).surface.c_str());
  }
  std::fprintf(stderr,
               "linked %zu mentions (%zu emerging) in %.2f ms "
               "(extract %.2f, graph %.2f, cover %.2f, disambiguate %.2f)\n",
               result->links.size(), result->isolated_mentions.size(),
               result->timings.TotalMs(), result->timings.extract_ms,
               result->timings.graph_ms, result->timings.cover_ms,
               result->timings.disambiguate_ms);
  if (result->degradation.degraded()) {
    std::fprintf(stderr, "degraded to %s (%d stages skipped): %s\n",
                 std::string(
                     core::DegradationModeToString(result->degradation.mode))
                     .c_str(),
                 result->degradation.stages_degraded,
                 result->degradation.reason.c_str());
  }
  return 0;
}

int CmdBuildWorld(const Args& args) {
  datasets::WorldOptions options;
  options.seed = args.seed;
  datasets::SyntheticWorld world = datasets::BuildWorld(options);
  if (args.shards > 0) {
    kb::ShardedKb sharded = kb::ShardedKb::Partition(
        world.kb(), world.embeddings, args.shards);
    Status saved = sharded.Save(args.kb_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%d shards, %d entities, %d predicates, "
                "%d facts)\n",
                args.kb_path.c_str(), sharded.num_shards(),
                world.kb().num_entities(), world.kb().num_predicates(),
                world.kb().num_facts());
    return 0;
  }
  Status kb_status =
      kb::SaveKnowledgeBase(world.kb(), args.kb_path, args.format);
  if (!kb_status.ok()) {
    std::fprintf(stderr, "%s\n", kb_status.ToString().c_str());
    return 1;
  }
  Status emb_status = kb::SaveEmbeddings(world.embeddings, args.emb_path);
  if (!emb_status.ok()) {
    std::fprintf(stderr, "%s\n", emb_status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%d entities, %d predicates, %d facts) and %s\n",
              args.kb_path.c_str(), world.kb().num_entities(),
              world.kb().num_predicates(), world.kb().num_facts(),
              args.emb_path.c_str());
  return 0;
}

int CmdKbInspect(const Args& args) {
  Result<kb::KbFileInfo> info = kb::InspectKnowledgeBaseFile(args.kb_path);
  if (!info.ok()) {
    std::fprintf(stderr, "%s: %s\n", args.kb_path.c_str(),
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %s, %llu bytes\n", args.kb_path.c_str(),
              info->format.c_str(),
              static_cast<unsigned long long>(info->file_bytes));
  std::printf("  entities %lld, predicates %lld, aliases %lld, facts %lld\n",
              static_cast<long long>(info->entities),
              static_cast<long long>(info->predicates),
              static_cast<long long>(info->aliases),
              static_cast<long long>(info->facts));
  for (const kb::KbSectionInfo& section : info->sections) {
    std::printf("  section %-12s %10llu bytes, %llu items\n",
                section.name.c_str(),
                static_cast<unsigned long long>(section.bytes),
                static_cast<unsigned long long>(section.items));
  }
  if (info->num_shards > 0 && info->shards.empty()) {
    // A single shard snapshot inspected directly.
    std::printf("  shard %d of %d (strided layout)\n", info->shard_index,
                info->num_shards);
  }
  for (size_t s = 0; s < info->shards.size(); ++s) {
    const kb::KbFileInfo& shard = info->shards[s];
    std::printf("  shard %-3zu %10llu bytes: entities %lld, "
                "predicates %lld, aliases %lld, facts %lld\n",
                s, static_cast<unsigned long long>(shard.file_bytes),
                static_cast<long long>(shard.entities),
                static_cast<long long>(shard.predicates),
                static_cast<long long>(shard.aliases),
                static_cast<long long>(shard.facts));
  }
  if (args.emb_path_set) {
    Result<kb::EmbFileInfo> emb = kb::InspectEmbeddingsFile(args.emb_path);
    if (!emb.ok()) {
      std::fprintf(stderr, "%s: %s\n", args.emb_path.c_str(),
                   emb.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: TENETEMB1, %llu bytes, dim %d, %d entities, "
                "%d predicates\n",
                args.emb_path.c_str(),
                static_cast<unsigned long long>(emb->file_bytes),
                emb->dimension, emb->entities, emb->predicates);
  }
  return 0;
}

int CmdKbDelta(const Args& args) {
  // The builder only needs the base id space and the embedding dimension —
  // both live in the snapshot headers, so a delta against a huge KB costs
  // two header reads, not a load.
  Result<kb::KbFileInfo> info = kb::InspectKnowledgeBaseFile(args.kb_path);
  if (!info.ok()) {
    std::fprintf(stderr, "%s: %s\n", args.kb_path.c_str(),
                 info.status().ToString().c_str());
    return 1;
  }
  if (info->num_shards > 0) {
    Status rejected = Status::InvalidArgument(
        "kb delta needs a flat TENETKB2 snapshot; " + args.kb_path +
        " is a sharded layout (" + std::to_string(info->num_shards) +
        " shards).  Sharded layouts are read-only: rebuild them offline "
        "instead of applying deltas");
    std::fprintf(stderr, "%s\n", rejected.ToString().c_str());
    return 1;
  }
  Result<kb::EmbFileInfo> emb = kb::InspectEmbeddingsFile(args.emb_path);
  if (!emb.ok()) {
    std::fprintf(stderr, "%s: %s\n", args.emb_path.c_str(),
                 emb.status().ToString().c_str());
    return 1;
  }
  if (emb->entities != info->entities ||
      emb->predicates != info->predicates) {
    std::fprintf(stderr, "KB and embeddings disagree on concept counts\n");
    return 1;
  }

  kb::DeltaBuilder builder(static_cast<int32_t>(info->entities),
                           static_cast<int32_t>(info->predicates));
  Rng rng(args.seed);
  for (int i = 0; i < args.add_entities; ++i) {
    std::string label = "delta entity " + std::to_string(args.seed) + "-" +
                        std::to_string(i);
    kb::EntityId id = builder.AddEntity(
        label, static_cast<kb::EntityType>(i % kb::kNumEntityTypes),
        /*domain=*/0, /*popularity=*/1.0 + rng.NextDouble());
    builder.AddEntityAlias(id, label + " (alias)", 1.0);
    std::vector<float> row(emb->dimension);
    for (float& v : row) v = static_cast<float>(rng.NextGaussian());
    builder.SetEmbedding(kb::ConceptRef::Entity(id), row);
  }
  Status written = builder.Write(args.out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records: %d entities with aliases + "
              "embeddings over base %lld/%lld)\n",
              args.out_path.c_str(), builder.num_records(),
              args.add_entities, static_cast<long long>(info->entities),
              static_cast<long long>(info->predicates));
  return 0;
}

int CmdKbMerge(const Args& args) {
  if (args.delta_paths.empty()) {
    std::fprintf(stderr, "kb merge needs at least one --delta segment\n");
    return 2;
  }
  Result<kb::KbFileInfo> info = kb::InspectKnowledgeBaseFile(args.kb_path);
  if (info.ok() && info->num_shards > 0) {
    Status rejected = Status::InvalidArgument(
        "kb merge needs a flat TENETKB2 snapshot; " + args.kb_path +
        " is a sharded layout (" + std::to_string(info->num_shards) +
        " shards).  Sharded layouts are read-only: rebuild them offline "
        "instead of merging deltas");
    std::fprintf(stderr, "%s\n", rejected.ToString().c_str());
    return 1;
  }
  Result<std::shared_ptr<const serving::KbGeneration>> merged =
      serving::KbGeneration::Load(args.kb_path, args.emb_path,
                                  args.delta_paths, /*id=*/1);
  if (!merged.ok()) {
    std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
    return 1;
  }
  const kb::DeltaApplyStats& stats = (*merged)->delta_stats();
  std::fprintf(stderr,
               "applied %zu segment(s): +%lld entities, +%lld predicates, "
               "+%lld aliases, %lld prior adjustments, %lld tombstones, "
               "+%lld facts (%lld dropped), %lld embedding rows, "
               "%lld surfaces renormalized\n",
               args.delta_paths.size(),
               static_cast<long long>(stats.added_entities),
               static_cast<long long>(stats.added_predicates),
               static_cast<long long>(stats.added_aliases),
               static_cast<long long>(stats.adjusted_priors),
               static_cast<long long>(stats.tombstones),
               static_cast<long long>(stats.added_facts),
               static_cast<long long>(stats.dropped_facts),
               static_cast<long long>(stats.set_embeddings),
               static_cast<long long>(stats.touched_surfaces));
  Status compacted =
      (*merged)->Compact(args.out_kb_path, args.out_emb_path);
  if (!compacted.ok()) {
    std::fprintf(stderr, "%s\n", compacted.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%d entities, %d predicates, %d facts) and %s\n",
              args.out_kb_path.c_str(), (*merged)->kb().num_entities(),
              (*merged)->kb().num_predicates(),
              (*merged)->kb().num_facts(), args.out_emb_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Args> args = Parse(argc, argv);
  if (!args.has_value()) {
    PrintUsage();
    return 2;
  }

  if (args->command == "build-world") {
    return CmdBuildWorld(*args);
  }

  if (args->command == "kb") {
    if (args->subcommand == "build") return CmdBuildWorld(*args);
    if (args->subcommand == "delta") return CmdKbDelta(*args);
    if (args->subcommand == "merge") return CmdKbMerge(*args);
    return CmdKbInspect(*args);
  }

  if (args->command == "link") {
    Result<kb::KnowledgeBase> knowledge_base =
        kb::LoadKnowledgeBase(args->kb_path);
    if (!knowledge_base.ok()) {
      std::fprintf(stderr, "%s\n",
                   knowledge_base.status().ToString().c_str());
      return 1;
    }
    Result<embedding::EmbeddingStore> embeddings =
        kb::LoadEmbeddings(args->emb_path);
    if (!embeddings.ok()) {
      std::fprintf(stderr, "%s\n", embeddings.status().ToString().c_str());
      return 1;
    }
    if (embeddings->num_entities() != knowledge_base->num_entities() ||
        embeddings->num_predicates() != knowledge_base->num_predicates()) {
      std::fprintf(stderr, "KB and embeddings disagree on concept counts\n");
      return 1;
    }
    text::Gazetteer gazetteer = kb::DeriveGazetteer(*knowledge_base);
    return LinkAndPrint(*knowledge_base, *embeddings, gazetteer, *args);
  }

  if (args->command == "dump-corpora") {
    datasets::WorldOptions options;
    options.seed = args->seed;
    datasets::SyntheticWorld world = datasets::BuildWorld(options);
    datasets::CorpusGenerator generator(&world.kb_world);
    Rng rng(77);  // the bench corpus seed
    for (const datasets::DatasetSpec& spec :
         {datasets::NewsSpec(), datasets::TRex42Spec(),
          datasets::Kore50Spec(), datasets::Msnbc19Spec()}) {
      datasets::Dataset dataset = generator.Generate(spec, rng);
      std::string path = dataset.name + ".tenetds";
      Status status = datasets::SaveDataset(dataset, path);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s (%zu documents)\n", path.c_str(),
                  dataset.documents.size());
    }
    return 0;
  }

  if (args->command == "eval") {
    datasets::WorldOptions options;
    options.seed = args->seed;
    datasets::SyntheticWorld world = datasets::BuildWorld(options);
    core::TenetOptions tenet_options;
    tenet_options.deadline_ms = args->deadline_ms;
    // The cache is installed statically on the coherence-graph options (the
    // substrate carries them into the linker) so both the single-threaded
    // harness path and the served path share it across every document.
    std::unique_ptr<embedding::SimilarityCache> similarity_cache;
    core::CoherenceGraphOptions graph_options;
    if (args->similarity_cache_mb > 0) {
      embedding::SimilarityCacheOptions cache_options;
      cache_options.capacity_bytes =
          static_cast<size_t>(args->similarity_cache_mb) << 20;
      similarity_cache =
          std::make_unique<embedding::SimilarityCache>(cache_options);
      graph_options.similarity_cache = similarity_cache.get();
    }

    // The corpora are generated up front — in spec order off one rng, so
    // the documents are byte-identical to the per-spec loop's — because
    // the live drill below consumes the world's KB before evaluating.
    datasets::CorpusGenerator generator(&world.kb_world);
    Rng rng(77);  // the bench corpus seed
    std::vector<datasets::Dataset> corpora;
    if (args->scenario != "sessions") {
      for (const datasets::DatasetSpec& spec :
           {datasets::NewsSpec(), datasets::TRex42Spec(),
            datasets::Kore50Spec(), datasets::Msnbc19Spec()}) {
        corpora.push_back(generator.Generate(spec, rng));
      }
    }
    if (args->scenario == "adversarial") {
      // Same documents, hostile surface: the seeded mutator layers every
      // mutation class over the clean corpora.  Gold is untouched — the
      // recall/precision drop under noise is the measurement.
      datasets::AdversarialSpec adv_spec;
      adv_spec.seed ^= args->seed;
      datasets::AdversarialMutator mutator(adv_spec);
      for (datasets::Dataset& dataset : corpora) {
        datasets::MutationStats stats;
        dataset = mutator.Mutate(dataset, &stats);
        std::fprintf(stderr,
                     "%s mutations: %d typo words, %d ocr words, "
                     "%d homoglyph words, %d near-dup docs, %d storm docs, "
                     "%d punctuation docs, %d oversized-token docs, "
                     "%d invalid-utf8 docs\n",
                     dataset.name.c_str(), stats.typo_words, stats.ocr_words,
                     stats.homoglyph_words, stats.near_duplicate_docs,
                     stats.ambiguity_storm_docs, stats.punctuation_docs,
                     stats.oversized_token_docs, stats.invalid_utf8_docs);
      }
    }

    int total_crashed = 0;
    std::printf("%-12s %-23s %-23s %-15s %s\n", "dataset", "entity P/R/F",
                "relation P/R/F", "p50/p99 ms", "documents");
    auto report = [&total_crashed](const eval::SystemScores& scores,
                                   const std::string& name) {
      char latency[64];
      std::snprintf(latency, sizeof(latency), "%.2f/%.2f",
                    scores.latency_p50_ms, scores.latency_p99_ms);
      std::printf(
          "%-12s %-23s %-23s %-15s %s | rejected %d | total %.1f ms | "
          "wall %.1f ms\n",
          name.c_str(), eval::FormatPRF(scores.entity_linking).c_str(),
          eval::FormatPRF(scores.relation_linking).c_str(), latency,
          eval::FormatDegradation(scores).c_str(), scores.rejected_documents,
          scores.total_ms, scores.wall_ms);
      for (const eval::DocumentFailure& failure : scores.failures) {
        std::fprintf(stderr, "failed document %s: %s\n",
                     failure.doc_id.c_str(),
                     failure.status.ToString().c_str());
      }
      total_crashed += scores.CrashedDocuments();
    };

    if (args->scenario == "sessions") {
      // Session replay: identical turns scored twice — once through a
      // per-conversation SessionContext, once in isolation.  The gap is
      // the value of session state.
      baselines::TenetLinker tenet(
          baselines::BaselineSubstrate{&world.kb(), &world.embeddings,
                                       &world.gazetteer(), graph_options, {}},
          tenet_options);
      datasets::SessionGenerator session_generator(&world.kb_world);
      datasets::SessionSpec session_spec;
      session_spec.seed ^= args->seed;
      datasets::SessionDataset sessions =
          session_generator.Generate(session_spec, rng);
      eval::SessionEvalOptions with_context;
      eval::SystemScores context_scores =
          eval::EvaluateSessions(tenet, world.kb(), sessions, with_context);
      report(context_scores, "Sessions");
      std::fprintf(stderr,
                   "session layer: %d links re-ranked to memory, "
                   "%d isolated mentions resolved (%d sessions, %d turns)\n",
                   context_scores.session_relinked,
                   context_scores.session_isolated_resolved,
                   static_cast<int>(sessions.sessions.size()),
                   sessions.TotalTurns());
      eval::SessionEvalOptions isolated;
      isolated.use_session_context = false;
      report(eval::EvaluateSessions(tenet, world.kb(), sessions, isolated),
             "Sessions-iso");
    } else if (args->kb_update_every > 0) {
      // Live-update drill: the world moves into generation 1, a
      // generation-aware service serves every corpus, and after every N
      // documents a fresh delta generation is swapped in under the load.
      serving::KbGenerationOptions gen_options;
      gen_options.linker_options = tenet_options;
      gen_options.linker_options.graph = graph_options;
      std::shared_ptr<const serving::KbGeneration> base =
          serving::KbGeneration::FromSubstrate(std::move(world.kb_world.kb),
                                               std::move(world.embeddings),
                                               /*id=*/1, gen_options);
      serving::ServingOptions sopts;
      sopts.num_threads = args->threads;
      sopts.overflow = QueueOverflowPolicy::kBlock;
      size_t max_docs = 1;
      for (const datasets::Dataset& dataset : corpora) {
        max_docs = std::max(max_docs, dataset.documents.size());
      }
      sopts.queue_capacity = max_docs + 1;
      sopts.admission.max_pending = std::numeric_limits<int>::max();
      serving::BatchLinkingService service(base, sopts);

      eval::KbUpdatePlan plan;
      plan.every = args->kb_update_every;
      plan.apply = [&args, &gen_options](
                       serving::BatchLinkingService& svc, int update) {
        std::shared_ptr<const serving::KbGeneration> current =
            svc.generation();
        kb::DeltaBuilder builder(current->kb());
        Rng delta_rng(args->seed * 1000003ull + static_cast<uint64_t>(update));
        // One fresh, unmentioned entity per update: the full delta/apply/
        // swap machinery runs, but no corpus surface is touched, so scores
        // stay comparable to a static run.
        std::string label = "zz live update " + std::to_string(update);
        kb::EntityId id = builder.AddEntity(
            label, kb::EntityType::kPerson, /*domain=*/0, /*popularity=*/1.0);
        builder.AddEntityAlias(id, label + " (alias)", 1.0);
        std::vector<float> row(current->embeddings().dimension());
        for (float& v : row) {
          v = static_cast<float>(delta_rng.NextGaussian());
        }
        builder.SetEmbedding(kb::ConceptRef::Entity(id), row);
        std::vector<kb::DeltaSegment> segments;
        segments.push_back(builder.Build());
        Result<std::shared_ptr<const serving::KbGeneration>> next =
            current->WithDeltas(segments, current->id() + 1, gen_options);
        if (!next.ok()) {
          std::fprintf(stderr, "update %d: %s\n", update,
                       next.status().ToString().c_str());
          return;
        }
        Status swapped = svc.SwapGeneration(*next);
        if (!swapped.ok()) {
          std::fprintf(stderr, "update %d: %s\n", update,
                       swapped.ToString().c_str());
        }
      };

      for (const datasets::Dataset& dataset : corpora) {
        report(eval::EvaluateEndToEndLive(base->linker(), service, dataset,
                                          plan),
               dataset.name);
      }
      serving::ServiceStats stats = service.Stats();
      std::fprintf(stderr,
                   "live updates: generation %lld serving, %lld swaps ok, "
                   "%lld rolled back\n",
                   static_cast<long long>(stats.generation),
                   static_cast<long long>(stats.swaps_ok),
                   static_cast<long long>(stats.swaps_rolled_back));
    } else {
      baselines::TenetLinker tenet(
          baselines::BaselineSubstrate{&world.kb(), &world.embeddings,
                                       &world.gazetteer(), graph_options, {}},
          tenet_options);
      eval::EvalOptions eval_options;
      eval_options.num_threads = args->threads;
      for (const datasets::Dataset& dataset : corpora) {
        report(eval::EvaluateEndToEnd(tenet, dataset, eval_options),
               dataset.name);
      }
    }
    if (similarity_cache != nullptr) {
      embedding::SimilarityCache::Stats cache_stats =
          similarity_cache->GetStats();
      std::fprintf(stderr,
                   "similarity cache: %lld hits, %lld misses (%.1f%% hit "
                   "rate), %lld evictions, %zu resident entries\n",
                   static_cast<long long>(cache_stats.hits),
                   static_cast<long long>(cache_stats.misses),
                   100.0 * cache_stats.HitRate(),
                   static_cast<long long>(cache_stats.evictions),
                   cache_stats.entries);
    }
    if (args->metrics_out.has_value()) {
      const std::string& path = *args->metrics_out;
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      const bool json = path.size() >= 5 &&
                        path.compare(path.size() - 5, 5, ".json") == 0;
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write metrics to %s\n", path.c_str());
        return 1;
      }
      out << (json ? registry->RenderJson()
                   : registry->RenderPrometheusText());
      std::fprintf(stderr, "wrote metrics to %s\n", path.c_str());
    }
    if (total_crashed > 0) {
      std::fprintf(stderr,
                   "%d document(s) crashed (failed beyond guardrail "
                   "rejections)\n",
                   total_crashed);
      return 1;
    }
    return 0;
  }

  if (args->command == "demo") {
    datasets::WorldOptions options;
    options.seed = args->seed;
    datasets::SyntheticWorld world = datasets::BuildWorld(options);
    return LinkAndPrint(world.kb(), world.embeddings, world.gazetteer(),
                        *args);
  }

  PrintUsage();
  return 2;
}
