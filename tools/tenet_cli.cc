// tenet_cli — command-line front-end of the TENET library.
//
//   tenet_cli build-world [--seed N] [--kb PATH] [--emb PATH]
//       Generates the synthetic world and persists the KB + embeddings.
//
//   tenet_cli link --kb PATH --emb PATH [--text "..."] [--candidates K]
//             [--deadline-ms MS] [--trace]
//       Links a document (from --text or stdin) against a persisted world
//       and prints the linked concepts and emerging entities.  With a
//       deadline, an over-budget document degrades to prior-only linking
//       (reported on stderr) instead of failing.  --trace prints the
//       request's span tree (stages, cover retries, degradation rungs) on
//       stderr.
//
//   tenet_cli demo [--seed N]
//       One-shot: builds the world in memory and links stdin.
//
//   tenet_cli dump-corpora [--seed N]
//       Generates the four evaluation corpora and writes them as
//       News.tenetds, T-REx42.tenetds, KORE50.tenetds, MSNBC19.tenetds.
//
//   tenet_cli eval [--seed N] [--threads N] [--deadline-ms MS]
//             [--similarity-cache-mb N] [--metrics-out FILE]
//       Builds the synthetic world, generates the evaluation corpora and
//       scores TENET end-to-end on each.  With --threads N > 1 the batch
//       is served through the concurrent BatchLinkingService.  Exits
//       non-zero when any document failed, listing each failure.
//       --similarity-cache-mb N shares an N-MiB cross-document similarity
//       cache across the whole run (cached values are bit-identical to
//       computed ones, so scores are unchanged) and reports the cache hit
//       rate afterwards.  --metrics-out writes the run's metrics registry
//       to FILE in Prometheus text format (JSON when FILE ends in .json).
//
//   tenet_cli kb build [--seed N] [--kb PATH] [--emb PATH]
//             [--format text|binary]
//       Like build-world, with an explicit snapshot format: binary writes
//       the TENETKB2 snapshot (the default everywhere), text the legacy
//       TENETKB v1 container (for diffing/debugging).
//
//   tenet_cli kb inspect [--kb PATH] [--emb PATH]
//       Prints the format, logical counts and (for binary snapshots) the
//       section table of a KB file without materializing it, plus the
//       embedding header when --emb is given.  Validates the same
//       header/section invariants as the loader.
//
// All numeric flags are parsed strictly: "--threads 4x" is an error (exit
// code 2 + usage), not silently 4.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "baselines/tenet_linker.h"
#include "core/link_context.h"
#include "embedding/similarity_cache.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "datasets/world.h"
#include "datasets/corpus_generator.h"
#include "datasets/io.h"
#include "common/string_util.h"
#include "eval/harness.h"
#include "kb/io.h"

using namespace tenet;

namespace {

struct Args {
  std::string command;
  std::string subcommand;  // of the "kb" command: build or inspect
  uint64_t seed = 2021;
  std::string kb_path = "world.tenetkb";
  std::string emb_path = "world.tenetemb";
  bool emb_path_set = false;
  kb::KbFormat format = kb::KbFormat::kBinaryV2;
  std::optional<std::string> document_text;
  int candidates = 4;
  double deadline_ms = std::numeric_limits<double>::infinity();
  int threads = 1;
  int similarity_cache_mb = 0;
  std::optional<std::string> metrics_out;
  bool trace = false;
};

// Strict integer flag: the whole value must parse (no "4x", no empty), and
// it must lie in [min, max].  Anything else fails the parse -> exit 2.
bool ParseIntFlag(const char* flag, const char* value, int64_t min,
                  int64_t max, int64_t* out) {
  Result<int64_t> parsed = ParseInt64(value);
  if (!parsed.ok() || *parsed < min || *parsed > max) {
    std::fprintf(stderr, "%s expects an integer in [%lld, %lld], got: %s\n",
                 flag, static_cast<long long>(min),
                 static_cast<long long>(max), value);
    return false;
  }
  *out = *parsed;
  return true;
}

std::optional<Args> Parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  int first_flag = 2;
  if (args.command == "kb") {
    if (argc < 3) return std::nullopt;
    args.subcommand = argv[2];
    if (args.subcommand != "build" && args.subcommand != "inspect") {
      std::fprintf(stderr, "unknown kb subcommand: %s\n",
                   args.subcommand.c_str());
      return std::nullopt;
    }
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      int64_t seed = 0;
      if (!ParseIntFlag("--seed", v, 0,
                        std::numeric_limits<int64_t>::max(), &seed)) {
        return std::nullopt;
      }
      args.seed = static_cast<uint64_t>(seed);
    } else if (flag == "--kb") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.kb_path = v;
    } else if (flag == "--emb") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.emb_path = v;
      args.emb_path_set = true;
    } else if (flag == "--format") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      if (std::string_view(v) == "text") {
        args.format = kb::KbFormat::kTextV1;
      } else if (std::string_view(v) == "binary") {
        args.format = kb::KbFormat::kBinaryV2;
      } else {
        std::fprintf(stderr, "--format expects text or binary, got: %s\n", v);
        return std::nullopt;
      }
    } else if (flag == "--text") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.document_text = std::string(v);
    } else if (flag == "--candidates") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      int64_t candidates = 0;
      if (!ParseIntFlag("--candidates", v, 1,
                        std::numeric_limits<int>::max(), &candidates)) {
        return std::nullopt;
      }
      args.candidates = static_cast<int>(candidates);
    } else if (flag == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      Result<double> deadline = ParseFloat64(v);
      if (!deadline.ok() || *deadline < 0.0) {
        std::fprintf(stderr,
                     "--deadline-ms expects a non-negative number, got: %s\n",
                     v);
        return std::nullopt;
      }
      args.deadline_ms = *deadline;
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      int64_t threads = 0;
      if (!ParseIntFlag("--threads", v, 1, 4096, &threads)) {
        return std::nullopt;
      }
      args.threads = static_cast<int>(threads);
    } else if (flag == "--similarity-cache-mb") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      int64_t mb = 0;
      if (!ParseIntFlag("--similarity-cache-mb", v, 0, 1 << 20, &mb)) {
        return std::nullopt;
      }
      args.similarity_cache_mb = static_cast<int>(mb);
    } else if (flag == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.metrics_out = std::string(v);
    } else if (flag == "--trace") {
      args.trace = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return std::nullopt;
    }
  }
  return args;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tenet_cli build-world [--seed N] [--kb PATH] [--emb PATH]\n"
      "  tenet_cli link --kb PATH --emb PATH [--text \"...\"] "
      "[--candidates K] [--deadline-ms MS] [--trace]\n"
      "  tenet_cli demo [--seed N]\n"
      "  tenet_cli dump-corpora [--seed N]\n"
      "  tenet_cli eval [--seed N] [--threads N] [--deadline-ms MS] "
      "[--similarity-cache-mb N] [--metrics-out FILE]\n"
      "  tenet_cli kb build [--seed N] [--kb PATH] [--emb PATH] "
      "[--format text|binary]\n"
      "  tenet_cli kb inspect [--kb PATH] [--emb PATH]\n");
}

std::string ReadStdin() {
  std::string text;
  std::string line;
  while (std::getline(std::cin, line)) {
    text += line;
    text += ' ';
  }
  return text;
}

int LinkAndPrint(const kb::KnowledgeBase& knowledge_base,
                 const embedding::EmbeddingStore& embeddings,
                 const text::Gazetteer& gazetteer, const Args& args) {
  core::TenetOptions options;
  options.graph.max_candidates_per_mention = args.candidates;
  options.deadline_ms = args.deadline_ms;
  core::TenetPipeline tenet(&knowledge_base, &embeddings, &gazetteer,
                            options);
  std::string document =
      args.document_text.has_value() ? *args.document_text : ReadStdin();
  obs::Trace trace;
  core::LinkContext context;
  if (args.trace) context.trace = &trace;
  Result<core::LinkingResult> result = tenet.LinkDocument(document, context);
  if (args.trace) {
    std::fprintf(stderr, "%s", trace.Render().c_str());
  }
  if (!result.ok()) {
    std::fprintf(stderr, "linking failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  for (const core::LinkedConcept& link : result->links) {
    if (link.kind == core::Mention::Kind::kNoun) {
      std::printf("entity\t%s\t%s\t%.3f\n", link.surface.c_str(),
                  knowledge_base.entity(link.concept_ref.id).label.c_str(),
                  link.prior);
    } else {
      std::printf(
          "predicate\t%s\t%s\t%.3f\n", link.surface.c_str(),
          knowledge_base.predicate(link.concept_ref.id).label.c_str(),
          link.prior);
    }
  }
  for (int m : result->isolated_mentions) {
    std::printf("emerging\t%s\t-\t-\n",
                result->mentions.mention(m).surface.c_str());
  }
  std::fprintf(stderr,
               "linked %zu mentions (%zu emerging) in %.2f ms "
               "(extract %.2f, graph %.2f, cover %.2f, disambiguate %.2f)\n",
               result->links.size(), result->isolated_mentions.size(),
               result->timings.TotalMs(), result->timings.extract_ms,
               result->timings.graph_ms, result->timings.cover_ms,
               result->timings.disambiguate_ms);
  if (result->degradation.degraded()) {
    std::fprintf(stderr, "degraded to %s (%d stages skipped): %s\n",
                 std::string(
                     core::DegradationModeToString(result->degradation.mode))
                     .c_str(),
                 result->degradation.stages_degraded,
                 result->degradation.reason.c_str());
  }
  return 0;
}

int CmdBuildWorld(const Args& args) {
  datasets::WorldOptions options;
  options.seed = args.seed;
  datasets::SyntheticWorld world = datasets::BuildWorld(options);
  Status kb_status =
      kb::SaveKnowledgeBase(world.kb(), args.kb_path, args.format);
  if (!kb_status.ok()) {
    std::fprintf(stderr, "%s\n", kb_status.ToString().c_str());
    return 1;
  }
  Status emb_status = kb::SaveEmbeddings(world.embeddings, args.emb_path);
  if (!emb_status.ok()) {
    std::fprintf(stderr, "%s\n", emb_status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%d entities, %d predicates, %d facts) and %s\n",
              args.kb_path.c_str(), world.kb().num_entities(),
              world.kb().num_predicates(), world.kb().num_facts(),
              args.emb_path.c_str());
  return 0;
}

int CmdKbInspect(const Args& args) {
  Result<kb::KbFileInfo> info = kb::InspectKnowledgeBaseFile(args.kb_path);
  if (!info.ok()) {
    std::fprintf(stderr, "%s: %s\n", args.kb_path.c_str(),
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %s, %llu bytes\n", args.kb_path.c_str(),
              info->format.c_str(),
              static_cast<unsigned long long>(info->file_bytes));
  std::printf("  entities %lld, predicates %lld, aliases %lld, facts %lld\n",
              static_cast<long long>(info->entities),
              static_cast<long long>(info->predicates),
              static_cast<long long>(info->aliases),
              static_cast<long long>(info->facts));
  for (const kb::KbSectionInfo& section : info->sections) {
    std::printf("  section %-12s %10llu bytes, %llu items\n",
                section.name.c_str(),
                static_cast<unsigned long long>(section.bytes),
                static_cast<unsigned long long>(section.items));
  }
  if (args.emb_path_set) {
    Result<kb::EmbFileInfo> emb = kb::InspectEmbeddingsFile(args.emb_path);
    if (!emb.ok()) {
      std::fprintf(stderr, "%s: %s\n", args.emb_path.c_str(),
                   emb.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: TENETEMB1, %llu bytes, dim %d, %d entities, "
                "%d predicates\n",
                args.emb_path.c_str(),
                static_cast<unsigned long long>(emb->file_bytes),
                emb->dimension, emb->entities, emb->predicates);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Args> args = Parse(argc, argv);
  if (!args.has_value()) {
    PrintUsage();
    return 2;
  }

  if (args->command == "build-world") {
    return CmdBuildWorld(*args);
  }

  if (args->command == "kb") {
    return args->subcommand == "build" ? CmdBuildWorld(*args)
                                       : CmdKbInspect(*args);
  }

  if (args->command == "link") {
    Result<kb::KnowledgeBase> knowledge_base =
        kb::LoadKnowledgeBase(args->kb_path);
    if (!knowledge_base.ok()) {
      std::fprintf(stderr, "%s\n",
                   knowledge_base.status().ToString().c_str());
      return 1;
    }
    Result<embedding::EmbeddingStore> embeddings =
        kb::LoadEmbeddings(args->emb_path);
    if (!embeddings.ok()) {
      std::fprintf(stderr, "%s\n", embeddings.status().ToString().c_str());
      return 1;
    }
    if (embeddings->num_entities() != knowledge_base->num_entities() ||
        embeddings->num_predicates() != knowledge_base->num_predicates()) {
      std::fprintf(stderr, "KB and embeddings disagree on concept counts\n");
      return 1;
    }
    text::Gazetteer gazetteer = kb::DeriveGazetteer(*knowledge_base);
    return LinkAndPrint(*knowledge_base, *embeddings, gazetteer, *args);
  }

  if (args->command == "dump-corpora") {
    datasets::WorldOptions options;
    options.seed = args->seed;
    datasets::SyntheticWorld world = datasets::BuildWorld(options);
    datasets::CorpusGenerator generator(&world.kb_world);
    Rng rng(77);  // the bench corpus seed
    for (const datasets::DatasetSpec& spec :
         {datasets::NewsSpec(), datasets::TRex42Spec(),
          datasets::Kore50Spec(), datasets::Msnbc19Spec()}) {
      datasets::Dataset dataset = generator.Generate(spec, rng);
      std::string path = dataset.name + ".tenetds";
      Status status = datasets::SaveDataset(dataset, path);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s (%zu documents)\n", path.c_str(),
                  dataset.documents.size());
    }
    return 0;
  }

  if (args->command == "eval") {
    datasets::WorldOptions options;
    options.seed = args->seed;
    datasets::SyntheticWorld world = datasets::BuildWorld(options);
    core::TenetOptions tenet_options;
    tenet_options.deadline_ms = args->deadline_ms;
    // The cache is installed statically on the coherence-graph options (the
    // substrate carries them into the linker) so both the single-threaded
    // harness path and the served path share it across every document.
    std::unique_ptr<embedding::SimilarityCache> similarity_cache;
    core::CoherenceGraphOptions graph_options;
    if (args->similarity_cache_mb > 0) {
      embedding::SimilarityCacheOptions cache_options;
      cache_options.capacity_bytes =
          static_cast<size_t>(args->similarity_cache_mb) << 20;
      similarity_cache =
          std::make_unique<embedding::SimilarityCache>(cache_options);
      graph_options.similarity_cache = similarity_cache.get();
    }
    baselines::TenetLinker tenet(
        baselines::BaselineSubstrate{&world.kb(), &world.embeddings,
                                     &world.gazetteer(), graph_options},
        tenet_options);
    eval::EvalOptions eval_options;
    eval_options.num_threads = args->threads;

    datasets::CorpusGenerator generator(&world.kb_world);
    Rng rng(77);  // the bench corpus seed
    int total_failed = 0;
    std::printf("%-10s %-23s %-23s %s\n", "dataset", "entity P/R/F",
                "relation P/R/F", "documents");
    for (const datasets::DatasetSpec& spec :
         {datasets::NewsSpec(), datasets::TRex42Spec(),
          datasets::Kore50Spec(), datasets::Msnbc19Spec()}) {
      datasets::Dataset dataset = generator.Generate(spec, rng);
      eval::SystemScores scores =
          eval::EvaluateEndToEnd(tenet, dataset, eval_options);
      std::printf("%-10s %-23s %-23s %s | total %.1f ms | wall %.1f ms\n",
                  dataset.name.c_str(),
                  eval::FormatPRF(scores.entity_linking).c_str(),
                  eval::FormatPRF(scores.relation_linking).c_str(),
                  eval::FormatDegradation(scores).c_str(), scores.total_ms,
                  scores.wall_ms);
      for (const eval::DocumentFailure& failure : scores.failures) {
        std::fprintf(stderr, "failed document %s: %s\n",
                     failure.doc_id.c_str(),
                     failure.status.ToString().c_str());
      }
      total_failed += scores.failed_documents;
    }
    if (similarity_cache != nullptr) {
      embedding::SimilarityCache::Stats cache_stats =
          similarity_cache->GetStats();
      std::fprintf(stderr,
                   "similarity cache: %lld hits, %lld misses (%.1f%% hit "
                   "rate), %lld evictions, %zu resident entries\n",
                   static_cast<long long>(cache_stats.hits),
                   static_cast<long long>(cache_stats.misses),
                   100.0 * cache_stats.HitRate(),
                   static_cast<long long>(cache_stats.evictions),
                   cache_stats.entries);
    }
    if (args->metrics_out.has_value()) {
      const std::string& path = *args->metrics_out;
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      const bool json = path.size() >= 5 &&
                        path.compare(path.size() - 5, 5, ".json") == 0;
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write metrics to %s\n", path.c_str());
        return 1;
      }
      out << (json ? registry->RenderJson()
                   : registry->RenderPrometheusText());
      std::fprintf(stderr, "wrote metrics to %s\n", path.c_str());
    }
    if (total_failed > 0) {
      std::fprintf(stderr, "%d document(s) failed\n", total_failed);
      return 1;
    }
    return 0;
  }

  if (args->command == "demo") {
    datasets::WorldOptions options;
    options.seed = args->seed;
    datasets::SyntheticWorld world = datasets::BuildWorld(options);
    return LinkAndPrint(world.kb(), world.embeddings, world.gazetteer(),
                        *args);
  }

  PrintUsage();
  return 2;
}
