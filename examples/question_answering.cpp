// Question answering over the KB (the downstream task motivating
// Falcon/EARL in the paper's introduction): TENET links the question's
// noun phrase and relational phrase jointly, then the KB is queried with
// the linked (predicate, entity) pair.
//
//   $ ./build/examples/question_answering
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/pipeline.h"
#include "datasets/world.h"
#include "text/wordlists.h"

using namespace tenet;

namespace {

// Answers "Who/What <relational phrase> <Entity>?" by joint linking + a
// fact scan.  Returns the labels of matching subjects.
std::vector<std::string> Answer(const datasets::SyntheticWorld& world,
                                const core::TenetPipeline& tenet,
                                const std::string& question) {
  // The pipeline consumes statements; strip the interrogative lead-in so
  // the relational phrase connects the (implicit) subject to the entity.
  std::string statement = question;
  for (const char* prefix : {"Who ", "What "}) {
    if (statement.rfind(prefix, 0) == 0) {
      // A placeholder subject anchors the relational phrase; it has no KB
      // candidates, so it cannot distort the linking.
      statement = "Someone " + statement.substr(std::string(prefix).size());
      break;
    }
  }
  if (!statement.empty() && statement.back() == '?') {
    statement.back() = '.';
  }

  Result<core::LinkingResult> result = tenet.LinkDocument(statement);
  std::vector<std::string> answers;
  if (!result.ok()) return answers;

  kb::EntityId entity = kb::kInvalidEntity;
  kb::PredicateId predicate = kb::kInvalidPredicate;
  for (const core::LinkedConcept& link : result->links) {
    if (link.kind == core::Mention::Kind::kNoun &&
        entity == kb::kInvalidEntity) {
      entity = link.concept_ref.id;
    }
    if (link.kind == core::Mention::Kind::kRelational &&
        predicate == kb::kInvalidPredicate) {
      predicate = link.concept_ref.id;
    }
  }
  if (entity == kb::kInvalidEntity || predicate == kb::kInvalidPredicate) {
    return answers;
  }
  for (int32_t fact_index : world.kb().FactsOfEntity(entity)) {
    const kb::Triple& t = world.kb().facts()[fact_index];
    if (t.predicate != predicate || !t.object_is_entity) continue;
    kb::EntityId other = t.subject == entity ? t.object_entity : t.subject;
    answers.push_back(world.kb().entity(other).label);
  }
  return answers;
}

}  // namespace

int main() {
  datasets::SyntheticWorld world = datasets::BuildWorld();
  core::TenetPipeline tenet(&world.kb(), &world.embeddings,
                            &world.gazetteer());

  // Build a handful of answerable questions from actual KB facts, using a
  // predicate surface and the object's label.
  std::vector<std::string> questions;
  Rng rng(11);
  int attempts = 0;
  while (questions.size() < 5 && ++attempts < 500) {
    const kb::Triple& t =
        world.kb().facts()[rng.NextUint64(world.kb().num_facts())];
    if (!t.object_is_entity) continue;
    const std::string& verb = world.kb().predicate(t.predicate).label;
    const std::string& object = world.kb().entity(t.object_entity).label;
    if (!IsCapitalized(object)) continue;  // keep the extraction simple
    // Render the verb in third person; the lemmatizer maps it back.
    const text::VerbForms* forms =
        text::FindVerbByLemma(SplitString(verb, ' ')[0]);
    if (forms == nullptr) continue;
    std::vector<std::string> words = SplitString(verb, ' ');
    words[0] = std::string(forms->third);
    questions.push_back("Who " + JoinStrings(words, " ") + " " + object +
                        "?");
  }

  for (const std::string& question : questions) {
    std::printf("Q: %s\n", question.c_str());
    std::vector<std::string> answers = Answer(world, tenet, question);
    if (answers.empty()) {
      std::printf("A: (no KB answer found)\n\n");
      continue;
    }
    for (const std::string& a : answers) {
      std::printf("A: %s\n", a.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
