// Quickstart: build a tiny knowledge base, train embeddings, and run the
// TENET pipeline end-to-end on the paper's Figure 1 document.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the three public pieces a downstream user touches:
//   kb::KnowledgeBase         — the target KB (entities, predicates, facts)
//   embedding::EmbeddingStore — concept vectors behind Equations 3-5
//   core::TenetPipeline       — extraction -> coherence graph -> tree cover
//                               -> canopies -> disambiguation
#include <cstdio>

#include "common/rng.h"
#include "core/pipeline.h"
#include "embedding/trainer.h"
#include "kb/knowledge_base.h"
#include "text/gazetteer.h"

using namespace tenet;

int main() {
  // ---- 1. Build a miniature KB (Figure 1's world) -------------------------
  kb::KnowledgeBase knowledge_base;
  kb::EntityId professor = knowledge_base.AddEntity(
      "M. Jordan (professor)", kb::EntityType::kPerson, /*domain=*/0,
      /*popularity=*/3.0);
  kb::EntityId player = knowledge_base.AddEntity(
      "M. Jordan (basketball player)", kb::EntityType::kPerson, 1, 7.0);
  // One surface, two senses — the player is the popular default.
  knowledge_base.AddEntityAlias(professor, "Michael Jordan", 3.0);
  knowledge_base.AddEntityAlias(player, "Michael Jordan", 7.0);
  kb::EntityId ai = knowledge_base.AddEntity("artificial intelligence",
                                             kb::EntityType::kTopic, 0, 2.0);
  kb::EntityId ml = knowledge_base.AddEntity("machine learning",
                                             kb::EntityType::kTopic, 0, 2.0);
  kb::EntityId fellowship = knowledge_base.AddEntity(
      "Fellow of the AAAS", kb::EntityType::kOther, 0, 1.0);
  kb::EntityId brooklyn =
      knowledge_base.AddEntity("Brooklyn", kb::EntityType::kLocation, 2, 4.0);

  kb::PredicateId field = knowledge_base.AddPredicate("field of study", 0);
  knowledge_base.AddPredicateAlias(field, "study", 2.0);
  kb::PredicateId educated = knowledge_base.AddPredicate("educated at", 0);
  knowledge_base.AddPredicateAlias(educated, "study", 1.0);
  kb::PredicateId award = knowledge_base.AddPredicate("award received", 0);
  kb::PredicateId visited = knowledge_base.AddPredicate("visit", 2);
  (void)visited;

  TENET_CHECK(knowledge_base.AddFact(professor, field, ai).ok());
  TENET_CHECK(knowledge_base.AddFact(professor, field, ml).ok());
  TENET_CHECK(knowledge_base.AddFact(professor, award, fellowship).ok());
  knowledge_base.Finalize();

  // ---- 2. Train structural embeddings -------------------------------------
  Rng rng(2021);
  embedding::EmbeddingStore embeddings =
      embedding::StructuralEmbeddingTrainer().Train(knowledge_base, rng);

  // ---- 3. NER gazetteer from the KB surfaces ------------------------------
  text::Gazetteer gazetteer;
  for (kb::EntityId id = 0; id < knowledge_base.num_entities(); ++id) {
    const kb::EntityRecord& rec = knowledge_base.entity(id);
    gazetteer.AddSurface(rec.label, rec.type,
                         rec.type == kb::EntityType::kTopic);
  }
  gazetteer.AddSurface("Michael Jordan", kb::EntityType::kPerson);
  gazetteer.AddSurface("AAAS", kb::EntityType::kOther);
  gazetteer.AddSurface("Fellow", kb::EntityType::kOther);

  // ---- 4. Link a document --------------------------------------------------
  core::TenetPipeline tenet(&knowledge_base, &embeddings, &gazetteer);
  const char* document =
      "Michael Jordan studies artificial intelligence and machine learning. "
      "He was awarded as the Fellow of the AAAS. "
      "He visited Brooklyn in April 2019.";
  Result<core::LinkingResult> result = tenet.LinkDocument(document);
  if (!result.ok()) {
    std::fprintf(stderr, "linking failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Document:\n  %s\n\nLinked concepts:\n", document);
  for (const core::LinkedConcept& link : result->links) {
    if (link.kind == core::Mention::Kind::kNoun) {
      std::printf("  [entity]    %-32s -> %s\n", link.surface.c_str(),
                  knowledge_base.entity(link.concept_ref.id).label.c_str());
    } else {
      std::printf("  [predicate] %-32s -> %s\n", link.surface.c_str(),
                  knowledge_base.predicate(link.concept_ref.id).label.c_str());
    }
  }
  std::printf("\nIsolated / emerging concepts:\n");
  for (int m : result->isolated_mentions) {
    std::printf("  [new]       %s\n",
                result->mentions.mention(m).surface.c_str());
  }
  std::printf(
      "\nNote how coherence overrides popularity: \"Michael Jordan\" links "
      "to the\nprofessor (prior 0.3) because the document's topics pull the "
      "tree cover that\nway, while Brooklyn links independently (sparse "
      "coherence) and \"April 2019\"\nis recognized as an emerging "
      "concept.\n");
  (void)brooklyn;
  return 0;
}
