// KB population (the downstream task motivating KBPearl/QKBfly in the
// paper's introduction): link a news corpus with TENET, harvest candidate
// facts and emerging entities with core::KbPopulator, and apply them to a
// fresh KB generation.
//
//   $ ./build/examples/kb_population
#include <cstdio>

#include "core/pipeline.h"
#include "core/population.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"

using namespace tenet;

int main() {
  // Substrate: synthetic world + a small news corpus.
  datasets::SyntheticWorld world = datasets::BuildWorld();
  datasets::CorpusGenerator generator(&world.kb_world);
  Rng rng(7);
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 6;
  datasets::Dataset corpus = generator.Generate(spec, rng);

  core::TenetPipeline tenet(&world.kb(), &world.embeddings,
                            &world.gazetteer());
  core::KbPopulator populator(&world.kb());

  core::PopulationReport report;
  int linked_mentions = 0;
  for (const datasets::Document& doc : corpus.documents) {
    Result<core::LinkingResult> result = tenet.LinkDocument(doc.text);
    if (!result.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", doc.id.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    linked_mentions += static_cast<int>(result->links.size());
    populator.Accumulate(*result, &report);
  }

  std::printf("Processed %zu documents, %d linked mentions.\n\n",
              corpus.documents.size(), linked_mentions);

  std::printf("Candidate facts for KB population (first 12 of %zu, %d new):\n",
              report.facts.size(), report.NumNewFacts());
  int shown = 0;
  for (const core::FactCandidate& fact : report.facts) {
    if (shown++ >= 12) break;
    std::printf("  (%s | %s | %s)%s  support=%d\n",
                world.kb().entity(fact.subject).label.c_str(),
                world.kb().predicate(fact.predicate).label.c_str(),
                world.kb().entity(fact.object).label.c_str(),
                fact.already_known ? "  [already in KB]" : "  [NEW]",
                fact.support);
  }

  std::printf("\nEmerging entities proposed for KB insertion:\n");
  for (const core::EmergingEntity& entity : report.entities) {
    std::printf("  %-28s seen %d time(s)\n", entity.surface.c_str(),
                entity.support);
  }

  // Apply the report to a rebuilt KB (same concepts, fresh build phase).
  kb::KnowledgeBase target;
  for (kb::EntityId id = 0; id < world.kb().num_entities(); ++id) {
    const kb::EntityRecord& rec = world.kb().entity(id);
    target.AddEntity(rec.label, rec.type, rec.domain, rec.popularity);
  }
  for (kb::PredicateId id = 0; id < world.kb().num_predicates(); ++id) {
    const kb::PredicateRecord& rec = world.kb().predicate(id);
    target.AddPredicate(rec.label, rec.domain, rec.popularity);
  }
  for (const kb::Triple& t : world.kb().facts()) {
    if (t.object_is_entity) {
      (void)target.AddFact(t.subject, t.predicate, t.object_entity);
    } else {
      (void)target.AddLiteralFact(t.subject, t.predicate, t.object_literal);
    }
  }
  int added = populator.ApplyToKb(report, /*min_support=*/1,
                                  kb::EntityType::kOther, &target);
  target.Finalize();
  std::printf(
      "\nApplied to a rebuilt KB: +%d facts, +%d entities "
      "(%d -> %d entities, %d -> %d facts).\n",
      added, target.num_entities() - world.kb().num_entities(),
      world.kb().num_entities(), target.num_entities(),
      world.kb().num_facts(), target.num_facts());
  return 0;
}
