// Emerging-entity discovery: the advertisement scenario of Sec. 6.2.
// Fresh product/organization names that cannot be linked anywhere in the
// KB must be *recognized* as isolated concepts rather than forced onto the
// nearest popular entity.  This example contrasts TENET with a
// global-coherence baseline on advertisement-style articles.
//
//   $ ./build/examples/isolated_concepts
#include <cstdio>
#include <map>

#include "baselines/qkbfly_like.h"
#include "baselines/tenet_linker.h"
#include "datasets/corpus_generator.h"
#include "datasets/world.h"
#include "common/string_util.h"
#include "eval/metrics.h"

using namespace tenet;

int main() {
  datasets::SyntheticWorld world = datasets::BuildWorld();
  datasets::CorpusGenerator generator(&world.kb_world);

  // Advertisement-style documents: many fresh phrases.
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = 8;
  spec.advertisement_fraction = 1.0;
  Rng rng(13);
  datasets::Dataset ads = generator.Generate(spec, rng);

  baselines::BaselineSubstrate substrate{
      &world.kb(), &world.embeddings, &world.gazetteer(), {}, {}};
  baselines::TenetLinker tenet(substrate);
  baselines::QkbflyLike qkbfly(substrate);

  eval::PRF tenet_prf;
  eval::PRF qkbfly_prf;
  std::map<std::string, bool> tenet_claims;  // surface -> actually fresh?

  for (const datasets::Document& doc : ads.documents) {
    Result<core::LinkingResult> t = tenet.LinkDocument(doc.text);
    Result<core::LinkingResult> q = qkbfly.LinkDocument(doc.text);
    if (!t.ok() || !q.ok()) continue;
    eval::SystemPrediction tp = eval::FromLinkingResult(*t);
    eval::SystemPrediction qp = eval::FromLinkingResult(*q);
    tenet_prf.Add(eval::ScoreIsolatedDetection(doc, tp));
    qkbfly_prf.Add(eval::ScoreIsolatedDetection(doc, qp));

    // Record TENET's claims against the gold annotation for the report.
    std::map<std::string, bool> gold_fresh;
    for (const datasets::GoldEntityLink& g : doc.gold_entities) {
      gold_fresh[AsciiToLower(g.surface)] = !g.linkable();
    }
    for (const std::string& surface : tp.isolated_noun_surfaces) {
      auto it = gold_fresh.find(surface);
      tenet_claims[surface] = it != gold_fresh.end() && it->second;
    }
  }

  std::printf("Isolated-concept detection on %zu advertisement articles\n\n",
              ads.documents.size());
  std::printf("  %-8s  precision %.3f  recall %.3f\n", "TENET",
              tenet_prf.Precision(), tenet_prf.Recall());
  std::printf("  %-8s  precision %.3f  recall %.3f\n\n", "QKBfly",
              qkbfly_prf.Precision(), qkbfly_prf.Recall());

  std::printf("Phrases TENET reported as emerging concepts:\n");
  for (const auto& [surface, correct] : tenet_claims) {
    std::printf("  %-32s %s\n", surface.c_str(),
                correct ? "(correct: not in KB)"
                        : "(incorrect: linkable in gold)");
  }
  std::printf(
      "\nGlobal-coherence systems either force fresh phrases onto popular "
      "KB entities\nor drop sparse-but-linkable ones; the tree cover keeps "
      "both apart.\n");
  return 0;
}
