# Empty compiler generated dependencies file for tenet.
# This may be replaced when dependencies are built.
