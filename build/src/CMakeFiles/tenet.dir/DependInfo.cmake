
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/common.cc" "src/CMakeFiles/tenet.dir/baselines/common.cc.o" "gcc" "src/CMakeFiles/tenet.dir/baselines/common.cc.o.d"
  "/root/repo/src/baselines/earl_like.cc" "src/CMakeFiles/tenet.dir/baselines/earl_like.cc.o" "gcc" "src/CMakeFiles/tenet.dir/baselines/earl_like.cc.o.d"
  "/root/repo/src/baselines/falcon_like.cc" "src/CMakeFiles/tenet.dir/baselines/falcon_like.cc.o" "gcc" "src/CMakeFiles/tenet.dir/baselines/falcon_like.cc.o.d"
  "/root/repo/src/baselines/kbpearl_like.cc" "src/CMakeFiles/tenet.dir/baselines/kbpearl_like.cc.o" "gcc" "src/CMakeFiles/tenet.dir/baselines/kbpearl_like.cc.o.d"
  "/root/repo/src/baselines/mintree_like.cc" "src/CMakeFiles/tenet.dir/baselines/mintree_like.cc.o" "gcc" "src/CMakeFiles/tenet.dir/baselines/mintree_like.cc.o.d"
  "/root/repo/src/baselines/qkbfly_like.cc" "src/CMakeFiles/tenet.dir/baselines/qkbfly_like.cc.o" "gcc" "src/CMakeFiles/tenet.dir/baselines/qkbfly_like.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/tenet.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/tenet.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/tenet.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/tenet.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/tenet.dir/common/status.cc.o" "gcc" "src/CMakeFiles/tenet.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/tenet.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/tenet.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/canopy.cc" "src/CMakeFiles/tenet.dir/core/canopy.cc.o" "gcc" "src/CMakeFiles/tenet.dir/core/canopy.cc.o.d"
  "/root/repo/src/core/coherence_graph.cc" "src/CMakeFiles/tenet.dir/core/coherence_graph.cc.o" "gcc" "src/CMakeFiles/tenet.dir/core/coherence_graph.cc.o.d"
  "/root/repo/src/core/disambiguator.cc" "src/CMakeFiles/tenet.dir/core/disambiguator.cc.o" "gcc" "src/CMakeFiles/tenet.dir/core/disambiguator.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/tenet.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/tenet.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/population.cc" "src/CMakeFiles/tenet.dir/core/population.cc.o" "gcc" "src/CMakeFiles/tenet.dir/core/population.cc.o.d"
  "/root/repo/src/core/tree_cover.cc" "src/CMakeFiles/tenet.dir/core/tree_cover.cc.o" "gcc" "src/CMakeFiles/tenet.dir/core/tree_cover.cc.o.d"
  "/root/repo/src/core/tree_split.cc" "src/CMakeFiles/tenet.dir/core/tree_split.cc.o" "gcc" "src/CMakeFiles/tenet.dir/core/tree_split.cc.o.d"
  "/root/repo/src/datasets/corpus_generator.cc" "src/CMakeFiles/tenet.dir/datasets/corpus_generator.cc.o" "gcc" "src/CMakeFiles/tenet.dir/datasets/corpus_generator.cc.o.d"
  "/root/repo/src/datasets/io.cc" "src/CMakeFiles/tenet.dir/datasets/io.cc.o" "gcc" "src/CMakeFiles/tenet.dir/datasets/io.cc.o.d"
  "/root/repo/src/datasets/spec.cc" "src/CMakeFiles/tenet.dir/datasets/spec.cc.o" "gcc" "src/CMakeFiles/tenet.dir/datasets/spec.cc.o.d"
  "/root/repo/src/datasets/world.cc" "src/CMakeFiles/tenet.dir/datasets/world.cc.o" "gcc" "src/CMakeFiles/tenet.dir/datasets/world.cc.o.d"
  "/root/repo/src/embedding/embedding_store.cc" "src/CMakeFiles/tenet.dir/embedding/embedding_store.cc.o" "gcc" "src/CMakeFiles/tenet.dir/embedding/embedding_store.cc.o.d"
  "/root/repo/src/embedding/trainer.cc" "src/CMakeFiles/tenet.dir/embedding/trainer.cc.o" "gcc" "src/CMakeFiles/tenet.dir/embedding/trainer.cc.o.d"
  "/root/repo/src/eval/harness.cc" "src/CMakeFiles/tenet.dir/eval/harness.cc.o" "gcc" "src/CMakeFiles/tenet.dir/eval/harness.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/tenet.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/tenet.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/sparsity.cc" "src/CMakeFiles/tenet.dir/eval/sparsity.cc.o" "gcc" "src/CMakeFiles/tenet.dir/eval/sparsity.cc.o.d"
  "/root/repo/src/graph/dijkstra.cc" "src/CMakeFiles/tenet.dir/graph/dijkstra.cc.o" "gcc" "src/CMakeFiles/tenet.dir/graph/dijkstra.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/tenet.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/tenet.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/hopcroft_karp.cc" "src/CMakeFiles/tenet.dir/graph/hopcroft_karp.cc.o" "gcc" "src/CMakeFiles/tenet.dir/graph/hopcroft_karp.cc.o.d"
  "/root/repo/src/graph/mst.cc" "src/CMakeFiles/tenet.dir/graph/mst.cc.o" "gcc" "src/CMakeFiles/tenet.dir/graph/mst.cc.o.d"
  "/root/repo/src/graph/tree.cc" "src/CMakeFiles/tenet.dir/graph/tree.cc.o" "gcc" "src/CMakeFiles/tenet.dir/graph/tree.cc.o.d"
  "/root/repo/src/graph/union_find.cc" "src/CMakeFiles/tenet.dir/graph/union_find.cc.o" "gcc" "src/CMakeFiles/tenet.dir/graph/union_find.cc.o.d"
  "/root/repo/src/kb/alias_index.cc" "src/CMakeFiles/tenet.dir/kb/alias_index.cc.o" "gcc" "src/CMakeFiles/tenet.dir/kb/alias_index.cc.o.d"
  "/root/repo/src/kb/io.cc" "src/CMakeFiles/tenet.dir/kb/io.cc.o" "gcc" "src/CMakeFiles/tenet.dir/kb/io.cc.o.d"
  "/root/repo/src/kb/knowledge_base.cc" "src/CMakeFiles/tenet.dir/kb/knowledge_base.cc.o" "gcc" "src/CMakeFiles/tenet.dir/kb/knowledge_base.cc.o.d"
  "/root/repo/src/kb/synthetic_kb.cc" "src/CMakeFiles/tenet.dir/kb/synthetic_kb.cc.o" "gcc" "src/CMakeFiles/tenet.dir/kb/synthetic_kb.cc.o.d"
  "/root/repo/src/kb/types.cc" "src/CMakeFiles/tenet.dir/kb/types.cc.o" "gcc" "src/CMakeFiles/tenet.dir/kb/types.cc.o.d"
  "/root/repo/src/text/extraction.cc" "src/CMakeFiles/tenet.dir/text/extraction.cc.o" "gcc" "src/CMakeFiles/tenet.dir/text/extraction.cc.o.d"
  "/root/repo/src/text/features.cc" "src/CMakeFiles/tenet.dir/text/features.cc.o" "gcc" "src/CMakeFiles/tenet.dir/text/features.cc.o.d"
  "/root/repo/src/text/gazetteer.cc" "src/CMakeFiles/tenet.dir/text/gazetteer.cc.o" "gcc" "src/CMakeFiles/tenet.dir/text/gazetteer.cc.o.d"
  "/root/repo/src/text/lemmatizer.cc" "src/CMakeFiles/tenet.dir/text/lemmatizer.cc.o" "gcc" "src/CMakeFiles/tenet.dir/text/lemmatizer.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/tenet.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/tenet.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/wordlists.cc" "src/CMakeFiles/tenet.dir/text/wordlists.cc.o" "gcc" "src/CMakeFiles/tenet.dir/text/wordlists.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
