file(REMOVE_RECURSE
  "libtenet.a"
)
