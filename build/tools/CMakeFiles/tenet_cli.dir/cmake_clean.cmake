file(REMOVE_RECURSE
  "CMakeFiles/tenet_cli.dir/tenet_cli.cc.o"
  "CMakeFiles/tenet_cli.dir/tenet_cli.cc.o.d"
  "tenet_cli"
  "tenet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
