# Empty compiler generated dependencies file for tenet_cli.
# This may be replaced when dependencies are built.
