file(REMOVE_RECURSE
  "CMakeFiles/alias_index_test.dir/alias_index_test.cc.o"
  "CMakeFiles/alias_index_test.dir/alias_index_test.cc.o.d"
  "alias_index_test"
  "alias_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alias_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
