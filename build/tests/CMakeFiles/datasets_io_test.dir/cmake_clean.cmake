file(REMOVE_RECURSE
  "CMakeFiles/datasets_io_test.dir/datasets_io_test.cc.o"
  "CMakeFiles/datasets_io_test.dir/datasets_io_test.cc.o.d"
  "datasets_io_test"
  "datasets_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datasets_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
