# Empty dependencies file for tree_cover_walkthrough_test.
# This may be replaced when dependencies are built.
