file(REMOVE_RECURSE
  "CMakeFiles/tree_cover_walkthrough_test.dir/tree_cover_walkthrough_test.cc.o"
  "CMakeFiles/tree_cover_walkthrough_test.dir/tree_cover_walkthrough_test.cc.o.d"
  "tree_cover_walkthrough_test"
  "tree_cover_walkthrough_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_cover_walkthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
