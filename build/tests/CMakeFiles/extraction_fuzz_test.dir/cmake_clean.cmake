file(REMOVE_RECURSE
  "CMakeFiles/extraction_fuzz_test.dir/extraction_fuzz_test.cc.o"
  "CMakeFiles/extraction_fuzz_test.dir/extraction_fuzz_test.cc.o.d"
  "extraction_fuzz_test"
  "extraction_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extraction_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
