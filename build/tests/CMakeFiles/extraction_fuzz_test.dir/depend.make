# Empty dependencies file for extraction_fuzz_test.
# This may be replaced when dependencies are built.
