file(REMOVE_RECURSE
  "CMakeFiles/knowledge_base_test.dir/knowledge_base_test.cc.o"
  "CMakeFiles/knowledge_base_test.dir/knowledge_base_test.cc.o.d"
  "knowledge_base_test"
  "knowledge_base_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_base_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
