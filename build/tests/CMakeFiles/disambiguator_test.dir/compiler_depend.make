# Empty compiler generated dependencies file for disambiguator_test.
# This may be replaced when dependencies are built.
