# Empty dependencies file for synthetic_kb_test.
# This may be replaced when dependencies are built.
