file(REMOVE_RECURSE
  "CMakeFiles/synthetic_kb_test.dir/synthetic_kb_test.cc.o"
  "CMakeFiles/synthetic_kb_test.dir/synthetic_kb_test.cc.o.d"
  "synthetic_kb_test"
  "synthetic_kb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_kb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
