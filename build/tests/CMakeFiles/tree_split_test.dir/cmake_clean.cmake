file(REMOVE_RECURSE
  "CMakeFiles/tree_split_test.dir/tree_split_test.cc.o"
  "CMakeFiles/tree_split_test.dir/tree_split_test.cc.o.d"
  "tree_split_test"
  "tree_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
