# Empty dependencies file for tree_split_test.
# This may be replaced when dependencies are built.
