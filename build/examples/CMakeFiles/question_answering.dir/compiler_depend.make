# Empty compiler generated dependencies file for question_answering.
# This may be replaced when dependencies are built.
