file(REMOVE_RECURSE
  "CMakeFiles/question_answering.dir/question_answering.cpp.o"
  "CMakeFiles/question_answering.dir/question_answering.cpp.o.d"
  "question_answering"
  "question_answering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/question_answering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
