file(REMOVE_RECURSE
  "CMakeFiles/isolated_concepts.dir/isolated_concepts.cpp.o"
  "CMakeFiles/isolated_concepts.dir/isolated_concepts.cpp.o.d"
  "isolated_concepts"
  "isolated_concepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolated_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
