# Empty dependencies file for isolated_concepts.
# This may be replaced when dependencies are built.
