file(REMOVE_RECURSE
  "CMakeFiles/figure5_concept_sparsity.dir/bench/figure5_concept_sparsity.cc.o"
  "CMakeFiles/figure5_concept_sparsity.dir/bench/figure5_concept_sparsity.cc.o.d"
  "bench/figure5_concept_sparsity"
  "bench/figure5_concept_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_concept_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
