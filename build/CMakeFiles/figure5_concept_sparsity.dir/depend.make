# Empty dependencies file for figure5_concept_sparsity.
# This may be replaced when dependencies are built.
