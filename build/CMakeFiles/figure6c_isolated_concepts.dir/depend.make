# Empty dependencies file for figure6c_isolated_concepts.
# This may be replaced when dependencies are built.
