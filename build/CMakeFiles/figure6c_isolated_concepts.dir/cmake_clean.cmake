file(REMOVE_RECURSE
  "CMakeFiles/figure6c_isolated_concepts.dir/bench/figure6c_isolated_concepts.cc.o"
  "CMakeFiles/figure6c_isolated_concepts.dir/bench/figure6c_isolated_concepts.cc.o.d"
  "bench/figure6c_isolated_concepts"
  "bench/figure6c_isolated_concepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6c_isolated_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
