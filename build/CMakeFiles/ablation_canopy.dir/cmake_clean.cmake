file(REMOVE_RECURSE
  "CMakeFiles/ablation_canopy.dir/bench/ablation_canopy.cc.o"
  "CMakeFiles/ablation_canopy.dir/bench/ablation_canopy.cc.o.d"
  "bench/ablation_canopy"
  "bench/ablation_canopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_canopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
