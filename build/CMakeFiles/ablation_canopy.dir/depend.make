# Empty dependencies file for ablation_canopy.
# This may be replaced when dependencies are built.
