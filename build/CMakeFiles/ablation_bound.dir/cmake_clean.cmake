file(REMOVE_RECURSE
  "CMakeFiles/ablation_bound.dir/bench/ablation_bound.cc.o"
  "CMakeFiles/ablation_bound.dir/bench/ablation_bound.cc.o.d"
  "bench/ablation_bound"
  "bench/ablation_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
