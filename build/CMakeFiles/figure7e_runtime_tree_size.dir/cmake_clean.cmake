file(REMOVE_RECURSE
  "CMakeFiles/figure7e_runtime_tree_size.dir/bench/figure7e_runtime_tree_size.cc.o"
  "CMakeFiles/figure7e_runtime_tree_size.dir/bench/figure7e_runtime_tree_size.cc.o.d"
  "bench/figure7e_runtime_tree_size"
  "bench/figure7e_runtime_tree_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7e_runtime_tree_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
