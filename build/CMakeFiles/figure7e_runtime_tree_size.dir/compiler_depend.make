# Empty compiler generated dependencies file for figure7e_runtime_tree_size.
# This may be replaced when dependencies are built.
