# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figure7e_runtime_tree_size.
