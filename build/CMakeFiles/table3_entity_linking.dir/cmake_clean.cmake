file(REMOVE_RECURSE
  "CMakeFiles/table3_entity_linking.dir/bench/table3_entity_linking.cc.o"
  "CMakeFiles/table3_entity_linking.dir/bench/table3_entity_linking.cc.o.d"
  "bench/table3_entity_linking"
  "bench/table3_entity_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_entity_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
