# Empty dependencies file for table3_entity_linking.
# This may be replaced when dependencies are built.
