file(REMOVE_RECURSE
  "CMakeFiles/figure6a_mention_detection.dir/bench/figure6a_mention_detection.cc.o"
  "CMakeFiles/figure6a_mention_detection.dir/bench/figure6a_mention_detection.cc.o.d"
  "bench/figure6a_mention_detection"
  "bench/figure6a_mention_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6a_mention_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
