# Empty compiler generated dependencies file for figure6a_mention_detection.
# This may be replaced when dependencies are built.
