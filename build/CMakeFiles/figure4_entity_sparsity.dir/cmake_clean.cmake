file(REMOVE_RECURSE
  "CMakeFiles/figure4_entity_sparsity.dir/bench/figure4_entity_sparsity.cc.o"
  "CMakeFiles/figure4_entity_sparsity.dir/bench/figure4_entity_sparsity.cc.o.d"
  "bench/figure4_entity_sparsity"
  "bench/figure4_entity_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_entity_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
