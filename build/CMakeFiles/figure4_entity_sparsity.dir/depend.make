# Empty dependencies file for figure4_entity_sparsity.
# This may be replaced when dependencies are built.
