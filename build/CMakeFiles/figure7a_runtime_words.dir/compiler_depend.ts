# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figure7a_runtime_words.
