# Empty compiler generated dependencies file for figure7a_runtime_words.
# This may be replaced when dependencies are built.
