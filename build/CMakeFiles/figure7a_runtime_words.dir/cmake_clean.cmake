file(REMOVE_RECURSE
  "CMakeFiles/figure7a_runtime_words.dir/bench/figure7a_runtime_words.cc.o"
  "CMakeFiles/figure7a_runtime_words.dir/bench/figure7a_runtime_words.cc.o.d"
  "bench/figure7a_runtime_words"
  "bench/figure7a_runtime_words.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7a_runtime_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
