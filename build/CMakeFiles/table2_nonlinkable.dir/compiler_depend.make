# Empty compiler generated dependencies file for table2_nonlinkable.
# This may be replaced when dependencies are built.
