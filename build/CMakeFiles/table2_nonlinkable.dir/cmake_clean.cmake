file(REMOVE_RECURSE
  "CMakeFiles/table2_nonlinkable.dir/bench/table2_nonlinkable.cc.o"
  "CMakeFiles/table2_nonlinkable.dir/bench/table2_nonlinkable.cc.o.d"
  "bench/table2_nonlinkable"
  "bench/table2_nonlinkable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_nonlinkable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
