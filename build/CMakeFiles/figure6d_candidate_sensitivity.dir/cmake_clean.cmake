file(REMOVE_RECURSE
  "CMakeFiles/figure6d_candidate_sensitivity.dir/bench/figure6d_candidate_sensitivity.cc.o"
  "CMakeFiles/figure6d_candidate_sensitivity.dir/bench/figure6d_candidate_sensitivity.cc.o.d"
  "bench/figure6d_candidate_sensitivity"
  "bench/figure6d_candidate_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6d_candidate_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
