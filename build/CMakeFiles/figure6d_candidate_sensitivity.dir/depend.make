# Empty dependencies file for figure6d_candidate_sensitivity.
# This may be replaced when dependencies are built.
