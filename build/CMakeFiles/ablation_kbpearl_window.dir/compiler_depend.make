# Empty compiler generated dependencies file for ablation_kbpearl_window.
# This may be replaced when dependencies are built.
