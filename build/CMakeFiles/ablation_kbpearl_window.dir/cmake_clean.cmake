file(REMOVE_RECURSE
  "CMakeFiles/ablation_kbpearl_window.dir/bench/ablation_kbpearl_window.cc.o"
  "CMakeFiles/ablation_kbpearl_window.dir/bench/ablation_kbpearl_window.cc.o.d"
  "bench/ablation_kbpearl_window"
  "bench/ablation_kbpearl_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kbpearl_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
