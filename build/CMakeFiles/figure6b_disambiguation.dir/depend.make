# Empty dependencies file for figure6b_disambiguation.
# This may be replaced when dependencies are built.
