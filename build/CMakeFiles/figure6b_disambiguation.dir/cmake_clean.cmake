file(REMOVE_RECURSE
  "CMakeFiles/figure6b_disambiguation.dir/bench/figure6b_disambiguation.cc.o"
  "CMakeFiles/figure6b_disambiguation.dir/bench/figure6b_disambiguation.cc.o.d"
  "bench/figure6b_disambiguation"
  "bench/figure6b_disambiguation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure6b_disambiguation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
