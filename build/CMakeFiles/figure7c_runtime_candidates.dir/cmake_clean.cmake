file(REMOVE_RECURSE
  "CMakeFiles/figure7c_runtime_candidates.dir/bench/figure7c_runtime_candidates.cc.o"
  "CMakeFiles/figure7c_runtime_candidates.dir/bench/figure7c_runtime_candidates.cc.o.d"
  "bench/figure7c_runtime_candidates"
  "bench/figure7c_runtime_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7c_runtime_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
