# Empty compiler generated dependencies file for figure7c_runtime_candidates.
# This may be replaced when dependencies are built.
