file(REMOVE_RECURSE
  "CMakeFiles/ablation_disambiguation.dir/bench/ablation_disambiguation.cc.o"
  "CMakeFiles/ablation_disambiguation.dir/bench/ablation_disambiguation.cc.o.d"
  "bench/ablation_disambiguation"
  "bench/ablation_disambiguation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_disambiguation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
