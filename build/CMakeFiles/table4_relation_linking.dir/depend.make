# Empty dependencies file for table4_relation_linking.
# This may be replaced when dependencies are built.
