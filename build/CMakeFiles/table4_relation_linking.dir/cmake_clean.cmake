file(REMOVE_RECURSE
  "CMakeFiles/table4_relation_linking.dir/bench/table4_relation_linking.cc.o"
  "CMakeFiles/table4_relation_linking.dir/bench/table4_relation_linking.cc.o.d"
  "bench/table4_relation_linking"
  "bench/table4_relation_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_relation_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
