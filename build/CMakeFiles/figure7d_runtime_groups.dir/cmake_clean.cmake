file(REMOVE_RECURSE
  "CMakeFiles/figure7d_runtime_groups.dir/bench/figure7d_runtime_groups.cc.o"
  "CMakeFiles/figure7d_runtime_groups.dir/bench/figure7d_runtime_groups.cc.o.d"
  "bench/figure7d_runtime_groups"
  "bench/figure7d_runtime_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7d_runtime_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
