# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figure7d_runtime_groups.
