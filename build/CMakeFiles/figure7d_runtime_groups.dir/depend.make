# Empty dependencies file for figure7d_runtime_groups.
# This may be replaced when dependencies are built.
