file(REMOVE_RECURSE
  "CMakeFiles/figure7b_runtime_mentions.dir/bench/figure7b_runtime_mentions.cc.o"
  "CMakeFiles/figure7b_runtime_mentions.dir/bench/figure7b_runtime_mentions.cc.o.d"
  "bench/figure7b_runtime_mentions"
  "bench/figure7b_runtime_mentions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7b_runtime_mentions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
