# Empty dependencies file for figure7b_runtime_mentions.
# This may be replaced when dependencies are built.
