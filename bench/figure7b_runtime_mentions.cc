// Regenerates Figure 7(b): execution time vs number of mentions per
// document for TENET, QKBfly and KBPearl.
#include <cstdio>

#include "scaling_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();
  baselines::QkbflyLike qkbfly(bench::MakeSubstrate(env));
  baselines::KbPearlLike kbpearl(bench::MakeSubstrate(env));
  baselines::TenetLinker tenet_linker(bench::MakeSubstrate(env));

  std::printf("Figure 7(b): runtime (ms/doc) vs mentions per document\n");
  bench::PrintRule(56);
  std::printf("%9s %10s %10s %10s\n", "mentions", "QKBfly", "KBPearl",
              "TENET");
  bench::PrintRule(56);
  const int kMentionCounts[] = {5, 10, 20, 40, 60};
  for (int mentions : kMentionCounts) {
    std::vector<datasets::Document> docs = bench::ScaledDocuments(
        env, /*count=*/6, mentions, mentions * 22, mentions * 0.6,
        /*seed=*/2000 + mentions);
    std::printf("%9d %10.2f %10.2f %10.2f\n", mentions,
                bench::AverageMsPerDocument(qkbfly, docs),
                bench::AverageMsPerDocument(kbpearl, docs),
                bench::AverageMsPerDocument(tenet_linker, docs));
  }
  bench::PrintRule(56);
  std::printf(
      "Paper shape (Fig. 7b): KBPearl's curve is the steepest in the number "
      "of mentions;\nTENET stays roughly linear (pruning + O(1) edge "
      "retrieval).\n");
  return 0;
}
