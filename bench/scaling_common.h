// Shared helpers of the Figure 7 efficiency benchmarks: scaled document
// generation and per-system timing.
#ifndef TENET_BENCH_SCALING_COMMON_H_
#define TENET_BENCH_SCALING_COMMON_H_

#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"

namespace tenet {
namespace bench {

// Generates `count` documents with roughly `mentions` gold mentions and
// `words` words each (News-like profile otherwise).
inline std::vector<datasets::Document> ScaledDocuments(
    const Environment& env, int count, double mentions, int words,
    double relations, uint64_t seed,
    double conjunction_pairs = 1.0, double composites = 0.8) {
  datasets::DatasetSpec spec = datasets::NewsSpec();
  spec.num_docs = count;
  spec.mentions_per_doc = mentions;
  spec.words_per_doc = words;
  spec.relations_per_doc = relations;
  spec.advertisement_fraction = 0.0;
  spec.conjunction_pairs_per_doc = conjunction_pairs;
  spec.composites_per_doc = composites;
  datasets::CorpusGenerator generator(&env.world.kb_world);
  Rng rng(seed);
  return generator.Generate(spec, rng).documents;
}

// Average end-to-end milliseconds per document (with one warm-up pass).
inline double AverageMsPerDocument(
    const baselines::Linker& linker,
    const std::vector<datasets::Document>& documents, int repetitions = 3) {
  for (const datasets::Document& d : documents) {
    (void)linker.LinkDocument(d.text);  // warm-up
  }
  WallTimer timer;
  int runs = 0;
  for (int r = 0; r < repetitions; ++r) {
    for (const datasets::Document& d : documents) {
      Result<core::LinkingResult> result = linker.LinkDocument(d.text);
      TENET_CHECK(result.ok()) << result.status();
      ++runs;
    }
  }
  return timer.ElapsedMillis() / runs;
}

}  // namespace bench
}  // namespace tenet

#endif  // TENET_BENCH_SCALING_COMMON_H_
