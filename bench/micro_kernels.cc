// google-benchmark micro-suite over the algorithmic kernels of TENET:
// Kruskal MST, Hopcroft-Karp matching, tree splitting, Dijkstra, coherence
// graph construction, tree-cover solving and greedy disambiguation.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/rng.h"
#include "core/canopy.h"
#include "core/disambiguator.h"
#include "core/tree_cover.h"
#include "core/tree_split.h"
#include "graph/dijkstra.h"
#include "graph/hopcroft_karp.h"
#include "graph/mst.h"
#include "text/extraction.h"

namespace {

using namespace tenet;

graph::WeightedGraph RandomGraph(int n, double edge_prob, uint64_t seed) {
  Rng rng(seed);
  graph::WeightedGraph g(n);
  for (int i = 1; i < n; ++i) {
    g.AddEdge(i - 1, i, rng.NextDouble(0.01, 1.0));
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 2; v < n; ++v) {
      if (rng.NextBool(edge_prob)) g.AddEdge(u, v, rng.NextDouble(0.01, 1.0));
    }
  }
  return g;
}

void BM_KruskalMst(benchmark::State& state) {
  graph::WeightedGraph g =
      RandomGraph(static_cast<int>(state.range(0)), 0.1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::KruskalMst(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_KruskalMst)->Arg(64)->Arg(256)->Arg(1024);

void BM_Dijkstra(benchmark::State& state) {
  graph::WeightedGraph g =
      RandomGraph(static_cast<int>(state.range(0)), 0.1, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::Dijkstra(g, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(64)->Arg(256)->Arg(1024);

void BM_HopcroftKarp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(44);
  std::vector<std::pair<int, int>> edges;
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.NextBool(4.0 / n)) edges.emplace_back(l, r);
    }
  }
  for (auto _ : state) {
    graph::HopcroftKarp hk(n, n);
    for (auto [l, r] : edges) hk.AddEdge(l, r);
    benchmark::DoNotOptimize(hk.MaxMatching());
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(64)->Arg(256)->Arg(1024);

void BM_TreeSplit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(45);
  std::vector<graph::TreeEdge> edges;
  for (int i = 1; i < n; ++i) {
    edges.push_back(graph::TreeEdge{
        static_cast<int>(rng.NextUint64(i)), i, rng.NextDouble(0.05, 1.0)});
  }
  graph::RootedTree tree =
      graph::RootedTree::FromOrientedEdges(0, edges).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SplitTree(tree, 1.0));
  }
}
BENCHMARK(BM_TreeSplit)->Arg(64)->Arg(256)->Arg(1024);

// Document-scale kernels over the shared synthetic world.
const datasets::Document& BenchDocument() {
  static const datasets::Document* doc = [] {
    const bench::Environment& env = bench::GetEnvironment();
    return new datasets::Document(env.dataset("MSNBC19").documents[0]);
  }();
  return *doc;
}

core::CoherenceGraph BuildBenchGraph() {
  const bench::Environment& env = bench::GetEnvironment();
  text::Extractor extractor(&env.world.gazetteer());
  core::MentionSet mentions = core::BuildMentionSet(
      extractor.ExtractFromText(BenchDocument().text),
      &env.world.gazetteer());
  core::CoherenceGraphBuilder builder(&env.world.kb(),
                                      &env.world.embeddings);
  return builder.Build(std::move(mentions));
}

void BM_CoherenceGraphBuild(benchmark::State& state) {
  const bench::Environment& env = bench::GetEnvironment();
  text::Extractor extractor(&env.world.gazetteer());
  text::ExtractionResult extraction =
      extractor.ExtractFromText(BenchDocument().text);
  core::CoherenceGraphBuilder builder(&env.world.kb(),
                                      &env.world.embeddings);
  for (auto _ : state) {
    core::MentionSet mentions = core::BuildMentionSet(
        extraction, &env.world.gazetteer());
    benchmark::DoNotOptimize(builder.Build(std::move(mentions)));
  }
}
BENCHMARK(BM_CoherenceGraphBuild);

void BM_TreeCoverSolve(benchmark::State& state) {
  core::CoherenceGraph cg = BuildBenchGraph();
  core::TreeCoverSolver solver;
  const double bound = cg.num_mentions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(cg, bound));
  }
}
BENCHMARK(BM_TreeCoverSolve);

void BM_Disambiguate(benchmark::State& state) {
  core::CoherenceGraph cg = BuildBenchGraph();
  core::TreeCoverSolver solver;
  core::TreeCover cover = solver.Solve(cg, cg.num_mentions()).value();
  core::Disambiguator disambiguator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disambiguator.Run(cg, cover));
  }
}
BENCHMARK(BM_Disambiguate);

void BM_EndToEndTenet(benchmark::State& state) {
  const bench::Environment& env = bench::GetEnvironment();
  baselines::TenetLinker tenet_linker(bench::MakeSubstrate(env));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tenet_linker.LinkDocument(BenchDocument().text));
  }
}
BENCHMARK(BM_EndToEndTenet);

}  // namespace

BENCHMARK_MAIN();
