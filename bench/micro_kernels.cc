// google-benchmark micro-suite over the algorithmic kernels of TENET:
// Kruskal MST, Hopcroft-Karp matching, tree splitting, Dijkstra, pairwise
// similarity (scalar baseline vs the vectorized DotUnit kernel vs the
// similarity cache), coherence graph construction, tree-cover solving and
// greedy disambiguation.
//
// Besides the interactive google-benchmark suite, `--json <path>` runs a
// hand-rolled deterministic measurement pass over the pairwise-similarity
// kernels and writes {bench, ns_per_op, pairs_per_sec} records (the
// BENCH_coherence.json trajectory CI archives); `--smoke` shortens the
// repetitions for the tier-1 CI job.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.h"
#include "common/dependency_health.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/canopy.h"
#include "core/disambiguator.h"
#include "core/tree_cover.h"
#include "core/tree_split.h"
#include "embedding/dot_kernel.h"
#include "embedding/embedding_store.h"
#include "embedding/similarity_cache.h"
#include "graph/dijkstra.h"
#include "graph/hopcroft_karp.h"
#include "graph/mst.h"
#include "json_out.h"
#include "obs/metrics.h"
#include "text/extraction.h"

namespace {

using namespace tenet;

graph::WeightedGraph RandomGraph(int n, double edge_prob, uint64_t seed) {
  Rng rng(seed);
  graph::WeightedGraph g(n);
  for (int i = 1; i < n; ++i) {
    g.AddEdge(i - 1, i, rng.NextDouble(0.01, 1.0));
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 2; v < n; ++v) {
      if (rng.NextBool(edge_prob)) g.AddEdge(u, v, rng.NextDouble(0.01, 1.0));
    }
  }
  return g;
}

void BM_KruskalMst(benchmark::State& state) {
  graph::WeightedGraph g =
      RandomGraph(static_cast<int>(state.range(0)), 0.1, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::KruskalMst(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_KruskalMst)->Arg(64)->Arg(256)->Arg(1024);

void BM_Dijkstra(benchmark::State& state) {
  graph::WeightedGraph g =
      RandomGraph(static_cast<int>(state.range(0)), 0.1, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::Dijkstra(g, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(64)->Arg(256)->Arg(1024);

void BM_HopcroftKarp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(44);
  std::vector<std::pair<int, int>> edges;
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.NextBool(4.0 / n)) edges.emplace_back(l, r);
    }
  }
  for (auto _ : state) {
    graph::HopcroftKarp hk(n, n);
    for (auto [l, r] : edges) hk.AddEdge(l, r);
    benchmark::DoNotOptimize(hk.MaxMatching());
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(64)->Arg(256)->Arg(1024);

void BM_TreeSplit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(45);
  std::vector<graph::TreeEdge> edges;
  for (int i = 1; i < n; ++i) {
    edges.push_back(graph::TreeEdge{
        static_cast<int>(rng.NextUint64(i)), i, rng.NextDouble(0.05, 1.0)});
  }
  graph::RootedTree tree =
      graph::RootedTree::FromOrientedEdges(0, edges).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SplitTree(tree, 1.0));
  }
}
BENCHMARK(BM_TreeSplit)->Arg(64)->Arg(256)->Arg(1024);

// ---------------------------------------------------------------------------
// Pairwise similarity: the coherence stage's dominant cost.  The scalar
// baseline reproduces the pre-kernel per-pair Cosine byte for byte — one
// fault probe, one dependency observation, one op-counter record and a
// serial double-precision dot per pair — so the recorded speedup is the
// real before/after of the batched path, not a strawman.

struct PairwiseFixture {
  int dim;
  int num_concepts;
  embedding::EmbeddingStore store;
  std::vector<kb::ConceptRef> refs;
  std::vector<double> norms;  // seed-style per-row norms over the raw data
  obs::DependencyOpCounters ops{"embedding/fetch"};

  PairwiseFixture(int dim_in, int num_concepts_in)
      : dim(dim_in),
        num_concepts(num_concepts_in),
        store(dim_in, num_concepts_in, 0) {
    Rng rng(99);
    for (int i = 0; i < num_concepts; ++i) {
      std::span<float> row = store.MutableVector(kb::ConceptRef::Entity(i));
      for (int d = 0; d < dim; ++d) {
        row[d] = static_cast<float>(rng.NextDouble(-1.0, 1.0));
      }
    }
    store.Finalize();
    refs.reserve(num_concepts);
    norms.reserve(num_concepts);
    for (int i = 0; i < num_concepts; ++i) {
      refs.push_back(kb::ConceptRef::Entity(i));
      std::span<const float> v = store.Vector(refs.back());
      double sum = 0.0;
      for (int d = 0; d < dim; ++d) sum += double{v[d]} * v[d];
      norms.push_back(std::sqrt(sum));
    }
  }

  int64_t num_pairs() const {
    return static_cast<int64_t>(num_concepts) * (num_concepts - 1) / 2;
  }
};

// The pre-kernel per-pair arithmetic, verbatim.
double ScalarBaselineCosine(const PairwiseFixture& fx, int i, int j) {
  const bool faulted = TENET_FAULT_POINT("embedding/fetch");
  TENET_OBSERVE_DEPENDENCY("embedding/fetch", !faulted);
  fx.ops.Record(!faulted);
  if (faulted) return 0.0;
  if (fx.norms[i] <= 0.0 || fx.norms[j] <= 0.0) return 0.0;
  const float* va = fx.store.Vector(fx.refs[i]).data();
  const float* vb = fx.store.Vector(fx.refs[j]).data();
  double dot = 0.0;
  for (int d = 0; d < fx.dim; ++d) dot += double{va[d]} * vb[d];
  double cosine = dot / (fx.norms[i] * fx.norms[j]);
  if (cosine > 1.0) cosine = 1.0;
  if (cosine < -1.0) cosine = -1.0;
  return cosine;
}

double ScalarBaselineSweep(const PairwiseFixture& fx) {
  double sum = 0.0;
  for (int i = 0; i < fx.num_concepts; ++i) {
    for (int j = i + 1; j < fx.num_concepts; ++j) {
      sum += ScalarBaselineCosine(fx, i, j);
    }
  }
  return sum;
}

// The batched path: one gather, then DotUnit over contiguous unit rows.
double KernelSweep(const PairwiseFixture& fx, std::vector<double>& rows) {
  fx.store.GatherUnit(fx.refs, rows.data());
  double sum = 0.0;
  for (int i = 0; i < fx.num_concepts; ++i) {
    const double* ri = rows.data() + static_cast<size_t>(i) * fx.dim;
    for (int j = i + 1; j < fx.num_concepts; ++j) {
      const double* rj = rows.data() + static_cast<size_t>(j) * fx.dim;
      sum += embedding::ClampCosine(embedding::DotUnit(ri, rj, fx.dim));
    }
  }
  return sum;
}

double CachedSweep(const PairwiseFixture& fx, std::vector<double>& rows,
                   embedding::SimilarityCache& cache) {
  fx.store.GatherUnit(fx.refs, rows.data());
  double sum = 0.0;
  for (int i = 0; i < fx.num_concepts; ++i) {
    const double* ri = rows.data() + static_cast<size_t>(i) * fx.dim;
    for (int j = i + 1; j < fx.num_concepts; ++j) {
      const double* rj = rows.data() + static_cast<size_t>(j) * fx.dim;
      sum += cache.GetOrCompute(fx.refs[i], fx.refs[j], [&] {
        return embedding::ClampCosine(embedding::DotUnit(ri, rj, fx.dim));
      });
    }
  }
  return sum;
}

void BM_PairwiseCosineScalarBaseline(benchmark::State& state) {
  PairwiseFixture fx(/*dim=*/128, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScalarBaselineSweep(fx));
  }
  state.SetItemsProcessed(state.iterations() * fx.num_pairs());
}
BENCHMARK(BM_PairwiseCosineScalarBaseline)->Arg(128)->Arg(256);

void BM_PairwiseCosineKernel(benchmark::State& state) {
  PairwiseFixture fx(/*dim=*/128, static_cast<int>(state.range(0)));
  std::vector<double> rows(static_cast<size_t>(fx.num_concepts) * fx.dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelSweep(fx, rows));
  }
  state.SetItemsProcessed(state.iterations() * fx.num_pairs());
}
BENCHMARK(BM_PairwiseCosineKernel)->Arg(128)->Arg(256);

void BM_PairwiseCosineCachedWarm(benchmark::State& state) {
  PairwiseFixture fx(/*dim=*/128, static_cast<int>(state.range(0)));
  std::vector<double> rows(static_cast<size_t>(fx.num_concepts) * fx.dim);
  embedding::SimilarityCache cache;
  CachedSweep(fx, rows, cache);  // warm every pair
  for (auto _ : state) {
    benchmark::DoNotOptimize(CachedSweep(fx, rows, cache));
  }
  state.SetItemsProcessed(state.iterations() * fx.num_pairs());
}
BENCHMARK(BM_PairwiseCosineCachedWarm)->Arg(128)->Arg(256);

// Document-scale kernels over the shared synthetic world.
const datasets::Document& BenchDocument() {
  static const datasets::Document* doc = [] {
    const bench::Environment& env = bench::GetEnvironment();
    return new datasets::Document(env.dataset("MSNBC19").documents[0]);
  }();
  return *doc;
}

core::CoherenceGraph BuildBenchGraph() {
  const bench::Environment& env = bench::GetEnvironment();
  text::Extractor extractor(&env.world.gazetteer());
  core::MentionSet mentions = core::BuildMentionSet(
      extractor.ExtractFromText(BenchDocument().text),
      &env.world.gazetteer());
  core::CoherenceGraphBuilder builder(&env.world.kb(),
                                      &env.world.embeddings);
  return builder.Build(std::move(mentions));
}

void BM_CoherenceGraphBuild(benchmark::State& state) {
  const bench::Environment& env = bench::GetEnvironment();
  text::Extractor extractor(&env.world.gazetteer());
  text::ExtractionResult extraction =
      extractor.ExtractFromText(BenchDocument().text);
  core::CoherenceGraphBuilder builder(&env.world.kb(),
                                      &env.world.embeddings);
  for (auto _ : state) {
    core::MentionSet mentions = core::BuildMentionSet(
        extraction, &env.world.gazetteer());
    benchmark::DoNotOptimize(builder.Build(std::move(mentions)));
  }
}
BENCHMARK(BM_CoherenceGraphBuild);

void BM_TreeCoverSolve(benchmark::State& state) {
  core::CoherenceGraph cg = BuildBenchGraph();
  core::TreeCoverSolver solver;
  const double bound = cg.num_mentions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(cg, bound));
  }
}
BENCHMARK(BM_TreeCoverSolve);

void BM_Disambiguate(benchmark::State& state) {
  core::CoherenceGraph cg = BuildBenchGraph();
  core::TreeCoverSolver solver;
  core::TreeCover cover = solver.Solve(cg, cg.num_mentions()).value();
  core::Disambiguator disambiguator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disambiguator.Run(cg, cover));
  }
}
BENCHMARK(BM_Disambiguate);

void BM_EndToEndTenet(benchmark::State& state) {
  const bench::Environment& env = bench::GetEnvironment();
  baselines::TenetLinker tenet_linker(bench::MakeSubstrate(env));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tenet_linker.LinkDocument(BenchDocument().text));
  }
}
BENCHMARK(BM_EndToEndTenet);

// ---------------------------------------------------------------------------
// --json mode: hand-rolled measurements of the pairwise kernels, written
// as the BENCH_coherence.json trajectory.  Deliberately independent of the
// google-benchmark reporter so the record schema is ours to keep stable.

volatile double g_sink = 0.0;

template <typename Fn>
double MeasureNsPerOp(Fn&& fn, int64_t ops_per_call, double min_ms) {
  g_sink = g_sink + fn();  // warm-up, and defeat dead-code elimination
  WallTimer timer;
  int64_t calls = 0;
  double elapsed_ms = 0.0;
  do {
    g_sink = g_sink + fn();
    ++calls;
    elapsed_ms = timer.ElapsedMillis();
  } while (elapsed_ms < min_ms);
  return elapsed_ms * 1e6 /
         (static_cast<double>(calls) * static_cast<double>(ops_per_call));
}

bench::JsonRecord MakeRecord(const std::string& name, double ns_per_op,
                             double baseline_ns = 0.0) {
  bench::JsonRecord r;
  r.bench = name;
  r.ns_per_op = ns_per_op;
  r.pairs_per_sec = ns_per_op > 0.0 ? 1e9 / ns_per_op : 0.0;
  if (baseline_ns > 0.0) r.speedup = baseline_ns / ns_per_op;
  return r;
}

int RunJsonMode(const bench::JsonArgs& args) {
  const double min_ms = args.smoke ? 20.0 : 300.0;
  std::vector<bench::JsonRecord> records;

  // The headline pair: full pairwise sweep at a News-scale candidate count.
  {
    PairwiseFixture fx(/*dim=*/128, /*num_concepts=*/256);
    std::vector<double> rows(static_cast<size_t>(fx.num_concepts) * fx.dim);
    const int64_t pairs = fx.num_pairs();
    double scalar_ns =
        MeasureNsPerOp([&] { return ScalarBaselineSweep(fx); }, pairs, min_ms);
    double kernel_ns =
        MeasureNsPerOp([&] { return KernelSweep(fx, rows); }, pairs, min_ms);
    embedding::SimilarityCache cache;
    CachedSweep(fx, rows, cache);  // warm every pair
    double cached_ns = MeasureNsPerOp(
        [&] { return CachedSweep(fx, rows, cache); }, pairs, min_ms);
    records.push_back(MakeRecord(
        "pairwise_cosine_scalar_baseline/C=256/dim=128", scalar_ns));
    records.push_back(MakeRecord("pairwise_cosine_kernel/C=256/dim=128",
                                 kernel_ns, scalar_ns));
    records.push_back(MakeRecord("pairwise_cosine_cached_warm/C=256/dim=128",
                                 cached_ns, scalar_ns));
    std::printf("pairwise C=256 dim=128: scalar %.1f ns/pair, kernel %.1f "
                "ns/pair (%.2fx), cached warm %.1f ns/pair (%.2fx)\n",
                scalar_ns, kernel_ns, scalar_ns / kernel_ns, cached_ns,
                scalar_ns / cached_ns);
  }

  // The raw reduction at several dimensions, without per-pair bookkeeping:
  // serial double-precision dot (the seed arithmetic) vs DotUnit.
  for (int dim : {64, 128, 256}) {
    PairwiseFixture fx(dim, /*num_concepts=*/128);
    std::vector<double> rows(static_cast<size_t>(fx.num_concepts) * dim);
    fx.store.GatherUnit(fx.refs, rows.data());
    const int64_t pairs = fx.num_pairs();
    auto scalar_dot = [&] {
      double sum = 0.0;
      for (int i = 0; i < fx.num_concepts; ++i) {
        const double* ri = rows.data() + static_cast<size_t>(i) * dim;
        for (int j = i + 1; j < fx.num_concepts; ++j) {
          const double* rj = rows.data() + static_cast<size_t>(j) * dim;
          double dot = 0.0;
          for (int d = 0; d < dim; ++d) dot += ri[d] * rj[d];
          sum += dot;
        }
      }
      return sum;
    };
    auto unit_dot = [&] {
      double sum = 0.0;
      for (int i = 0; i < fx.num_concepts; ++i) {
        const double* ri = rows.data() + static_cast<size_t>(i) * dim;
        for (int j = i + 1; j < fx.num_concepts; ++j) {
          const double* rj = rows.data() + static_cast<size_t>(j) * dim;
          sum += embedding::DotUnit(ri, rj, dim);
        }
      }
      return sum;
    };
    double scalar_ns = MeasureNsPerOp(scalar_dot, pairs, min_ms);
    double unit_ns = MeasureNsPerOp(unit_dot, pairs, min_ms);
    char name[64];
    std::snprintf(name, sizeof(name), "dot_scalar_double/dim=%d", dim);
    records.push_back(MakeRecord(name, scalar_ns));
    std::snprintf(name, sizeof(name), "dot_unit/dim=%d", dim);
    records.push_back(MakeRecord(name, unit_ns, scalar_ns));
    std::printf("dot dim=%d: scalar %.1f ns, DotUnit %.1f ns (%.2fx)\n", dim,
                scalar_ns, unit_ns, scalar_ns / unit_ns);
  }

  return bench::WriteJsonRecords(args.json_path, records) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::JsonArgs json_args = tenet::bench::StripJsonArgs(&argc, argv);
  if (!json_args.json_path.empty()) return RunJsonMode(json_args);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
