// Regenerates Figure 5: sparsity of the gold concepts (entities AND
// predicates) per document — density and average degree vs the semantic
// distance threshold.
#include <cstdio>

#include "bench_common.h"
#include "eval/sparsity.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();

  std::printf("Figure 5(a): density of concepts per document\n");
  bench::PrintRule();
  std::printf("%-10s", "distance");
  for (int t = 0; t < 10; ++t) std::printf("  %5.1f", 0.1 * t);
  std::printf("\n");
  bench::PrintRule();
  std::vector<std::vector<eval::SparsityPoint>> curves;
  for (const datasets::Dataset& dataset : env.datasets) {
    curves.push_back(
        eval::ConceptSparsity(dataset, env.world.kb(), env.world.embeddings));
    std::printf("%-10s", dataset.name.c_str());
    for (const eval::SparsityPoint& p : curves.back()) {
      std::printf("  %5.2f", p.density);
    }
    std::printf("\n");
  }

  std::printf("\nFigure 5(b): average degree of concepts per document\n");
  bench::PrintRule();
  std::printf("%-10s", "distance");
  for (int t = 0; t < 10; ++t) std::printf("  %5.1f", 0.1 * t);
  std::printf("\n");
  bench::PrintRule();
  for (size_t i = 0; i < env.datasets.size(); ++i) {
    std::printf("%-10s", env.datasets[i].name.c_str());
    for (const eval::SparsityPoint& p : curves[i]) {
      std::printf("  %5.2f", p.avg_degree);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: with predicates included the graphs stay sparse; "
      "dense global\ncoherence (density near 1) is never reached below "
      "distance 0.9.\n");
  return 0;
}
