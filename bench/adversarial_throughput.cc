// Hostile-input serving cost: end-to-end throughput of TENET through the
// BatchLinkingService on three workloads — the clean T-REx42 corpus, the
// same corpus through the adversarial mutator (typos, homoglyphs,
// ambiguity storms, degenerate punctuation, oversized tokens, invalid
// UTF-8), and multi-turn streaming sessions with per-session state
// (SessionContext re-ranking each turn against the conversation memory).
//
// The interesting numbers are the ratios: how much a hostile document
// costs relative to a clean one with the guardrails on, and what the
// session layer adds per turn.  `--json <path>` writes the
// BENCH_adversarial.json records CI archives; `--smoke` shrinks the
// round count for tier-1.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "datasets/adversarial.h"
#include "datasets/session_generator.h"
#include "json_out.h"
#include "obs/metrics.h"
#include "serving/batch_service.h"
#include "serving/session.h"

namespace tenet {
namespace bench {
namespace {

struct WorkloadResult {
  double wall_ms = 0.0;
  int64_t docs = 0;
  int64_t full = 0;
  int64_t degraded = 0;
  int64_t failed = 0;
  int64_t shed = 0;

  double DocsPerSec() const {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(docs) / wall_ms : 0.0;
  }
  double MsPerDoc() const {
    return docs > 0 ? wall_ms / static_cast<double>(docs) : 0.0;
  }
};

void Classify(const std::vector<serving::ServedResult>& served,
              WorkloadResult* out) {
  out->docs += static_cast<int64_t>(served.size());
  for (const serving::ServedResult& r : served) {
    if (r.shed) {
      ++out->shed;
    } else if (!r.result.ok()) {
      ++out->failed;
    } else if (r.result->degradation.degraded()) {
      ++out->degraded;
    } else {
      ++out->full;
    }
  }
}

WorkloadResult RunBatches(serving::BatchLinkingService* service,
                          const std::vector<std::string>& texts, int rounds) {
  WorkloadResult out;
  WallTimer timer;
  for (int round = 0; round < rounds; ++round) {
    Classify(service->LinkBatch(texts), &out);
  }
  out.wall_ms = timer.ElapsedMillis();
  return out;
}

WorkloadResult RunSessions(serving::BatchLinkingService* service,
                           const kb::KnowledgeBase& kb,
                           const datasets::SessionDataset& sessions,
                           int rounds) {
  WorkloadResult out;
  WallTimer timer;
  for (int round = 0; round < rounds; ++round) {
    for (const datasets::Session& session : sessions.sessions) {
      serving::SessionContext context;
      for (const datasets::Document& turn : session.turns) {
        std::vector<serving::ServedResult> served =
            service->LinkBatch({turn.text});
        Classify(served, &out);
        if (served.size() == 1 && !served[0].shed && served[0].result.ok()) {
          core::LinkingResult result = *served[0].result;
          context.ApplySessionCoherence(kb, &result);
          context.ObserveTurn(result);
        }
      }
    }
  }
  out.wall_ms = timer.ElapsedMillis();
  return out;
}

void PrintRow(const char* workload, const WorkloadResult& r) {
  std::printf("%-10s %8lld %10.1f %10.1f %10.3f %6lld %9lld %7lld %5lld\n",
              workload, static_cast<long long>(r.docs), r.wall_ms,
              r.DocsPerSec(), r.MsPerDoc(), static_cast<long long>(r.full),
              static_cast<long long>(r.degraded),
              static_cast<long long>(r.failed),
              static_cast<long long>(r.shed));
}

void Run(const JsonArgs& json_args) {
  const Environment& env = GetEnvironment();
  baselines::TenetLinker tenet(MakeSubstrate(env));

  const datasets::Dataset& clean = env.dataset("T-REx42");
  std::vector<std::string> clean_texts;
  for (const datasets::Document& doc : clean.documents) {
    clean_texts.push_back(doc.text);
  }

  datasets::AdversarialSpec adv_spec;
  datasets::MutationStats mutation_stats;
  datasets::Dataset hostile =
      datasets::AdversarialMutator(adv_spec).Mutate(clean, &mutation_stats);
  std::vector<std::string> hostile_texts;
  for (const datasets::Document& doc : hostile.documents) {
    hostile_texts.push_back(doc.text);
  }

  datasets::SessionGenerator session_generator(&env.world.kb_world);
  datasets::SessionSpec session_spec;
  Rng rng(kCorpusSeed);
  datasets::SessionDataset sessions =
      session_generator.Generate(session_spec, rng);

  obs::MetricsRegistry registry;
  serving::ServingOptions options;
  options.metrics = &registry;
  options.num_threads = 4;
  options.queue_capacity = 256;  // throughput run: no shedding wanted
  serving::BatchLinkingService service(&tenet, options);

  const int rounds = json_args.smoke ? 1 : 8;
  const int session_rounds = json_args.smoke ? 1 : 4;

  // Warm up allocators, caches, and the gazetteer before timing.
  RunBatches(&service, clean_texts, 1);

  WorkloadResult clean_result = RunBatches(&service, clean_texts, rounds);
  WorkloadResult hostile_result = RunBatches(&service, hostile_texts, rounds);
  WorkloadResult session_result =
      RunSessions(&service, env.world.kb(), sessions, session_rounds);

  std::printf("Adversarial serving throughput: TENET via BatchLinkingService "
              "(4 workers)\n");
  PrintRule();
  std::printf("%-10s %8s %10s %10s %10s %6s %9s %7s %5s\n", "workload",
              "docs", "wall_ms", "docs/s", "ms/doc", "full", "degraded",
              "failed", "shed");
  PrintRule();
  PrintRow("clean", clean_result);
  PrintRow("hostile", hostile_result);
  PrintRow("sessions", session_result);
  PrintRule();
  std::printf(
      "hostile = clean corpus through the adversarial mutator "
      "(%d typo'd words, %d homoglyph words, %d storm docs, %d invalid-UTF-8 "
      "docs);\nhostile/clean ms-per-doc ratio: %.2fx.  sessions = %d "
      "conversations x %d turns\nwith per-session coherence re-ranking on "
      "every turn.\n",
      mutation_stats.typo_words, mutation_stats.homoglyph_words,
      mutation_stats.ambiguity_storm_docs, mutation_stats.invalid_utf8_docs,
      clean_result.MsPerDoc() > 0.0
          ? hostile_result.MsPerDoc() / clean_result.MsPerDoc()
          : 0.0,
      session_spec.num_sessions, session_spec.turns_per_session);

  if (!json_args.json_path.empty()) {
    std::vector<JsonRecord> records;
    auto record = [&](const char* name, const WorkloadResult& r) {
      JsonRecord rec;
      rec.bench = std::string("adversarial_throughput/") + name;
      rec.ns_per_op = r.MsPerDoc() * 1e6;
      rec.pairs_per_sec = r.DocsPerSec();
      records.push_back(rec);
    };
    record("clean", clean_result);
    record("hostile", hostile_result);
    record("sessions", session_result);
    WriteJsonRecords(json_args.json_path, records);
  }
}

}  // namespace
}  // namespace bench
}  // namespace tenet

int main(int argc, char** argv) {
  tenet::bench::JsonArgs json_args = tenet::bench::StripJsonArgs(&argc, argv);
  tenet::bench::Run(json_args);
  return 0;
}
