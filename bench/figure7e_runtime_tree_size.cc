// Regenerates Figure 7(e): TENET runtime vs size of the coherence tree
// cover (total edges across its trees).
#include <cstdio>

#include "baselines/tenet_linker.h"
#include "scaling_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();
  baselines::TenetLinker tenet_linker(bench::MakeSubstrate(env));

  std::printf("Figure 7(e): TENET runtime vs tree-cover size\n");
  bench::PrintRule(72);
  std::printf("%9s %14s %16s %16s\n", "mentions", "cover edges",
              "cover+disamb ms", "total ms");
  bench::PrintRule(72);
  for (int mentions : {5, 10, 20, 40, 60}) {
    std::vector<datasets::Document> docs = bench::ScaledDocuments(
        env, /*count=*/6, mentions, mentions * 22, mentions * 0.6,
        /*seed=*/5000 + mentions);
    double edges = 0.0;
    double stage_ms = 0.0;
    double total_ms = 0.0;
    int runs = 0;
    for (const datasets::Document& d : docs) {
      Result<core::LinkingResult> r = tenet_linker.LinkDocument(d.text);
      TENET_CHECK(r.ok());
      edges += r->cover_stats.cover_total_edges;
      stage_ms += r->timings.cover_ms + r->timings.disambiguate_ms;
      total_ms += r->timings.TotalMs();
      ++runs;
    }
    std::printf("%9d %14.1f %16.3f %16.3f\n", mentions, edges / runs,
                stage_ms / runs, total_ms / runs);
  }
  bench::PrintRule(72);
  std::printf(
      "Paper shape (Fig. 7e): the tree-cover + disambiguation stages grow "
      "roughly\nlinearly with the number of edges in the cover.\n");
  return 0;
}
