// Ablation: the mention-canopy machinery (Sec. 5.1).  With long-text
// variants disabled, TENET degrades to a short-only spotter like
// Falcon/EARL and loses the composite mentions ("Fellow of the AAAS"),
// while keeping the tree-cover disambiguation.
#include <cstdio>

#include "baselines/tenet_linker.h"
#include "bench_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();

  std::printf("Ablation: mention canopies on/off\n");
  bench::PrintRule(86);
  std::printf("%-22s %-9s %10s %10s %10s\n", "Variant", "Dataset", "MD F1",
              "EL F1", "ISO P");
  bench::PrintRule(86);
  for (bool canopies : {true, false}) {
    core::TenetOptions options;
    options.canopy.enable_long_variants = canopies;
    baselines::TenetLinker tenet(bench::MakeSubstrate(env), options);
    for (const char* name : {"News", "MSNBC19"}) {
      eval::SystemScores scores =
          eval::EvaluateEndToEnd(tenet, env.dataset(name));
      std::printf("%-22s %-9s %10.3f %10.3f %10.3f\n",
                  canopies ? "canopies enabled" : "short-only (ablated)",
                  name, scores.mention_detection.F1(),
                  scores.entity_linking.F1(),
                  scores.isolated_detection.Precision());
    }
  }
  bench::PrintRule(86);
  std::printf(
      "Expected: disabling canopies costs mention detection (composites "
      "fragment) and\ndrags entity linking down with it — the joint "
      "MD+disambiguation claim of Sec. 1.\n");
  return 0;
}
