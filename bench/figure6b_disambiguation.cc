// Regenerates Figure 6(b): entity disambiguation F1 with the gold mentions
// given as input.  Falcon and EARL are excluded (no dedicated
// disambiguation stage), as in the paper.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();
  auto linkers = bench::MakeAllLinkers(env);

  std::printf("Figure 6(b): entity disambiguation with gold mentions (F1)\n");
  bench::PrintRule(64);
  std::printf("%-9s", "System");
  for (const datasets::Dataset& dataset : env.datasets) {
    std::printf(" %9s", dataset.name.c_str());
  }
  std::printf("\n");
  bench::PrintRule(64);
  for (const auto& linker : linkers) {
    if (!linker->has_disambiguation_stage()) continue;
    std::printf("%-9s", std::string(linker->name()).c_str());
    for (const datasets::Dataset& dataset : env.datasets) {
      eval::SystemScores scores = eval::EvaluateDisambiguation(
          *linker, dataset, env.world.gazetteer());
      std::printf(" %9.3f", scores.entity_linking.F1());
    }
    std::printf("\n");
  }
  bench::PrintRule(64);
  std::printf(
      "Paper shape (Fig. 6b): TENET leads on the long-text datasets and the "
      "ambiguous\nKORE50, where disambiguation relies on relatedness "
      "discovery.\n");
  return 0;
}
