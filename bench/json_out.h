// Machine-readable output of the bench harness: a tiny JSON emitter and
// the `--json <path>` / `--smoke` flag convention shared by the binaries
// that publish throughput trajectories (micro_kernels,
// figure7a_runtime_words).  Records land as a JSON array of
//   {"bench": ..., "ns_per_op": ..., "pairs_per_sec": ...}
// objects — the BENCH_coherence.json schema CI archives per commit.
#ifndef TENET_BENCH_JSON_OUT_H_
#define TENET_BENCH_JSON_OUT_H_

#include <cstdio>
#include <string>
#include <vector>

namespace tenet {
namespace bench {

// One published measurement.  `pairs_per_sec` is the bench's natural
// throughput unit: concept pairs for the similarity kernels, documents for
// the end-to-end scaling benches.  `speedup` > 0 adds a
// "speedup_vs_scalar" key (the kernel-vs-baseline ratio CI tracks);
// `shards` > 0 adds a "shards" key (the sharded-load rows of
// BENCH_kb_load.json).
struct JsonRecord {
  std::string bench;
  double ns_per_op = 0.0;
  double pairs_per_sec = 0.0;
  double speedup = 0.0;
  int shards = 0;
};

inline bool WriteJsonRecords(const std::string& path,
                             const std::vector<JsonRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write bench records to %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    std::fprintf(f, "  {\"bench\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"pairs_per_sec\": %.1f",
                 r.bench.c_str(), r.ns_per_op, r.pairs_per_sec);
    if (r.speedup > 0.0) {
      std::fprintf(f, ", \"speedup_vs_scalar\": %.2f", r.speedup);
    }
    if (r.shards > 0) {
      std::fprintf(f, ", \"shards\": %d", r.shards);
    }
    std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu bench records to %s\n", records.size(),
              path.c_str());
  return true;
}

// The flags this harness owns, stripped out of argc/argv before anything
// else (google-benchmark's own parser rejects flags it does not know).
struct JsonArgs {
  std::string json_path;  // empty: no JSON output requested
  bool smoke = false;     // short repetitions (CI tier-1 smoke)
};

inline JsonArgs StripJsonArgs(int* argc, char** argv) {
  JsonArgs args;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--json" && i + 1 < *argc) {
      args.json_path = argv[++i];
    } else if (flag == "--smoke") {
      args.smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return args;
}

}  // namespace bench
}  // namespace tenet

#endif  // TENET_BENCH_JSON_OUT_H_
