// Regenerates Figure 7(d): TENET runtime vs number of mention groups
// (driven by the density of feature-linked runs in the documents).
#include <cstdio>

#include "baselines/tenet_linker.h"
#include "scaling_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();
  baselines::TenetLinker tenet_linker(bench::MakeSubstrate(env));

  std::printf("Figure 7(d): TENET runtime (ms/doc) vs mention groups\n");
  bench::PrintRule(56);
  std::printf("%8s %14s %10s\n", "pairs", "avg groups", "TENET");
  bench::PrintRule(56);
  for (double pairs : {0.0, 2.0, 4.0, 8.0, 12.0}) {
    std::vector<datasets::Document> docs = bench::ScaledDocuments(
        env, /*count=*/6, /*mentions=*/20, /*words=*/440,
        /*relations=*/8, /*seed=*/4000 + static_cast<uint64_t>(pairs),
        /*conjunction_pairs=*/pairs, /*composites=*/pairs / 4.0);
    double groups = 0.0;
    for (const datasets::Document& d : docs) {
      Result<core::LinkingResult> r = tenet_linker.LinkDocument(d.text);
      TENET_CHECK(r.ok());
      groups += r->mentions.num_groups();
    }
    groups /= docs.size();
    std::printf("%8.0f %14.1f %10.2f\n", pairs, groups,
                bench::AverageMsPerDocument(tenet_linker, docs));
  }
  bench::PrintRule(56);
  std::printf(
      "Paper shape (Fig. 7d): runtime roughly linear in the number of "
      "mention groups.\n");
  return 0;
}
