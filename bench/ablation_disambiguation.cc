// Ablation: the design choices of the disambiguation stage (Sec. 5.2
// discussion + DESIGN.md §7):
//   * global Kruskal order vs. per-tree sequential sweeps ("computing an
//     MST on each T_i is not applicable" — the paper's argument);
//   * the informative-mention tie-break among equal-weight edges;
//   * early termination (pruning strategy 4), which trades nothing in
//     quality for a shorter sweep.
#include <cstdio>

#include "baselines/tenet_linker.h"
#include "bench_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();

  struct Variant {
    const char* name;
    core::DisambiguatorOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"published (all on)", {}});
  {
    core::DisambiguatorOptions o;
    o.global_kruskal_order = false;
    variants.push_back({"per-tree order", o});
  }
  {
    core::DisambiguatorOptions o;
    o.informative_tie_break = false;
    variants.push_back({"no informative tie-break", o});
  }
  {
    core::DisambiguatorOptions o;
    o.early_termination = false;
    variants.push_back({"no early termination", o});
  }

  std::printf("Ablation: disambiguation design choices (entity linking F1)\n");
  bench::PrintRule(86);
  std::printf("%-26s %9s %9s %9s %9s %12s\n", "Variant", "News", "T-REx42",
              "KORE50", "MSNBC19", "ms (all)");
  bench::PrintRule(86);
  for (const Variant& variant : variants) {
    core::TenetOptions options;
    options.disambiguator = variant.options;
    baselines::TenetLinker tenet(bench::MakeSubstrate(env), options);
    std::printf("%-26s", variant.name);
    double total_ms = 0.0;
    for (const datasets::Dataset& dataset : env.datasets) {
      eval::SystemScores scores = eval::EvaluateEndToEnd(tenet, dataset);
      total_ms += scores.total_ms;
      std::printf(" %9.3f", scores.entity_linking.F1());
    }
    std::printf(" %12.1f\n", total_ms);
  }
  bench::PrintRule(86);
  std::printf(
      "Expected: the per-tree order loses quality (processing order bias, "
      "Sec. 5.2);\nthe tie-break mainly protects long-mention selection; "
      "early termination only\naffects runtime.\n");
  return 0;
}
