// Regenerates Figure 7(a): execution time vs number of words per document
// for TENET, QKBfly and KBPearl (Falcon/EARL excluded: remote APIs in the
// paper's measurement).
#include <cstdio>

#include "scaling_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();
  baselines::QkbflyLike qkbfly(bench::MakeSubstrate(env));
  baselines::KbPearlLike kbpearl(bench::MakeSubstrate(env));
  baselines::TenetLinker tenet_linker(bench::MakeSubstrate(env));

  std::printf("Figure 7(a): runtime (ms/doc) vs words per document\n");
  bench::PrintRule(56);
  std::printf("%8s %10s %10s %10s\n", "words", "QKBfly", "KBPearl", "TENET");
  bench::PrintRule(56);
  const int kWordCounts[] = {50, 100, 200, 400, 800};
  for (int words : kWordCounts) {
    double mentions = words / 22.0;  // News-like mention density
    std::vector<datasets::Document> docs = bench::ScaledDocuments(
        env, /*count=*/6, mentions, words, mentions * 0.6,
        /*seed=*/1000 + words);
    std::printf("%8d %10.2f %10.2f %10.2f\n", words,
                bench::AverageMsPerDocument(qkbfly, docs),
                bench::AverageMsPerDocument(kbpearl, docs),
                bench::AverageMsPerDocument(tenet_linker, docs));
  }
  bench::PrintRule(56);
  std::printf(
      "Paper shape (Fig. 7a): KBPearl is the most sensitive to document "
      "length (per-pair\nKB probing); TENET and QKBfly grow moderately "
      "thanks to the precomputed\nrelatedness index.\n");
  return 0;
}
