// Regenerates Figure 7(a): execution time vs number of words per document
// for TENET, QKBfly and KBPearl (Falcon/EARL excluded: remote APIs in the
// paper's measurement).
//
// `--json <path>` additionally writes {bench, ns_per_op, pairs_per_sec}
// records, one per (system, word count) — ns_per_op is ns per document,
// pairs_per_sec is documents per second — the same schema as the
// micro_kernels trajectory so CI can archive both.
#include <cstdio>
#include <string>
#include <vector>

#include "json_out.h"
#include "scaling_common.h"

int main(int argc, char** argv) {
  using namespace tenet;
  bench::JsonArgs json_args = bench::StripJsonArgs(&argc, argv);
  const bench::Environment& env = bench::GetEnvironment();
  baselines::QkbflyLike qkbfly(bench::MakeSubstrate(env));
  baselines::KbPearlLike kbpearl(bench::MakeSubstrate(env));
  baselines::TenetLinker tenet_linker(bench::MakeSubstrate(env));
  const int repetitions = json_args.smoke ? 1 : 3;
  std::vector<bench::JsonRecord> records;
  auto record = [&](const char* system, int words, double ms_per_doc) {
    bench::JsonRecord r;
    r.bench = std::string("figure7a/") + system + "/words=" +
              std::to_string(words);
    r.ns_per_op = ms_per_doc * 1e6;
    r.pairs_per_sec = ms_per_doc > 0.0 ? 1000.0 / ms_per_doc : 0.0;
    records.push_back(r);
  };

  std::printf("Figure 7(a): runtime (ms/doc) vs words per document\n");
  bench::PrintRule(56);
  std::printf("%8s %10s %10s %10s\n", "words", "QKBfly", "KBPearl", "TENET");
  bench::PrintRule(56);
  const int kWordCounts[] = {50, 100, 200, 400, 800};
  for (int words : kWordCounts) {
    double mentions = words / 22.0;  // News-like mention density
    std::vector<datasets::Document> docs = bench::ScaledDocuments(
        env, /*count=*/6, mentions, words, mentions * 0.6,
        /*seed=*/1000 + words);
    double qkbfly_ms = bench::AverageMsPerDocument(qkbfly, docs, repetitions);
    double kbpearl_ms =
        bench::AverageMsPerDocument(kbpearl, docs, repetitions);
    double tenet_ms =
        bench::AverageMsPerDocument(tenet_linker, docs, repetitions);
    std::printf("%8d %10.2f %10.2f %10.2f\n", words, qkbfly_ms, kbpearl_ms,
                tenet_ms);
    record("QKBfly", words, qkbfly_ms);
    record("KBPearl", words, kbpearl_ms);
    record("TENET", words, tenet_ms);
  }
  bench::PrintRule(56);
  std::printf(
      "Paper shape (Fig. 7a): KBPearl is the most sensitive to document "
      "length (per-pair\nKB probing); TENET and QKBfly grow moderately "
      "thanks to the precomputed\nrelatedness index.\n");
  if (!json_args.json_path.empty() &&
      !bench::WriteJsonRecords(json_args.json_path, records)) {
    return 1;
  }
  return 0;
}
