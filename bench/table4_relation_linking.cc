// Regenerates Table 4: performance of end-to-end relation linking on the
// two datasets with predicate annotations (News, T-REx42), for the four
// systems that link relations.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();
  auto linkers = bench::MakeAllLinkers(env);

  std::printf("Table 4: performance of end-to-end relation linking\n");
  bench::PrintRule(64);
  std::printf("%-9s | %-7s P     R     F | %-7s P     R     F\n", "System",
              "News", "T-REx42");
  bench::PrintRule(64);
  for (const auto& linker : linkers) {
    if (!linker->links_relations()) continue;
    std::printf("%-9s", std::string(linker->name()).c_str());
    for (const char* name : {"News", "T-REx42"}) {
      eval::SystemScores scores =
          eval::EvaluateEndToEnd(*linker, env.dataset(name));
      std::printf(" |    %.3f %.3f %.3f", scores.relation_linking.Precision(),
                  scores.relation_linking.Recall(),
                  scores.relation_linking.F1());
    }
    std::printf("\n");
  }
  bench::PrintRule(64);
  std::printf(
      "Paper shape (Table 4): TENET best F on both datasets; relation "
      "linking is harder\nthan entity linking for every system (ambiguous "
      "verbs, missing pattern dictionary).\n");
  return 0;
}
