// Snapshot-load benchmark: the legacy TENETKB v1 text container vs the
// TENETKB2 binary snapshot, loaded buffered and zero-copy (mmap), plus the
// TENETEMB1 embedding container streamed vs mapped.  This is the number
// behind the README loading-time table and the >= 5x binary-vs-text
// acceptance bar of the snapshot format.
//
// `--json <path>` writes {bench, ns_per_op, pairs_per_sec, speedup} records
// (the BENCH_kb_load.json trajectory CI archives); `--smoke` shrinks the
// sizes and repetitions for the tier-1 CI job.  Timings are best-of-N to
// shed scheduler noise; speedup is relative to the text load of the same
// KB.
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include <algorithm>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "embedding/trainer.h"
#include "json_out.h"
#include "kb/delta.h"
#include "kb/io.h"
#include "kb/sharded_kb.h"
#include "kb/synthetic_kb.h"

namespace {

using namespace tenet;

struct SizeSpec {
  const char* name;
  int num_domains;
  int entities_per_domain;
};

double ItemCount(const kb::KnowledgeBase& kb) {
  return static_cast<double>(kb.num_entities()) + kb.num_predicates() +
         kb.alias_index().num_surfaces() + kb.num_facts();
}

// Best-of-`reps` wall time of one load variant, in milliseconds.  `load`
// returns the Result so the store is fully materialized and finalized
// inside the timed window, while its destruction happens outside it —
// tearing a KB down is not part of loading one.
template <typename LoadFn>
double BestMillis(int reps, LoadFn&& load) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    auto loaded = load();
    double ms = timer.ElapsedMillis();
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonArgs json_args = bench::StripJsonArgs(&argc, argv);

  std::vector<SizeSpec> sizes = {
      {"small", 4, 50}, {"medium", 12, 200}, {"large", 30, 400}};
  int reps = 5;
  if (json_args.smoke) {
    sizes = {{"small", 4, 50}};
    reps = 2;
  }

  ThreadPool::Options pool_options;
  pool_options.num_threads = 4;
  ThreadPool pool(pool_options);

  std::vector<bench::JsonRecord> records;
  std::printf("%-8s %-16s %12s %12s %10s\n", "size", "variant", "ms",
              "items/s", "speedup");
  for (const SizeSpec& size : sizes) {
    kb::SyntheticKbOptions kb_options;
    kb_options.num_domains = size.num_domains;
    kb_options.entities_per_domain = size.entities_per_domain;
    Rng rng(2021);
    kb::SyntheticKb world = kb::SyntheticKbGenerator(kb_options).Generate(rng);

    const std::string text_path =
        std::string("bench_kb_load_") + size.name + ".text.tenetkb";
    const std::string bin_path =
        std::string("bench_kb_load_") + size.name + ".tenetkb";
    const std::string emb_path =
        std::string("bench_kb_load_") + size.name + ".tenetemb";
    if (!kb::SaveKnowledgeBase(world.kb, text_path, kb::KbFormat::kTextV1)
             .ok() ||
        !kb::SaveKnowledgeBase(world.kb, bin_path, kb::KbFormat::kBinaryV2)
             .ok()) {
      std::fprintf(stderr, "saving %s KB failed\n", size.name);
      return 1;
    }
    embedding::TrainerOptions trainer_options;
    Rng emb_rng(7);
    embedding::EmbeddingStore embeddings =
        embedding::StructuralEmbeddingTrainer(trainer_options)
            .Train(world.kb, emb_rng);
    if (!kb::SaveEmbeddings(embeddings, emb_path).ok()) {
      std::fprintf(stderr, "saving %s embeddings failed\n", size.name);
      return 1;
    }

    struct Variant {
      const char* name;
      kb::KbLoadOptions options;
      const std::string* path;
    };
    const Variant variants[] = {
        {"text", {}, &text_path},
        {"binary", {/*prefer_mmap=*/false, nullptr}, &bin_path},
        {"binary_mmap", {/*prefer_mmap=*/true, nullptr}, &bin_path},
        {"binary_mmap_pool", {/*prefer_mmap=*/true, &pool}, &bin_path},
    };
    const double items = ItemCount(world.kb);
    double text_ms = 0.0;
    for (const Variant& variant : variants) {
      double ms = BestMillis(reps, [&variant] {
        return kb::LoadKnowledgeBase(*variant.path, variant.options);
      });
      if (variant.name == std::string("text")) text_ms = ms;
      double speedup = text_ms > 0.0 ? text_ms / ms : 0.0;
      std::printf("%-8s %-16s %12.3f %12.0f %9.2fx\n", size.name,
                  variant.name, ms, items / (ms / 1e3), speedup);
      records.push_back(bench::JsonRecord{
          std::string("kb_load/") + variant.name + "/" + size.name,
          ms * 1e6, items / (ms / 1e3),
          variant.name == std::string("text") ? 0.0 : speedup});
    }

    // Delta replay (DESIGN.md §12): the live-update cold-start path —
    // binary snapshot + embeddings + a stack of TENETDELTA1 segments
    // loaded, validated and folded in.  The column quantifies the replay
    // tax an updater pays before compaction catches up.
    constexpr int kDeltaSegments = 8;
    constexpr int kEntitiesPerSegment = 16;
    std::vector<std::string> delta_paths;
    {
      Rng delta_rng(1789);
      const int dim = embeddings.dimension();
      int32_t entities = world.kb.num_entities();
      const int32_t predicates = world.kb.num_predicates();
      for (int s = 0; s < kDeltaSegments; ++s) {
        kb::DeltaBuilder builder(entities, predicates);
        for (int e = 0; e < kEntitiesPerSegment; ++e) {
          std::string label = std::string("delta entity ") + size.name + " " +
                              std::to_string(s) + "-" + std::to_string(e);
          kb::EntityId id = builder.AddEntity(
              label, static_cast<kb::EntityType>(e % kb::kNumEntityTypes));
          builder.AddEntityAlias(id, label + " alias", 1.0);
          std::vector<float> row(static_cast<size_t>(dim));
          for (float& v : row) {
            v = static_cast<float>(delta_rng.NextGaussian());
          }
          builder.SetEmbedding(kb::ConceptRef::Entity(id), row);
        }
        entities = builder.num_entities();
        std::string path = std::string("bench_kb_load_") + size.name +
                           ".delta" + std::to_string(s) + ".tenetdelta";
        if (!builder.Write(path).ok()) {
          std::fprintf(stderr, "writing %s failed\n", path.c_str());
          return 1;
        }
        delta_paths.push_back(std::move(path));
      }
    }
    {
      double ms = BestMillis(reps, [&]() -> Result<kb::AppliedDelta> {
        kb::KbLoadOptions options;
        options.prefer_mmap = true;
        TENET_ASSIGN_OR_RETURN(kb::KnowledgeBase kb,
                               kb::LoadKnowledgeBase(bin_path, options));
        TENET_ASSIGN_OR_RETURN(embedding::EmbeddingStore store,
                               kb::LoadEmbeddings(emb_path, options));
        std::vector<kb::DeltaSegment> segments;
        segments.reserve(delta_paths.size());
        for (const std::string& path : delta_paths) {
          TENET_ASSIGN_OR_RETURN(kb::DeltaSegment segment,
                                 kb::LoadDeltaSegment(path));
          segments.push_back(std::move(segment));
        }
        return kb::ApplyDeltas(kb, store, segments);
      });
      double speedup = text_ms > 0.0 ? text_ms / ms : 0.0;
      std::printf("%-8s %-16s %12.3f %12.0f %9.2fx\n", size.name,
                  "delta_replay", ms, items / (ms / 1e3), speedup);
      records.push_back(bench::JsonRecord{
          std::string("kb_load/delta_replay/") + size.name, ms * 1e6,
          items / (ms / 1e3), speedup});
    }

    const double emb_items = static_cast<double>(world.kb.num_entities()) +
                             world.kb.num_predicates();
    for (bool prefer_mmap : {false, true}) {
      kb::KbLoadOptions options;
      options.prefer_mmap = prefer_mmap;
      double ms = BestMillis(reps, [&emb_path, &options] {
        return kb::LoadEmbeddings(emb_path, options);
      });
      const char* name = prefer_mmap ? "emb_mmap" : "emb_stream";
      std::printf("%-8s %-16s %12.3f %12.0f %10s\n", size.name, name, ms,
                  emb_items / (ms / 1e3), "-");
      records.push_back(bench::JsonRecord{
          std::string("emb_load/") + (prefer_mmap ? "mmap" : "stream") + "/" +
              size.name,
          ms * 1e6, emb_items / (ms / 1e3), 0.0});
    }

    std::remove(text_path.c_str());
    std::remove(bin_path.c_str());
    std::remove(emb_path.c_str());
    for (const std::string& path : delta_paths) std::remove(path.c_str());
  }

  // ---- Sharded layouts (DESIGN.md §14) ----------------------------------
  // The same KB partitioned into 1/4/16 hash shards, saved as a
  // TENETKBSHARDS1 layout and loaded back through ShardedKb::Load.  Two
  // rows per shard count:
  //
  //   sharded_wall     best-of-N wall time of the (serial) loader.
  //   sharded_critical best-of-N critical path: the loader's serial
  //                    prologue (manifest parse, assembly) plus the
  //                    *slowest single shard's* load time.  Shard loads
  //                    are independent, so this is the wall time a loader
  //                    with >= N-way I/O parallelism would pay — reported
  //                    separately because this bench host may be serial
  //                    (a 1-core box loads shards back to back, and its
  //                    wall clock cannot show the scaling).
  //
  // The critical-path speedup column is relative to the 1-shard layout;
  // >= 2x at 4 shards is the acceptance bar of the sharded substrate.
  // Runs at the "huge" synthetic tier (~58k entities), where shard
  // payloads dwarf the fixed per-shard overheads; --smoke shrinks it to
  // the small tier and 1/4 shards.
  {
    kb::SyntheticKbOptions kb_options = kb::SyntheticKbOptions::Huge();
    const char* tier = "huge";
    std::vector<int> shard_counts = {1, 4, 16};
    if (json_args.smoke) {
      kb_options = kb::SyntheticKbOptions{};
      kb_options.num_domains = 4;
      kb_options.entities_per_domain = 50;
      tier = "small";
      shard_counts = {1, 4};
    }
    Rng rng(2021);
    kb::SyntheticKb world = kb::SyntheticKbGenerator(kb_options).Generate(rng);
    embedding::TrainerOptions trainer_options;
    Rng emb_rng(7);
    embedding::EmbeddingStore embeddings =
        embedding::StructuralEmbeddingTrainer(trainer_options)
            .Train(world.kb, emb_rng);
    const double items = ItemCount(world.kb);

    double critical_1shard_ms = 0.0;
    for (int num_shards : shard_counts) {
      kb::ShardedKb sharded =
          kb::ShardedKb::Partition(world.kb, embeddings, num_shards);
      const std::string manifest = std::string("bench_kb_load_") + tier +
                                   ".s" + std::to_string(num_shards) +
                                   ".tenetshards";
      if (!sharded.Save(manifest).ok()) {
        std::fprintf(stderr, "saving %d-shard layout failed\n", num_shards);
        return 1;
      }

      double wall_ms = 0.0;
      double critical_ms = 0.0;
      for (int r = 0; r < reps; ++r) {
        WallTimer timer;
        Result<kb::ShardedKb> loaded = kb::ShardedKb::Load(manifest);
        double ms = timer.ElapsedMillis();
        if (!loaded.ok()) {
          std::fprintf(stderr, "loading %s failed: %s\n", manifest.c_str(),
                       loaded.status().ToString().c_str());
          return 1;
        }
        double max_shard_ms = 0.0;
        double sum_shard_ms = 0.0;
        for (int s = 0; s < loaded->num_shards(); ++s) {
          max_shard_ms = std::max(max_shard_ms, loaded->shard(s).load_ms);
          sum_shard_ms += loaded->shard(s).load_ms;
        }
        const double crit = ms - sum_shard_ms + max_shard_ms;
        if (r == 0 || ms < wall_ms) wall_ms = ms;
        if (r == 0 || crit < critical_ms) critical_ms = crit;
      }
      if (num_shards == shard_counts.front()) {
        critical_1shard_ms = critical_ms;
      }
      const double scaling =
          critical_ms > 0.0 ? critical_1shard_ms / critical_ms : 0.0;

      std::string wall_name = std::string("sharded_wall/s") +
                              std::to_string(num_shards);
      std::printf("%-8s %-16s %12.3f %12.0f %10s\n", tier, wall_name.c_str(),
                  wall_ms, items / (wall_ms / 1e3), "-");
      bench::JsonRecord wall_record{
          std::string("kb_load/sharded_wall/") + tier + "/s" +
              std::to_string(num_shards),
          wall_ms * 1e6, items / (wall_ms / 1e3), 0.0};
      wall_record.shards = num_shards;
      records.push_back(wall_record);

      std::string crit_name = std::string("sharded_critical/s") +
                              std::to_string(num_shards);
      std::printf("%-8s %-16s %12.3f %12.0f %9.2fx\n", tier,
                  crit_name.c_str(), critical_ms,
                  items / (critical_ms / 1e3), scaling);
      bench::JsonRecord crit_record{
          std::string("kb_load/sharded_critical/") + tier + "/s" +
              std::to_string(num_shards),
          critical_ms * 1e6, items / (critical_ms / 1e3),
          num_shards == shard_counts.front() ? 0.0 : scaling};
      crit_record.shards = num_shards;
      records.push_back(crit_record);

      std::remove(manifest.c_str());
      for (int s = 0; s < num_shards; ++s) {
        std::remove((manifest + ".s" + std::to_string(s) + ".kb2").c_str());
        std::remove((manifest + ".s" + std::to_string(s) + ".emb").c_str());
      }
    }
  }

  if (!json_args.json_path.empty() &&
      !bench::WriteJsonRecords(json_args.json_path, records)) {
    return 1;
  }
  return 0;
}
