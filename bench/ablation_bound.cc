// Ablation: the tree-cost bound B.  The paper fixes B = |M| (Sec. 6.1);
// this sweep shows why that is safe — quality is flat across a wide range
// of bound factors, failures only appear for extreme values — and
// exercises the failure-warning/retry path plus the 4B cost guarantee.
// Also demonstrates the SolveWithMinimalBound extension (B* search).
#include <cstdio>

#include "baselines/tenet_linker.h"
#include "bench_common.h"
#include "core/tree_cover.h"
#include "text/extraction.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();
  const datasets::Dataset& news = env.dataset("News");

  std::printf("Ablation: tree-cost bound factor (B = factor * |M|), News\n");
  bench::PrintRule(66);
  std::printf("%8s %10s %10s %14s\n", "factor", "EL F1", "ISO P",
              "avg used B");
  bench::PrintRule(66);
  for (double factor : {0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::TenetOptions options;
    options.bound_factor = factor;
    baselines::TenetLinker tenet(bench::MakeSubstrate(env), options);
    eval::SystemScores scores = eval::EvaluateEndToEnd(tenet, news);
    // Average bound actually used (after failure-warning retries).
    double used = 0.0;
    int count = 0;
    for (const datasets::Document& doc : news.documents) {
      Result<core::LinkingResult> r = tenet.LinkDocument(doc.text);
      if (r.ok()) {
        used += r->used_bound;
        ++count;
      }
    }
    std::printf("%8.2f %10.3f %10.3f %14.2f\n", factor,
                scores.entity_linking.F1(),
                scores.isolated_detection.Precision(),
                count > 0 ? used / count : 0.0);
  }
  bench::PrintRule(66);

  // ---- Extension: minimal feasible bound B* -------------------------------
  std::printf("\nExtension: SolveWithMinimalBound (binary search for B*)\n");
  bench::PrintRule(66);
  std::printf("%-10s %10s %12s %14s\n", "document", "B*", "cover cost",
              "cost <= 4B*");
  bench::PrintRule(66);
  text::Extractor extractor(&env.world.gazetteer());
  core::CoherenceGraphBuilder builder(&env.world.kb(),
                                      &env.world.embeddings);
  core::TreeCoverSolver solver;
  for (int i = 0; i < 5; ++i) {
    const datasets::Document& doc = news.documents[i];
    core::MentionSet mentions = core::BuildMentionSet(
        extractor.ExtractFromText(doc.text), &env.world.gazetteer());
    core::CoherenceGraph cg = builder.Build(std::move(mentions));
    Result<std::pair<double, core::TreeCover>> minimal =
        core::SolveWithMinimalBound(solver, cg,
                                    /*initial_bound=*/cg.num_mentions());
    if (!minimal.ok()) {
      std::printf("%-10s  (failed: %s)\n", doc.id.c_str(),
                  minimal.status().ToString().c_str());
      continue;
    }
    double b_star = minimal->first;
    double cost = minimal->second.Cost();
    std::printf("%-10s %10.3f %12.3f %14s\n", doc.id.c_str(), b_star, cost,
                cost <= 4.0 * b_star + 1e-9 ? "yes" : "NO");
  }
  bench::PrintRule(66);
  std::printf(
      "Expected: quality is flat for factors >= ~0.25 (B = |M| is a safe "
      "default);\ntiny factors trigger failure-warning retries that double "
      "B back into the\nfeasible region.  Every cover respects the "
      "Lemma 4.2 bound.\n");
  return 0;
}
