// Regenerates Figure 4: sparsity of the gold entities per document —
// (a) density Den(C) and (b) average degree, as functions of the semantic
// distance threshold (0.0 .. 0.9).
#include <cstdio>

#include "bench_common.h"
#include "eval/sparsity.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();

  std::printf("Figure 4(a): density of the entities in one document\n");
  bench::PrintRule();
  std::printf("%-10s", "distance");
  for (int t = 0; t < 10; ++t) std::printf("  %5.1f", 0.1 * t);
  std::printf("\n");
  bench::PrintRule();
  std::vector<std::vector<eval::SparsityPoint>> curves;
  for (const datasets::Dataset& dataset : env.datasets) {
    curves.push_back(
        eval::EntitySparsity(dataset, env.world.kb(), env.world.embeddings));
    std::printf("%-10s", dataset.name.c_str());
    for (const eval::SparsityPoint& p : curves.back()) {
      std::printf("  %5.2f", p.density);
    }
    std::printf("\n");
  }

  std::printf("\nFigure 4(b): average degree of the entities in one "
              "document\n");
  bench::PrintRule();
  std::printf("%-10s", "distance");
  for (int t = 0; t < 10; ++t) std::printf("  %5.1f", 0.1 * t);
  std::printf("\n");
  bench::PrintRule();
  for (size_t i = 0; i < env.datasets.size(); ++i) {
    std::printf("%-10s", env.datasets[i].name.c_str());
    for (const eval::SparsityPoint& p : curves[i]) {
      std::printf("  %5.2f", p.avg_degree);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: density/degree stay low until large thresholds — e.g. "
      "in MSNBC19\n(>22 entities/doc) each entity connects to < 6 others "
      "below distance 0.7.\n");
  return 0;
}
