// Regenerates Figure 7(c): TENET runtime vs number of mentions for
// different candidate counts k per mention.
#include <cstdio>

#include "scaling_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();

  std::printf("Figure 7(c): TENET runtime (ms/doc) vs mentions, per k\n");
  bench::PrintRule(56);
  std::printf("%9s %10s %10s %10s\n", "mentions", "k=2", "k=4", "k=6");
  bench::PrintRule(56);
  const int kMentionCounts[] = {5, 10, 20, 40, 60};
  for (int mentions : kMentionCounts) {
    std::vector<datasets::Document> docs = bench::ScaledDocuments(
        env, /*count=*/5, mentions, mentions * 22, mentions * 0.6,
        /*seed=*/3000 + mentions);
    std::printf("%9d", mentions);
    for (int k : {2, 4, 6}) {
      baselines::BaselineSubstrate substrate = bench::MakeSubstrate(env);
      substrate.graph_options.max_candidates_per_mention = k;
      baselines::TenetLinker tenet_linker(substrate);
      std::printf(" %10.2f",
                  bench::AverageMsPerDocument(tenet_linker, docs));
    }
    std::printf("\n");
  }
  bench::PrintRule(56);
  std::printf(
      "Paper shape (Fig. 7c): roughly linear in mentions; nearly flat in k "
      "for k >= 4\n(most surfaces have at most 3-4 candidates in the KB).\n");
  return 0;
}
