// Serving-layer scaling: end-to-end evaluation throughput of TENET as the
// BatchLinkingService worker count grows, on the four evaluation corpora.
// The PRF columns double as a determinism check — they must not move with
// the thread count (the harness merges results in dataset order).
#include <cstdio>

#include "bench_common.h"
#include "obs/metrics.h"

namespace tenet {
namespace bench {
namespace {

void Run() {
  const Environment& env = GetEnvironment();
  baselines::TenetLinker tenet(MakeSubstrate(env));

  // The per-document latency histogram the pipeline publishes — filled by
  // serial and parallel runs alike, so the quantile columns stay
  // comparable across thread counts.  The registry is reset per row to
  // window the cumulative counters.
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
  obs::Histogram* doc_latency = registry->GetHistogram(
      "tenet_document_latency_ms",
      "End-to-end per-document linking latency in milliseconds, by "
      "degradation mode.",
      obs::LabelPair("mode", "full"));

  std::printf("Serving throughput: TENET end-to-end, by worker threads\n");
  PrintRule();
  std::printf("%-10s %8s %12s %12s %10s %22s  %s\n", "dataset", "threads",
              "total_ms", "wall_ms", "docs/s", "p50/p95/p99 ms",
              "entity P/R/F");
  PrintRule();
  for (const datasets::Dataset& dataset : env.datasets) {
    for (int threads : {1, 2, 4, 8}) {
      registry->Reset();
      eval::EvalOptions options;
      options.num_threads = threads;
      eval::SystemScores scores =
          eval::EvaluateEndToEnd(tenet, dataset, options);
      double docs_per_s = scores.wall_ms > 0.0
                              ? 1000.0 * dataset.documents.size() /
                                    scores.wall_ms
                              : 0.0;
      char quantiles[48];
      std::snprintf(quantiles, sizeof(quantiles), "%.2f/%.2f/%.2f",
                    doc_latency->P50(), doc_latency->P95(),
                    doc_latency->P99());
      std::printf("%-10s %8d %12.1f %12.1f %10.1f %22s  %s\n",
                  dataset.name.c_str(), threads, scores.total_ms,
                  scores.wall_ms, docs_per_s, quantiles,
                  eval::FormatPRF(scores.entity_linking).c_str());
    }
  }
  PrintRule();
  std::printf("total_ms sums per-document latencies (comparable across "
              "thread counts);\nwall_ms is the end-to-end clock; "
              "p50/p95/p99 come from the tenet_document_latency_ms "
              "histogram.\n");
}

}  // namespace
}  // namespace bench
}  // namespace tenet

int main() {
  tenet::bench::Run();
  return 0;
}
