// Serving-layer scaling: end-to-end evaluation throughput of TENET as the
// BatchLinkingService worker count grows, on the four evaluation corpora.
// The PRF columns double as a determinism check — they must not move with
// the thread count (the harness merges results in dataset order).
#include <cstdio>

#include "bench_common.h"

namespace tenet {
namespace bench {
namespace {

void Run() {
  const Environment& env = GetEnvironment();
  baselines::TenetLinker tenet(MakeSubstrate(env));

  std::printf("Serving throughput: TENET end-to-end, by worker threads\n");
  PrintRule();
  std::printf("%-10s %8s %12s %12s %10s  %s\n", "dataset", "threads",
              "total_ms", "wall_ms", "docs/s", "entity P/R/F");
  PrintRule();
  for (const datasets::Dataset& dataset : env.datasets) {
    for (int threads : {1, 2, 4, 8}) {
      eval::EvalOptions options;
      options.num_threads = threads;
      eval::SystemScores scores =
          eval::EvaluateEndToEnd(tenet, dataset, options);
      double docs_per_s = scores.wall_ms > 0.0
                              ? 1000.0 * dataset.documents.size() /
                                    scores.wall_ms
                              : 0.0;
      std::printf("%-10s %8d %12.1f %12.1f %10.1f  %s\n",
                  dataset.name.c_str(), threads, scores.total_ms,
                  scores.wall_ms, docs_per_s,
                  eval::FormatPRF(scores.entity_linking).c_str());
    }
  }
  PrintRule();
  std::printf("total_ms sums per-document latencies (comparable across "
              "thread counts);\nwall_ms is the end-to-end clock.\n");
}

}  // namespace
}  // namespace bench
}  // namespace tenet

int main() {
  tenet::bench::Run();
  return 0;
}
