// Regenerates Figure 6(d): parameter sensitivity of TENET — entity linking
// quality on News as a function of the number of candidate concepts per
// mention (k = 1..6).
#include <cstdio>

#include "baselines/tenet_linker.h"
#include "bench_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();
  const datasets::Dataset& news = env.dataset("News");

  std::printf("Figure 6(d): TENET on News vs candidates-per-mention k\n");
  bench::PrintRule(48);
  std::printf("%4s %10s %10s %10s\n", "k", "Precision", "Recall", "F1");
  bench::PrintRule(48);
  for (int k = 1; k <= 6; ++k) {
    baselines::BaselineSubstrate substrate = bench::MakeSubstrate(env);
    substrate.graph_options.max_candidates_per_mention = k;
    baselines::TenetLinker tenet(substrate);
    eval::SystemScores scores = eval::EvaluateEndToEnd(tenet, news);
    std::printf("%4d %10.3f %10.3f %10.3f\n", k,
                scores.entity_linking.Precision(),
                scores.entity_linking.Recall(), scores.entity_linking.F1());
  }
  bench::PrintRule(48);
  std::printf(
      "Paper shape (Fig. 6d): best around k = 3-4 — fewer candidates starve "
      "coherence\nlearning, more admit noise.\n");
  return 0;
}
