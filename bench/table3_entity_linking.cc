// Regenerates Table 3: performance of end-to-end entity linking — six
// systems x four datasets, precision / recall / F1.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();
  auto linkers = bench::MakeAllLinkers(env);

  std::printf("Table 3: performance of end-to-end entity linking\n");
  bench::PrintRule(100);
  std::printf("%-9s", "System");
  for (const datasets::Dataset& dataset : env.datasets) {
    std::printf(" | %-9s P     R     F", dataset.name.c_str());
  }
  std::printf("\n");
  bench::PrintRule(100);
  for (const auto& linker : linkers) {
    std::printf("%-9s", std::string(linker->name()).c_str());
    for (const datasets::Dataset& dataset : env.datasets) {
      eval::SystemScores scores = eval::EvaluateEndToEnd(*linker, dataset);
      std::printf(" |      %.3f %.3f %.3f",
                  scores.entity_linking.Precision(),
                  scores.entity_linking.Recall(),
                  scores.entity_linking.F1());
    }
    std::printf("\n");
  }
  bench::PrintRule(100);
  std::printf(
      "Paper shape (Table 3): TENET best F on every dataset; KBPearl second "
      "on long text;\nQKBfly precision-heavy / recall-light; Falcon and "
      "EARL weakest.\n");
  return 0;
}
