// Ablation supporting the paper's critique of KBPearl: "choosing the
// number of attention mentions is not easy in practice" (Sec. 7).  Sweeps
// the near-neighbour window w and shows that no single w is best across
// datasets — the weakness TENET's adaptive tree cover removes.
#include <cstdio>

#include "baselines/kbpearl_like.h"
#include "bench_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();

  std::printf("Ablation: KBPearl near-neighbour window w (entity F1)\n");
  bench::PrintRule(66);
  std::printf("%6s %9s %9s %9s %9s\n", "w", "News", "T-REx42", "KORE50",
              "MSNBC19");
  bench::PrintRule(66);
  double best[4] = {0, 0, 0, 0};
  int best_w[4] = {0, 0, 0, 0};
  for (int w : {1, 2, 3, 5, 8, 12}) {
    baselines::KbPearlOptions options;
    options.window = w;
    baselines::KbPearlLike kbpearl(bench::MakeSubstrate(env), options);
    std::printf("%6d", w);
    for (size_t i = 0; i < env.datasets.size(); ++i) {
      double f1 = eval::EvaluateEndToEnd(kbpearl, env.datasets[i])
                      .entity_linking.F1();
      if (f1 > best[i]) {
        best[i] = f1;
        best_w[i] = w;
      }
      std::printf(" %9.3f", f1);
    }
    std::printf("\n");
  }
  bench::PrintRule(66);
  std::printf("Best w per dataset:");
  for (size_t i = 0; i < env.datasets.size(); ++i) {
    std::printf("  %s=%d", env.datasets[i].name.c_str(), best_w[i]);
  }
  std::printf(
      "\nExpected: the optimal window differs across datasets — a fixed "
      "attention count\ncannot fit every document (the paper's argument for "
      "coherence relaxation).\n");
  return 0;
}
