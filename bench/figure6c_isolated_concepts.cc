// Regenerates Figure 6(c): precision of isolated-concept detection on the
// 6 advertisement articles of the News dataset (extra fresh phrases),
// for QKBfly, KBPearl and TENET.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();
  auto linkers = bench::MakeAllLinkers(env);

  // The 6 advertisement documents of News (Sec. 6.2).
  datasets::Dataset ads;
  ads.name = "News-ads";
  ads.has_relation_gold = true;
  for (const datasets::Document& d : env.dataset("News").documents) {
    if (d.advertisement) ads.documents.push_back(d);
  }

  std::printf("Figure 6(c): isolated concept detection on %zu advertisement "
              "News articles\n",
              ads.documents.size());
  bench::PrintRule(48);
  std::printf("%-9s %10s %10s %10s\n", "System", "Precision", "Recall",
              "F1");
  bench::PrintRule(48);
  for (const auto& linker : linkers) {
    std::string_view name = linker->name();
    if (name != "QKBfly" && name != "KBPearl" && name != "TENET") continue;
    eval::SystemScores scores = eval::EvaluateEndToEnd(*linker, ads);
    std::printf("%-9s %10.3f %10.3f %10.3f\n", std::string(name).c_str(),
                scores.isolated_detection.Precision(),
                scores.isolated_detection.Recall(),
                scores.isolated_detection.F1());
  }
  bench::PrintRule(48);
  std::printf(
      "Paper shape (Fig. 6c): TENET > KBPearl > QKBfly in precision — "
      "coarse Open-IE\nphrases and global coherence both hurt around "
      "isolated concepts.\n");
  return 0;
}
