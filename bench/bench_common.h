// Shared fixture of the experiment harness binaries (bench/): the synthetic
// world, the four datasets, and the six linking systems, built once per
// process with fixed seeds so every table/figure is reproducible.
#ifndef TENET_BENCH_BENCH_COMMON_H_
#define TENET_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/earl_like.h"
#include "baselines/falcon_like.h"
#include "baselines/kbpearl_like.h"
#include "baselines/linker.h"
#include "baselines/mintree_like.h"
#include "baselines/qkbfly_like.h"
#include "baselines/tenet_linker.h"
#include "datasets/corpus_generator.h"
#include "datasets/spec.h"
#include "datasets/world.h"
#include "eval/harness.h"

namespace tenet {
namespace bench {

inline constexpr uint64_t kCorpusSeed = 77;

// Lazily built, process-wide experiment environment.
struct Environment {
  datasets::SyntheticWorld world;
  std::vector<datasets::Dataset> datasets;  // News, T-REx42, KORE50, MSNBC19

  const datasets::Dataset& dataset(const std::string& name) const {
    for (const datasets::Dataset& d : datasets) {
      if (d.name == name) return d;
    }
    TENET_CHECK(false) << "unknown dataset " << name;
    __builtin_unreachable();
  }
};

inline const Environment& GetEnvironment() {
  static const Environment* env = [] {
    auto* e = new Environment{datasets::BuildWorld(), {}};
    datasets::CorpusGenerator generator(&e->world.kb_world);
    Rng rng(kCorpusSeed);
    e->datasets.push_back(generator.Generate(datasets::NewsSpec(), rng));
    e->datasets.push_back(generator.Generate(datasets::TRex42Spec(), rng));
    e->datasets.push_back(generator.Generate(datasets::Kore50Spec(), rng));
    e->datasets.push_back(generator.Generate(datasets::Msnbc19Spec(), rng));
    return e;
  }();
  return *env;
}

inline baselines::BaselineSubstrate MakeSubstrate(const Environment& env) {
  return baselines::BaselineSubstrate{&env.world.kb(), &env.world.embeddings,
                                      &env.world.gazetteer(), {}, {}};
}

/// The six systems in the paper's Table 3 row order.
inline std::vector<std::unique_ptr<baselines::Linker>> MakeAllLinkers(
    const Environment& env) {
  baselines::BaselineSubstrate substrate = MakeSubstrate(env);
  std::vector<std::unique_ptr<baselines::Linker>> linkers;
  linkers.push_back(std::make_unique<baselines::FalconLike>(substrate));
  linkers.push_back(std::make_unique<baselines::QkbflyLike>(substrate));
  linkers.push_back(std::make_unique<baselines::KbPearlLike>(substrate));
  linkers.push_back(std::make_unique<baselines::EarlLike>(substrate));
  linkers.push_back(std::make_unique<baselines::MintreeLike>(substrate));
  linkers.push_back(std::make_unique<baselines::TenetLinker>(substrate));
  return linkers;
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bench
}  // namespace tenet

#endif  // TENET_BENCH_BENCH_COMMON_H_
