// Regenerates Table 2: statistical analysis of the non-linkable noun
// phrases (n.) and relational phrases (re.) in all the datasets.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();

  std::printf("Table 2: non-linkable noun phrases (n.) and relational "
              "phrases (re.)\n");
  bench::PrintRule(96);
  std::printf("%-9s %12s %7s %9s %9s %13s %7s %10s %10s\n", "Dataset",
              "n./doc", "# n.", "# n-l n.", "%% n-l n.", "re./doc", "# re.",
              "# n-l re.", "%% n-l re.");
  bench::PrintRule(96);
  for (const datasets::Dataset& dataset : env.datasets) {
    int nouns = 0;
    int nonlinkable_nouns = 0;
    int rels = 0;
    int nonlinkable_rels = 0;
    for (const datasets::Document& d : dataset.documents) {
      nouns += static_cast<int>(d.gold_entities.size());
      nonlinkable_nouns += d.NumNonLinkableEntities();
      rels += static_cast<int>(d.gold_predicates.size());
      nonlinkable_rels += d.NumNonLinkablePredicates();
    }
    const int docs = static_cast<int>(dataset.documents.size());
    std::printf("%-9s %12.2f %7d %9d %8.2f%%", dataset.name.c_str(),
                static_cast<double>(nouns) / docs, nouns, nonlinkable_nouns,
                100.0 * nonlinkable_nouns / nouns);
    if (dataset.has_relation_gold) {
      std::printf(" %13.2f %7d %10d %9.2f%%\n",
                  static_cast<double>(rels) / docs, rels, nonlinkable_rels,
                  rels > 0 ? 100.0 * nonlinkable_rels / rels : 0.0);
    } else {
      std::printf(" %13s %7s %10s %10s\n", "N.A.", "N.A.", "N.A.", "N.A.");
    }
  }
  bench::PrintRule(96);
  std::printf(
      "Paper reference (Table 2): News 7.69 n./doc 21.01%% n-l, 4.75 re./doc "
      "63.16%% n-l;\n  KORE50 2.96 / 0.68%%; MSNBC19 22.32 / 15.09%%; "
      "T-REx42 7.79 / 7.34%%, 5.17 re./doc 45.16%% n-l.\n");
  return 0;
}
