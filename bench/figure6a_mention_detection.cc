// Regenerates Figure 6(a): mention detection F1 per system per dataset.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace tenet;
  const bench::Environment& env = bench::GetEnvironment();
  auto linkers = bench::MakeAllLinkers(env);

  std::printf("Figure 6(a): mention detection (F1)\n");
  bench::PrintRule(64);
  std::printf("%-9s", "System");
  for (const datasets::Dataset& dataset : env.datasets) {
    std::printf(" %9s", dataset.name.c_str());
  }
  std::printf("\n");
  bench::PrintRule(64);
  for (const auto& linker : linkers) {
    std::printf("%-9s", std::string(linker->name()).c_str());
    for (const datasets::Dataset& dataset : env.datasets) {
      eval::SystemScores scores = eval::EvaluateEndToEnd(*linker, dataset);
      std::printf(" %9.3f", scores.mention_detection.F1());
    }
    std::printf("\n");
  }
  bench::PrintRule(64);
  std::printf(
      "Paper shape (Fig. 6a): all systems good on short text (KORE50); on "
      "long text TENET\nleads because canopy selection resolves overlapped "
      "mentions that coarse Open-IE\nchunking (QKBfly/KBPearl) over-merges "
      "and short-only spotting (Falcon/EARL/MINTREE)\nunder-merges.\n");
  return 0;
}
