#ifndef TENET_DATASETS_CORPUS_GENERATOR_H_
#define TENET_DATASETS_CORPUS_GENERATOR_H_

#include <string>

#include "common/rng.h"
#include "datasets/document.h"
#include "datasets/spec.h"
#include "kb/synthetic_kb.h"

namespace tenet {
namespace datasets {

// Renders annotated synthetic documents over a synthetic KB, reproducing
// the statistical profile of a DatasetSpec: mentions per document,
// non-linkable fractions (Table 2), ambiguity level, document length, and
// the sparse-coherence structure (a coherent core domain plus isolated
// entities from foreign domains).
//
// The generator and the extraction pipeline share the wordlists grammar the
// way the paper's corpora and NLP tools share English: documents are plain
// text; nothing about the gold segmentation is leaked to the extractor.
class CorpusGenerator {
 public:
  /// `world` must be finalized and outlive the generator.
  explicit CorpusGenerator(const kb::SyntheticKb* world);

  /// Generates a full dataset according to `spec`.
  Dataset Generate(const DatasetSpec& spec, Rng& rng) const;

  /// Generates a single document; exposed for the scaling experiments
  /// (Figure 7) which sweep per-document parameters directly.
  Document GenerateDocument(const DatasetSpec& spec, std::string doc_id,
                            bool advertisement, Rng& rng) const;

 private:
  const kb::SyntheticKb* world_;
};

}  // namespace datasets
}  // namespace tenet

#endif  // TENET_DATASETS_CORPUS_GENERATOR_H_
