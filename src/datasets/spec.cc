#include "datasets/spec.h"

namespace tenet {
namespace datasets {

DatasetSpec NewsSpec() {
  DatasetSpec spec;
  spec.name = "News";
  spec.num_docs = 16;
  spec.mentions_per_doc = 7.69;
  spec.relations_per_doc = 4.75;
  spec.nonlinkable_noun_rate = 0.2101;
  spec.nonlinkable_rel_rate = 0.6316;
  spec.ambiguous_surface_rate = 0.45;
  spec.words_per_doc = 171;
  spec.composites_per_doc = 0.8;
  spec.conjunction_pairs_per_doc = 1.0;
  spec.advertisement_fraction = 6.0 / 16.0;
  spec.isolated_entities_per_doc = 1.3;
  return spec;
}

DatasetSpec TRex42Spec() {
  DatasetSpec spec;
  spec.name = "T-REx42";
  spec.num_docs = 42;
  spec.mentions_per_doc = 7.79;
  spec.relations_per_doc = 5.17;
  spec.nonlinkable_noun_rate = 0.0734;
  spec.nonlinkable_rel_rate = 0.4516;
  spec.ambiguous_surface_rate = 0.40;
  spec.words_per_doc = 179;
  spec.composites_per_doc = 0.7;
  spec.conjunction_pairs_per_doc = 0.9;
  spec.isolated_entities_per_doc = 1.0;
  return spec;
}

DatasetSpec Kore50Spec() {
  DatasetSpec spec;
  spec.name = "KORE50";
  spec.num_docs = 50;
  spec.mentions_per_doc = 2.96;
  spec.relations_per_doc = 0.0;
  spec.nonlinkable_noun_rate = 0.0068;
  spec.nonlinkable_rel_rate = 0.0;
  // Hand-crafted, highly ambiguous mentions: most occurrences use a shared
  // surface whose correct sense must be inferred from context.
  spec.ambiguous_surface_rate = 0.75;
  spec.words_per_doc = 13;
  spec.composites_per_doc = 0.5;
  spec.conjunction_pairs_per_doc = 0.4;
  spec.isolated_entities_per_doc = 0.2;
  return spec;
}

DatasetSpec Msnbc19Spec() {
  DatasetSpec spec;
  spec.name = "MSNBC19";
  spec.num_docs = 19;
  spec.mentions_per_doc = 22.32;
  spec.relations_per_doc = 0.0;
  spec.nonlinkable_noun_rate = 0.1509;
  spec.nonlinkable_rel_rate = 0.0;
  spec.ambiguous_surface_rate = 0.40;
  spec.words_per_doc = 562;
  spec.composites_per_doc = 1.5;
  spec.conjunction_pairs_per_doc = 2.2;
  spec.isolated_entities_per_doc = 2.5;
  return spec;
}

}  // namespace datasets
}  // namespace tenet
