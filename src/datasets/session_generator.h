#ifndef TENET_DATASETS_SESSION_GENERATOR_H_
#define TENET_DATASETS_SESSION_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/document.h"
#include "kb/synthetic_kb.h"

namespace tenet {
namespace datasets {

// The streaming/conversational workload (DESIGN.md §13): multi-turn
// sessions over the synthetic KB.  Turn 1 introduces a small cast of
// entities by their full labels; later turns refer back to cast members by
// alternate aliases (often ambiguous across the KB) and by pronoun-like
// short forms — the bare last word of the label, which for persons is
// frequently a shared bare-surname alias and for the rest may not be a KB
// alias at all.  Linking a turn in isolation is therefore systematically
// harder than linking it with the session's history in hand, which is
// exactly the gap serving::SessionContext is built to close.
struct SessionSpec {
  std::string name = "Sessions";
  int num_sessions = 16;
  int turns_per_session = 6;
  /// Cast entities introduced in turn 1.
  int cast_size = 3;
  /// Entities referenced per later turn (drawn from the cast, plus
  /// occasionally one new cast member).
  int references_per_turn = 2;
  /// Probability that a back-reference uses an alternate KB alias of the
  /// entity instead of its label.
  double alias_reference_rate = 0.45;
  /// Probability that a back-reference uses the label's short form (last
  /// word) instead of the full label.
  double short_form_reference_rate = 0.35;
  /// Probability that a later turn also introduces one new cast member by
  /// full label.
  double new_entity_turn_rate = 0.3;
  uint64_t seed = 4242;
};

struct Session {
  std::string id;
  /// One annotated document per turn, in conversation order.
  std::vector<Document> turns;
};

struct SessionDataset {
  std::string name;
  std::vector<Session> sessions;

  int TotalTurns() const {
    int n = 0;
    for (const Session& s : sessions) n += static_cast<int>(s.turns.size());
    return n;
  }

  /// Flattens the turns (in session order) into a plain Dataset, for
  /// evaluating the no-session-state baseline on identical text.
  Dataset Flatten() const;
};

class SessionGenerator {
 public:
  /// `world` must be finalized and outlive the generator.
  explicit SessionGenerator(const kb::SyntheticKb* world);

  SessionDataset Generate(const SessionSpec& spec, Rng& rng) const;

 private:
  const kb::SyntheticKb* world_;
};

}  // namespace datasets
}  // namespace tenet

#endif  // TENET_DATASETS_SESSION_GENERATOR_H_
