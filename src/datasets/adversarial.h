#ifndef TENET_DATASETS_ADVERSARIAL_H_
#define TENET_DATASETS_ADVERSARIAL_H_

#include <cstdint>
#include <string>

#include "datasets/document.h"

namespace tenet {
namespace datasets {

// The adversarial corpus tier (DESIGN.md §13): a deterministic mutator
// layered over the clean corpus generators that turns well-behaved
// synthetic documents into the open-web mess the paper's setting implies —
// typo/keyboard and OCR noise, homoglyph and near-duplicate aliases,
// pathological ambiguity storms, degenerate punctuation/whitespace runs,
// oversized tokens/documents, and invalid/overlong UTF-8.
//
// Every mutation class is individually toggleable and the whole tier is
// reproducible from `seed` alone: each document's mutation stream is
// derived from (seed, document index), so mutating a subset or mutating in
// a different order yields byte-identical documents.
//
// Gold annotations are deliberately left untouched: a typo'd occurrence of
// a gold surface is *supposed* to cost recall, and injected noise phrases
// are *supposed* to cost precision.  The adversarial tier measures how
// gracefully accuracy and latency degrade, while the guardrails keep the
// pipeline alive; it never redefines the truth.
struct AdversarialSpec {
  uint64_t seed = 1337;

  /// Keyboard typos: one of {adjacent-key substitution, transposition,
  /// deletion, duplication} applied per word at this rate.
  bool typo_noise = true;
  double typo_word_rate = 0.08;

  /// OCR confusions (l<->1, O<->0, rn->m, cl->d, S->5, ...).
  bool ocr_noise = true;
  double ocr_word_rate = 0.05;

  /// Homoglyph aliases: one ASCII letter per hit word replaced by its
  /// Cyrillic lookalike (valid multi-byte UTF-8 — exercises the
  /// tokenizer's sequence handling, not the sanitizer).
  bool homoglyphs = true;
  double homoglyph_word_rate = 0.04;

  /// Near-duplicate aliases: appends a sentence mentioning a typo'd copy
  /// of one of the document's gold surfaces (unannotated, precision
  /// noise).
  bool near_duplicates = true;
  double near_duplicate_doc_rate = 0.5;

  /// Pathological ambiguity: appends feature-linked chains of the
  /// document's gold surfaces ("A of B. B of C of A.") until roughly
  /// `ambiguity_storm_mentions` extra mention occurrences exist — blows up
  /// canopy sizes and candidate counts, exercising the group-size cap and
  /// the degradation ladder.
  bool ambiguity_storm = true;
  double ambiguity_storm_doc_rate = 0.35;
  int ambiguity_storm_mentions = 48;

  /// Degenerate punctuation / whitespace runs spliced between sentences.
  bool degenerate_punctuation = true;
  double punctuation_doc_rate = 0.5;
  int punctuation_runs = 4;

  /// One capitalized token of `oversized_token_bytes` bytes appended as
  /// its own sentence (trips TextLimits::max_token_bytes).
  bool oversized_tokens = true;
  double oversized_token_doc_rate = 0.3;
  int oversized_token_bytes = 2048;

  /// Invalid / overlong UTF-8: splices raw byte sequences (stray
  /// continuation, overlong NUL, surrogate half, > U+10FFFF, truncated
  /// sequence, 0xFF) at random byte offsets.
  bool invalid_utf8 = true;
  double invalid_utf8_doc_rate = 0.4;
  int invalid_utf8_splices = 6;

  /// Oversized-document drill: pads hit documents with filler sentences
  /// past this many bytes so the front door's reject path fires.  0
  /// disables the class entirely.
  size_t oversized_document_bytes = 0;
  double oversized_document_doc_rate = 0.1;
};

/// How often each mutation class actually fired over a dataset (for bench
/// and CLI reporting; deterministic given the spec and input).
struct MutationStats {
  int typo_words = 0;
  int ocr_words = 0;
  int homoglyph_words = 0;
  int near_duplicate_docs = 0;
  int ambiguity_storm_docs = 0;
  int punctuation_docs = 0;
  int oversized_token_docs = 0;
  int invalid_utf8_docs = 0;
  int oversized_docs = 0;
};

class AdversarialMutator {
 public:
  explicit AdversarialMutator(AdversarialSpec spec) : spec_(spec) {}

  /// Mutates one document.  `salt` (typically the document's index) and
  /// the spec seed fully determine the mutation stream.
  Document Mutate(const Document& doc, uint64_t salt,
                  MutationStats* stats = nullptr) const;

  /// Mutates every document of `dataset` (salt = document index).
  Dataset Mutate(const Dataset& dataset, MutationStats* stats = nullptr) const;

  const AdversarialSpec& spec() const { return spec_; }

 private:
  AdversarialSpec spec_;
};

}  // namespace datasets
}  // namespace tenet

#endif  // TENET_DATASETS_ADVERSARIAL_H_
