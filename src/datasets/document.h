#ifndef TENET_DATASETS_DOCUMENT_H_
#define TENET_DATASETS_DOCUMENT_H_

#include <string>
#include <vector>

#include "kb/types.h"

namespace tenet {
namespace datasets {

// Ground-truth annotation of one noun phrase occurrence.  `entity` is
// kInvalidEntity for non-linkable (emerging / out-of-KB) phrases, which the
// datasets of Table 2 contain in quantity.
struct GoldEntityLink {
  std::string surface;
  int sentence = 0;
  kb::EntityId entity = kb::kInvalidEntity;

  bool linkable() const { return entity != kb::kInvalidEntity; }
};

// Ground-truth annotation of one relational phrase (already lemmatized).
struct GoldPredicateLink {
  std::string lemma;
  int sentence = 0;
  kb::PredicateId predicate = kb::kInvalidPredicate;

  bool linkable() const { return predicate != kb::kInvalidPredicate; }
};

// One annotated document.
struct Document {
  std::string id;
  std::string text;
  int num_words = 0;
  /// True for the advertisement-domain News articles with extra fresh
  /// phrases (Sec. 6.2, detection of isolated concepts).
  bool advertisement = false;
  std::vector<GoldEntityLink> gold_entities;
  std::vector<GoldPredicateLink> gold_predicates;

  int NumLinkableEntities() const {
    int n = 0;
    for (const GoldEntityLink& g : gold_entities) n += g.linkable() ? 1 : 0;
    return n;
  }
  int NumNonLinkableEntities() const {
    return static_cast<int>(gold_entities.size()) - NumLinkableEntities();
  }
  int NumLinkablePredicates() const {
    int n = 0;
    for (const GoldPredicateLink& g : gold_predicates) {
      n += g.linkable() ? 1 : 0;
    }
    return n;
  }
  int NumNonLinkablePredicates() const {
    return static_cast<int>(gold_predicates.size()) -
           NumLinkablePredicates();
  }
};

// A full annotated corpus.
struct Dataset {
  std::string name;
  /// True when relational phrases are annotated (News, T-REx42).
  bool has_relation_gold = false;
  std::vector<Document> documents;
};

}  // namespace datasets
}  // namespace tenet

#endif  // TENET_DATASETS_DOCUMENT_H_
