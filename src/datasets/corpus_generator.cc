#include "datasets/corpus_generator.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/wordlists.h"

namespace tenet {
namespace datasets {
namespace {

// Invented name fragments for non-linkable fresh phrases; disjoint from
// every wordlists pool so they never collide with KB surfaces.
constexpr std::string_view kFreshHeads[] = {
    "Zorvex",  "Quellin", "Marwick", "Tyberon", "Velgra",  "Ostrand",
    "Drelvik", "Yalmora", "Kresno",  "Bruntal", "Fexley",  "Glimmour",
};
constexpr std::string_view kFreshTails[] = {
    "Collective", "Syndicate", "Holdings", "Atelier", "Works",
    "Trust",      "Exchange",  "Depot",    "Forge",   "Guild",
};

// Lowercase filler clauses appended to pad documents toward the word
// target.  None of these words is a table verb, a connector that could
// bridge two mentions, or a topic-gazetteer word.
constexpr std::string_view kFillers[] = {
    "despite earlier doubts",
    "to widespread surprise",
    "after months of quiet preparation",
    "without much public notice",
    "amid growing enthusiasm",
    "following a long pause",
    "against all expectations",
    "as the season drew to a close",
    "while crowds gathered outside",
    "though few details emerged",
    "shortly before the deadline",
    "in a move long anticipated",
};

std::string_view PickView(std::span<const std::string_view> pool, Rng& rng) {
  return pool[rng.NextUint64(pool.size())];
}

// Inflects the first word of a lemma phrase; particles stay verbatim.
std::string InflectRelationalPhrase(const std::string& lemma_phrase,
                                    Rng& rng) {
  std::vector<std::string> words = SplitString(lemma_phrase, ' ');
  TENET_CHECK(!words.empty());
  const text::VerbForms* forms = text::FindVerbByLemma(words[0]);
  TENET_CHECK(forms != nullptr) << "unknown verb lemma " << words[0];
  words[0] = std::string(rng.NextBool(0.75) ? forms->past : forms->third);
  return JoinStrings(words, " ");
}

int CountWords(const std::string& sentence) {
  int words = 0;
  bool in_word = false;
  for (char c : sentence) {
    bool is_word = IsAsciiAlnumChar(c);
    if (is_word && !in_word) ++words;
    in_word = is_word;
  }
  return words;
}

int JitteredCount(double mean, double rel_jitter, Rng& rng) {
  double v = mean * (1.0 + rng.NextDouble(-rel_jitter, rel_jitter));
  return std::max(0, static_cast<int>(std::lround(v)));
}

}  // namespace

CorpusGenerator::CorpusGenerator(const kb::SyntheticKb* world)
    : world_(world) {
  TENET_CHECK(world != nullptr);
  TENET_CHECK(world->kb.finalized());
}

Dataset CorpusGenerator::Generate(const DatasetSpec& spec, Rng& rng) const {
  Dataset dataset;
  dataset.name = spec.name;
  dataset.has_relation_gold = spec.relations_per_doc > 0.0;
  int num_ads =
      static_cast<int>(std::lround(spec.advertisement_fraction *
                                   spec.num_docs));
  for (int i = 0; i < spec.num_docs; ++i) {
    bool advertisement = i < num_ads;
    dataset.documents.push_back(GenerateDocument(
        spec, spec.name + "-" + std::to_string(i), advertisement, rng));
  }
  return dataset;
}

Document CorpusGenerator::GenerateDocument(const DatasetSpec& spec,
                                           std::string doc_id,
                                           bool advertisement,
                                           Rng& rng) const {
  const kb::KnowledgeBase& kb = world_->kb;
  Document doc;
  doc.id = std::move(doc_id);
  doc.advertisement = advertisement;

  // ---- Plan the mention inventory ----------------------------------------
  const int n_nouns = std::max(2, JitteredCount(spec.mentions_per_doc,
                                                0.2, rng));
  double nonlink_rate = spec.nonlinkable_noun_rate;
  if (advertisement) nonlink_rate = std::min(0.65, nonlink_rate * 1.9);
  int n_fresh = 0;
  for (int i = 0; i < n_nouns; ++i) {
    if (rng.NextBool(nonlink_rate)) ++n_fresh;
  }
  int n_link = std::max(1, n_nouns - n_fresh);

  const int num_domains =
      static_cast<int>(world_->entities_by_domain.size());
  const int32_t primary = static_cast<int32_t>(rng.NextUint64(num_domains));

  int n_isolated =
      std::min(n_link / 2, JitteredCount(spec.isolated_entities_per_doc,
                                         0.5, rng));
  int n_composites = std::min(
      n_link, JitteredCount(spec.composites_per_doc, 0.6, rng));
  if (world_->composites_by_domain[primary].empty()) n_composites = 0;

  std::unordered_set<kb::EntityId> chosen_set;
  std::vector<kb::EntityId> chosen;
  auto choose_from = [&](const std::vector<kb::EntityId>& pool) -> bool {
    for (int attempt = 0; attempt < 32; ++attempt) {
      kb::EntityId id = rng.Pick(pool);
      if (chosen_set.insert(id).second) {
        chosen.push_back(id);
        return true;
      }
    }
    return false;
  };
  // Conjunction pairs: two independent entities rendered "A and B" (gold:
  // separate mentions).  Members come from the plain entities of the
  // primary domain with capitalized, connector-free labels.
  std::vector<std::pair<kb::EntityId, kb::EntityId>> conjunction_pairs;
  {
    std::unordered_set<kb::EntityId> composite_set(
        world_->composites_by_domain[primary].begin(),
        world_->composites_by_domain[primary].end());
    auto pairable = [&](kb::EntityId id) {
      if (composite_set.count(id) > 0) return false;
      const std::string& label = kb.entity(id).label;
      return IsCapitalized(label) &&
             label.find(" and ") == std::string::npos;
    };
    int n_pairs = JitteredCount(spec.conjunction_pairs_per_doc, 0.6, rng);
    for (int i = 0; i < n_pairs; ++i) {
      kb::EntityId a = kb::kInvalidEntity;
      kb::EntityId b = kb::kInvalidEntity;
      for (int attempt = 0; attempt < 32; ++attempt) {
        kb::EntityId pick = rng.Pick(world_->entities_by_domain[primary]);
        if (!pairable(pick)) continue;
        if (a == kb::kInvalidEntity) {
          a = pick;
        } else if (pick != a) {
          b = pick;
          break;
        }
      }
      if (a != kb::kInvalidEntity && b != kb::kInvalidEntity) {
        conjunction_pairs.emplace_back(a, b);
        chosen_set.insert(a);
        chosen_set.insert(b);
      }
    }
  }

  for (int i = 0; i < n_composites; ++i) {
    choose_from(world_->composites_by_domain[primary]);
  }
  // The coherent core is a fact-connected cluster: grow it by walking the
  // KB fact graph from a random seed (documents discuss related entities,
  // not arbitrary same-domain ones).
  {
    // Pair members already count toward the mention budget.
    const int walk_target = std::max(
        1, n_link - n_isolated -
               2 * static_cast<int>(conjunction_pairs.size()));
    kb::EntityId seed = rng.Pick(world_->entities_by_domain[primary]);
    chosen_set.insert(seed);
    chosen.push_back(seed);
    std::vector<kb::EntityId> frontier{seed};
    int guard = 0;
    while (static_cast<int>(chosen.size()) < walk_target &&
           !frontier.empty() && ++guard < 256) {
      kb::EntityId at = frontier[rng.NextUint64(frontier.size())];
      std::vector<kb::EntityId> neighbors = kb.NeighborEntities(at);
      bool grew = false;
      for (int attempt = 0;
           attempt < 8 && !neighbors.empty() && !grew; ++attempt) {
        kb::EntityId next = rng.Pick(neighbors);
        if (chosen_set.insert(next).second) {
          chosen.push_back(next);
          frontier.push_back(next);
          grew = true;
        }
      }
      if (!grew && frontier.size() > 1) {
        frontier.erase(frontier.begin() +
                       static_cast<long>(rng.NextUint64(frontier.size())));
      } else if (!grew) {
        break;
      }
    }
  }
  {
    const int walk_target = std::max(
        1, n_link - n_isolated -
               2 * static_cast<int>(conjunction_pairs.size()));
    while (static_cast<int>(chosen.size()) < walk_target) {
      if (!choose_from(world_->entities_by_domain[primary])) break;
    }
  }
  for (int i = 0; i < n_isolated && num_domains > 1; ++i) {
    int32_t other = primary;
    while (other == primary) {
      other = static_cast<int32_t>(rng.NextUint64(num_domains));
    }
    choose_from(world_->entities_by_domain[other]);
  }

  // Fresh (non-linkable) names.
  std::vector<std::string> fresh_names;
  std::unordered_set<std::string> used_fresh;
  for (int i = 0; i < n_fresh; ++i) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      std::string name = std::string(PickView(kFreshHeads, rng)) + " " +
                         std::string(PickView(kFreshTails, rng));
      if (world_->gazetteer.Contains(name)) continue;
      if (!used_fresh.insert(name).second) continue;
      fresh_names.push_back(std::move(name));
      break;
    }
  }

  // ---- Per-document consistency maps --------------------------------------
  std::unordered_map<std::string, kb::EntityId> surface_to_entity;
  std::unordered_map<std::string, kb::PredicateId> lemma_to_predicate;
  std::unordered_set<std::string> gold_recorded_surfaces;
  std::unordered_set<std::string> gold_recorded_lemmas;

  // Renders `id` as a document surface, honoring the ambiguity rate and
  // per-document surface consistency.  Returns empty when impossible.
  auto render_entity = [&](kb::EntityId id) -> std::string {
    const std::vector<std::string>& surfaces = world_->entity_surfaces[id];
    std::string surface;
    if (rng.NextBool(spec.ambiguous_surface_rate)) {
      // Prefer a surface shared by several KB entities.
      std::vector<const std::string*> ambiguous;
      for (const std::string& s : surfaces) {
        if (kb.CandidateEntities(s, std::nullopt, 2).size() >= 2) {
          ambiguous.push_back(&s);
        }
      }
      if (!ambiguous.empty()) {
        surface = *ambiguous[rng.NextUint64(ambiguous.size())];
      }
    }
    if (surface.empty()) surface = kb.entity(id).label;
    std::string key = AsciiToLower(surface);
    auto it = surface_to_entity.find(key);
    if (it != surface_to_entity.end() && it->second != id) {
      // Conflicting sense in this document: fall back to the label.
      surface = kb.entity(id).label;
      key = AsciiToLower(surface);
      it = surface_to_entity.find(key);
      if (it != surface_to_entity.end() && it->second != id) return "";
    }
    surface_to_entity.emplace(key, id);
    return surface;
  };

  auto record_entity_gold = [&](const std::string& surface,
                                kb::EntityId entity, int sentence) {
    std::string key = AsciiToLower(surface);
    if (!gold_recorded_surfaces.insert(key).second) return;
    GoldEntityLink gold;
    gold.surface = surface;
    gold.sentence = sentence;
    gold.entity = entity;
    doc.gold_entities.push_back(std::move(gold));
  };

  const bool relations_enabled = spec.relations_per_doc > 0.0;
  const int n_rels = relations_enabled
                         ? std::max(1, JitteredCount(spec.relations_per_doc,
                                                     0.25, rng))
                         : 0;
  int rels_recorded = 0;

  auto record_predicate_gold = [&](const std::string& lemma,
                                   kb::PredicateId predicate, int sentence) {
    if (!relations_enabled) return;
    if (!gold_recorded_lemmas.insert(lemma).second) return;
    GoldPredicateLink gold;
    gold.lemma = lemma;
    gold.sentence = sentence;
    gold.predicate = predicate;
    doc.gold_predicates.push_back(std::move(gold));
    ++rels_recorded;
  };

  // Picks a verb for a sentence; returns (lemma phrase, rendered form,
  // predicate or kInvalidPredicate).
  struct VerbChoice {
    std::string lemma;
    std::string rendered;
    kb::PredicateId predicate = kb::kInvalidPredicate;
  };
  auto choose_nonkb_verb = [&]() -> VerbChoice {
    VerbChoice choice;
    for (int attempt = 0; attempt < 16; ++attempt) {
      std::string lemma = std::string(rng.Pick(text::NonKbVerbLemmas()));
      auto it = lemma_to_predicate.find(lemma);
      if (it != lemma_to_predicate.end() &&
          it->second != kb::kInvalidPredicate) {
        continue;
      }
      lemma_to_predicate[lemma] = kb::kInvalidPredicate;
      choice.lemma = lemma;
      choice.rendered = InflectRelationalPhrase(lemma, rng);
      return choice;
    }
    choice.lemma = "explore";
    choice.rendered = InflectRelationalPhrase(choice.lemma, rng);
    return choice;
  };
  auto choose_kb_verb = [&](kb::PredicateId preferred) -> VerbChoice {
    VerbChoice choice;
    for (int attempt = 0; attempt < 16; ++attempt) {
      kb::PredicateId pid = preferred;
      if (pid == kb::kInvalidPredicate || attempt > 0) {
        const std::vector<kb::PredicateId>& home =
            world_->predicates_by_domain[primary];
        pid = !home.empty() && rng.NextBool(0.7)
                  ? rng.Pick(home)
                  : static_cast<kb::PredicateId>(
                        rng.NextUint64(kb.num_predicates()));
      }
      const std::vector<std::string>& surfaces =
          world_->predicate_surfaces[pid];
      const std::string& lemma = surfaces[rng.NextUint64(surfaces.size())];
      auto it = lemma_to_predicate.find(lemma);
      if (it != lemma_to_predicate.end() && it->second != pid) continue;
      lemma_to_predicate[lemma] = pid;
      choice.lemma = lemma;
      choice.rendered = InflectRelationalPhrase(lemma, rng);
      choice.predicate = pid;
      return choice;
    }
    return choose_nonkb_verb();
  };

  // ---- Sentence loop -------------------------------------------------------
  // Every chosen entity / fresh name is introduced at least once; extra
  // sentences (re-using introduced items) pad toward the word target.
  struct Item {
    bool fresh = false;
    kb::EntityId entity = kb::kInvalidEntity;
    int fresh_index = -1;
  };
  std::deque<Item> pending;
  for (kb::EntityId id : chosen) pending.push_back(Item{false, id, -1});
  for (size_t i = 0; i < fresh_names.size(); ++i) {
    pending.push_back(Item{true, kb::kInvalidEntity, static_cast<int>(i)});
  }
  {
    std::vector<Item> shuffled(pending.begin(), pending.end());
    rng.Shuffle(shuffled);
    pending.assign(shuffled.begin(), shuffled.end());
  }

  std::vector<std::string> sentences;
  int word_count = 0;
  int sentence_index = 0;
  std::vector<kb::EntityId> introduced;
  kb::EntityId last_person_subject = kb::kInvalidEntity;
  // Hard cap against degenerate loops, scaled to the word target.
  const int max_sentences = std::max(80, spec.words_per_doc / 4);

  auto surface_is_subjectable = [](const std::string& s) {
    return !s.empty() && IsCapitalized(s);
  };

  while ((!pending.empty() || !conjunction_pairs.empty() ||
          word_count < spec.words_per_doc) &&
         sentence_index < max_sentences) {
    // -- conjunction-pair sentence: "A and B <verb> <obj>." --
    if (!conjunction_pairs.empty() && rng.NextBool(0.6)) {
      auto [a, b] = conjunction_pairs.back();
      conjunction_pairs.pop_back();
      const std::string& sa = kb.entity(a).label;
      const std::string& sb = kb.entity(b).label;
      std::string ka = AsciiToLower(sa);
      std::string kb_key = AsciiToLower(sb);
      auto ia = surface_to_entity.find(ka);
      auto ib = surface_to_entity.find(kb_key);
      if ((ia != surface_to_entity.end() && ia->second != a) ||
          (ib != surface_to_entity.end() && ib->second != b)) {
        continue;  // label already bound to a different sense: skip pair
      }
      surface_to_entity.emplace(ka, a);
      surface_to_entity.emplace(kb_key, b);

      std::string obj_surface;
      kb::EntityId obj_entity = kb::kInvalidEntity;
      bool obj_fresh = false;
      if (!pending.empty() && !pending.front().fresh) {
        obj_entity = pending.front().entity;
        pending.pop_front();
        obj_surface = render_entity(obj_entity);
        if (obj_surface.empty()) obj_surface = kb.entity(obj_entity).label;
      } else if (!introduced.empty()) {
        obj_entity = rng.Pick(introduced);
        obj_surface = kb.entity(obj_entity).label;
      } else {
        obj_surface = "Quellin Depot";
        obj_fresh = true;
      }
      VerbChoice verb = relations_enabled && rels_recorded < n_rels &&
                                !rng.NextBool(spec.nonlinkable_rel_rate)
                            ? choose_kb_verb(kb::kInvalidPredicate)
                            : choose_nonkb_verb();
      std::string sentence =
          sa + " and " + sb + " " + verb.rendered + " " + obj_surface + ".";
      word_count += CountWords(sentence);
      sentences.push_back(std::move(sentence));
      record_entity_gold(sa, a, sentence_index);
      record_entity_gold(sb, b, sentence_index);
      if (obj_fresh) {
        record_entity_gold(obj_surface, kb::kInvalidEntity, sentence_index);
      } else if (obj_entity != kb::kInvalidEntity) {
        record_entity_gold(obj_surface, obj_entity, sentence_index);
      }
      if (relations_enabled && rels_recorded < n_rels) {
        record_predicate_gold(verb.lemma, verb.predicate, sentence_index);
      }
      introduced.push_back(a);
      introduced.push_back(b);
      if (obj_entity != kb::kInvalidEntity) introduced.push_back(obj_entity);
      ++sentence_index;
      continue;
    }

    // -- choose subject --
    std::string subj_surface;
    kb::EntityId subj_entity = kb::kInvalidEntity;
    bool subj_fresh = false;
    bool subj_pronoun = false;

    if (pending.empty() && last_person_subject != kb::kInvalidEntity &&
        rng.NextBool(0.3)) {
      subj_surface = rng.NextBool(0.5) ? "He" : "She";
      subj_entity = last_person_subject;
      subj_pronoun = true;
    } else {
      // Scan pending for a subjectable item; topics and lowercase
      // composites go to object position instead.
      int found = -1;
      for (size_t i = 0; i < pending.size(); ++i) {
        const Item& item = pending[i];
        if (item.fresh) {
          found = static_cast<int>(i);
          break;
        }
        if (surface_is_subjectable(kb.entity(item.entity).label)) {
          found = static_cast<int>(i);
          break;
        }
      }
      if (found >= 0) {
        Item item = pending[found];
        pending.erase(pending.begin() + found);
        if (item.fresh) {
          subj_surface = fresh_names[item.fresh_index];
          subj_fresh = true;
        } else {
          subj_surface = render_entity(item.entity);
          subj_entity = item.entity;
          if (subj_surface.empty() ||
              !surface_is_subjectable(subj_surface)) {
            // Could not render consistently; use the label directly.
            subj_surface = kb.entity(item.entity).label;
          }
        }
      } else if (!introduced.empty()) {
        // Padding sentence over an already-introduced entity.
        subj_entity = rng.Pick(introduced);
        if (!surface_is_subjectable(kb.entity(subj_entity).label)) {
          subj_entity = kb::kInvalidEntity;
        }
        if (subj_entity != kb::kInvalidEntity) {
          subj_surface = kb.entity(subj_entity).label;
        }
      }
      if (subj_surface.empty() || !surface_is_subjectable(subj_surface)) {
        // No subjectable item this round: synthesize a pronoun-free filler
        // subject from an introduced person, else skip the round.
        if (last_person_subject != kb::kInvalidEntity) {
          subj_surface = kb.entity(last_person_subject).label;
          subj_entity = last_person_subject;
        } else if (!pending.empty()) {
          // Only lowercase items remain; attach one as object to a fresh
          // carrier subject.
          subj_surface = "They";
          subj_pronoun = true;
        } else {
          break;
        }
      }
    }

    // -- choose object --
    // Documents state facts: prefer a pending item that shares a KB fact
    // with the subject, so rendered co-occurrences reflect genuine KB
    // relatedness.
    std::string obj_surface;
    kb::EntityId obj_entity = kb::kInvalidEntity;
    bool obj_fresh = false;
    if (!pending.empty()) {
      size_t pick = 0;
      if (subj_entity != kb::kInvalidEntity) {
        for (size_t i = 0; i < pending.size(); ++i) {
          if (pending[i].fresh) continue;
          kb::EntityId candidate = pending[i].entity;
          bool connected = false;
          for (int32_t fact_index : kb.FactsOfEntity(subj_entity)) {
            const kb::Triple& t = kb.facts()[fact_index];
            if (t.object_is_entity &&
                ((t.subject == subj_entity &&
                  t.object_entity == candidate) ||
                 (t.subject == candidate &&
                  t.object_entity == subj_entity))) {
              connected = true;
              break;
            }
          }
          if (connected) {
            pick = i;
            break;
          }
        }
      }
      Item item = pending[pick];
      pending.erase(pending.begin() + static_cast<long>(pick));
      if (item.fresh) {
        obj_surface = fresh_names[item.fresh_index];
        obj_fresh = true;
      } else {
        obj_surface = render_entity(item.entity);
        obj_entity = item.entity;
        if (obj_surface.empty()) obj_surface = kb.entity(item.entity).label;
      }
    } else if (!introduced.empty()) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        obj_entity = rng.Pick(introduced);
        if (obj_entity != subj_entity) break;
      }
      if (obj_entity == subj_entity) obj_entity = kb::kInvalidEntity;
      if (obj_entity != kb::kInvalidEntity) {
        obj_surface = kb.entity(obj_entity).label;
      } else {
        obj_surface = "Quellin Depot";
        obj_fresh = true;
      }
    } else {
      obj_surface = "Quellin Depot";
      obj_fresh = true;
    }

    // -- choose verb --
    VerbChoice verb;
    bool want_linkable_rel =
        relations_enabled && rels_recorded < n_rels &&
        !rng.NextBool(spec.nonlinkable_rel_rate);
    if (want_linkable_rel && subj_entity != kb::kInvalidEntity &&
        obj_entity != kb::kInvalidEntity) {
      // Prefer a real KB fact between subject and object.
      kb::PredicateId preferred = kb::kInvalidPredicate;
      for (int32_t fact_index : kb.FactsOfEntity(subj_entity)) {
        const kb::Triple& t = kb.facts()[fact_index];
        if (t.object_is_entity &&
            ((t.subject == subj_entity && t.object_entity == obj_entity) ||
             (t.subject == obj_entity && t.object_entity == subj_entity))) {
          preferred = t.predicate;
          break;
        }
      }
      verb = choose_kb_verb(preferred);
    } else if (relations_enabled && rels_recorded < n_rels) {
      verb = choose_nonkb_verb();
    } else {
      verb = choose_nonkb_verb();
    }

    // -- render --
    std::string sentence = subj_surface + " " + verb.rendered + " " +
                           obj_surface;
    if (word_count + CountWords(sentence) < spec.words_per_doc &&
        rng.NextBool(0.45)) {
      sentence += " " + std::string(PickView(kFillers, rng));
    }
    sentence += ".";
    word_count += CountWords(sentence);
    sentences.push_back(std::move(sentence));

    // -- gold --
    if (!subj_pronoun) {
      if (subj_fresh) {
        record_entity_gold(subj_surface, kb::kInvalidEntity, sentence_index);
      } else if (subj_entity != kb::kInvalidEntity) {
        record_entity_gold(subj_surface, subj_entity, sentence_index);
      }
    }
    if (obj_fresh) {
      record_entity_gold(obj_surface, kb::kInvalidEntity, sentence_index);
    } else if (obj_entity != kb::kInvalidEntity) {
      record_entity_gold(obj_surface, obj_entity, sentence_index);
    }
    if (relations_enabled && rels_recorded < n_rels) {
      record_predicate_gold(verb.lemma, verb.predicate, sentence_index);
    }

    if (subj_entity != kb::kInvalidEntity && !subj_pronoun) {
      introduced.push_back(subj_entity);
      if (kb.entity(subj_entity).type == kb::EntityType::kPerson) {
        last_person_subject = subj_entity;
      }
    }
    if (obj_entity != kb::kInvalidEntity) introduced.push_back(obj_entity);
    ++sentence_index;
  }

  doc.text = JoinStrings(sentences, " ");
  doc.num_words = word_count;
  return doc;
}

}  // namespace datasets
}  // namespace tenet
