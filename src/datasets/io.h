#ifndef TENET_DATASETS_IO_H_
#define TENET_DATASETS_IO_H_

#include <string>

#include "common/result.h"
#include "datasets/document.h"

namespace tenet {
namespace datasets {

// Serialization of annotated corpora ("TENETDS v1", line-oriented text).
// Generated datasets can be exported for inspection or external
// re-annotation and reloaded bit-identically, so experiments can be
// re-run against a frozen corpus instead of a generator seed.

/// Writes `dataset` to `path`.  Document texts must not contain newlines
/// (the corpus generator never emits them).
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by SaveDataset.
Result<Dataset> LoadDataset(const std::string& path);

}  // namespace datasets
}  // namespace tenet

#endif  // TENET_DATASETS_IO_H_
