#include "datasets/session_generator.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/wordlists.h"

namespace tenet {
namespace datasets {
namespace {

// Past-tense rendering of a non-KB verb, so turn sentences read like the
// clean corpus without adding relation gold.
std::string PastVerb(Rng& rng) {
  const std::string_view lemma = rng.Pick(text::NonKbVerbLemmas());
  std::vector<std::string> words = SplitString(std::string(lemma), ' ');
  const text::VerbForms* forms = text::FindVerbByLemma(words[0]);
  TENET_CHECK(forms != nullptr) << "unknown verb lemma " << lemma;
  words[0] = std::string(forms->past);
  return JoinStrings(words, " ");
}

int CountWords(const std::string& text) {
  int words = 0;
  bool in_word = false;
  for (char c : text) {
    const bool is_word = IsAsciiAlnumChar(c);
    if (is_word && !in_word) ++words;
    in_word = is_word;
  }
  return words;
}

}  // namespace

Dataset SessionDataset::Flatten() const {
  Dataset out;
  out.name = name;
  out.has_relation_gold = false;
  for (const Session& session : sessions) {
    for (const Document& turn : session.turns) {
      out.documents.push_back(turn);
    }
  }
  return out;
}

SessionGenerator::SessionGenerator(const kb::SyntheticKb* world)
    : world_(world) {
  TENET_CHECK(world != nullptr);
}

SessionDataset SessionGenerator::Generate(const SessionSpec& spec,
                                          Rng& rng) const {
  TENET_CHECK_GT(spec.num_sessions, 0);
  TENET_CHECK_GT(spec.turns_per_session, 0);
  SessionDataset out;
  out.name = spec.name;

  const int num_domains =
      static_cast<int>(world_->entities_by_domain.size());
  TENET_CHECK_GT(num_domains, 0);

  for (int s = 0; s < spec.num_sessions; ++s) {
    // Deterministic per-session stream: sessions are independent of each
    // other's consumption of the caller's rng.
    Rng session_rng(spec.seed ^ ((static_cast<uint64_t>(s) + 1) *
                                 0x9E3779B97F4A7C15ULL) ^
                    rng.NextUint64());
    Session session;
    session.id = spec.name + "-" + std::to_string(s);

    // The cast lives in one domain (coherent conversation); composite
    // entities are excluded — their feature-bearing labels exercise the
    // canopy machinery, not session coreference.
    const int domain =
        static_cast<int>(session_rng.NextUint64(num_domains));
    std::unordered_set<kb::EntityId> composite(
        world_->composites_by_domain[domain].begin(),
        world_->composites_by_domain[domain].end());
    std::vector<kb::EntityId> pool;
    for (kb::EntityId id : world_->entities_by_domain[domain]) {
      if (composite.count(id) == 0) pool.push_back(id);
    }
    TENET_CHECK(!pool.empty());
    session_rng.Shuffle(pool);

    std::vector<kb::EntityId> cast;
    size_t next_pool = 0;
    auto add_cast_member = [&]() -> bool {
      if (next_pool >= pool.size()) return false;
      cast.push_back(pool[next_pool++]);
      return true;
    };
    for (int c = 0; c < spec.cast_size; ++c) add_cast_member();

    // Renders a back-reference to `id`: the label, an alternate alias, or
    // the pronoun-like short form (label's last word), per the spec rates.
    auto render_reference = [&](kb::EntityId id, Rng& turn_rng) {
      const std::vector<std::string>& surfaces = world_->entity_surfaces[id];
      TENET_CHECK(!surfaces.empty());
      const std::string& label = surfaces[0];
      if (surfaces.size() > 1 &&
          turn_rng.NextBool(spec.alias_reference_rate)) {
        return surfaces[1 + turn_rng.NextUint64(surfaces.size() - 1)];
      }
      if (turn_rng.NextBool(spec.short_form_reference_rate)) {
        std::vector<std::string> words = SplitString(label, ' ');
        if (words.size() > 1) return words.back();
      }
      return label;
    };

    for (int t = 0; t < spec.turns_per_session; ++t) {
      Document turn;
      turn.id = session.id + "/turn-" + std::to_string(t);

      // (surface -> entity) for this turn; a surface that would gold-map
      // to two different entities in one turn is skipped (per-surface gold
      // must stay unambiguous for the scorer).
      std::unordered_map<std::string, kb::EntityId> gold_by_surface;
      int sentence_index = 0;
      std::vector<std::string> subjects;  // surfaces of this sentence pair

      auto mention = [&](kb::EntityId id, const std::string& surface) {
        std::string key = AsciiToLower(surface);
        auto it = gold_by_surface.find(key);
        if (it != gold_by_surface.end()) return it->second == id;
        gold_by_surface.emplace(std::move(key), id);
        GoldEntityLink gold;
        gold.surface = surface;
        gold.sentence = sentence_index;
        gold.entity = id;
        turn.gold_entities.push_back(std::move(gold));
        return true;
      };

      // Gold hygiene is transactional: either both mentions are
      // recordable (no surface gold-maps to two entities within the turn)
      // and the sentence is emitted, or nothing is recorded at all — a
      // half-recorded pair would leave gold for a surface absent from the
      // text.
      auto emit_pair_sentence = [&](kb::EntityId a_id, const std::string& a,
                                    kb::EntityId b_id, const std::string& b) {
        const std::string a_key = AsciiToLower(a);
        const std::string b_key = AsciiToLower(b);
        const auto a_it = gold_by_surface.find(a_key);
        const auto b_it = gold_by_surface.find(b_key);
        if (a_it != gold_by_surface.end() && a_it->second != a_id) return;
        if (b_it != gold_by_surface.end() && b_it->second != b_id) return;
        if (a_key == b_key && a_id != b_id) return;
        mention(a_id, a);
        mention(b_id, b);
        if (!turn.text.empty()) turn.text += ' ';
        turn.text += a + " " + PastVerb(session_rng) + " " + b + ".";
        ++sentence_index;
      };

      if (t == 0) {
        // Introduction turn: full labels only, pairing cast members.
        for (size_t c = 0; c + 1 < cast.size(); c += 2) {
          emit_pair_sentence(cast[c], world_->entity_surfaces[cast[c]][0],
                             cast[c + 1],
                             world_->entity_surfaces[cast[c + 1]][0]);
        }
        if (cast.size() % 2 == 1) {
          emit_pair_sentence(cast.back(),
                             world_->entity_surfaces[cast.back()][0],
                             cast.front(),
                             world_->entity_surfaces[cast.front()][0]);
        }
      } else {
        // Back-reference turn.
        std::vector<kb::EntityId> refs = cast;
        session_rng.Shuffle(refs);
        const int n_refs = std::min<int>(spec.references_per_turn,
                                         static_cast<int>(refs.size()));
        for (int r = 0; r + 1 < n_refs; r += 2) {
          emit_pair_sentence(refs[r], render_reference(refs[r], session_rng),
                             refs[r + 1],
                             render_reference(refs[r + 1], session_rng));
        }
        if (n_refs % 2 == 1) {
          // Odd reference pairs with a fresh or repeated cast member.
          const kb::EntityId other =
              refs[session_rng.NextUint64(refs.size())];
          if (other != refs[n_refs - 1]) {
            emit_pair_sentence(refs[n_refs - 1],
                               render_reference(refs[n_refs - 1], session_rng),
                               other, render_reference(other, session_rng));
          } else {
            const kb::EntityId id = refs[n_refs - 1];
            const std::string surface = render_reference(id, session_rng);
            if (mention(id, surface)) {
              if (!turn.text.empty()) turn.text += ' ';
              turn.text += surface + " " + PastVerb(session_rng) +
                           " the outcome.";
              ++sentence_index;
            }
          }
        }
        if (session_rng.NextBool(spec.new_entity_turn_rate) &&
            add_cast_member()) {
          const kb::EntityId fresh = cast.back();
          emit_pair_sentence(
              fresh, world_->entity_surfaces[fresh][0],
              refs[0], render_reference(refs[0], session_rng));
        }
      }

      // Degenerate render (every candidate sentence collided on gold
      // hygiene): fall back to one full-label sentence so a turn is never
      // empty.  Gold is empty here, so the mention cannot collide.
      if (turn.text.empty()) {
        const kb::EntityId id = cast[static_cast<size_t>(t) % cast.size()];
        const std::string& label = world_->entity_surfaces[id][0];
        mention(id, label);
        turn.text = label + " " + PastVerb(session_rng) + " the outcome.";
        ++sentence_index;
      }

      turn.num_words = CountWords(turn.text);
      session.turns.push_back(std::move(turn));
    }
    out.sessions.push_back(std::move(session));
  }
  return out;
}

}  // namespace datasets
}  // namespace tenet
