#ifndef TENET_DATASETS_WORLD_H_
#define TENET_DATASETS_WORLD_H_

#include <cstdint>

#include "embedding/embedding_store.h"
#include "embedding/trainer.h"
#include "kb/synthetic_kb.h"

namespace tenet {
namespace datasets {

// Configuration of the full synthetic world (KB + embeddings).
struct WorldOptions {
  kb::SyntheticKbOptions kb;
  embedding::TrainerOptions embeddings;
  uint64_t seed = 2021;
};

// The complete substrate every experiment runs against: KB, gazetteer,
// embeddings — the stand-ins for Wikidata, the Solr index and the
// PyTorch-BigGraph vectors of Sec. 6.1.
struct SyntheticWorld {
  kb::SyntheticKb kb_world;
  embedding::EmbeddingStore embeddings;

  const kb::KnowledgeBase& kb() const { return kb_world.kb; }
  const text::Gazetteer& gazetteer() const { return kb_world.gazetteer; }
};

/// Builds a deterministic world from `options.seed`.
SyntheticWorld BuildWorld(const WorldOptions& options = {});

}  // namespace datasets
}  // namespace tenet

#endif  // TENET_DATASETS_WORLD_H_
