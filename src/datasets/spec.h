#ifndef TENET_DATASETS_SPEC_H_
#define TENET_DATASETS_SPEC_H_

#include <string>

namespace tenet {
namespace datasets {

// Generation profile of one benchmark dataset.  The four factory functions
// below are calibrated to the published statistics of the corpora the
// paper evaluates on (its Table 2 and Sec. 6.1 dataset descriptions);
// the corpus generator turns a profile into an annotated synthetic corpus
// over the synthetic KB (DESIGN.md §1, dataset substitution).
struct DatasetSpec {
  std::string name;
  int num_docs = 10;
  /// Target gold noun phrases per document (Table 2, "# of n./document").
  double mentions_per_doc = 8.0;
  /// Target gold relational phrases per document; 0 disables relation gold.
  double relations_per_doc = 0.0;
  /// Fraction of noun phrases that are non-linkable fresh names.
  double nonlinkable_noun_rate = 0.1;
  /// Fraction of relational phrases with no KB predicate.
  double nonlinkable_rel_rate = 0.0;
  /// Probability that an entity occurrence is rendered by an ambiguous
  /// surface (one shared by several KB entities) rather than its label.
  double ambiguous_surface_rate = 0.25;
  /// Approximate words per document; filler clauses pad to this target.
  int words_per_doc = 170;
  /// Expected composite-entity (canopy) occurrences per document.
  double composites_per_doc = 0.8;
  /// Expected conjunction pairs per document: two independent entities
  /// rendered adjacently as "A and B" (gold: two separate mentions) — the
  /// overlap ambiguity that punishes over-merging mention detectors.
  double conjunction_pairs_per_doc = 0.9;
  /// Fraction of documents drawn from the advertisement domain (extra
  /// fresh phrases; News only).
  double advertisement_fraction = 0.0;
  /// Number of isolated entities (from foreign domains) per document —
  /// the sparse-coherence ingredient.
  double isolated_entities_per_doc = 1.2;
};

/// News [38]: long text, 170.88 words/doc, 16 documents (10 normal + 6
/// advertisement), 7.69 nouns/doc with 21.01% non-linkable, 4.75
/// relations/doc with 63.16% non-linkable.
DatasetSpec NewsSpec();

/// T-REx42 [21]: long text, 179.17 words/doc, 42 documents, 7.79 nouns/doc
/// with 7.34% non-linkable, 5.17 relations/doc with 45.16% non-linkable.
DatasetSpec TRex42Spec();

/// KORE50 [31]: short text, 12.84 words/doc, 50 documents, 2.96 nouns/doc
/// with 0.68% non-linkable, highly ambiguous mentions, no relation gold.
DatasetSpec Kore50Spec();

/// MSNBC19 [15]: long text, 562 words/doc, 19 documents, 22.32 nouns/doc
/// with 15.09% non-linkable, no relation gold.
DatasetSpec Msnbc19Spec();

}  // namespace datasets
}  // namespace tenet

#endif  // TENET_DATASETS_SPEC_H_
