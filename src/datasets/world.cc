#include "datasets/world.h"

#include "common/rng.h"

namespace tenet {
namespace datasets {

SyntheticWorld BuildWorld(const WorldOptions& options) {
  Rng rng(options.seed);
  Rng kb_rng = rng.Fork(1);
  Rng embedding_rng = rng.Fork(2);
  kb::SyntheticKb kb_world =
      kb::SyntheticKbGenerator(options.kb).Generate(kb_rng);
  embedding::EmbeddingStore embeddings =
      embedding::StructuralEmbeddingTrainer(options.embeddings)
          .Train(kb_world.kb, embedding_rng);
  return SyntheticWorld{std::move(kb_world), std::move(embeddings)};
}

}  // namespace datasets
}  // namespace tenet
