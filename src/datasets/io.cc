#include "datasets/io.h"

#include <fstream>
#include <vector>

namespace tenet {
namespace datasets {
namespace {

constexpr char kMagic[] = "TENETDS v1";

bool HasNewlineOrTab(const std::string& s) {
  return s.find('\n') != std::string::npos ||
         s.find('\t') != std::string::npos;
}

Result<std::string> ReadLine(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(std::string("unexpected end of file: ") +
                                   what);
  }
  return line;
}

std::vector<std::string> SplitTabs(const std::string& line, size_t max_fields) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (fields.size() + 1 < max_fields) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) break;
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  fields.push_back(line.substr(start));
  return fields;
}

Result<int64_t> ParseInt(const std::string& s, const char* what) {
  try {
    size_t consumed = 0;
    int64_t value = std::stoll(s, &consumed);
    if (consumed != s.size()) {
      return Status::InvalidArgument(std::string("trailing garbage in ") +
                                     what);
    }
    return value;
  } catch (...) {
    return Status::InvalidArgument(std::string("not an integer: ") + what);
  }
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << kMagic << "\n";
  out << "name\t" << dataset.name << "\n";
  out << "relation_gold\t" << (dataset.has_relation_gold ? 1 : 0) << "\n";
  out << "docs\t" << dataset.documents.size() << "\n";
  for (const Document& doc : dataset.documents) {
    if (HasNewlineOrTab(doc.id) || HasNewlineOrTab(doc.text)) {
      return Status::InvalidArgument(
          "document id/text contains newline or tab: " + doc.id);
    }
    out << "doc\t" << doc.id << '\t' << (doc.advertisement ? 1 : 0) << '\t'
        << doc.num_words << "\n";
    out << "text\t" << doc.text << "\n";
    out << "gold_n\t" << doc.gold_entities.size() << "\n";
    for (const GoldEntityLink& g : doc.gold_entities) {
      if (HasNewlineOrTab(g.surface)) {
        return Status::InvalidArgument("gold surface contains newline/tab");
      }
      out << g.sentence << '\t' << g.entity << '\t' << g.surface << "\n";
    }
    out << "gold_r\t" << doc.gold_predicates.size() << "\n";
    for (const GoldPredicateLink& g : doc.gold_predicates) {
      if (HasNewlineOrTab(g.lemma)) {
        return Status::InvalidArgument("gold lemma contains newline/tab");
      }
      out << g.sentence << '\t' << g.predicate << '\t' << g.lemma << "\n";
    }
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

Result<Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  TENET_ASSIGN_OR_RETURN(std::string magic, ReadLine(in, "magic"));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a TENETDS v1 file: " + path);
  }
  Dataset dataset;

  auto expect_field = [&in](const char* tag,
                            size_t max_fields) -> Result<std::vector<std::string>> {
    TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, tag));
    std::vector<std::string> fields = SplitTabs(line, max_fields);
    if (fields.empty() || fields[0] != tag) {
      return Status::InvalidArgument(std::string("expected ") + tag +
                                     " line, got: " + line);
    }
    return fields;
  };

  TENET_ASSIGN_OR_RETURN(std::vector<std::string> name_fields,
                         expect_field("name", 2));
  if (name_fields.size() != 2) {
    return Status::InvalidArgument("bad name line");
  }
  dataset.name = name_fields[1];

  TENET_ASSIGN_OR_RETURN(std::vector<std::string> rel_fields,
                         expect_field("relation_gold", 2));
  if (rel_fields.size() != 2) {
    return Status::InvalidArgument("bad relation_gold line");
  }
  TENET_ASSIGN_OR_RETURN(int64_t has_rel,
                         ParseInt(rel_fields[1], "relation_gold"));
  dataset.has_relation_gold = has_rel != 0;

  TENET_ASSIGN_OR_RETURN(std::vector<std::string> docs_fields,
                         expect_field("docs", 2));
  if (docs_fields.size() != 2) {
    return Status::InvalidArgument("bad docs line");
  }
  TENET_ASSIGN_OR_RETURN(int64_t num_docs, ParseInt(docs_fields[1], "docs"));
  if (num_docs < 0) return Status::InvalidArgument("negative docs count");

  for (int64_t d = 0; d < num_docs; ++d) {
    Document doc;
    TENET_ASSIGN_OR_RETURN(std::vector<std::string> doc_fields,
                           expect_field("doc", 4));
    if (doc_fields.size() != 4) {
      return Status::InvalidArgument("bad doc line");
    }
    doc.id = doc_fields[1];
    TENET_ASSIGN_OR_RETURN(int64_t ads, ParseInt(doc_fields[2], "ad flag"));
    doc.advertisement = ads != 0;
    TENET_ASSIGN_OR_RETURN(int64_t words,
                           ParseInt(doc_fields[3], "word count"));
    doc.num_words = static_cast<int>(words);

    TENET_ASSIGN_OR_RETURN(std::vector<std::string> text_fields,
                           expect_field("text", 2));
    doc.text = text_fields.size() == 2 ? text_fields[1] : "";

    TENET_ASSIGN_OR_RETURN(std::vector<std::string> gn_fields,
                           expect_field("gold_n", 2));
    if (gn_fields.size() != 2) {
      return Status::InvalidArgument("bad gold_n line");
    }
    TENET_ASSIGN_OR_RETURN(int64_t num_gold_n,
                           ParseInt(gn_fields[1], "gold_n"));
    for (int64_t i = 0; i < num_gold_n; ++i) {
      TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "gold noun"));
      std::vector<std::string> fields = SplitTabs(line, 3);
      if (fields.size() != 3) {
        return Status::InvalidArgument("bad gold noun line: " + line);
      }
      GoldEntityLink gold;
      TENET_ASSIGN_OR_RETURN(int64_t sentence,
                             ParseInt(fields[0], "gold sentence"));
      TENET_ASSIGN_OR_RETURN(int64_t entity,
                             ParseInt(fields[1], "gold entity"));
      gold.sentence = static_cast<int>(sentence);
      gold.entity = static_cast<kb::EntityId>(entity);
      gold.surface = fields[2];
      doc.gold_entities.push_back(std::move(gold));
    }

    TENET_ASSIGN_OR_RETURN(std::vector<std::string> gr_fields,
                           expect_field("gold_r", 2));
    if (gr_fields.size() != 2) {
      return Status::InvalidArgument("bad gold_r line");
    }
    TENET_ASSIGN_OR_RETURN(int64_t num_gold_r,
                           ParseInt(gr_fields[1], "gold_r"));
    for (int64_t i = 0; i < num_gold_r; ++i) {
      TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "gold rel"));
      std::vector<std::string> fields = SplitTabs(line, 3);
      if (fields.size() != 3) {
        return Status::InvalidArgument("bad gold rel line: " + line);
      }
      GoldPredicateLink gold;
      TENET_ASSIGN_OR_RETURN(int64_t sentence,
                             ParseInt(fields[0], "gold sentence"));
      TENET_ASSIGN_OR_RETURN(int64_t predicate,
                             ParseInt(fields[1], "gold predicate"));
      gold.sentence = static_cast<int>(sentence);
      gold.predicate = static_cast<kb::PredicateId>(predicate);
      gold.lemma = fields[2];
      doc.gold_predicates.push_back(std::move(gold));
    }
    dataset.documents.push_back(std::move(doc));
  }
  return dataset;
}

}  // namespace datasets
}  // namespace tenet
