#include "datasets/adversarial.h"

#include <algorithm>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"

namespace tenet {
namespace datasets {
namespace {

// QWERTY adjacency for keyboard-typo substitution.
std::string_view KeyboardNeighbors(char c) {
  switch (c) {
    case 'a': return "qwsz";
    case 'b': return "vghn";
    case 'c': return "xdfv";
    case 'd': return "serfcx";
    case 'e': return "wsdr";
    case 'f': return "drtgvc";
    case 'g': return "ftyhbv";
    case 'h': return "gyujnb";
    case 'i': return "ujko";
    case 'j': return "huikmn";
    case 'k': return "jiolm";
    case 'l': return "kop";
    case 'm': return "njk";
    case 'n': return "bhjm";
    case 'o': return "iklp";
    case 'p': return "ol";
    case 'q': return "wa";
    case 'r': return "edft";
    case 's': return "awedxz";
    case 't': return "rfgy";
    case 'u': return "yhji";
    case 'v': return "cfgb";
    case 'w': return "qase";
    case 'x': return "zsdc";
    case 'y': return "tghu";
    case 'z': return "asx";
    default: return "";
  }
}

struct OcrPair {
  std::string_view from;
  std::string_view to;
};

// Classic OCR confusions, applied to the first occurrence in a word.
constexpr OcrPair kOcrPairs[] = {
    {"rn", "m"}, {"cl", "d"}, {"l", "1"}, {"I", "l"}, {"O", "0"},
    {"S", "5"},  {"B", "8"},  {"e", "c"}, {"g", "q"},
};

struct Homoglyph {
  char from;
  std::string_view to;  // UTF-8 Cyrillic lookalike
};

constexpr Homoglyph kHomoglyphs[] = {
    {'a', "\xD0\xB0"}, {'c', "\xD1\x81"}, {'e', "\xD0\xB5"},
    {'o', "\xD0\xBE"}, {'p', "\xD1\x80"}, {'x', "\xD1\x85"},
    {'A', "\xD0\x90"}, {'C', "\xD0\xA1"}, {'E', "\xD0\x95"},
    {'O', "\xD0\x9E"}, {'P', "\xD0\xA0"}, {'X', "\xD0\xA5"},
};

// Hostile byte sequences: stray continuation, always-invalid lead,
// overlong NUL, overlong slash, surrogate half, above U+10FFFF, truncated
// 3-byte sequence.
constexpr std::string_view kInvalidUtf8[] = {
    "\x80", "\xFF", "\xC0\x80", "\xC1\xAF", "\xED\xA0\x80",
    "\xF5\x80\x80\x80", "\xE2\x82",
};

constexpr std::string_view kPunctuationRuns[] = {
    "!!!!!!!!!!", "??????????", ",,,,,,,,,,", "((((((((((", "))))))))))",
    "----------", "::::::;;;;", "\"\"\"\"\"\"\"\"", ".... .... ....",
    "\t\t\t\t    \t\t\t\t",
};

// Positions of ASCII letters within a word (mutations only touch letters,
// so punctuation glued to the word survives and multi-byte sequences are
// never split).
std::vector<size_t> LetterPositions(const std::string& w) {
  std::vector<size_t> out;
  for (size_t i = 0; i < w.size(); ++i) {
    if (IsAsciiAlphaChar(w[i])) out.push_back(i);
  }
  return out;
}

void ApplyTypo(std::string& w, Rng& rng) {
  std::vector<size_t> letters = LetterPositions(w);
  if (letters.empty()) return;
  const size_t pos = letters[rng.NextUint64(letters.size())];
  switch (rng.NextUint64(4)) {
    case 0: {  // adjacent-key substitution
      std::string_view neighbors = AsciiFoldChar(w[pos]) == w[pos]
                                       ? KeyboardNeighbors(w[pos])
                                       : KeyboardNeighbors(AsciiFoldChar(w[pos]));
      if (neighbors.empty()) return;
      char sub = neighbors[rng.NextUint64(neighbors.size())];
      if (IsAsciiUpperChar(w[pos])) sub = static_cast<char>(sub - ('a' - 'A'));
      w[pos] = sub;
      break;
    }
    case 1: {  // transpose with the next letter
      for (size_t i = 0; i + 1 < letters.size(); ++i) {
        if (letters[i] == pos && letters[i + 1] == pos + 1) {
          std::swap(w[pos], w[pos + 1]);
          return;
        }
      }
      break;
    }
    case 2:  // deletion (keep at least one letter)
      if (letters.size() > 1) w.erase(pos, 1);
      break;
    default:  // duplication
      w.insert(pos, 1, w[pos]);
      break;
  }
}

bool ApplyOcr(std::string& w, Rng& rng) {
  const OcrPair& pair =
      kOcrPairs[rng.NextUint64(std::size(kOcrPairs))];
  const size_t at = w.find(pair.from);
  if (at == std::string::npos) return false;
  w.replace(at, pair.from.size(), pair.to);
  return true;
}

bool ApplyHomoglyph(std::string& w, Rng& rng) {
  // Try a random rotation of the table so the choice is seed-driven but a
  // word without any mappable letter is left alone.
  const size_t n = std::size(kHomoglyphs);
  const size_t start = rng.NextUint64(n);
  for (size_t k = 0; k < n; ++k) {
    const Homoglyph& h = kHomoglyphs[(start + k) % n];
    const size_t at = w.find(h.from);
    if (at == std::string::npos) continue;
    w.replace(at, 1, h.to);
    return true;
  }
  return false;
}

// Splits into whitespace-separated words, preserving exact reassembly.
std::vector<std::string> SplitWords(const std::string& text) {
  std::vector<std::string> words;
  size_t i = 0;
  while (i < text.size()) {
    size_t end = text.find(' ', i);
    if (end == std::string::npos) end = text.size();
    if (end > i) words.push_back(text.substr(i, end - i));
    i = end + 1;
  }
  return words;
}

// Gold surfaces usable as storm/near-duplicate material: linkable and
// short enough to keep the storm text bounded.
std::vector<std::string_view> UsableGoldSurfaces(const Document& doc) {
  std::vector<std::string_view> out;
  for (const GoldEntityLink& g : doc.gold_entities) {
    if (g.linkable() && !g.surface.empty() && g.surface.size() <= 64) {
      out.push_back(g.surface);
    }
  }
  return out;
}

}  // namespace

Document AdversarialMutator::Mutate(const Document& doc, uint64_t salt,
                                    MutationStats* stats) const {
  // Per-document stream derived from (seed, salt): mutation of document k
  // is identical no matter which other documents are mutated around it.
  Rng rng(spec_.seed ^ (salt * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
  Document out = doc;
  MutationStats local;

  // ---- Word-level noise --------------------------------------------------
  if (spec_.typo_noise || spec_.ocr_noise || spec_.homoglyphs) {
    std::vector<std::string> words = SplitWords(out.text);
    for (std::string& w : words) {
      if (spec_.typo_noise && rng.NextBool(spec_.typo_word_rate)) {
        ApplyTypo(w, rng);
        ++local.typo_words;
      }
      if (spec_.ocr_noise && rng.NextBool(spec_.ocr_word_rate)) {
        if (ApplyOcr(w, rng)) ++local.ocr_words;
      }
      if (spec_.homoglyphs && rng.NextBool(spec_.homoglyph_word_rate)) {
        if (ApplyHomoglyph(w, rng)) ++local.homoglyph_words;
      }
    }
    out.text = JoinStrings(words, " ");
  }

  // ---- Appended hostile structure ---------------------------------------
  const std::vector<std::string_view> surfaces = UsableGoldSurfaces(doc);

  if (spec_.near_duplicates && !surfaces.empty() &&
      rng.NextBool(spec_.near_duplicate_doc_rate)) {
    std::string dup(surfaces[rng.NextUint64(surfaces.size())]);
    ApplyTypo(dup, rng);
    out.text += " The " + dup + " report resurfaced.";
    ++local.near_duplicate_docs;
  }

  if (spec_.ambiguity_storm && surfaces.size() >= 2 &&
      rng.NextBool(spec_.ambiguity_storm_doc_rate)) {
    int emitted = 0;
    while (emitted < spec_.ambiguity_storm_mentions) {
      // Feature-linked chains keep the mentions in one group, growing the
      // canopy until the enumeration cap and the ladder take over.
      const int chain = 2 + static_cast<int>(rng.NextUint64(3));
      std::string sentence;
      for (int c = 0; c < chain; ++c) {
        if (c > 0) sentence += " of ";
        sentence += surfaces[rng.NextUint64(surfaces.size())];
        ++emitted;
      }
      out.text += " " + sentence + ".";
    }
    ++local.ambiguity_storm_docs;
  }

  if (spec_.degenerate_punctuation &&
      rng.NextBool(spec_.punctuation_doc_rate)) {
    for (int i = 0; i < spec_.punctuation_runs; ++i) {
      out.text += ' ';
      out.text +=
          kPunctuationRuns[rng.NextUint64(std::size(kPunctuationRuns))];
    }
    ++local.punctuation_docs;
  }

  if (spec_.oversized_tokens && spec_.oversized_token_bytes > 1 &&
      rng.NextBool(spec_.oversized_token_doc_rate)) {
    std::string giant(static_cast<size_t>(spec_.oversized_token_bytes), 'q');
    giant[0] = 'Z';  // capitalized: lands in the mention path, not filler
    out.text += " " + giant + ".";
    ++local.oversized_token_docs;
  }

  if (spec_.invalid_utf8 && rng.NextBool(spec_.invalid_utf8_doc_rate)) {
    for (int i = 0; i < spec_.invalid_utf8_splices; ++i) {
      const std::string_view bytes =
          kInvalidUtf8[rng.NextUint64(std::size(kInvalidUtf8))];
      const size_t at = rng.NextUint64(out.text.size() + 1);
      out.text.insert(at, bytes.data(), bytes.size());
    }
    ++local.invalid_utf8_docs;
  }

  if (spec_.oversized_document_bytes > 0 &&
      rng.NextBool(spec_.oversized_document_doc_rate)) {
    constexpr std::string_view kFiller =
        " The archive mirrors the archive again.";
    while (out.text.size() <= spec_.oversized_document_bytes) {
      out.text += kFiller;
    }
    ++local.oversized_docs;
  }

  if (stats != nullptr) {
    stats->typo_words += local.typo_words;
    stats->ocr_words += local.ocr_words;
    stats->homoglyph_words += local.homoglyph_words;
    stats->near_duplicate_docs += local.near_duplicate_docs;
    stats->ambiguity_storm_docs += local.ambiguity_storm_docs;
    stats->punctuation_docs += local.punctuation_docs;
    stats->oversized_token_docs += local.oversized_token_docs;
    stats->invalid_utf8_docs += local.invalid_utf8_docs;
    stats->oversized_docs += local.oversized_docs;
  }
  return out;
}

Dataset AdversarialMutator::Mutate(const Dataset& dataset,
                                   MutationStats* stats) const {
  Dataset out;
  out.name = dataset.name;
  out.has_relation_gold = dataset.has_relation_gold;
  out.documents.reserve(dataset.documents.size());
  for (size_t i = 0; i < dataset.documents.size(); ++i) {
    out.documents.push_back(Mutate(dataset.documents[i], i, stats));
  }
  return out;
}

}  // namespace datasets
}  // namespace tenet
