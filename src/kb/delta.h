#ifndef TENET_KB_DELTA_H_
#define TENET_KB_DELTA_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "embedding/embedding_store.h"
#include "kb/knowledge_base.h"
#include "kb/types.h"

namespace tenet {

class ThreadPool;

namespace kb {

// "TENETDELTA1": the append-only KB delta segment layered on TENETKB2
// snapshots (DESIGN.md §12) — the unit of a live KB update.  A segment is
// an ordered list of checksummed records describing what changed since a
// base snapshot: new entities/predicates with their aliases and facts,
// alias-prior adjustments, embedding rows, and tombstones.  Segments are
// written through AtomicWriteFile (temp + fsync + rename), so a crash
// mid-write never yields a readable-but-corrupt segment: either the whole
// segment is durable, or it does not exist.
//
// On-disk layout (all integers little-endian):
//   header (40 bytes): magic "TENETDELTA1\0" | endian tag u32 |
//                      record count u64 | payload bytes u64 |
//                      FNV-1a of the preceding 32 bytes
//   records:           op u32 | payload length u32 | FNV-1a(payload) u64 |
//                      payload
// The loader validates the header checksum, the declared lengths against
// the actual file size, and every record checksum before returning
// anything; a corrupt segment yields InvalidArgument, never a partial
// segment.
//
// Apply semantics (ApplyDeltas):
//  - Dense ids are append-only: a delta-added entity gets the next id
//    after the base KB's (DeltaBuilder hands these out), so facts and
//    embeddings can reference entities added earlier in the same chain.
//  - Alias weights compose with the surface's current distribution: the
//    base KB's finalized priors count as the existing weights, a delta
//    posting adds (or, for adjustments, replaces) a weight in those units,
//    and only the touched surfaces are renormalized + re-sorted.
//    Untouched surfaces keep their priors BIT-EXACT (the same
//    kRestorePriors contract the snapshot round trip honors), so a delta
//    can never flip a near-tie disambiguation it didn't mention.
//  - Tombstones keep the concept's record (ids stay dense) but strip all
//    of its alias postings and drop every fact touching it — the concept
//    becomes unreachable from candidate generation.  A tombstone wins
//    over adds of the same concept anywhere in the applied chain.
//  - kSetEmbedding replaces one concept's raw vector; concepts without a
//    vector (typically delta-added ones) default to the zero row, whose
//    cosine against anything is 0.

enum class DeltaOp : uint32_t {
  kAddEntity = 1,
  kAddPredicate = 2,
  kAddEntityAlias = 3,
  kAddPredicateAlias = 4,
  kAdjustEntityAliasPrior = 5,
  kAdjustPredicateAliasPrior = 6,
  kTombstoneEntity = 7,
  kTombstonePredicate = 8,
  kAddFact = 9,
  kAddLiteralFact = 10,
  kSetEmbedding = 11,
};

// One decoded delta record.  Which fields are meaningful depends on `op`;
// the rest stay at their defaults.
struct DeltaRecord {
  DeltaOp op = DeltaOp::kAddEntity;
  /// Label (kAdd{Entity,Predicate}), surface (alias ops), or literal
  /// (kAddLiteralFact).
  std::string text;
  /// Concept id of alias/tombstone/embedding ops.
  int32_t id = -1;
  /// EntityType as int (kAddEntity).
  int32_t type = 0;
  int32_t domain = 0;
  /// Popularity (adds), alias weight (alias adds), or the replacement
  /// weight (prior adjustments).
  double weight = 0.0;
  int32_t subject = -1;
  int32_t predicate = -1;
  int32_t object = -1;
  /// kSetEmbedding: which kind `id` refers to (0 entity, 1 predicate).
  int32_t ref_kind = 0;
  std::vector<float> embedding;
};

// A loaded (or in-memory) delta segment.
struct DeltaSegment {
  /// Source path; empty for segments built in memory.
  std::string path;
  std::vector<DeltaRecord> records;
};

// Accumulates delta records with the same call shapes as the
// KnowledgeBase build API, handing out the dense ids the records will
// occupy once applied on a base with the given counts.
class DeltaBuilder {
 public:
  DeltaBuilder(int32_t base_entities, int32_t base_predicates);
  /// Sizes the id space from `base` (which need not be finalized yet).
  explicit DeltaBuilder(const KnowledgeBase& base);

  /// Adds an entity; like KnowledgeBase::AddEntity, its label is also
  /// registered as an alias weighted by `popularity`.  Returns the dense
  /// id the entity will occupy after apply.
  EntityId AddEntity(std::string_view label, EntityType type,
                     int32_t domain = 0, double popularity = 1.0);
  PredicateId AddPredicate(std::string_view label, int32_t domain = 0,
                           double popularity = 1.0);

  void AddEntityAlias(EntityId id, std::string_view surface, double weight);
  void AddPredicateAlias(PredicateId id, std::string_view surface,
                         double weight);

  /// Replaces the weight of the existing posting (surface, concept).
  /// Applying fails if the posting does not exist.
  void AdjustEntityAliasPrior(EntityId id, std::string_view surface,
                              double new_weight);
  void AdjustPredicateAliasPrior(PredicateId id, std::string_view surface,
                                 double new_weight);

  void TombstoneEntity(EntityId id);
  void TombstonePredicate(PredicateId id);

  void AddFact(EntityId subject, PredicateId predicate, EntityId object);
  void AddLiteralFact(EntityId subject, PredicateId predicate,
                      std::string_view literal);

  /// Replaces the raw embedding row of `ref`.  The vector's length must
  /// equal the base store's dimension (validated at apply time).
  void SetEmbedding(ConceptRef ref, std::span<const float> vector);

  /// Entity/predicate count after this delta (base + added so far).
  int32_t num_entities() const { return next_entity_; }
  int32_t num_predicates() const { return next_predicate_; }
  size_t num_records() const { return records_.size(); }

  /// The records as an in-memory segment (path empty).
  DeltaSegment Build() const;

  /// Serializes to `path` as TENETDELTA1, atomically.
  Status Write(const std::string& path) const;

 private:
  int32_t next_entity_;
  int32_t next_predicate_;
  std::vector<DeltaRecord> records_;
};

/// Serializes `segment` to `path` (TENETDELTA1, atomic write).
Status WriteDeltaSegment(const DeltaSegment& segment,
                         const std::string& path);

/// Loads and fully validates a TENETDELTA1 segment.  Header, lengths and
/// every record checksum are verified before anything is returned.
Result<DeltaSegment> LoadDeltaSegment(const std::string& path);

// What ApplyDeltas did, for logs / CLI output / metrics.
struct DeltaApplyStats {
  int64_t added_entities = 0;
  int64_t added_predicates = 0;
  int64_t added_aliases = 0;
  int64_t adjusted_priors = 0;
  int64_t tombstones = 0;
  int64_t added_facts = 0;
  int64_t dropped_facts = 0;  // base or delta facts killed by tombstones
  int64_t set_embeddings = 0;
  int64_t touched_surfaces = 0;  // surfaces renormalized + re-sorted
};

// The materialized result of applying a delta chain onto a base.
struct AppliedDelta {
  KnowledgeBase kb;
  embedding::EmbeddingStore embeddings;
  DeltaApplyStats stats;
};

/// Rebuilds (base KB + base embeddings) with `segments` applied in order,
/// under the semantics documented above.  The base is untouched (it may
/// be serving live traffic); the result is a fresh, finalized substrate.
/// Records are validated against the running id space; any invalid record
/// fails the whole apply with InvalidArgument and nothing is returned.
/// `pool` parallelizes the alias-index restore, as in the snapshot
/// loader.
Result<AppliedDelta> ApplyDeltas(
    const KnowledgeBase& base,
    const embedding::EmbeddingStore& base_embeddings,
    std::span<const DeltaSegment> segments, ThreadPool* pool = nullptr);

}  // namespace kb
}  // namespace tenet

#endif  // TENET_KB_DELTA_H_
