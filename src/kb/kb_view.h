#ifndef TENET_KB_KB_VIEW_H_
#define TENET_KB_KB_VIEW_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "kb/alias_index.h"
#include "kb/knowledge_base.h"
#include "kb/types.h"

namespace tenet {

namespace embedding {
class EmbeddingStore;
}  // namespace embedding

namespace kb {

// Read-path contract over a KB substrate — the one API the pipeline, the
// baselines, and the serving layer consume, whether the concepts live in a
// single heap (FlatKbView over KnowledgeBase + EmbeddingStore) or are
// hash-partitioned across N shards (ShardedKb).  See DESIGN.md §14.
//
// Determinism contract: for the same logical KB, every implementation must
// return candidate lists, fact visitation sequences, neighbor lists, and
// similarities that are byte-identical to the flat substrate's.  Sharded
// implementations achieve this by (a) keeping per-surface postings in the
// canonical order (CanonicalPostingOrder) so per-shard sublists k-way-merge
// back into exactly the flat list, and (b) replicating each fact to the
// home shard of every participating concept so per-concept fact sequences
// are complete and in ascending global fact order.
//
// All methods are const and safe for concurrent readers once the backing
// substrate is finalized.
class KbView {
 public:
  virtual ~KbView() = default;

  // ---- concept access ----------------------------------------------------

  virtual int32_t num_entities() const = 0;
  virtual int32_t num_predicates() const = 0;
  virtual int64_t num_facts() const = 0;

  virtual const EntityRecord& entity(EntityId id) const = 0;
  virtual const PredicateRecord& predicate(PredicateId id) const = 0;

  // ---- candidate generation ----------------------------------------------

  /// Candidate entities whose alias matches `surface`; semantics identical
  /// to KnowledgeBase::CandidateEntities (type filter, cap, overflow
  /// counting, renormalization over the returned set).
  virtual std::vector<EntityCandidate> CandidateEntities(
      std::string_view surface, std::optional<EntityType> type,
      int max_candidates, int* overflow = nullptr) const = 0;

  /// Candidate predicates; semantics identical to
  /// KnowledgeBase::CandidatePredicates.
  virtual std::vector<PredicateCandidate> CandidatePredicates(
      std::string_view surface, int max_candidates,
      int* overflow = nullptr) const = 0;

  // ---- fact access -------------------------------------------------------

  /// Visitor over the facts of one concept.  `fact_id` is the global fact
  /// id (the index into KnowledgeBase::facts() on the flat substrate);
  /// facts arrive in ascending global id order.  Return false to stop
  /// early.
  using FactVisitor = std::function<bool(int64_t fact_id, const Triple&)>;

  /// Visits every fact where `id` appears as subject or object.
  virtual void VisitFactsOfEntity(EntityId id,
                                  const FactVisitor& visitor) const = 0;
  /// Visits every fact using predicate `id`.
  virtual void VisitFactsOfPredicate(PredicateId id,
                                     const FactVisitor& visitor) const = 0;

  /// Distinct entities adjacent to `id` through any fact, in first-seen
  /// order over the ascending-fact-id visitation.
  virtual std::vector<EntityId> NeighborEntities(EntityId id) const = 0;

  // ---- embeddings --------------------------------------------------------

  virtual int dimension() const = 0;

  /// Cosine similarity in [-1, 1]; one embedding/fetch dependency
  /// observation per call, fired faults yield 0 (see EmbeddingStore).
  virtual double Cosine(ConceptRef a, ConceptRef b) const = 0;

  /// Batched unit-row fetch; one dependency observation for the whole
  /// gather, fired faults zero-fill `out` (see EmbeddingStore::GatherUnit).
  virtual void GatherUnit(std::span<const ConceptRef> refs,
                          double* out) const = 0;

  // ---- alias enumeration -------------------------------------------------

  using PostingVisitor =
      std::function<void(std::string_view surface, const AliasPosting&)>;

  /// Visits every alias posting exactly once; the order is unspecified and
  /// the postings of one surface may arrive in several non-consecutive
  /// runs (one per shard on a sharded substrate) — consumers must be
  /// order-independent.  Offline use only (gazetteer derivation) — not a
  /// read-path call.
  virtual void VisitAliasPostings(const PostingVisitor& visitor) const = 0;
};

// KbView over the single-heap substrate: borrows a finalized KnowledgeBase
// and EmbeddingStore (both must outlive the view).  Copyable and cheap —
// two pointers.
class FlatKbView final : public KbView {
 public:
  FlatKbView(const KnowledgeBase* kb,
             const embedding::EmbeddingStore* embeddings);

  int32_t num_entities() const override { return kb_->num_entities(); }
  int32_t num_predicates() const override { return kb_->num_predicates(); }
  int64_t num_facts() const override { return kb_->num_facts(); }

  const EntityRecord& entity(EntityId id) const override {
    return kb_->entity(id);
  }
  const PredicateRecord& predicate(PredicateId id) const override {
    return kb_->predicate(id);
  }

  std::vector<EntityCandidate> CandidateEntities(
      std::string_view surface, std::optional<EntityType> type,
      int max_candidates, int* overflow = nullptr) const override {
    return kb_->CandidateEntities(surface, type, max_candidates, overflow);
  }
  std::vector<PredicateCandidate> CandidatePredicates(
      std::string_view surface, int max_candidates,
      int* overflow = nullptr) const override {
    return kb_->CandidatePredicates(surface, max_candidates, overflow);
  }

  void VisitFactsOfEntity(EntityId id,
                          const FactVisitor& visitor) const override;
  void VisitFactsOfPredicate(PredicateId id,
                             const FactVisitor& visitor) const override;
  std::vector<EntityId> NeighborEntities(EntityId id) const override {
    return kb_->NeighborEntities(id);
  }

  int dimension() const override;
  double Cosine(ConceptRef a, ConceptRef b) const override;
  void GatherUnit(std::span<const ConceptRef> refs,
                  double* out) const override;

  void VisitAliasPostings(const PostingVisitor& visitor) const override;

  const KnowledgeBase* kb() const { return kb_; }
  const embedding::EmbeddingStore* embeddings() const { return embeddings_; }

 private:
  const KnowledgeBase* kb_;
  const embedding::EmbeddingStore* embeddings_;
};

// Shared candidate post-processing — the exact truncate/overflow/renormalize
// sequence of the historical KnowledgeBase::Candidate* methods, factored out
// so the flat and sharded paths run the same floating-point operations in
// the same order (byte-identical priors either way).  `keep` filters a
// posting (type matching), `make` converts a surviving posting into the
// candidate type.
template <typename Candidate, typename KeepFn, typename MakeFn>
std::vector<Candidate> SelectCandidates(
    const std::vector<AliasPosting>& postings, int max_candidates,
    int* overflow, KeepFn&& keep, MakeFn&& make) {
  if (overflow != nullptr) *overflow = 0;
  std::vector<Candidate> out;
  if (max_candidates <= 0) return out;
  for (const AliasPosting& posting : postings) {
    if (!keep(posting)) continue;
    if (static_cast<int>(out.size()) == max_candidates) {
      // Past the cap: only keep counting when the caller asked to observe
      // truncation; the returned set and its renormalization are unchanged.
      if (overflow == nullptr) break;
      ++*overflow;
      continue;
    }
    out.push_back(make(posting));
  }
  // Renormalize so the truncated/filtered set is still a distribution.
  double total = 0.0;
  for (const Candidate& c : out) total += c.prior;
  if (total > 0.0) {
    for (Candidate& c : out) c.prior /= total;
  }
  return out;
}

}  // namespace kb
}  // namespace tenet

#endif  // TENET_KB_KB_VIEW_H_
