#include "kb/delta.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/atomic_file.h"
#include "common/checksum.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/mmap_file.h"
#include "common/string_util.h"

namespace tenet {
namespace kb {
namespace {

// ---- TENETDELTA1 layout (DESIGN.md §12) -----------------------------------

constexpr char kDeltaMagic[12] = {'T', 'E', 'N', 'E', 'T', 'D',
                                  'E', 'L', 'T', 'A', '1', '\0'};
constexpr uint32_t kDeltaEndianTag = 0x31544C44;  // "DLT1" when little-endian
constexpr size_t kDeltaHeaderBytes = 40;  // magic+tag+count+bytes+checksum
constexpr size_t kDeltaChecksummedHeaderBytes = 32;
constexpr size_t kRecordHeaderBytes = 16;  // op+len+payload checksum
// Fixed-width prefix of every record payload: seven i32 fields, one f64,
// and the text/embedding length words.  Variable tails follow.
constexpr size_t kRecordFixedPayloadBytes = 44;
constexpr uint32_t kMaxDeltaOp = static_cast<uint32_t>(DeltaOp::kSetEmbedding);

// Same shape as the snapshot writers' simulated crash: the injected fault
// leaves half-written `<path>.tmp` debris and never touches `path`.
Status SimulateTornDeltaWrite(const std::string& path, const void* data,
                              size_t size) {
  std::ofstream debris(path + ".tmp", std::ios::trunc | std::ios::binary);
  if (debris) {
    debris.write(static_cast<const char*>(data),
                 static_cast<std::streamsize>(size / 2));
  }
  return Status::DataLoss(std::string("injected fault: write of ") + path +
                          " crashed mid-segment; previous file left intact");
}

// Append-only little-endian buffer (io.cc keeps its own copy; the snapshot
// and delta writers share the format conventions, not the TU).
class ByteWriter {
 public:
  template <typename T>
  void Append(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    unsigned char raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    bytes_.insert(bytes_.end(), raw, raw + sizeof(T));
  }
  void AppendBytes(const void* data, size_t size) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }
  size_t size() const { return bytes_.size(); }
  const unsigned char* data() const { return bytes_.data(); }

 private:
  std::vector<unsigned char> bytes_;
};

// Bounds-unchecked typed reads over a range whose length was already
// validated.
class RecordReader {
 public:
  explicit RecordReader(const std::byte* p) : p_(p) {}
  template <typename T>
  T Read() {
    T value;
    std::memcpy(&value, p_, sizeof(T));
    p_ += sizeof(T);
    return value;
  }
  const std::byte* position() const { return p_; }

 private:
  const std::byte* p_;
};

void EncodeRecordPayload(const DeltaRecord& record, ByteWriter* out) {
  out->Append<int32_t>(record.id);
  out->Append<int32_t>(record.type);
  out->Append<int32_t>(record.domain);
  out->Append<int32_t>(record.ref_kind);
  out->Append<int32_t>(record.subject);
  out->Append<int32_t>(record.predicate);
  out->Append<int32_t>(record.object);
  out->Append<double>(record.weight);
  out->Append<uint32_t>(static_cast<uint32_t>(record.text.size()));
  out->Append<uint32_t>(static_cast<uint32_t>(record.embedding.size()));
  out->AppendBytes(record.text.data(), record.text.size());
  out->AppendBytes(record.embedding.data(),
                   record.embedding.size() * sizeof(float));
}

ByteWriter SerializeSegment(const std::vector<DeltaRecord>& records) {
  ByteWriter payload;
  for (const DeltaRecord& record : records) {
    ByteWriter body;
    EncodeRecordPayload(record, &body);
    payload.Append<uint32_t>(static_cast<uint32_t>(record.op));
    payload.Append<uint32_t>(static_cast<uint32_t>(body.size()));
    payload.Append<uint64_t>(Fnv1a64(body.data(), body.size()));
    payload.AppendBytes(body.data(), body.size());
  }

  ByteWriter file;
  file.AppendBytes(kDeltaMagic, sizeof(kDeltaMagic));
  file.Append<uint32_t>(kDeltaEndianTag);
  file.Append<uint64_t>(static_cast<uint64_t>(records.size()));
  file.Append<uint64_t>(static_cast<uint64_t>(payload.size()));
  TENET_CHECK_EQ(file.size(), kDeltaChecksummedHeaderBytes);
  file.Append<uint64_t>(Fnv1a64(file.data(), kDeltaChecksummedHeaderBytes));
  file.AppendBytes(payload.data(), payload.size());
  return file;
}

Status Corrupt(const std::string& path, size_t record, const char* what) {
  return Status::InvalidArgument("delta segment " + path + ": record " +
                                 std::to_string(record) + ": " + what);
}

Result<DeltaRecord> DecodeRecord(uint32_t op, const std::byte* payload,
                                 uint32_t payload_len,
                                 const std::string& path, size_t index) {
  if (payload_len < kRecordFixedPayloadBytes) {
    return Corrupt(path, index, "payload shorter than the fixed fields");
  }
  DeltaRecord record;
  record.op = static_cast<DeltaOp>(op);
  RecordReader reader(payload);
  record.id = reader.Read<int32_t>();
  record.type = reader.Read<int32_t>();
  record.domain = reader.Read<int32_t>();
  record.ref_kind = reader.Read<int32_t>();
  record.subject = reader.Read<int32_t>();
  record.predicate = reader.Read<int32_t>();
  record.object = reader.Read<int32_t>();
  record.weight = reader.Read<double>();
  const uint32_t text_len = reader.Read<uint32_t>();
  const uint32_t emb_count = reader.Read<uint32_t>();
  const uint64_t expected = kRecordFixedPayloadBytes +
                            static_cast<uint64_t>(text_len) +
                            static_cast<uint64_t>(emb_count) * sizeof(float);
  if (expected != payload_len) {
    return Corrupt(path, index,
                   "declared text/embedding lengths disagree with the "
                   "payload length");
  }
  record.text.assign(reinterpret_cast<const char*>(reader.position()),
                     text_len);
  record.embedding.resize(emb_count);
  if (emb_count > 0) {
    std::memcpy(record.embedding.data(), reader.position() + text_len,
                emb_count * sizeof(float));
  }
  return record;
}

}  // namespace

// ---- DeltaBuilder ---------------------------------------------------------

DeltaBuilder::DeltaBuilder(int32_t base_entities, int32_t base_predicates)
    : next_entity_(base_entities), next_predicate_(base_predicates) {
  TENET_CHECK_GE(base_entities, 0);
  TENET_CHECK_GE(base_predicates, 0);
}

DeltaBuilder::DeltaBuilder(const KnowledgeBase& base)
    : DeltaBuilder(base.num_entities(), base.num_predicates()) {}

EntityId DeltaBuilder::AddEntity(std::string_view label, EntityType type,
                                 int32_t domain, double popularity) {
  const EntityId id = next_entity_++;
  DeltaRecord record;
  record.op = DeltaOp::kAddEntity;
  record.text = std::string(label);
  record.id = id;
  record.type = static_cast<int32_t>(type);
  record.domain = domain;
  record.weight = popularity;
  records_.push_back(std::move(record));
  // Mirror KnowledgeBase::AddEntity: the label doubles as an alias weighted
  // by popularity, carried as an explicit alias record so apply has one
  // alias path.
  if (!label.empty() && popularity > 0.0) {
    AddEntityAlias(id, label, popularity);
  }
  return id;
}

PredicateId DeltaBuilder::AddPredicate(std::string_view label, int32_t domain,
                                       double popularity) {
  const PredicateId id = next_predicate_++;
  DeltaRecord record;
  record.op = DeltaOp::kAddPredicate;
  record.text = std::string(label);
  record.id = id;
  record.domain = domain;
  record.weight = popularity;
  records_.push_back(std::move(record));
  if (!label.empty() && popularity > 0.0) {
    AddPredicateAlias(id, label, popularity);
  }
  return id;
}

void DeltaBuilder::AddEntityAlias(EntityId id, std::string_view surface,
                                  double weight) {
  DeltaRecord record;
  record.op = DeltaOp::kAddEntityAlias;
  record.text = std::string(surface);
  record.id = id;
  record.weight = weight;
  records_.push_back(std::move(record));
}

void DeltaBuilder::AddPredicateAlias(PredicateId id, std::string_view surface,
                                     double weight) {
  DeltaRecord record;
  record.op = DeltaOp::kAddPredicateAlias;
  record.text = std::string(surface);
  record.id = id;
  record.weight = weight;
  records_.push_back(std::move(record));
}

void DeltaBuilder::AdjustEntityAliasPrior(EntityId id,
                                          std::string_view surface,
                                          double new_weight) {
  DeltaRecord record;
  record.op = DeltaOp::kAdjustEntityAliasPrior;
  record.text = std::string(surface);
  record.id = id;
  record.weight = new_weight;
  records_.push_back(std::move(record));
}

void DeltaBuilder::AdjustPredicateAliasPrior(PredicateId id,
                                             std::string_view surface,
                                             double new_weight) {
  DeltaRecord record;
  record.op = DeltaOp::kAdjustPredicateAliasPrior;
  record.text = std::string(surface);
  record.id = id;
  record.weight = new_weight;
  records_.push_back(std::move(record));
}

void DeltaBuilder::TombstoneEntity(EntityId id) {
  DeltaRecord record;
  record.op = DeltaOp::kTombstoneEntity;
  record.id = id;
  records_.push_back(std::move(record));
}

void DeltaBuilder::TombstonePredicate(PredicateId id) {
  DeltaRecord record;
  record.op = DeltaOp::kTombstonePredicate;
  record.id = id;
  records_.push_back(std::move(record));
}

void DeltaBuilder::AddFact(EntityId subject, PredicateId predicate,
                           EntityId object) {
  DeltaRecord record;
  record.op = DeltaOp::kAddFact;
  record.subject = subject;
  record.predicate = predicate;
  record.object = object;
  records_.push_back(std::move(record));
}

void DeltaBuilder::AddLiteralFact(EntityId subject, PredicateId predicate,
                                  std::string_view literal) {
  DeltaRecord record;
  record.op = DeltaOp::kAddLiteralFact;
  record.text = std::string(literal);
  record.subject = subject;
  record.predicate = predicate;
  records_.push_back(std::move(record));
}

void DeltaBuilder::SetEmbedding(ConceptRef ref, std::span<const float> vector) {
  DeltaRecord record;
  record.op = DeltaOp::kSetEmbedding;
  record.id = ref.id;
  record.ref_kind = static_cast<int32_t>(ref.kind);
  record.embedding.assign(vector.begin(), vector.end());
  records_.push_back(std::move(record));
}

DeltaSegment DeltaBuilder::Build() const {
  DeltaSegment segment;
  segment.records = records_;
  return segment;
}

Status DeltaBuilder::Write(const std::string& path) const {
  return WriteDeltaSegment(Build(), path);
}

// ---- Serialization --------------------------------------------------------

Status WriteDeltaSegment(const DeltaSegment& segment,
                         const std::string& path) {
  const ByteWriter file = SerializeSegment(segment.records);
  if (TENET_FAULT_POINT("kb/io/write_delta")) {
    return SimulateTornDeltaWrite(path, file.data(), file.size());
  }
  return AtomicWriteFile(path, file.data(), file.size());
}

Result<DeltaSegment> LoadDeltaSegment(const std::string& path) {
  if (TENET_FAULT_POINT("kb/io/load_delta")) {
    return Status::DataLoss("injected fault: delta segment read failed: " +
                            path);
  }
  TENET_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  const std::span<const std::byte> bytes = file.bytes();

  if (bytes.size() < kDeltaHeaderBytes) {
    return Status::InvalidArgument("delta segment " + path +
                                   ": shorter than the header");
  }
  if (std::memcmp(bytes.data(), kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    return Status::InvalidArgument("delta segment " + path +
                                   ": bad magic (not a TENETDELTA1 file)");
  }
  RecordReader header(bytes.data() + sizeof(kDeltaMagic));
  const uint32_t endian = header.Read<uint32_t>();
  if (endian != kDeltaEndianTag) {
    return Status::InvalidArgument("delta segment " + path +
                                   ": endian tag mismatch");
  }
  const uint64_t record_count = header.Read<uint64_t>();
  const uint64_t payload_bytes = header.Read<uint64_t>();
  const uint64_t header_checksum = header.Read<uint64_t>();
  if (header_checksum !=
      Fnv1a64(bytes.data(), kDeltaChecksummedHeaderBytes)) {
    return Status::InvalidArgument("delta segment " + path +
                                   ": header checksum mismatch");
  }
  if (payload_bytes != bytes.size() - kDeltaHeaderBytes) {
    return Status::InvalidArgument(
        "delta segment " + path +
        ": declared payload size disagrees with the file size (truncated "
        "or trailing garbage)");
  }

  DeltaSegment segment;
  segment.path = path;
  segment.records.reserve(record_count);
  const std::byte* cursor = bytes.data() + kDeltaHeaderBytes;
  uint64_t remaining = payload_bytes;
  for (uint64_t i = 0; i < record_count; ++i) {
    if (remaining < kRecordHeaderBytes) {
      return Corrupt(path, i, "truncated record header");
    }
    RecordReader reader(cursor);
    const uint32_t op = reader.Read<uint32_t>();
    const uint32_t payload_len = reader.Read<uint32_t>();
    const uint64_t payload_checksum = reader.Read<uint64_t>();
    if (op < 1 || op > kMaxDeltaOp) {
      return Corrupt(path, i, "unknown op");
    }
    if (payload_len > remaining - kRecordHeaderBytes) {
      return Corrupt(path, i, "record payload overruns the file");
    }
    const std::byte* payload = reader.position();
    if (payload_checksum != Fnv1a64(payload, payload_len)) {
      return Corrupt(path, i, "payload checksum mismatch");
    }
    TENET_ASSIGN_OR_RETURN(DeltaRecord record,
                           DecodeRecord(op, payload, payload_len, path, i));
    segment.records.push_back(std::move(record));
    cursor = payload + payload_len;
    remaining -= kRecordHeaderBytes + payload_len;
  }
  if (remaining != 0) {
    return Status::InvalidArgument("delta segment " + path +
                                   ": trailing bytes after the last record");
  }
  return segment;
}

// ---- ApplyDeltas ----------------------------------------------------------

namespace {

struct PendingEntity {
  std::string label;
  EntityType type;
  int32_t domain;
  double popularity;
};

struct PendingPredicate {
  std::string label;
  int32_t domain;
  double popularity;
};

struct PendingAliasOp {
  ConceptRef ref;
  double weight;
  bool adjust;
};

// One surface's posting list during the rebuild.  `surface` points into
// the base alias index or into the (node-stable) alias-op map — both
// outlive the restore.
struct SurfaceGroup {
  std::string_view surface;
  std::vector<AliasPosting> postings;
  bool touched = false;
};

Status BadRecord(size_t segment, size_t record, const std::string& why) {
  return Status::InvalidArgument("delta apply: segment " +
                                 std::to_string(segment) + " record " +
                                 std::to_string(record) + ": " + why);
}

}  // namespace

Result<AppliedDelta> ApplyDeltas(
    const KnowledgeBase& base,
    const embedding::EmbeddingStore& base_embeddings,
    std::span<const DeltaSegment> segments, ThreadPool* pool) {
  if (TENET_FAULT_POINT("kb/delta/apply")) {
    return Status::DataLoss("injected fault: delta apply aborted");
  }
  if (!base.finalized()) {
    return Status::InvalidArgument("delta apply: base KB is not finalized");
  }
  if (!base_embeddings.finalized()) {
    return Status::InvalidArgument(
        "delta apply: base embedding store is not finalized");
  }
  if (base_embeddings.num_entities() != base.num_entities() ||
      base_embeddings.num_predicates() != base.num_predicates()) {
    return Status::InvalidArgument(
        "delta apply: base KB and embedding store disagree on concept "
        "counts");
  }

  DeltaApplyStats stats;
  const int dim = base_embeddings.dimension();
  int32_t num_entities = base.num_entities();
  int32_t num_predicates = base.num_predicates();

  std::vector<PendingEntity> new_entities;
  std::vector<PendingPredicate> new_predicates;
  // Folded surface -> ordered delta ops.  node-based map: the keys back
  // the string_views the restore entries hold for delta-only surfaces.
  std::unordered_map<std::string, std::vector<PendingAliasOp>> alias_ops;
  std::unordered_set<int32_t> dead_entities;
  std::unordered_set<int32_t> dead_predicates;
  std::vector<Triple> delta_facts;
  std::unordered_map<ConceptRef, std::vector<float>> embedding_overrides;

  // ---- Scan: validate every record against the running id space ----------
  for (size_t s = 0; s < segments.size(); ++s) {
    const DeltaSegment& segment = segments[s];
    for (size_t r = 0; r < segment.records.size(); ++r) {
      const DeltaRecord& record = segment.records[r];
      const bool entity_side =
          record.op == DeltaOp::kAddEntityAlias ||
          record.op == DeltaOp::kAdjustEntityAliasPrior ||
          record.op == DeltaOp::kTombstoneEntity;
      switch (record.op) {
        case DeltaOp::kAddEntity: {
          if (record.text.empty()) {
            return BadRecord(s, r, "entity label is empty");
          }
          if (record.type < 0 || record.type >= kNumEntityTypes) {
            return BadRecord(s, r, "entity type out of range");
          }
          if (record.id >= 0 && record.id != num_entities) {
            return BadRecord(
                s, r,
                "entity id " + std::to_string(record.id) +
                    " does not continue the id space (expected " +
                    std::to_string(num_entities) +
                    "; segment built against a different base?)");
          }
          new_entities.push_back({record.text,
                                  static_cast<EntityType>(record.type),
                                  record.domain, record.weight});
          ++num_entities;
          ++stats.added_entities;
          break;
        }
        case DeltaOp::kAddPredicate: {
          if (record.text.empty()) {
            return BadRecord(s, r, "predicate label is empty");
          }
          if (record.id >= 0 && record.id != num_predicates) {
            return BadRecord(
                s, r,
                "predicate id " + std::to_string(record.id) +
                    " does not continue the id space (expected " +
                    std::to_string(num_predicates) +
                    "; segment built against a different base?)");
          }
          new_predicates.push_back(
              {record.text, record.domain, record.weight});
          ++num_predicates;
          ++stats.added_predicates;
          break;
        }
        case DeltaOp::kAddEntityAlias:
        case DeltaOp::kAddPredicateAlias:
        case DeltaOp::kAdjustEntityAliasPrior:
        case DeltaOp::kAdjustPredicateAliasPrior: {
          const int32_t limit = entity_side ? num_entities : num_predicates;
          if (record.id < 0 || record.id >= limit) {
            return BadRecord(s, r, "alias concept id out of range");
          }
          if (!(record.weight > 0.0)) {
            return BadRecord(s, r, "alias weight must be positive");
          }
          std::string folded = AsciiToLower(record.text);
          if (folded.empty()) break;  // non-indexable surface, as in Add()
          const bool adjust =
              record.op == DeltaOp::kAdjustEntityAliasPrior ||
              record.op == DeltaOp::kAdjustPredicateAliasPrior;
          const ConceptRef ref = entity_side
                                     ? ConceptRef::Entity(record.id)
                                     : ConceptRef::Predicate(record.id);
          alias_ops[std::move(folded)].push_back(
              {ref, record.weight, adjust});
          if (adjust) {
            ++stats.adjusted_priors;
          } else {
            ++stats.added_aliases;
          }
          break;
        }
        case DeltaOp::kTombstoneEntity:
        case DeltaOp::kTombstonePredicate: {
          const int32_t limit = entity_side ? num_entities : num_predicates;
          if (record.id < 0 || record.id >= limit) {
            return BadRecord(s, r, "tombstoned id out of range");
          }
          (entity_side ? dead_entities : dead_predicates).insert(record.id);
          ++stats.tombstones;
          break;
        }
        case DeltaOp::kAddFact: {
          if (record.subject < 0 || record.subject >= num_entities ||
              record.object < 0 || record.object >= num_entities) {
            return BadRecord(s, r, "fact entity id out of range");
          }
          if (record.predicate < 0 || record.predicate >= num_predicates) {
            return BadRecord(s, r, "fact predicate id out of range");
          }
          Triple triple;
          triple.subject = record.subject;
          triple.predicate = record.predicate;
          triple.object_entity = record.object;
          triple.object_is_entity = true;
          delta_facts.push_back(std::move(triple));
          break;
        }
        case DeltaOp::kAddLiteralFact: {
          if (record.subject < 0 || record.subject >= num_entities) {
            return BadRecord(s, r, "fact subject id out of range");
          }
          if (record.predicate < 0 || record.predicate >= num_predicates) {
            return BadRecord(s, r, "fact predicate id out of range");
          }
          Triple triple;
          triple.subject = record.subject;
          triple.predicate = record.predicate;
          triple.object_literal = record.text;
          triple.object_is_entity = false;
          delta_facts.push_back(std::move(triple));
          break;
        }
        case DeltaOp::kSetEmbedding: {
          if (record.ref_kind != 0 && record.ref_kind != 1) {
            return BadRecord(s, r, "embedding concept kind out of range");
          }
          const bool is_entity = record.ref_kind == 0;
          const int32_t limit = is_entity ? num_entities : num_predicates;
          if (record.id < 0 || record.id >= limit) {
            return BadRecord(s, r, "embedding concept id out of range");
          }
          if (static_cast<int>(record.embedding.size()) != dim) {
            return BadRecord(
                s, r,
                "embedding has " + std::to_string(record.embedding.size()) +
                    " dims, store has " + std::to_string(dim));
          }
          for (float v : record.embedding) {
            if (!std::isfinite(v)) {
              return BadRecord(s, r, "embedding contains a non-finite value");
            }
          }
          const ConceptRef ref = is_entity
                                     ? ConceptRef::Entity(record.id)
                                     : ConceptRef::Predicate(record.id);
          embedding_overrides[ref] = record.embedding;  // last write wins
          ++stats.set_embeddings;
          break;
        }
      }
    }
  }

  // ---- Concept records ----------------------------------------------------
  KnowledgeBase kb;
  kb.Reserve(num_entities, num_predicates,
             base.num_facts() + static_cast<int32_t>(delta_facts.size()));
  // register_label_alias=false throughout: every posting — base and delta —
  // flows through the single restore below, so the label aliases are
  // already in the lists.
  for (int32_t i = 0; i < base.num_entities(); ++i) {
    const EntityRecord& e = base.entity(i);
    kb.AddEntity(e.label, e.type, e.domain, e.popularity,
                 /*register_label_alias=*/false);
  }
  for (const PendingEntity& e : new_entities) {
    kb.AddEntity(e.label, e.type, e.domain, e.popularity,
                 /*register_label_alias=*/false);
  }
  for (int32_t i = 0; i < base.num_predicates(); ++i) {
    const PredicateRecord& p = base.predicate(i);
    kb.AddPredicate(p.label, p.domain, p.popularity,
                    /*register_label_alias=*/false);
  }
  for (const PendingPredicate& p : new_predicates) {
    kb.AddPredicate(p.label, p.domain, p.popularity,
                    /*register_label_alias=*/false);
  }

  // ---- Facts: tombstones win over any add, anywhere in the chain ----------
  const auto fact_is_dead = [&](const Triple& t) {
    if (dead_entities.count(t.subject) != 0) return true;
    if (dead_predicates.count(t.predicate) != 0) return true;
    return t.object_is_entity && dead_entities.count(t.object_entity) != 0;
  };
  const auto add_fact = [&kb](const Triple& t) {
    return t.object_is_entity
               ? kb.AddFact(t.subject, t.predicate, t.object_entity)
               : kb.AddLiteralFact(t.subject, t.predicate, t.object_literal);
  };
  for (const Triple& t : base.facts()) {
    if (fact_is_dead(t)) {
      ++stats.dropped_facts;
      continue;
    }
    Status status = add_fact(t);
    if (!status.ok()) return status;
  }
  for (const Triple& t : delta_facts) {
    if (fact_is_dead(t)) {
      ++stats.dropped_facts;
      continue;
    }
    Status status = add_fact(t);
    if (!status.ok()) return status;
    ++stats.added_facts;
  }

  // ---- Alias index: bit-exact passthrough, recompute only the touched -----
  std::vector<SurfaceGroup> groups;
  groups.reserve(base.alias_index().num_surfaces() + alias_ops.size());
  std::unordered_map<std::string_view, size_t> group_of;
  group_of.reserve(groups.capacity());
  base.alias_index().VisitPostings(
      [&](std::string_view surface, const AliasPosting& posting) {
        auto [it, inserted] = group_of.emplace(surface, groups.size());
        if (inserted) groups.push_back({surface, {}, false});
        groups[it->second].postings.push_back(posting);
      });

  for (const auto& [surface, ops] : alias_ops) {
    const std::string_view view = surface;  // node-stable key
    auto [it, inserted] = group_of.emplace(view, groups.size());
    if (inserted) groups.push_back({view, {}, false});
    SurfaceGroup& group = groups[it->second];
    group.touched = true;
    for (const PendingAliasOp& op : ops) {
      auto posting = std::find_if(
          group.postings.begin(), group.postings.end(),
          [&op](const AliasPosting& p) { return p.concept_ref == op.ref; });
      if (op.adjust) {
        if (posting == group.postings.end()) {
          return Status::InvalidArgument(
              "delta apply: prior adjustment for surface \"" + surface +
              "\" names concept " + ConceptRefToString(op.ref) +
              ", which has no posting there");
        }
        posting->prior = op.weight;
      } else if (posting != group.postings.end()) {
        posting->prior += op.weight;  // duplicates accumulate, as in Add()
      } else {
        group.postings.push_back({op.ref, op.weight});
      }
    }
  }

  if (!dead_entities.empty() || !dead_predicates.empty()) {
    for (SurfaceGroup& group : groups) {
      const auto posting_is_dead = [&](const AliasPosting& p) {
        return p.concept_ref.is_entity()
                   ? dead_entities.count(p.concept_ref.id) != 0
                   : dead_predicates.count(p.concept_ref.id) != 0;
      };
      const size_t before = group.postings.size();
      group.postings.erase(std::remove_if(group.postings.begin(),
                                          group.postings.end(),
                                          posting_is_dead),
                           group.postings.end());
      if (group.postings.size() != before) group.touched = true;
    }
  }

  // Touched surfaces renormalize over the composed weights — the base's
  // finalized priors count as the existing weights — exactly the way
  // FinalizeShard would: per-kind totals, divide, descending stable sort.
  // Untouched surfaces pass through with their priors bit-exact.
  size_t total_postings = 0;
  for (SurfaceGroup& group : groups) {
    if (group.touched && !group.postings.empty()) {
      double entity_total = 0.0;
      double predicate_total = 0.0;
      for (const AliasPosting& p : group.postings) {
        (p.concept_ref.is_entity() ? entity_total : predicate_total) +=
            p.prior;
      }
      for (AliasPosting& p : group.postings) {
        const double total =
            p.concept_ref.is_entity() ? entity_total : predicate_total;
        p.prior = total > 0.0 ? p.prior / total : 0.0;
      }
      std::stable_sort(group.postings.begin(), group.postings.end(),
                       [](const AliasPosting& a, const AliasPosting& b) {
                         return a.prior > b.prior;
                       });
      ++stats.touched_surfaces;
    }
    total_postings += group.postings.size();
  }

  std::vector<AliasIndex::RestoreEntry> entries;
  entries.reserve(total_postings);
  for (const SurfaceGroup& group : groups) {
    for (const AliasPosting& posting : group.postings) {
      entries.push_back({group.surface, posting});
    }
  }
  kb.RestoreAliasPostings(entries, pool);
  KnowledgeBase::FinalizeOptions finalize;
  finalize.alias_mode = AliasIndex::FinalizeMode::kRestorePriors;
  finalize.pool = pool;
  kb.Finalize(finalize);

  // ---- Embeddings: base rows copied, delta rows zero unless set -----------
  embedding::EmbeddingStore store(dim, num_entities, num_predicates);
  const auto copy_row = [&](ConceptRef ref) {
    const std::span<const float> src = base_embeddings.Vector(ref);
    const std::span<float> dst = store.MutableVector(ref);
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
  };
  for (int32_t i = 0; i < base.num_entities(); ++i) {
    copy_row(ConceptRef::Entity(i));
  }
  for (int32_t i = 0; i < base.num_predicates(); ++i) {
    copy_row(ConceptRef::Predicate(i));
  }
  for (const auto& [ref, row] : embedding_overrides) {
    const std::span<float> dst = store.MutableVector(ref);
    std::memcpy(dst.data(), row.data(), row.size() * sizeof(float));
  }
  store.Finalize();

  return AppliedDelta{std::move(kb), std::move(store), stats};
}

}  // namespace kb
}  // namespace tenet
