#ifndef TENET_KB_SHARDED_KB_H_
#define TENET_KB_SHARDED_KB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "embedding/embedding_store.h"
#include "kb/io.h"
#include "kb/kb_view.h"

namespace tenet {

class ThreadPool;

namespace obs {
class Counter;
class Histogram;
}  // namespace obs

namespace kb {

// Hash-partitioned KB substrate: N independent shards, each owning its own
// alias index, record arrays, CSR fact arenas, and embedding matrix — the
// local-process stand-in for sphinx-neo's distributed agent/source split,
// and the unit a multi-process backend would route on.  See DESIGN.md §14.
//
// Layout (strided by concept id): concept c is homed on shard c % N at
// local index c / N, for entities and predicates independently.  Alias
// postings live on the home shard of their *concept* (each posting exactly
// once); facts are *replicated* to the home shard of every participating
// concept (subject, entity object, predicate — at most 3 copies), so every
// per-concept fact sequence is complete on the concept's home shard, in
// ascending global fact id order, and reads never cross shards.
//
// Determinism: per-shard posting sublists preserve the canonical order
// (CanonicalPostingOrder, a total order), so the scatter/gather lookup
// merges them back into exactly the flat substrate's list; candidate
// post-processing then runs the shared SelectCandidates sequence.  PRF,
// degradation counts and coherence edge lists are byte-identical to a flat
// load of the same KB at any shard count — kb_shard_test.cc pins this.
//
// Failure model: each per-shard lookup probes the "kb/shard" fault point.
// A fired shard contributes nothing to that lookup (its candidates are
// simply missing — the request degrades exactly like an alias-index miss)
// and is counted in tenet_kb_shard_degraded_lookups_total; the request
// itself never fails.  Per-shard latency and mapped bytes are published as
// tenet_kb_shard_lookup_ms{shard=} / tenet_kb_shard_bytes_mapped{shard=}.
class ShardedKb final : public KbView {
 public:
  // One hash-partition.  Public so the snapshot loader (kb/io.cc) and the
  // partitioner can assemble shards; treat as read-only afterwards.
  struct Shard {
    // Local records: global id = local_index * num_shards + shard_index.
    std::vector<EntityRecord> entities;
    std::vector<PredicateRecord> predicates;
    /// Postings hold GLOBAL ConceptRefs with globally-finalized priors,
    /// restored via FinalizeMode::kRestorePriors.
    AliasIndex alias_index;
    /// Replicated facts (global concept ids), ascending global fact id.
    std::vector<Triple> facts;
    /// Global fact id of each facts[] slot (parallel array).
    std::vector<int64_t> fact_ids;
    // CSR over *local* concept index -> positions into facts, built by
    // BuildShardIndexes; mirrors KnowledgeBase::Finalize exactly.
    std::vector<int32_t> entity_fact_pos;
    std::vector<uint32_t> entity_fact_offsets;
    std::vector<int32_t> predicate_fact_pos;
    std::vector<uint32_t> predicate_fact_offsets;
    /// Local embedding rows (same stride mapping), finalized.
    std::unique_ptr<embedding::EmbeddingStore> embeddings;
    /// Bytes served zero-copy from this shard's mapped snapshot (0 for
    /// heap-built shards).
    uint64_t mapped_bytes = 0;
    /// Wall time Load() spent materializing this shard (snapshot +
    /// embeddings), in ms; 0 for heap-built shards.  Shard loads are
    /// independent, so max(load_ms) + the loader's serial prologue is the
    /// critical path a parallel loader would pay — bench/kb_load reports
    /// it next to the measured serial wall time.
    double load_ms = 0.0;
  };

  /// Assembles a sharded KB from fully-built shards (used by Partition and
  /// the snapshot loader).  The global counts are the flat substrate's.
  ShardedKb(std::vector<Shard> shards, int32_t num_entities,
            int32_t num_predicates, int64_t num_facts);

  /// Partitions a finalized flat substrate into `num_shards` hash shards
  /// (in memory; Save() persists the layout).
  static ShardedKb Partition(const KnowledgeBase& kb,
                             const embedding::EmbeddingStore& embeddings,
                             int num_shards);

  /// Builds one shard's CSR arenas from its replicated fact array — the
  /// per-shard analogue of KnowledgeBase::Finalize's counted two-pass.
  static void BuildShardIndexes(Shard& shard, int num_shards,
                                int shard_index);

  /// Persists the layout: one TENETKB2 snapshot (with a shard_info
  /// section) + one TENETEMB1 matrix per shard, plus a "TENETKBSHARDS1"
  /// manifest at `manifest_path` naming them.  Implemented in kb/io.cc.
  Status Save(const std::string& manifest_path) const;

  /// Loads a layout written by Save().  Each shard's snapshot is mmap'd on
  /// demand and validated independently; per-shard load latency and mapped
  /// bytes are published under the shard metrics.  Implemented in
  /// kb/io.cc.
  static Result<ShardedKb> Load(const std::string& manifest_path,
                                const KbLoadOptions& options = {});

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const Shard& shard(int i) const { return shards_[i]; }

  /// Optional scatter pool for per-shard lookups.  Serial (inline) when
  /// null — the default.  MUST NOT be the serving layer's worker pool: a
  /// lookup running *on* a pool worker that fans out to the same pool and
  /// blocks on the results can deadlock once every worker is blocked
  /// waiting on helper tasks queued behind other blocked lookups.  Give the
  /// sharded KB its own small pool (or none).
  void set_lookup_pool(ThreadPool* pool) { lookup_pool_ = pool; }

  // ---- KbView ------------------------------------------------------------

  int32_t num_entities() const override { return num_entities_; }
  int32_t num_predicates() const override { return num_predicates_; }
  int64_t num_facts() const override { return num_facts_; }

  const EntityRecord& entity(EntityId id) const override;
  const PredicateRecord& predicate(PredicateId id) const override;

  std::vector<EntityCandidate> CandidateEntities(
      std::string_view surface, std::optional<EntityType> type,
      int max_candidates, int* overflow = nullptr) const override;
  std::vector<PredicateCandidate> CandidatePredicates(
      std::string_view surface, int max_candidates,
      int* overflow = nullptr) const override;

  void VisitFactsOfEntity(EntityId id,
                          const FactVisitor& visitor) const override;
  void VisitFactsOfPredicate(PredicateId id,
                             const FactVisitor& visitor) const override;
  std::vector<EntityId> NeighborEntities(EntityId id) const override;

  int dimension() const override { return dimension_; }
  double Cosine(ConceptRef a, ConceptRef b) const override;
  void GatherUnit(std::span<const ConceptRef> refs,
                  double* out) const override;

  void VisitAliasPostings(const PostingVisitor& visitor) const override;

 private:
  /// Scatter/gather: per-shard alias lookups (each behind the "kb/shard"
  /// fault point), merged back into the canonical global posting order.
  std::vector<AliasPosting> ScatterLookup(std::string_view surface,
                                          ConceptRef::Kind kind) const;

  std::vector<Shard> shards_;
  int32_t num_entities_ = 0;
  int32_t num_predicates_ = 0;
  int64_t num_facts_ = 0;
  int dimension_ = 0;
  ThreadPool* lookup_pool_ = nullptr;

  // Cached metric handles (find-or-create once, lock-free afterwards).
  std::vector<obs::Histogram*> shard_lookup_ms_;
  obs::Counter* degraded_lookups_ = nullptr;
  obs::DependencyOpCounters shard_ops_;
  obs::DependencyOpCounters embedding_ops_;
};

}  // namespace kb
}  // namespace tenet

#endif  // TENET_KB_SHARDED_KB_H_
