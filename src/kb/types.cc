#include "kb/types.h"

namespace tenet {
namespace kb {

std::string_view EntityTypeToString(EntityType type) {
  switch (type) {
    case EntityType::kPerson:
      return "person";
    case EntityType::kOrganization:
      return "organization";
    case EntityType::kLocation:
      return "location";
    case EntityType::kWork:
      return "work";
    case EntityType::kTopic:
      return "topic";
    case EntityType::kEvent:
      return "event";
    case EntityType::kProduct:
      return "product";
    case EntityType::kOther:
      return "other";
  }
  return "unknown";
}

std::string ConceptRefToString(const ConceptRef& ref) {
  std::string out(ref.is_entity() ? "E" : "P");
  out += std::to_string(ref.id);
  return out;
}

}  // namespace kb
}  // namespace tenet
