#ifndef TENET_KB_IO_H_
#define TENET_KB_IO_H_

#include <string>

#include "common/result.h"
#include "embedding/embedding_store.h"
#include "kb/knowledge_base.h"
#include "text/gazetteer.h"

namespace tenet {
namespace kb {

// Serialization of the knowledge base and the embedding store — the
// counterpart of the paper's offline preprocessing (indexing the Wikidata
// JSON dump, storing PBG vectors in a memory-mapped array): build the
// substrates once, persist them, and reload in O(size of file).
//
// Format: a line-oriented text container ("TENETKB v1") for the KB —
// entities, predicates, aliases with weights, and facts — and a small
// binary container ("TENETEMB1") for the embeddings.  Both formats are
// versioned and validated on load; Load* never aborts on malformed input,
// it returns InvalidArgument.

/// Writes `kb` (which must be finalized) to `path`.  Alias priors are
/// persisted as the original weights, so a reloaded KB reproduces the
/// exact candidate distributions.
Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path);

/// Reads a KB written by SaveKnowledgeBase and finalizes it.
Result<KnowledgeBase> LoadKnowledgeBase(const std::string& path);

/// Writes the embedding store (finalized) to `path` (binary).
Status SaveEmbeddings(const embedding::EmbeddingStore& store,
                      const std::string& path);

/// Reads embeddings written by SaveEmbeddings and finalizes the store.
Result<embedding::EmbeddingStore> LoadEmbeddings(const std::string& path);

/// Derives an NER gazetteer from a (finalized) KB: every alias surface is
/// registered under the type of its most probable entity sense; surfaces
/// that start lowercase are marked spottable in lowercase text.  This is
/// how a loaded KB becomes usable by the extraction pipeline without
/// persisting the gazetteer separately.
text::Gazetteer DeriveGazetteer(const KnowledgeBase& kb);

}  // namespace kb
}  // namespace tenet

#endif  // TENET_KB_IO_H_
