#ifndef TENET_KB_IO_H_
#define TENET_KB_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "embedding/embedding_store.h"
#include "kb/knowledge_base.h"
#include "text/gazetteer.h"

namespace tenet {

class ThreadPool;

namespace kb {

// Serialization of the knowledge base and the embedding store — the
// counterpart of the paper's offline preprocessing (indexing the Wikidata
// JSON dump, storing PBG vectors in a memory-mapped array): build the
// substrates once, persist them, and reload in O(size of file).
//
// Two KB formats are supported (DESIGN.md §11):
//  - "TENETKB2": the binary snapshot — length-prefixed sections (string
//    table, entities, predicates, alias postings, facts) behind a
//    checksummed header, loaded zero-copy through common/mmap_file (with a
//    buffered fallback) and restored without re-tokenizing a single float.
//    This is the production format and the default for saves.
//  - "TENETKB v1": the legacy line-oriented text container, still loaded
//    transparently (LoadKnowledgeBase auto-detects by magic) and still
//    writable for debugging/diffing.
// Embeddings persist as the "TENETEMB1" binary container either way; the
// loader maps it and bulk-loads the matrix straight into the store's
// unit-normalized form (EmbeddingStore::LoadMatrix — one copy, no per-row
// reads).
//
// Round-trip contract: alias priors are persisted as the *finalized*
// probabilities with max_digits10 precision and restored bit-exactly
// (AliasIndex::FinalizeMode::kRestorePriors) — a save→load cycle reproduces
// candidate distributions to the last bit, so near-tie disambiguation never
// flips across a restart.  All loaders validate declared counts and section
// lengths against the actual bytes before anything is returned; malformed
// or truncated input yields InvalidArgument (DataLoss for non-finite
// embedding payloads), never a crash, never a partially populated store.

/// On-disk format selector for SaveKnowledgeBase.
enum class KbFormat {
  kTextV1,    // "TENETKB v1" line-oriented text
  kBinaryV2,  // "TENETKB2" binary snapshot (default)
};

/// Knobs of the load path.
struct KbLoadOptions {
  /// Map binary snapshots zero-copy when the platform allows it; false
  /// forces the buffered (streamed-read) path.
  bool prefer_mmap = true;
  /// Builds the alias-index shards in parallel when non-null.
  ThreadPool* pool = nullptr;
};

/// Writes `kb` (which must be finalized) to `path` in `format`.  Alias
/// priors are persisted as the finalized probabilities, so a reloaded KB
/// reproduces the exact candidate distributions.
Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path,
                         KbFormat format = KbFormat::kBinaryV2);

/// Reads a KB written by SaveKnowledgeBase — either format, auto-detected
/// by magic — and finalizes it in prior-restoring mode.
Result<KnowledgeBase> LoadKnowledgeBase(const std::string& path,
                                        const KbLoadOptions& options = {});

/// Writes the embedding store (finalized) to `path` (binary "TENETEMB1").
Status SaveEmbeddings(const embedding::EmbeddingStore& store,
                      const std::string& path);

/// Reads embeddings written by SaveEmbeddings and finalizes the store.
Result<embedding::EmbeddingStore> LoadEmbeddings(
    const std::string& path, const KbLoadOptions& options = {});

// Snapshot introspection for `tenet_cli kb inspect` and tests: format,
// logical counts, and (for binary snapshots) the section table.
struct KbSectionInfo {
  std::string name;
  uint64_t bytes = 0;
  uint64_t items = 0;
};

struct KbFileInfo {
  std::string format;  // "TENETKB v1", "TENETKB2" or "TENETKBSHARDS1"
  uint64_t file_bytes = 0;
  int64_t entities = 0;
  int64_t predicates = 0;
  int64_t aliases = 0;
  int64_t facts = 0;
  std::vector<KbSectionInfo> sections;  // binary snapshots only
  /// Sharded-layout metadata: >0 when the file is one shard of a sharded
  /// KB (a TENETKB2 snapshot carrying a shard_info section) or a
  /// "TENETKBSHARDS1" manifest.  0 for ordinary flat snapshots.
  int32_t num_shards = 0;
  /// Which shard this snapshot is (-1 for manifests and flat snapshots).
  int32_t shard_index = -1;
  /// Per-shard stats, populated when inspecting a manifest.
  std::vector<KbFileInfo> shards;
};

/// Reads only the metadata of a KB file (any format, including a
/// "TENETKBSHARDS1" manifest, for which per-shard stats are gathered).
/// Validates the same header/section invariants as the loader without
/// materializing the KB.
Result<KbFileInfo> InspectKnowledgeBaseFile(const std::string& path);

struct EmbFileInfo {
  uint64_t file_bytes = 0;
  int32_t dimension = 0;
  int32_t entities = 0;
  int32_t predicates = 0;
};

/// Reads only the header of a TENETEMB1 file and validates its size.
Result<EmbFileInfo> InspectEmbeddingsFile(const std::string& path);

/// Derives an NER gazetteer from a (finalized) KB: every alias surface is
/// registered under the type of its most probable entity sense (ties
/// broken toward the smaller entity id, so the result is independent of
/// posting visitation order); surfaces that start lowercase are marked
/// spottable in lowercase text.  This is how a loaded KB becomes usable by
/// the extraction pipeline without persisting the gazetteer separately.
text::Gazetteer DeriveGazetteer(const KnowledgeBase& kb);

class KbView;

/// Substrate-agnostic overload: same derivation over any KbView (flat or
/// sharded), yielding an identical gazetteer for the same logical KB.
text::Gazetteer DeriveGazetteer(const KbView& view);

}  // namespace kb
}  // namespace tenet

#endif  // TENET_KB_IO_H_
