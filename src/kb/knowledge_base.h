#ifndef TENET_KB_KNOWLEDGE_BASE_H_
#define TENET_KB_KNOWLEDGE_BASE_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "kb/alias_index.h"
#include "kb/types.h"

namespace tenet {
namespace kb {

// Stored attributes of an entity (Definition 1: subject/object concepts).
struct EntityRecord {
  std::string label;
  EntityType type = EntityType::kOther;
  /// Topical cluster the entity belongs to; drives synthetic embeddings and
  /// fact locality.  Real KBs have no explicit domain — treat as opaque.
  int32_t domain = 0;
  /// Relative popularity (page-view-like weight); feeds alias priors.
  double popularity = 1.0;
};

// Stored attributes of a predicate (Definition 1).
struct PredicateRecord {
  std::string label;
  int32_t domain = 0;
  double popularity = 1.0;
};

// One fact triple (subject, predicate, object); the object is either an
// entity or a literal (Definition 1).
struct Triple {
  EntityId subject = kInvalidEntity;
  PredicateId predicate = kInvalidPredicate;
  EntityId object_entity = kInvalidEntity;  // valid iff object_is_entity
  std::string object_literal;               // used iff !object_is_entity
  bool object_is_entity = true;
};

// A scored candidate returned by candidate generation (Sec. 3, Steps 1-2).
struct EntityCandidate {
  EntityId entity = kInvalidEntity;
  double prior = 0.0;  // P(e | noun phrase), Equation 1
};

struct PredicateCandidate {
  PredicateId predicate = kInvalidPredicate;
  double prior = 0.0;  // P(p | relational phrase), Equation 2
};

// An in-memory triple store with a case-insensitive alias index — the
// substrate standing in for the paper's Wikidata dump + Solr index.
//
// Build phase: Add* methods, then Finalize() exactly once.  Query phase:
// the Candidate*/facts/neighbor accessors.  The class is immutable after
// Finalize() and safe for concurrent reads.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  // ---- Build phase -------------------------------------------------------

  /// Adds an entity; its label is automatically registered as an alias
  /// weighted by `popularity` unless `register_label_alias` is false
  /// (used by deserialization, which restores the exact posting set).
  EntityId AddEntity(std::string_view label, EntityType type,
                     int32_t domain = 0, double popularity = 1.0,
                     bool register_label_alias = true);

  /// Adds a predicate; its label is automatically registered as an alias
  /// unless `register_label_alias` is false.
  PredicateId AddPredicate(std::string_view label, int32_t domain = 0,
                           double popularity = 1.0,
                           bool register_label_alias = true);

  /// Registers an extra surface form.  `weight` defaults to the concept's
  /// popularity when <= 0.
  void AddEntityAlias(EntityId id, std::string_view surface,
                      double weight = 0.0);
  void AddPredicateAlias(PredicateId id, std::string_view surface,
                         double weight = 0.0);

  /// Pre-sizes the entity/predicate/fact storage.  The deserialization
  /// path knows the exact counts up front; anything else may skip this.
  void Reserve(int32_t num_entities, int32_t num_predicates,
               int32_t num_facts);

  /// Deserialization fast path: bulk-inserts decoded posting lists into
  /// the alias index, sharded in parallel on `pool` when given (see
  /// AliasIndex::RestorePostings).  Caller validates the concept ids.
  void RestoreAliasPostings(std::span<const AliasIndex::RestoreEntry> entries,
                            ThreadPool* pool = nullptr);

  /// Adds the fact (subject, predicate, object_entity).
  Status AddFact(EntityId subject, PredicateId predicate,
                 EntityId object_entity);
  /// Adds the fact (subject, predicate, "literal").
  Status AddLiteralFact(EntityId subject, PredicateId predicate,
                        std::string_view literal);

  // How Finalize treats the registered alias weights; see
  // AliasIndex::FinalizeMode for why deserialization must restore rather
  // than renormalize.
  struct FinalizeOptions {
    AliasIndex::FinalizeMode alias_mode =
        AliasIndex::FinalizeMode::kNormalizeWeights;
    /// Builds the alias-index shards in parallel when non-null.
    ThreadPool* pool = nullptr;
  };

  /// Freezes the KB: normalizes alias priors, builds adjacency.  Must be
  /// called exactly once before any query.
  void Finalize() { Finalize(FinalizeOptions{}); }
  void Finalize(const FinalizeOptions& options);
  bool finalized() const { return finalized_; }

  // ---- Query phase -------------------------------------------------------

  int32_t num_entities() const {
    return static_cast<int32_t>(entities_.size());
  }
  int32_t num_predicates() const {
    return static_cast<int32_t>(predicates_.size());
  }
  int32_t num_facts() const { return static_cast<int32_t>(facts_.size()); }

  const EntityRecord& entity(EntityId id) const;
  const PredicateRecord& predicate(PredicateId id) const;
  const std::vector<Triple>& facts() const { return facts_; }

  /// Candidate entities whose alias matches `surface` (case-insensitive)
  /// and whose type matches `type` when given (Sec. 3, Step 1).  At most
  /// `max_candidates` results, by descending prior; priors are renormalized
  /// over the returned set so they remain a distribution after type
  /// filtering and truncation.  When `overflow` is non-null it receives the
  /// number of matching candidates *beyond* the cap — the hostile-input
  /// guardrails count these into tenet_input_truncated_total{candidates}
  /// without changing which candidates are returned or how their priors
  /// renormalize (the clean path stays bit-identical).
  std::vector<EntityCandidate> CandidateEntities(
      std::string_view surface, std::optional<EntityType> type,
      int max_candidates, int* overflow = nullptr) const;

  /// Candidate predicates for a (lemmatized) relational phrase
  /// (Sec. 3, Step 2).  `overflow` as in CandidateEntities.
  std::vector<PredicateCandidate> CandidatePredicates(
      std::string_view surface, int max_candidates,
      int* overflow = nullptr) const;

  /// Indices into facts() where `id` appears as subject or object.  The
  /// span points into a flat CSR arena owned by the KB, valid as long as
  /// the KB lives.
  std::span<const int32_t> FactsOfEntity(EntityId id) const;
  /// Indices into facts() using predicate `id`.
  std::span<const int32_t> FactsOfPredicate(PredicateId id) const;

  /// Distinct entities adjacent to `id` through any fact.
  std::vector<EntityId> NeighborEntities(EntityId id) const;

  const AliasIndex& alias_index() const { return alias_index_; }

 private:
  std::vector<EntityRecord> entities_;
  std::vector<PredicateRecord> predicates_;
  std::vector<Triple> facts_;
  AliasIndex alias_index_;
  // Adjacency in CSR form: ids_[offsets_[i] .. offsets_[i + 1]) are the
  // fact indices of concept i.  Two allocations total instead of one
  // vector per concept — the difference between reconstructing a snapshot
  // in linear time and drowning in small mallocs.
  std::vector<int32_t> entity_fact_ids_;
  std::vector<uint32_t> entity_fact_offsets_;
  std::vector<int32_t> predicate_fact_ids_;
  std::vector<uint32_t> predicate_fact_offsets_;
  bool finalized_ = false;
};

}  // namespace kb
}  // namespace tenet

#endif  // TENET_KB_KNOWLEDGE_BASE_H_
