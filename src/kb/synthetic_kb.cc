#include "kb/synthetic_kb.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/wordlists.h"

namespace tenet {
namespace kb {
namespace {

// Sampling profile of entity types within a domain.
EntityType SampleEntityType(Rng& rng) {
  double u = rng.NextDouble();
  if (u < 0.34) return EntityType::kPerson;
  if (u < 0.50) return EntityType::kOrganization;
  if (u < 0.66) return EntityType::kLocation;
  if (u < 0.76) return EntityType::kWork;
  if (u < 0.86) return EntityType::kTopic;
  if (u < 0.92) return EntityType::kEvent;
  if (u < 0.97) return EntityType::kProduct;
  return EntityType::kOther;
}

std::string Pick(const std::vector<std::string_view>& pool, Rng& rng) {
  TENET_CHECK(!pool.empty());
  return std::string(pool[rng.NextUint64(pool.size())]);
}

// Generates a fresh label of the given type, retrying / numbering until it
// is unique within `used`.
std::string MakeLabel(EntityType type, Rng& rng,
                      std::unordered_set<std::string>& used) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::string label;
    switch (type) {
      case EntityType::kPerson:
        label = Pick(text::PersonFirstNames(), rng) + " " +
                Pick(text::PersonLastNames(), rng);
        break;
      case EntityType::kOrganization:
        label = Pick(text::OrganizationHeads(), rng) + " " +
                Pick(text::OrganizationSuffixes(), rng);
        break;
      case EntityType::kLocation:
        label = Pick(text::LocationNames(), rng);
        if (rng.NextBool(0.4)) {
          label += " " + Pick(text::LocationSuffixes(), rng);
        }
        break;
      case EntityType::kWork:
        label = "The " + Pick(text::WorkHeadNouns(), rng);
        break;
      case EntityType::kTopic:
        label = Pick(text::TopicAdjectives(), rng) + " " +
                Pick(text::TopicNouns(), rng);
        break;
      case EntityType::kEvent:
        label = Pick(text::LocationNames(), rng) + " " +
                Pick(text::EventHeads(), rng);
        break;
      case EntityType::kProduct:
        label = Pick(text::ProductHeads(), rng) + " " +
                std::to_string(1 + rng.NextUint64(99));
        break;
      case EntityType::kOther:
        label = Pick(text::OrganizationHeads(), rng) + " " +
                Pick(text::WorkHeadNouns(), rng);
        break;
    }
    if (used.insert(label).second) return label;
    // On collision, try a numbered variant once in a while.
    if (attempt > 16) {
      std::string numbered =
          label + " " + std::to_string(2 + rng.NextUint64(97));
      if (used.insert(numbered).second) return numbered;
    }
  }
  // Guaranteed-unique fallback.
  std::string fallback = "Entity " + std::to_string(used.size());
  used.insert(fallback);
  return fallback;
}

std::string LastWord(const std::string& s) {
  size_t pos = s.rfind(' ');
  return pos == std::string::npos ? s : s.substr(pos + 1);
}

}  // namespace

SyntheticKbOptions SyntheticKbOptions::Huge() {
  SyntheticKbOptions options;
  options.num_domains = 64;
  options.entities_per_domain = 900;
  options.composite_entities_per_domain = 12;
  options.num_predicates = 512;
  return options;
}

SyntheticKb SyntheticKbGenerator::Generate(Rng& rng) const {
  SyntheticKb world;
  const SyntheticKbOptions& opt = options_;
  TENET_CHECK_GT(opt.num_domains, 0);
  TENET_CHECK_GT(opt.entities_per_domain, 0);
  TENET_CHECK_GT(opt.num_predicates, 0);

  world.entities_by_domain.resize(opt.num_domains);
  world.composites_by_domain.resize(opt.num_domains);
  world.predicates_by_domain.resize(opt.num_domains);
  std::unordered_set<std::string> used_labels;

  // ---- Plain entities -----------------------------------------------------
  for (int32_t d = 0; d < opt.num_domains; ++d) {
    for (int i = 0; i < opt.entities_per_domain; ++i) {
      EntityType type = SampleEntityType(rng);
      std::string label = MakeLabel(type, rng, used_labels);
      // Zipf-like popularity by within-domain rank.
      double popularity =
          1.0 / std::pow(static_cast<double>(i + 1), opt.popularity_zipf);
      EntityId id = world.kb.AddEntity(label, type, d, popularity);
      world.entities_by_domain[d].push_back(id);
      world.entity_surfaces.push_back({label});
    }
  }

  // ---- Composite entities (canopy fodder) --------------------------------
  for (int32_t d = 0; d < opt.num_domains; ++d) {
    // Snapshot the plain entities: composites never nest, keeping labels at
    // one connector each.
    const std::vector<EntityId> domain_entities =
        world.entities_by_domain[d];
    for (int i = 0; i < opt.composite_entities_per_domain; ++i) {
      // Component A: an existing work/plain label; component B: an existing
      // entity label from the same domain.
      EntityId part_a = rng.Pick(domain_entities);
      EntityId part_b = rng.Pick(domain_entities);
      if (part_a == part_b) continue;
      const std::string& label_a = world.kb.entity(part_a).label;
      const std::string& label_b = world.kb.entity(part_b).label;
      std::string connector;
      double u = rng.NextDouble();
      EntityType type = EntityType::kWork;
      if (u < 0.4) {
        connector = " of ";
      } else if (u < 0.65) {
        connector = " on the ";
      } else if (u < 0.8) {
        connector = " and ";
      } else if (u < 0.9) {
        connector = ": ";
      } else {
        connector = " " + std::to_string(2 + rng.NextUint64(30)) + " ";
        type = EntityType::kEvent;
      }
      std::string label = label_a + connector + label_b;
      if (!used_labels.insert(label).second) continue;
      double popularity = 0.8 + rng.NextDouble(0.0, 0.6);
      EntityId id = world.kb.AddEntity(label, type, d, popularity);
      world.entities_by_domain[d].push_back(id);
      world.composites_by_domain[d].push_back(id);
      world.entity_surfaces.push_back({label});
    }
  }

  // ---- Extra aliases ------------------------------------------------------
  const int32_t num_entities = world.kb.num_entities();
  for (EntityId id = 0; id < num_entities; ++id) {
    const EntityRecord& rec = world.kb.entity(id);
    // Persons: bare last name alias (natural surname ambiguity).
    if (rec.type == EntityType::kPerson &&
        rng.NextBool(opt.short_alias_fraction)) {
      std::string last = LastWord(rec.label);
      world.kb.AddEntityAlias(id, last, rec.popularity * 0.5);
      world.entity_surfaces[id].push_back(last);
    }
    // Cross-entity ambiguous aliases: this entity is also known by another
    // entity's name (same type, usually a different domain).  A second,
    // weaker alias is drawn with half probability so some surfaces carry
    // 3-4 senses (the regime of Figure 6(d)).
    int alias_draws = (rng.NextBool(opt.ambiguous_alias_fraction) ? 1 : 0) +
                      (rng.NextBool(opt.ambiguous_alias_fraction / 5) ? 1 : 0);
    for (int draw = 0; draw < alias_draws; ++draw) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        EntityId other = static_cast<EntityId>(rng.NextUint64(num_entities));
        const EntityRecord& other_rec = world.kb.entity(other);
        if (other == id || other_rec.type != rec.type) continue;
        // Only short plain labels become shared surfaces; long composite
        // titles are rarely ambiguous in real KBs.
        if (std::count(other_rec.label.begin(), other_rec.label.end(), ' ') >
            2) {
          continue;
        }
        world.kb.AddEntityAlias(id, other_rec.label,
                                rec.popularity * (draw == 0 ? 0.7 : 0.35));
        world.entity_surfaces[id].push_back(other_rec.label);
        break;
      }
    }
  }

  // ---- Predicates ---------------------------------------------------------
  const std::vector<std::string_view>& verb_pool =
      text::PredicateVerbLemmas();
  std::unordered_set<std::string> used_predicate_labels;
  for (int i = 0; i < opt.num_predicates; ++i) {
    int32_t domain = i % opt.num_domains;
    std::string label;
    for (int attempt = 0; attempt < 64; ++attempt) {
      label = std::string(verb_pool[rng.NextUint64(verb_pool.size())]);
      if (rng.NextBool(0.35)) {
        label += " " + Pick(text::VerbParticles(), rng);
      }
      if (used_predicate_labels.insert(label).second) break;
      label.clear();
    }
    if (label.empty()) {
      label = std::string(verb_pool[i % verb_pool.size()]) + " " +
              std::to_string(i);
      used_predicate_labels.insert(label);
    }
    double popularity = 1.0 / std::sqrt(static_cast<double>(i + 1));
    PredicateId pid = world.kb.AddPredicate(label, domain, popularity);
    world.predicates_by_domain[domain].push_back(pid);
    world.predicate_surfaces.push_back({label});
  }
  // Verb alias collisions: predicate also answers to another predicate's
  // verb (one relational phrase, several candidate predicates).
  for (PredicateId pid = 0; pid < world.kb.num_predicates(); ++pid) {
    if (!rng.NextBool(opt.predicate_alias_collision)) continue;
    PredicateId other = static_cast<PredicateId>(
        rng.NextUint64(world.kb.num_predicates()));
    if (other == pid) continue;
    const std::string& alias = world.kb.predicate(other).label;
    world.kb.AddPredicateAlias(pid, alias,
                               world.kb.predicate(pid).popularity * 0.6);
    world.predicate_surfaces[pid].push_back(alias);
  }

  // ---- Facts --------------------------------------------------------------
  for (int32_t d = 0; d < opt.num_domains; ++d) {
    for (EntityId subject : world.entities_by_domain[d]) {
      for (int f = 0; f < opt.facts_per_entity; ++f) {
        int32_t object_domain = d;
        if (rng.NextBool(opt.cross_domain_fact_fraction)) {
          object_domain =
              static_cast<int32_t>(rng.NextUint64(opt.num_domains));
        }
        EntityId object = rng.Pick(world.entities_by_domain[object_domain]);
        if (object == subject) continue;
        const std::vector<PredicateId>& home =
            world.predicates_by_domain[d].empty()
                ? world.predicates_by_domain[0]
                : world.predicates_by_domain[d];
        PredicateId predicate =
            rng.NextBool(0.7) && !home.empty()
                ? rng.Pick(home)
                : static_cast<PredicateId>(
                      rng.NextUint64(world.kb.num_predicates()));
        TENET_CHECK(world.kb.AddFact(subject, predicate, object).ok());
      }
    }
  }

  world.kb.Finalize();

  // ---- Gazetteer ----------------------------------------------------------
  for (EntityId id = 0; id < world.kb.num_entities(); ++id) {
    const EntityRecord& rec = world.kb.entity(id);
    bool lowercase = rec.type == EntityType::kTopic;
    for (const std::string& surface : world.entity_surfaces[id]) {
      world.gazetteer.AddSurface(surface, rec.type, lowercase);
    }
  }
  return world;
}

}  // namespace kb
}  // namespace tenet
