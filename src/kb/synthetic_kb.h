#ifndef TENET_KB_SYNTHETIC_KB_H_
#define TENET_KB_SYNTHETIC_KB_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "kb/knowledge_base.h"
#include "text/gazetteer.h"

namespace tenet {
namespace kb {

// Knobs of the synthetic Wikidata-like KB (DESIGN.md §1, substitution for
// the 2021-02-08 Wikidata dump).  Defaults produce a KB large enough for
// all experiments yet generated in milliseconds.
struct SyntheticKbOptions {
  /// Topical clusters; intra-domain concepts are semantically related.
  int num_domains = 10;
  /// Plain (non-composite) entities per domain.
  int entities_per_domain = 50;
  /// Composite entities per domain whose labels join two other surfaces by
  /// a linguistic feature ("The Storm on the Sea of Galilee" pattern);
  /// these exercise the mention-canopy machinery.
  int composite_entities_per_domain = 6;
  /// Predicates in total; each has a home domain.
  int num_predicates = 40;
  /// Fraction of entities that carry an extra alias equal to another
  /// entity's label (the "Michael Jordan" scenario: one surface, many
  /// entities, skewed priors).
  double ambiguous_alias_fraction = 0.50;
  /// Fraction of persons also aliased by their bare last name.
  double short_alias_fraction = 0.6;
  /// Probability that a predicate carries a second verb alias already used
  /// by another predicate (relational ambiguity).
  double predicate_alias_collision = 0.55;
  /// Facts per entity.
  int facts_per_entity = 3;
  /// Fraction of facts whose object lies outside the subject's domain.
  double cross_domain_fact_fraction = 0.12;
  /// Zipf exponent of within-domain popularity.
  double popularity_zipf = 0.6;

  /// The "huge" tier: the KB sized for the sharded-substrate benchmarks
  /// (DESIGN.md §14) — ~58k entities and ~170k facts, an order of
  /// magnitude past the largest evaluation world, where per-shard load and
  /// lookup costs dominate the fixed overheads.  Still generated in a few
  /// hundred milliseconds.
  static SyntheticKbOptions Huge();
};

// The generated world: a finalized KB plus the bookkeeping the corpus
// generator and the NER gazetteer need.
struct SyntheticKb {
  KnowledgeBase kb;
  text::Gazetteer gazetteer;

  /// Entity ids per domain (composites included).
  std::vector<std::vector<EntityId>> entities_by_domain;
  /// Composite entity ids per domain (labels containing a linguistic
  /// feature, the canopy exercisers).
  std::vector<std::vector<EntityId>> composites_by_domain;
  /// Predicate ids per home domain.
  std::vector<std::vector<PredicateId>> predicates_by_domain;
  /// Surfaces an entity may be rendered as in a document, label first.
  std::vector<std::vector<std::string>> entity_surfaces;
  /// Lemma phrases a predicate may be rendered as, label first.
  std::vector<std::vector<std::string>> predicate_surfaces;
};

// Deterministic generator; same options + seed => identical KB.
class SyntheticKbGenerator {
 public:
  explicit SyntheticKbGenerator(SyntheticKbOptions options = {})
      : options_(options) {}

  SyntheticKb Generate(Rng& rng) const;

  const SyntheticKbOptions& options() const { return options_; }

 private:
  SyntheticKbOptions options_;
};

}  // namespace kb
}  // namespace tenet

#endif  // TENET_KB_SYNTHETIC_KB_H_
