#ifndef TENET_KB_TYPES_H_
#define TENET_KB_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace tenet {
namespace kb {

/// Dense id of an entity within a KnowledgeBase (0-based).
using EntityId = int32_t;
/// Dense id of a predicate within a KnowledgeBase (0-based).
using PredicateId = int32_t;

inline constexpr EntityId kInvalidEntity = -1;
inline constexpr PredicateId kInvalidPredicate = -1;

// Coarse entity types, mirroring the type information produced by the NER
// stage of the paper's linguistic pipeline (Sec. 3, Step 1).  Candidate
// entities must match the noun phrase's type.
enum class EntityType : uint8_t {
  kPerson = 0,
  kOrganization,
  kLocation,
  kWork,       // creative works ("The Storm on the Sea of Galilee")
  kTopic,      // fields of study, abstract topics ("machine learning")
  kEvent,
  kProduct,
  kOther,
};

inline constexpr int kNumEntityTypes = 8;

/// Canonical lower_snake_case name of `type` (e.g. "person").
std::string_view EntityTypeToString(EntityType type);

// A concept in the paper's terminology is either an entity or a predicate
// (Definition 5).  ConceptRef is the tagged id used wherever the two are
// handled uniformly (alias index, coherence graph, disambiguation result).
struct ConceptRef {
  enum class Kind : uint8_t { kEntity = 0, kPredicate = 1 };

  Kind kind = Kind::kEntity;
  int32_t id = -1;

  static ConceptRef Entity(EntityId id) {
    return ConceptRef{Kind::kEntity, id};
  }
  static ConceptRef Predicate(PredicateId id) {
    return ConceptRef{Kind::kPredicate, id};
  }

  bool is_entity() const { return kind == Kind::kEntity; }
  bool is_predicate() const { return kind == Kind::kPredicate; }
  bool valid() const { return id >= 0; }

  friend bool operator==(const ConceptRef& a, const ConceptRef& b) {
    return a.kind == b.kind && a.id == b.id;
  }
  friend bool operator!=(const ConceptRef& a, const ConceptRef& b) {
    return !(a == b);
  }
  friend bool operator<(const ConceptRef& a, const ConceptRef& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.id < b.id;
  }
};

/// Renders e.g. "E12" or "P3" for logs and test output.
std::string ConceptRefToString(const ConceptRef& ref);

}  // namespace kb
}  // namespace tenet

template <>
struct std::hash<tenet::kb::ConceptRef> {
  size_t operator()(const tenet::kb::ConceptRef& ref) const noexcept {
    return (static_cast<size_t>(ref.kind) << 31) ^
           static_cast<size_t>(ref.id);
  }
};

#endif  // TENET_KB_TYPES_H_
