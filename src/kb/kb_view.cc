#include "kb/kb_view.h"

#include "common/logging.h"
#include "embedding/embedding_store.h"

namespace tenet {
namespace kb {

FlatKbView::FlatKbView(const KnowledgeBase* kb,
                       const embedding::EmbeddingStore* embeddings)
    : kb_(kb), embeddings_(embeddings) {
  TENET_CHECK(kb != nullptr);
  TENET_CHECK(embeddings != nullptr);
  TENET_CHECK(kb->finalized());
  TENET_CHECK(embeddings->finalized());
}

void FlatKbView::VisitFactsOfEntity(EntityId id,
                                    const FactVisitor& visitor) const {
  const std::vector<Triple>& facts = kb_->facts();
  for (int32_t fact_index : kb_->FactsOfEntity(id)) {
    if (!visitor(fact_index, facts[fact_index])) return;
  }
}

void FlatKbView::VisitFactsOfPredicate(PredicateId id,
                                       const FactVisitor& visitor) const {
  const std::vector<Triple>& facts = kb_->facts();
  for (int32_t fact_index : kb_->FactsOfPredicate(id)) {
    if (!visitor(fact_index, facts[fact_index])) return;
  }
}

int FlatKbView::dimension() const { return embeddings_->dimension(); }

double FlatKbView::Cosine(ConceptRef a, ConceptRef b) const {
  return embeddings_->Cosine(a, b);
}

void FlatKbView::GatherUnit(std::span<const ConceptRef> refs,
                            double* out) const {
  embeddings_->GatherUnit(refs, out);
}

void FlatKbView::VisitAliasPostings(const PostingVisitor& visitor) const {
  kb_->alias_index().VisitPostings(visitor);
}

}  // namespace kb
}  // namespace tenet
