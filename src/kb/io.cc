#include "kb/io.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/atomic_file.h"
#include "common/checksum.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/mmap_file.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "kb/kb_view.h"
#include "kb/sharded_kb.h"
#include "obs/metrics.h"

namespace tenet {
namespace kb {
namespace {

constexpr char kKbMagicV1[] = "TENETKB v1";
constexpr char kKbMagicV2[8] = {'T', 'E', 'N', 'E', 'T', 'K', 'B', '2'};
constexpr char kEmbMagic[] = "TENETEMB1";
constexpr char kShardManifestMagic[] = "TENETKBSHARDS1";

// ---- TENETKB2 binary layout (DESIGN.md §11) -------------------------------
// All integers are fixed-width little-endian; the endian tag rejects
// cross-endian snapshots.  Every section is length-prefixed in the header
// table and 8-byte aligned, so a mapped file is consumed by pointer
// arithmetic — no tokenizing, no float re-parsing.

constexpr uint32_t kEndianTag = 0x32424B54;  // "TKB2" when little-endian
constexpr size_t kHeaderBytes = 32;          // magic+tag+count+size+checksum
constexpr size_t kSectionEntryBytes = 32;    // id+pad+offset+bytes+items
constexpr size_t kRecordBytes = 24;          // entity/predicate/alias/fact

enum SectionId : uint32_t {
  kSectionStrings = 1,
  kSectionEntities = 2,
  kSectionPredicates = 3,
  kSectionAliases = 4,
  kSectionFacts = 5,
  // Present only in per-shard snapshots of a sharded layout: one 32-byte
  // record {u32 num_shards, u32 shard_index, i64 global_entities,
  // i64 global_predicates, i64 global_facts}.  Unknown to (and therefore
  // rejected by) the flat loader, which keeps `kb delta`/`kb merge` from
  // silently treating one shard as a whole KB.
  kSectionShardInfo = 6,
};
constexpr uint32_t kNumKnownSections = 5;
constexpr size_t kShardInfoBytes = 32;

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSectionStrings: return "string_table";
    case kSectionEntities: return "entities";
    case kSectionPredicates: return "predicates";
    case kSectionAliases: return "aliases";
    case kSectionFacts: return "facts";
    case kSectionShardInfo: return "shard_info";
    default: return "unknown";
  }
}

// Simulated crash mid-write for the corruption matrix: the injected fault
// leaves half-written debris at `<path>.tmp` — exactly what a real crash
// between the temp write and the rename leaves behind — and NEVER touches
// `path` itself.  The previous snapshot (if any) survives intact; loaders
// never look at the temp name.
Status SimulateTornWrite(const std::string& path, const void* data,
                         size_t size, const char* what) {
  std::ofstream debris(path + ".tmp", std::ios::trunc | std::ios::binary);
  if (debris) {
    debris.write(static_cast<const char*>(data),
                 static_cast<std::streamsize>(size / 2));
  }
  return Status::DataLoss(std::string("injected fault: write of ") + path +
                          " crashed mid-" + what +
                          "; previous file left intact");
}

// Append-only little-endian buffer for the writer.
class ByteWriter {
 public:
  template <typename T>
  void Append(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    unsigned char raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    bytes_.insert(bytes_.end(), raw, raw + sizeof(T));
  }
  void AppendBytes(const void* data, size_t size) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }
  void PadTo8() { bytes_.resize((bytes_.size() + 7) & ~size_t{7}, 0); }
  size_t size() const { return bytes_.size(); }
  const unsigned char* data() const { return bytes_.data(); }

 private:
  std::vector<unsigned char> bytes_;
};

// Bounds-unchecked typed reads over a section whose length was already
// validated against its record count.
class RecordReader {
 public:
  explicit RecordReader(std::span<const std::byte> bytes)
      : p_(bytes.data()) {}
  template <typename T>
  T Read() {
    T value;
    std::memcpy(&value, p_, sizeof(T));
    p_ += sizeof(T);
    return value;
  }

 private:
  const std::byte* p_;
};

// Interns strings; the blob and end-offset array form the string table
// section.
class StringTableBuilder {
 public:
  uint32_t Intern(std::string_view s) {
    uint32_t next = static_cast<uint32_t>(ordered_.size());
    auto [it, inserted] = index_.emplace(std::string(s), next);
    if (inserted) ordered_.push_back(&it->first);
    return it->second;
  }

  void Serialize(ByteWriter* out) const {
    uint64_t end = 0;
    for (const std::string* s : ordered_) {
      end += s->size();
      out->Append<uint64_t>(end);
    }
    for (const std::string* s : ordered_) {
      out->AppendBytes(s->data(), s->size());
    }
  }

  size_t size() const { return ordered_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<const std::string*> ordered_;
};

struct SectionEntry {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t byte_size = 0;
  uint64_t item_count = 0;
};

// Header + section table of a mapped snapshot, validated: magic, endian
// tag, declared-vs-actual file size, checksum, per-section bounds, and the
// presence of each known section exactly once.
struct SnapshotLayout {
  std::array<SectionEntry, kNumKnownSections> known;  // by id - 1
  std::vector<SectionEntry> all;
};

Result<SnapshotLayout> ParseSnapshotLayout(std::span<const std::byte> bytes) {
  if (bytes.size() < kHeaderBytes) {
    return Status::InvalidArgument("truncated TENETKB2 header");
  }
  const std::byte* p = bytes.data();
  if (std::memcmp(p, kKbMagicV2, sizeof(kKbMagicV2)) != 0) {
    return Status::InvalidArgument("not a TENETKB2 snapshot");
  }
  uint32_t endian_tag;
  uint32_t section_count;
  uint64_t file_size;
  uint64_t checksum;
  std::memcpy(&endian_tag, p + 8, sizeof(endian_tag));
  std::memcpy(&section_count, p + 12, sizeof(section_count));
  std::memcpy(&file_size, p + 16, sizeof(file_size));
  std::memcpy(&checksum, p + 24, sizeof(checksum));
  if (endian_tag != kEndianTag) {
    return Status::InvalidArgument(
        "TENETKB2 snapshot written with a different byte order");
  }
  if (file_size != bytes.size()) {
    return Status::InvalidArgument(
        "TENETKB2 size mismatch (truncated or trailing bytes): declared " +
        std::to_string(file_size) + ", actual " +
        std::to_string(bytes.size()));
  }
  if (section_count < kNumKnownSections || section_count > 64) {
    return Status::InvalidArgument("implausible TENETKB2 section count");
  }
  size_t table_bytes = kSectionEntryBytes * section_count;
  if (bytes.size() < kHeaderBytes + table_bytes) {
    return Status::InvalidArgument("truncated TENETKB2 section table");
  }
  const unsigned char* table =
      reinterpret_cast<const unsigned char*>(p + kHeaderBytes);
  if (Fnv1a64(table, table_bytes) != checksum) {
    return Status::InvalidArgument("TENETKB2 header checksum mismatch");
  }
  SnapshotLayout layout;
  std::array<bool, kNumKnownSections> seen{};
  for (uint32_t i = 0; i < section_count; ++i) {
    const unsigned char* e = table + i * kSectionEntryBytes;
    SectionEntry entry;
    std::memcpy(&entry.id, e, sizeof(entry.id));
    std::memcpy(&entry.offset, e + 8, sizeof(entry.offset));
    std::memcpy(&entry.byte_size, e + 16, sizeof(entry.byte_size));
    std::memcpy(&entry.item_count, e + 24, sizeof(entry.item_count));
    if (entry.offset < kHeaderBytes + table_bytes ||
        entry.offset > bytes.size() ||
        entry.byte_size > bytes.size() - entry.offset) {
      return Status::InvalidArgument(
          std::string("TENETKB2 section out of bounds: ") +
          SectionName(entry.id));
    }
    layout.all.push_back(entry);
    if (entry.id >= 1 && entry.id <= kNumKnownSections) {
      if (seen[entry.id - 1]) {
        return Status::InvalidArgument(
            std::string("duplicate TENETKB2 section: ") +
            SectionName(entry.id));
      }
      seen[entry.id - 1] = true;
      layout.known[entry.id - 1] = entry;
    }
  }
  for (uint32_t id = 1; id <= kNumKnownSections; ++id) {
    if (!seen[id - 1]) {
      return Status::InvalidArgument(
          std::string("missing TENETKB2 section: ") + SectionName(id));
    }
  }
  return layout;
}

// Resolved string table: views into the mapped blob (zero-copy).
Result<std::vector<std::string_view>> ParseStringTable(
    std::span<const std::byte> bytes, const SectionEntry& entry) {
  if (entry.item_count > std::numeric_limits<int32_t>::max()) {
    return Status::InvalidArgument("implausible string table count");
  }
  size_t count = static_cast<size_t>(entry.item_count);
  if (entry.byte_size < count * sizeof(uint64_t)) {
    return Status::InvalidArgument("string table shorter than its offsets");
  }
  const std::byte* base = bytes.data() + entry.offset;
  const char* blob =
      reinterpret_cast<const char*>(base) + count * sizeof(uint64_t);
  size_t blob_size = entry.byte_size - count * sizeof(uint64_t);
  std::vector<std::string_view> strings;
  strings.reserve(count);
  uint64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t end;
    std::memcpy(&end, base + i * sizeof(uint64_t), sizeof(end));
    if (end < prev || end > blob_size) {
      return Status::InvalidArgument("corrupt string table offsets");
    }
    strings.emplace_back(blob + prev, end - prev);
    prev = end;
  }
  if (prev != blob_size) {
    return Status::InvalidArgument(
        "string table blob larger than its offsets declare");
  }
  return strings;
}

// Decoded shard_info section of a per-shard snapshot.
struct ShardInfo {
  uint32_t num_shards = 0;
  uint32_t shard_index = 0;
  int64_t global_entities = 0;
  int64_t global_predicates = 0;
  int64_t global_facts = 0;
};

const SectionEntry* FindSection(const SnapshotLayout& layout, uint32_t id) {
  for (const SectionEntry& entry : layout.all) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

Result<ShardInfo> ParseShardInfo(std::span<const std::byte> bytes,
                                 const SectionEntry& entry) {
  if (entry.byte_size != kShardInfoBytes || entry.item_count != 1) {
    return Status::InvalidArgument("malformed shard_info section");
  }
  RecordReader reader(bytes.subspan(entry.offset));
  ShardInfo info;
  info.num_shards = reader.Read<uint32_t>();
  info.shard_index = reader.Read<uint32_t>();
  info.global_entities = reader.Read<int64_t>();
  info.global_predicates = reader.Read<int64_t>();
  info.global_facts = reader.Read<int64_t>();
  if (info.num_shards < 1 || info.shard_index >= info.num_shards ||
      info.global_entities < 0 ||
      info.global_entities > std::numeric_limits<int32_t>::max() ||
      info.global_predicates < 0 ||
      info.global_predicates > std::numeric_limits<int32_t>::max() ||
      info.global_facts < 0) {
    return Status::InvalidArgument("implausible shard_info values");
  }
  return info;
}

/// How many global ids < `global` are homed on shard `s` of `n` (strided
/// layout: id % n == s).
int64_t LocalShardCount(int64_t global, uint32_t n, uint32_t s) {
  if (global <= s) return 0;
  return (global - s + n - 1) / n;
}

// Directory prefix of `path` including the trailing separator ("" when the
// path has no directory component).  Manifest entries are stored relative
// and resolved against this.
std::string DirPrefix(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

Status CheckRecordSection(const SectionEntry& entry, const char* what) {
  if (entry.item_count > std::numeric_limits<int32_t>::max()) {
    return Status::InvalidArgument(std::string("implausible count in ") +
                                   what);
  }
  if (entry.byte_size != entry.item_count * kRecordBytes) {
    return Status::InvalidArgument(
        std::string("section length disagrees with declared count: ") +
        what);
  }
  return Status::Ok();
}

// ---- text (v1) helpers ----------------------------------------------------

bool HasForbiddenChars(const std::string& s) {
  return s.find('\t') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

// Reads one line, failing with context when the stream is exhausted.
Result<std::string> ReadLine(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(std::string("unexpected end of file: ") +
                                   what);
  }
  return line;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

Result<int64_t> ParseInt(const std::string& s, const char* what) {
  Result<int64_t> value = ParseInt64(s);
  if (!value.ok()) {
    return Status::InvalidArgument(std::string("bad integer in ") + what +
                                   ": " + s);
  }
  return value;
}

Result<double> ParseDouble(const std::string& s, const char* what) {
  Result<double> value = ParseFloat64(s);
  if (!value.ok()) {
    return Status::InvalidArgument(std::string("bad number in ") + what +
                                   ": " + s);
  }
  return value;
}

// ---- load metrics ---------------------------------------------------------

void RecordLoad(const char* store, const char* format, double ms,
                size_t mapped_bytes) {
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
  registry
      ->GetHistogram("tenet_kb_load_ms",
                     "Snapshot load latency by store and format",
                     obs::LabelPair("store", store) + "," +
                         obs::LabelPair("format", format))
      ->Observe(ms);
  if (mapped_bytes > 0) {
    registry
        ->GetCounter("tenet_kb_bytes_mapped_total",
                     "Bytes served zero-copy from mmapped snapshots",
                     obs::LabelPair("store", store))
        ->Increment(static_cast<int64_t>(mapped_bytes));
  }
}

// ---- TENETKB2 writer ------------------------------------------------------

Status SaveKnowledgeBaseBinary(const KnowledgeBase& kb,
                               const std::string& path) {
  StringTableBuilder strings;

  ByteWriter entities;
  for (EntityId id = 0; id < kb.num_entities(); ++id) {
    const EntityRecord& rec = kb.entity(id);
    entities.Append<uint32_t>(strings.Intern(rec.label));
    entities.Append<int32_t>(static_cast<int32_t>(rec.type));
    entities.Append<int32_t>(rec.domain);
    entities.Append<int32_t>(0);
    entities.Append<double>(rec.popularity);
  }

  ByteWriter predicates;
  for (PredicateId id = 0; id < kb.num_predicates(); ++id) {
    const PredicateRecord& rec = kb.predicate(id);
    predicates.Append<uint32_t>(strings.Intern(rec.label));
    predicates.Append<int32_t>(rec.domain);
    predicates.Append<int32_t>(0);
    predicates.Append<int32_t>(0);
    predicates.Append<double>(rec.popularity);
  }

  // Postings are persisted as finalized priors in their finalized
  // (descending-prior) order; the loader restores them bit-exactly instead
  // of renormalizing (see AliasIndex::FinalizeMode::kRestorePriors).
  ByteWriter aliases;
  uint64_t num_aliases = 0;
  kb.alias_index().VisitPostings(
      [&](std::string_view surface, const AliasPosting& posting) {
        aliases.Append<uint32_t>(strings.Intern(surface));
        aliases.Append<int32_t>(posting.concept_ref.id);
        aliases.Append<int32_t>(posting.concept_ref.is_entity() ? 0 : 1);
        aliases.Append<int32_t>(0);
        aliases.Append<double>(posting.prior);
        ++num_aliases;
      });

  ByteWriter facts;
  for (const Triple& t : kb.facts()) {
    facts.Append<int32_t>(t.subject);
    facts.Append<int32_t>(t.predicate);
    facts.Append<int32_t>(t.object_is_entity ? 0 : 1);
    facts.Append<int32_t>(t.object_is_entity ? t.object_entity : 0);
    facts.Append<uint32_t>(
        t.object_is_entity ? 0 : strings.Intern(t.object_literal));
    facts.Append<uint32_t>(0);
  }

  ByteWriter string_table;
  strings.Serialize(&string_table);

  struct Pending {
    uint32_t id;
    const ByteWriter* payload;
    uint64_t item_count;
  };
  const Pending sections[kNumKnownSections] = {
      {kSectionStrings, &string_table, strings.size()},
      {kSectionEntities, &entities,
       static_cast<uint64_t>(kb.num_entities())},
      {kSectionPredicates, &predicates,
       static_cast<uint64_t>(kb.num_predicates())},
      {kSectionAliases, &aliases, num_aliases},
      {kSectionFacts, &facts, static_cast<uint64_t>(kb.num_facts())},
  };

  ByteWriter table;
  uint64_t offset = kHeaderBytes + kNumKnownSections * kSectionEntryBytes;
  for (const Pending& s : sections) {
    table.Append<uint32_t>(s.id);
    table.Append<uint32_t>(0);
    table.Append<uint64_t>(offset);
    table.Append<uint64_t>(static_cast<uint64_t>(s.payload->size()));
    table.Append<uint64_t>(s.item_count);
    offset += (s.payload->size() + 7) & ~uint64_t{7};  // 8-byte aligned
  }
  const uint64_t file_size = offset;

  // The whole snapshot is assembled in memory and lands on disk through
  // AtomicWriteFile (temp + fsync + rename): a crash mid-write can no
  // longer tear `path` — the previous snapshot stays readable until the
  // rename, and the rename is atomic.
  ByteWriter file;
  file.AppendBytes(kKbMagicV2, sizeof(kKbMagicV2));
  file.Append<uint32_t>(kEndianTag);
  file.Append<uint32_t>(kNumKnownSections);
  file.Append<uint64_t>(file_size);
  file.Append<uint64_t>(Fnv1a64(table.data(), table.size()));
  file.AppendBytes(table.data(), table.size());
  for (const Pending& s : sections) {
    file.AppendBytes(s.payload->data(), s.payload->size());
    file.PadTo8();
  }
  TENET_CHECK_EQ(file.size(), file_size);

  if (TENET_FAULT_POINT("kb/io/write_truncation")) {
    return SimulateTornWrite(path, file.data(), file.size(), "snapshot");
  }
  return AtomicWriteFile(path, file.data(), file.size());
}

// ---- TENETKB2 reader ------------------------------------------------------

Result<KnowledgeBase> LoadKnowledgeBaseBinary(std::span<const std::byte> bytes,
                                              const KbLoadOptions& options) {
  TENET_ASSIGN_OR_RETURN(SnapshotLayout layout, ParseSnapshotLayout(bytes));
  if (FindSection(layout, kSectionShardInfo) != nullptr) {
    return Status::InvalidArgument(
        "snapshot is one shard of a sharded KB; load the whole layout via "
        "its TENETKBSHARDS1 manifest (ShardedKb::Load)");
  }
  TENET_ASSIGN_OR_RETURN(
      std::vector<std::string_view> strings,
      ParseStringTable(bytes, layout.known[kSectionStrings - 1]));

  auto string_at = [&strings](uint32_t ref,
                              const char* what) -> Result<std::string_view> {
    if (ref >= strings.size()) {
      return Status::InvalidArgument(
          std::string("string reference out of range in ") + what);
    }
    return strings[ref];
  };

  KnowledgeBase kb;

  const SectionEntry& entities = layout.known[kSectionEntities - 1];
  TENET_RETURN_IF_ERROR(CheckRecordSection(entities, "entities"));
  {
    const SectionEntry& predicates = layout.known[kSectionPredicates - 1];
    const SectionEntry& facts = layout.known[kSectionFacts - 1];
    TENET_RETURN_IF_ERROR(CheckRecordSection(predicates, "predicates"));
    TENET_RETURN_IF_ERROR(CheckRecordSection(facts, "facts"));
    kb.Reserve(static_cast<int32_t>(entities.item_count),
               static_cast<int32_t>(predicates.item_count),
               static_cast<int32_t>(facts.item_count));
  }
  RecordReader entity_reader(bytes.subspan(entities.offset));
  for (uint64_t i = 0; i < entities.item_count; ++i) {
    uint32_t label_ref = entity_reader.Read<uint32_t>();
    int32_t type = entity_reader.Read<int32_t>();
    int32_t domain = entity_reader.Read<int32_t>();
    entity_reader.Read<int32_t>();  // padding
    double popularity = entity_reader.Read<double>();
    TENET_ASSIGN_OR_RETURN(std::string_view label,
                           string_at(label_ref, "entities"));
    if (type < 0 || type >= kNumEntityTypes) {
      return Status::InvalidArgument("bad entity type in snapshot");
    }
    if (!std::isfinite(popularity) || popularity <= 0.0) {
      return Status::InvalidArgument("non-positive entity popularity");
    }
    kb.AddEntity(label, static_cast<EntityType>(type), domain, popularity,
                 /*register_label_alias=*/false);
  }

  const SectionEntry& predicates = layout.known[kSectionPredicates - 1];
  TENET_RETURN_IF_ERROR(CheckRecordSection(predicates, "predicates"));
  RecordReader predicate_reader(bytes.subspan(predicates.offset));
  for (uint64_t i = 0; i < predicates.item_count; ++i) {
    uint32_t label_ref = predicate_reader.Read<uint32_t>();
    int32_t domain = predicate_reader.Read<int32_t>();
    predicate_reader.Read<int32_t>();  // padding
    predicate_reader.Read<int32_t>();  // padding
    double popularity = predicate_reader.Read<double>();
    TENET_ASSIGN_OR_RETURN(std::string_view label,
                           string_at(label_ref, "predicates"));
    if (!std::isfinite(popularity) || popularity <= 0.0) {
      return Status::InvalidArgument("non-positive predicate popularity");
    }
    kb.AddPredicate(label, domain, popularity,
                    /*register_label_alias=*/false);
  }

  // Alias postings are stored grouped per surface in finalized order;
  // decoding builds one flat RestoreEntry array whose views borrow the
  // mapped string table, and the whole batch moves into the sharded index
  // via the bulk restore path — one hash insert per surface instead of one
  // per posting, sharded in parallel when a pool is given.
  const SectionEntry& aliases = layout.known[kSectionAliases - 1];
  TENET_RETURN_IF_ERROR(CheckRecordSection(aliases, "aliases"));
  RecordReader alias_reader(bytes.subspan(aliases.offset));
  std::vector<AliasIndex::RestoreEntry> restore_entries;
  restore_entries.reserve(static_cast<size_t>(aliases.item_count));
  for (uint64_t i = 0; i < aliases.item_count; ++i) {
    uint32_t surface_ref = alias_reader.Read<uint32_t>();
    int32_t concept_id = alias_reader.Read<int32_t>();
    int32_t kind = alias_reader.Read<int32_t>();
    alias_reader.Read<int32_t>();  // padding
    double prior = alias_reader.Read<double>();
    TENET_ASSIGN_OR_RETURN(std::string_view surface,
                           string_at(surface_ref, "aliases"));
    if (!std::isfinite(prior) || prior <= 0.0) {
      return Status::InvalidArgument("non-positive alias prior");
    }
    if (kind == 0) {
      if (concept_id < 0 || concept_id >= kb.num_entities()) {
        return Status::InvalidArgument("alias refers to unknown entity");
      }
    } else if (kind == 1) {
      if (concept_id < 0 || concept_id >= kb.num_predicates()) {
        return Status::InvalidArgument("alias refers to unknown predicate");
      }
    } else {
      return Status::InvalidArgument("bad alias concept kind");
    }
    restore_entries.push_back(AliasIndex::RestoreEntry{
        surface,
        AliasPosting{kind == 0 ? ConceptRef::Entity(concept_id)
                               : ConceptRef::Predicate(concept_id),
                     prior}});
  }
  // The views borrow the mapped string table, valid until `file` dies —
  // well past this call.
  kb.RestoreAliasPostings(restore_entries, options.pool);

  const SectionEntry& facts = layout.known[kSectionFacts - 1];
  TENET_RETURN_IF_ERROR(CheckRecordSection(facts, "facts"));
  RecordReader fact_reader(bytes.subspan(facts.offset));
  for (uint64_t i = 0; i < facts.item_count; ++i) {
    int32_t subject = fact_reader.Read<int32_t>();
    int32_t predicate = fact_reader.Read<int32_t>();
    int32_t object_kind = fact_reader.Read<int32_t>();
    int32_t object_entity = fact_reader.Read<int32_t>();
    uint32_t literal_ref = fact_reader.Read<uint32_t>();
    fact_reader.Read<uint32_t>();  // padding
    if (object_kind == 0) {
      TENET_RETURN_IF_ERROR(kb.AddFact(subject, predicate, object_entity));
    } else if (object_kind == 1) {
      TENET_ASSIGN_OR_RETURN(std::string_view literal,
                             string_at(literal_ref, "facts"));
      TENET_RETURN_IF_ERROR(kb.AddLiteralFact(subject, predicate, literal));
    } else {
      return Status::InvalidArgument("bad fact object kind");
    }
  }

  kb.Finalize(KnowledgeBase::FinalizeOptions{
      AliasIndex::FinalizeMode::kRestorePriors, options.pool});
  return kb;
}

// ---- sharded layout (TENETKB2 shards + TENETKBSHARDS1 manifest) -----------
//
// Each shard is a self-contained TENETKB2 snapshot carrying the standard
// five sections — entity/predicate sections hold the shard's *local* record
// subsequence, alias and fact sections hold *global* concept ids, and each
// fact record's trailing word (padding in flat snapshots) holds the fact's
// global id — plus a shard_info section (id 6) naming the layout.  A text
// manifest ties the shard files together and records the global counts.

Status SaveShardBinary(const ShardedKb::Shard& shard, const ShardInfo& info,
                       const std::string& path) {
  StringTableBuilder strings;

  ByteWriter entities;
  for (const EntityRecord& rec : shard.entities) {
    entities.Append<uint32_t>(strings.Intern(rec.label));
    entities.Append<int32_t>(static_cast<int32_t>(rec.type));
    entities.Append<int32_t>(rec.domain);
    entities.Append<int32_t>(0);
    entities.Append<double>(rec.popularity);
  }

  ByteWriter predicates;
  for (const PredicateRecord& rec : shard.predicates) {
    predicates.Append<uint32_t>(strings.Intern(rec.label));
    predicates.Append<int32_t>(rec.domain);
    predicates.Append<int32_t>(0);
    predicates.Append<int32_t>(0);
    predicates.Append<double>(rec.popularity);
  }

  ByteWriter aliases;
  uint64_t num_aliases = 0;
  shard.alias_index.VisitPostings(
      [&](std::string_view surface, const AliasPosting& posting) {
        aliases.Append<uint32_t>(strings.Intern(surface));
        aliases.Append<int32_t>(posting.concept_ref.id);
        aliases.Append<int32_t>(posting.concept_ref.is_entity() ? 0 : 1);
        aliases.Append<int32_t>(0);
        aliases.Append<double>(posting.prior);
        ++num_aliases;
      });

  ByteWriter facts;
  for (size_t pos = 0; pos < shard.facts.size(); ++pos) {
    const Triple& t = shard.facts[pos];
    facts.Append<int32_t>(t.subject);
    facts.Append<int32_t>(t.predicate);
    facts.Append<int32_t>(t.object_is_entity ? 0 : 1);
    facts.Append<int32_t>(t.object_is_entity ? t.object_entity : 0);
    facts.Append<uint32_t>(
        t.object_is_entity ? 0 : strings.Intern(t.object_literal));
    facts.Append<uint32_t>(static_cast<uint32_t>(shard.fact_ids[pos]));
  }

  ByteWriter shard_info;
  shard_info.Append<uint32_t>(info.num_shards);
  shard_info.Append<uint32_t>(info.shard_index);
  shard_info.Append<int64_t>(info.global_entities);
  shard_info.Append<int64_t>(info.global_predicates);
  shard_info.Append<int64_t>(info.global_facts);

  ByteWriter string_table;
  strings.Serialize(&string_table);

  struct Pending {
    uint32_t id;
    const ByteWriter* payload;
    uint64_t item_count;
  };
  constexpr uint32_t kNumShardSections = kNumKnownSections + 1;
  const Pending sections[kNumShardSections] = {
      {kSectionStrings, &string_table, strings.size()},
      {kSectionEntities, &entities,
       static_cast<uint64_t>(shard.entities.size())},
      {kSectionPredicates, &predicates,
       static_cast<uint64_t>(shard.predicates.size())},
      {kSectionAliases, &aliases, num_aliases},
      {kSectionFacts, &facts, static_cast<uint64_t>(shard.facts.size())},
      {kSectionShardInfo, &shard_info, 1},
  };

  ByteWriter table;
  uint64_t offset = kHeaderBytes + kNumShardSections * kSectionEntryBytes;
  for (const Pending& s : sections) {
    table.Append<uint32_t>(s.id);
    table.Append<uint32_t>(0);
    table.Append<uint64_t>(offset);
    table.Append<uint64_t>(static_cast<uint64_t>(s.payload->size()));
    table.Append<uint64_t>(s.item_count);
    offset += (s.payload->size() + 7) & ~uint64_t{7};
  }
  const uint64_t file_size = offset;

  ByteWriter file;
  file.AppendBytes(kKbMagicV2, sizeof(kKbMagicV2));
  file.Append<uint32_t>(kEndianTag);
  file.Append<uint32_t>(kNumShardSections);
  file.Append<uint64_t>(file_size);
  file.Append<uint64_t>(Fnv1a64(table.data(), table.size()));
  file.AppendBytes(table.data(), table.size());
  for (const Pending& s : sections) {
    file.AppendBytes(s.payload->data(), s.payload->size());
    file.PadTo8();
  }
  TENET_CHECK_EQ(file.size(), file_size);

  if (TENET_FAULT_POINT("kb/io/write_truncation")) {
    return SimulateTornWrite(path, file.data(), file.size(), "shard");
  }
  return AtomicWriteFile(path, file.data(), file.size());
}

Result<ShardedKb::Shard> LoadShardBinary(std::span<const std::byte> bytes,
                                         const KbLoadOptions& options,
                                         uint32_t expected_shards,
                                         uint32_t expected_index,
                                         ShardInfo* out_info) {
  TENET_ASSIGN_OR_RETURN(SnapshotLayout layout, ParseSnapshotLayout(bytes));
  const SectionEntry* info_entry = FindSection(layout, kSectionShardInfo);
  if (info_entry == nullptr) {
    return Status::InvalidArgument(
        "snapshot named by a shard manifest has no shard_info section");
  }
  TENET_ASSIGN_OR_RETURN(ShardInfo info, ParseShardInfo(bytes, *info_entry));
  if (info.num_shards != expected_shards ||
      info.shard_index != expected_index) {
    return Status::InvalidArgument(
        "shard_info disagrees with the manifest: file claims shard " +
        std::to_string(info.shard_index) + "/" +
        std::to_string(info.num_shards) + ", manifest expects " +
        std::to_string(expected_index) + "/" +
        std::to_string(expected_shards));
  }
  const uint32_t n = info.num_shards;
  const uint32_t s = info.shard_index;
  TENET_ASSIGN_OR_RETURN(
      std::vector<std::string_view> strings,
      ParseStringTable(bytes, layout.known[kSectionStrings - 1]));
  auto string_at = [&strings](uint32_t ref,
                              const char* what) -> Result<std::string_view> {
    if (ref >= strings.size()) {
      return Status::InvalidArgument(
          std::string("string reference out of range in ") + what);
    }
    return strings[ref];
  };

  ShardedKb::Shard shard;

  const SectionEntry& entities = layout.known[kSectionEntities - 1];
  TENET_RETURN_IF_ERROR(CheckRecordSection(entities, "entities"));
  if (static_cast<int64_t>(entities.item_count) !=
      LocalShardCount(info.global_entities, n, s)) {
    return Status::InvalidArgument(
        "shard entity count disagrees with the strided layout");
  }
  shard.entities.reserve(entities.item_count);
  RecordReader entity_reader(bytes.subspan(entities.offset));
  for (uint64_t i = 0; i < entities.item_count; ++i) {
    uint32_t label_ref = entity_reader.Read<uint32_t>();
    int32_t type = entity_reader.Read<int32_t>();
    int32_t domain = entity_reader.Read<int32_t>();
    entity_reader.Read<int32_t>();  // padding
    double popularity = entity_reader.Read<double>();
    TENET_ASSIGN_OR_RETURN(std::string_view label,
                           string_at(label_ref, "entities"));
    if (type < 0 || type >= kNumEntityTypes) {
      return Status::InvalidArgument("bad entity type in shard snapshot");
    }
    if (!std::isfinite(popularity) || popularity <= 0.0) {
      return Status::InvalidArgument("non-positive entity popularity");
    }
    shard.entities.push_back(EntityRecord{std::string(label),
                                          static_cast<EntityType>(type),
                                          domain, popularity});
  }

  const SectionEntry& predicates = layout.known[kSectionPredicates - 1];
  TENET_RETURN_IF_ERROR(CheckRecordSection(predicates, "predicates"));
  if (static_cast<int64_t>(predicates.item_count) !=
      LocalShardCount(info.global_predicates, n, s)) {
    return Status::InvalidArgument(
        "shard predicate count disagrees with the strided layout");
  }
  shard.predicates.reserve(predicates.item_count);
  RecordReader predicate_reader(bytes.subspan(predicates.offset));
  for (uint64_t i = 0; i < predicates.item_count; ++i) {
    uint32_t label_ref = predicate_reader.Read<uint32_t>();
    int32_t domain = predicate_reader.Read<int32_t>();
    predicate_reader.Read<int32_t>();  // padding
    predicate_reader.Read<int32_t>();  // padding
    double popularity = predicate_reader.Read<double>();
    TENET_ASSIGN_OR_RETURN(std::string_view label,
                           string_at(label_ref, "predicates"));
    if (!std::isfinite(popularity) || popularity <= 0.0) {
      return Status::InvalidArgument("non-positive predicate popularity");
    }
    shard.predicates.push_back(
        PredicateRecord{std::string(label), domain, popularity});
  }

  // Aliases hold GLOBAL concept ids; every posting must be homed here.
  const SectionEntry& aliases = layout.known[kSectionAliases - 1];
  TENET_RETURN_IF_ERROR(CheckRecordSection(aliases, "aliases"));
  RecordReader alias_reader(bytes.subspan(aliases.offset));
  std::vector<AliasIndex::RestoreEntry> restore_entries;
  restore_entries.reserve(static_cast<size_t>(aliases.item_count));
  for (uint64_t i = 0; i < aliases.item_count; ++i) {
    uint32_t surface_ref = alias_reader.Read<uint32_t>();
    int32_t concept_id = alias_reader.Read<int32_t>();
    int32_t kind = alias_reader.Read<int32_t>();
    alias_reader.Read<int32_t>();  // padding
    double prior = alias_reader.Read<double>();
    TENET_ASSIGN_OR_RETURN(std::string_view surface,
                           string_at(surface_ref, "aliases"));
    if (!std::isfinite(prior) || prior <= 0.0) {
      return Status::InvalidArgument("non-positive alias prior");
    }
    int64_t global =
        kind == 0 ? info.global_entities : info.global_predicates;
    if (kind != 0 && kind != 1) {
      return Status::InvalidArgument("bad alias concept kind");
    }
    if (concept_id < 0 || concept_id >= global ||
        static_cast<uint32_t>(concept_id % n) != s) {
      return Status::InvalidArgument(
          "alias refers to a concept not homed on this shard");
    }
    restore_entries.push_back(AliasIndex::RestoreEntry{
        surface,
        AliasPosting{kind == 0 ? ConceptRef::Entity(concept_id)
                               : ConceptRef::Predicate(concept_id),
                     prior}});
  }
  shard.alias_index.RestorePostings(restore_entries, options.pool);
  shard.alias_index.Finalize(AliasIndex::FinalizeMode::kRestorePriors,
                             options.pool);

  const SectionEntry& facts = layout.known[kSectionFacts - 1];
  TENET_RETURN_IF_ERROR(CheckRecordSection(facts, "facts"));
  shard.facts.reserve(facts.item_count);
  shard.fact_ids.reserve(facts.item_count);
  RecordReader fact_reader(bytes.subspan(facts.offset));
  int64_t prev_fact_id = -1;
  for (uint64_t i = 0; i < facts.item_count; ++i) {
    int32_t subject = fact_reader.Read<int32_t>();
    int32_t predicate = fact_reader.Read<int32_t>();
    int32_t object_kind = fact_reader.Read<int32_t>();
    int32_t object_entity = fact_reader.Read<int32_t>();
    uint32_t literal_ref = fact_reader.Read<uint32_t>();
    uint32_t global_fact = fact_reader.Read<uint32_t>();
    if (subject < 0 || subject >= info.global_entities || predicate < 0 ||
        predicate >= info.global_predicates) {
      return Status::InvalidArgument("shard fact refers outside the KB");
    }
    int64_t fact_id = static_cast<int64_t>(global_fact);
    if (fact_id >= info.global_facts || fact_id <= prev_fact_id) {
      return Status::InvalidArgument(
          "shard fact ids must be ascending globals");
    }
    prev_fact_id = fact_id;
    Triple t;
    t.subject = subject;
    t.predicate = predicate;
    if (object_kind == 0) {
      if (object_entity < 0 || object_entity >= info.global_entities) {
        return Status::InvalidArgument("shard fact refers outside the KB");
      }
      t.object_entity = object_entity;
      t.object_is_entity = true;
    } else if (object_kind == 1) {
      TENET_ASSIGN_OR_RETURN(std::string_view literal,
                             string_at(literal_ref, "facts"));
      t.object_literal = std::string(literal);
      t.object_is_entity = false;
    } else {
      return Status::InvalidArgument("bad fact object kind");
    }
    shard.facts.push_back(std::move(t));
    shard.fact_ids.push_back(fact_id);
  }

  ShardedKb::BuildShardIndexes(shard, static_cast<int>(n),
                               static_cast<int>(s));
  if (out_info != nullptr) *out_info = info;
  return shard;
}

// Parsed TENETKBSHARDS1 manifest: global counts + per-shard file names
// (relative to the manifest's directory).
struct ShardManifest {
  int32_t num_shards = 0;
  int64_t entities = 0;
  int64_t predicates = 0;
  int64_t facts = 0;
  std::vector<std::pair<std::string, std::string>> files;  // kb, emb
};

Result<ShardManifest> ParseShardManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  TENET_ASSIGN_OR_RETURN(std::string magic, ReadLine(in, "magic"));
  if (magic != kShardManifestMagic) {
    return Status::InvalidArgument("not a TENETKBSHARDS1 manifest: " + path);
  }
  ShardManifest manifest;
  auto read_field = [&in](const char* tag) -> Result<int64_t> {
    TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, tag));
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 2 || fields[0] != tag) {
      return Status::InvalidArgument(std::string("bad manifest field: ") +
                                     tag);
    }
    TENET_ASSIGN_OR_RETURN(int64_t value, ParseInt(fields[1], tag));
    if (value < 0) {
      return Status::InvalidArgument(std::string("negative count in ") + tag);
    }
    return value;
  };
  TENET_ASSIGN_OR_RETURN(int64_t num_shards, read_field("shards"));
  if (num_shards < 1 || num_shards > 4096) {
    return Status::InvalidArgument("implausible manifest shard count");
  }
  manifest.num_shards = static_cast<int32_t>(num_shards);
  TENET_ASSIGN_OR_RETURN(manifest.entities, read_field("entities"));
  TENET_ASSIGN_OR_RETURN(manifest.predicates, read_field("predicates"));
  TENET_ASSIGN_OR_RETURN(manifest.facts, read_field("facts"));
  for (int32_t i = 0; i < manifest.num_shards; ++i) {
    TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "shard files"));
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 2 || fields[0].empty() || fields[1].empty()) {
      return Status::InvalidArgument("bad manifest shard line: " + line);
    }
    manifest.files.emplace_back(fields[0], fields[1]);
  }
  std::string extra;
  if (std::getline(in, extra)) {
    return Status::InvalidArgument("trailing garbage after shard list");
  }
  return manifest;
}

// ---- TENETKB v1 (legacy text) ---------------------------------------------

Status SaveKnowledgeBaseText(const KnowledgeBase& kb,
                             const std::string& path) {
  std::ostringstream out;

  // max_digits10 so every double survives the decimal round trip bit-exact.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << kKbMagicV1 << "\n";
  out << "E\t" << kb.num_entities() << "\n";
  for (EntityId id = 0; id < kb.num_entities(); ++id) {
    const EntityRecord& rec = kb.entity(id);
    if (HasForbiddenChars(rec.label)) {
      return Status::InvalidArgument("label contains tab/newline: " +
                                     rec.label);
    }
    out << static_cast<int>(rec.type) << '\t' << rec.domain << '\t'
        << rec.popularity << '\t' << rec.label << "\n";
  }
  out << "P\t" << kb.num_predicates() << "\n";
  for (PredicateId id = 0; id < kb.num_predicates(); ++id) {
    const PredicateRecord& rec = kb.predicate(id);
    if (HasForbiddenChars(rec.label)) {
      return Status::InvalidArgument("label contains tab/newline: " +
                                     rec.label);
    }
    out << rec.domain << '\t' << rec.popularity << '\t' << rec.label << "\n";
  }

  // Postings are persisted as finalized priors; the loader restores them
  // bit-exactly (renormalization is NOT idempotent in floating point).
  std::vector<std::string> alias_lines;
  kb.alias_index().VisitPostings(
      [&alias_lines](std::string_view surface, const AliasPosting& posting) {
        std::ostringstream line;
        line << std::setprecision(std::numeric_limits<double>::max_digits10);
        line << (posting.concept_ref.is_entity() ? 'E' : 'P') << '\t'
             << posting.concept_ref.id << '\t' << posting.prior << '\t'
             << surface;
        alias_lines.push_back(line.str());
      });
  out << "A\t" << alias_lines.size() << "\n";
  for (const std::string& line : alias_lines) out << line << "\n";

  out << "F\t" << kb.num_facts() << "\n";
  for (const Triple& t : kb.facts()) {
    if (t.object_is_entity) {
      out << t.subject << '\t' << t.predicate << "\tE\t" << t.object_entity
          << "\n";
    } else {
      if (HasForbiddenChars(t.object_literal)) {
        return Status::InvalidArgument("literal contains tab/newline");
      }
      out << t.subject << '\t' << t.predicate << "\tL\t" << t.object_literal
          << "\n";
    }
  }
  const std::string bytes = out.str();
  if (TENET_FAULT_POINT("kb/io/write_truncation")) {
    return SimulateTornWrite(path, bytes.data(), bytes.size(), "snapshot");
  }
  return AtomicWriteFile(path, bytes.data(), bytes.size());
}

Result<KnowledgeBase> LoadKnowledgeBaseText(const std::string& path,
                                            const KbLoadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);

  TENET_ASSIGN_OR_RETURN(std::string magic, ReadLine(in, "magic"));
  if (magic != kKbMagicV1) {
    return Status::InvalidArgument("not a TENETKB v1 file: " + path);
  }
  KnowledgeBase kb;

  auto read_section = [&in](const char* tag) -> Result<int64_t> {
    TENET_ASSIGN_OR_RETURN(std::string header, ReadLine(in, tag));
    std::vector<std::string> fields = SplitTabs(header);
    if (fields.size() != 2 || fields[0] != tag) {
      return Status::InvalidArgument(std::string("bad section header for ") +
                                     tag);
    }
    TENET_ASSIGN_OR_RETURN(int64_t count, ParseInt(fields[1], tag));
    if (count < 0) {
      return Status::InvalidArgument(std::string("negative count in ") + tag);
    }
    return count;
  };

  TENET_ASSIGN_OR_RETURN(int64_t num_entities, read_section("E"));
  for (int64_t i = 0; i < num_entities; ++i) {
    TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "entity"));
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 4) {
      return Status::InvalidArgument("bad entity line: " + line);
    }
    TENET_ASSIGN_OR_RETURN(int64_t type, ParseInt(fields[0], "entity type"));
    if (type < 0 || type >= kNumEntityTypes) {
      return Status::InvalidArgument("bad entity type: " + fields[0]);
    }
    TENET_ASSIGN_OR_RETURN(int64_t domain,
                           ParseInt(fields[1], "entity domain"));
    TENET_ASSIGN_OR_RETURN(double popularity,
                           ParseDouble(fields[2], "entity popularity"));
    if (!std::isfinite(popularity) || popularity <= 0.0) {
      return Status::InvalidArgument("non-positive popularity");
    }
    kb.AddEntity(fields[3], static_cast<EntityType>(type),
                 static_cast<int32_t>(domain), popularity,
                 /*register_label_alias=*/false);
  }

  TENET_ASSIGN_OR_RETURN(int64_t num_predicates, read_section("P"));
  for (int64_t i = 0; i < num_predicates; ++i) {
    TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "predicate"));
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 3) {
      return Status::InvalidArgument("bad predicate line: " + line);
    }
    TENET_ASSIGN_OR_RETURN(int64_t domain,
                           ParseInt(fields[0], "predicate domain"));
    TENET_ASSIGN_OR_RETURN(double popularity,
                           ParseDouble(fields[1], "predicate popularity"));
    if (!std::isfinite(popularity) || popularity <= 0.0) {
      return Status::InvalidArgument("non-positive popularity");
    }
    kb.AddPredicate(fields[2], static_cast<int32_t>(domain), popularity,
                    /*register_label_alias=*/false);
  }

  TENET_ASSIGN_OR_RETURN(int64_t num_aliases, read_section("A"));
  for (int64_t i = 0; i < num_aliases; ++i) {
    TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "alias"));
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 4 || (fields[0] != "E" && fields[0] != "P")) {
      return Status::InvalidArgument("bad alias line: " + line);
    }
    TENET_ASSIGN_OR_RETURN(int64_t id, ParseInt(fields[1], "alias id"));
    TENET_ASSIGN_OR_RETURN(double weight,
                           ParseDouble(fields[2], "alias weight"));
    if (!std::isfinite(weight) || weight <= 0.0) {
      return Status::InvalidArgument("non-positive alias weight");
    }
    if (fields[0] == "E") {
      if (id < 0 || id >= kb.num_entities()) {
        return Status::InvalidArgument("alias refers to unknown entity");
      }
      kb.AddEntityAlias(static_cast<EntityId>(id), fields[3], weight);
    } else {
      if (id < 0 || id >= kb.num_predicates()) {
        return Status::InvalidArgument("alias refers to unknown predicate");
      }
      kb.AddPredicateAlias(static_cast<PredicateId>(id), fields[3], weight);
    }
  }

  TENET_ASSIGN_OR_RETURN(int64_t num_facts, read_section("F"));
  for (int64_t i = 0; i < num_facts; ++i) {
    TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "fact"));
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 4 || (fields[2] != "E" && fields[2] != "L")) {
      return Status::InvalidArgument("bad fact line: " + line);
    }
    TENET_ASSIGN_OR_RETURN(int64_t subject,
                           ParseInt(fields[0], "fact subject"));
    TENET_ASSIGN_OR_RETURN(int64_t predicate,
                           ParseInt(fields[1], "fact predicate"));
    Status status;
    if (fields[2] == "E") {
      TENET_ASSIGN_OR_RETURN(int64_t object,
                             ParseInt(fields[3], "fact object"));
      status = kb.AddFact(static_cast<EntityId>(subject),
                          static_cast<PredicateId>(predicate),
                          static_cast<EntityId>(object));
    } else {
      status = kb.AddLiteralFact(static_cast<EntityId>(subject),
                                 static_cast<PredicateId>(predicate),
                                 fields[3]);
    }
    TENET_RETURN_IF_ERROR(status);
  }

  // Declared counts consumed; anything further means the file is longer
  // than its sections declare — a stitched or corrupt snapshot, not ours.
  std::string extra;
  if (std::getline(in, extra)) {
    return Status::InvalidArgument("trailing garbage after fact section");
  }

  // The persisted priors are finalized probabilities: restore them exactly
  // instead of renormalizing (which would drift by an ulp per round trip).
  kb.Finalize(KnowledgeBase::FinalizeOptions{
      AliasIndex::FinalizeMode::kRestorePriors, options.pool});
  return kb;
}

}  // namespace

Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path,
                         KbFormat format) {
  if (!kb.finalized()) {
    return Status::FailedPrecondition("KB must be finalized before saving");
  }
  return format == KbFormat::kBinaryV2 ? SaveKnowledgeBaseBinary(kb, path)
                                       : SaveKnowledgeBaseText(kb, path);
}

Result<KnowledgeBase> LoadKnowledgeBase(const std::string& path,
                                        const KbLoadOptions& options) {
  if (TENET_FAULT_POINT("kb/io/load_kb")) {
    return Status::DataLoss("injected fault: kb load failed: " + path);
  }
  WallTimer timer;
  // Sniff the magic: binary snapshots go through the mapped path, anything
  // else through the v1 text parser (whose own magic check rejects
  // garbage).
  char magic[sizeof(kKbMagicV2)];
  size_t sniffed = 0;
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return Status::NotFound("cannot open " + path);
    probe.read(magic, sizeof(magic));
    sniffed = static_cast<size_t>(probe.gcount());
  }
  if (sniffed == sizeof(kKbMagicV2) &&
      std::memcmp(magic, kKbMagicV2, sizeof(kKbMagicV2)) == 0) {
    TENET_ASSIGN_OR_RETURN(MmapFile file,
                           MmapFile::Open(path, options.prefer_mmap));
    TENET_ASSIGN_OR_RETURN(KnowledgeBase kb,
                           LoadKnowledgeBaseBinary(file.bytes(), options));
    RecordLoad("kb", file.zero_copy() ? "binary_mmap" : "binary",
               timer.ElapsedMillis(), file.zero_copy() ? file.size() : 0);
    return kb;
  }
  if (sniffed == sizeof(magic) &&
      std::memcmp(magic, kShardManifestMagic, sizeof(magic)) == 0) {
    return Status::InvalidArgument(
        "sharded KB manifest; load via ShardedKb::Load: " + path);
  }
  TENET_ASSIGN_OR_RETURN(KnowledgeBase kb,
                         LoadKnowledgeBaseText(path, options));
  RecordLoad("kb", "text", timer.ElapsedMillis(), 0);
  return kb;
}

Status ShardedKb::Save(const std::string& manifest_path) const {
  const std::string dir = DirPrefix(manifest_path);
  const std::string base = BaseName(manifest_path);
  std::ostringstream manifest;
  manifest << kShardManifestMagic << "\n";
  manifest << "shards\t" << num_shards() << "\n";
  manifest << "entities\t" << num_entities_ << "\n";
  manifest << "predicates\t" << num_predicates_ << "\n";
  manifest << "facts\t" << num_facts_ << "\n";
  for (int s = 0; s < num_shards(); ++s) {
    ShardInfo info;
    info.num_shards = static_cast<uint32_t>(num_shards());
    info.shard_index = static_cast<uint32_t>(s);
    info.global_entities = num_entities_;
    info.global_predicates = num_predicates_;
    info.global_facts = num_facts_;
    const std::string kb_name = base + ".s" + std::to_string(s) + ".kb2";
    const std::string emb_name = base + ".s" + std::to_string(s) + ".emb";
    TENET_RETURN_IF_ERROR(SaveShardBinary(shard(s), info, dir + kb_name));
    TENET_RETURN_IF_ERROR(SaveEmbeddings(*shard(s).embeddings,
                                         dir + emb_name));
    manifest << kb_name << "\t" << emb_name << "\n";
  }
  // The manifest lands last: a crash mid-save leaves at worst orphan shard
  // files, never a manifest naming files that do not exist yet.
  const std::string bytes = manifest.str();
  if (TENET_FAULT_POINT("kb/io/write_truncation")) {
    return SimulateTornWrite(manifest_path, bytes.data(), bytes.size(),
                             "manifest");
  }
  return AtomicWriteFile(manifest_path, bytes.data(), bytes.size());
}

Result<ShardedKb> ShardedKb::Load(const std::string& manifest_path,
                                  const KbLoadOptions& options) {
  if (TENET_FAULT_POINT("kb/io/load_kb")) {
    return Status::DataLoss("injected fault: kb load failed: " +
                            manifest_path);
  }
  TENET_ASSIGN_OR_RETURN(ShardManifest manifest,
                         ParseShardManifest(manifest_path));
  const std::string dir = DirPrefix(manifest_path);
  std::vector<Shard> shards;
  shards.reserve(manifest.files.size());
  for (int32_t s = 0; s < manifest.num_shards; ++s) {
    WallTimer timer;
    TENET_ASSIGN_OR_RETURN(
        MmapFile file,
        MmapFile::Open(dir + manifest.files[s].first, options.prefer_mmap));
    ShardInfo info;
    TENET_ASSIGN_OR_RETURN(
        Shard shard,
        LoadShardBinary(file.bytes(), options,
                        static_cast<uint32_t>(manifest.num_shards),
                        static_cast<uint32_t>(s), &info));
    if (info.global_entities != manifest.entities ||
        info.global_predicates != manifest.predicates ||
        info.global_facts != manifest.facts) {
      return Status::InvalidArgument(
          "shard_info globals disagree with the manifest: " +
          manifest.files[s].first);
    }
    TENET_ASSIGN_OR_RETURN(
        embedding::EmbeddingStore embeddings,
        LoadEmbeddings(dir + manifest.files[s].second, options));
    if (embeddings.num_entities() !=
            static_cast<int32_t>(shard.entities.size()) ||
        embeddings.num_predicates() !=
            static_cast<int32_t>(shard.predicates.size())) {
      return Status::InvalidArgument(
          "shard embedding counts disagree with the snapshot: " +
          manifest.files[s].second);
    }
    if (!shards.empty() &&
        embeddings.dimension() != shards[0].embeddings->dimension()) {
      return Status::InvalidArgument(
          "shard embedding dimensions disagree across shards");
    }
    shard.embeddings =
        std::make_unique<embedding::EmbeddingStore>(std::move(embeddings));
    shard.mapped_bytes = file.zero_copy() ? file.size() : 0;
    shard.load_ms = timer.ElapsedMillis();
    RecordLoad("kb_shard", file.zero_copy() ? "binary_mmap" : "binary",
               shard.load_ms, shard.mapped_bytes);
    shards.push_back(std::move(shard));
  }
  return ShardedKb(std::move(shards),
                   static_cast<int32_t>(manifest.entities),
                   static_cast<int32_t>(manifest.predicates),
                   manifest.facts);
}

Status SaveEmbeddings(const embedding::EmbeddingStore& store,
                      const std::string& path) {
  if (!store.finalized()) {
    return Status::FailedPrecondition(
        "embeddings must be finalized before saving");
  }
  ByteWriter out;
  out.AppendBytes(kEmbMagic, sizeof(kEmbMagic) - 1);
  int32_t header[3] = {store.dimension(), store.num_entities(),
                       store.num_predicates()};
  out.AppendBytes(header, sizeof(header));
  auto dump = [&out, &store](ConceptRef ref) {
    std::span<const float> v = store.Vector(ref);
    out.AppendBytes(v.data(), v.size() * sizeof(float));
  };
  for (EntityId e = 0; e < store.num_entities(); ++e) {
    dump(ConceptRef::Entity(e));
  }
  for (PredicateId p = 0; p < store.num_predicates(); ++p) {
    dump(ConceptRef::Predicate(p));
  }
  if (TENET_FAULT_POINT("kb/io/write_truncation")) {
    return SimulateTornWrite(path, out.data(), out.size(), "matrix");
  }
  return AtomicWriteFile(path, out.data(), out.size());
}

Result<embedding::EmbeddingStore> LoadEmbeddings(
    const std::string& path, const KbLoadOptions& options) {
  if (TENET_FAULT_POINT("kb/io/load_embeddings")) {
    return Status::DataLoss("injected fault: embedding load failed: " + path);
  }
  WallTimer timer;
  TENET_ASSIGN_OR_RETURN(MmapFile file,
                         MmapFile::Open(path, options.prefer_mmap));
  std::span<const std::byte> bytes = file.bytes();
  constexpr size_t kMagicBytes = sizeof(kEmbMagic) - 1;
  constexpr size_t kEmbHeaderBytes = kMagicBytes + 3 * sizeof(int32_t);
  if (bytes.size() < kEmbHeaderBytes ||
      std::memcmp(bytes.data(), kEmbMagic, kMagicBytes) != 0) {
    return Status::InvalidArgument("not a TENETEMB1 file: " + path);
  }
  int32_t header[3];
  std::memcpy(header, bytes.data() + kMagicBytes, sizeof(header));
  if (header[0] <= 0 || header[1] < 0 || header[2] < 0) {
    return Status::InvalidArgument("bad embedding header");
  }
  const uint64_t count = static_cast<uint64_t>(header[0]) *
                         (static_cast<uint64_t>(header[1]) +
                          static_cast<uint64_t>(header[2]));
  const uint64_t expected = kEmbHeaderBytes + count * sizeof(float);
  if (bytes.size() != expected) {
    // Declared counts disagree with the actual payload: a truncated write
    // or trailing bytes.  Either way, nothing is populated.
    return Status::InvalidArgument(
        "truncated embedding file: declared " + std::to_string(expected) +
        " bytes, actual " + std::to_string(bytes.size()));
  }
  embedding::EmbeddingStore store(header[0], header[1], header[2]);
  // Bulk load straight from the mapped payload into the unit-normalized
  // matrix — one copy, one pass, non-finite payloads rejected as DataLoss.
  TENET_RETURN_IF_ERROR(store.LoadMatrix(
      bytes.data() + kEmbHeaderBytes, static_cast<size_t>(count)));
  RecordLoad("embeddings", file.zero_copy() ? "binary_mmap" : "binary",
             timer.ElapsedMillis(), file.zero_copy() ? file.size() : 0);
  return store;
}

Result<KbFileInfo> InspectKnowledgeBaseFile(const std::string& path) {
  char magic[sizeof(kKbMagicV2)];
  size_t sniffed = 0;
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return Status::NotFound("cannot open " + path);
    probe.read(magic, sizeof(magic));
    sniffed = static_cast<size_t>(probe.gcount());
  }
  KbFileInfo info;
  if (sniffed == sizeof(kKbMagicV2) &&
      std::memcmp(magic, kKbMagicV2, sizeof(kKbMagicV2)) == 0) {
    TENET_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
    TENET_ASSIGN_OR_RETURN(SnapshotLayout layout,
                           ParseSnapshotLayout(file.bytes()));
    info.format = "TENETKB2";
    info.file_bytes = file.size();
    for (const SectionEntry& entry : layout.all) {
      info.sections.push_back(KbSectionInfo{SectionName(entry.id),
                                            entry.byte_size,
                                            entry.item_count});
    }
    info.entities =
        static_cast<int64_t>(layout.known[kSectionEntities - 1].item_count);
    info.predicates = static_cast<int64_t>(
        layout.known[kSectionPredicates - 1].item_count);
    info.aliases =
        static_cast<int64_t>(layout.known[kSectionAliases - 1].item_count);
    info.facts =
        static_cast<int64_t>(layout.known[kSectionFacts - 1].item_count);
    if (const SectionEntry* entry = FindSection(layout, kSectionShardInfo)) {
      TENET_ASSIGN_OR_RETURN(ShardInfo shard_info,
                             ParseShardInfo(file.bytes(), *entry));
      info.num_shards = static_cast<int32_t>(shard_info.num_shards);
      info.shard_index = static_cast<int32_t>(shard_info.shard_index);
    }
    return info;
  }
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "magic"));
  if (line == kShardManifestMagic) {
    TENET_ASSIGN_OR_RETURN(ShardManifest manifest, ParseShardManifest(path));
    info.format = kShardManifestMagic;
    {
      std::ifstream sizer(path, std::ios::binary | std::ios::ate);
      info.file_bytes = static_cast<uint64_t>(sizer.tellg());
    }
    info.num_shards = manifest.num_shards;
    info.entities = manifest.entities;
    info.predicates = manifest.predicates;
    info.facts = manifest.facts;
    const std::string dir = DirPrefix(path);
    for (int32_t s = 0; s < manifest.num_shards; ++s) {
      TENET_ASSIGN_OR_RETURN(
          KbFileInfo shard_info,
          InspectKnowledgeBaseFile(dir + manifest.files[s].first));
      if (shard_info.num_shards != manifest.num_shards ||
          shard_info.shard_index != s) {
        return Status::InvalidArgument(
            "manifest names a file that is not shard " + std::to_string(s) +
            ": " + manifest.files[s].first);
      }
      info.aliases += shard_info.aliases;
      info.shards.push_back(std::move(shard_info));
    }
    return info;
  }
  if (line != kKbMagicV1) {
    return Status::InvalidArgument("not a TENET KB file: " + path);
  }
  info.format = kKbMagicV1;
  {
    std::ifstream sizer(path, std::ios::binary | std::ios::ate);
    info.file_bytes = static_cast<uint64_t>(sizer.tellg());
  }
  for (const char* tag : {"E", "P", "A", "F"}) {
    TENET_ASSIGN_OR_RETURN(std::string header, ReadLine(in, tag));
    std::vector<std::string> fields = SplitTabs(header);
    if (fields.size() != 2 || fields[0] != tag) {
      return Status::InvalidArgument(std::string("bad section header for ") +
                                     tag);
    }
    TENET_ASSIGN_OR_RETURN(int64_t count, ParseInt(fields[1], tag));
    if (count < 0) {
      return Status::InvalidArgument(std::string("negative count in ") + tag);
    }
    for (int64_t i = 0; i < count; ++i) {
      TENET_RETURN_IF_ERROR(ReadLine(in, tag).status());
    }
    switch (tag[0]) {
      case 'E': info.entities = count; break;
      case 'P': info.predicates = count; break;
      case 'A': info.aliases = count; break;
      case 'F': info.facts = count; break;
    }
  }
  return info;
}

Result<EmbFileInfo> InspectEmbeddingsFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  char magic[sizeof(kEmbMagic) - 1];
  in.read(magic, sizeof(magic));
  if (!in || std::string_view(magic, sizeof(magic)) != kEmbMagic) {
    return Status::InvalidArgument("not a TENETEMB1 file: " + path);
  }
  int32_t header[3];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || header[0] <= 0 || header[1] < 0 || header[2] < 0) {
    return Status::InvalidArgument("bad embedding header");
  }
  in.seekg(0, std::ios::end);
  EmbFileInfo info;
  info.file_bytes = static_cast<uint64_t>(in.tellg());
  info.dimension = header[0];
  info.entities = header[1];
  info.predicates = header[2];
  const uint64_t expected =
      sizeof(magic) + sizeof(header) +
      static_cast<uint64_t>(header[0]) *
          (static_cast<uint64_t>(header[1]) +
           static_cast<uint64_t>(header[2])) *
          sizeof(float);
  if (info.file_bytes != expected) {
    return Status::InvalidArgument("truncated embedding file");
  }
  return info;
}

namespace {

// Shared derivation core: `visit` enumerates every posting exactly once (in
// any order, possibly split into non-consecutive per-surface runs), `type_of`
// maps the winning entity id to its type.  Ties on prior break toward the
// smaller entity id so the result is independent of visitation order — the
// flat and sharded substrates enumerate postings differently but must yield
// the same gazetteer.
template <typename VisitFn, typename TypeFn>
text::Gazetteer DeriveGazetteerImpl(VisitFn&& visit, TypeFn&& type_of) {
  text::Gazetteer gazetteer;
  // Collect, per surface, the highest-prior entity posting.
  std::unordered_map<std::string, std::pair<double, EntityId>> best;
  visit([&best](std::string_view surface, const AliasPosting& posting) {
    if (!posting.concept_ref.is_entity()) return;
    auto [it, inserted] =
        best.emplace(std::string(surface),
                     std::make_pair(posting.prior, posting.concept_ref.id));
    if (!inserted && (posting.prior > it->second.first ||
                      (posting.prior == it->second.first &&
                       posting.concept_ref.id < it->second.second))) {
      it->second = {posting.prior, posting.concept_ref.id};
    }
  });
  for (const auto& [surface, sense] : best) {
    bool lowercase =
        !surface.empty() &&
        std::islower(static_cast<unsigned char>(surface[0])) != 0;
    gazetteer.AddSurface(surface, type_of(sense.second), lowercase);
  }
  return gazetteer;
}

}  // namespace

text::Gazetteer DeriveGazetteer(const KnowledgeBase& kb) {
  TENET_CHECK(kb.finalized());
  return DeriveGazetteerImpl(
      [&kb](auto&& visitor) { kb.alias_index().VisitPostings(visitor); },
      [&kb](EntityId id) { return kb.entity(id).type; });
}

text::Gazetteer DeriveGazetteer(const KbView& view) {
  return DeriveGazetteerImpl(
      [&view](auto&& visitor) { view.VisitAliasPostings(visitor); },
      [&view](EntityId id) { return view.entity(id).type; });
}

}  // namespace kb
}  // namespace tenet
