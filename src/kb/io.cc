#include "kb/io.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <cctype>
#include <unordered_map>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"

namespace tenet {
namespace kb {
namespace {

constexpr char kKbMagic[] = "TENETKB v1";
constexpr char kEmbMagic[] = "TENETEMB1";

bool HasForbiddenChars(const std::string& s) {
  return s.find('\t') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

// Reads one line, failing with context when the stream is exhausted.
Result<std::string> ReadLine(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(std::string("unexpected end of file: ") +
                                   what);
  }
  return line;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

Result<int64_t> ParseInt(const std::string& s, const char* what) {
  try {
    size_t consumed = 0;
    int64_t value = std::stoll(s, &consumed);
    if (consumed != s.size()) {
      return Status::InvalidArgument(std::string("trailing garbage in ") +
                                     what);
    }
    return value;
  } catch (...) {
    return Status::InvalidArgument(std::string("not an integer: ") + what);
  }
}

Result<double> ParseDouble(const std::string& s, const char* what) {
  try {
    size_t consumed = 0;
    double value = std::stod(s, &consumed);
    if (consumed != s.size()) {
      return Status::InvalidArgument(std::string("trailing garbage in ") +
                                     what);
    }
    return value;
  } catch (...) {
    return Status::InvalidArgument(std::string("not a number: ") + what);
  }
}

}  // namespace

Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path) {
  if (!kb.finalized()) {
    return Status::FailedPrecondition("KB must be finalized before saving");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");

  out << std::setprecision(17);  // doubles round-trip exactly
  out << kKbMagic << "\n";
  out << "E\t" << kb.num_entities() << "\n";
  for (EntityId id = 0; id < kb.num_entities(); ++id) {
    const EntityRecord& rec = kb.entity(id);
    if (HasForbiddenChars(rec.label)) {
      return Status::InvalidArgument("label contains tab/newline: " +
                                     rec.label);
    }
    out << static_cast<int>(rec.type) << '\t' << rec.domain << '\t'
        << rec.popularity << '\t' << rec.label << "\n";
  }
  // Simulates a crash / full disk mid-write: the file is left truncated
  // after the entity section, which LoadKnowledgeBase must reject cleanly.
  if (TENET_FAULT_POINT("kb/io/write_truncation")) {
    out.flush();
    return Status::DataLoss("injected fault: write truncated after entities");
  }
  out << "P\t" << kb.num_predicates() << "\n";
  for (PredicateId id = 0; id < kb.num_predicates(); ++id) {
    const PredicateRecord& rec = kb.predicate(id);
    if (HasForbiddenChars(rec.label)) {
      return Status::InvalidArgument("label contains tab/newline: " +
                                     rec.label);
    }
    out << rec.domain << '\t' << rec.popularity << '\t' << rec.label << "\n";
  }

  // Postings are persisted as finalized priors; renormalization on reload
  // is idempotent, so candidate distributions round-trip exactly.
  std::vector<std::string> alias_lines;
  kb.alias_index().VisitPostings(
      [&alias_lines](std::string_view surface, const AliasPosting& posting) {
        std::ostringstream line;
        line << std::setprecision(17);
        line << (posting.concept_ref.is_entity() ? 'E' : 'P') << '\t'
             << posting.concept_ref.id << '\t' << posting.prior << '\t'
             << surface;
        alias_lines.push_back(line.str());
      });
  out << "A\t" << alias_lines.size() << "\n";
  for (const std::string& line : alias_lines) out << line << "\n";

  out << "F\t" << kb.num_facts() << "\n";
  for (const Triple& t : kb.facts()) {
    if (t.object_is_entity) {
      out << t.subject << '\t' << t.predicate << "\tE\t" << t.object_entity
          << "\n";
    } else {
      if (HasForbiddenChars(t.object_literal)) {
        return Status::InvalidArgument("literal contains tab/newline");
      }
      out << t.subject << '\t' << t.predicate << "\tL\t" << t.object_literal
          << "\n";
    }
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

Result<KnowledgeBase> LoadKnowledgeBase(const std::string& path) {
  if (TENET_FAULT_POINT("kb/io/load_kb")) {
    return Status::DataLoss("injected fault: kb load failed: " + path);
  }
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);

  TENET_ASSIGN_OR_RETURN(std::string magic, ReadLine(in, "magic"));
  if (magic != kKbMagic) {
    return Status::InvalidArgument("not a TENETKB v1 file: " + path);
  }
  KnowledgeBase kb;

  auto read_section = [&in](const char* tag) -> Result<int64_t> {
    TENET_ASSIGN_OR_RETURN(std::string header, ReadLine(in, tag));
    std::vector<std::string> fields = SplitTabs(header);
    if (fields.size() != 2 || fields[0] != tag) {
      return Status::InvalidArgument(std::string("bad section header for ") +
                                     tag);
    }
    TENET_ASSIGN_OR_RETURN(int64_t count, ParseInt(fields[1], tag));
    if (count < 0) {
      return Status::InvalidArgument(std::string("negative count in ") + tag);
    }
    return count;
  };

  TENET_ASSIGN_OR_RETURN(int64_t num_entities, read_section("E"));
  for (int64_t i = 0; i < num_entities; ++i) {
    TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "entity"));
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 4) {
      return Status::InvalidArgument("bad entity line: " + line);
    }
    TENET_ASSIGN_OR_RETURN(int64_t type, ParseInt(fields[0], "entity type"));
    if (type < 0 || type >= kNumEntityTypes) {
      return Status::InvalidArgument("bad entity type: " + fields[0]);
    }
    TENET_ASSIGN_OR_RETURN(int64_t domain,
                           ParseInt(fields[1], "entity domain"));
    TENET_ASSIGN_OR_RETURN(double popularity,
                           ParseDouble(fields[2], "entity popularity"));
    if (popularity <= 0.0) {
      return Status::InvalidArgument("non-positive popularity");
    }
    kb.AddEntity(fields[3], static_cast<EntityType>(type),
                 static_cast<int32_t>(domain), popularity,
                 /*register_label_alias=*/false);
  }

  TENET_ASSIGN_OR_RETURN(int64_t num_predicates, read_section("P"));
  for (int64_t i = 0; i < num_predicates; ++i) {
    TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "predicate"));
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 3) {
      return Status::InvalidArgument("bad predicate line: " + line);
    }
    TENET_ASSIGN_OR_RETURN(int64_t domain,
                           ParseInt(fields[0], "predicate domain"));
    TENET_ASSIGN_OR_RETURN(double popularity,
                           ParseDouble(fields[1], "predicate popularity"));
    if (popularity <= 0.0) {
      return Status::InvalidArgument("non-positive popularity");
    }
    kb.AddPredicate(fields[2], static_cast<int32_t>(domain), popularity,
                    /*register_label_alias=*/false);
  }

  TENET_ASSIGN_OR_RETURN(int64_t num_aliases, read_section("A"));
  for (int64_t i = 0; i < num_aliases; ++i) {
    TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "alias"));
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 4 || (fields[0] != "E" && fields[0] != "P")) {
      return Status::InvalidArgument("bad alias line: " + line);
    }
    TENET_ASSIGN_OR_RETURN(int64_t id, ParseInt(fields[1], "alias id"));
    TENET_ASSIGN_OR_RETURN(double weight,
                           ParseDouble(fields[2], "alias weight"));
    if (weight <= 0.0) {
      return Status::InvalidArgument("non-positive alias weight");
    }
    if (fields[0] == "E") {
      if (id < 0 || id >= kb.num_entities()) {
        return Status::InvalidArgument("alias refers to unknown entity");
      }
      kb.AddEntityAlias(static_cast<EntityId>(id), fields[3], weight);
    } else {
      if (id < 0 || id >= kb.num_predicates()) {
        return Status::InvalidArgument("alias refers to unknown predicate");
      }
      kb.AddPredicateAlias(static_cast<PredicateId>(id), fields[3], weight);
    }
  }

  TENET_ASSIGN_OR_RETURN(int64_t num_facts, read_section("F"));
  for (int64_t i = 0; i < num_facts; ++i) {
    TENET_ASSIGN_OR_RETURN(std::string line, ReadLine(in, "fact"));
    std::vector<std::string> fields = SplitTabs(line);
    if (fields.size() != 4 || (fields[2] != "E" && fields[2] != "L")) {
      return Status::InvalidArgument("bad fact line: " + line);
    }
    TENET_ASSIGN_OR_RETURN(int64_t subject,
                           ParseInt(fields[0], "fact subject"));
    TENET_ASSIGN_OR_RETURN(int64_t predicate,
                           ParseInt(fields[1], "fact predicate"));
    Status status;
    if (fields[2] == "E") {
      TENET_ASSIGN_OR_RETURN(int64_t object,
                             ParseInt(fields[3], "fact object"));
      status = kb.AddFact(static_cast<EntityId>(subject),
                          static_cast<PredicateId>(predicate),
                          static_cast<EntityId>(object));
    } else {
      status = kb.AddLiteralFact(static_cast<EntityId>(subject),
                                 static_cast<PredicateId>(predicate),
                                 fields[3]);
    }
    TENET_RETURN_IF_ERROR(status);
  }

  kb.Finalize();
  return kb;
}

Status SaveEmbeddings(const embedding::EmbeddingStore& store,
                      const std::string& path) {
  if (!store.finalized()) {
    return Status::FailedPrecondition(
        "embeddings must be finalized before saving");
  }
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.write(kEmbMagic, sizeof(kEmbMagic) - 1);
  int32_t header[3] = {store.dimension(), store.num_entities(),
                       store.num_predicates()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  // Simulates a crash mid-write: header present, payload missing.
  if (TENET_FAULT_POINT("kb/io/write_truncation")) {
    out.flush();
    return Status::DataLoss("injected fault: write truncated after header");
  }
  auto dump = [&out, &store](ConceptRef ref) {
    std::span<const float> v = store.Vector(ref);
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(float)));
  };
  for (EntityId e = 0; e < store.num_entities(); ++e) {
    dump(ConceptRef::Entity(e));
  }
  for (PredicateId p = 0; p < store.num_predicates(); ++p) {
    dump(ConceptRef::Predicate(p));
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

Result<embedding::EmbeddingStore> LoadEmbeddings(const std::string& path) {
  if (TENET_FAULT_POINT("kb/io/load_embeddings")) {
    return Status::DataLoss("injected fault: embedding load failed: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  char magic[sizeof(kEmbMagic) - 1];
  in.read(magic, sizeof(magic));
  if (!in || std::string_view(magic, sizeof(magic)) != kEmbMagic) {
    return Status::InvalidArgument("not a TENETEMB1 file: " + path);
  }
  int32_t header[3];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || header[0] <= 0 || header[1] < 0 || header[2] < 0) {
    return Status::InvalidArgument("bad embedding header");
  }
  embedding::EmbeddingStore store(header[0], header[1], header[2]);
  // Reject non-finite payloads before Finalize: NaN/Inf vectors would
  // silently poison every cosine downstream (kDataLoss, not a crash).
  auto slurp = [&in, &store](ConceptRef ref) -> Status {
    std::span<float> v = store.MutableVector(ref);
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
    if (!in) return Status::InvalidArgument("truncated embedding file");
    for (float x : v) {
      if (!std::isfinite(x)) {
        return Status::DataLoss("non-finite embedding payload");
      }
    }
    return Status::Ok();
  };
  for (EntityId e = 0; e < header[1]; ++e) {
    TENET_RETURN_IF_ERROR(slurp(ConceptRef::Entity(e)));
  }
  for (PredicateId p = 0; p < header[2]; ++p) {
    TENET_RETURN_IF_ERROR(slurp(ConceptRef::Predicate(p)));
  }
  store.Finalize();
  return store;
}

text::Gazetteer DeriveGazetteer(const KnowledgeBase& kb) {
  TENET_CHECK(kb.finalized());
  text::Gazetteer gazetteer;
  // Collect, per surface, the highest-prior entity posting.
  std::unordered_map<std::string, std::pair<double, EntityId>> best;
  kb.alias_index().VisitPostings(
      [&best](std::string_view surface, const AliasPosting& posting) {
        if (!posting.concept_ref.is_entity()) return;
        auto [it, inserted] = best.emplace(
            std::string(surface),
            std::make_pair(posting.prior, posting.concept_ref.id));
        if (!inserted && posting.prior > it->second.first) {
          it->second = {posting.prior, posting.concept_ref.id};
        }
      });
  for (const auto& [surface, sense] : best) {
    bool lowercase =
        !surface.empty() &&
        std::islower(static_cast<unsigned char>(surface[0])) != 0;
    gazetteer.AddSurface(surface, kb.entity(sense.second).type, lowercase);
  }
  return gazetteer;
}

}  // namespace kb
}  // namespace tenet
