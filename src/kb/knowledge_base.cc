#include "kb/knowledge_base.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace tenet {
namespace kb {

EntityId KnowledgeBase::AddEntity(std::string_view label, EntityType type,
                                  int32_t domain, double popularity,
                                  bool register_label_alias) {
  TENET_CHECK(!finalized_);
  TENET_CHECK_GT(popularity, 0.0);
  EntityId id = static_cast<EntityId>(entities_.size());
  entities_.push_back(
      EntityRecord{std::string(label), type, domain, popularity});
  if (register_label_alias) {
    alias_index_.Add(label, ConceptRef::Entity(id), popularity);
  }
  return id;
}

PredicateId KnowledgeBase::AddPredicate(std::string_view label,
                                        int32_t domain, double popularity,
                                        bool register_label_alias) {
  TENET_CHECK(!finalized_);
  TENET_CHECK_GT(popularity, 0.0);
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(
      PredicateRecord{std::string(label), domain, popularity});
  if (register_label_alias) {
    alias_index_.Add(label, ConceptRef::Predicate(id), popularity);
  }
  return id;
}

void KnowledgeBase::AddEntityAlias(EntityId id, std::string_view surface,
                                   double weight) {
  TENET_CHECK(!finalized_);
  TENET_CHECK(id >= 0 && id < num_entities());
  double w = weight > 0.0 ? weight : entities_[id].popularity;
  alias_index_.Add(surface, ConceptRef::Entity(id), w);
}

void KnowledgeBase::AddPredicateAlias(PredicateId id,
                                      std::string_view surface,
                                      double weight) {
  TENET_CHECK(!finalized_);
  TENET_CHECK(id >= 0 && id < num_predicates());
  double w = weight > 0.0 ? weight : predicates_[id].popularity;
  alias_index_.Add(surface, ConceptRef::Predicate(id), w);
}

Status KnowledgeBase::AddFact(EntityId subject, PredicateId predicate,
                              EntityId object_entity) {
  TENET_CHECK(!finalized_);
  if (subject < 0 || subject >= num_entities()) {
    return Status::InvalidArgument("bad subject entity id");
  }
  if (object_entity < 0 || object_entity >= num_entities()) {
    return Status::InvalidArgument("bad object entity id");
  }
  if (predicate < 0 || predicate >= num_predicates()) {
    return Status::InvalidArgument("bad predicate id");
  }
  Triple t;
  t.subject = subject;
  t.predicate = predicate;
  t.object_entity = object_entity;
  t.object_is_entity = true;
  facts_.push_back(std::move(t));
  return Status::Ok();
}

Status KnowledgeBase::AddLiteralFact(EntityId subject, PredicateId predicate,
                                     std::string_view literal) {
  TENET_CHECK(!finalized_);
  if (subject < 0 || subject >= num_entities()) {
    return Status::InvalidArgument("bad subject entity id");
  }
  if (predicate < 0 || predicate >= num_predicates()) {
    return Status::InvalidArgument("bad predicate id");
  }
  Triple t;
  t.subject = subject;
  t.predicate = predicate;
  t.object_literal = std::string(literal);
  t.object_is_entity = false;
  facts_.push_back(std::move(t));
  return Status::Ok();
}

void KnowledgeBase::Finalize() {
  TENET_CHECK(!finalized_) << "KnowledgeBase::Finalize called twice";
  alias_index_.Finalize();
  facts_of_entity_.assign(entities_.size(), {});
  facts_of_predicate_.assign(predicates_.size(), {});
  for (int32_t i = 0; i < num_facts(); ++i) {
    const Triple& t = facts_[i];
    facts_of_entity_[t.subject].push_back(i);
    if (t.object_is_entity && t.object_entity != t.subject) {
      facts_of_entity_[t.object_entity].push_back(i);
    }
    facts_of_predicate_[t.predicate].push_back(i);
  }
  finalized_ = true;
}

const EntityRecord& KnowledgeBase::entity(EntityId id) const {
  TENET_CHECK(id >= 0 && id < num_entities()) << "bad entity id " << id;
  return entities_[id];
}

const PredicateRecord& KnowledgeBase::predicate(PredicateId id) const {
  TENET_CHECK(id >= 0 && id < num_predicates()) << "bad predicate id " << id;
  return predicates_[id];
}

std::vector<EntityCandidate> KnowledgeBase::CandidateEntities(
    std::string_view surface, std::optional<EntityType> type,
    int max_candidates) const {
  TENET_CHECK(finalized_);
  std::vector<EntityCandidate> out;
  if (max_candidates <= 0) return out;
  for (const AliasPosting& posting : alias_index_.LookupEntities(surface)) {
    EntityId id = posting.concept_ref.id;
    if (type.has_value() && entities_[id].type != *type) continue;
    out.push_back(EntityCandidate{id, posting.prior});
    if (static_cast<int>(out.size()) == max_candidates) break;
  }
  // Renormalize so the truncated/filtered set is still a distribution.
  double total = 0.0;
  for (const EntityCandidate& c : out) total += c.prior;
  if (total > 0.0) {
    for (EntityCandidate& c : out) c.prior /= total;
  }
  return out;
}

std::vector<PredicateCandidate> KnowledgeBase::CandidatePredicates(
    std::string_view surface, int max_candidates) const {
  TENET_CHECK(finalized_);
  std::vector<PredicateCandidate> out;
  if (max_candidates <= 0) return out;
  for (const AliasPosting& posting :
       alias_index_.LookupPredicates(surface)) {
    out.push_back(PredicateCandidate{posting.concept_ref.id, posting.prior});
    if (static_cast<int>(out.size()) == max_candidates) break;
  }
  double total = 0.0;
  for (const PredicateCandidate& c : out) total += c.prior;
  if (total > 0.0) {
    for (PredicateCandidate& c : out) c.prior /= total;
  }
  return out;
}

const std::vector<int32_t>& KnowledgeBase::FactsOfEntity(EntityId id) const {
  TENET_CHECK(finalized_);
  TENET_CHECK(id >= 0 && id < num_entities());
  return facts_of_entity_[id];
}

const std::vector<int32_t>& KnowledgeBase::FactsOfPredicate(
    PredicateId id) const {
  TENET_CHECK(finalized_);
  TENET_CHECK(id >= 0 && id < num_predicates());
  return facts_of_predicate_[id];
}

std::vector<EntityId> KnowledgeBase::NeighborEntities(EntityId id) const {
  TENET_CHECK(finalized_);
  std::unordered_set<EntityId> seen;
  std::vector<EntityId> out;
  for (int32_t fact_index : FactsOfEntity(id)) {
    const Triple& t = facts_[fact_index];
    EntityId other = kInvalidEntity;
    if (t.subject == id && t.object_is_entity) {
      other = t.object_entity;
    } else if (t.object_is_entity && t.object_entity == id) {
      other = t.subject;
    }
    if (other != kInvalidEntity && other != id && seen.insert(other).second) {
      out.push_back(other);
    }
  }
  return out;
}

}  // namespace kb
}  // namespace tenet
