#include "kb/knowledge_base.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "kb/kb_view.h"

namespace tenet {
namespace kb {

EntityId KnowledgeBase::AddEntity(std::string_view label, EntityType type,
                                  int32_t domain, double popularity,
                                  bool register_label_alias) {
  TENET_CHECK(!finalized_);
  TENET_CHECK_GT(popularity, 0.0);
  EntityId id = static_cast<EntityId>(entities_.size());
  entities_.push_back(
      EntityRecord{std::string(label), type, domain, popularity});
  if (register_label_alias) {
    alias_index_.Add(label, ConceptRef::Entity(id), popularity);
  }
  return id;
}

PredicateId KnowledgeBase::AddPredicate(std::string_view label,
                                        int32_t domain, double popularity,
                                        bool register_label_alias) {
  TENET_CHECK(!finalized_);
  TENET_CHECK_GT(popularity, 0.0);
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(
      PredicateRecord{std::string(label), domain, popularity});
  if (register_label_alias) {
    alias_index_.Add(label, ConceptRef::Predicate(id), popularity);
  }
  return id;
}

void KnowledgeBase::AddEntityAlias(EntityId id, std::string_view surface,
                                   double weight) {
  TENET_CHECK(!finalized_);
  TENET_CHECK(id >= 0 && id < num_entities());
  double w = weight > 0.0 ? weight : entities_[id].popularity;
  alias_index_.Add(surface, ConceptRef::Entity(id), w);
}

void KnowledgeBase::AddPredicateAlias(PredicateId id,
                                      std::string_view surface,
                                      double weight) {
  TENET_CHECK(!finalized_);
  TENET_CHECK(id >= 0 && id < num_predicates());
  double w = weight > 0.0 ? weight : predicates_[id].popularity;
  alias_index_.Add(surface, ConceptRef::Predicate(id), w);
}

void KnowledgeBase::Reserve(int32_t num_entities, int32_t num_predicates,
                            int32_t num_facts) {
  TENET_CHECK(!finalized_);
  entities_.reserve(num_entities);
  predicates_.reserve(num_predicates);
  facts_.reserve(num_facts);
}

void KnowledgeBase::RestoreAliasPostings(
    std::span<const AliasIndex::RestoreEntry> entries, ThreadPool* pool) {
  TENET_CHECK(!finalized_);
  alias_index_.RestorePostings(entries, pool);
}

Status KnowledgeBase::AddFact(EntityId subject, PredicateId predicate,
                              EntityId object_entity) {
  TENET_CHECK(!finalized_);
  if (subject < 0 || subject >= num_entities()) {
    return Status::InvalidArgument("bad subject entity id");
  }
  if (object_entity < 0 || object_entity >= num_entities()) {
    return Status::InvalidArgument("bad object entity id");
  }
  if (predicate < 0 || predicate >= num_predicates()) {
    return Status::InvalidArgument("bad predicate id");
  }
  Triple t;
  t.subject = subject;
  t.predicate = predicate;
  t.object_entity = object_entity;
  t.object_is_entity = true;
  facts_.push_back(std::move(t));
  return Status::Ok();
}

Status KnowledgeBase::AddLiteralFact(EntityId subject, PredicateId predicate,
                                     std::string_view literal) {
  TENET_CHECK(!finalized_);
  if (subject < 0 || subject >= num_entities()) {
    return Status::InvalidArgument("bad subject entity id");
  }
  if (predicate < 0 || predicate >= num_predicates()) {
    return Status::InvalidArgument("bad predicate id");
  }
  Triple t;
  t.subject = subject;
  t.predicate = predicate;
  t.object_literal = std::string(literal);
  t.object_is_entity = false;
  facts_.push_back(std::move(t));
  return Status::Ok();
}

void KnowledgeBase::Finalize(const FinalizeOptions& options) {
  TENET_CHECK(!finalized_) << "KnowledgeBase::Finalize called twice";
  alias_index_.Finalize(options.alias_mode, options.pool);
  // Counted two-pass CSR build: degree count, prefix sums, then a fill
  // pass through cursor copies of the offsets.  Two arena allocations per
  // concept kind instead of one vector per concept — the dominant cost of
  // reconstructing a large KB is small mallocs, not arithmetic.
  entity_fact_offsets_.assign(entities_.size() + 1, 0);
  predicate_fact_offsets_.assign(predicates_.size() + 1, 0);
  for (const Triple& t : facts_) {
    ++entity_fact_offsets_[t.subject + 1];
    if (t.object_is_entity && t.object_entity != t.subject) {
      ++entity_fact_offsets_[t.object_entity + 1];
    }
    ++predicate_fact_offsets_[t.predicate + 1];
  }
  for (size_t i = 1; i < entity_fact_offsets_.size(); ++i) {
    entity_fact_offsets_[i] += entity_fact_offsets_[i - 1];
  }
  for (size_t i = 1; i < predicate_fact_offsets_.size(); ++i) {
    predicate_fact_offsets_[i] += predicate_fact_offsets_[i - 1];
  }
  entity_fact_ids_.resize(entity_fact_offsets_.back());
  predicate_fact_ids_.resize(predicate_fact_offsets_.back());
  std::vector<uint32_t> entity_cursor(entity_fact_offsets_.begin(),
                                      entity_fact_offsets_.end() - 1);
  std::vector<uint32_t> predicate_cursor(predicate_fact_offsets_.begin(),
                                         predicate_fact_offsets_.end() - 1);
  for (int32_t i = 0; i < num_facts(); ++i) {
    const Triple& t = facts_[i];
    entity_fact_ids_[entity_cursor[t.subject]++] = i;
    if (t.object_is_entity && t.object_entity != t.subject) {
      entity_fact_ids_[entity_cursor[t.object_entity]++] = i;
    }
    predicate_fact_ids_[predicate_cursor[t.predicate]++] = i;
  }
  finalized_ = true;
}

const EntityRecord& KnowledgeBase::entity(EntityId id) const {
  TENET_CHECK(id >= 0 && id < num_entities()) << "bad entity id " << id;
  return entities_[id];
}

const PredicateRecord& KnowledgeBase::predicate(PredicateId id) const {
  TENET_CHECK(id >= 0 && id < num_predicates()) << "bad predicate id " << id;
  return predicates_[id];
}

std::vector<EntityCandidate> KnowledgeBase::CandidateEntities(
    std::string_view surface, std::optional<EntityType> type,
    int max_candidates, int* overflow) const {
  TENET_CHECK(finalized_);
  return SelectCandidates<EntityCandidate>(
      alias_index_.LookupEntities(surface), max_candidates, overflow,
      [&](const AliasPosting& posting) {
        return !type.has_value() ||
               entities_[posting.concept_ref.id].type == *type;
      },
      [](const AliasPosting& posting) {
        return EntityCandidate{posting.concept_ref.id, posting.prior};
      });
}

std::vector<PredicateCandidate> KnowledgeBase::CandidatePredicates(
    std::string_view surface, int max_candidates, int* overflow) const {
  TENET_CHECK(finalized_);
  return SelectCandidates<PredicateCandidate>(
      alias_index_.LookupPredicates(surface), max_candidates, overflow,
      [](const AliasPosting&) { return true; },
      [](const AliasPosting& posting) {
        return PredicateCandidate{posting.concept_ref.id, posting.prior};
      });
}

std::span<const int32_t> KnowledgeBase::FactsOfEntity(EntityId id) const {
  TENET_CHECK(finalized_);
  TENET_CHECK(id >= 0 && id < num_entities());
  return std::span<const int32_t>(entity_fact_ids_)
      .subspan(entity_fact_offsets_[id],
               entity_fact_offsets_[id + 1] - entity_fact_offsets_[id]);
}

std::span<const int32_t> KnowledgeBase::FactsOfPredicate(
    PredicateId id) const {
  TENET_CHECK(finalized_);
  TENET_CHECK(id >= 0 && id < num_predicates());
  return std::span<const int32_t>(predicate_fact_ids_)
      .subspan(predicate_fact_offsets_[id],
               predicate_fact_offsets_[id + 1] - predicate_fact_offsets_[id]);
}

std::vector<EntityId> KnowledgeBase::NeighborEntities(EntityId id) const {
  TENET_CHECK(finalized_);
  std::unordered_set<EntityId> seen;
  std::vector<EntityId> out;
  for (int32_t fact_index : FactsOfEntity(id)) {
    const Triple& t = facts_[fact_index];
    EntityId other = kInvalidEntity;
    if (t.subject == id && t.object_is_entity) {
      other = t.object_entity;
    } else if (t.object_is_entity && t.object_entity == id) {
      other = t.subject;
    }
    if (other != kInvalidEntity && other != id && seen.insert(other).second) {
      out.push_back(other);
    }
  }
  return out;
}

}  // namespace kb
}  // namespace tenet
