#include "kb/sharded_kb.h"

#include <algorithm>
#include <cstring>
#include <latch>
#include <unordered_set>

#include "common/dependency_health.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "embedding/dot_kernel.h"
#include "obs/metrics.h"

namespace tenet {
namespace kb {

namespace {

// Home shard / local index of the strided concept layout.
inline int HomeShard(int32_t id, int num_shards) {
  return static_cast<int>(id % num_shards);
}
inline int32_t LocalIndex(int32_t id, int num_shards) {
  return id / num_shards;
}

}  // namespace

ShardedKb::ShardedKb(std::vector<Shard> shards, int32_t num_entities,
                     int32_t num_predicates, int64_t num_facts)
    : shards_(std::move(shards)),
      num_entities_(num_entities),
      num_predicates_(num_predicates),
      num_facts_(num_facts),
      shard_ops_("kb/shard"),
      embedding_ops_("embedding/fetch") {
  TENET_CHECK(!shards_.empty());
  for (const Shard& shard : shards_) {
    TENET_CHECK(shard.embeddings != nullptr && shard.embeddings->finalized());
    TENET_CHECK(shard.alias_index.finalized());
    TENET_CHECK_EQ(shard.facts.size(), shard.fact_ids.size());
  }
  dimension_ = shards_[0].embeddings->dimension();
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
  shard_lookup_ms_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::string label = obs::LabelPair("shard", std::to_string(i));
    shard_lookup_ms_.push_back(registry->GetHistogram(
        "tenet_kb_shard_lookup_ms",
        "Per-shard alias lookup latency of the sharded KB", label));
    registry
        ->GetGauge("tenet_kb_shard_bytes_mapped",
                   "Bytes served zero-copy from this shard's mapped snapshot",
                   label)
        ->Set(static_cast<double>(shards_[i].mapped_bytes));
  }
  degraded_lookups_ = registry->GetCounter(
      "tenet_kb_shard_degraded_lookups_total",
      "Per-shard lookups dropped by a fired kb/shard fault (the request "
      "degrades; it does not fail)");
}

void ShardedKb::BuildShardIndexes(Shard& shard, int num_shards,
                                  int shard_index) {
  // The per-shard analogue of KnowledgeBase::Finalize's counted two-pass
  // CSR build: identical participation rules (subject always; entity
  // object when distinct from the subject; predicate always), restricted
  // to concepts homed on this shard.  shard.facts is in ascending global
  // fact id order, so every per-concept sequence comes out in exactly the
  // flat substrate's order.
  const size_t num_local_entities = shard.entities.size();
  const size_t num_local_predicates = shard.predicates.size();
  shard.entity_fact_offsets.assign(num_local_entities + 1, 0);
  shard.predicate_fact_offsets.assign(num_local_predicates + 1, 0);
  auto local_entity = [&](EntityId id) -> int32_t {
    return HomeShard(id, num_shards) == shard_index
               ? LocalIndex(id, num_shards)
               : -1;
  };
  for (const Triple& t : shard.facts) {
    int32_t subject = local_entity(t.subject);
    if (subject >= 0) ++shard.entity_fact_offsets[subject + 1];
    if (t.object_is_entity && t.object_entity != t.subject) {
      int32_t object = local_entity(t.object_entity);
      if (object >= 0) ++shard.entity_fact_offsets[object + 1];
    }
    if (HomeShard(t.predicate, num_shards) == shard_index) {
      ++shard.predicate_fact_offsets[LocalIndex(t.predicate, num_shards) + 1];
    }
  }
  for (size_t i = 1; i < shard.entity_fact_offsets.size(); ++i) {
    shard.entity_fact_offsets[i] += shard.entity_fact_offsets[i - 1];
  }
  for (size_t i = 1; i < shard.predicate_fact_offsets.size(); ++i) {
    shard.predicate_fact_offsets[i] += shard.predicate_fact_offsets[i - 1];
  }
  shard.entity_fact_pos.resize(shard.entity_fact_offsets.back());
  shard.predicate_fact_pos.resize(shard.predicate_fact_offsets.back());
  std::vector<uint32_t> entity_cursor(shard.entity_fact_offsets.begin(),
                                      shard.entity_fact_offsets.end() - 1);
  std::vector<uint32_t> predicate_cursor(
      shard.predicate_fact_offsets.begin(),
      shard.predicate_fact_offsets.end() - 1);
  for (size_t pos = 0; pos < shard.facts.size(); ++pos) {
    const Triple& t = shard.facts[pos];
    int32_t subject = local_entity(t.subject);
    if (subject >= 0) {
      shard.entity_fact_pos[entity_cursor[subject]++] =
          static_cast<int32_t>(pos);
    }
    if (t.object_is_entity && t.object_entity != t.subject) {
      int32_t object = local_entity(t.object_entity);
      if (object >= 0) {
        shard.entity_fact_pos[entity_cursor[object]++] =
            static_cast<int32_t>(pos);
      }
    }
    if (HomeShard(t.predicate, num_shards) == shard_index) {
      shard.predicate_fact_pos
          [predicate_cursor[LocalIndex(t.predicate, num_shards)]++] =
          static_cast<int32_t>(pos);
    }
  }
}

ShardedKb ShardedKb::Partition(const KnowledgeBase& kb,
                               const embedding::EmbeddingStore& embeddings,
                               int num_shards) {
  TENET_CHECK(kb.finalized());
  TENET_CHECK(embeddings.finalized());
  TENET_CHECK_GE(num_shards, 1);
  TENET_CHECK_EQ(kb.num_entities(), embeddings.num_entities());
  TENET_CHECK_EQ(kb.num_predicates(), embeddings.num_predicates());
  const int n = num_shards;
  std::vector<Shard> shards(n);

  // Records: ascending global id per shard, so local index == id / n.
  for (EntityId e = 0; e < kb.num_entities(); ++e) {
    shards[HomeShard(e, n)].entities.push_back(kb.entity(e));
  }
  for (PredicateId p = 0; p < kb.num_predicates(); ++p) {
    shards[HomeShard(p, n)].predicates.push_back(kb.predicate(p));
  }

  // Alias postings: routed to the *concept's* home shard (each posting
  // exactly once), in finalized order, restored with their finalized
  // priors — per-shard sublists of each surface keep the canonical global
  // order, which is what lets ScatterLookup merge them back exactly.
  std::vector<std::vector<AliasIndex::RestoreEntry>> entries(n);
  kb.alias_index().VisitPostings(
      [&entries, n](std::string_view surface, const AliasPosting& posting) {
        entries[HomeShard(posting.concept_ref.id, n)].push_back(
            AliasIndex::RestoreEntry{surface, posting});
      });
  for (int s = 0; s < n; ++s) {
    shards[s].alias_index.RestorePostings(entries[s]);
    shards[s].alias_index.Finalize(AliasIndex::FinalizeMode::kRestorePriors);
  }

  // Facts: replicated to the home shard of every participant, deduped
  // within a shard, ascending global id.
  const std::vector<Triple>& facts = kb.facts();
  for (size_t f = 0; f < facts.size(); ++f) {
    const Triple& t = facts[f];
    int targets[3];
    int num_targets = 0;
    auto add_target = [&](int s) {
      for (int i = 0; i < num_targets; ++i) {
        if (targets[i] == s) return;
      }
      targets[num_targets++] = s;
    };
    add_target(HomeShard(t.subject, n));
    if (t.object_is_entity) add_target(HomeShard(t.object_entity, n));
    add_target(HomeShard(t.predicate, n));
    for (int i = 0; i < num_targets; ++i) {
      shards[targets[i]].facts.push_back(t);
      shards[targets[i]].fact_ids.push_back(static_cast<int64_t>(f));
    }
  }
  for (int s = 0; s < n; ++s) BuildShardIndexes(shards[s], n, s);

  // Embeddings: copy each concept's float row into its home shard and
  // re-finalize — per-row normalization over identical floats is
  // bit-identical to the flat store's unit rows.
  for (int s = 0; s < n; ++s) {
    Shard& shard = shards[s];
    shard.embeddings = std::make_unique<embedding::EmbeddingStore>(
        embeddings.dimension(),
        static_cast<int32_t>(shard.entities.size()),
        static_cast<int32_t>(shard.predicates.size()));
  }
  auto copy_rows = [&](ConceptRef::Kind kind, int32_t count) {
    for (int32_t id = 0; id < count; ++id) {
      ConceptRef global{kind, id};
      ConceptRef local{kind, LocalIndex(id, n)};
      std::span<const float> src = embeddings.Vector(global);
      std::span<float> dst =
          shards[HomeShard(id, n)].embeddings->MutableVector(local);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  };
  copy_rows(ConceptRef::Kind::kEntity, kb.num_entities());
  copy_rows(ConceptRef::Kind::kPredicate, kb.num_predicates());
  for (int s = 0; s < n; ++s) shards[s].embeddings->Finalize();

  return ShardedKb(std::move(shards), kb.num_entities(),
                   kb.num_predicates(), kb.num_facts());
}

const EntityRecord& ShardedKb::entity(EntityId id) const {
  TENET_CHECK(id >= 0 && id < num_entities_) << "bad entity id " << id;
  return shards_[HomeShard(id, num_shards())]
      .entities[LocalIndex(id, num_shards())];
}

const PredicateRecord& ShardedKb::predicate(PredicateId id) const {
  TENET_CHECK(id >= 0 && id < num_predicates_) << "bad predicate id " << id;
  return shards_[HomeShard(id, num_shards())]
      .predicates[LocalIndex(id, num_shards())];
}

std::vector<AliasPosting> ShardedKb::ScatterLookup(
    std::string_view surface, ConceptRef::Kind kind) const {
  const int n = num_shards();
  std::vector<std::vector<AliasPosting>> per_shard(n);
  auto lookup_one = [&](int s) {
    WallTimer timer;
    // A fired shard degrades the lookup instead of failing it: its
    // candidates are simply absent, the same shape as an alias-index miss,
    // which every downstream stage already tolerates.
    const bool faulted = TENET_FAULT_POINT("kb/shard");
    TENET_OBSERVE_DEPENDENCY("kb/shard", !faulted);
    shard_ops_.Record(!faulted);
    if (faulted) {
      degraded_lookups_->Increment();
    } else if (kind == ConceptRef::Kind::kEntity) {
      per_shard[s] = shards_[s].alias_index.LookupEntities(surface);
    } else {
      per_shard[s] = shards_[s].alias_index.LookupPredicates(surface);
    }
    shard_lookup_ms_[s]->Observe(timer.ElapsedMillis());
  };
  if (lookup_pool_ != nullptr && lookup_pool_->num_threads() > 1 && n > 1) {
    // Fan out shards 1..n-1; the calling thread takes shard 0 and then
    // parks.  Safe only because lookup_pool_ is NOT the serving pool (see
    // set_lookup_pool) — a failed Submit falls back inline.
    std::latch done(n - 1);
    for (int s = 1; s < n; ++s) {
      Status submitted = lookup_pool_->Submit([&lookup_one, &done, s] {
        lookup_one(s);
        done.count_down();
      });
      if (!submitted.ok()) {
        lookup_one(s);
        done.count_down();
      }
    }
    lookup_one(0);
    done.wait();
  } else {
    for (int s = 0; s < n; ++s) lookup_one(s);
  }
  // Gather: concatenate and re-establish the canonical order.  The
  // comparator is a total order and each sublist already respects it, so
  // the sort is a deterministic k-way merge — byte-identical to the flat
  // substrate's posting list when no shard fired.
  size_t total = 0;
  for (const auto& list : per_shard) total += list.size();
  std::vector<AliasPosting> merged;
  merged.reserve(total);
  for (const auto& list : per_shard) {
    merged.insert(merged.end(), list.begin(), list.end());
  }
  std::sort(merged.begin(), merged.end(), CanonicalPostingOrder);
  return merged;
}

std::vector<EntityCandidate> ShardedKb::CandidateEntities(
    std::string_view surface, std::optional<EntityType> type,
    int max_candidates, int* overflow) const {
  return SelectCandidates<EntityCandidate>(
      ScatterLookup(surface, ConceptRef::Kind::kEntity), max_candidates,
      overflow,
      [&](const AliasPosting& posting) {
        return !type.has_value() ||
               entity(posting.concept_ref.id).type == *type;
      },
      [](const AliasPosting& posting) {
        return EntityCandidate{posting.concept_ref.id, posting.prior};
      });
}

std::vector<PredicateCandidate> ShardedKb::CandidatePredicates(
    std::string_view surface, int max_candidates, int* overflow) const {
  return SelectCandidates<PredicateCandidate>(
      ScatterLookup(surface, ConceptRef::Kind::kPredicate), max_candidates,
      overflow, [](const AliasPosting&) { return true; },
      [](const AliasPosting& posting) {
        return PredicateCandidate{posting.concept_ref.id, posting.prior};
      });
}

void ShardedKb::VisitFactsOfEntity(EntityId id,
                                   const FactVisitor& visitor) const {
  TENET_CHECK(id >= 0 && id < num_entities_);
  const Shard& shard = shards_[HomeShard(id, num_shards())];
  int32_t local = LocalIndex(id, num_shards());
  for (uint32_t i = shard.entity_fact_offsets[local];
       i < shard.entity_fact_offsets[local + 1]; ++i) {
    int32_t pos = shard.entity_fact_pos[i];
    if (!visitor(shard.fact_ids[pos], shard.facts[pos])) return;
  }
}

void ShardedKb::VisitFactsOfPredicate(PredicateId id,
                                      const FactVisitor& visitor) const {
  TENET_CHECK(id >= 0 && id < num_predicates_);
  const Shard& shard = shards_[HomeShard(id, num_shards())];
  int32_t local = LocalIndex(id, num_shards());
  for (uint32_t i = shard.predicate_fact_offsets[local];
       i < shard.predicate_fact_offsets[local + 1]; ++i) {
    int32_t pos = shard.predicate_fact_pos[i];
    if (!visitor(shard.fact_ids[pos], shard.facts[pos])) return;
  }
}

std::vector<EntityId> ShardedKb::NeighborEntities(EntityId id) const {
  // Identical logic and visitation order to KnowledgeBase::NeighborEntities
  // — fact replication guarantees the home shard sees every fact of `id`
  // in ascending global order.
  std::unordered_set<EntityId> seen;
  std::vector<EntityId> out;
  VisitFactsOfEntity(id, [&](int64_t, const Triple& t) {
    EntityId other = kInvalidEntity;
    if (t.subject == id && t.object_is_entity) {
      other = t.object_entity;
    } else if (t.object_is_entity && t.object_entity == id) {
      other = t.subject;
    }
    if (other != kInvalidEntity && other != id && seen.insert(other).second) {
      out.push_back(other);
    }
    return true;
  });
  return out;
}

double ShardedKb::Cosine(ConceptRef a, ConceptRef b) const {
  // One embedding/fetch probe per call, exactly like EmbeddingStore::Cosine
  // — the sharded store is one logical dependency, not N.
  const bool faulted = TENET_FAULT_POINT("embedding/fetch");
  TENET_OBSERVE_DEPENDENCY("embedding/fetch", !faulted);
  embedding_ops_.Record(!faulted);
  if (faulted) return 0.0;
  const int n = num_shards();
  std::span<const double> ua =
      shards_[HomeShard(a.id, n)].embeddings->UnitVector(
          ConceptRef{a.kind, LocalIndex(a.id, n)});
  std::span<const double> ub =
      shards_[HomeShard(b.id, n)].embeddings->UnitVector(
          ConceptRef{b.kind, LocalIndex(b.id, n)});
  return embedding::ClampCosine(
      embedding::DotUnit(ua.data(), ub.data(), dimension_));
}

void ShardedKb::GatherUnit(std::span<const ConceptRef> refs,
                           double* out) const {
  const bool faulted = TENET_FAULT_POINT("embedding/fetch");
  TENET_OBSERVE_DEPENDENCY("embedding/fetch", !faulted);
  embedding_ops_.Record(!faulted);
  const size_t row_bytes = static_cast<size_t>(dimension_) * sizeof(double);
  if (faulted) {
    std::memset(out, 0, refs.size() * row_bytes);
    return;
  }
  const int n = num_shards();
  for (size_t i = 0; i < refs.size(); ++i) {
    std::span<const double> row =
        shards_[HomeShard(refs[i].id, n)].embeddings->UnitVector(
            ConceptRef{refs[i].kind, LocalIndex(refs[i].id, n)});
    std::memcpy(out + i * static_cast<size_t>(dimension_), row.data(),
                row_bytes);
  }
}

void ShardedKb::VisitAliasPostings(const PostingVisitor& visitor) const {
  // Each posting lives on exactly one shard (its concept's home), so this
  // visits every posting exactly once.  Unlike the flat substrate, the
  // postings of one surface may arrive in several runs (one per shard) —
  // consumers must be order-independent (DeriveGazetteer's tie-break is).
  for (const Shard& shard : shards_) {
    shard.alias_index.VisitPostings(visitor);
  }
}

}  // namespace kb
}  // namespace tenet
