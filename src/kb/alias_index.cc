#include "kb/alias_index.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <latch>

#include "common/dependency_health.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace tenet {
namespace kb {

size_t AliasIndex::ShardOf(std::string_view folded_surface) {
  static_assert((kNumShards & (kNumShards - 1)) == 0,
                "shard count must be a power of two");
  return std::hash<std::string_view>{}(folded_surface) & (kNumShards - 1);
}

void AliasIndex::Add(std::string_view surface, ConceptRef concept_ref,
                     double weight) {
  TENET_CHECK(!finalized_) << "AliasIndex::Add after Finalize";
  TENET_CHECK_GT(weight, 0.0);
  TENET_CHECK(concept_ref.valid());
  std::string key = AsciiToLower(surface);
  if (key.empty()) return;
  std::vector<AliasPosting>& list = shards_[ShardOf(key)].postings[key];
  for (AliasPosting& posting : list) {
    if (posting.concept_ref == concept_ref) {
      posting.prior += weight;
      return;
    }
  }
  list.push_back(AliasPosting{concept_ref, weight});
}

void AliasIndex::FinalizeShard(Shard& shard, FinalizeMode mode) {
  // kRestorePriors leaves every list untouched: stored priors come back
  // bit-exact, and serialization preserved the finalized (descending-prior)
  // order, so both the division and the sort would be identities anyway.
  if (mode == FinalizeMode::kRestorePriors) return;
  for (auto& [surface, list] : shard.postings) {
    double entity_total = 0.0;
    double predicate_total = 0.0;
    for (const AliasPosting& posting : list) {
      if (posting.concept_ref.is_entity()) {
        entity_total += posting.prior;
      } else {
        predicate_total += posting.prior;
      }
    }
    for (AliasPosting& posting : list) {
      double total =
          posting.concept_ref.is_entity() ? entity_total : predicate_total;
      posting.prior = total > 0.0 ? posting.prior / total : 0.0;
    }
    // The canonical order is total, so std::sort suffices and the result
    // is deterministic regardless of insertion order — a prerequisite for
    // sharded loads to reproduce flat candidate lists exactly.
    std::sort(list.begin(), list.end(), CanonicalPostingOrder);
  }
}

void AliasIndex::RestoreShardRanges(Shard& shard,
                                    std::span<const RestoreEntry> entries,
                                    const std::vector<GroupRange>& ranges) {
  // One up-front rehash; without it the map rehashes every key log(n)
  // times as it grows.  All per-surface allocation (key string, posting
  // list) happens here, inside the shard's own task.
  shard.postings.reserve(shard.postings.size() + ranges.size());
  for (const GroupRange& range : ranges) {
    auto [it, inserted] = shard.postings.try_emplace(
        AsciiToLower(entries[range.first].surface));
    std::vector<AliasPosting>& list = it->second;
    list.reserve(list.size() + (range.second - range.first));
    for (size_t k = range.first; k < range.second; ++k) {
      list.push_back(entries[k].posting);
    }
  }
}

void AliasIndex::RestorePostings(std::span<const RestoreEntry> entries,
                                 ThreadPool* pool) {
  TENET_CHECK(!finalized_) << "AliasIndex::RestorePostings after Finalize";
  // Serial pass: group boundaries + shard routing.  Hashes the borrowed
  // view directly — snapshots store folded keys, so ShardOf(view) equals
  // ShardOf(folded key) without materializing a string.  (An unfolded
  // surface still lands correctly: fold it for routing only.)
  std::array<std::vector<GroupRange>, kNumShards> by_shard;
  std::string folded;
  size_t i = 0;
  while (i < entries.size()) {
    size_t j = i + 1;
    while (j < entries.size() && entries[j].surface == entries[i].surface) {
      ++j;
    }
    std::string_view key = entries[i].surface;
    if (!key.empty()) {
      size_t shard;
      if (std::any_of(key.begin(), key.end(),
                      [](char c) { return c != AsciiFoldChar(c); })) {
        folded = AsciiToLower(key);
        shard = ShardOf(folded);
      } else {
        shard = ShardOf(key);
      }
      by_shard[shard].emplace_back(i, j);
    }
    i = j;
  }
  if (pool != nullptr && pool->num_threads() > 1) {
    // Work-stealing over a shared counter, and the calling thread drains
    // shards too — it just wrote `entries`, so its cache is the hottest,
    // and parking it at the latch would make the pooled path slower than
    // the serial one for snapshot-sized batches.
    std::atomic<size_t> next{0};
    auto drain = [this, entries, &by_shard, &next] {
      size_t s;
      while ((s = next.fetch_add(1, std::memory_order_relaxed)) <
             shards_.size()) {
        RestoreShardRanges(shards_[s], entries, by_shard[s]);
      }
    };
    size_t helpers = std::min<size_t>(pool->num_threads(), shards_.size());
    std::latch done(static_cast<ptrdiff_t>(helpers));
    for (size_t h = 0; h < helpers; ++h) {
      Status submitted = pool->Submit([&drain, &done] {
        drain();
        done.count_down();
      });
      if (!submitted.ok()) done.count_down();  // pool shut down: main drains
    }
    drain();
    done.wait();
  } else {
    for (size_t s = 0; s < shards_.size(); ++s) {
      RestoreShardRanges(shards_[s], entries, by_shard[s]);
    }
  }
}

void AliasIndex::Finalize(FinalizeMode mode, ThreadPool* pool) {
  TENET_CHECK(!finalized_) << "AliasIndex::Finalize called twice";
  if (mode == FinalizeMode::kRestorePriors) {
    // Nothing to compute (see FinalizeShard); don't bounce off the pool.
    finalized_ = true;
    return;
  }
  if (pool != nullptr && pool->num_threads() > 1) {
    std::latch done(static_cast<ptrdiff_t>(shards_.size()));
    for (Shard& shard : shards_) {
      Status submitted = pool->Submit([&shard, mode, &done] {
        FinalizeShard(shard, mode);
        done.count_down();
      });
      if (!submitted.ok()) {  // pool shut down mid-build: do it here
        FinalizeShard(shard, mode);
        done.count_down();
      }
    }
    done.wait();
  } else {
    for (Shard& shard : shards_) FinalizeShard(shard, mode);
  }
  finalized_ = true;
}

size_t AliasIndex::num_surfaces() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.postings.size();
  return total;
}

std::vector<AliasPosting> AliasIndex::Lookup(std::string_view surface,
                                             ConceptRef::Kind kind) const {
  TENET_CHECK(finalized_) << "AliasIndex::Lookup before Finalize";
  std::vector<AliasPosting> out;
  // A fired lookup fault behaves like an index miss: the mention simply has
  // no candidates, which downstream stages must tolerate anyway.  (A genuine
  // miss for an unknown surface is a healthy outcome, not a failure.)
  const bool faulted = TENET_FAULT_POINT("kb/alias_lookup");
  TENET_OBSERVE_DEPENDENCY("kb/alias_lookup", !faulted);
  static obs::DependencyOpCounters& ops =
      *new obs::DependencyOpCounters("kb/alias_lookup");
  ops.Record(!faulted);
  if (faulted) return out;
  std::string key = AsciiToLower(surface);
  const Shard& shard = shards_[ShardOf(key)];
  auto it = shard.postings.find(key);
  if (it == shard.postings.end()) return out;
  for (const AliasPosting& posting : it->second) {
    if (posting.concept_ref.kind == kind) out.push_back(posting);
  }
  return out;
}

std::vector<AliasPosting> AliasIndex::LookupEntities(
    std::string_view surface) const {
  return Lookup(surface, ConceptRef::Kind::kEntity);
}

std::vector<AliasPosting> AliasIndex::LookupPredicates(
    std::string_view surface) const {
  return Lookup(surface, ConceptRef::Kind::kPredicate);
}

bool AliasIndex::ContainsSurface(std::string_view surface,
                                 ConceptRef::Kind kind) const {
  std::string key = AsciiToLower(surface);
  const Shard& shard = shards_[ShardOf(key)];
  auto it = shard.postings.find(key);
  if (it == shard.postings.end()) return false;
  for (const AliasPosting& posting : it->second) {
    if (posting.concept_ref.kind == kind) return true;
  }
  return false;
}

}  // namespace kb
}  // namespace tenet
