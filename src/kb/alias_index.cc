#include "kb/alias_index.h"

#include <algorithm>

#include "common/dependency_health.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace tenet {
namespace kb {

void AliasIndex::Add(std::string_view surface, ConceptRef concept_ref,
                     double weight) {
  TENET_CHECK(!finalized_) << "AliasIndex::Add after Finalize";
  TENET_CHECK_GT(weight, 0.0);
  TENET_CHECK(concept_ref.valid());
  std::string key = AsciiToLower(surface);
  if (key.empty()) return;
  std::vector<AliasPosting>& list = postings_[key];
  for (AliasPosting& posting : list) {
    if (posting.concept_ref == concept_ref) {
      posting.prior += weight;
      return;
    }
  }
  list.push_back(AliasPosting{concept_ref, weight});
}

void AliasIndex::Finalize() {
  TENET_CHECK(!finalized_) << "AliasIndex::Finalize called twice";
  for (auto& [surface, list] : postings_) {
    double entity_total = 0.0;
    double predicate_total = 0.0;
    for (const AliasPosting& posting : list) {
      if (posting.concept_ref.is_entity()) {
        entity_total += posting.prior;
      } else {
        predicate_total += posting.prior;
      }
    }
    for (AliasPosting& posting : list) {
      double total =
          posting.concept_ref.is_entity() ? entity_total : predicate_total;
      posting.prior = total > 0.0 ? posting.prior / total : 0.0;
    }
    std::stable_sort(list.begin(), list.end(),
                     [](const AliasPosting& a, const AliasPosting& b) {
                       return a.prior > b.prior;
                     });
  }
  finalized_ = true;
}

std::vector<AliasPosting> AliasIndex::Lookup(std::string_view surface,
                                             ConceptRef::Kind kind) const {
  TENET_CHECK(finalized_) << "AliasIndex::Lookup before Finalize";
  std::vector<AliasPosting> out;
  // A fired lookup fault behaves like an index miss: the mention simply has
  // no candidates, which downstream stages must tolerate anyway.  (A genuine
  // miss for an unknown surface is a healthy outcome, not a failure.)
  const bool faulted = TENET_FAULT_POINT("kb/alias_lookup");
  TENET_OBSERVE_DEPENDENCY("kb/alias_lookup", !faulted);
  static obs::DependencyOpCounters& ops =
      *new obs::DependencyOpCounters("kb/alias_lookup");
  ops.Record(!faulted);
  if (faulted) return out;
  auto it = postings_.find(AsciiToLower(surface));
  if (it == postings_.end()) return out;
  for (const AliasPosting& posting : it->second) {
    if (posting.concept_ref.kind == kind) out.push_back(posting);
  }
  return out;
}

std::vector<AliasPosting> AliasIndex::LookupEntities(
    std::string_view surface) const {
  return Lookup(surface, ConceptRef::Kind::kEntity);
}

std::vector<AliasPosting> AliasIndex::LookupPredicates(
    std::string_view surface) const {
  return Lookup(surface, ConceptRef::Kind::kPredicate);
}

bool AliasIndex::ContainsSurface(std::string_view surface,
                                 ConceptRef::Kind kind) const {
  auto it = postings_.find(AsciiToLower(surface));
  if (it == postings_.end()) return false;
  for (const AliasPosting& posting : it->second) {
    if (posting.concept_ref.kind == kind) return true;
  }
  return false;
}

}  // namespace kb
}  // namespace tenet
