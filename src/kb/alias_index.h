#ifndef TENET_KB_ALIAS_INDEX_H_
#define TENET_KB_ALIAS_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/types.h"

namespace tenet {
namespace kb {

// One candidate concept for a surface form, with its prior matching
// probability P(c | surface) (Equations 1 and 2 of the paper).
struct AliasPosting {
  ConceptRef concept_ref;
  /// Raw popularity weight before Finalize(); P(c|surface) afterwards.
  double prior = 0.0;
};

// Case-insensitive inverted index from surface forms (labels and aliases)
// to candidate concepts — the in-process equivalent of the Solr/Lucene index
// the paper builds over the Wikidata JSON dump (Sec. 6.1, "Indexing the
// Candidate Entities and Predicates").
//
// Usage: Add() postings while loading the KB, then Finalize() once to
// normalize popularity weights into prior probabilities per (surface, kind).
class AliasIndex {
 public:
  AliasIndex() = default;

  /// Registers `concept` as a candidate of `surface` with popularity
  /// `weight` (> 0).  Duplicate (surface, concept) pairs accumulate weight.
  void Add(std::string_view surface, ConceptRef concept_ref, double weight);

  /// Normalizes weights to probabilities: within each surface form, entity
  /// postings sum to 1 and predicate postings sum to 1 (entities and
  /// predicates are disambiguated against their own candidate sets).
  /// Postings are sorted by descending prior.  Must be called exactly once.
  void Finalize();

  /// Entity candidates of `surface`, most probable first; empty when the
  /// surface is unknown (a non-linkable phrase).
  std::vector<AliasPosting> LookupEntities(std::string_view surface) const;

  /// Predicate candidates of `surface`, most probable first.
  std::vector<AliasPosting> LookupPredicates(std::string_view surface) const;

  /// True when the (case-folded) surface has at least one posting of the
  /// requested kind.
  bool ContainsSurface(std::string_view surface,
                       ConceptRef::Kind kind) const;

  /// Number of distinct (case-folded) surface forms.
  size_t num_surfaces() const { return postings_.size(); }

  /// Invokes `visitor(surface, posting)` for every posting (iteration
  /// order unspecified).  Used by serialization.
  template <typename Visitor>
  void VisitPostings(Visitor&& visitor) const {
    for (const auto& [surface, list] : postings_) {
      for (const AliasPosting& posting : list) {
        visitor(surface, posting);
      }
    }
  }

  bool finalized() const { return finalized_; }

 private:
  std::vector<AliasPosting> Lookup(std::string_view surface,
                                   ConceptRef::Kind kind) const;

  std::unordered_map<std::string, std::vector<AliasPosting>> postings_;
  bool finalized_ = false;
};

}  // namespace kb
}  // namespace tenet

#endif  // TENET_KB_ALIAS_INDEX_H_
