#ifndef TENET_KB_ALIAS_INDEX_H_
#define TENET_KB_ALIAS_INDEX_H_

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/types.h"

namespace tenet {

class ThreadPool;

namespace kb {

// One candidate concept for a surface form, with its prior matching
// probability P(c | surface) (Equations 1 and 2 of the paper).
struct AliasPosting {
  ConceptRef concept_ref;
  /// Raw popularity weight before Finalize(); P(c|surface) afterwards.
  double prior = 0.0;
};

/// Canonical total order of the postings of one surface: descending prior,
/// then entities before predicates, then ascending id.  Finalize() sorts
/// every posting list this way, and because it is a *total* order (no two
/// distinct postings compare equal), any hash-partitioned subset of a list
/// preserves it — so a sharded KB can k-way-merge per-shard sublists with
/// this same comparator and reproduce the flat list byte-for-byte.
inline bool CanonicalPostingOrder(const AliasPosting& a,
                                  const AliasPosting& b) {
  if (a.prior != b.prior) return a.prior > b.prior;
  if (a.concept_ref.kind != b.concept_ref.kind) {
    return a.concept_ref.kind < b.concept_ref.kind;
  }
  return a.concept_ref.id < b.concept_ref.id;
}

// Case-insensitive inverted index from surface forms (labels and aliases)
// to candidate concepts — the in-process equivalent of the Solr/Lucene index
// the paper builds over the Wikidata JSON dump (Sec. 6.1, "Indexing the
// Candidate Entities and Predicates").
//
// The posting lists are sharded by the hash of the case-folded surface:
// Finalize() normalizes each shard independently (in parallel on a
// ThreadPool when one is supplied), a lookup touches exactly one shard, and
// the shard key is the unit a future cross-replica KB partitioning would
// route on.  Case folding is the explicit ASCII fold (AsciiFoldChar) —
// never std::tolower, whose locale dependence would corrupt keys holding
// UTF-8 bytes.
//
// Usage: Add() postings while loading the KB, then Finalize() once to
// normalize popularity weights into prior probabilities per (surface, kind).
class AliasIndex {
 public:
  /// Posting-list shards; a power of two, sized so that parallel Finalize
  /// saturates typical core counts without fragmenting small KBs.
  static constexpr size_t kNumShards = 16;

  /// What Finalize() does with the accumulated weights.
  enum class FinalizeMode {
    /// Normalize weights to probabilities: within each surface form, entity
    /// postings sum to 1 and predicate postings sum to 1 (entities and
    /// predicates are disambiguated against their own candidate sets).
    kNormalizeWeights,
    /// Trust the added weights as already-finalized priors and restore them
    /// bit-exactly — the deserialization mode.  Renormalizing on reload is
    /// NOT idempotent in floating point (priors summing to 1-1ulp shift by
    /// an ulp each round trip, enough to flip near-tie disambiguation), so
    /// loaders must restore, not re-derive.
    kRestorePriors,
  };

  AliasIndex() = default;

  /// Registers `concept` as a candidate of `surface` with popularity
  /// `weight` (> 0).  Duplicate (surface, concept) pairs accumulate weight.
  void Add(std::string_view surface, ConceptRef concept_ref, double weight);

  /// One decoded alias record of the bulk restore path.  Records of one
  /// surface must be consecutive and already in finalized
  /// (descending-prior) order; `surface` is borrowed — it typically points
  /// into a mapped snapshot and must stay valid for the duration of
  /// RestorePostings.
  struct RestoreEntry {
    std::string_view surface;  // case-folded (folded here if not)
    AliasPosting posting;
  };

  /// Bulk restore — the deserialization fast path.  Consecutive entries of
  /// one surface become one posting list, inserted with a single
  /// exact-sized hash insert (Add pays one hash and possible growth per
  /// posting).  All allocation happens inside the per-shard work, which
  /// runs in parallel when `pool` is given (shards are independent, so the
  /// result is identical at any thread count).  A repeated surface appends
  /// to the earlier list.  Must precede Finalize(), which should then run
  /// in kRestorePriors mode — the lists arrive in their final order.
  void RestorePostings(std::span<const RestoreEntry> entries,
                       ThreadPool* pool = nullptr);

  /// Freezes the index; postings end up in CanonicalPostingOrder within
  /// each surface.  Must be called exactly once.  With `pool`, shards are
  /// finalized in parallel (the result is identical at any thread count —
  /// shards are independent).
  void Finalize(FinalizeMode mode = FinalizeMode::kNormalizeWeights,
                ThreadPool* pool = nullptr);

  /// Entity candidates of `surface`, most probable first; empty when the
  /// surface is unknown (a non-linkable phrase).
  std::vector<AliasPosting> LookupEntities(std::string_view surface) const;

  /// Predicate candidates of `surface`, most probable first.
  std::vector<AliasPosting> LookupPredicates(std::string_view surface) const;

  /// True when the (case-folded) surface has at least one posting of the
  /// requested kind.
  bool ContainsSurface(std::string_view surface,
                       ConceptRef::Kind kind) const;

  /// Number of distinct (case-folded) surface forms, summed over shards.
  size_t num_surfaces() const;

  /// Shard index of the (case-folded) surface — the routing key lookups
  /// and a future replica partitioning both use.
  static size_t ShardOf(std::string_view folded_surface);

  /// Invokes `visitor(surface, posting)` for every posting, shard by
  /// shard; iteration order within a shard is unspecified, but all
  /// postings of one surface are visited consecutively in their finalized
  /// (descending-prior) order.  Used by serialization.
  template <typename Visitor>
  void VisitPostings(Visitor&& visitor) const {
    for (const Shard& shard : shards_) {
      for (const auto& [surface, list] : shard.postings) {
        for (const AliasPosting& posting : list) {
          visitor(surface, posting);
        }
      }
    }
  }

  bool finalized() const { return finalized_; }

 private:
  // Cache-line aligned: parallel restore/finalize mutates adjacent shards
  // from different threads, and an unpadded map header (~56 bytes) would
  // false-share its neighbor's line on every insert.
  struct alignas(64) Shard {
    std::unordered_map<std::string, std::vector<AliasPosting>> postings;
  };

  // A [begin, end) run of RestoreEntry indexes sharing one surface.
  using GroupRange = std::pair<size_t, size_t>;

  static void FinalizeShard(Shard& shard, FinalizeMode mode);
  static void RestoreShardRanges(Shard& shard,
                                 std::span<const RestoreEntry> entries,
                                 const std::vector<GroupRange>& ranges);

  std::vector<AliasPosting> Lookup(std::string_view surface,
                                   ConceptRef::Kind kind) const;

  std::array<Shard, kNumShards> shards_;
  bool finalized_ = false;
};

}  // namespace kb
}  // namespace tenet

#endif  // TENET_KB_ALIAS_INDEX_H_
