#ifndef TENET_SERVING_SESSION_H_
#define TENET_SERVING_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/link_context.h"
#include "core/pipeline.h"
#include "embedding/similarity_cache.h"
#include "kb/kb_view.h"
#include "kb/knowledge_base.h"

namespace tenet {
namespace serving {

// Session-scoped serving state for streaming/conversational workloads
// (DESIGN.md §13).  A SessionContext carries two things across the turns
// of one conversation:
//
//  1. A per-session SimilarityCache: turns of a session revisit the same
//     concept pairs, so the coherence stage of turn k reuses the cosines
//     turn k-1 computed.  Entries are epoch-tagged exactly like the
//     service-wide cache (LinkContext::similarity_epoch), so a KB
//     generation swap mid-session invalidates lazily instead of serving
//     stale cosines.
//
//  2. Entity memory: the entities earlier turns resolved, keyed by the
//     surfaces that resolved to them and by their pronoun-like short forms
//     (last word of the surface).  Later turns referencing a cast member
//     by an ambiguous alias or a bare short form are re-ranked against
//     this memory — among a mention's KB candidates, a previously-seen
//     entity wins; an isolated mention whose surface is remembered links
//     to the remembered entity.
//
// Lifecycle: construct per conversation, call ApplySessionCoherence +
// ObserveTurn on each turn's result in order, destroy with the
// conversation.  A SessionContext is NOT thread-safe — turns of one
// session are inherently sequential; concurrent *sessions* each own their
// context.
struct SessionOptions {
  /// Byte budget of the per-session similarity cache; 0 disables it (the
  /// request then uses whatever cache the service attaches).
  size_t similarity_cache_bytes = 1u << 20;
  /// When false, entity memory is kept but never applied (ablation knob:
  /// cache-only sessions).
  bool apply_entity_memory = true;
  /// Candidates probed per linked mention when re-ranking against memory.
  int memory_probe_candidates = 8;
};

/// What the session layer changed about one turn (diagnostics + tests).
struct SessionTurnStats {
  int relinked_to_memory = 0;  // links flipped to a remembered entity
  int isolated_resolved = 0;   // isolated mentions linked from memory
};

class SessionContext {
 public:
  explicit SessionContext(SessionOptions options = {});

  /// Link-request envelope for the next turn: attaches the session cache
  /// (when configured) and the given KB-generation epoch.  Deadline and
  /// trace are the caller's to fill in.
  core::LinkContext MakeLinkContext(uint64_t similarity_epoch = 0);

  /// Re-ranks `result` against the session's entity memory (no-op on the
  /// first turn or when apply_entity_memory is off).  Call before scoring
  /// and before ObserveTurn.  Works against any KbView substrate (flat or
  /// sharded).
  SessionTurnStats ApplySessionCoherence(const kb::KbView& view,
                                         core::LinkingResult* result);

  /// Convenience over the flat substrate.
  SessionTurnStats ApplySessionCoherence(const kb::KnowledgeBase& kb,
                                         core::LinkingResult* result);

  /// Records a turn's resolved entities into the session memory.
  void ObserveTurn(const core::LinkingResult& result);

  int turns_observed() const { return turns_observed_; }
  const SessionOptions& options() const { return options_; }
  embedding::SimilarityCache* similarity_cache() { return cache_.get(); }

 private:
  void Remember(const std::string& surface, kb::EntityId entity,
                double prior);

  /// Shared body of both overloads; `candidates` yields the KB candidates
  /// of a surface under the substrate at hand.
  template <typename CandidateFn>
  SessionTurnStats ApplySessionCoherenceImpl(CandidateFn&& candidates,
                                             core::LinkingResult* result);

  SessionOptions options_;
  std::unique_ptr<embedding::SimilarityCache> cache_;
  int turns_observed_ = 0;

  struct MemoryEntry {
    kb::EntityId entity = kb::kInvalidEntity;  // kInvalidEntity: ambiguous
    double prior = 0.0;
  };
  /// Folded surface (and folded short form) -> remembered entity.  A key
  /// observed with two different entities is poisoned (kInvalidEntity):
  /// session memory only ever applies unambiguous history.
  std::unordered_map<std::string, MemoryEntry> surface_memory_;
  std::unordered_set<kb::EntityId> seen_entities_;
};

}  // namespace serving
}  // namespace tenet

#endif  // TENET_SERVING_SESSION_H_
