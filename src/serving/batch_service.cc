#include "serving/batch_service.h"

#include <condition_variable>
#include <cstring>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace tenet {
namespace serving {
namespace {

// Request-level retry eligibility: transient producer-side errors only.
// Deadline expiry can only get worse, invalid input can only repeat.
bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kBoundTooSmall;
}

AdmissionOptions ResolveAdmission(const ServingOptions& options) {
  AdmissionOptions admission = options.admission;
  if (admission.max_pending == 0) {
    admission.max_pending =
        static_cast<int>(options.queue_capacity) + options.num_threads;
  }
  return admission;
}

ThreadPool::Options PoolOptions(const ServingOptions& options) {
  ThreadPool::Options pool;
  pool.num_threads = options.num_threads;
  pool.queue_capacity = options.queue_capacity;
  pool.overflow = options.overflow;
  return pool;
}

}  // namespace

void BatchLinkingService::BreakerObserver::ObserveDependency(
    const char* dependency, bool ok) {
  CircuitBreaker* breaker = service_->MutableBreaker(dependency);
  if (breaker != nullptr) breaker->RecordOutcome(ok);
}

BatchLinkingService::BatchLinkingService(const baselines::Linker* linker,
                                         ServingOptions options)
    : linker_(linker),
      options_(options),
      kb_alias_breaker_(kKbAliasDependency, options.breaker),
      embedding_breaker_(kEmbeddingDependency, options.breaker),
      cover_breaker_(kCoverSolveDependency, options.breaker),
      retry_budget_(options.retry_budget),
      admission_(ResolveAdmission(options)),
      observer_(this),
      observer_scope_(&observer_),
      pool_(PoolOptions(options)) {
  TENET_CHECK(linker != nullptr);
}

BatchLinkingService::~BatchLinkingService() { pool_.Shutdown(); }

CircuitBreaker* BatchLinkingService::MutableBreaker(const char* dependency) {
  if (std::strcmp(dependency, kKbAliasDependency) == 0) {
    return &kb_alias_breaker_;
  }
  if (std::strcmp(dependency, kEmbeddingDependency) == 0) {
    return &embedding_breaker_;
  }
  if (std::strcmp(dependency, kCoverSolveDependency) == 0) {
    return &cover_breaker_;
  }
  return nullptr;
}

const CircuitBreaker* BatchLinkingService::breaker(
    const char* dependency) const {
  return const_cast<BatchLinkingService*>(this)->MutableBreaker(dependency);
}

Deadline BatchLinkingService::DefaultDeadline() const {
  return Deadline::AfterMillis(options_.default_deadline_ms);
}

Status BatchLinkingService::Submit(std::string text, Callback done) {
  return Submit(std::move(text), DefaultDeadline(), std::move(done));
}

Status BatchLinkingService::Submit(std::string text, Deadline deadline,
                                   Callback done) {
  TENET_CHECK(done != nullptr) << "Submit needs a completion callback";
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Status admitted = admission_.Admit(deadline);
  if (!admitted.ok()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return admitted;
  }
  Request request{std::move(text), deadline, std::move(done)};
  Status queued = pool_.Submit(
      [this, request = std::move(request)]() mutable {
        Process(std::move(request));
      });
  if (!queued.ok()) {
    admission_.Complete();
    shed_.fetch_add(1, std::memory_order_relaxed);
    // Normalize "queue full" to the admission-shed contract.
    return Status::ResourceExhausted("shed: " + queued.message());
  }
  return Status::Ok();
}

Result<core::LinkingResult> BatchLinkingService::LinkOnce(
    const Request& request) const {
  // An infinite request deadline leaves the linker's own per-document
  // policy in charge (and keeps the call bit-identical to a plain
  // LinkDocument, which the offline evaluation relies on).
  if (request.deadline.infinite()) {
    return linker_->LinkDocument(request.text);
  }
  return linker_->LinkDocument(request.text, request.deadline);
}

void BatchLinkingService::Process(Request request) {
  WallTimer timer;
  // Routing: a request that meets any open breaker goes straight to the
  // prior-only rung (expired deadline) instead of hammering the sick
  // dependency with a doomed full-pipeline attempt.
  const bool kb_allowed = kb_alias_breaker_.Allow();
  const bool embedding_allowed = embedding_breaker_.Allow();
  const bool cover_allowed = cover_breaker_.Allow();
  const bool breaker_bypass =
      !(kb_allowed && embedding_allowed && cover_allowed);

  Result<core::LinkingResult> result = Status::Internal("not linked");
  if (breaker_bypass) {
    // The bypassed request will not touch the dependencies, so any
    // half-open probes the other breakers just granted must be handed
    // back — otherwise staggered recoveries starve each other's probes
    // and breakers wedge in half-open.
    if (kb_allowed) kb_alias_breaker_.ReturnProbe();
    if (embedding_allowed) embedding_breaker_.ReturnProbe();
    if (cover_allowed) cover_breaker_.ReturnProbe();
    result = linker_->LinkDocument(request.text, Deadline::Expired());
  } else {
    RetrySchedule schedule(options_.retry, /*initial_value=*/0.0);
    for (;;) {
      result = LinkOnce(request);
      if (result.ok() || !IsRetryable(result.status())) break;
      if (request.deadline.expired()) break;
      if (schedule.exhausted()) break;
      // The shared budget has the last word: no tokens, no retry —
      // whatever the per-request policy would still allow.
      if (!retry_budget_.TryAcquireRetry()) break;
      schedule.Next();
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
    if (result.ok()) retry_budget_.RecordSuccess();
  }

  completed_.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
  } else if (result->degradation.degraded()) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
    if (breaker_bypass) {
      breaker_degraded_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    full_.fetch_add(1, std::memory_order_relaxed);
  }
  admission_.Complete();

  ServedResult served;
  served.result = std::move(result);
  served.latency_ms = timer.ElapsedMillis();
  served.shed = false;
  request.done(std::move(served));
}

std::vector<ServedResult> BatchLinkingService::LinkBatch(
    const std::vector<std::string>& texts) {
  std::vector<ServedResult> results(texts.size());
  std::mutex mu;
  std::condition_variable all_done;
  size_t remaining = texts.size();

  for (size_t i = 0; i < texts.size(); ++i) {
    Status submitted = Submit(
        texts[i], [&, i](ServedResult served) {
          std::lock_guard<std::mutex> lock(mu);
          results[i] = std::move(served);
          if (--remaining == 0) all_done.notify_one();
        });
    if (!submitted.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      results[i].result = submitted;
      results[i].shed = true;
      if (--remaining == 0) all_done.notify_one();
    }
  }

  std::unique_lock<std::mutex> lock(mu);
  all_done.wait(lock, [&] { return remaining == 0; });
  return results;
}

ServiceStats BatchLinkingService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admission_.stats().admitted;
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.full = full_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.breaker_degraded =
      breaker_degraded_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.kb_alias_breaker = kb_alias_breaker_.state();
  stats.embedding_breaker = embedding_breaker_.state();
  stats.cover_breaker = cover_breaker_.state();
  return stats;
}

}  // namespace serving
}  // namespace tenet
