#include "serving/batch_service.h"

#include <condition_variable>
#include <cstring>
#include <mutex>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/timer.h"
#include "serving/kb_generation.h"

namespace tenet {
namespace serving {
namespace {

// Request-level retry eligibility: transient producer-side errors only.
// Deadline expiry can only get worse, invalid input can only repeat.
bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kBoundTooSmall;
}

obs::MetricsRegistry* ResolveRegistry(const ServingOptions& options) {
  return options.metrics != nullptr ? options.metrics
                                    : obs::MetricsRegistry::Default();
}

AdmissionOptions ResolveAdmission(const ServingOptions& options) {
  AdmissionOptions admission = options.admission;
  if (admission.max_pending == 0) {
    admission.max_pending =
        static_cast<int>(options.queue_capacity) + options.num_threads;
  }
  if (admission.metrics == nullptr) admission.metrics = options.metrics;
  return admission;
}

CircuitBreakerOptions ResolveBreaker(const ServingOptions& options) {
  CircuitBreakerOptions breaker = options.breaker;
  if (breaker.metrics == nullptr) breaker.metrics = options.metrics;
  return breaker;
}

RetryBudget::Options ResolveRetryBudget(const ServingOptions& options) {
  RetryBudget::Options budget = options.retry_budget;
  if (budget.metrics == nullptr) budget.metrics = options.metrics;
  return budget;
}

std::unique_ptr<embedding::SimilarityCache> MakeSimilarityCache(
    const ServingOptions& options) {
  if (options.similarity_cache_bytes == 0) return nullptr;
  embedding::SimilarityCacheOptions cache_options;
  cache_options.capacity_bytes = options.similarity_cache_bytes;
  cache_options.metrics = ResolveRegistry(options);
  return std::make_unique<embedding::SimilarityCache>(cache_options);
}

ThreadPool::Options PoolOptions(const ServingOptions& options) {
  ThreadPool::Options pool;
  pool.num_threads = options.num_threads;
  pool.queue_capacity = options.queue_capacity;
  pool.overflow = options.overflow;
  return pool;
}

constexpr const char* kCompletedHelp =
    "Requests that reached a worker and resolved, by outcome.";
constexpr const char* kSwapHelp =
    "KB generation swap attempts: ok = published, rolled_back = failed "
    "(injected fault, id regression, or all RCU slots pinned) with the old "
    "generation kept serving.";
constexpr const char* kMergeHelp =
    "Background delta merges (compact + reload + swap), by outcome.";

std::shared_ptr<const ServingTarget> LegacyTarget(
    const baselines::Linker* linker) {
  TENET_CHECK(linker != nullptr);
  return std::make_shared<const ServingTarget>(
      ServingTarget{linker, nullptr});
}

std::shared_ptr<const ServingTarget> GenerationTarget(
    std::shared_ptr<const KbGeneration> generation) {
  TENET_CHECK(generation != nullptr);
  const baselines::Linker* linker = &generation->linker();
  return std::make_shared<const ServingTarget>(
      ServingTarget{linker, std::move(generation)});
}

}  // namespace

BatchLinkingService::Instruments BatchLinkingService::MakeInstruments(
    obs::MetricsRegistry* registry) {
  BatchLinkingService::Instruments m;
  m.submitted = registry->GetCounter(
      "tenet_serving_submitted_total",
      "Requests submitted to the serving layer (admitted or shed).");
  m.shed = registry->GetCounter(
      "tenet_serving_shed_total",
      "Requests refused before reaching a worker (admission or full "
      "queue); see tenet_admission_rejected_total for the reason split.");
  m.rejected_queue_full = registry->GetCounter(
      "tenet_admission_rejected_total",
      "Requests shed at the serving front door, by reason (capacity = "
      "pending budget, deadline = too little slack, queue_full = the worker "
      "queue refused).",
      obs::LabelPair("reason", "queue_full"));
  m.completed_full = registry->GetCounter("tenet_serving_completed_total",
                                          kCompletedHelp,
                                          obs::LabelPair("outcome", "full"));
  m.completed_degraded = registry->GetCounter(
      "tenet_serving_completed_total", kCompletedHelp,
      obs::LabelPair("outcome", "degraded"));
  m.completed_failed = registry->GetCounter(
      "tenet_serving_completed_total", kCompletedHelp,
      obs::LabelPair("outcome", "failed"));
  m.breaker_degraded = registry->GetCounter(
      "tenet_serving_breaker_degraded_total",
      "Degraded answers routed down the ladder by an open circuit breaker "
      "(a subset of outcome=\"degraded\").");
  m.retries = registry->GetCounter(
      "tenet_serving_retries_total",
      "Request-level retry attempts granted by the shared retry budget.");
  m.queue_depth = registry->GetGauge(
      "tenet_serving_queue_depth",
      "Requests enqueued for the worker pool and not yet picked up.");
  m.inflight = registry->GetGauge(
      "tenet_serving_inflight", "Requests currently linking on a worker.");
  m.request_latency = registry->GetHistogram(
      "tenet_request_latency_ms",
      "Worker-side processing latency per completed request in "
      "milliseconds, degraded answers included.");
  m.generation = registry->GetGauge(
      "tenet_kb_generation",
      "Id of the KB generation currently serving new requests (0 = legacy "
      "fixed substrate).");
  m.swaps_ok = registry->GetCounter(
      "tenet_kb_swaps_total", kSwapHelp, obs::LabelPair("outcome", "ok"));
  m.swaps_rolled_back =
      registry->GetCounter("tenet_kb_swaps_total", kSwapHelp,
                           obs::LabelPair("outcome", "rolled_back"));
  m.merges_ok = registry->GetCounter(
      "tenet_kb_merges_total", kMergeHelp, obs::LabelPair("outcome", "ok"));
  m.merges_failed =
      registry->GetCounter("tenet_kb_merges_total", kMergeHelp,
                           obs::LabelPair("outcome", "failed"));
  m.swap_latency = registry->GetHistogram(
      "tenet_kb_swap_latency_ms",
      "Wall time of a successful SwapGeneration, from the call to the "
      "epoch publish, in milliseconds.");
  return m;
}

void BatchLinkingService::BreakerObserver::ObserveDependency(
    const char* dependency, bool ok) {
  CircuitBreaker* breaker = service_->MutableBreaker(dependency);
  if (breaker != nullptr) breaker->RecordOutcome(ok);
}

BatchLinkingService::BatchLinkingService(const baselines::Linker* linker,
                                         ServingOptions options)
    : BatchLinkingService(LegacyTarget(linker), std::move(options)) {}

BatchLinkingService::BatchLinkingService(
    std::shared_ptr<const KbGeneration> generation, ServingOptions options)
    : BatchLinkingService(GenerationTarget(std::move(generation)),
                          std::move(options)) {}

BatchLinkingService::BatchLinkingService(
    std::shared_ptr<const ServingTarget> target, ServingOptions options)
    : options_(options),
      registry_(ResolveRegistry(options)),
      m_(MakeInstruments(registry_)),
      kb_alias_breaker_(kKbAliasDependency, ResolveBreaker(options)),
      embedding_breaker_(kEmbeddingDependency, ResolveBreaker(options)),
      cover_breaker_(kCoverSolveDependency, ResolveBreaker(options)),
      retry_budget_(ResolveRetryBudget(options)),
      admission_(ResolveAdmission(options)),
      similarity_cache_(MakeSimilarityCache(options)),
      target_(target),
      observer_(this),
      observer_scope_(&observer_),
      pool_(PoolOptions(options)) {
  m_.generation->Set(static_cast<double>(target->generation_id()));
}

BatchLinkingService::~BatchLinkingService() { pool_.Shutdown(); }

CircuitBreaker* BatchLinkingService::MutableBreaker(const char* dependency) {
  if (std::strcmp(dependency, kKbAliasDependency) == 0) {
    return &kb_alias_breaker_;
  }
  if (std::strcmp(dependency, kEmbeddingDependency) == 0) {
    return &embedding_breaker_;
  }
  if (std::strcmp(dependency, kCoverSolveDependency) == 0) {
    return &cover_breaker_;
  }
  return nullptr;
}

const CircuitBreaker* BatchLinkingService::breaker(
    const char* dependency) const {
  return const_cast<BatchLinkingService*>(this)->MutableBreaker(dependency);
}

Deadline BatchLinkingService::DefaultDeadline() const {
  return Deadline::AfterMillis(options_.default_deadline_ms);
}

Status BatchLinkingService::Submit(std::string text, Callback done) {
  return Submit(std::move(text), core::LinkContext{}, std::move(done));
}

Status BatchLinkingService::Submit(std::string text, core::LinkContext context,
                                   Callback done) {
  TENET_CHECK(done != nullptr) << "Submit needs a completion callback";
  m_.submitted->Increment();
  const Deadline deadline = context.deadline_or(DefaultDeadline());
  Status admitted = admission_.Admit(deadline);
  if (!admitted.ok()) {
    m_.shed->Increment();
    return admitted;
  }
  embedding::SimilarityCache* cache = context.similarity_cache != nullptr
                                          ? context.similarity_cache
                                          : similarity_cache_.get();
  // Pin the serving target at the door: whatever generation swaps land
  // while this request waits in the queue, it links against the substrate
  // that admitted it, and that substrate cannot be freed under it.
  Request request{std::move(text), deadline,          context.trace,
                  cache,           target_.Acquire(), std::move(done)};
  Status queued = pool_.Submit(
      [this, request = std::move(request)]() mutable {
        Process(std::move(request));
      });
  if (!queued.ok()) {
    admission_.Complete();
    m_.shed->Increment();
    m_.rejected_queue_full->Increment();
    // Normalize "queue full" to the admission-shed contract.
    return Status::ResourceExhausted("shed: " + queued.message());
  }
  m_.queue_depth->Add(1.0);
  return Status::Ok();
}

Result<core::LinkingResult> BatchLinkingService::LinkOnce(
    const Request& request) const {
  core::LinkContext context;
  // An infinite request deadline leaves the linker's own per-document
  // policy in charge (and keeps the call bit-identical to a plain
  // LinkDocument, which the offline evaluation relies on).
  if (!request.deadline.infinite()) context.deadline = request.deadline;
  context.trace = request.trace;
  context.similarity_cache = request.similarity_cache;
  context.similarity_epoch = request.target->generation_id();
  return request.target->linker->LinkDocument(request.text, context);
}

void BatchLinkingService::Process(Request request) {
  m_.queue_depth->Add(-1.0);
  m_.inflight->Add(1.0);
  WallTimer timer;
  // Routing: a request that meets any open breaker goes straight to the
  // prior-only rung (expired deadline) instead of hammering the sick
  // dependency with a doomed full-pipeline attempt.
  const bool kb_allowed = kb_alias_breaker_.Allow();
  const bool embedding_allowed = embedding_breaker_.Allow();
  const bool cover_allowed = cover_breaker_.Allow();
  const bool breaker_bypass =
      !(kb_allowed && embedding_allowed && cover_allowed);

  Result<core::LinkingResult> result = Status::Internal("not linked");
  if (breaker_bypass) {
    // The bypassed request will not touch the dependencies, so any
    // half-open probes the other breakers just granted must be handed
    // back — otherwise staggered recoveries starve each other's probes
    // and breakers wedge in half-open.
    if (kb_allowed) kb_alias_breaker_.ReturnProbe();
    if (embedding_allowed) embedding_breaker_.ReturnProbe();
    if (cover_allowed) cover_breaker_.ReturnProbe();
    core::LinkContext degraded_context =
        core::LinkContext::WithDeadline(Deadline::Expired());
    degraded_context.trace = request.trace;
    degraded_context.similarity_cache = request.similarity_cache;
    degraded_context.similarity_epoch = request.target->generation_id();
    result = request.target->linker->LinkDocument(request.text,
                                                  degraded_context);
  } else {
    RetrySchedule schedule(options_.retry, /*initial_value=*/0.0);
    for (;;) {
      result = LinkOnce(request);
      if (result.ok() || !IsRetryable(result.status())) break;
      if (request.deadline.expired()) break;
      if (schedule.exhausted()) break;
      // The shared budget has the last word: no tokens, no retry —
      // whatever the per-request policy would still allow.
      if (!retry_budget_.TryAcquireRetry()) break;
      schedule.Next();
      m_.retries->Increment();
    }
    if (result.ok()) retry_budget_.RecordSuccess();
  }

  if (!result.ok()) {
    m_.completed_failed->Increment();
  } else if (result->degradation.degraded()) {
    m_.completed_degraded->Increment();
    if (breaker_bypass) m_.breaker_degraded->Increment();
  } else {
    m_.completed_full->Increment();
  }
  admission_.Complete();

  ServedResult served;
  served.result = std::move(result);
  served.latency_ms = timer.ElapsedMillis();
  served.shed = false;
  // Degraded and failed requests land in the same latency histogram as
  // full answers: a degraded answer is still a served request, and hiding
  // it would make the tail look better exactly when the ladder engages.
  m_.request_latency->Observe(served.latency_ms);
  m_.inflight->Add(-1.0);
  // Unpin before the callback: the callback may be the last thing keeping
  // a swap waiting (e.g. a test draining requests to free RCU slots), and
  // this request is done with the substrate.
  request.target.Release();
  request.done(std::move(served));
}

Status BatchLinkingService::SwapGeneration(
    std::shared_ptr<const KbGeneration> next) {
  if (next == nullptr) {
    return Status::InvalidArgument("SwapGeneration: null generation");
  }
  WallTimer timer;
  std::lock_guard<std::mutex> lock(swap_mu_);
  const uint64_t current_id = target_.Current()->generation_id();
  if (next->id() <= current_id) {
    m_.swaps_rolled_back->Increment();
    TENET_OBSERVE_DEPENDENCY("serving/kb_swap", false);
    return Status::FailedPrecondition(
        "SwapGeneration: generation ids must advance (serving " +
        std::to_string(current_id) + ", offered " +
        std::to_string(next->id()) + ")");
  }
  const uint64_t next_id = next->id();
  if (TENET_FAULT_POINT("serving/kb_swap")) {
    m_.swaps_rolled_back->Increment();
    TENET_OBSERVE_DEPENDENCY("serving/kb_swap", false);
    return Status::DataLoss(
        "injected fault: kb swap failed; still serving generation " +
        std::to_string(current_id));
  }
  Result<uint64_t> published = target_.Publish(
      GenerationTarget(std::move(next)));
  if (!published.ok()) {
    m_.swaps_rolled_back->Increment();
    TENET_OBSERVE_DEPENDENCY("serving/kb_swap", false);
    return published.status();
  }
  m_.generation->Set(static_cast<double>(next_id));
  m_.swaps_ok->Increment();
  m_.swap_latency->Observe(timer.ElapsedMillis());
  TENET_OBSERVE_DEPENDENCY("serving/kb_swap", true);
  return Status::Ok();
}

void BatchLinkingService::RunMerge(std::string kb_path,
                                   std::string embeddings_path,
                                   uint64_t next_id,
                                   std::function<void(Status)> done) {
  const auto finish = [&](Status status) {
    (status.ok() ? m_.merges_ok : m_.merges_failed)->Increment();
    if (done != nullptr) done(std::move(status));
  };
  // Compact the generation serving *now*; anything swapped in after this
  // point simply is not part of this merge.
  std::shared_ptr<const KbGeneration> current =
      target_.Current()->generation;
  if (current == nullptr) {
    finish(Status::FailedPrecondition(
        "merge: the service serves a legacy fixed substrate, not a "
        "KbGeneration"));
    return;
  }
  Status compacted = current->Compact(kb_path, embeddings_path);
  if (!compacted.ok()) {
    finish(std::move(compacted));
    return;
  }
  // Reload serially: this worker must not fan subtasks into its own pool.
  KbGenerationOptions reload;
  reload.linker_options = current->linker().pipeline().options();
  Result<std::shared_ptr<const KbGeneration>> merged =
      KbGeneration::Load(kb_path, embeddings_path, {}, next_id, reload);
  if (!merged.ok()) {
    finish(merged.status());
    return;
  }
  finish(SwapGeneration(std::move(merged).value()));
}

Status BatchLinkingService::ScheduleMerge(std::string kb_path,
                                          std::string embeddings_path,
                                          uint64_t next_id,
                                          std::function<void(Status)> done) {
  Status queued = pool_.Submit(
      [this, kb_path = std::move(kb_path),
       embeddings_path = std::move(embeddings_path), next_id,
       done = std::move(done)]() mutable {
        RunMerge(std::move(kb_path), std::move(embeddings_path), next_id,
                 std::move(done));
      });
  if (!queued.ok()) {
    return Status::ResourceExhausted("merge not scheduled: " +
                                     queued.message());
  }
  return Status::Ok();
}

std::shared_ptr<const KbGeneration> BatchLinkingService::generation() const {
  return target_.Current()->generation;
}

uint64_t BatchLinkingService::generation_id() const {
  return target_.Current()->generation_id();
}

std::vector<ServedResult> BatchLinkingService::LinkBatch(
    const std::vector<std::string>& texts) {
  std::vector<ServedResult> results(texts.size());
  std::mutex mu;
  std::condition_variable all_done;
  size_t remaining = texts.size();

  for (size_t i = 0; i < texts.size(); ++i) {
    Status submitted = Submit(
        texts[i], [&, i](ServedResult served) {
          std::lock_guard<std::mutex> lock(mu);
          results[i] = std::move(served);
          if (--remaining == 0) all_done.notify_one();
        });
    if (!submitted.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      results[i].result = submitted;
      results[i].shed = true;
      if (--remaining == 0) all_done.notify_one();
    }
  }

  std::unique_lock<std::mutex> lock(mu);
  all_done.wait(lock, [&] { return remaining == 0; });
  return results;
}

ServiceStats BatchLinkingService::Stats() const {
  ServiceStats stats;
  stats.submitted = m_.submitted->Value();
  stats.admitted = admission_.stats().admitted;
  stats.shed = m_.shed->Value();
  stats.full = m_.completed_full->Value();
  stats.degraded = m_.completed_degraded->Value();
  stats.failed = m_.completed_failed->Value();
  stats.completed = stats.full + stats.degraded + stats.failed;
  stats.breaker_degraded = m_.breaker_degraded->Value();
  stats.retries = m_.retries->Value();
  stats.generation = static_cast<int64_t>(m_.generation->Value());
  stats.swaps_ok = m_.swaps_ok->Value();
  stats.swaps_rolled_back = m_.swaps_rolled_back->Value();
  stats.merges_ok = m_.merges_ok->Value();
  stats.merges_failed = m_.merges_failed->Value();
  stats.kb_alias_breaker = kb_alias_breaker_.state();
  stats.embedding_breaker = embedding_breaker_.state();
  stats.cover_breaker = cover_breaker_.state();
  stats.latency_p50_ms = m_.request_latency->P50();
  stats.latency_p95_ms = m_.request_latency->P95();
  stats.latency_p99_ms = m_.request_latency->P99();
  return stats;
}

}  // namespace serving
}  // namespace tenet
