#include "serving/kb_generation.h"

#include <utility>

#include "common/logging.h"
#include "kb/io.h"

namespace tenet {
namespace serving {
namespace {

kb::DeltaApplyStats Accumulate(kb::DeltaApplyStats base,
                               const kb::DeltaApplyStats& more) {
  base.added_entities += more.added_entities;
  base.added_predicates += more.added_predicates;
  base.added_aliases += more.added_aliases;
  base.adjusted_priors += more.adjusted_priors;
  base.tombstones += more.tombstones;
  base.added_facts += more.added_facts;
  base.dropped_facts += more.dropped_facts;
  base.set_embeddings += more.set_embeddings;
  base.touched_surfaces += more.touched_surfaces;
  return base;
}

}  // namespace

KbGeneration::KbGeneration(kb::KnowledgeBase kb,
                           embedding::EmbeddingStore embeddings, uint64_t id,
                           kb::DeltaApplyStats delta_stats,
                           const KbGenerationOptions& options)
    : id_(id),
      kb_(std::move(kb)),
      embeddings_(std::move(embeddings)),
      gazetteer_(kb::DeriveGazetteer(kb_)),
      delta_stats_(delta_stats) {
  TENET_CHECK(kb_.finalized());
  TENET_CHECK(embeddings_.finalized());
  // The members above sit at their final heap addresses (generations are
  // heap-only and never moved), so the view may capture pointers now.
  view_ = std::make_shared<kb::FlatKbView>(&kb_, &embeddings_);
  baselines::BaselineSubstrate substrate;
  substrate.view = view_;
  substrate.gazetteer = &gazetteer_;
  // TenetLinker takes its graph knobs from the substrate, so the ones the
  // caller put on linker_options must ride through it or they'd be
  // silently reset to defaults here.
  substrate.graph_options = options.linker_options.graph;
  linker_ = std::make_unique<baselines::TenetLinker>(substrate,
                                                     options.linker_options);
}

KbGeneration::KbGeneration(std::shared_ptr<const kb::ShardedKb> sharded,
                           uint64_t id, const KbGenerationOptions& options)
    : id_(id),
      embeddings_(/*dimension=*/1, /*num_entities=*/0, /*num_predicates=*/0),
      sharded_(std::move(sharded)),
      view_(sharded_),
      gazetteer_(kb::DeriveGazetteer(*view_)) {
  TENET_CHECK(sharded_ != nullptr);
  baselines::BaselineSubstrate substrate;
  substrate.view = view_;
  substrate.gazetteer = &gazetteer_;
  substrate.graph_options = options.linker_options.graph;
  linker_ = std::make_unique<baselines::TenetLinker>(substrate,
                                                     options.linker_options);
}

const kb::KnowledgeBase& KbGeneration::kb() const {
  TENET_CHECK(!sharded());
  return kb_;
}

const embedding::EmbeddingStore& KbGeneration::embeddings() const {
  TENET_CHECK(!sharded());
  return embeddings_;
}

std::shared_ptr<const KbGeneration> KbGeneration::FromSubstrate(
    kb::KnowledgeBase kb, embedding::EmbeddingStore embeddings, uint64_t id,
    const KbGenerationOptions& options) {
  // Not make_shared: the constructor is private, and the control block
  // sharing make_shared buys is noise next to the KB itself.
  return std::shared_ptr<const KbGeneration>(
      new KbGeneration(std::move(kb), std::move(embeddings), id,
                       kb::DeltaApplyStats{}, options));
}

std::shared_ptr<const KbGeneration> KbGeneration::FromShardedKb(
    std::shared_ptr<const kb::ShardedKb> sharded, uint64_t id,
    const KbGenerationOptions& options) {
  return std::shared_ptr<const KbGeneration>(
      new KbGeneration(std::move(sharded), id, options));
}

Result<std::shared_ptr<const KbGeneration>> KbGeneration::LoadSharded(
    const std::string& manifest_path, uint64_t id,
    const KbGenerationOptions& options) {
  kb::KbLoadOptions load;
  load.prefer_mmap = options.prefer_mmap;
  load.pool = options.pool;
  TENET_ASSIGN_OR_RETURN(kb::ShardedKb sharded,
                         kb::ShardedKb::Load(manifest_path, load));
  return FromShardedKb(
      std::make_shared<const kb::ShardedKb>(std::move(sharded)), id, options);
}

Result<std::shared_ptr<const KbGeneration>> KbGeneration::Load(
    const std::string& kb_path, const std::string& embeddings_path,
    std::span<const std::string> delta_paths, uint64_t id,
    const KbGenerationOptions& options) {
  kb::KbLoadOptions load;
  load.prefer_mmap = options.prefer_mmap;
  load.pool = options.pool;
  TENET_ASSIGN_OR_RETURN(kb::KnowledgeBase kb,
                         kb::LoadKnowledgeBase(kb_path, load));
  TENET_ASSIGN_OR_RETURN(embedding::EmbeddingStore embeddings,
                         kb::LoadEmbeddings(embeddings_path, load));
  if (delta_paths.empty()) {
    return FromSubstrate(std::move(kb), std::move(embeddings), id, options);
  }
  std::vector<kb::DeltaSegment> segments;
  segments.reserve(delta_paths.size());
  for (const std::string& path : delta_paths) {
    TENET_ASSIGN_OR_RETURN(kb::DeltaSegment segment,
                           kb::LoadDeltaSegment(path));
    segments.push_back(std::move(segment));
  }
  TENET_ASSIGN_OR_RETURN(
      kb::AppliedDelta applied,
      kb::ApplyDeltas(kb, embeddings, segments, options.pool));
  return std::shared_ptr<const KbGeneration>(
      new KbGeneration(std::move(applied.kb), std::move(applied.embeddings),
                       id, applied.stats, options));
}

Result<std::shared_ptr<const KbGeneration>> KbGeneration::WithDeltas(
    std::span<const kb::DeltaSegment> segments, uint64_t id,
    const KbGenerationOptions& options) const {
  if (sharded()) {
    return Status::InvalidArgument(
        "sharded generations are read-only; build a new sharded layout "
        "offline instead of applying deltas");
  }
  TENET_ASSIGN_OR_RETURN(
      kb::AppliedDelta applied,
      kb::ApplyDeltas(kb_, embeddings_, segments, options.pool));
  return std::shared_ptr<const KbGeneration>(new KbGeneration(
      std::move(applied.kb), std::move(applied.embeddings), id,
      Accumulate(delta_stats_, applied.stats), options));
}

Status KbGeneration::Compact(const std::string& kb_path,
                             const std::string& embeddings_path) const {
  if (sharded()) {
    return Status::InvalidArgument(
        "sharded generations cannot be compacted to a flat snapshot pair; "
        "their layout is already persisted shard by shard");
  }
  Status saved = kb::SaveKnowledgeBase(kb_, kb_path);
  if (!saved.ok()) return saved;
  return kb::SaveEmbeddings(embeddings_, embeddings_path);
}

}  // namespace serving
}  // namespace tenet
