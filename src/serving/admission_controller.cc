#include "serving/admission_controller.h"

#include "common/logging.h"

namespace tenet {
namespace serving {

namespace {

constexpr const char* kRejectedHelp =
    "Requests shed at the serving front door, by reason (capacity = "
    "pending budget, deadline = too little slack, queue_full = the worker "
    "queue refused).";

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  TENET_CHECK_GT(options_.max_pending, 0)
      << "AdmissionController needs a resolved pending budget";
  TENET_CHECK_GE(options_.min_deadline_slack_ms, 0.0);
  obs::MetricsRegistry* registry = options_.metrics != nullptr
                                       ? options_.metrics
                                       : obs::MetricsRegistry::Default();
  rejected_capacity_ =
      registry->GetCounter("tenet_admission_rejected_total", kRejectedHelp,
                           obs::LabelPair("reason", "capacity"));
  rejected_deadline_ =
      registry->GetCounter("tenet_admission_rejected_total", kRejectedHelp,
                           obs::LabelPair("reason", "deadline"));
  pending_gauge_ = registry->GetGauge(
      "tenet_admission_pending",
      "Requests admitted and not yet completed (queued + in flight).");
}

Status AdmissionController::Admit(const Deadline& deadline) {
  // The deadline check needs no lock; the clock read happens outside it.
  if (!deadline.infinite() &&
      deadline.RemainingMillis() <= options_.min_deadline_slack_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed_deadline;
    rejected_deadline_->Increment();
    return Status::ResourceExhausted(
        "shed: deadline budget exhausted before admission");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.pending >= options_.max_pending) {
    ++stats_.shed_capacity;
    rejected_capacity_->Increment();
    return Status::ResourceExhausted("shed: pending budget exhausted");
  }
  ++stats_.admitted;
  ++stats_.pending;
  pending_gauge_->Set(static_cast<double>(stats_.pending));
  return Status::Ok();
}

void AdmissionController::Complete() {
  std::lock_guard<std::mutex> lock(mu_);
  TENET_CHECK_GT(stats_.pending, 0) << "Complete without a matching Admit";
  --stats_.pending;
  pending_gauge_->Set(static_cast<double>(stats_.pending));
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serving
}  // namespace tenet
