#include "serving/session.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/string_util.h"

namespace tenet {
namespace serving {
namespace {

// Folded short form of a surface: its last space-separated word, lowered.
// Empty when the surface is a single word (the surface itself already
// covers that key).
std::string ShortFormKey(const std::string& folded_surface) {
  const size_t at = folded_surface.rfind(' ');
  if (at == std::string::npos) return std::string();
  return folded_surface.substr(at + 1);
}

}  // namespace

SessionContext::SessionContext(SessionOptions options) : options_(options) {
  if (options_.similarity_cache_bytes > 0) {
    embedding::SimilarityCacheOptions cache_options;
    cache_options.capacity_bytes = options_.similarity_cache_bytes;
    cache_ = std::make_unique<embedding::SimilarityCache>(cache_options);
  }
}

core::LinkContext SessionContext::MakeLinkContext(uint64_t similarity_epoch) {
  core::LinkContext context;
  context.similarity_cache = cache_.get();
  context.similarity_epoch = similarity_epoch;
  return context;
}

void SessionContext::Remember(const std::string& surface,
                              kb::EntityId entity, double prior) {
  auto note = [&](std::string key) {
    if (key.empty()) return;
    auto [it, inserted] = surface_memory_.try_emplace(
        std::move(key), MemoryEntry{entity, prior});
    if (!inserted && it->second.entity != entity) {
      // Two entities behind one surface in one conversation: poison the
      // key — applying it would be a guess, not coreference.
      it->second.entity = kb::kInvalidEntity;
    }
  };
  const std::string folded = AsciiToLower(surface);
  note(folded);
  note(ShortFormKey(folded));
}

void SessionContext::ObserveTurn(const core::LinkingResult& result) {
  for (const core::LinkedConcept& link : result.links) {
    if (!link.concept_ref.is_entity()) continue;
    seen_entities_.insert(link.concept_ref.id);
    Remember(link.surface, link.concept_ref.id, link.prior);
  }
  ++turns_observed_;
}

SessionTurnStats SessionContext::ApplySessionCoherence(
    const kb::KbView& view, core::LinkingResult* result) {
  return ApplySessionCoherenceImpl(
      [&view](const std::string& surface, std::optional<kb::EntityType> type,
              int max_candidates) {
        return view.CandidateEntities(surface, type, max_candidates);
      },
      result);
}

SessionTurnStats SessionContext::ApplySessionCoherence(
    const kb::KnowledgeBase& kb, core::LinkingResult* result) {
  return ApplySessionCoherenceImpl(
      [&kb](const std::string& surface, std::optional<kb::EntityType> type,
            int max_candidates) {
        return kb.CandidateEntities(surface, type, max_candidates);
      },
      result);
}

template <typename CandidateFn>
SessionTurnStats SessionContext::ApplySessionCoherenceImpl(
    CandidateFn&& candidate_fn, core::LinkingResult* result) {
  SessionTurnStats stats;
  if (!options_.apply_entity_memory || turns_observed_ == 0 ||
      result == nullptr) {
    return stats;
  }

  // Pass 1: re-rank existing entity links.  A link whose folded surface is
  // remembered unambiguously flips to the remembered entity; otherwise,
  // if any KB candidate of the surface was seen earlier in the session,
  // the best-prior seen candidate wins over the context-free choice.
  for (core::LinkedConcept& link : result->links) {
    if (!link.concept_ref.is_entity()) continue;
    if (seen_entities_.count(link.concept_ref.id) > 0) continue;  // agrees
    const std::string folded = AsciiToLower(link.surface);
    auto it = surface_memory_.find(folded);
    if (it != surface_memory_.end() &&
        it->second.entity != kb::kInvalidEntity) {
      link.concept_ref = kb::ConceptRef::Entity(it->second.entity);
      link.prior = it->second.prior;
      ++stats.relinked_to_memory;
      continue;
    }
    const core::Mention& mention = result->mentions.mention(link.mention_id);
    const kb::EntityCandidate* best_seen = nullptr;
    std::vector<kb::EntityCandidate> candidates = candidate_fn(
        link.surface, mention.type, options_.memory_probe_candidates);
    for (const kb::EntityCandidate& c : candidates) {
      if (seen_entities_.count(c.entity) == 0) continue;
      if (best_seen == nullptr || c.prior > best_seen->prior) best_seen = &c;
    }
    if (best_seen != nullptr) {
      link.concept_ref = kb::ConceptRef::Entity(best_seen->entity);
      link.prior = best_seen->prior;
      ++stats.relinked_to_memory;
    }
  }

  // Pass 2: isolated mentions whose surface (often a bare short form with
  // no KB alias) is remembered become session-coreference links.
  std::vector<int> still_isolated;
  still_isolated.reserve(result->isolated_mentions.size());
  for (int m : result->isolated_mentions) {
    const core::Mention& mention = result->mentions.mention(m);
    bool resolved = false;
    if (mention.is_noun()) {
      auto it = surface_memory_.find(AsciiToLower(mention.surface));
      if (it != surface_memory_.end() &&
          it->second.entity != kb::kInvalidEntity) {
        core::LinkedConcept link;
        link.mention_id = m;
        link.surface = mention.surface;
        link.kind = mention.kind;
        link.concept_ref = kb::ConceptRef::Entity(it->second.entity);
        link.prior = it->second.prior;
        result->links.push_back(std::move(link));
        resolved = true;
        ++stats.isolated_resolved;
      }
    }
    if (!resolved) still_isolated.push_back(m);
  }
  if (stats.isolated_resolved > 0) {
    result->isolated_mentions = std::move(still_isolated);
    std::sort(result->links.begin(), result->links.end(),
              [](const core::LinkedConcept& a, const core::LinkedConcept& b) {
                return a.mention_id < b.mention_id;
              });
  }
  return stats;
}

}  // namespace serving
}  // namespace tenet
