#ifndef TENET_SERVING_KB_GENERATION_H_
#define TENET_SERVING_KB_GENERATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/tenet_linker.h"
#include "common/result.h"
#include "core/pipeline.h"
#include "embedding/embedding_store.h"
#include "kb/delta.h"
#include "kb/knowledge_base.h"
#include "text/gazetteer.h"

namespace tenet {

class ThreadPool;

namespace serving {

// Construction knobs shared by every KbGeneration factory.
struct KbGenerationOptions {
  /// Pipeline tuning of the generation's linker.
  core::TenetOptions linker_options;
  /// Parallelizes the alias-index restore/finalize during construction.
  /// Must NOT be the serving pool of a service the generation will be
  /// swapped into when the swap itself runs on that pool (the background
  /// merge does) — a worker waiting on its own pool's queue deadlocks.
  ThreadPool* pool = nullptr;
  /// Forwarded to the snapshot loaders (Load only).
  bool prefer_mmap = true;
};

// One immutable, self-contained serving substrate: a KB snapshot with any
// number of TENETDELTA1 segments applied, plus the embedding store, the
// derived gazetteer, and a TenetLinker built over all of it (DESIGN.md
// §12).  This is the unit the serving layer hot-swaps: requests pin a
// generation for their whole lifetime, so everything here must be — and
// is — immutable after construction.
//
// Generations are heap-only (shared_ptr from the factories, never moved):
// the linker holds raw pointers into the sibling members, which therefore
// must sit at their final addresses before it is built.  The `id` is the
// monotonically increasing generation number the caller assigns; the
// serving layer requires each published generation's id to exceed the one
// it replaces.
class KbGeneration {
 public:
  /// Loads the snapshot pair and applies `delta_paths` in order.
  static Result<std::shared_ptr<const KbGeneration>> Load(
      const std::string& kb_path, const std::string& embeddings_path,
      std::span<const std::string> delta_paths, uint64_t id,
      const KbGenerationOptions& options = {});

  /// Wraps an already-built substrate (both must be finalized).
  static std::shared_ptr<const KbGeneration> FromSubstrate(
      kb::KnowledgeBase kb, embedding::EmbeddingStore embeddings, uint64_t id,
      const KbGenerationOptions& options = {});

  /// A new generation = this one + `segments` (applied in order).  The
  /// receiver is untouched and keeps serving.
  Result<std::shared_ptr<const KbGeneration>> WithDeltas(
      std::span<const kb::DeltaSegment> segments, uint64_t id,
      const KbGenerationOptions& options = {}) const;

  /// Persists this generation as a fresh TENETKB2 + TENETEMB1 pair — the
  /// merge step that folds applied deltas back into a base snapshot.  Both
  /// writes are atomic; a crash between the two leaves a loadable (if
  /// mismatched-by-one) pair, never a torn file.
  Status Compact(const std::string& kb_path,
                 const std::string& embeddings_path) const;

  KbGeneration(const KbGeneration&) = delete;
  KbGeneration& operator=(const KbGeneration&) = delete;

  uint64_t id() const { return id_; }
  const kb::KnowledgeBase& kb() const { return kb_; }
  const embedding::EmbeddingStore& embeddings() const { return embeddings_; }
  const text::Gazetteer& gazetteer() const { return gazetteer_; }
  const baselines::TenetLinker& linker() const { return *linker_; }
  /// Cumulative apply stats across every delta folded into this generation
  /// (all zero for a pure snapshot).
  const kb::DeltaApplyStats& delta_stats() const { return delta_stats_; }

 private:
  KbGeneration(kb::KnowledgeBase kb, embedding::EmbeddingStore embeddings,
               uint64_t id, kb::DeltaApplyStats delta_stats,
               const KbGenerationOptions& options);

  const uint64_t id_;
  kb::KnowledgeBase kb_;
  embedding::EmbeddingStore embeddings_;
  text::Gazetteer gazetteer_;
  kb::DeltaApplyStats delta_stats_;
  std::unique_ptr<baselines::TenetLinker> linker_;
};

}  // namespace serving
}  // namespace tenet

#endif  // TENET_SERVING_KB_GENERATION_H_
