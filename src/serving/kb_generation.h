#ifndef TENET_SERVING_KB_GENERATION_H_
#define TENET_SERVING_KB_GENERATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/tenet_linker.h"
#include "common/result.h"
#include "core/pipeline.h"
#include "embedding/embedding_store.h"
#include "kb/delta.h"
#include "kb/kb_view.h"
#include "kb/knowledge_base.h"
#include "kb/sharded_kb.h"
#include "text/gazetteer.h"

namespace tenet {

class ThreadPool;

namespace serving {

// Construction knobs shared by every KbGeneration factory.
struct KbGenerationOptions {
  /// Pipeline tuning of the generation's linker.
  core::TenetOptions linker_options;
  /// Parallelizes the alias-index restore/finalize during construction.
  /// Must NOT be the serving pool of a service the generation will be
  /// swapped into when the swap itself runs on that pool (the background
  /// merge does) — a worker waiting on its own pool's queue deadlocks.
  ThreadPool* pool = nullptr;
  /// Forwarded to the snapshot loaders (Load only).
  bool prefer_mmap = true;
};

// One immutable, self-contained serving substrate: a KB snapshot with any
// number of TENETDELTA1 segments applied, plus the embedding store, the
// derived gazetteer, and a TenetLinker built over all of it (DESIGN.md
// §12).  This is the unit the serving layer hot-swaps: requests pin a
// generation for their whole lifetime, so everything here must be — and
// is — immutable after construction.
//
// Generations are heap-only (shared_ptr from the factories, never moved):
// the linker holds raw pointers into the sibling members, which therefore
// must sit at their final addresses before it is built.  The `id` is the
// monotonically increasing generation number the caller assigns; the
// serving layer requires each published generation's id to exceed the one
// it replaces.
class KbGeneration {
 public:
  /// Loads the snapshot pair and applies `delta_paths` in order.
  static Result<std::shared_ptr<const KbGeneration>> Load(
      const std::string& kb_path, const std::string& embeddings_path,
      std::span<const std::string> delta_paths, uint64_t id,
      const KbGenerationOptions& options = {});

  /// Loads a sharded layout ("TENETKBSHARDS1" manifest, DESIGN.md §14) and
  /// serves it through the same linker stack: candidate generation runs
  /// scatter/gather across the shards, everything downstream is identical.
  /// Sharded generations are read-only substrates — WithDeltas and Compact
  /// reject them (write a new sharded layout offline instead).
  static Result<std::shared_ptr<const KbGeneration>> LoadSharded(
      const std::string& manifest_path, uint64_t id,
      const KbGenerationOptions& options = {});

  /// Wraps an already-built substrate (both must be finalized).
  static std::shared_ptr<const KbGeneration> FromSubstrate(
      kb::KnowledgeBase kb, embedding::EmbeddingStore embeddings, uint64_t id,
      const KbGenerationOptions& options = {});

  /// Wraps an already-built sharded substrate (same contract as
  /// LoadSharded).
  static std::shared_ptr<const KbGeneration> FromShardedKb(
      std::shared_ptr<const kb::ShardedKb> sharded, uint64_t id,
      const KbGenerationOptions& options = {});

  /// A new generation = this one + `segments` (applied in order).  The
  /// receiver is untouched and keeps serving.  kInvalidArgument on a
  /// sharded generation.
  Result<std::shared_ptr<const KbGeneration>> WithDeltas(
      std::span<const kb::DeltaSegment> segments, uint64_t id,
      const KbGenerationOptions& options = {}) const;

  /// Persists this generation as a fresh TENETKB2 + TENETEMB1 pair — the
  /// merge step that folds applied deltas back into a base snapshot.  Both
  /// writes are atomic; a crash between the two leaves a loadable (if
  /// mismatched-by-one) pair, never a torn file.  kInvalidArgument on a
  /// sharded generation (its layout is already on disk, shard by shard).
  Status Compact(const std::string& kb_path,
                 const std::string& embeddings_path) const;

  KbGeneration(const KbGeneration&) = delete;
  KbGeneration& operator=(const KbGeneration&) = delete;

  uint64_t id() const { return id_; }
  /// True when this generation serves a sharded substrate; kb() and
  /// embeddings() must not be called on it.
  bool sharded() const { return sharded_ != nullptr; }
  /// The substrate behind the generation's linker — always valid, flat or
  /// sharded.
  const kb::KbView& view() const { return *view_; }
  /// The sharded substrate (null for flat generations).
  const kb::ShardedKb* sharded_kb() const { return sharded_.get(); }
  const kb::KnowledgeBase& kb() const;
  const embedding::EmbeddingStore& embeddings() const;
  const text::Gazetteer& gazetteer() const { return gazetteer_; }
  const baselines::TenetLinker& linker() const { return *linker_; }
  /// Cumulative apply stats across every delta folded into this generation
  /// (all zero for a pure snapshot).
  const kb::DeltaApplyStats& delta_stats() const { return delta_stats_; }

 private:
  KbGeneration(kb::KnowledgeBase kb, embedding::EmbeddingStore embeddings,
               uint64_t id, kb::DeltaApplyStats delta_stats,
               const KbGenerationOptions& options);
  KbGeneration(std::shared_ptr<const kb::ShardedKb> sharded, uint64_t id,
               const KbGenerationOptions& options);

  const uint64_t id_;
  // Flat substrate (empty for sharded generations).
  kb::KnowledgeBase kb_;
  embedding::EmbeddingStore embeddings_;
  // Sharded substrate (null for flat generations).
  std::shared_ptr<const kb::ShardedKb> sharded_;
  // The one handle the linker consumes, whatever the substrate shape.
  std::shared_ptr<const kb::KbView> view_;
  text::Gazetteer gazetteer_;
  kb::DeltaApplyStats delta_stats_;
  std::unique_ptr<baselines::TenetLinker> linker_;
};

}  // namespace serving
}  // namespace tenet

#endif  // TENET_SERVING_KB_GENERATION_H_
