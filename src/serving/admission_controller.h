#ifndef TENET_SERVING_ADMISSION_CONTROLLER_H_
#define TENET_SERVING_ADMISSION_CONTROLLER_H_

#include <cstdint>
#include <mutex>

#include "common/deadline.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace tenet {
namespace serving {

struct AdmissionOptions {
  /// Upper bound on requests admitted but not yet completed (queued +
  /// in-flight).  0 means "derive from the serving options" (queue
  /// capacity + worker count).
  int max_pending = 0;
  /// A request whose deadline has less than this many milliseconds left at
  /// the door is shed immediately: it would expire in the queue and waste a
  /// worker slot producing an answer nobody can use.  Infinite deadlines
  /// always pass this check.
  double min_deadline_slack_ms = 0.0;
  /// Registry receiving tenet_admission_rejected_total{reason=} and the
  /// tenet_admission_pending gauge.  Null publishes to the process-wide
  /// default registry.
  obs::MetricsRegistry* metrics = nullptr;
};

// The serving layer's front door: decides, before any work is queued,
// whether a request is admitted or shed.  Two budgets are enforced — a
// pending-capacity budget (admitted-but-uncompleted requests) and a
// per-request deadline budget (enough slack must remain for the request to
// plausibly finish).  Shedding is signalled with kResourceExhausted, the
// caller-retryable "try again later" of this codebase.
//
// Thread-safe; Admit() and Complete() are a mutex acquisition plus O(1).
class AdmissionController {
 public:
  struct Stats {
    int64_t admitted = 0;
    int64_t shed_capacity = 0;  // pending budget exhausted
    int64_t shed_deadline = 0;  // deadline budget exhausted at the door
    int pending = 0;            // admitted and not yet completed
  };

  explicit AdmissionController(AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Admission decision for one request carrying `deadline`.  On OK the
  /// request counts against the pending budget until Complete().
  Status Admit(const Deadline& deadline);

  /// Releases one admitted request's slot (call exactly once per OK
  /// Admit, whether the request succeeded, degraded, or failed).
  void Complete();

  Stats stats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  const AdmissionOptions options_;
  obs::Counter* rejected_capacity_ = nullptr;
  obs::Counter* rejected_deadline_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace serving
}  // namespace tenet

#endif  // TENET_SERVING_ADMISSION_CONTROLLER_H_
