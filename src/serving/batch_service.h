#ifndef TENET_SERVING_BATCH_SERVICE_H_
#define TENET_SERVING_BATCH_SERVICE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "baselines/linker.h"
#include "common/bounded_queue.h"
#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/dependency_health.h"
#include "common/rcu.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/link_context.h"
#include "embedding/similarity_cache.h"
#include "obs/metrics.h"
#include "serving/admission_controller.h"
#include "serving/kb_generation.h"

namespace tenet {
namespace serving {

// The dependencies guarded by per-dependency circuit breakers — the same
// names as the TENET_FAULT_POINT / TENET_OBSERVE_DEPENDENCY annotations at
// the corresponding call sites.
inline constexpr const char* kKbAliasDependency = "kb/alias_lookup";
inline constexpr const char* kEmbeddingDependency = "embedding/fetch";
inline constexpr const char* kCoverSolveDependency = "core/cover_solve";

struct ServingOptions {
  /// Worker threads linking documents.
  int num_threads = 4;
  /// Requests buffered between admission and the workers.
  size_t queue_capacity = 64;
  /// kReject sheds on a full queue (kResourceExhausted back to the
  /// caller); kBlock applies backpressure instead — what the offline
  /// evaluation uses, where shedding would change the scores.
  QueueOverflowPolicy overflow = QueueOverflowPolicy::kReject;
  /// Front-door policy; max_pending 0 derives queue_capacity+num_threads.
  AdmissionOptions admission;
  /// Deadline attached to requests submitted without one.  Infinite keeps
  /// the linker's own per-document policy in charge.
  double default_deadline_ms = std::numeric_limits<double>::infinity();
  /// Per-dependency breaker tuning (shared by all three breakers).
  CircuitBreakerOptions breaker;
  /// Request-level retries on retryable failures (kInternal,
  /// kBoundTooSmall).  Only max_retries is consulted; every retry must
  /// also be covered by the shared retry budget below, so retries stop
  /// fleet-wide during an outage instead of amplifying it.
  RetryPolicy retry{/*max_retries=*/1, /*multiplier=*/1.0,
                    /*max_value=*/std::numeric_limits<double>::infinity()};
  /// The shared retry budget (see RetryBudget).
  RetryBudget::Options retry_budget;
  /// Byte budget of the service-owned cross-request similarity cache.
  /// Recurring concept pairs across a serving workload hit the cache
  /// instead of recomputing the pairwise kernel; cached values are
  /// bit-identical to computed ones, so warming it never changes an
  /// answer.  0 disables the service-owned cache; a request can still
  /// bring its own via LinkContext::similarity_cache, which always wins.
  size_t similarity_cache_bytes = 0;
  /// Registry backing the service's counters, gauges and the per-request
  /// latency histogram, and — unless they carry their own — the nested
  /// admission/breaker/retry-budget metrics.  Null publishes to the
  /// process-wide default registry; tests inject a fresh registry per
  /// service so ledger assertions see an isolated window.
  obs::MetricsRegistry* metrics = nullptr;
};

// One served request's outcome: the linking result (or the error / shed
// status) plus the worker-side processing latency.  Shed requests never
// reached a worker; their latency is 0 and `shed` is true.
struct ServedResult {
  Result<core::LinkingResult> result = Status::Internal("not served");
  double latency_ms = 0.0;
  bool shed = false;
};

// A point-in-time snapshot of the service's accounting, read from the
// backing MetricsRegistry.  Every submitted request resolves to exactly
// one of shed / full / degraded / failed, so after a drain:
// submitted == shed + full + degraded + failed and
// completed == full + degraded + failed.
struct ServiceStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t shed = 0;       // refused at admission or on a full queue
  int64_t completed = 0;  // reached a worker and resolved
  int64_t full = 0;       // full-pipeline answers
  int64_t degraded = 0;   // degraded-mode answers (any rung)
  int64_t breaker_degraded = 0;  // of `degraded`: routed by an open breaker
  int64_t failed = 0;     // non-OK results
  int64_t retries = 0;    // request-level retry attempts
  int64_t generation = 0;        // id of the serving KB generation
  int64_t swaps_ok = 0;          // successful generation swaps
  int64_t swaps_rolled_back = 0;  // failed swaps (old generation kept)
  int64_t merges_ok = 0;         // background merges that landed
  int64_t merges_failed = 0;     // background merges rolled back
  BreakerState kb_alias_breaker = BreakerState::kClosed;
  BreakerState embedding_breaker = BreakerState::kClosed;
  BreakerState cover_breaker = BreakerState::kClosed;
  // Worker-side latency quantiles over every completed request, from the
  // tenet_request_latency_ms histogram (degraded answers included — a
  // degraded answer is still a served request).
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
};

// What a request links against: an immutable linker, plus the KbGeneration
// that owns its substrate when the service was built generation-aware (null
// under the legacy raw-Linker constructor, whose substrate the caller owns
// and never swaps).  Published through the RCU cell below; requests pin one
// target at the front door and keep it to the end.
struct ServingTarget {
  const baselines::Linker* linker = nullptr;
  std::shared_ptr<const KbGeneration> generation;

  uint64_t generation_id() const {
    return generation != nullptr ? generation->id() : 0;
  }
};

// The concurrent batch serving layer over an immutable linking substrate,
// hot-swappable between requests.
//
// A BatchLinkingService owns a fixed worker pool and wraps a Linker (in
// production, TenetLinker over one shared KB / embedding / gazetteer
// snapshot — all immutable after construction, so workers share them
// without locks).  Each request flows
//
//   Submit -> AdmissionController (shed?) -> BoundedQueue (shed/block?)
//          -> worker: breaker routing -> linker (+ budgeted retries)
//          -> callback
//
// Per-dependency circuit breakers watch the KB alias, embedding-fetch and
// cover-solver outcome streams (via the process-wide dependency observer
// installed for the service's lifetime).  A request that meets an open
// breaker is not failed: it is routed straight to the prior-only rung of
// the pipeline's degradation ladder by linking under an already-expired
// deadline — load on the sick dependency drops, answers keep flowing.
//
// Live KB updates (DESIGN.md §12): a service built over a KbGeneration can
// be re-pointed at a newer generation with SwapGeneration, with zero locks
// on the read path.  Every request pins the then-current generation inside
// Submit — before it is queued — so a request that was waiting in the queue
// across a swap still links against the generation that admitted it, and
// two calls on the same thread straddling a swap may legitimately see
// different KBs.  A pinned generation cannot be freed until its last
// request finishes; a failed swap (injected fault, id regression, or all
// RCU slots pinned) rolls back: the old generation keeps serving, the
// failure is counted and reported to the dependency-health plumbing as
// "serving/kb_swap".  ScheduleMerge runs the delta-folding compaction on
// the worker pool and swaps in the merged snapshot the same way.
//
// The service must outlive every callback; the destructor drains queued
// requests and joins the workers.
class BatchLinkingService {
 public:
  using Callback = std::function<void(ServedResult)>;

  /// `linker` must outlive the service.  This legacy entry point serves a
  /// fixed substrate: generation() is null and SwapGeneration still works,
  /// provided the new generation's id is >= 1.
  explicit BatchLinkingService(const baselines::Linker* linker,
                               ServingOptions options = {});
  /// The generation-aware entry point: the service shares ownership of
  /// `generation` and serves its linker until a successful SwapGeneration.
  explicit BatchLinkingService(
      std::shared_ptr<const KbGeneration> generation,
      ServingOptions options = {});
  ~BatchLinkingService();

  BatchLinkingService(const BatchLinkingService&) = delete;
  BatchLinkingService& operator=(const BatchLinkingService&) = delete;

  /// Asynchronous entry point: admission, then enqueue.  Per-request knobs
  /// (deadline, trace) travel in the LinkContext; an unset context deadline
  /// is resolved against ServingOptions::default_deadline_ms at the door.
  /// On OK, `done` is invoked exactly once from a worker thread.  On
  /// kResourceExhausted the request was shed and `done` is never invoked.
  Status Submit(std::string text, Callback done);
  Status Submit(std::string text, core::LinkContext context, Callback done);

  /// Synchronous batch entry point with deterministic merging: results[i]
  /// always corresponds to texts[i], whatever order the workers finished
  /// in.  Shed requests (possible under kReject overflow) surface as
  /// entries with shed == true and a kResourceExhausted status.
  std::vector<ServedResult> LinkBatch(const std::vector<std::string>& texts);

  /// Atomically re-points the service at `next`.  Requests submitted after
  /// the call see the new generation; requests already admitted or queued
  /// finish on the one they pinned.  Fails — and keeps the old generation
  /// serving — when `next` is null, its id does not exceed the current
  /// generation's, the "serving/kb_swap" fault point fires, or every RCU
  /// slot is still pinned by in-flight readers (kResourceExhausted; retry
  /// after requests drain).  Thread-safe; swaps are serialized internally.
  Status SwapGeneration(std::shared_ptr<const KbGeneration> next);

  /// Schedules the merge on the worker pool: compact the current
  /// generation into a fresh TENETKB2/TENETEMB1 pair at the given paths
  /// (atomic writes), reload it as generation `next_id`, and swap it in.
  /// Any failure — write, reload, or swap — rolls back to the serving
  /// generation.  `done` (optional) receives the outcome from the worker.
  /// kResourceExhausted if the queue refuses the merge task.
  Status ScheduleMerge(std::string kb_path, std::string embeddings_path,
                       uint64_t next_id,
                       std::function<void(Status)> done = nullptr);

  /// The currently serving generation (null under the legacy raw-Linker
  /// constructor before any swap).
  std::shared_ptr<const KbGeneration> generation() const;

  /// Id of the currently serving generation (0 = legacy fixed substrate).
  uint64_t generation_id() const;

  /// Accounting snapshot, read from the backing registry.
  ServiceStats Stats() const;

  /// The registry this service publishes to (the injected one, or the
  /// process-wide default).
  obs::MetricsRegistry* metrics() const { return registry_; }

  /// The service-owned cross-request similarity cache; null when
  /// ServingOptions::similarity_cache_bytes is 0.
  embedding::SimilarityCache* similarity_cache() const {
    return similarity_cache_.get();
  }

  /// Breaker watching `dependency` (one of the k*Dependency constants);
  /// null for unknown names.
  const CircuitBreaker* breaker(const char* dependency) const;

  const ServingOptions& options() const { return options_; }

 private:
  struct Request {
    std::string text;
    /// Resolved at the door: never "unset", so workers need no policy.
    Deadline deadline;
    obs::Trace* trace = nullptr;
    /// Resolved at the door: the request's own cache, else the
    /// service-owned one, else null.
    embedding::SimilarityCache* similarity_cache = nullptr;
    /// Pinned at the door: the substrate this request links against,
    /// whatever swaps land while it waits in the queue.  Copies of the
    /// request (ThreadPool tasks are copyable std::functions) each hold
    /// their own pin.
    RcuCell<ServingTarget>::Pin target;
    Callback done;
  };

  // The service's registry instruments, resolved once at construction.
  struct Instruments {
    obs::Counter* submitted;
    obs::Counter* shed;
    obs::Counter* rejected_queue_full;
    obs::Counter* completed_full;
    obs::Counter* completed_degraded;
    obs::Counter* completed_failed;
    obs::Counter* breaker_degraded;
    obs::Counter* retries;
    obs::Gauge* queue_depth;
    obs::Gauge* inflight;
    obs::Histogram* request_latency;
    obs::Gauge* generation;
    obs::Counter* swaps_ok;
    obs::Counter* swaps_rolled_back;
    obs::Counter* merges_ok;
    obs::Counter* merges_failed;
    obs::Histogram* swap_latency;
  };

  // Fans the dependency outcome stream out to the service's breakers.
  class BreakerObserver : public DependencyObserver {
   public:
    explicit BreakerObserver(BatchLinkingService* service)
        : service_(service) {}
    void ObserveDependency(const char* dependency, bool ok) override;

   private:
    BatchLinkingService* service_;
  };

  static Instruments MakeInstruments(obs::MetricsRegistry* registry);

  BatchLinkingService(std::shared_ptr<const ServingTarget> target,
                      ServingOptions options);

  Deadline DefaultDeadline() const;
  void Process(Request request);
  Result<core::LinkingResult> LinkOnce(const Request& request) const;
  CircuitBreaker* MutableBreaker(const char* dependency);
  void RunMerge(std::string kb_path, std::string embeddings_path,
                uint64_t next_id, std::function<void(Status)> done);

  const ServingOptions options_;
  obs::MetricsRegistry* registry_;
  Instruments m_;

  CircuitBreaker kb_alias_breaker_;
  CircuitBreaker embedding_breaker_;
  CircuitBreaker cover_breaker_;
  RetryBudget retry_budget_;
  AdmissionController admission_;
  std::unique_ptr<embedding::SimilarityCache> similarity_cache_;

  // Serializes SwapGeneration/merge bookkeeping (the RCU cell serializes
  // its own publishes; this covers the id check + metrics as one unit).
  std::mutex swap_mu_;

  // Declaration order is the destruction contract: the pool (last member)
  // is destroyed first, joining every worker — which releases every
  // Request's generation pin — before the target cell, the observer scope
  // and the breakers die.
  RcuCell<ServingTarget> target_;
  BreakerObserver observer_;
  ScopedDependencyObserver observer_scope_;
  ThreadPool pool_;
};

}  // namespace serving
}  // namespace tenet

#endif  // TENET_SERVING_BATCH_SERVICE_H_
